// Tests for the extension substrates: new topologies, sinusoidal drift, and
// the execution tracer.
#include <gtest/gtest.h>

#include <cmath>

#include "clock/drift.h"
#include "graph/topology.h"
#include "metrics/skew.h"
#include "metrics/trace.h"
#include "runner/scenario.h"

namespace gcs {
namespace {

TEST(Hypercube, StructureIsCorrect) {
  const auto edges = topo_hypercube(3);
  EXPECT_EQ(edges.size(), 12u);  // 8 nodes * 3 / 2
  EXPECT_EQ(hop_diameter(8, edges), 3);
  const auto big = topo_hypercube(5);
  EXPECT_EQ(big.size(), 32u * 5u / 2u);
  EXPECT_EQ(hop_diameter(32, big), 5);
}

TEST(Barbell, StructureIsCorrect) {
  const int k = 4;
  const int path = 3;
  const auto edges = topo_barbell(k, path);
  const int n = 2 * k + path;
  // Two cliques (2 * C(4,2) = 12) + path edges (path + 1 = 4).
  EXPECT_EQ(edges.size(), 16u);
  // Diameter: across cliques through the path = path + 3.
  EXPECT_EQ(hop_diameter(n, edges), path + 3);
}

TEST(Barbell, ZeroPathJoinsCliquesDirectly) {
  const auto edges = topo_barbell(3, 0);
  EXPECT_EQ(hop_diameter(6, edges), 3);
}

TEST(SinusoidalDriftTest, BoundedAndPeriodic) {
  SinusoidalDrift d(0.01, 4, 100.0, 20);
  for (NodeId u = 0; u < 4; ++u) {
    for (double t = 0.0; t < 300.0; t += 3.7) {
      const double r = d.rate_at(u, t);
      EXPECT_GE(r, 0.99 - 1e-12);
      EXPECT_LE(r, 1.01 + 1e-12);
    }
  }
  // Periodicity: rate at t and t+period match.
  EXPECT_NEAR(d.rate_at(0, 12.0), d.rate_at(0, 112.0), 1e-12);
  // Phases differ between nodes (t=12 happens to alias for nodes 0/1, so
  // compare early in the cycle).
  EXPECT_NE(d.rate_at(0, 2.0), d.rate_at(1, 2.0));
  // Change points at segment boundaries.
  EXPECT_DOUBLE_EQ(d.next_change_after(0, 0.1), 5.0);
  EXPECT_DOUBLE_EQ(d.next_change_after(0, 5.0), 10.0);
}

TEST(SinusoidalDriftTest, RunsInsideScenario) {
  ScenarioSpec cfg;
  cfg.n = 6;
  cfg.explicit_edges = topo_ring(6);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  cfg.aopt.gtilde_static =
      suggest_gtilde(6, cfg.explicit_edges, cfg.edge_params, cfg.aopt);
  cfg.drift = ComponentSpec("sine");
  cfg.drift.params.set("period", 120.0);
  Scenario s(cfg);
  s.start();
  s.run_until(400.0);
  EXPECT_LT(s.engine().true_global_skew(), cfg.aopt.gtilde_static);
  // Hardware clocks stayed within the drift envelope.
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_NEAR(s.engine().hardware(u), 400.0, 0.5);
  }
}

TEST(ExecutionTraceTest, RecordsModeChangesAndSnapshots) {
  ScenarioSpec cfg;
  cfg.n = 6;
  cfg.explicit_edges = topo_line(6);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  cfg.aopt.gtilde_static =
      suggest_gtilde(6, cfg.explicit_edges, cfg.edge_params, cfg.aopt);
  cfg.drift = ComponentSpec("spread");
  Scenario s(cfg);
  ExecutionTrace trace(s.engine(), /*snapshot_period=*/10.0);
  s.start();
  s.run_until(200.0);

  // Snapshots: every 10 units, one event per node.
  EXPECT_EQ(trace.count(ExecutionTrace::EventKind::kSnapshot), 6u * 20u);
  // Drifting line: modes must have switched at least once somewhere.
  EXPECT_GT(trace.count(ExecutionTrace::EventKind::kModeChange), 0u);
  const auto switches = trace.mode_switches_per_node();
  long long total = 0;
  for (int c : switches) total += c;
  EXPECT_EQ(static_cast<std::size_t>(total),
            trace.count(ExecutionTrace::EventKind::kModeChange));

  // CSV round-trip sanity.
  const std::string csv = trace.csv();
  EXPECT_NE(csv.find("t,kind,node,a,b"), std::string::npos);
  EXPECT_NE(csv.find("snap"), std::string::npos);
}

TEST(ExecutionTraceTest, RecordsJumpsForMaxJumpAlgorithm) {
  ScenarioSpec cfg;
  cfg.n = 8;
  cfg.explicit_edges = topo_line(8);
  cfg.edge_params = default_edge_params(0.1, 0.5, 2.0, 0.0);
  cfg.algo = ComponentSpec("max-jump");
  cfg.aopt.rho = 5e-3;
  cfg.aopt.mu = 0.1;
  cfg.aopt.gtilde_static = 50.0;
  cfg.drift = ComponentSpec("spread");
  cfg.delays = DelayMode::kMax;
  cfg.engine.beacon_period = 1.0;
  Scenario s(cfg);
  ExecutionTrace trace(s.engine(), 0.0);  // no snapshots, events only
  s.start();
  s.run_until(3000.0);
  EXPECT_GT(trace.count(ExecutionTrace::EventKind::kLogicalJump), 0u);
  EXPECT_GT(trace.count(ExecutionTrace::EventKind::kMaxRaised), 0u);
  EXPECT_EQ(trace.count(ExecutionTrace::EventKind::kSnapshot), 0u);
  // Jump events carry (from, to) with to >= from.
  for (const auto& e : trace.events()) {
    if (e.kind == ExecutionTrace::EventKind::kLogicalJump) {
      EXPECT_GE(e.b, e.a);
    }
  }
}

TEST(ExecutionTraceTest, DetachesOnDestruction) {
  ScenarioSpec cfg;
  cfg.n = 3;
  cfg.explicit_edges = topo_line(3);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  Scenario s(cfg);
  {
    ExecutionTrace trace(s.engine(), 5.0);
    s.start();
    s.run_until(20.0);
  }
  // Observer detached; the run continues without dangling callbacks.
  s.run_until(100.0);
  EXPECT_GT(s.engine().logical(0), 90.0);
}

TEST(GradientOnHypercube, BoundHoldsAfterStabilization) {
  ScenarioSpec cfg;
  cfg.n = 16;
  cfg.explicit_edges = topo_hypercube(4);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  cfg.aopt.gtilde_static =
      suggest_gtilde(16, cfg.explicit_edges, cfg.edge_params, cfg.aopt);
  cfg.drift = ComponentSpec("spread");
  Scenario s(cfg);
  s.start();
  s.run_until(2.0 * cfg.aopt.gtilde_static / cfg.aopt.mu);
  for (const auto& point : measure_gradient(s.engine(), 1.0)) {
    EXPECT_LE(point.skew, gradient_bound(point.kappa_dist, cfg.aopt.gtilde_static,
                                         cfg.aopt.sigma()));
  }
}

TEST(GradientOnBarbell, ThinBridgeCarriesTheSkewGradient) {
  // Barbell: the cliques are internally tight; the paper's gradient bound
  // must hold across the thin middle as well.
  const int k = 5;
  const int path = 6;
  const int n = 2 * k + path;
  ScenarioSpec cfg;
  cfg.n = n;
  cfg.explicit_edges = topo_barbell(k, path);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  cfg.aopt.gtilde_static =
      suggest_gtilde(n, cfg.explicit_edges, cfg.edge_params, cfg.aopt);
  cfg.drift = ComponentSpec("blocks");  // one clique fast, one slow
  cfg.drift.params.set("blocks", 2);
  cfg.drift.params.set("period", 1e9);
  Scenario s(cfg);
  s.start();
  s.run_until(2.0 * cfg.aopt.gtilde_static / cfg.aopt.mu);
  double clique_skew = 0.0;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      clique_skew = std::max(clique_skew, std::fabs(s.engine().logical(i) -
                                                    s.engine().logical(j)));
    }
  }
  for (const auto& point : measure_gradient(s.engine(), 1.0)) {
    EXPECT_LE(point.skew, gradient_bound(point.kappa_dist, cfg.aopt.gtilde_static,
                                         cfg.aopt.sigma()));
  }
  // Within a clique everything is 1 hop: skew stays at the single-edge scale.
  const double kappa = metric_kappa(s.engine(), EdgeKey(0, 1));
  EXPECT_LE(clique_skew,
            gradient_bound(kappa, cfg.aopt.gtilde_static, cfg.aopt.sigma()));
}

}  // namespace
}  // namespace gcs
