// Tests for the generic Registry/ParamMap machinery and the builtin
// component registries (unknown names, duplicate registration, parameter
// validation, --list metadata).
#include <gtest/gtest.h>

#include "clock/drift.h"
#include "core/algo_registry.h"
#include "estimate/estimate_source.h"
#include "graph/adversary.h"
#include "graph/topology.h"
#include "runner/registries.h"
#include "util/registry.h"

namespace gcs {
namespace {

using TestFactory = std::function<int(const ParamMap&)>;

TEST(Registry, UnknownNameThrowsAndListsKnownNames) {
  Registry<TestFactory> r("widget");
  r.add({"alpha", "first", {}, [](const ParamMap&) { return 1; }});
  r.add({"beta", "second", {}, [](const ParamMap&) { return 2; }});
  try {
    (void)r.get("gamma");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown widget 'gamma'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("alpha"), std::string::npos) << msg;
    EXPECT_NE(msg.find("beta"), std::string::npos) << msg;
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  Registry<TestFactory> r("widget");
  r.add({"alpha", "", {}, [](const ParamMap&) { return 1; }});
  EXPECT_THROW(r.add({"alpha", "", {}, [](const ParamMap&) { return 2; }}),
               std::runtime_error);
}

TEST(Registry, EmptyNameRejected) {
  Registry<TestFactory> r("widget");
  EXPECT_THROW(r.add({"", "", {}, [](const ParamMap&) { return 1; }}),
               std::runtime_error);
}

TEST(Registry, NamesAreSortedAndContainsWorks) {
  Registry<TestFactory> r("widget");
  r.add({"zeta", "", {}, [](const ParamMap&) { return 1; }});
  r.add({"alpha", "", {}, [](const ParamMap&) { return 2; }});
  EXPECT_EQ(r.names(), (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_TRUE(r.contains("zeta"));
  EXPECT_FALSE(r.contains("eta"));
}

TEST(ParamMap, TypedGettersParseStrictly) {
  ParamMap p;
  p.set("a", "1.5");
  p.set("b", "42");
  p.set("c", "true");
  p.set("d", "nope");
  EXPECT_DOUBLE_EQ(p.get_double("a", 0.0), 1.5);
  EXPECT_EQ(p.get_int("b", 0), 42);
  EXPECT_TRUE(p.get_bool("c", false));
  EXPECT_THROW((void)p.get_double("d", 0.0), std::runtime_error);
  EXPECT_THROW((void)p.get_int("a", 0), std::runtime_error);  // "1.5" not an int
  EXPECT_THROW((void)p.get_bool("b", false), std::runtime_error);
  EXPECT_DOUBLE_EQ(p.get_double("missing", 7.0), 7.0);
}

TEST(ParamMap, CheckKnownRejectsTypos) {
  ParamMap p;
  p.set("period", "10");
  p.set("stdd", "0.1");  // typo
  const std::vector<ParamDoc> docs = {{"period", "10", ""}, {"std", "0", ""}};
  EXPECT_THROW(p.check_known(docs, "drift 'walk'"), std::runtime_error);
}

TEST(ParamMap, FormatRoundTripsDoubles) {
  for (double v : {0.05, 1e-3, 1.0 / 3.0, 123456.789, 1e9}) {
    EXPECT_DOUBLE_EQ(std::stod(ParamMap::format(v)), v);
  }
}

TEST(BuiltinRegistries, AllFamiliesPopulated) {
  EXPECT_TRUE(topology_registry().contains("line"));
  EXPECT_TRUE(topology_registry().contains("geometric"));
  EXPECT_TRUE(algo_registry().contains("aopt"));
  EXPECT_TRUE(algo_registry().contains("max-jump"));
  EXPECT_TRUE(drift_registry().contains("spread"));
  EXPECT_TRUE(estimate_registry().contains("beacon"));
  EXPECT_TRUE(gskew_registry().contains("distributed"));
  EXPECT_TRUE(adversary_registry().contains("churn"));
}

TEST(BuiltinRegistries, DescribeCoversEveryFamilyAndComponent) {
  const auto families = describe_registries();
  ASSERT_EQ(families.size(), 6u);
  std::size_t total = 0;
  for (const auto& family : families) {
    EXPECT_FALSE(family.family.empty());
    EXPECT_FALSE(family.components.empty()) << family.family;
    for (const auto& c : family.components) {
      EXPECT_FALSE(c.name.empty());
      total += 1;
    }
  }
  // Every registry entry appears exactly once in the description.
  const std::size_t expected =
      topology_registry().names().size() + algo_registry().names().size() +
      drift_registry().names().size() + estimate_registry().names().size() +
      gskew_registry().names().size() + adversary_registry().names().size();
  EXPECT_EQ(total, expected);
}

TEST(BuiltinRegistries, UserComponentsCanRegisterAtRuntime) {
  // Third-party drift model: registered once, then constructible by name
  // through the exact same path as the builtins.
  if (!drift_registry().contains("test-frozen")) {
    drift_registry().add(
        {"test-frozen",
         "all clocks perfect (test-only)",
         {},
         [](const ParamMap&, const DriftArgs& a) -> std::unique_ptr<DriftModel> {
           return std::make_unique<ConstantDrift>(a.rho, 0.0, a.n);
         }});
  }
  const auto& entry = drift_registry().get("test-frozen");
  DriftArgs args{4, 1e-3, 1};
  auto model = entry.factory(ParamMap{}, args);
  ASSERT_NE(model, nullptr);
  EXPECT_DOUBLE_EQ(model->rate_at(0, 10.0), 1.0);
}

}  // namespace
}  // namespace gcs
