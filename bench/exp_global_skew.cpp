// E1 — Theorem 5.6: global skew.
//   (I)  The global skew grows at rate at most 2ρ.
//   (II) Above D(t) + ι it shrinks at rate at least µ(1−ρ) − 2ρ.
//   Steady state: G(t) = O(D) — proportional to the network extent.
//
// Workload: line topology, maximally divergent constant drift. An initial
// linear clock scatter of 2·D̂ across the line puts the system above the
// steady regime, from which the decay rate and the O(D) floor are measured.
// The size sweep runs as a SweepRunner grid (--threads).
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto sizes = parse_int_list(flags.get("sizes", std::string()), {8, 16, 32, 64});
  const double settle = flags.get("settle", 900.0);
  const int threads = flags.get("threads", 2);

  print_header("E1 exp_global_skew",
               "Theorem 5.6: growth rate <= 2*rho; recovery rate >= mu(1-rho)-2rho; "
               "steady-state G = O(D)");

  Sweep sweep(fast_line_spec(8));
  sweep.axis("n", sizes);

  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  runner.set_run_fn([settle](Scenario& s, RunResult& r) {
    s.start();
    const double rho = s.spec().aopt.rho;
    const double mu = s.spec().aopt.mu;
    const double d_bound = estimate_dynamic_diameter(s.engine());

    // Phase 1 (growth): from the synchronized start, G may only grow at 2rho.
    double worst_growth = 0.0;
    double prev_g = 0.0;
    Time prev_t = 0.0;
    for (int step = 1; step <= 20; ++step) {
      s.run_until(step * 5.0);
      const double g = s.engine().true_global_skew();
      worst_growth = std::max(worst_growth, (g - prev_g) / (s.sim().now() - prev_t));
      prev_g = g;
      prev_t = s.sim().now();
    }

    // Phase 2 (decay): scatter clocks linearly up to 2*D^ end-to-end.
    scatter_clocks_linearly(s, 2.0 * d_bound);
    const double g0 = s.engine().true_global_skew();
    const Time t0 = s.sim().now();
    const Duration window =
        0.25 * (g0 - d_bound) / (mu * (1.0 - rho) - 2.0 * rho);
    s.run_until(t0 + window);
    const double g1 = s.engine().true_global_skew();

    // Phase 3 (steady): settle and measure the O(D) floor.
    s.run_until(t0 + window + settle);
    RunningStats steady;
    for (int step = 0; step < 40; ++step) {
      s.run_for(5.0);
      steady.add(s.engine().true_global_skew());
    }

    r.values["d_bound"] = d_bound;
    r.values["steady"] = steady.mean();
    r.values["growth"] = worst_growth;
    r.values["decay"] = (g0 - g1) / window;
  });

  const auto results = runner.run(sweep);

  Table table("Theorem 5.6 — global skew vs. network extent (line, worst-case drift)");
  table.headers({"n", "D^ bound", "G steady", "G/D^", "growth<=2rho", "decay rate",
                 "guarantee", "decay ok"});
  const auto base = sweep.base();
  const double guarantee =
      base.aopt.mu * (1.0 - base.aopt.rho) - 2.0 * base.aopt.rho;
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& r : results) {
    if (!r.ok()) {
      std::cerr << "run n=" << r.n << " failed: " << r.error << "\n";
      continue;
    }
    const double d_bound = r.values.at("d_bound");
    const double steady = r.values.at("steady");
    table.row()
        .cell(r.n)
        .cell(d_bound)
        .cell(steady)
        .cell(steady / d_bound)
        .cell(r.values.at("growth") <= 2.0 * base.aopt.rho + 1e-6)
        .cell(r.values.at("decay"))
        .cell(guarantee)
        .cell(r.values.at("decay") >= 0.9 * guarantee);
    xs.push_back(r.n);
    ys.push_back(steady);
  }
  table.print();

  const auto fit = fit_linear(xs, ys);
  std::cout << "steady G(n) linear fit: G = " << format_double(fit.intercept)
            << " + " << format_double(fit.slope) << " * n   (r2 = "
            << format_double(fit.r2, 3) << ")\n"
            << "paper: G = Theta(D) -> expect r2 close to 1 with positive slope\n";
  return 0;
}
