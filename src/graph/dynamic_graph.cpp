#include "graph/dynamic_graph.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace gcs {

namespace {
/// Position of `peer` in a sorted neighbor vector (or where it would go).
std::vector<NeighborView>::const_iterator neighbor_lower_bound(
    const std::vector<NeighborView>& vec, NodeId peer) {
  return std::lower_bound(vec.begin(), vec.end(), peer,
                          [](const NeighborView& nv, NodeId id) { return nv.id < id; });
}
}  // namespace

DynamicGraph::DynamicGraph(Simulator& sim, int n, std::uint64_t seed)
    : sim_(sim), n_(n), rng_(seed) {
  require(n >= 0, "DynamicGraph: negative node count");
  adjacency_.resize(static_cast<std::size_t>(n));
}

Duration DynamicGraph::sample_detection_delay(const EdgeParams& p) {
  switch (delay_mode_) {
    case DetectionDelayMode::kZero: return 0.0;
    case DetectionDelayMode::kUniform: return rng_.uniform(0.0, p.tau);
    case DetectionDelayMode::kMax: return p.tau;
  }
  return 0.0;
}

void DynamicGraph::create_edge(const EdgeKey& e, const EdgeParams& params) {
  params.validate();
  require(e.a >= 0 && e.b < n_, "DynamicGraph: edge endpoint out of range");
  auto [it, inserted] = edges_.try_emplace(e);
  Record& rec = it->second;
  if (inserted) {
    rec.params = params;
  } else {
    require(rec.params.eps == params.eps && rec.params.tau == params.tau &&
                rec.params.msg_delay_max == params.msg_delay_max &&
                rec.params.msg_delay_min == params.msg_delay_min,
            "DynamicGraph: edge params must not change across reinsertions");
    if (rec.target) return;  // already present
  }
  rec.target = true;
  const std::uint64_t gen = ++rec.gen;
  // One endpoint may detect instantly; the other within tau (kMax mode:
  // exactly one delayed so asymmetry is maximal but still <= tau).
  Duration da = delay_mode_ == DetectionDelayMode::kMax ? 0.0 : sample_detection_delay(rec.params);
  Duration db = sample_detection_delay(rec.params);
  schedule_flip(e, e.a, gen, da);
  schedule_flip(e, e.b, gen, db);
}

void DynamicGraph::create_edge_instant(const EdgeKey& e, const EdgeParams& params) {
  params.validate();
  require(e.a >= 0 && e.b < n_, "DynamicGraph: edge endpoint out of range");
  auto [it, inserted] = edges_.try_emplace(e);
  Record& rec = it->second;
  if (inserted) rec.params = params;
  rec.target = true;
  ++rec.gen;  // invalidate any in-flight flips
  set_view(e, rec, e.a, true);
  set_view(e, rec, e.b, true);
}

void DynamicGraph::destroy_edge(const EdgeKey& e) {
  auto it = edges_.find(e);
  if (it == edges_.end() || !it->second.target) return;
  Record& rec = it->second;
  rec.target = false;
  const std::uint64_t gen = ++rec.gen;
  Duration da = delay_mode_ == DetectionDelayMode::kMax ? 0.0 : sample_detection_delay(rec.params);
  Duration db = sample_detection_delay(rec.params);
  schedule_flip(e, e.a, gen, da);
  schedule_flip(e, e.b, gen, db);
}

void DynamicGraph::destroy_edge_instant(const EdgeKey& e) {
  auto it = edges_.find(e);
  if (it == edges_.end() || !it->second.target) return;
  Record& rec = it->second;
  rec.target = false;
  ++rec.gen;  // invalidate any in-flight flips
  set_view(e, rec, e.a, false);
  set_view(e, rec, e.b, false);
}

void DynamicGraph::schedule_flip(const EdgeKey& e, NodeId endpoint,
                                 std::uint64_t gen, Duration delay) {
  if (delay <= 0.0) {
    apply_view(e, endpoint, gen);
    return;
  }
  sim_.schedule_after(delay, [this, e, endpoint, gen] { apply_view(e, endpoint, gen); });
}

void DynamicGraph::apply_view(const EdgeKey& e, NodeId endpoint, std::uint64_t gen) {
  auto it = edges_.find(e);
  if (it == edges_.end()) return;
  Record& rec = it->second;
  if (rec.gen != gen) return;  // superseded by a later adversary transition
  set_view(e, rec, endpoint, rec.target);
}

void DynamicGraph::set_view(const EdgeKey& e, Record& rec, NodeId endpoint,
                            bool present) {
  DirView& view = endpoint == e.a ? rec.view_a : rec.view_b;
  if (view.present == present) return;
  view.present = present;
  const NodeId peer = e.other(endpoint);
  auto& vec = adjacency_[static_cast<std::size_t>(endpoint)];
  const auto pos = neighbor_lower_bound(vec, peer);
  if (present) {
    view.since = sim_.now();
    vec.insert(vec.begin() + (pos - vec.cbegin()),
               NeighborView{peer, view.since, &rec.params});
    if (listener_ != nullptr) listener_->on_edge_discovered(endpoint, peer);
  } else {
    view.since = -kTimeInf;
    vec.erase(vec.begin() + (pos - vec.cbegin()));
    if (listener_ != nullptr) listener_->on_edge_lost(endpoint, peer);
  }
}

const NeighborView* DynamicGraph::find_neighbor(NodeId u, NodeId peer) const {
  if (u < 0 || u >= n_) return nullptr;
  // Linear scan over the sorted view: typical degrees are single-digit, so
  // this beats a binary search (fewer mispredicted branches).
  for (const NeighborView& nv : adjacency_[static_cast<std::size_t>(u)]) {
    if (nv.id >= peer) return nv.id == peer ? &nv : nullptr;
  }
  return nullptr;
}

bool DynamicGraph::view_present(NodeId u, NodeId peer) const {
  return find_neighbor(u, peer) != nullptr;
}

Time DynamicGraph::view_since(NodeId u, NodeId peer) const {
  const NeighborView* nv = find_neighbor(u, peer);
  return nv != nullptr ? nv->since : -kTimeInf;
}

const std::vector<NeighborView>& DynamicGraph::view_neighbors(NodeId u) const {
  require(u >= 0 && u < n_, "DynamicGraph: node out of range");
  return adjacency_[static_cast<std::size_t>(u)];
}

bool DynamicGraph::both_views_present(const EdgeKey& e) const {
  const auto it = edges_.find(e);
  return it != edges_.end() && it->second.view_a.present && it->second.view_b.present;
}

Time DynamicGraph::both_views_since(const EdgeKey& e) const {
  const auto it = edges_.find(e);
  if (it == edges_.end() || !it->second.view_a.present || !it->second.view_b.present) {
    return -kTimeInf;
  }
  return std::max(it->second.view_a.since, it->second.view_b.since);
}

bool DynamicGraph::adversary_present(const EdgeKey& e) const {
  const auto it = edges_.find(e);
  return it != edges_.end() && it->second.target;
}

std::vector<EdgeKey> DynamicGraph::adversary_edges() const {
  std::vector<EdgeKey> out;
  for (const auto& [key, rec] : edges_) {
    if (rec.target) out.push_back(key);
  }
  return out;
}

std::vector<EdgeKey> DynamicGraph::known_edges() const {
  std::vector<EdgeKey> out;
  out.reserve(edges_.size());
  for (const auto& [key, rec] : edges_) out.push_back(key);
  return out;
}

const EdgeParams& DynamicGraph::params(const EdgeKey& e) const {
  const auto it = edges_.find(e);
  // Build the message lazily: this lookup is on the hot path and an eager
  // "unknown edge " + e.str() costs a malloc + int formatting per call.
  if (it == edges_.end()) [[unlikely]] {
    throw std::runtime_error("DynamicGraph: unknown edge " + e.str());
  }
  return it->second.params;
}

bool DynamicGraph::connected_filtered(const EdgeKey* skip) const {
  if (n_ <= 1) return true;
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n_));
  for (const auto& [key, rec] : edges_) {
    if (!rec.target) continue;
    if (skip != nullptr && key == *skip) continue;
    adj[static_cast<std::size_t>(key.a)].push_back(key.b);
    adj[static_cast<std::size_t>(key.b)].push_back(key.a);
  }
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  std::deque<NodeId> frontier{0};
  seen[0] = 1;
  int count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : adj[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++count;
        frontier.push_back(v);
      }
    }
  }
  return count == n_;
}

bool DynamicGraph::adversary_connected() const { return connected_filtered(nullptr); }

bool DynamicGraph::connected_without(const EdgeKey& e) const {
  return connected_filtered(&e);
}

}  // namespace gcs
