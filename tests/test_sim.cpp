#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace gcs {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel fails
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesTime) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(3.0);
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // idle time still advances
  sim.run_until(10.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(Simulator, EventsScheduledDuringEventsRun) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_after(0.5, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(Simulator, ZeroDelaySelfScheduleAtSameTimeRunsAfterPeers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_at(1.0, [&] { order.push_back(3); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
}

TEST(Simulator, ToleratesTinyNegativeDelay) {
  Simulator sim;
  sim.schedule_at(1.0, [&] {
    // Float round-off in rate conversions can produce "now - 1e-12".
    EXPECT_NO_THROW(sim.schedule_at(sim.now() - 1e-12, [] {}));
  });
  sim.run();
}

TEST(Simulator, CountsFiredAndPending) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.run();
  EXPECT_EQ(sim.fired_count(), 2u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, ManyCancellationsStayConsistent) {
  Simulator sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_at(1.0 + i * 0.001, [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  sim.run();
  EXPECT_EQ(fired, 500);
}

TEST(Simulator, RescheduleMovesFireTimeAndResequences) {
  Simulator sim;
  std::vector<int> order;
  const EventId a = sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  // Moving `a` onto B's time re-sequences it: it now fires after B (FIFO
  // among equal times, as if freshly scheduled).
  EXPECT_TRUE(sim.reschedule(a, 2.0));
  EXPECT_TRUE(sim.pending(a));  // handle survives a reschedule
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_FALSE(sim.reschedule(a, 3.0));  // already fired
}

TEST(Simulator, RescheduleEarlierFiresEarlier) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  const EventId a = sim.schedule_at(5.0, [&] { order.push_back(5); });
  EXPECT_TRUE(sim.reschedule(a, 1.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{5, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, GenerationTagInvalidatesStaleHandlesAfterSlotReuse) {
  Simulator sim;
  bool old_fired = false;
  const EventId stale = sim.schedule_at(1.0, [&] { old_fired = true; });
  EXPECT_TRUE(sim.cancel(stale));
  // The freed slot is reused by the next schedule; the stale handle must
  // not alias the new event.
  bool new_fired = false;
  const EventId fresh = sim.schedule_at(1.0, [&] { new_fired = true; });
  EXPECT_NE(stale.value, fresh.value);
  EXPECT_FALSE(sim.pending(stale));
  EXPECT_TRUE(sim.pending(fresh));
  EXPECT_FALSE(sim.cancel(stale));       // stale handle: no-op
  EXPECT_FALSE(sim.reschedule(stale, 2.0));
  sim.run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
  // Handles of fired events are stale too, across further slot reuse.
  EXPECT_FALSE(sim.pending(fresh));
  sim.schedule_at(sim.now() + 1.0, [] {});
  EXPECT_FALSE(sim.cancel(fresh));
  sim.run();
}

// Randomized schedule/cancel/reschedule interleavings, checked against a
// naive reference queue implementing the documented ordering contract:
// events fire in (time, sequence) order, where every schedule AND every
// reschedule draws the next sequence number.
TEST(Simulator, RandomizedOpsMatchNaiveReferenceQueue) {
  struct RefEvent {
    double time = 0.0;
    std::uint64_t seq = 0;
    int tag = 0;
  };
  Rng rng(0xDECADE);
  Simulator sim;
  std::vector<int> fired;                      // tags in kernel fire order
  std::vector<RefEvent> ref;                   // naive pending list
  std::vector<std::pair<EventId, int>> live;   // kernel handle -> tag
  std::uint64_t ref_seq = 0;
  int next_tag = 0;

  const auto schedule = [&](double at) {
    const int tag = next_tag++;
    live.emplace_back(sim.schedule_at(at, [&fired, tag] { fired.push_back(tag); }),
                      tag);
    ref.push_back(RefEvent{at, ++ref_seq, tag});
  };
  const auto ref_erase = [&](int tag) {
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (ref[i].tag == tag) {
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    FAIL() << "tag missing from reference";
  };

  for (int round = 0; round < 4000; ++round) {
    const double roll = rng.uniform01();
    if (roll < 0.45 || live.empty()) {
      schedule(sim.now() + rng.uniform(0.0, 10.0));
    } else if (roll < 0.65) {
      const std::size_t pick = static_cast<std::size_t>(rng.below(live.size()));
      ASSERT_TRUE(sim.cancel(live[pick].first));
      ref_erase(live[pick].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 0.85) {
      const std::size_t pick = static_cast<std::size_t>(rng.below(live.size()));
      const double at = sim.now() + rng.uniform(0.0, 10.0);
      ASSERT_TRUE(sim.reschedule(live[pick].first, at));
      for (RefEvent& e : ref) {
        if (e.tag == live[pick].second) {
          e.time = at;
          e.seq = ++ref_seq;  // reschedule re-sequences, like a fresh schedule
        }
      }
    } else {
      // Fire the next event; drop it from both views.
      if (sim.step()) {
        ASSERT_FALSE(fired.empty());
        const int tag = fired.back();
        ref_erase(tag);
        std::erase_if(live, [tag](const auto& kv) { return kv.second == tag; });
      }
    }
    ASSERT_EQ(sim.pending_count(), ref.size()) << "round " << round;
  }

  // Drain: the kernel must fire the remaining events in exactly the
  // reference order.
  std::stable_sort(ref.begin(), ref.end(), [](const RefEvent& a, const RefEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  const std::size_t already_fired = fired.size();
  sim.run();
  ASSERT_EQ(fired.size(), already_fired + ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(fired[already_fired + i], ref[i].tag) << "drain position " << i;
  }
  EXPECT_EQ(sim.pending_count(), 0u);
}

}  // namespace
}  // namespace gcs
