// Weighted shortest paths on snapshots of the (sub)graph. Used by the
// legality checker (min-kappa-weight level-s paths) and the gradient-skew
// metrics (kappa distance between node pairs).
#pragma once

#include <functional>
#include <vector>

#include "util/common.h"

namespace gcs {

struct WeightedEdge {
  NodeId to = kNoNode;
  double weight = 0.0;
};

/// Adjacency-list snapshot; build once per measurement instant.
using AdjacencyList = std::vector<std::vector<WeightedEdge>>;

/// Build an adjacency list from an undirected edge list with a weight
/// function. Edges with non-positive weight are rejected.
AdjacencyList build_adjacency(
    int n, const std::vector<EdgeKey>& edges,
    const std::function<double(const EdgeKey&)>& weight);

/// Single-source shortest path distances (Dijkstra); unreachable = +inf.
std::vector<double> dijkstra(const AdjacencyList& adj, NodeId src);

/// Single-source hop counts (BFS); unreachable = -1.
std::vector<int> bfs_hops(const AdjacencyList& adj, NodeId src);

/// Max over pairs of shortest-path weight; +inf if disconnected, 0 if n<=1.
double weighted_diameter(const AdjacencyList& adj);

}  // namespace gcs
