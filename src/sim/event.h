// Typed event records for the simulation kernel.
//
// The engine's recurring events (ticks, beacons, drift changes, max-estimate
// catch-ups, logical-time targets) and the transport's message deliveries are
// described by a compact tagged record instead of a type-erased closure, so
// scheduling them allocates nothing: the record is stored inline in the
// kernel's slot storage and dispatched by a switch in its owner. A closure
// arm remains as the escape hatch for tests, adversaries and one-off
// scheduling.
//
// ## Lifecycle invariants (see docs/ARCHITECTURE.md for the full table)
//
//  * A record is copied INTO the kernel at schedule time and copied OUT
//    again at fire time, before its slot is released — handlers may schedule
//    freely without invalidating the record they are handling. Records are
//    trivially copyable, exactly one cache line, and carry no owned state;
//    only kClosure events own resources (kept out-of-line in the kernel,
//    keyed by the same slot).
//  * Between schedule and fire, a record may migrate between the kernel's
//    timer tiers (wheel bucket -> sorted run / overlay heap); migration
//    copies the 16-byte ordering entry only, never the record, and cannot
//    change fire order (simulator.h documents why).
//  * One-shot kinds (kMLockCatch, kLogicalTarget) are RESCHEDULED in place
//    by the engine when clock rates change — the EventId handle survives,
//    the FIFO sequence is re-drawn. Periodic kinds (kTick/kBeacon/
//    kHeartbeat) re-arm by scheduling a fresh event from their handler.
//  * kHeartbeat exists only as a scheduling optimization: when tick and
//    beacon cadence coincide it drives both duties and reports itself to
//    trace sinks as kTick followed by kBeacon, so traces are identical to
//    the split-cadence event sequence.
#pragma once

#include <cstdint>

#include "net/message.h"
#include "util/common.h"

namespace gcs {

/// Discriminator of a scheduled event. The typed kinds cover every recurring
/// event of the engine/transport hot path; everything else is kClosure.
enum class EventKind : std::uint8_t {
  kClosure = 0,    ///< type-erased callback (escape hatch)
  kTick,           ///< periodic re-evaluation of one node
  kBeacon,         ///< periodic beacon fan-out of one node
  kDriftChange,    ///< hardware rate change of one node
  kMLockCatch,     ///< L_u catches M_u (engine mlock event)
  kLogicalTarget,  ///< a node's logical clock reaches a scheduled target
  kDelivery,       ///< message arrival at a node
  /// One periodic timer driving both the tick and the beacon duty when the
  /// two cadences coincide (the default): halves the recurring event load.
  /// Never traced as such — it reports its two duties as kTick + kBeacon.
  kHeartbeat,
};

[[nodiscard]] constexpr const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kClosure: return "closure";
    case EventKind::kTick: return "tick";
    case EventKind::kBeacon: return "beacon";
    case EventKind::kDriftChange: return "drift";
    case EventKind::kMLockCatch: return "mlock";
    case EventKind::kLogicalTarget: return "ltarget";
    case EventKind::kDelivery: return "delivery";
    case EventKind::kHeartbeat: return "heartbeat";
  }
  return "?";
}

struct SimEvent;

/// Implemented by the engine and the transport: receives typed events back
/// from the kernel when they fire.
class EventDispatcher {
 public:
  virtual ~EventDispatcher() = default;
  virtual void dispatch(const SimEvent& ev) = 0;
};

/// A scheduled event. Typed kinds are plain data dispatched through
/// `target`. Wire payloads are stored inline (std::variant never
/// heap-allocates) so the delivery path is allocation-free. Trivially
/// copyable and exactly one cache line: the kernel copies these in and out
/// of its slot storage on every fire. kClosure events keep their callback
/// out-of-line in the kernel (Simulator::closures_), keyed by the same slot.
/// (The receiver-known transit floor is not carried here: the delivery
/// handler re-reads it from the edge's immutable params.)
struct alignas(64) SimEvent {
  EventKind kind = EventKind::kClosure;
  EventDispatcher* target = nullptr;  ///< typed kinds only
  NodeId node = kNoNode;              ///< acted-on node (receiver for kDelivery)
  NodeId from = kNoNode;              ///< kDelivery: sender
  Time sent_at = 0.0;                 ///< kDelivery: send time
  Payload payload;                    ///< kDelivery: wire message

  static SimEvent node_event(EventKind kind, EventDispatcher* target, NodeId node) {
    SimEvent ev;
    ev.kind = kind;
    ev.target = target;
    ev.node = node;
    return ev;
  }

  static SimEvent delivery(EventDispatcher* target, NodeId from, NodeId to,
                           Time sent_at, Payload payload) {
    SimEvent ev;
    ev.kind = EventKind::kDelivery;
    ev.target = target;
    ev.node = to;
    ev.from = from;
    ev.sent_at = sent_at;
    ev.payload = payload;
    return ev;
  }
};
static_assert(sizeof(SimEvent) == 64, "SimEvent should stay one cache line");

/// Passive probe of the kernel's fire sequence: called once per fired engine/
/// transport event with (time, node, kind). Used by the dual-run equivalence
/// harness (tests/test_kernel_trace.cpp) and available for ad-hoc debugging.
class KernelTraceSink {
 public:
  virtual ~KernelTraceSink() = default;
  virtual void on_event_fired(Time t, NodeId node, EventKind kind) = 0;
};

}  // namespace gcs
