#include "util/log.h"

namespace gcs {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::ostream& os = level >= LogLevel::kWarn ? std::cerr : std::cout;
  os << "[" << level_name(level) << "] " << msg << "\n";
}
}  // namespace detail

}  // namespace gcs
