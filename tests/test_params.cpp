#include <gtest/gtest.h>

#include <cmath>

#include "core/params.h"

namespace gcs {
namespace {

AlgoParams good_params() {
  AlgoParams p;
  p.rho = 1e-3;
  p.mu = 0.05;
  p.iota = 1e-4;
  return p;
}

TEST(AlgoParams, GoodParamsValidate) {
  const auto r = good_params().validate();
  EXPECT_TRUE(r.ok()) << r.str();
}

TEST(AlgoParams, SigmaFormula) {
  AlgoParams p = good_params();
  // eq. (8): sigma = (1-rho)*mu / (2*rho)
  EXPECT_NEAR(p.sigma(), (1.0 - 1e-3) * 0.05 / 2e-3, 1e-12);
  EXPECT_GT(p.sigma(), 1.0);
}

TEST(AlgoParams, AlphaBetaEnvelope) {
  AlgoParams p = good_params();
  EXPECT_DOUBLE_EQ(p.alpha(), 1.0 - p.rho);
  EXPECT_DOUBLE_EQ(p.beta(), (1.0 + p.rho) * (1.0 + p.mu));
  // Fast mode must outrun slow mode: (1+mu)(1-rho) > 1+rho.
  EXPECT_GT((1.0 + p.mu) * (1.0 - p.rho), 1.0 + p.rho);
}

TEST(AlgoParams, RejectsMuBelowDriftFloor) {
  AlgoParams p = good_params();
  p.mu = 2.0 * p.rho / (1.0 - p.rho);  // boundary: sigma == 1
  EXPECT_FALSE(p.validate().ok());
  p.mu = p.rho;  // far below
  EXPECT_FALSE(p.validate().ok());
}

TEST(AlgoParams, WarnsOnLargeMu) {
  AlgoParams p = good_params();
  p.mu = 0.2;  // violates eq. (7)
  const auto r = p.validate();
  EXPECT_TRUE(r.ok());  // soft
  EXPECT_FALSE(r.warnings.empty());
}

TEST(AlgoParams, WarnsOnSmallSigma) {
  AlgoParams p = good_params();
  p.rho = 0.02;
  p.mu = 0.1;  // sigma = 0.98*0.1/0.04 = 2.45 < 3
  const auto r = p.validate();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.warnings.empty());
}

TEST(AlgoParams, RejectsBadScalars) {
  AlgoParams p = good_params();
  p.iota = 0.0;
  EXPECT_FALSE(p.validate().ok());
  p = good_params();
  p.rho = 0.0;
  EXPECT_FALSE(p.validate().ok());
  p = good_params();
  p.delta_frac = 1.0;
  EXPECT_FALSE(p.validate().ok());
  p = good_params();
  p.kappa_slack = 0.0;
  EXPECT_FALSE(p.validate().ok());
}

TEST(AlgoParams, EdgeConstantsSatisfyEq9) {
  AlgoParams p = good_params();
  EdgeParams e;
  e.eps = 0.1;
  e.tau = 0.5;
  const EdgeConstants c = p.edge_constants(e);
  // eq. (9): kappa > 4(eps + mu*tau)
  EXPECT_GT(c.kappa, 4.0 * (e.eps + p.mu * e.tau));
  // Def 4.6: delta in (0, kappa/2 - 2eps - 2mu*tau)
  EXPECT_GT(c.delta, 0.0);
  EXPECT_LT(c.delta, c.kappa / 2.0 - 2.0 * e.eps - 2.0 * p.mu * e.tau);
  EXPECT_TRUE(p.validate_edge(e).ok());
}

TEST(AlgoParams, InsertionDurationStaticMatchesEq10) {
  AlgoParams p = good_params();
  const double gt = 10.0;
  const double expected =
      (20.0 * (1.0 + p.mu) / (1.0 - p.rho) + 56.0 * p.mu +
       (8.0 + 56.0 * p.mu) / p.sigma()) *
      gt / p.mu;
  EXPECT_NEAR(p.insertion_duration_static(gt), expected, 1e-9);
  // Scales linearly with the estimate and inversely with mu.
  EXPECT_NEAR(p.insertion_duration_static(2.0 * gt),
              2.0 * p.insertion_duration_static(gt), 1e-9);
}

TEST(AlgoParams, InsertionDurationDynamicIsPowerOfTwoGrid) {
  AlgoParams p = good_params();
  p.B = 64.0;
  const double i1 = p.insertion_duration_dynamic(10.0, 0.5, 0.5);
  // I = B * 2^{3 + ceil(log2(G/mu + T + tau))}; must be B * power of two.
  const double quotient = i1 / p.B;
  const double log2q = std::log2(quotient);
  EXPECT_NEAR(log2q, std::round(log2q), 1e-12);
  // Monotone (weakly) in the estimate.
  EXPECT_GE(p.insertion_duration_dynamic(100.0, 0.5, 0.5), i1);
}

TEST(AlgoParams, DynamicBOutsideEq12Warns) {
  AlgoParams p = good_params();
  p.insertion = InsertionPolicy::kStagedDynamic;
  p.B = 64.0;  // far below 320*2^7/(1-rho)^2
  const auto r = p.validate();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.warnings.empty());
}

TEST(AlgoParams, HandshakeDeltaMatchesListing1) {
  AlgoParams p = good_params();
  EdgeParams e;
  e.tau = 0.5;
  e.msg_delay_max = 0.5;
  const double expected =
      (1.0 + p.rho) * (1.0 + p.mu) * (0.5 + 0.5) / (1.0 - p.rho) + 0.5;
  EXPECT_NEAR(p.handshake_delta(e), expected, 1e-12);
  // Delta - tau >= T + tau (needed for the follower wait window).
  EXPECT_GE(p.handshake_delta(e) - e.tau, e.msg_delay_max + e.tau);
}

TEST(InsertionPolicyNames, AllDistinct) {
  EXPECT_STREQ(to_string(InsertionPolicy::kStagedStatic), "staged-static");
  EXPECT_STREQ(to_string(InsertionPolicy::kStagedDynamic), "staged-dynamic");
  EXPECT_STREQ(to_string(InsertionPolicy::kImmediate), "immediate");
  EXPECT_STREQ(to_string(InsertionPolicy::kWeightDecay), "weight-decay");
}

}  // namespace
}  // namespace gcs
