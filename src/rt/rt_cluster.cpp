#include "rt/rt_cluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "graph/topology.h"
#include "metrics/skew.h"
#include "util/csv.h"

namespace gcs {

namespace {

/// Resolve the topology exactly as Scenario's constructor will (same seed,
/// same registry, same RNG stream), so the hub can be sized before any
/// replica exists. Every replica then re-derives the identical edge list.
TopologyResult resolve_topology(const ScenarioSpec& spec) {
  Rng topo_rng(spec.seed);
  TopologyArgs targs{spec.n, topo_rng, &spec.explicit_edges};
  const auto& entry = topology_registry().get(spec.topology.kind);
  TopologyResult topo = entry.factory(spec.topology.params, targs);
  require(topo.n >= 1, "RtCluster: topology produced n < 1");
  return topo;
}

}  // namespace

RtCluster::RtCluster(const ScenarioSpec& spec, TimeSource& clock,
                     const FaultSpec& faults, std::size_t ring_capacity)
    : clock_(clock) {
  TopologyResult topo = resolve_topology(spec);
  edges_ = std::move(topo.edges);
  hub_ = std::make_unique<PipeHub>(topo.n, clock, faults, ring_capacity);
  nodes_.reserve(static_cast<std::size_t>(topo.n));
  for (NodeId u = 0; u < topo.n; ++u) {
    nodes_.push_back(std::make_unique<RtNode>(spec, u, *hub_, clock));
  }
  samples_.resize(nodes_.size());
}

void RtCluster::start() {
  require(!started_, "RtCluster: start() called twice");
  started_ = true;
  for (auto& node : nodes_) node->start();
}

void RtCluster::schedule_samples(Time horizon, Duration period) {
  require(started_, "RtCluster: schedule_samples() before start()");
  require(period > 0.0, "RtCluster: sample period must be positive");
  const int count = static_cast<int>(std::floor(horizon / period + 1e-9));
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    samples_[u].clear();
    samples_[u].reserve(static_cast<std::size_t>(count));
    RtNode* node = nodes_[u].get();
    std::vector<RtSample>* out = &samples_[u];
    for (int k = 1; k <= count; ++k) {
      const Time t = static_cast<Time>(k) * period;
      node->at(t, [node, out, t] {
        out->push_back(RtSample{t, node->logical(), node->hardware()});
      });
    }
  }
}

void RtCluster::run_lockstep(VirtualClock& vclock, Time horizon, Duration step) {
  require(started_, "RtCluster: run before start()");
  require(step > 0.0, "RtCluster: step must be positive");
  // A fixed number of round-robin sub-rounds per increment bounds message
  // latency at one step while letting multi-leg exchanges (probe → response
  // → estimate consumption) complete within the same model instant.
  constexpr int kRounds = 4;
  for (Time t = step; t < horizon + step * 0.5; t += step) {
    vclock.advance_to(std::min(t, horizon));
    for (int round = 0; round < kRounds; ++round) {
      for (auto& node : nodes_) node->pump();
    }
  }
}

void RtCluster::run_threads(Time horizon, Duration poll_interval) {
  require(started_, "RtCluster: run before start()");
  require(poll_interval > 0.0, "RtCluster: poll interval must be positive");
  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (auto& node_ptr : nodes_) {
    RtNode* node = node_ptr.get();
    threads.emplace_back([node, horizon, poll_interval] {
      while (node->pump() < horizon) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(poll_interval));
      }
      // One last drain so frames sent by slower peers near the horizon are
      // still consumed (their senders may reach the horizon after us).
      node->pump();
    });
  }
  for (auto& th : threads) th.join();
}

TimeSeries RtCluster::edge_skew_series(const EdgeKey& e) const {
  const auto& sa = samples_[static_cast<std::size_t>(e.a)];
  const auto& sb = samples_[static_cast<std::size_t>(e.b)];
  const std::size_t count = std::min(sa.size(), sb.size());
  TimeSeries series;
  for (std::size_t k = 0; k < count; ++k) {
    series.add(sa[k].t, std::abs(sa[k].logical - sb[k].logical));
  }
  return series;
}

std::vector<RtEdgeReport> RtCluster::edge_report(int warmup_samples) {
  std::vector<RtEdgeReport> reports;
  reports.reserve(edges_.size());
  const AlgoParams& params = nodes_.front()->scenario().spec().aopt;
  for (const EdgeKey& e : edges_) {
    RtEdgeReport r;
    r.edge = e;
    Engine& engine = node(e.a).engine();
    r.eps = engine.edge_eps(e);
    r.kappa = engine.metric_kappa(e);
    r.bound = gradient_bound(r.kappa, params.gtilde_static, params.sigma());
    const TimeSeries series = edge_skew_series(e);
    double sum = 0.0;
    for (std::size_t k = static_cast<std::size_t>(warmup_samples);
         k < series.size(); ++k) {
      const double skew = series.points()[k].second;
      r.max_abs_skew = std::max(r.max_abs_skew, skew);
      sum += skew;
      ++r.samples;
    }
    r.mean_abs_skew = r.samples > 0 ? sum / r.samples : 0.0;
    reports.push_back(r);
  }
  return reports;
}

void RtCluster::write_skew_csv(const std::string& path, int warmup_samples) {
  CsvWriter csv(path);
  csv.row({"t", "a", "b", "skew", "eps", "kappa", "bound"});
  for (const EdgeKey& e : edges_) {
    Engine& engine = node(e.a).engine();
    const double eps = engine.edge_eps(e);
    const double kappa = engine.metric_kappa(e);
    const double bound =
        gradient_bound(kappa, nodes_.front()->scenario().spec().aopt.gtilde_static,
                       nodes_.front()->scenario().spec().aopt.sigma());
    const TimeSeries series = edge_skew_series(e);
    for (std::size_t k = static_cast<std::size_t>(warmup_samples);
         k < series.size(); ++k) {
      csv.field(series.points()[k].first)
          .field(e.a)
          .field(e.b)
          .field(series.points()[k].second)
          .field(eps)
          .field(kappa)
          .field(bound)
          .endrow();
    }
  }
}

}  // namespace gcs
