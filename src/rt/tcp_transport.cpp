#include "rt/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace gcs {

namespace {

// Mirrors the CorruptDraw in rt_transport.cpp: one u64 per send decides
// both whether to flip and which bit (past the 2-byte length prefix —
// corrupting the prefix would desynchronize the stream, and framing is a
// transport invariant, not what the CRC guards).
struct CorruptDraw {
  std::uint64_t raw = 0;
  [[nodiscard]] bool hit(float probability) const {
    if (probability <= 0.0f) return false;
    const double u = static_cast<double>(raw >> 11) * 0x1.0p-53;
    return u < static_cast<double>(probability);
  }
  void flip(std::uint8_t* frame, std::size_t len) const {
    const std::size_t nbits = (len - 2) * 8;
    const std::size_t bit = 2 * 8 + static_cast<std::size_t>(raw % nbits);
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
};

void set_nodelay(int fd) {
  // Beacons are latency-sensitive; Nagle batching would stretch delivery
  // past msg_delay_max at high time scales.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

TcpTransport::TcpTransport(int n, NodeId self, std::uint16_t base_port,
                           TimeSource& clock, std::uint64_t chaos_seed,
                           const TcpConfig& config)
    : n_(n), self_(self), base_port_(base_port), clock_(clock), config_(config) {
  require(n >= 1 && self >= 0 && self < n, "TcpTransport: bad node");
  require(config_.backoff_base > 0.0 && config_.backoff_max >= config_.backoff_base,
          "TcpTransport: bad backoff configuration");
  require(config_.write_buffer_cap >= kWireMax,
          "TcpTransport: write buffer smaller than one frame");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  require(listen_fd_ >= 0, "TcpTransport: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr =
      loopback_addr(static_cast<std::uint16_t>(base_port + self));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    require(false, "TcpTransport: listen(127.0.0.1:" +
                       std::to_string(base_port + self) + ") failed: " + err);
  }
  out_.resize(static_cast<std::size_t>(n));
  // Same per-directed-link stream derivation as the UDP backend, so every
  // node in a cluster reproduces its own outbound decisions from
  // (chaos_seed, self, to, send count) alone.
  Rng chaos_root(chaos_seed ^ 0xc4a05ULL);
  Rng corrupt_root(chaos_seed ^ 0xf11bULL);
  Rng backoff_root(chaos_seed ^ 0xb0ffULL);
  chaos_rngs_.reserve(static_cast<std::size_t>(n));
  corrupt_rngs_.reserve(static_cast<std::size_t>(n));
  backoff_rngs_.reserve(static_cast<std::size_t>(n));
  for (NodeId to = 0; to < n; ++to) {
    const std::uint64_t stream =
        static_cast<std::uint64_t>(self) * static_cast<std::uint64_t>(n) +
        static_cast<std::uint64_t>(to);
    chaos_rngs_.push_back(chaos_root.fork(stream));
    corrupt_rngs_.push_back(corrupt_root.fork(stream));
    backoff_rngs_.push_back(backoff_root.fork(stream));
  }
  link_faults_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(n));
  reset_requests_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(n));
}

TcpTransport::~TcpTransport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (OutConn& c : out_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  for (InConn& c : in_) {
    if (c.fd >= 0) ::close(c.fd);
  }
}

void TcpTransport::set_link_fault(NodeId from, NodeId to, const LinkFault& f) {
  if (from != self_) return;  // the peer's transport owns the reverse slot
  require(to >= 0 && to < n_ && to != self_, "TcpTransport: bad link");
  link_faults_[static_cast<std::size_t>(to)].store(pack_link_fault(f),
                                                   std::memory_order_relaxed);
}

void TcpTransport::request_reset(NodeId peer) {
  require(peer >= 0 && peer < n_ && peer != self_, "TcpTransport: bad peer");
  reset_requests_[static_cast<std::size_t>(peer)].store(
      true, std::memory_order_release);
}

TcpTransport::ConnState TcpTransport::conn_state(NodeId peer) const {
  require(peer >= 0 && peer < n_, "TcpTransport: bad peer");
  return out_[static_cast<std::size_t>(peer)].state;
}

int TcpTransport::backoff_attempts(NodeId peer) const {
  require(peer >= 0 && peer < n_, "TcpTransport: bad peer");
  return out_[static_cast<std::size_t>(peer)].attempt;
}

Duration TcpTransport::last_backoff(NodeId peer) const {
  require(peer >= 0 && peer < n_, "TcpTransport: bad peer");
  return out_[static_cast<std::size_t>(peer)].last_backoff;
}

void TcpTransport::fail_connection(OutConn& c, Time now, bool hard_reset) {
  if (c.fd >= 0) {
    if (hard_reset) {
      // linger(0) turns close() into an RST — a genuine reset on the wire,
      // which is what the conn-reset chaos verb promises.
      linger lg{1, 0};
      ::setsockopt(c.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    ::close(c.fd);
    c.fd = -1;
  }
  ++resets_;
  conn_down_ += c.wbuf.size();  // frames that died with the connection
  c.wbuf.clear();
  c.head_written = 0;
  c.wbuf_bytes = 0;
  c.state = ConnState::kBackoff;
  // Exponential backoff with deterministic seeded jitter: attempt k waits
  // min(base * 2^k, max) * (1 + jitter * u), u from the per-peer stream.
  constexpr int kAttemptCap = 16;  // backoff_max dominates long before this
  const int exponent = std::min(c.attempt, kAttemptCap);
  c.attempt = std::min(c.attempt + 1, kAttemptCap);
  const Duration base =
      std::min(config_.backoff_base * std::ldexp(1.0, exponent),
               config_.backoff_max);
  // NOTE: c is always out_[peer]; index recovered to pick the jitter stream.
  const std::size_t peer = static_cast<std::size_t>(&c - out_.data());
  const double u = backoff_rngs_[peer].uniform(0.0, 1.0);
  c.last_backoff = base * (1.0 + config_.jitter * u);
  c.retry_at = now + c.last_backoff;
}

void TcpTransport::dial(OutConn& c, NodeId peer, Time now) {
  c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (c.fd < 0) {
    fail_connection(c, now, /*hard_reset=*/false);
    return;
  }
  set_nodelay(c.fd);
  const sockaddr_in addr =
      loopback_addr(static_cast<std::uint16_t>(base_port_ + peer));
  const int rc =
      ::connect(c.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    c.state = ConnState::kEstablished;
    c.attempt = 0;
    ++reconnects_;
  } else if (errno == EINPROGRESS) {
    c.state = ConnState::kConnecting;
  } else {
    fail_connection(c, now, /*hard_reset=*/false);
  }
}

void TcpTransport::progress(OutConn& c, NodeId peer, Time now) {
  switch (c.state) {
    case ConnState::kClosed:
      dial(c, peer, now);
      break;
    case ConnState::kBackoff:
      if (now >= c.retry_at) dial(c, peer, now);
      break;
    case ConnState::kConnecting: {
      pollfd pfd{c.fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 0) <= 0) break;  // handshake still in flight
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0 || (pfd.revents & (POLLERR | POLLHUP)) != 0) {
        fail_connection(c, now, /*hard_reset=*/false);
      } else if ((pfd.revents & POLLOUT) != 0) {
        c.state = ConnState::kEstablished;
        c.attempt = 0;
        ++reconnects_;
        flush_wbuf(c, now);
      }
      break;
    }
    case ConnState::kEstablished:
      flush_wbuf(c, now);
      break;
  }
}

void TcpTransport::consume_reset_requests(Time now) {
  for (NodeId peer = 0; peer < n_; ++peer) {
    if (!reset_requests_[static_cast<std::size_t>(peer)].exchange(
            false, std::memory_order_acquire)) {
      continue;
    }
    OutConn& c = out_[static_cast<std::size_t>(peer)];
    if (c.fd >= 0) fail_connection(c, now, /*hard_reset=*/true);
    // Resetting an already-down connection is a no-op: the state machine is
    // in Backoff and will re-dial on its own schedule.
  }
}

bool TcpTransport::enqueue_frame(OutConn& c, const std::uint8_t* frame,
                                 std::size_t len) {
  if (c.wbuf_bytes + len > config_.write_buffer_cap) {
    ++backpressure_;
    return false;
  }
  c.wbuf.emplace_back(frame, frame + len);
  c.wbuf_bytes += len;
  ++sent_;
  return true;
}

void TcpTransport::flush_wbuf(OutConn& c, Time now) {
  while (!c.wbuf.empty()) {
    const std::vector<std::uint8_t>& head = c.wbuf.front();
    const ssize_t rc = ::send(c.fd, head.data() + c.head_written,
                              head.size() - c.head_written, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // kernel full
      fail_connection(c, now, /*hard_reset=*/false);
      return;
    }
    c.head_written += static_cast<std::size_t>(rc);
    if (c.head_written < head.size()) return;  // partial write, retry later
    c.wbuf_bytes -= head.size();
    c.head_written = 0;
    c.wbuf.pop_front();
  }
}

void TcpTransport::flush_stash(Time now) {
  while (!stash_.empty() && stash_.top().release_at <= now) {
    const Stashed& top = stash_.top();
    OutConn& c = out_[static_cast<std::size_t>(top.to)];
    progress(c, top.to, now);
    if (c.state == ConnState::kEstablished || c.state == ConnState::kConnecting) {
      if (enqueue_frame(c, top.frame.data(), top.len) &&
          c.state == ConnState::kEstablished) {
        flush_wbuf(c, now);
      }
    } else {
      ++conn_down_;
    }
    stash_.pop();
  }
}

bool TcpTransport::send(const WireMsg& m) {
  require(m.to >= 0 && m.to < n_ && m.to != self_, "TcpTransport: bad addressing");
  const Time now = clock_.now();
  consume_reset_requests(now);
  flush_stash(now);
  OutConn& c = out_[static_cast<std::size_t>(m.to)];
  progress(c, m.to, now);
  // One draw per stream per send, armed or not (see rt_transport.h): the
  // decision sequences stay pure functions of the per-link send count.
  const double roll = chaos_rngs_[static_cast<std::size_t>(m.to)].uniform(0.0, 1.0);
  const CorruptDraw corrupt{corrupt_rngs_[static_cast<std::size_t>(m.to)].next()};
  const LinkFault chaos = unpack_link_fault(
      link_faults_[static_cast<std::size_t>(m.to)].load(std::memory_order_relaxed));
  if (roll < chaos.drop) {
    ++dropped_;
    return true;  // swallowed in flight; the sender cannot tell
  }
  if (c.state != ConnState::kEstablished && c.state != ConnState::kConnecting) {
    // Down connection: degrade to the plain drop contract. AOPT tolerates
    // loss; re-convergence after the reconnect heals the cluster.
    ++conn_down_;
    return false;
  }
  std::uint8_t frame[kWireMax];
  const std::size_t len = wire_encode(m, frame);
  if (corrupt.hit(chaos.corrupt)) {
    corrupt.flip(frame, len);
    ++corrupted_;
  }
  if (chaos.extra_delay > 0.0f) {
    Stashed stashed;
    stashed.release_at = now + chaos.extra_delay;
    stashed.seq = stash_seq_++;
    std::memcpy(stashed.frame.data(), frame, len);
    stashed.len = len;
    stashed.to = m.to;
    stash_.push(stashed);
    return true;
  }
  if (!enqueue_frame(c, frame, len)) return false;
  if (c.state == ConnState::kEstablished) flush_wbuf(c, now);
  return true;
}

void TcpTransport::accept_pending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN: no pending handshakes
    set_nodelay(fd);
    InConn c;
    c.fd = fd;
    in_.push_back(std::move(c));
  }
}

void TcpTransport::parse_frames(InConn& c) {
  while (c.rbuf.size() - c.consumed >= 2) {
    std::uint16_t body = 0;
    std::memcpy(&body, c.rbuf.data() + c.consumed, 2);
    const std::size_t frame_len = static_cast<std::size_t>(body) + 2;
    if (frame_len > kWireMax) {
      // A corrupted length prefix poisons the stream — there is no way to
      // resync. Drop the connection; the peer's reconnect machine re-dials.
      ++rejected_;
      ::close(c.fd);
      c.fd = -1;
      return;
    }
    if (c.rbuf.size() - c.consumed < frame_len) return;  // partial frame
    WireMsg msg;
    if (wire_decode(c.rbuf.data() + c.consumed, frame_len, msg)) {
      pending_.push_back(msg);
      ++received_;
    } else {
      // Framing is intact (we advanced by the prefix), the content is not:
      // CRC mismatch or malformed fields. Count and skip.
      ++rejected_;
    }
    c.consumed += frame_len;
  }
}

void TcpTransport::read_connections() {
  for (InConn& c : in_) {
    std::uint8_t chunk[4096];
    for (;;) {
      const ssize_t rc = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (rc > 0) {
        c.rbuf.insert(c.rbuf.end(), chunk, chunk + rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or a real error (ECONNRESET from a chaos conn-reset): the
      // sender side owns re-establishment; we just clean up.
      ::close(c.fd);
      c.fd = -1;
      break;
    }
    if (c.fd >= 0 || !c.rbuf.empty()) parse_frames(c);
    if (c.consumed == c.rbuf.size()) {
      c.rbuf.clear();
      c.consumed = 0;
    } else if (c.consumed > sizeof(chunk)) {
      c.rbuf.erase(c.rbuf.begin(),
                   c.rbuf.begin() + static_cast<std::ptrdiff_t>(c.consumed));
      c.consumed = 0;
    }
  }
  in_.erase(std::remove_if(in_.begin(), in_.end(),
                           [](const InConn& c) { return c.fd < 0; }),
            in_.end());
}

bool TcpTransport::poll(NodeId self, WireMsg& out) {
  require(self == self_, "TcpTransport: instance serves one node");
  const Time now = clock_.now();
  consume_reset_requests(now);
  flush_stash(now);
  // Progress every non-idle outbound connection: finish handshakes, drain
  // write buffers, re-dial expired backoffs (a peer we have traffic for
  // should come back even between sends — liveness probes depend on it).
  for (NodeId peer = 0; peer < n_; ++peer) {
    OutConn& c = out_[static_cast<std::size_t>(peer)];
    if (c.state != ConnState::kClosed) progress(c, peer, now);
  }
  accept_pending();
  read_connections();
  if (pending_.empty()) return false;
  out = pending_.front();
  pending_.pop_front();
  return true;
}

}  // namespace gcs
