// The TimeSource seam: where "now" comes from.
//
// The simulator kernel owns time in simulation mode (SimClock is a read-only
// adapter and refuses to sleep — the kernel advances time by firing events).
// In service mode the roles invert: a wall clock owns time and the runtime
// executor *slaves* the kernel to it with sim.run_until(clock.now()), so the
// same Engine/AoptNode code runs unmodified against real time. ScaledClock
// compresses wall time into model time for accelerated soak tests, and
// VirtualClock is a hand-cranked wall clock for deterministic runtime tests.
//
// All times are model-time seconds (the unit the whole codebase uses).
#pragma once

#include <condition_variable>
#include <mutex>

#include "sim/simulator.h"
#include "util/common.h"

namespace gcs {

class TimeSource {
 public:
  virtual ~TimeSource() = default;

  /// Current model time. Monotone non-decreasing.
  [[nodiscard]] virtual Time now() = 0;

  /// Block the calling thread until now() >= t. May wake late (scheduler
  /// slop) but never early-returns with now() < t.
  virtual void sleep_until(Time t) = 0;
};

/// Simulation mode: time IS the kernel's clock. Read-only — the kernel
/// advances time by firing events, so sleeping here is a logic error
/// (nothing else could ever move the clock forward).
class SimClock final : public TimeSource {
 public:
  explicit SimClock(Simulator& sim) : sim_(sim) {}
  Time now() override { return sim_.now(); }
  void sleep_until(Time t) override {
    require(t <= sim_.now(), "SimClock: cannot sleep (the kernel owns time)");
  }

 private:
  Simulator& sim_;
};

/// Wall clock: std::chrono::steady_clock seconds since an epoch shared by
/// every thread in the process (the clock's own epoch, NOT construction
/// time — two MonotonicClock instances agree, which is what lets separate
/// gcsd processes on one machine share a timeline up to process start skew).
class MonotonicClock final : public TimeSource {
 public:
  Time now() override;
  void sleep_until(Time t) override;
};

/// Decorator: model time runs `scale` times faster than the inner clock,
/// with model t=0 anchored at construction. scale=10 turns a 30 s wall-clock
/// soak into 300 s of model time.
class ScaledClock final : public TimeSource {
 public:
  ScaledClock(TimeSource& inner, double scale);
  /// Explicit-origin variant: model t=0 anchored at inner time `origin`
  /// instead of construction time. Separate gcsd processes pass the same
  /// origin to share a model timeline (MonotonicClock's epoch is machine-
  /// wide, so equal origins mean equal model clocks up to OS clock slop).
  ScaledClock(TimeSource& inner, double scale, Time origin);
  Time now() override { return (inner_.now() - origin_) * scale_; }
  void sleep_until(Time t) override { inner_.sleep_until(origin_ + t / scale_); }

 private:
  TimeSource& inner_;
  double scale_;
  Time origin_;
};

/// Hand-cranked wall clock for deterministic runtime tests: time moves only
/// when the test driver calls advance_to(). Thread-safe; sleepers are woken
/// by each advance.
class VirtualClock final : public TimeSource {
 public:
  Time now() override;
  void sleep_until(Time t) override;
  /// Move time forward (backwards throws). Wakes every sleeper.
  void advance_to(Time t);
  void advance(Duration dt);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  Time now_ = 0.0;
};

}  // namespace gcs
