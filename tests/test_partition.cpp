#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/partition.h"
#include "graph/topology.h"
#include "util/rng.h"

namespace gcs {
namespace {

/// Every node assigned, island indices dense in [0, islands), and the cut is
/// exactly the set of edges whose endpoints differ.
void expect_valid_partition(const IslandPlan& plan, int n,
                            const std::vector<EdgeKey>& edges) {
  ASSERT_EQ(plan.island_of.size(), static_cast<std::size_t>(n));
  std::set<int> used;
  for (int u = 0; u < n; ++u) {
    ASSERT_GE(plan.island_of[u], 0);
    ASSERT_LT(plan.island_of[u], plan.islands);
    used.insert(plan.island_of[u]);
  }
  EXPECT_EQ(static_cast<int>(used.size()), plan.islands);
  std::vector<EdgeKey> expect_cut;
  for (const EdgeKey& e : edges)
    if (plan.island_of[e.a] != plan.island_of[e.b]) expect_cut.push_back(e);
  EXPECT_EQ(plan.cut, expect_cut);
}

std::vector<std::int64_t> island_sizes(const IslandPlan& plan) {
  std::vector<std::int64_t> sizes(plan.islands, 0);
  for (const int i : plan.island_of) ++sizes[i];
  return sizes;
}

TEST(ConnectedComponents, NumberedByLowestMember) {
  // {0,1,2} line, {3} isolated, {4,5} edge.
  const std::vector<EdgeKey> edges = {EdgeKey(0, 1), EdgeKey(1, 2), EdgeKey(4, 5)};
  int count = 0;
  const std::vector<int> comp = connected_components(6, edges, &count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp, (std::vector<int>{0, 0, 0, 1, 2, 2}));
}

TEST(ConnectedComponents, EdgeOrderInvariant) {
  std::vector<EdgeKey> edges = topo_grid(4, 4);
  int count_fwd = 0;
  const std::vector<int> fwd = connected_components(16, edges, &count_fwd);
  std::reverse(edges.begin(), edges.end());
  int count_rev = 0;
  const std::vector<int> rev = connected_components(16, edges, &count_rev);
  EXPECT_EQ(count_fwd, 1);
  EXPECT_EQ(fwd, rev);
}

TEST(Partition, ComponentsBinPackWithEmptyCut) {
  // Three components of sizes 3, 2, 1 into two islands: largest alone,
  // the two smaller ones together — perfectly balanced, zero cross edges.
  const std::vector<EdgeKey> edges = {EdgeKey(0, 1), EdgeKey(1, 2), EdgeKey(3, 4)};
  const IslandPlan plan = partition_islands(6, edges, 2);
  ASSERT_TRUE(plan.feasible) << plan.reason;
  expect_valid_partition(plan, 6, edges);
  EXPECT_EQ(plan.islands, 2);
  EXPECT_TRUE(plan.cut.empty());
  const auto sizes = island_sizes(plan);
  EXPECT_EQ(sizes[0], 3);
  EXPECT_EQ(sizes[1], 3);
}

TEST(Partition, LineSplitsAtTheMiddle) {
  const std::vector<EdgeKey> edges = topo_line(16);
  const IslandPlan plan = partition_islands(16, edges, 2);
  ASSERT_TRUE(plan.feasible) << plan.reason;
  expect_valid_partition(plan, 16, edges);
  EXPECT_EQ(plan.islands, 2);
  EXPECT_EQ(plan.cut.size(), 1u);
  const auto sizes = island_sizes(plan);
  EXPECT_EQ(sizes[0], 8);
  EXPECT_EQ(sizes[1], 8);
}

TEST(Partition, GridTwoWayCutStaysNarrow) {
  const std::vector<EdgeKey> edges = topo_grid(8, 8);
  const IslandPlan plan = partition_islands(64, edges, 2);
  ASSERT_TRUE(plan.feasible) << plan.reason;
  expect_valid_partition(plan, 64, edges);
  EXPECT_EQ(plan.islands, 2);
  // A balanced bisection of an 8x8 grid cuts >= 8 edges; the greedy grower
  // should stay within 2x of that and keep the halves balanced.
  EXPECT_LE(plan.cut.size(), 16u);
  const auto sizes = island_sizes(plan);
  EXPECT_GE(*std::min_element(sizes.begin(), sizes.end()), 16);
}

TEST(Partition, TorusFourWay) {
  const std::vector<EdgeKey> edges = topo_torus(8, 8);
  const IslandPlan plan = partition_islands(64, edges, 4);
  ASSERT_TRUE(plan.feasible) << plan.reason;
  expect_valid_partition(plan, 64, edges);
  EXPECT_EQ(plan.islands, 4);
  const auto sizes = island_sizes(plan);
  EXPECT_GE(*std::min_element(sizes.begin(), sizes.end()), 8);
  // Default budget is n = 64; a 4-way torus split must fit it.
  EXPECT_LE(plan.cut.size(), 64u);
}

TEST(Partition, CompleteGraphIsInfeasibleUnderDefaultBudget) {
  // Any bipartition of K16 cuts 8*8 = 64 > n = 16 edges: serial fallback.
  const std::vector<EdgeKey> edges = topo_complete(16);
  const IslandPlan plan = partition_islands(16, edges, 2);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.reason.find("budget"), std::string::npos) << plan.reason;
}

TEST(Partition, CutBudgetForcesFallback) {
  const std::vector<EdgeKey> edges = topo_grid(8, 8);
  const IslandPlan feasible = partition_islands(64, edges, 2);
  ASSERT_TRUE(feasible.feasible) << feasible.reason;
  ASSERT_GE(feasible.cut.size(), 2u);
  // The same partition with a budget below its own cut must refuse.
  const IslandPlan refused =
      partition_islands(64, edges, 2, static_cast<int>(feasible.cut.size()) - 1);
  EXPECT_FALSE(refused.feasible);
  EXPECT_NE(refused.reason.find("budget"), std::string::npos) << refused.reason;
}

TEST(Partition, SingleIslandIsAlwaysFeasible) {
  const std::vector<EdgeKey> edges = topo_complete(8);
  const IslandPlan plan = partition_islands(8, edges, 1);
  ASSERT_TRUE(plan.feasible) << plan.reason;
  EXPECT_EQ(plan.islands, 1);
  EXPECT_TRUE(plan.cut.empty());
  expect_valid_partition(plan, 8, edges);
}

TEST(Partition, MoreIslandsThanNodesClampsToSingletons) {
  const std::vector<EdgeKey> edges = topo_line(4);
  const IslandPlan plan = partition_islands(4, edges, 8, 8);
  ASSERT_TRUE(plan.feasible) << plan.reason;
  EXPECT_EQ(plan.islands, 4);
  expect_valid_partition(plan, 4, edges);
}

TEST(Partition, DegenerateInputsAreInfeasible) {
  EXPECT_FALSE(partition_islands(0, {}, 2).feasible);
  EXPECT_FALSE(partition_islands(8, topo_line(8), 0).feasible);
  // One node cannot make two islands.
  EXPECT_FALSE(partition_islands(1, {}, 2).feasible);
}

TEST(Partition, DeterministicForFixedInput) {
  Rng rng(7);
  const std::vector<EdgeKey> edges = topo_gnp_connected(48, 0.08, rng);
  const IslandPlan a = partition_islands(48, edges, 4);
  const IslandPlan b = partition_islands(48, edges, 4);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.islands, b.islands);
  EXPECT_EQ(a.island_of, b.island_of);
  EXPECT_EQ(a.cut, b.cut);
}

}  // namespace
}  // namespace gcs
