// Runtime transports: how WireMsgs move between live nodes.
//
// Two backends behind one two-call interface (non-blocking send, non-
// blocking poll):
//
//  * PipeHub — in-process: one lock-free SPSC ring per directed node pair
//    (sender thread is the sole producer, receiver thread the sole
//    consumer). Faults are injected on the SENDER side from a per-directed-
//    edge RNG, so a fixed seed yields the same drop/duplicate/delay decision
//    sequence regardless of thread interleaving; delayed copies carry a
//    deliver_at stamp and are physically held back in a receiver-side
//    pending heap until the clock passes it (which is what turns a "reorder"
//    decision into an actual reordering relative to later sends).
//
//  * UdpTransport — one non-blocking UDP socket per node on 127.0.0.1,
//    frames encoded with the length-prefixed wire format (rt/wire.h).
//    Real sockets bring their own faults; transient send failures
//    (EAGAIN/ENOBUFS) get a bounded retry and land in send_errors(), never
//    in the injected-fault counters.
//
// Both backends additionally carry one chaos LinkFault slot per directed
// link (rt/chaos.h): a lock-free atomic the ChaosScheduler writes from any
// thread and the sender reads per frame. Chaos decisions come from their
// own per-link RNG stream which draws exactly one uniform per send whether
// or not a fault is armed — like the FaultSpec stream, the decision
// sequence is a pure function of the per-link send count, which is what
// makes lockstep chaos runs bit-reproducible. Corruption faults draw from
// a third, equally disciplined per-link stream (one u64 per send): the
// decision AND the flipped bit position come from that single draw, so
// arming corruption never perturbs the drop-roll sequence. Flips land
// anywhere past the 2-byte length prefix — corrupting the prefix would
// break stream framing, which is a transport invariant, not an integrity
// property the CRC is meant to catch. Every transport counts undecodable
// ingress in rejected().
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <queue>
#include <vector>

#include "rt/chaos.h"
#include "rt/spsc_ring.h"
#include "rt/time_source.h"
#include "rt/wire.h"
#include "util/rng.h"

namespace gcs {

class RtTransport {
 public:
  virtual ~RtTransport() = default;

  /// Non-blocking. False if the message could not be queued (backpressure /
  /// socket error) — callers treat that as a drop, never as fatal.
  virtual bool send(const WireMsg& m) = 0;

  /// Non-blocking receive for node `self`. False when nothing is ready.
  virtual bool poll(NodeId self, WireMsg& out) = 0;

  /// Chaos fault slot of the directed link from -> to (see rt/chaos.h).
  virtual void set_link_fault(NodeId from, NodeId to, const LinkFault& f) = 0;

  /// Ingress frames discarded as malformed — truncated, unknown version,
  /// or failing the CRC check. Every chaos-injected corruption must end up
  /// here; a nonzero count with no corruption armed means a real integrity
  /// problem on the wire.
  [[nodiscard]] virtual std::uint64_t rejected() const = 0;
};

/// Sender-side fault injection for the pipe backend. Probabilities are per
/// message; `delay` holds a message back for uniform(0, delay] model seconds
/// with probability `reorder` (later un-delayed messages overtake it), and
/// `jitter` adds uniform [0, jitter) to every message.
struct FaultSpec {
  double drop = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
  Duration delay = 0.0;   ///< held-back duration drawn for reordered messages
  Duration jitter = 0.0;  ///< baseline delivery jitter on every message
  std::uint64_t seed = 1;
};

class PipeHub final : public RtTransport {
 public:
  PipeHub(int n, TimeSource& clock, const FaultSpec& faults = {},
          std::size_t ring_capacity = 1024);

  bool send(const WireMsg& m) override;
  bool poll(NodeId self, WireMsg& out) override;
  void set_link_fault(NodeId from, NodeId to, const LinkFault& f) override;

  [[nodiscard]] std::uint64_t sent() const { return sent_.load(std::memory_order_relaxed); }
  /// FaultSpec-injected drops only: a pure function of the fault spec and
  /// the per-link send counts. Chaos and backpressure count separately.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t delayed() const { return delayed_.load(std::memory_order_relaxed); }
  /// ChaosScheduler-injected drops (LinkFault slots).
  [[nodiscard]] std::uint64_t chaos_dropped() const { return chaos_dropped_.load(std::memory_order_relaxed); }
  /// SPSC-ring-full producer failures: backpressure loss, total and per
  /// directed link. Nonzero means the cluster is outrunning its consumers —
  /// distinct from every injected-fault counter.
  [[nodiscard]] std::uint64_t ring_full() const { return ring_full_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t ring_full(NodeId from, NodeId to) const {
    return ring_full_link_[link_index(from, to)].load(std::memory_order_relaxed);
  }
  /// Chaos-injected bit flips. Pipe frames never leave the process, so the
  /// corruption is simulated faithfully: the frame is wire-encoded, one bit
  /// flipped, and re-decoded; a decode failure (CRC catches every single-bit
  /// flip) lands in rejected() and the frame dies in flight.
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t rejected() const override { return rejected_.load(std::memory_order_relaxed); }

 private:
  struct PendingOrder {  // min-heap on (deliver_at, arrival seq)
    bool operator()(const std::pair<WireMsg, std::uint64_t>& a,
                    const std::pair<WireMsg, std::uint64_t>& b) const {
      if (a.first.deliver_at != b.first.deliver_at) {
        return a.first.deliver_at > b.first.deliver_at;
      }
      return a.second > b.second;
    }
  };
  /// Receiver-side reassembly state: ring pops land here and leave in
  /// deliver_at order. Owned exclusively by the receiver's thread.
  struct Inbox {
    std::priority_queue<std::pair<WireMsg, std::uint64_t>,
                        std::vector<std::pair<WireMsg, std::uint64_t>>, PendingOrder>
        pending;
    std::uint64_t seq = 0;
  };

  [[nodiscard]] std::size_t link_index(NodeId from, NodeId to) const {
    return static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(to);
  }
  SpscRing<WireMsg>& ring(NodeId from, NodeId to) {
    return *rings_[link_index(from, to)];
  }
  Rng& edge_rng(NodeId from, NodeId to) { return rngs_[link_index(from, to)]; }
  bool push_one(const WireMsg& m);

  int n_;
  TimeSource& clock_;
  FaultSpec faults_;
  std::vector<std::unique_ptr<SpscRing<WireMsg>>> rings_;  ///< [from * n + to]
  std::vector<Rng> rngs_;        ///< sender-owned, per directed edge (FaultSpec)
  std::vector<Rng> chaos_rngs_;  ///< sender-owned, per directed edge (chaos)
  /// Sender-owned corruption stream, separate from chaos_rngs_ so arming a
  /// corrupt fault cannot shift the established drop-roll sequence (both
  /// streams draw exactly once per send, armed or not).
  std::vector<Rng> corrupt_rngs_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> link_faults_;    ///< packed LinkFault
  std::unique_ptr<std::atomic<std::uint64_t>[]> ring_full_link_; ///< per directed edge
  std::vector<Inbox> inboxes_;   ///< receiver-owned, per node
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> chaos_dropped_{0};
  std::atomic<std::uint64_t> ring_full_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// UDP loopback backend: node u binds 127.0.0.1:(base_port + u). One
/// instance serves one node (`self`); send() addresses peers by port.
/// `clock` is only needed for chaos latency storms (stashed frames are
/// released against it); a clock-less instance REJECTS arming a latency
/// fault (set_link_fault throws) rather than silently degrading the storm
/// to zero delay.
class UdpTransport final : public RtTransport {
 public:
  UdpTransport(int n, NodeId self, std::uint16_t base_port,
               TimeSource* clock = nullptr, std::uint64_t chaos_seed = 1);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  bool send(const WireMsg& m) override;
  bool poll(NodeId self, WireMsg& out) override;
  /// Only the outbound (from == self) direction is stored; the peer's
  /// transport owns the reverse slot. Other `from` values are ignored, so a
  /// full-mesh scheduler can broadcast ops and each node keeps its side.
  void set_link_fault(NodeId from, NodeId to, const LinkFault& f) override;

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  /// Chaos-injected drops only (pure function of the chaos script + seed).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Real socket-level send failures after the bounded retry — never mixed
  /// into the injected-fault accounting.
  [[nodiscard]] std::uint64_t send_errors() const { return send_errors_; }
  [[nodiscard]] std::uint64_t send_retries() const { return send_retries_; }
  /// Chaos-injected bit flips (applied to the encoded datagram before it
  /// hits the socket).
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }
  /// Undecodable ingress datagrams (truncation, foreign sender, CRC
  /// mismatch) — previously swallowed silently by poll().
  [[nodiscard]] std::uint64_t rejected() const override { return rejected_; }

 private:
  struct Stashed {  // min-heap on release_at, FIFO within ties
    Time release_at = 0.0;
    std::uint64_t seq = 0;
    // Encoded (and possibly already corrupted) frame: the corruption
    // decision belongs to send time, not release time, so bytes are what
    // the stash holds.
    std::array<std::uint8_t, kWireMax> frame{};
    std::size_t len = 0;
    NodeId to = kNoNode;
  };
  struct StashOrder {
    bool operator()(const Stashed& a, const Stashed& b) const {
      if (a.release_at != b.release_at) return a.release_at > b.release_at;
      return a.seq > b.seq;
    }
  };

  bool transmit(const std::uint8_t* frame, std::size_t len, NodeId to);
  void flush_stash();

  int n_;
  NodeId self_;
  std::uint16_t base_port_;
  int fd_ = -1;
  TimeSource* clock_ = nullptr;
  std::vector<Rng> chaos_rngs_;    ///< per destination, sender-thread owned
  std::vector<Rng> corrupt_rngs_;  ///< per destination, sender-thread owned
  std::unique_ptr<std::atomic<std::uint64_t>[]> link_faults_;  ///< per destination
  std::priority_queue<Stashed, std::vector<Stashed>, StashOrder> stash_;
  std::uint64_t stash_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t send_errors_ = 0;
  std::uint64_t send_retries_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace gcs
