#include "graph/adversary.h"

#include <algorithm>

namespace gcs {

void ScriptedAdversary::arm() {
  require(!armed_, "ScriptedAdversary: arm() called twice");
  armed_ = true;
  for (const auto& ev : script_) {
    sim_.schedule_at(ev.at, [this, ev] {
      if (ev.create) {
        graph_.create_edge(ev.edge, ev.params);
      } else {
        graph_.destroy_edge(ev.edge);
      }
    });
  }
}

ChurnAdversary::ChurnAdversary(Simulator& sim, DynamicGraph& graph,
                               std::vector<EdgeKey> candidates, EdgeParams params,
                               Config config, std::uint64_t seed)
    : sim_(sim),
      graph_(graph),
      candidates_(std::move(candidates)),
      params_(params),
      config_(config),
      rng_(seed) {
  require(config_.ops_per_time > 0.0, "ChurnAdversary: ops_per_time must be > 0");
  require(!candidates_.empty(), "ChurnAdversary: empty candidate set");
}

void ChurnAdversary::arm() {
  sim_.schedule_at(std::max(config_.start, sim_.now()), [this] { schedule_next(); });
}

void ChurnAdversary::schedule_next() {
  const Duration gap = rng_.exponential(config_.ops_per_time);
  const Time at = sim_.now() + gap;
  if (at > config_.stop) return;
  sim_.schedule_at(at, [this] {
    step();
    schedule_next();
  });
}

void ChurnAdversary::step() {
  const bool try_remove = rng_.chance(config_.p_remove);
  // Partition candidates by current adversary-level presence.
  std::vector<EdgeKey> present;
  std::vector<EdgeKey> absent;
  for (const auto& e : candidates_) {
    (graph_.adversary_present(e) ? present : absent).push_back(e);
  }
  if (try_remove && !present.empty()) {
    // Try a few random picks that keep the graph connected.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto& pick = present[rng_.below(present.size())];
      if (!config_.keep_connected || graph_.connected_without(pick)) {
        graph_.destroy_edge(pick);
        ++removals_;
        return;
      }
    }
    return;  // everything tried is a bridge; skip this op
  }
  if (!absent.empty()) {
    const auto& pick = absent[rng_.below(absent.size())];
    graph_.create_edge(pick, params_);
    ++additions_;
  }
}

// --------------------------------------------------------------------------
// Registration.

namespace {

void register_builtin_adversaries(Registry<AdversaryFactory>& r) {
  using E = Registry<AdversaryFactory>::Entry;
  r.add(E{"none", "static topology: no edge events after t=0", {},
          [](const ParamMap&, const AdversaryArgs&) -> std::unique_ptr<TopologyAdversary> {
            return nullptr;
          }});
  r.add(E{"churn",
          "Poisson edge churn over the initial edge set (connectivity preserved)",
          {{"rate", "0.05", "mean operations per time unit"},
           {"p_remove", "0.5", "probability an op attempts a removal"},
           {"start", "10", "first operation not before this time"},
           {"stop", "inf", "no operations after this time"},
           {"keep_connected", "true", "refuse removals that would disconnect"}},
          [](const ParamMap& p, const AdversaryArgs& a) -> std::unique_ptr<TopologyAdversary> {
            ChurnAdversary::Config cfg;
            cfg.ops_per_time = p.get_double("rate", 0.05);
            cfg.p_remove = p.get_double("p_remove", 0.5);
            cfg.start = p.get_double("start", 10.0);
            cfg.stop = p.get_str("stop", "inf") == "inf" ? kTimeInf
                                                         : p.get_double("stop", kTimeInf);
            cfg.keep_connected = p.get_bool("keep_connected", true);
            return std::make_unique<ChurnAdversary>(a.sim, a.graph, a.initial_edges,
                                                    a.edge_params, cfg,
                                                    a.seed ^ 0xabcULL);
          }});
}

}  // namespace

Registry<AdversaryFactory>& adversary_registry() {
  static Registry<AdversaryFactory>* registry = [] {
    auto* r = new Registry<AdversaryFactory>("adversary");
    register_builtin_adversaries(*r);
    return r;
  }();
  return *registry;
}

}  // namespace gcs
