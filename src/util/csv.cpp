#include "util/csv.h"

#include <stdexcept>

#include "util/table.h"

namespace gcs {

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::CsvWriter() = default;

CsvWriter::~CsvWriter() {
  if (to_file_) file_.flush();
}

std::string CsvWriter::escape(const std::string& s) {
  bool needs_quote = false;
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::raw(const std::string& s) {
  buffer_ += s;
  if (to_file_) file_ << s;
}

CsvWriter& CsvWriter::field(const std::string& value) {
  if (!at_row_start_) raw(",");
  raw(escape(value));
  at_row_start_ = false;
  return *this;
}

CsvWriter& CsvWriter::field(double value) { return field(format_double(value, 9)); }

CsvWriter& CsvWriter::field(long long value) { return field(std::to_string(value)); }

CsvWriter& CsvWriter::endrow() {
  raw("\n");
  at_row_start_ = true;
  return *this;
}

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) field(c);
  return endrow();
}

}  // namespace gcs
