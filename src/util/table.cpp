#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace gcs {

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  const double mag = std::fabs(value);
  if (value != 0.0 && (mag >= 1e7 || mag < 1e-4)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], r[i].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      s += " " + c + std::string(widths[i] - c.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  out << hline();
  if (!headers_.empty()) {
    out << render_row(headers_);
    out << hline();
  }
  for (const auto& r : rows_) out << render_row(r);
  out << hline();
  return out.str();
}

void Table::print() const { std::cout << str() << std::flush; }

}  // namespace gcs
