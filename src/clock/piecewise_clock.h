// Piecewise-linear clock: advances at a constant rate between discrete
// updates. Used for hardware clocks H_u, logical clocks L_u and max
// estimates M_u — all of which are piecewise linear in this model.
#pragma once

#include <stdexcept>

#include "util/common.h"

namespace gcs {

class PiecewiseLinearClock {
 public:
  PiecewiseLinearClock() = default;
  PiecewiseLinearClock(Time start, ClockValue value, double rate)
      : value_(value), rate_(rate), last_(start) {}

  /// Integrate up to time t (monotone; t < last update is an error beyond
  /// float tolerance).
  void advance(Time t) {
    if (t < last_) {
      if (last_ - t > 1e-9 * (last_ + 1.0)) {
        throw std::invalid_argument("PiecewiseLinearClock: time went backwards");
      }
      return;
    }
    value_ += rate_ * (t - last_);
    last_ = t;
  }

  /// Value the clock would have at time t >= last update (does not mutate).
  [[nodiscard]] ClockValue value_at(Time t) const {
    return value_ + rate_ * (t - last_);
  }

  /// Value at the last update instant.
  [[nodiscard]] ClockValue value() const { return value_; }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] Time last_update() const { return last_; }

  /// Advance to t, then change the rate.
  void set_rate(Time t, double rate) {
    advance(t);
    rate_ = rate;
  }

  /// Advance to t, then override the value (corruption injection, M jumps).
  void set_value(Time t, ClockValue v) {
    advance(t);
    value_ = v;
  }

  /// Time at which the clock reaches `target` (>= current value), assuming
  /// the rate never changes. Requires rate > 0. Returns last_update if the
  /// target is already passed.
  [[nodiscard]] Time time_of_value(ClockValue target) const {
    if (rate_ <= 0.0) throw std::logic_error("time_of_value: non-positive rate");
    if (target <= value_) return last_;
    return last_ + (target - value_) / rate_;
  }

 private:
  ClockValue value_ = 0.0;
  double rate_ = 1.0;
  Time last_ = 0.0;
};

}  // namespace gcs
