// Minimal CSV writer for exporting experiment series (plottable externally).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gcs {

/// Writes rows of mixed string/number cells with proper quoting.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws on failure.
  explicit CsvWriter(const std::string& path);

  /// In-memory mode (retrieve with str()).
  CsvWriter();
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  CsvWriter& field(const std::string& value);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  CsvWriter& field(int value) { return field(static_cast<long long>(value)); }
  CsvWriter& field(std::size_t value) { return field(static_cast<long long>(value)); }

  /// Terminate the current row.
  CsvWriter& endrow();

  /// Write a full row of string cells.
  CsvWriter& row(const std::vector<std::string>& cells);

  /// Content written so far (in-memory mode, or a copy of what went to disk).
  [[nodiscard]] const std::string& str() const { return buffer_; }

 private:
  void raw(const std::string& s);
  static std::string escape(const std::string& s);

  std::ofstream file_;
  bool to_file_ = false;
  bool at_row_start_ = true;
  std::string buffer_;
};

}  // namespace gcs
