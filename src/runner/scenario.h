// Scenario assembly: wires simulator, graph, transport, drift, estimate
// layer, global-skew estimator, engine, algorithm and adversary together in
// the right order, with sensible defaults. Experiments, tests and examples
// all construct runs through this.
//
// Construction is registry-driven: every pluggable dimension of the
// ScenarioSpec (topology, algorithm, drift, estimates, gskew, adversary) is
// resolved by name against the component registries, so adding a variant
// means one registration site next to its implementation — no switch
// statements here. The legacy enum-based ScenarioConfig survives as a thin
// deprecated shim that converts to a ScenarioSpec.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baseline/baselines.h"
#include "clock/drift.h"
#include "core/algo_registry.h"
#include "core/aopt_node.h"
#include "core/engine.h"
#include "core/params.h"
#include "estimate/estimate_source.h"
#include "graph/adversary.h"
#include "graph/dynamic_graph.h"
#include "graph/topology.h"
#include "net/transport.h"
#include "runner/spec.h"
#include "sim/simulator.h"

namespace gcs {

// ---------------------------------------------------------------------------
// Legacy enum-based configuration (deprecated shim; use ScenarioSpec).

enum class AlgoKind { kAopt, kMaxJump, kBoundedRateMax, kFreeRunning };
[[nodiscard]] const char* to_string(AlgoKind kind);

enum class DriftKind {
  kNone,               ///< all rates exactly 1
  kLinearSpread,       ///< maximally divergent constant rates
  kAlternatingBlocks,  ///< block-sign drift flipping every period
  kRandomWalk,
  kSinusoidal,         ///< temperature-cycle style oscillation
};

enum class EstimateKind {
  kOracleZero,
  kOracleUniform,
  kOracleAdversarial,
  kBeacon,
};

enum class GskewKind {
  kStatic,       ///< the a-priori constant G̃ of §4–§5 (eq. 6)
  kOracle,       ///< §7 estimates assumed given: factor·G(t) + margin
  kDistributed,  ///< §7 estimates computed from flooded max/min bounds
};

/// Deprecated: the pre-registry flat configuration. Convert with to_spec().
struct ScenarioConfig {
  std::string name = "scenario";
  int n = 8;
  std::vector<EdgeKey> initial_edges;  ///< created instantly at t=0 (fully inserted)
  EdgeParams edge_params;              ///< applied to every edge (initial + churn)

  AlgoKind algo = AlgoKind::kAopt;
  AlgoParams aopt;

  DriftKind drift = DriftKind::kLinearSpread;
  Duration drift_block_period = 200.0;  ///< kAlternatingBlocks
  int drift_blocks = 2;                 ///< kAlternatingBlocks
  Duration drift_walk_period = 10.0;    ///< kRandomWalk
  double drift_walk_std = 0.0;          ///< kRandomWalk (0 => rho/4)

  EstimateKind estimates = EstimateKind::kOracleUniform;
  EngineConfig engine;

  /// Source of G̃_u(t) (§7).
  GskewKind gskew = GskewKind::kStatic;
  double gskew_factor = 2.0;         ///< oracle: G̃_u = factor·G(t) + margin
  double gskew_margin = 1.0;         ///< oracle margin
  double gskew_diameter_hint = 0.0;  ///< distributed: D̂ (0 = derive from topology)

  DetectionDelayMode detection = DetectionDelayMode::kUniform;
  DelayMode delays = DelayMode::kUniform;

  /// §3 remark: run this node (1+ρ)/(1−ρ) faster so it always carries the
  /// maximum clock; aopt.rho is widened to the effective ρ̃ automatically.
  NodeId reference_node = kNoNode;

  Duration drift_sine_period = 400.0;  ///< kSinusoidal

  std::uint64_t seed = 1;
};

/// Convert a legacy config into the registry-driven spec (lossless).
[[nodiscard]] ScenarioSpec to_spec(const ScenarioConfig& config);

// ---------------------------------------------------------------------------

class Scenario {
 public:
  explicit Scenario(ScenarioSpec spec);
  /// Deprecated shim: builds from to_spec(config).
  explicit Scenario(const ScenarioConfig& config);

  /// Build the t=0 topology, start the engine and arm the adversary.
  /// Call once, then run. Throws on a second call.
  void start();

  void run_until(Time t) { sim_.run_until(t); }
  void run_for(Duration dt) { sim_.run_until(sim_.now() + dt); }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] DynamicGraph& graph() { return *graph_; }
  [[nodiscard]] Transport& transport() { return *transport_; }
  [[nodiscard]] Engine& engine() { return *engine_; }

  /// The spec as actually run: n resolved by the topology, G̃ resolved if
  /// gtilde_auto, rho widened under a reference node.
  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

  /// Resolved t=0 edge list (whatever the topology component produced).
  [[nodiscard]] const std::vector<EdgeKey>& initial_edges() const { return initial_edges_; }
  /// Node positions, if the topology component is geometric.
  [[nodiscard]] const std::vector<Point2>& positions() const { return positions_; }

  /// The armed adversary, or nullptr for "none".
  [[nodiscard]] TopologyAdversary* adversary() { return adversary_.get(); }

  /// The AOPT instance at node u (throws if another algorithm runs).
  [[nodiscard]] AoptNode& aopt(NodeId u);

  /// The engine-owned estimate layer's L̃ᵛᵤ (test/metric probe).
  [[nodiscard]] std::optional<ClockValue> estimate_of(NodeId u, NodeId v) {
    return estimates_->estimate(u, v);
  }

 private:
  ScenarioSpec spec_;
  std::vector<EdgeKey> initial_edges_;
  std::vector<Point2> positions_;
  Simulator sim_;
  std::unique_ptr<DynamicGraph> graph_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<DriftModel> drift_;
  std::unique_ptr<EstimateSource> estimates_;
  std::unique_ptr<GlobalSkewEstimator> gskew_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<TopologyAdversary> adversary_;
  bool started_ = false;
};

/// Materialize the t=0 topology of a spec without building a Scenario:
/// resolves the topology component exactly as the Scenario constructor does
/// (same RNG seed, same draw order), so the returned (n, edges) match what a
/// Scenario built from `spec` would use. The island planner partitions on
/// this before committing to shard construction.
TopologyResult materialize_topology(const ScenarioSpec& spec);

/// Uniform edge-parameter preset used across experiments: eps/tau/delays
/// scaled around a base uncertainty.
EdgeParams default_edge_params(double eps = 0.1, double tau = 0.5,
                               double delay_max = 0.5, double delay_min = 0.1);

/// A reasonable G̃ for a static topology: the κ-weighted diameter bound plus
/// margin (a-priori knowledge the paper assumes the algorithm has).
double suggest_gtilde(int n, const std::vector<EdgeKey>& edges,
                      const EdgeParams& edge_params, const AlgoParams& aopt);

}  // namespace gcs
