// Trajectory fingerprint pinning (see src/metrics/fingerprint.h and
// docs/ARCHITECTURE.md § Fingerprint pinning).
//
// The committed table tests/fingerprints/fingerprints.csv pins one 64-bit
// hash per catalog scenario. CMake registers ONE CTEST PER ROW (by gtest
// filter on the row's sanitized name), so a trajectory regression names the
// exact scenario it broke instead of failing one monolithic test. Each
// per-row test recomputes the row from its own serialized spec — the row is
// self-contained — on the scalar reference path AND, where the CPU has a
// vector kernel, on the SIMD path: hash equality per row is the license
// under which the vectorized trigger scan is allowed to run at all.
//
// Invariance suite: the same hashes must come out of every SweepRunner
// thread count (runs are constructed per-worker; PR 5's determinism
// discipline) and out of both instant-coalescing modes (PR 5 proved
// per-instant evaluation equivalent for single-event instants; every
// catalog row is chosen to satisfy that, and this suite enforces it so a
// future row cannot silently pin a mode-dependent hash).
//
// Regeneration: GCS_REGEN_FINGERPRINTS=1 rewrites the table from the
// in-code catalog (scripts/regen_fingerprints.sh wraps this, checks
// 1/2/8-thread, coalesce-off and 1/2/8-island agreement, and is the only
// sanctioned way to change the committed file). GCS_FINGERPRINT_OUT
// overrides the output path; GCS_FP_THREADS picks the sweep thread count;
// GCS_FP_COALESCE=off flips the engine's instant-coalescing mode;
// GCS_FP_ISLANDS=k recomputes every sim row through the island-parallel
// engine with k requested workers (serial-fallback rows run serially, so
// the k-island table must come back byte-identical to the committed one).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "fingerprint_common.h"
#include "runner/island_runner.h"
#include "runner/sweep.h"
#include "util/simd.h"

namespace gcs {
namespace {

using fptable::Case;
using fptable::Row;

std::string sanitize(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '-', '_');
  return out;
}

/// Scoped scalar/vector selection around a recomputation; restores the
/// process default (scalar unless GCS_SIMD opted in) afterwards.
FingerprintResult run_with_simd(const Case& c, bool vector_path) {
  const bool prev = simd::enabled();
  simd::set_enabled(vector_path);
  FingerprintResult result = fptable::run_case(c);
  simd::set_enabled(prev);
  return result;
}

/// Fingerprint every sim catalog entry through a SweepRunner grid with the
/// given worker count (threads = 0 → plain serial loop, no runner).
/// flip_coalesce inverts the instant-coalescing mode — only on rows flagged
/// coalesce-invariant, where the modes are proven trajectory-identical;
/// other rows are pinned per-mode and run as specified.
std::vector<FingerprintResult> sweep_fingerprints(const std::vector<Case>& sims,
                                                  int threads,
                                                  bool flip_coalesce = false) {
  std::map<std::string, const Case*> by_name;
  for (const Case& c : sims) by_name[c.name] = &c;
  const auto adjust = [flip_coalesce](const Case& c) {
    ScenarioSpec spec = c.spec;
    if (flip_coalesce && c.coalesce_invariant) {
      spec.engine.coalesce_instants = !spec.engine.coalesce_instants;
    }
    return spec;
  };

  std::vector<FingerprintResult> out(sims.size());
  if (threads <= 0) {
    for (std::size_t i = 0; i < sims.size(); ++i) {
      Scenario scenario(adjust(sims[i]));
      out[i] = fingerprint_run(scenario, sims[i].horizon);
    }
    return out;
  }

  // The catalog rows are heterogeneous full specs, which a cross-product
  // axis cannot express — so the axis carries only the row NAME and the
  // spec_fn swaps in the row's actual spec (the documented use of SpecFn:
  // per-cell derivation the grid cannot).
  std::vector<std::string> names;
  names.reserve(sims.size());
  for (const Case& c : sims) names.push_back(c.name);
  Sweep sweep(sims.front().spec);
  sweep.axis("name", names);

  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  runner.set_spec_fn([&by_name, &adjust](ScenarioSpec& spec) {
    spec = adjust(*by_name.at(spec.name));
  });
  runner.set_run_fn([&by_name, &out](Scenario& scenario, RunResult& res) {
    out[static_cast<std::size_t>(res.index)] =
        fingerprint_run(scenario, by_name.at(res.axes.at("name"))->horizon);
  });
  const std::vector<RunResult> results = runner.run(sweep);
  for (const RunResult& r : results) {
    EXPECT_TRUE(r.ok()) << "sweep run '" << r.axes.at("name") << "' failed: " << r.error;
  }
  return out;
}

std::vector<Case> sim_cases() {
  std::vector<Case> out;
  for (Case& c : fptable::catalog()) {
    if (c.kind == "sim") out.push_back(std::move(c));
  }
  return out;
}

// -------------------------------------------------------------- unit level

TEST(Fingerprint, QuantizeRoundsToNearestQuantum) {
  using FP = TrajectoryFingerprinter;
  EXPECT_EQ(FP::quantize(0.0), 0);
  EXPECT_EQ(FP::quantize(1.0), 1 << 20);
  EXPECT_EQ(FP::quantize(-1.0), -(1 << 20));
  // Differences below half a quantum collapse; above, they discriminate.
  EXPECT_EQ(FP::quantize(1.0 + 0.25 / FP::kInvQuantum), FP::quantize(1.0));
  EXPECT_NE(FP::quantize(1.0 + 1.25 / FP::kInvQuantum), FP::quantize(1.0));
}

TEST(Fingerprint, FoldIsOrderAndFieldSensitive) {
  using FP = TrajectoryFingerprinter;
  const std::uint64_t h0 = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t a = FP::fold(h0, 0x3ff0000000000000ULL, 3, EventKind::kTick, 42);
  const std::uint64_t b = FP::fold(h0, 0x3ff0000000000000ULL, 3, EventKind::kBeacon, 42);
  const std::uint64_t c = FP::fold(h0, 0x3ff0000000000000ULL, 4, EventKind::kTick, 42);
  const std::uint64_t d = FP::fold(h0, 0x3ff0000000000001ULL, 3, EventKind::kTick, 42);
  const std::uint64_t e = FP::fold(h0, 0x3ff0000000000000ULL, 3, EventKind::kTick, 43);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(a, e);
  // Order dependence: folding (x then y) != (y then x).
  const std::uint64_t xy = FP::fold(a, 0x4000000000000000ULL, 1, EventKind::kDelivery, 7);
  const std::uint64_t yx = FP::fold(
      FP::fold(h0, 0x4000000000000000ULL, 1, EventKind::kDelivery, 7),
      0x3ff0000000000000ULL, 3, EventKind::kTick, 42);
  EXPECT_NE(xy, yx);
}

TEST(Fingerprint, AttachingTheObserverDoesNotPerturbTheRun) {
  // The whole point of peek_logical: a fingerprinted run and a bare run of
  // the same spec must end in bit-identical clocks.
  const ScenarioSpec spec = fptable::kernel_trace_reference_spec();
  Scenario bare(spec);
  bare.start();
  bare.run_until(10.0);

  Scenario observed(spec);
  TrajectoryFingerprinter fp;
  fp.attach(observed);
  observed.start();
  observed.run_until(10.0);

  EXPECT_GT(fp.events(), 0u);
  for (NodeId u = 0; u < bare.spec().n; ++u) {
    EXPECT_EQ(bare.engine().logical(u), observed.engine().logical(u))
        << "observer changed the trajectory at node " << u;
  }
}

TEST(Fingerprint, CatalogSpecsRoundTripThroughStrings) {
  for (const Case& c : fptable::catalog()) {
    const std::string text = c.spec.str();
    EXPECT_EQ(fptable::spec_from_str(text).str(), text)
        << "row '" << c.name << "' spec does not round-trip";
  }
}

TEST(Fingerprint, CatalogMatchesCommittedTable) {
  // The committed rows and the in-code catalog must agree field-for-field
  // (hashes excepted — those are what the table pins), so regeneration and
  // verification cannot drift apart.
  const std::vector<Case> cases = fptable::catalog();
  const std::vector<Row> rows = fptable::load_table_or_sentinel();
  if (rows.size() == 1 && rows[0].kind.empty()) {
    if (std::getenv("GCS_REGEN_FINGERPRINTS") != nullptr) {
      GTEST_SKIP() << "no committed table yet (bootstrap regeneration)";
    }
    FAIL() << "fingerprint table missing: " << fptable::table_path();
  }
  ASSERT_EQ(rows.size(), cases.size());
  ASSERT_GE(rows.size(), 20u) << "the table must pin at least 20 combinations";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(rows[i].name, cases[i].name);
    EXPECT_EQ(rows[i].kind, cases[i].kind);
    EXPECT_EQ(rows[i].horizon, cases[i].horizon);
    EXPECT_EQ(rows[i].chaos, cases[i].chaos);
    EXPECT_EQ(rows[i].coalesce_invariant, cases[i].coalesce_invariant);
    EXPECT_EQ(rows[i].spec, cases[i].spec.str());
  }
}

// ---------------------------------------------------------- per-row pins

class PinnedFingerprint : public ::testing::TestWithParam<Row> {};

TEST_P(PinnedFingerprint, MatchesCommittedHash) {
  const Row& row = GetParam();
  if (row.kind.empty()) {
    if (std::getenv("GCS_REGEN_FINGERPRINTS") != nullptr) {
      GTEST_SKIP() << "no committed table yet (bootstrap regeneration)";
    }
    FAIL() << "fingerprint table missing: " << fptable::table_path()
           << " — run scripts/regen_fingerprints.sh";
  }
  const Case c = fptable::case_from_row(row);

  const FingerprintResult scalar = run_with_simd(c, /*vector_path=*/false);
  EXPECT_EQ(scalar.hash, row.hash)
      << "scalar trajectory diverged from the pinned fingerprint for '" << row.name
      << "' — a behavior change reached a pinned scenario; see "
         "docs/ARCHITECTURE.md § Fingerprint pinning before regenerating";
  EXPECT_EQ(scalar.events, row.events) << "event count changed for '" << row.name << "'";

  if (simd::available()) {
    // The vector path's license: bit-identical trajectories on every pin.
    const FingerprintResult vec = run_with_simd(c, /*vector_path=*/true);
    EXPECT_EQ(vec.hash, scalar.hash)
        << "SIMD (" << simd::backend() << ") trigger scan diverged from the "
        << "scalar reference on '" << row.name << "'";
    EXPECT_EQ(vec.events, scalar.events);
  }
}

INSTANTIATE_TEST_SUITE_P(Table, PinnedFingerprint,
                         ::testing::ValuesIn(fptable::load_table_or_sentinel()),
                         [](const ::testing::TestParamInfo<Row>& info) {
                           return sanitize(info.param.name);
                         });

// ------------------------------------------------------------- invariance

TEST(FingerprintInvariance, SweepThreadCountDoesNotChangeHashes) {
  const std::vector<Case> sims = sim_cases();
  const std::vector<FingerprintResult> serial = sweep_fingerprints(sims, 0);
  for (const int threads : {1, 2, 8}) {
    const std::vector<FingerprintResult> pooled = sweep_fingerprints(sims, threads);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(pooled[i].hash, serial[i].hash)
          << "row '" << sims[i].name << "' hash depends on thread count " << threads;
      EXPECT_EQ(pooled[i].events, serial[i].events);
    }
  }
}

TEST(FingerprintInvariance, CoalesceModeDoesNotChangeFlaggedHashes) {
  // Rows flagged coalesce-invariant must produce the same hash in both
  // instant-coalescing modes — the PR-5 equivalence, enforced continuously
  // so the flag cannot rot. (Unflagged oracle-estimate rows legitimately
  // diverge; they are pinned at their spec's own mode only.)
  const std::vector<Case> sims = sim_cases();
  std::size_t flagged = 0;
  const std::vector<FingerprintResult> normal = sweep_fingerprints(sims, 0, false);
  const std::vector<FingerprintResult> flipped = sweep_fingerprints(sims, 0, true);
  for (std::size_t i = 0; i < sims.size(); ++i) {
    if (!sims[i].coalesce_invariant) continue;
    ++flagged;
    EXPECT_EQ(flipped[i].hash, normal[i].hash)
        << "row '" << sims[i].name
        << "' is flagged coalesce-invariant but its hash depends on the "
           "mode — fix the flag or the row (see test_instant.cpp)";
    EXPECT_EQ(flipped[i].events, normal[i].events);
  }
  EXPECT_GE(flagged, 5u) << "the coalesce-invariance claim needs real coverage";
}

TEST(FingerprintInvariance, IslandWorkerCountDoesNotChangeHashes) {
  // The island engine's determinism gate: every pinned sim row must hash
  // identically whether it runs serially or island-parallel at 1, 2 or 8
  // requested workers. Rows whose spec is not island-decomposable plan a
  // serial fallback — still exercised through fingerprint_run_islands so
  // the delegation path is covered — and are trivially equal; the final
  // assertion makes sure enough rows take the REAL island path that the
  // gate cannot rot into a no-op.
  const std::vector<Case> sims = sim_cases();
  std::size_t islanded_runs = 0;
  for (const Case& c : sims) {
    const FingerprintResult serial = fptable::run_case(c);
    for (const int k : {1, 2, 8}) {
      const IslandExecutionPlan plan = plan_islands(c.spec, k);
      const FingerprintResult isl = fingerprint_run_islands(c.spec, c.horizon, k);
      EXPECT_EQ(isl.hash, serial.hash)
          << "row '" << c.name << "' hash depends on island count " << k
          << (plan.islands_enabled
                  ? " (island path, " + std::to_string(plan.workers) + " shards)"
                  : " (serial fallback: " + plan.fallback_reason + ")");
      EXPECT_EQ(isl.events, serial.events)
          << "row '" << c.name << "' event count depends on island count " << k;
      if (plan.islands_enabled && plan.workers > 1) ++islanded_runs;
    }
  }
  EXPECT_GE(islanded_runs, 5u)
      << "too few rows take the real multi-shard path; the island "
         "determinism gate needs real coverage (add islandable rows)";
}

TEST(FingerprintInvariance, LockstepRtRowsAreReproducible) {
  for (const Case& c : fptable::catalog()) {
    if (c.kind != "rt") continue;
    const FingerprintResult a = fptable::run_case(c);
    const FingerprintResult b = fptable::run_case(c);
    EXPECT_EQ(a.hash, b.hash) << "rt row '" << c.name << "' not reproducible";
    EXPECT_EQ(a.events, b.events);
    EXPECT_GT(a.events, 0u);
  }
}

// ------------------------------------------------------------ regeneration

TEST(FingerprintRegen, RegenerateTable) {
  if (std::getenv("GCS_REGEN_FINGERPRINTS") == nullptr) {
    GTEST_SKIP() << "set GCS_REGEN_FINGERPRINTS=1 (via scripts/regen_fingerprints.sh) "
                    "to rewrite the table";
  }
  const char* threads_env = std::getenv("GCS_FP_THREADS");
  const int threads = threads_env != nullptr ? std::atoi(threads_env) : 0;
  const char* coalesce_env = std::getenv("GCS_FP_COALESCE");
  const bool flip_coalesce =
      coalesce_env != nullptr && std::string(coalesce_env) == "off";
  const char* out_env = std::getenv("GCS_FINGERPRINT_OUT");
  const std::string path = out_env != nullptr ? out_env : fptable::table_path();
  const char* islands_env = std::getenv("GCS_FP_ISLANDS");
  const int islands = islands_env != nullptr ? std::atoi(islands_env) : 0;

  const std::vector<Case> cases = fptable::catalog();
  std::vector<Case> sims = sim_cases();
  std::vector<FingerprintResult> sim_results;
  if (islands > 0) {
    // Island axis: recompute every sim row through the island-parallel
    // engine (serial-fallback specs run serially — identical by design).
    sim_results.reserve(sims.size());
    for (const Case& c : sims) {
      sim_results.push_back(fingerprint_run_islands(c.spec, c.horizon, islands));
    }
  } else {
    sim_results = sweep_fingerprints(sims, threads, flip_coalesce);
  }

  std::vector<Row> rows;
  std::size_t sim_i = 0;
  for (const Case& c : cases) {
    Row row;
    row.name = c.name;
    row.kind = c.kind;
    row.horizon = c.horizon;
    row.chaos = c.chaos;
    row.coalesce_invariant = c.coalesce_invariant;
    // The spec column always records the CATALOG spec: a coalesce-flipped
    // recomputation must yield the same bytes, or the row was not invariant.
    row.spec = c.spec.str();
    const FingerprintResult r =
        c.kind == "rt" ? fptable::run_case(c) : sim_results[sim_i++];
    row.hash = r.hash;
    row.events = r.events;
    rows.push_back(std::move(row));
  }
  fptable::save_table(rows, path);
  GTEST_SKIP() << "regenerated " << rows.size() << " fingerprints -> " << path
               << " (threads=" << threads << ", coalesce "
               << (flip_coalesce ? "flipped" : "default") << ", islands="
               << islands << ")";
}

}  // namespace
}  // namespace gcs
