// Baseline synchronization algorithms for the comparison experiments (§2).
#pragma once

#include "core/engine.h"

namespace gcs {

/// No synchronization at all: the logical clock is the hardware clock.
/// Establishes the unsynchronized drift floor in comparisons.
class FreeRunningNode final : public Algorithm {
 public:
  [[nodiscard]] const char* name() const override { return "free-running"; }
  void reevaluate() override {}  // mult stays 1
};

/// Srikanth–Toueg-style max flooding: whenever the max estimate exceeds the
/// logical clock, jump to it. Asymptotically optimal O(D) *global* skew, but
/// neighbors can observe Ω(D) instantaneous local skew (the shortcoming the
/// gradient problem was introduced to fix — §1/§2).
class MaxJumpNode final : public Algorithm {
 public:
  [[nodiscard]] const char* name() const override { return "max-jump"; }
  void reevaluate() override;

  /// Largest single clock jump performed (a proxy for worst local skew
  /// experienced by an application consuming this clock).
  [[nodiscard]] double max_jump() const { return max_jump_; }

 private:
  double max_jump_ = 0.0;
};

/// Rate-limited max chasing: AOPT's max-estimate rule (Def. 4.7) without the
/// gradient trigger hierarchy. Clocks are smooth and the global skew is
/// O(D), but nothing bounds the skew *gradient*: local skew degrades toward
/// Θ(D) in adversarial executions.
class BoundedRateMaxNode final : public Algorithm {
 public:
  explicit BoundedRateMaxNode(double mu, double iota) : mu_(mu), iota_(iota) {}
  [[nodiscard]] const char* name() const override { return "bounded-rate-max"; }
  void reevaluate() override;

 private:
  double mu_;
  double iota_;
};

}  // namespace gcs
