// The estimate layer (paper §3.1): per-node estimates L̃ᵥᵤ of neighbors'
// logical clocks with per-edge accuracy guarantee |L_v − L̃ᵥᵤ| <= ε_e (eq. 1).
//
// Two realizations:
//  * OracleEstimateSource — samples the true clock and perturbs it with a
//    configurable error policy (exact control of ε; validates theory).
//  * BeaconEstimateSource — built from periodic beacon messages with bounded
//    delay; ε is *derived* from (beacon period, delay bounds, ρ, µ) via
//    beacon_eps() and the guarantee is asserted in tests, not assumed.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/dynamic_graph.h"
#include "net/message.h"
#include "util/common.h"
#include "util/registry.h"
#include "util/rng.h"

namespace gcs {

/// Engine-provided access to true clock values (simulation-side knowledge).
class ClockAccess {
 public:
  virtual ~ClockAccess() = default;
  [[nodiscard]] virtual ClockValue true_logical(NodeId u) = 0;
  [[nodiscard]] virtual ClockValue true_hardware(NodeId u) = 0;
};

/// Engine-provided send capability for probe-driven estimate sources (the
/// RTT offset exchange). Kept minimal: the source decides *when* and *whom*
/// to probe; the engine owns the transport and answers TimeRequests itself.
class ProbeSender {
 public:
  virtual ~ProbeSender() = default;
  /// Send a TimeRequest from `from` to `to`; false if the edge is absent
  /// from the sender's view (the probe is simply skipped then).
  virtual bool send_time_request(NodeId from, NodeId to, const TimeRequest& req) = 0;
};

class EstimateSource {
 public:
  virtual ~EstimateSource() = default;

  /// Bind simulation-side clock access; must be called before use.
  virtual void bind(ClockAccess* clocks) { clocks_ = clocks; }

  /// L̃ᵛᵤ at the current time; nullopt if no estimate is available yet.
  [[nodiscard]] virtual std::optional<ClockValue> estimate(NodeId u, NodeId v) = 0;

  /// The ε_e this source guarantees for edge e.
  [[nodiscard]] virtual double eps(const EdgeKey& e) const = 0;

  /// Hooks driven by the engine. Sources that override on_beacon must also
  /// override consumes_beacons (lets the engine skip the per-delivery call).
  virtual void on_beacon(const Delivery& d) { (void)d; }
  [[nodiscard]] virtual bool consumes_beacons() const { return false; }
  virtual void on_edge_lost(NodeId u, NodeId peer) { (void)u, (void)peer; }

  /// Probe cadence this source wants per node, or 0 for "no probes" (the
  /// default — the engine then schedules no probe timer at all, keeping the
  /// event sequence of probe-free sources bit-identical to before the probe
  /// layer existed).
  [[nodiscard]] virtual Duration probe_period() const { return 0.0; }
  /// Probe timer fired for node u: send whatever requests this round needs.
  virtual void on_probe(NodeId u, ProbeSender& sender) { (void)u, (void)sender; }
  /// A TimeResponse for node d.to arrived (engine-dispatched).
  virtual void on_time_response(const Delivery& d, const TimeResponse& resp) {
    (void)d, (void)resp;
  }

 protected:
  ClockAccess* clocks_ = nullptr;
};

/// Error policy for the oracle source.
enum class OracleErrorPolicy {
  kZero,        ///< perfect estimates (ε still reported as configured)
  kUniform,     ///< uniform in [-ε, ε]
  kAdversarial, ///< shrink the perceived skew by ε (slowest possible reaction)
};

class OracleEstimateSource final : public EstimateSource {
 public:
  OracleEstimateSource(DynamicGraph& graph, OracleErrorPolicy policy,
                       std::uint64_t seed = 31);

  std::optional<ClockValue> estimate(NodeId u, NodeId v) override;
  [[nodiscard]] double eps(const EdgeKey& e) const override;

  /// Fast path for callers that already know v is in u's view and know the
  /// edge's ε (the engine's algorithms cache both): skips the graph lookup.
  /// Draws exactly the RNG stream estimate() would, so results are
  /// identical when the preconditions hold.
  ClockValue estimate_present(NodeId u, NodeId v, double eps);

  /// The error application of estimate_present, split out so an incremental
  /// scan that already holds the true clock values can skip the ClockAccess
  /// virtual hops. `mine` is the caller's own current logical clock; it is
  /// read only by the adversarial policy (where estimate_present would have
  /// fetched true_logical(u), the same value at scan time). Consumes exactly
  /// the RNG stream estimate_present would: one uniform draw per call under
  /// kUniform, none otherwise.
  ClockValue perturb(ClockValue truth, ClockValue mine, double eps) {
    switch (policy_) {
      case OracleErrorPolicy::kZero:
        return truth;
      case OracleErrorPolicy::kUniform:
        return truth + rng_.uniform(-eps, eps);
      case OracleErrorPolicy::kAdversarial:
        // Shrink the perceived skew: report the neighbor ε closer to us than
        // it is (never crossing), which maximally delays trigger reactions.
        if (truth > mine) return std::max(mine, truth - eps);
        if (truth < mine) return std::min(mine, truth + eps);
        return truth;
    }
    return truth;
  }

 private:
  DynamicGraph& graph_;
  OracleErrorPolicy policy_;
  Rng rng_;
};

/// Worst-case estimate error of the beacon provider for one edge:
///   receipt error  <= (1+ρ)(1+µ)·T_max − (1−ρ)·T_min
///   growth between receipts <= (2ρ + µ(1+ρ))·(P_b + (T_max−T_min))
double beacon_eps(const EdgeParams& e, double beacon_period, double rho, double mu);

class BeaconEstimateSource final : public EstimateSource {
 public:
  /// The discrete part of one edge's estimate state: rewritten on every
  /// beacon receipt, constant in between. estimate() extrapolates it with
  /// the receiver's hardware clock only, so an incremental scan may cache a
  /// snapshot until the engine reports the peer dirty (a new beacon arrived
  /// or the entry was evicted) and evaluate `base + (H_u(t) − recv_hw)`
  /// itself — the exact expression estimate() uses.
  struct Entry {
    ClockValue base = 0.0;       ///< L_msg + (1−ρ)·known_min_delay
    ClockValue recv_hw = 0.0;    ///< receiver hardware clock at receipt
  };

  /// `rho`/`mu` are needed to (a) apply the conservative (1−ρ) transit
  /// compensation and (b) report ε via beacon_eps.
  BeaconEstimateSource(DynamicGraph& graph, double beacon_period, double rho,
                       double mu);

  std::optional<ClockValue> estimate(NodeId u, NodeId v) override;
  [[nodiscard]] double eps(const EdgeKey& e) const override;
  void on_beacon(const Delivery& d) override;
  [[nodiscard]] bool consumes_beacons() const override { return true; }
  void on_edge_lost(NodeId u, NodeId peer) override;

  /// Incremental-scan support: copy out the discrete state for (u, v).
  /// False if no beacon from v has been received (no estimate exists yet).
  /// The caller is responsible for the graph-presence precondition that
  /// estimate() checks itself.
  [[nodiscard]] bool snapshot(NodeId u, NodeId v, Entry& out) const {
    const auto it = entries_.find(key(u, v));
    if (it == entries_.end()) return false;
    out = it->second;
    return true;
  }

 private:
  static std::uint64_t key(NodeId owner, NodeId peer) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner)) << 32) |
           static_cast<std::uint32_t>(peer);
  }

  DynamicGraph& graph_;
  double beacon_period_;
  double rho_;
  double mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

// --------------------------------------------------------------------------
// Global-skew estimates G̃_u(t) (eq. 5/6).

class GlobalSkewEstimator {
 public:
  virtual ~GlobalSkewEstimator() = default;
  /// G̃_u at the current time; must upper-bound the true global skew.
  [[nodiscard]] virtual double estimate(NodeId u) = 0;
  [[nodiscard]] virtual bool is_static() const { return false; }
};

/// The static, a-priori bound G̃ of §4–§5.
class StaticGskewEstimator final : public GlobalSkewEstimator {
 public:
  explicit StaticGskewEstimator(double gtilde) : gtilde_(gtilde) {
    require(gtilde > 0.0, "StaticGskewEstimator: gtilde must be > 0");
  }
  double estimate(NodeId) override { return gtilde_; }
  [[nodiscard]] bool is_static() const override { return true; }

 private:
  double gtilde_;
};

/// §7 oracle: G̃_u(t) = factor·G(t) + margin, where G(t) is the true global
/// skew (the paper *assumes* such estimates are given; eq. 5).
class OracleGskewEstimator final : public GlobalSkewEstimator {
 public:
  using TrueSkewFn = std::function<double()>;
  OracleGskewEstimator(TrueSkewFn true_skew, double factor, double margin)
      : true_skew_(std::move(true_skew)), factor_(factor), margin_(margin) {
    require(factor >= 1.0 && margin >= 0.0, "OracleGskewEstimator: bad slack");
  }
  double estimate(NodeId) override { return factor_ * true_skew_() + margin_; }

 private:
  TrueSkewFn true_skew_;
  double factor_;
  double margin_;
};

/// Fully distributed G̃_u(t): built from information every node actually
/// has. With M_u the flooded max estimate (Condition 4.3: M_u >= max L − D)
/// and m_u the symmetric flooded *lower* bound on the minimum clock
/// (m_u <= min L), the true global skew satisfies
///   G(t) = max L − min L <= (M_u + D(t)) − m_u,
/// so G̃_u := M_u − m_u + D̂ is a valid estimate for any a-priori bound
/// D̂ >= D(t) (computable from n and the per-edge parameters the nodes
/// know). This realizes the §7 assumption (eq. 5) without an oracle.
class DistributedGskewEstimator final : public GlobalSkewEstimator {
 public:
  using NodeValueFn = std::function<ClockValue(NodeId)>;
  DistributedGskewEstimator(NodeValueFn max_estimate, NodeValueFn min_estimate,
                            double diameter_hint)
      : max_estimate_(std::move(max_estimate)),
        min_estimate_(std::move(min_estimate)),
        diameter_hint_(diameter_hint) {
    require(diameter_hint > 0.0, "DistributedGskewEstimator: bad diameter hint");
  }
  double estimate(NodeId u) override {
    return max_estimate_(u) - min_estimate_(u) + diameter_hint_;
  }

 private:
  NodeValueFn max_estimate_;
  NodeValueFn min_estimate_;
  double diameter_hint_;
};

// --------------------------------------------------------------------------
// Registries for both layers.

/// Build context for estimate-source factories.
struct EstimateArgs {
  DynamicGraph& graph;
  double beacon_period = 0.25;  ///< the engine's beacon cadence
  double rho = 1e-3;
  double mu = 0.05;
  std::uint64_t seed = 1;
};

using EstimateFactory =
    std::function<std::unique_ptr<EstimateSource>(const ParamMap&, const EstimateArgs&)>;

/// The process-wide estimate-source registry (builtins on first use).
Registry<EstimateFactory>& estimate_registry();

/// Build context for global-skew-estimator factories. The callbacks reach
/// into the engine through the scenario (stable once construction finishes);
/// factories must not invoke them at build time.
struct GskewArgs {
  double gtilde_static = 10.0;               ///< the a-priori G̃ of §4–§5
  double default_diameter_hint = 1.0;        ///< conservative D̂ if none given
  std::function<double()> true_global_skew;  ///< oracle access
  std::function<ClockValue(NodeId)> max_estimate;  ///< flooded M_u
  std::function<ClockValue(NodeId)> min_estimate;  ///< flooded m_u
};

using GskewFactory =
    std::function<std::unique_ptr<GlobalSkewEstimator>(const ParamMap&, const GskewArgs&)>;

/// The process-wide global-skew-estimator registry (builtins on first use).
Registry<GskewFactory>& gskew_registry();

}  // namespace gcs
