#include "metrics/diameter.h"

#include "graph/paths.h"

namespace gcs {

double hop_uncertainty_cost(const EdgeParams& e, double beacon_period, double rho) {
  return (1.0 - rho) * e.delay_uncertainty() + 2.0 * rho * e.msg_delay_max +
         4.0 * rho / (1.0 + rho) * (beacon_period + e.msg_delay_max);
}

double estimate_dynamic_diameter(Engine& engine) {
  std::vector<EdgeKey> edges;
  for (const EdgeKey& e : engine.graph().known_edges()) {
    if (engine.graph().both_views_present(e)) edges.push_back(e);
  }
  const double rho = engine.params().rho;
  const double beacon = engine.config().beacon_period;
  const AdjacencyList adj =
      build_adjacency(engine.size(), edges, [&](const EdgeKey& e) {
        return hop_uncertainty_cost(engine.graph().params(e), beacon, rho);
      });
  return weighted_diameter(adj);
}

}  // namespace gcs
