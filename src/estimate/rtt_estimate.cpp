#include "estimate/rtt_estimate.h"

#include <algorithm>

namespace gcs {

RttEstimateSource::RttEstimateSource(DynamicGraph& graph, Duration probe_period,
                                     double rho, double mu, int window,
                                     double outlier)
    : graph_(graph),
      probe_period_(probe_period),
      rho_(rho),
      mu_(mu),
      window_(window),
      outlier_(outlier) {
  require(probe_period > 0.0, "RttEstimateSource: probe period must be > 0");
  require(window >= 1, "RttEstimateSource: window must be >= 1");
  require(outlier >= 1.0, "RttEstimateSource: outlier factor must be >= 1");
}

std::optional<ClockValue> RttEstimateSource::estimate(NodeId u, NodeId v) {
  require(clocks_ != nullptr, "RttEstimateSource: bind() not called");
  if (graph_.find_neighbor(u, v) == nullptr) return std::nullopt;
  const auto it = edges_.find(key(u, v));
  if (it == edges_.end() || !it->second.have_estimate) return std::nullopt;
  // Extrapolate at the owner's hardware rate, exactly like the beacon
  // source: the rate mismatch to the peer's logical clock is bounded by
  // 2ρ + µ(1+ρ), which eps() charges over a full probe period.
  const ClockValue hw_elapsed = clocks_->true_hardware(u) - it->second.recv_hw;
  return it->second.base + hw_elapsed;
}

double RttEstimateSource::eps(const EdgeKey& e) const {
  return beacon_eps(graph_.params(e), probe_period_, rho_, mu_);
}

void RttEstimateSource::on_edge_lost(NodeId u, NodeId peer) {
  edges_.erase(key(u, peer));
  // Orphan the in-flight probes toward that peer (a late response must not
  // resurrect the estimate of an edge the view already dropped).
  for (auto it = pending_.begin(); it != pending_.end();) {
    const bool mine = static_cast<NodeId>(it->first >> 32) == u;
    if (mine && it->second.peer == peer) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void RttEstimateSource::on_probe(NodeId u, ProbeSender& sender) {
  require(clocks_ != nullptr, "RttEstimateSource: bind() not called");
  const ClockValue hw = clocks_->true_hardware(u);
  // Prune this owner's stale in-flight probes (lost requests/responses).
  const ClockValue horizon = hw - kStaleRounds * probe_period_;
  for (auto it = pending_.begin(); it != pending_.end();) {
    const bool mine = static_cast<NodeId>(it->first >> 32) == u;
    if (mine && it->second.send_hw < horizon) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  std::uint32_t& next = next_id_[u];
  // Two back-to-back requests per neighbor (edyn's two-phase exchange): one
  // lost datagram still leaves this round a sample.
  for (const NeighborView& nv : graph_.view_neighbors(u)) {
    for (int shot = 0; shot < 2; ++shot) {
      const std::uint32_t id = next++;
      if (sender.send_time_request(u, nv.id, TimeRequest{id, hw})) {
        pending_[key(u, id)] = Pending{nv.id, hw};
      }
    }
  }
}

double RttEstimateSource::filtered_transit(const std::vector<double>& rtts,
                                           double outlier) {
  double lo = rtts.front();
  for (const double r : rtts) lo = std::min(lo, r);
  const double cut = lo * outlier;
  double sum = 0.0;
  int kept = 0;
  for (const double r : rtts) {
    if (r <= cut) {
      sum += r;
      ++kept;
    }
  }
  return 0.5 * sum / static_cast<double>(kept);  // kept >= 1: the minimum survives
}

void RttEstimateSource::on_time_response(const Delivery& d, const TimeResponse& resp) {
  require(clocks_ != nullptr, "RttEstimateSource: bind() not called");
  const NodeId owner = d.to;
  const auto pit = pending_.find(key(owner, resp.id));
  if (pit == pending_.end()) return;  // duplicate, stale, or post-edge-loss
  const Pending p = pit->second;
  pending_.erase(pit);
  if (p.peer != d.from) return;  // response relayed by the wrong peer: discard
  if (graph_.find_neighbor(owner, d.from) == nullptr) return;
  const ClockValue hw = clocks_->true_hardware(owner);
  const double rtt = hw - resp.echo_hw;
  if (rtt < 0.0) return;  // clock anomaly; never poison the window
  EdgeSync& sync = edges_[key(owner, d.from)];
  if (sync.rtts.size() < static_cast<std::size_t>(window_)) {
    sync.rtts.push_back(rtt);
  } else {
    sync.rtts[sync.next] = rtt;
    sync.next = (sync.next + 1) % sync.rtts.size();
  }
  ++samples_accepted_;
  // The responder's logical clock has advanced by ~transit since it stamped
  // remote_logical; compensate with the measured one-way estimate, drift-
  // discounted like the beacon source's known-delay compensation.
  const double transit = filtered_transit(sync.rtts, outlier_);
  sync.base = resp.remote_logical + (1.0 - rho_) * transit;
  sync.recv_hw = hw;
  sync.have_estimate = true;
}

double RttEstimateSource::transit_estimate(NodeId owner, NodeId peer) const {
  const auto it = edges_.find(key(owner, peer));
  if (it == edges_.end() || it->second.rtts.empty()) return -1.0;
  return filtered_transit(it->second.rtts, outlier_);
}

void register_rtt_estimate(Registry<EstimateFactory>& r) {
  using E = Registry<EstimateFactory>::Entry;
  r.add(E{"rtt",
          "measured-RTT offset exchange (two requests/round, sliding-window "
          "average with outlier rejection); the service-mode estimate source",
          {{"probe", "0", "probe period (0 = the engine's beacon period)"},
           {"window", "8", "RTT samples kept per directed edge"},
           {"outlier", "2", "reject samples above this multiple of the window minimum"}},
          [](const ParamMap& p, const EstimateArgs& a) -> std::unique_ptr<EstimateSource> {
            const double probe = p.get_double("probe", 0.0);
            return std::make_unique<RttEstimateSource>(
                a.graph, probe > 0.0 ? probe : a.beacon_period, a.rho, a.mu,
                p.get_int("window", 8), p.get_double("outlier", 2.0));
          }});
}

}  // namespace gcs
