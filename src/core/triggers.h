// Pure evaluation of the fast/slow mode triggers (Defs. 4.5 and 4.6).
//
// Extracted from AoptNode so the trigger semantics — including the mutual
// exclusion guaranteed by Lemma 5.3 — can be unit- and property-tested in
// isolation from the engine.
#pragma once

#include <vector>

#include "util/common.h"

namespace gcs {

/// Sentinel for "member of N^s_u for every level s" (fully inserted edge).
inline constexpr int kAllLevels = 1 << 28;

/// One neighbor as seen by the trigger evaluation at a fixed instant.
struct LevelPeer {
  double kappa = 0.0;  ///< κ_e (current value; time-varying for weight decay)
  double delta = 0.0;  ///< δ_e
  double eps = 0.0;    ///< ε_e
  double tau = 0.0;    ///< τ_e
  /// L̃ᵥᵤ(t) − L_u(t); only meaningful if has_estimate.
  double est_minus_own = 0.0;
  /// Largest s such that the peer is in N^s_u (0 = discovery set only;
  /// kAllLevels = fully inserted). Membership is nested: peer in N^s iff
  /// s <= level_limit.
  int level_limit = 0;
  bool has_estimate = false;
};

struct TriggerDecision {
  bool fast = false;
  bool slow = false;
  int fast_level = 0;  ///< a level s witnessing the fast trigger (if fast)
  int slow_level = 0;  ///< a level s witnessing the slow trigger (if slow)
};

/// Evaluate both triggers over all levels s in {1, ..}. The scan terminates
/// at a data-driven bound: beyond s with s*kappa_min exceeding the largest
/// observed discrepancy, neither existential condition can hold. A peer in
/// N^s without an estimate conservatively blocks both universal conditions.
/// The pointer form lets the hot caller stage peers on the stack.
TriggerDecision evaluate_triggers(const LevelPeer* peers, std::size_t count,
                                  double mu, double rho, int level_cap);
inline TriggerDecision evaluate_triggers(const std::vector<LevelPeer>& peers,
                                         double mu, double rho, int level_cap) {
  return evaluate_triggers(peers.data(), peers.size(), mu, rho, level_cap);
}

}  // namespace gcs
