#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/common.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace gcs {
namespace {

TEST(EdgeKey, NormalizesEndpointOrder) {
  EdgeKey e1(3, 7);
  EdgeKey e2(7, 3);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(e1.a, 3);
  EXPECT_EQ(e1.b, 7);
  EXPECT_EQ(e1.other(3), 7);
  EXPECT_EQ(e1.other(7), 3);
  EXPECT_TRUE(e1.has(3));
  EXPECT_FALSE(e1.has(5));
}

TEST(EdgeKey, RejectsSelfLoop) { EXPECT_THROW(EdgeKey(4, 4), std::invalid_argument); }

TEST(EdgeKey, HashDistinguishesEdges) {
  EdgeKeyHash h;
  EXPECT_NE(h(EdgeKey(0, 1)), h(EdgeKey(0, 2)));
  EXPECT_EQ(h(EdgeKey(1, 0)), h(EdgeKey(0, 1)));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, BelowIsUnbiasedish) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kSamples, 0.2, 0.02);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng root(5);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(FitLinear, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLog, RecoversLogCurve) {
  std::vector<double> x, y;
  for (int i = 1; i <= 60; ++i) {
    x.push_back(i);
    y.push_back(1.0 + 4.0 * std::log(i));
  }
  const auto fit = fit_log(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 4.0, 1e-9);
}

TEST(Table, RendersAlignedCells) {
  Table t("demo");
  t.headers({"name", "value"});
  t.row().cell("x").cell(1.5);
  t.row().cell("longer").cell(2);
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.25, 2), "0.25");
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter w;
  w.field(std::string("a,b")).field(std::string("c\"d")).field(3.5).endrow();
  EXPECT_EQ(w.str(), "\"a,b\",\"c\"\"d\",3.5\n");
}

TEST(Flags, ParsesKeyValuesAndPositional) {
  const char* argv[] = {"prog", "--alpha=1.5", "--name=foo", "--verbose", "pos1"};
  Flags flags(5, argv);
  EXPECT_DOUBLE_EQ(flags.get("alpha", 0.0), 1.5);
  EXPECT_EQ(flags.get("name", std::string("")), "foo");
  EXPECT_TRUE(flags.get("verbose", false));
  EXPECT_EQ(flags.get("missing", 7), 7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

}  // namespace
}  // namespace gcs
