// Randomized scenario fuzzing with an invariant battery.
//
// Each case builds a random world (topology, drift, estimate layer,
// insertion policy, delay regime), then interleaves random adversary actions
// (edge churn preserving connectivity, small clock corruptions) with time
// advances, checking after every step the invariants the paper's analysis
// rests on:
//   * logical rates within [1−ρ, (1+ρ)(1+µ)]                  (§3)
//   * L_u <= M_u <= max_v L_v                                  (Cond. 4.3)
//   * flooded min estimate <= min_v L_v
//   * neighbor-set nesting N^{s+1} ⊆ N^s                       (Lemma 5.1)
//   * fast/slow triggers never simultaneous                    (Lemma 5.3)
//   * completed handshakes agree bitwise on (T0, I, G̃)        (Lemma 5.5 I)
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "metrics/fingerprint.h"
#include "runner/scenario.h"
#include "runner/sweep.h"

namespace gcs {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

class FuzzTest : public ::testing::TestWithParam<FuzzCase> {};

ScenarioSpec random_config(Rng& rng) {
  ScenarioSpec cfg;
  cfg.seed = rng.next();

  // Topology.
  switch (rng.below(6)) {
    case 0:
      cfg.n = static_cast<int>(rng.between(4, 16));
      cfg.explicit_edges = topo_line(cfg.n);
      break;
    case 1:
      cfg.n = static_cast<int>(rng.between(4, 16));
      cfg.explicit_edges = topo_ring(cfg.n);
      break;
    case 2: {
      const int rows = static_cast<int>(rng.between(2, 4));
      const int cols = static_cast<int>(rng.between(2, 4));
      cfg.n = rows * cols;
      cfg.explicit_edges = topo_grid(rows, cols);
      break;
    }
    case 3:
      cfg.n = static_cast<int>(rng.between(4, 16));
      cfg.explicit_edges = topo_random_tree(cfg.n, rng);
      break;
    case 4:
      cfg.n = static_cast<int>(rng.between(5, 14));
      cfg.explicit_edges = topo_gnp_connected(cfg.n, 0.35, rng);
      break;
    default:
      cfg.n = 8;
      cfg.explicit_edges = topo_hypercube(3);
      break;
  }

  cfg.edge_params = default_edge_params(rng.uniform(0.05, 0.2),
                                        rng.uniform(0.1, 0.6),
                                        rng.uniform(0.4, 1.0),
                                        rng.uniform(0.0, 0.2));
  cfg.aopt.rho = rng.uniform(5e-4, 4e-3);
  cfg.aopt.mu = rng.uniform(0.05, 0.1);
  cfg.aopt.gtilde_static =
      suggest_gtilde(cfg.n, cfg.explicit_edges, cfg.edge_params, cfg.aopt) +
      rng.uniform(0.0, 5.0);
  const InsertionPolicy policies[] = {
      InsertionPolicy::kStagedStatic, InsertionPolicy::kStagedDynamic,
      InsertionPolicy::kImmediate, InsertionPolicy::kWeightDecay};
  cfg.aopt.insertion = policies[rng.below(4)];
  cfg.aopt.B = 8.0;
  const char* drifts[] = {"none", "spread", "blocks", "walk", "sine"};
  cfg.drift = ComponentSpec(drifts[rng.below(5)]);
  const double block_period = rng.uniform(20.0, 120.0);
  const int blocks = static_cast<int>(rng.between(2, 4));
  if (cfg.drift.kind == "blocks") {
    cfg.drift.params.set("period", block_period);
    cfg.drift.params.set("blocks", blocks);
  }
  const char* estimates[] = {"zero", "uniform", "adversarial", "beacon"};
  cfg.estimates = ComponentSpec(estimates[rng.below(4)]);
  const char* gskews[] = {"static", "oracle", "distributed"};
  cfg.gskew = ComponentSpec(gskews[rng.below(3)]);
  const DelayMode delays[] = {DelayMode::kUniform, DelayMode::kMin, DelayMode::kMax};
  cfg.delays = delays[rng.below(3)];
  const DetectionDelayMode detections[] = {DetectionDelayMode::kZero,
                                           DetectionDelayMode::kUniform,
                                           DetectionDelayMode::kMax};
  cfg.detection = detections[rng.below(3)];
  return cfg;
}

// `model_conforming` is false once a *downward* clock corruption was
// injected: the paper's model has monotone logical clocks, and the flooded
// max/min bounds (Condition 4.3 and its mirror) are only sound for
// model-conforming executions. The per-node invariant M_u >= L_u is
// maintained unconditionally.
void check_invariants(Scenario& s, std::vector<double>& prev_logical,
                      Time& prev_time, bool allow_jumps, bool model_conforming) {
  Engine& engine = s.engine();
  const int n = engine.size();
  const Time now = s.sim().now();
  const double alpha = s.spec().aopt.alpha();
  const double beta = s.spec().aopt.beta();

  double min_logical = kTimeInf;
  double max_logical = -kTimeInf;
  for (NodeId u = 0; u < n; ++u) {
    const double l = engine.logical(u);
    min_logical = std::min(min_logical, l);
    max_logical = std::max(max_logical, l);
  }

  for (NodeId u = 0; u < n; ++u) {
    const auto i = static_cast<std::size_t>(u);
    const double l = engine.logical(u);
    // Rate envelope between checks (unless jumps were injected).
    if (!allow_jumps && now > prev_time) {
      const double rate = (l - prev_logical[i]) / (now - prev_time);
      ASSERT_GE(rate, alpha - 1e-9) << "node " << u << " t=" << now;
      ASSERT_LE(rate, beta + 1e-9) << "node " << u << " t=" << now;
    }
    prev_logical[i] = l;
    // Condition 4.3 (local part) holds unconditionally.
    ASSERT_GE(engine.max_estimate(u), l - 1e-9);
    if (model_conforming) {
      // Global flooded bounds are sound only without downward jumps.
      ASSERT_LE(engine.max_estimate(u), max_logical + 1e-9);
      ASSERT_LE(engine.min_estimate(u), min_logical + 1e-9);
    }
  }
  prev_time = now;

  if (s.spec().algo.kind != "aopt") return;
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_FALSE(s.aopt(u).saw_trigger_conflict()) << "node " << u;
    for (const NeighborView& nv : s.graph().view_neighbors(u)) {
      const NodeId v = nv.id;
      // Lemma 5.1 nesting.
      for (int level : {1, 2, 4, 8}) {
        if (s.aopt(u).edge_in_level(v, level + 1)) {
          ASSERT_TRUE(s.aopt(u).edge_in_level(v, level));
        }
      }
      // Lemma 5.5 (I): agreement once both committed.
      const auto a = s.aopt(u).peer_info(v);
      const auto b = s.aopt(v).peer_info(u);
      if (a.has_value() && b.has_value() && a->present && b->present &&
          a->t0 < kTimeInf && b->t0 < kTimeInf) {
        ASSERT_DOUBLE_EQ(a->t0, b->t0) << "edge {" << u << "," << v << "}";
        ASSERT_DOUBLE_EQ(a->insertion_duration, b->insertion_duration);
      }
    }
  }
}

TEST_P(FuzzTest, InvariantsHoldUnderRandomAdversary) {
  Rng rng(GetParam().seed * 0x9e3779b97f4a7c15ULL + 1);
  auto cfg = random_config(rng);
  Scenario s(cfg);
  s.start();

  std::vector<double> prev_logical(static_cast<std::size_t>(cfg.n), 0.0);
  Time prev_time = 0.0;
  const auto candidates = cfg.explicit_edges;
  bool model_conforming = true;

  for (int step = 0; step < 60; ++step) {
    bool jumped = false;
    const auto action = rng.below(10);
    if (action < 2 && !candidates.empty()) {
      // Remove a random non-bridge edge.
      const auto& e = candidates[rng.below(candidates.size())];
      if (s.graph().adversary_present(e) && s.graph().connected_without(e)) {
        s.graph().destroy_edge(e);
      }
    } else if (action < 4 && !candidates.empty()) {
      // (Re-)add a random candidate edge.
      const auto& e = candidates[rng.below(candidates.size())];
      if (!s.graph().adversary_present(e)) {
        s.graph().create_edge(e, cfg.edge_params);
      }
    } else if (action == 4) {
      // Small clock corruption (both directions).
      const auto u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(cfg.n)));
      const double offset = rng.uniform(-1.0, 1.0);
      if (offset < 0.0) model_conforming = false;  // outside the clock model
      s.engine().corrupt_logical(u, s.engine().logical(u) + offset);
      jumped = true;
    }
    s.run_for(rng.uniform(1.0, 8.0));
    check_invariants(s, prev_logical, prev_time, jumped, model_conforming);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "invariants broke with seed " << GetParam().seed
                    << " at step " << step;
      return;
    }
  }
}

// ----------------------------- fingerprint determinism (property test)

// The pinned-table suite proves thread-count invariance for the curated
// catalog; this is the same property over RANDOM specs: a trajectory
// fingerprint is a function of the spec alone, never of how the run was
// scheduled. Each random world is fingerprinted serially, then re-run
// through SweepRunner grids of 1, 2 and 8 workers — every hash and event
// count must match the serial reference bit-for-bit.
TEST(FuzzFingerprint, RandomSpecsHashIdenticallyAcrossSweepThreads) {
  constexpr int kSpecs = 6;
  constexpr Time kHorizon = 15.0;

  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < kSpecs; ++i) {
    Rng rng(0x5eedULL + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
    ScenarioSpec cfg = random_config(rng);
    cfg.name = "fuzz-fp-" + std::to_string(i);
    specs.push_back(std::move(cfg));
  }

  std::vector<FingerprintResult> serial(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    serial[i] = fingerprint_run(specs[i], kHorizon);
    ASSERT_GT(serial[i].events, 0u) << specs[i].name << " produced no events";
  }

  std::map<std::string, const ScenarioSpec*> by_name;
  std::vector<std::string> names;
  for (const ScenarioSpec& s : specs) {
    by_name[s.name] = &s;
    names.push_back(s.name);
  }

  for (int threads : {1, 2, 8}) {
    // Heterogeneous specs through a sweep grid: the axis carries the name,
    // the spec_fn swaps in the full random spec (as in test_fingerprint).
    Sweep sweep(specs.front());
    sweep.axis("name", names);
    SweepOptions options;
    options.threads = threads;
    SweepRunner runner(options);
    runner.set_spec_fn(
        [&by_name](ScenarioSpec& spec) { spec = *by_name.at(spec.name); });
    std::vector<FingerprintResult> got(specs.size());
    runner.set_run_fn([&got](Scenario& scenario, RunResult& res) {
      got[static_cast<std::size_t>(res.index)] =
          fingerprint_run(scenario, kHorizon);
    });
    const std::vector<RunResult> results = runner.run(sweep);
    for (const RunResult& r : results) {
      ASSERT_TRUE(r.ok()) << "run '" << r.axes.at("name")
                          << "' failed: " << r.error;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(got[i].hash, serial[i].hash)
          << specs[i].name << " diverged at threads=" << threads;
      EXPECT_EQ(got[i].events, serial[i].events)
          << specs[i].name << " event count at threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzTest,
    ::testing::Values(FuzzCase{1}, FuzzCase{2}, FuzzCase{3}, FuzzCase{4},
                      FuzzCase{5}, FuzzCase{6}, FuzzCase{7}, FuzzCase{8},
                      FuzzCase{9}, FuzzCase{10}, FuzzCase{11}, FuzzCase{12}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace gcs
