// E7 — eq. (8): sigma = (1−ρ)µ/(2ρ) is the base of the skew logarithm.
//   Sweeping rho at fixed mu changes sigma; the local-skew *bound*
//   kappa*(log_sigma(Ghat/kappa)+3) shrinks as 1/log(sigma), and measured
//   worst local skew follows the same ordering.
#include "exp_common.h"

#include <cmath>

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = flags.get("n", 16);
  const double measure_time = flags.get("measure", 500.0);

  print_header("E7 exp_sigma_sweep",
               "eq. (8): larger sigma = (1-rho)mu/2rho => tighter gradient; "
               "local bound scales like 1/log(sigma)");

  Table table("E7 — local skew vs sigma (line n=" + std::to_string(n) +
              ", mu=0.1, rho swept)");
  table.headers({"rho", "sigma", "levels s(kappa)", "local bound",
                 "measured local", "measured/bound"});

  for (double rho : {8e-3, 2e-3, 5e-4, 1.25e-4}) {
    auto cfg = fast_line_config(n);
    cfg.name = "sigma-rho" + format_double(rho, 6);
    cfg.aopt.rho = rho;
    cfg.aopt.gtilde_static =
        suggest_gtilde(n, cfg.initial_edges, cfg.edge_params, cfg.aopt);
    Scenario s(cfg);
    s.start();
    const double ghat = cfg.aopt.gtilde_static;
    const double sigma = cfg.aopt.sigma();
    const double kappa = metric_kappa(s.engine(), EdgeKey(0, 1));

    // Scatter to the diameter scale, stabilize, then measure.
    const double d_bound = estimate_dynamic_diameter(s.engine());
    const double base = s.engine().logical(0);
    for (NodeId u = 0; u < n; ++u) {
      s.engine().corrupt_logical(
          u, base + 2.0 * d_bound * static_cast<double>(u) / (n - 1));
    }
    s.run_for(2.0 * ghat / cfg.aopt.mu);

    double worst_local = 0.0;
    const Time start = s.sim().now();
    while (s.sim().now() < start + measure_time) {
      s.run_for(5.0);
      worst_local = std::max(worst_local, measure_skew(s.engine()).worst_local);
    }

    const double s_of_kappa =
        std::max(1.0, 2.0 + std::ceil(std::log(ghat / kappa) / std::log(sigma)));
    const double bound = gradient_bound(kappa, ghat, sigma);
    table.row()
        .cell(rho, 6)
        .cell(sigma, 1)
        .cell(s_of_kappa, 0)
        .cell(bound)
        .cell(worst_local)
        .cell(worst_local / bound);
  }
  table.print();
  std::cout << "paper: the bound column shrinks as sigma grows (fewer levels "
               "needed to span Ghat); measured local skew respects every bound\n";
  return 0;
}
