// One live runtime node: a full local Scenario stack (kernel, graph,
// transport, estimate layer, engine, AOPT) slaved to a wall clock, with the
// in-sim delivery path diverted onto a real transport.
//
// Every node runs its own *replica* of the scenario in service mode
// (EngineConfig::local_node): the replica executes timers, probes and
// trigger evaluation for exactly one node; every other node exists only as
// an addressing/topology mirror. Outbound messages leave through
// TransportEgress onto the RtTransport; inbound frames are injected back
// through the engine's DeliverySink, which closes the instant-coalesced
// evaluation loop exactly as a kernel delivery would. The Engine and
// AoptNode code paths are byte-for-byte the ones the simulator exercises —
// that is the point of the seam.
#pragma once

#include <functional>

#include "rt/rt_transport.h"
#include "rt/time_source.h"
#include "runner/scenario.h"

namespace gcs {

class RtNode final : public TransportEgress {
 public:
  /// `spec` is the SHARED scenario description — every node of a cluster is
  /// constructed from the same spec (same seed, same topology, same drift
  /// table), which is what keeps the replicas' world views consistent.
  /// `self` selects which node this replica executes.
  RtNode(ScenarioSpec spec, NodeId self, RtTransport& net, TimeSource& clock);

  /// Build the t=0 topology and start the engine (timers for `self` only).
  /// Model time must be at 0: call before the clock has been pumped.
  void start();

  /// One executor step: advance the kernel to the wall clock, drain the
  /// ingress and close the delivery instant. Returns the model time reached.
  /// Call from this node's thread only (the replica is single-threaded).
  Time pump();

  /// Schedule `fn` at an absolute model time on this node's kernel (used by
  /// the cluster to sample clocks at exact grid points, race-free: the
  /// closure runs on this node's thread inside pump()).
  void at(Time model_time, std::function<void()> fn) {
    scenario_.sim().schedule_at(model_time, std::move(fn));
  }

  [[nodiscard]] NodeId self() const { return self_; }
  ClockValue logical() { return scenario_.engine().logical(self_); }
  ClockValue hardware() { return scenario_.engine().hardware(self_); }
  [[nodiscard]] Scenario& scenario() { return scenario_; }
  [[nodiscard]] Engine& engine() { return scenario_.engine(); }

  [[nodiscard]] std::uint64_t egress_count() const { return egress_; }
  [[nodiscard]] std::uint64_t ingress_count() const { return ingress_; }
  /// Frames refused at injection (peer absent from our view / mis-addressed).
  [[nodiscard]] std::uint64_t rejected_count() const { return rejected_; }

  // ------------------------------------------------------- TransportEgress
  void send(NodeId from, NodeId to, Time sent_at, const Payload& payload) override;

 private:
  static ScenarioSpec localize(ScenarioSpec spec, NodeId self);
  void inject(const WireMsg& m);

  NodeId self_;
  RtTransport& net_;
  TimeSource& clock_;
  Scenario scenario_;
  std::uint64_t egress_ = 0;
  std::uint64_t ingress_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace gcs
