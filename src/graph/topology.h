// Static topology generators. They return edge lists; callers decide params
// and whether edges exist from t=0 (create_edge_instant) or appear later.
#pragma once

#include <functional>
#include <vector>

#include "util/common.h"
#include "util/registry.h"
#include "util/rng.h"

namespace gcs {

/// v0 - v1 - ... - v_{n-1}.
std::vector<EdgeKey> topo_line(int n);

/// Line plus the closing edge {0, n-1}.
std::vector<EdgeKey> topo_ring(int n);

/// rows x cols grid, 4-neighborhood.
std::vector<EdgeKey> topo_grid(int rows, int cols);

/// Grid with wrap-around links (torus).
std::vector<EdgeKey> topo_torus(int rows, int cols);

/// Node 0 connected to all others.
std::vector<EdgeKey> topo_star(int n);

/// All pairs.
std::vector<EdgeKey> topo_complete(int n);

/// d-dimensional hypercube on 2^dim nodes.
std::vector<EdgeKey> topo_hypercube(int dim);

/// Two k-cliques joined by a path of `path_len` extra nodes — the classic
/// stress topology for gradient properties (dense ends, thin middle).
/// Total nodes: 2k + path_len.
std::vector<EdgeKey> topo_barbell(int k, int path_len);

/// `k` cliques of `s` nodes each, consecutive cliques joined by `bridges`
/// parallel edges (lowest-id nodes of each side, paired in order; bridges
/// is clamped to s). Total nodes: k*s. The canonical weakly-coupled-islands
/// topology: intra-clique traffic dwarfs the k-1 narrow cuts.
std::vector<EdgeKey> topo_clusters(int k, int s, int bridges);

/// Uniform random spanning tree (random attachment order).
std::vector<EdgeKey> topo_random_tree(int n, Rng& rng);

/// Erdos-Renyi G(n,p) conditioned on connectivity: retries up to
/// `max_attempts` then falls back to adding a random spanning tree.
std::vector<EdgeKey> topo_gnp_connected(int n, double p, Rng& rng,
                                        int max_attempts = 64);

/// 2-D positions in the unit square.
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Random geometric graph: nodes uniform in the unit square, edge iff
/// distance <= radius. Radius is grown (by 10% steps) until connected.
/// Positions are returned through `positions`.
std::vector<EdgeKey> topo_random_geometric(int n, double radius, Rng& rng,
                                           std::vector<Point2>* positions);

/// Edges within `radius` for externally supplied positions.
std::vector<EdgeKey> edges_within_radius(const std::vector<Point2>& positions,
                                         double radius);

/// Hop diameter of an undirected edge list (-1 if disconnected).
int hop_diameter(int n, const std::vector<EdgeKey>& edges);

// --------------------------------------------------------------------------
// Topology registry: every generator above self-registers under a name so
// scenarios can be described as strings ("grid:rows=4,cols=6").

/// Build context handed to topology factories.
struct TopologyArgs {
  int n = 0;          ///< requested node count (generators may override)
  Rng& rng;           ///< deterministic source for randomized generators
  const std::vector<EdgeKey>* explicit_edges = nullptr;  ///< for kind "explicit"
};

/// What a topology factory produces. `n` is authoritative: generators whose
/// size is set by their own parameters (grid, hypercube, ...) report it here.
struct TopologyResult {
  int n = 0;
  std::vector<EdgeKey> edges;
  std::vector<Point2> positions;  ///< only for geometric generators
};

using TopologyFactory = std::function<TopologyResult(const ParamMap&, const TopologyArgs&)>;

/// The process-wide topology registry (builtins registered on first use).
Registry<TopologyFactory>& topology_registry();

}  // namespace gcs
