#include "graph/partition.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace gcs {
namespace {

/// Union-find with path halving. Union keeps the lower root, so every root is
/// the lowest-id member of its set — component numbering falls out for free.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }

  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
  }

 private:
  std::vector<int> parent_;
};

std::vector<std::vector<NodeId>> build_adjacency(int n,
                                                 const std::vector<EdgeKey>& edges) {
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (const EdgeKey& e : edges) {
    adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());
  return adj;
}

}  // namespace

std::vector<int> connected_components(int n, const std::vector<EdgeKey>& edges,
                                      int* count) {
  UnionFind uf(n);
  for (const EdgeKey& e : edges) uf.unite(e.a, e.b);
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (int u = 0; u < n; ++u) {
    const int root = uf.find(u);
    if (comp[static_cast<std::size_t>(root)] < 0)
      comp[static_cast<std::size_t>(root)] = next++;
    comp[static_cast<std::size_t>(u)] = comp[static_cast<std::size_t>(root)];
  }
  if (count != nullptr) *count = next;
  return comp;
}

IslandPlan partition_islands(int n, const std::vector<EdgeKey>& edges,
                             int requested, int cut_budget) {
  IslandPlan plan;
  if (n <= 0) {
    plan.reason = "empty graph";
    return plan;
  }
  if (requested <= 0) {
    plan.reason = "requested island count must be positive";
    return plan;
  }
  const long budget = cut_budget < 0 ? n : cut_budget;

  if (requested == 1) {
    plan.feasible = true;
    plan.islands = 1;
    plan.island_of.assign(static_cast<std::size_t>(n), 0);
    return plan;
  }

  const int k = std::min(requested, n);
  int comp_count = 0;
  const std::vector<int> comp = connected_components(n, edges, &comp_count);

  std::vector<int> island_of(static_cast<std::size_t>(n), -1);
  if (comp_count >= k) {
    // Whole components bin-packed into k islands: the cut is empty by
    // construction, so feasibility only hinges on having >= 2 islands.
    std::vector<std::int64_t> comp_size(static_cast<std::size_t>(comp_count), 0);
    for (int u = 0; u < n; ++u) ++comp_size[static_cast<std::size_t>(comp[static_cast<std::size_t>(u)])];
    std::vector<int> order(static_cast<std::size_t>(comp_count));
    for (int c = 0; c < comp_count; ++c) order[static_cast<std::size_t>(c)] = c;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const std::int64_t sa = comp_size[static_cast<std::size_t>(a)];
      const std::int64_t sb = comp_size[static_cast<std::size_t>(b)];
      if (sa != sb) return sa > sb;
      return a < b;  // component ids are already ordered by lowest member
    });
    std::vector<std::int64_t> load(static_cast<std::size_t>(k), 0);
    std::vector<int> island_of_comp(static_cast<std::size_t>(comp_count), -1);
    for (const int c : order) {
      int best = 0;
      for (int i = 1; i < k; ++i)
        if (load[static_cast<std::size_t>(i)] < load[static_cast<std::size_t>(best)]) best = i;
      island_of_comp[static_cast<std::size_t>(c)] = best;
      load[static_cast<std::size_t>(best)] += comp_size[static_cast<std::size_t>(c)];
    }
    for (int u = 0; u < n; ++u)
      island_of[static_cast<std::size_t>(u)] =
          island_of_comp[static_cast<std::size_t>(comp[static_cast<std::size_t>(u)])];
  } else {
    // Connected (or nearly): grow k regions from farthest-first seeds.
    const auto adj = build_adjacency(n, edges);

    std::vector<NodeId> seeds;
    seeds.push_back(0);
    std::vector<int> dist(static_cast<std::size_t>(n));
    while (static_cast<int>(seeds.size()) < k) {
      std::fill(dist.begin(), dist.end(), -1);
      std::queue<NodeId> bfs;
      for (const NodeId s : seeds) {
        dist[static_cast<std::size_t>(s)] = 0;
        bfs.push(s);
      }
      while (!bfs.empty()) {
        const NodeId u = bfs.front();
        bfs.pop();
        for (const NodeId v : adj[static_cast<std::size_t>(u)]) {
          if (dist[static_cast<std::size_t>(v)] >= 0) continue;
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          bfs.push(v);
        }
      }
      NodeId far = kNoNode;
      long far_dist = -1;
      for (int u = 0; u < n; ++u) {
        const int du = dist[static_cast<std::size_t>(u)];
        if (du == 0) continue;  // a seed
        const long d = du < 0 ? std::numeric_limits<long>::max() : du;
        if (d > far_dist) {
          far = u;
          far_dist = d;
        }
      }
      seeds.push_back(far);
    }

    // Growth: repeatedly give the smallest island (ties to the lower index)
    // the frontier node with the most neighbors already inside it (ties to
    // the lowest id). Equal-size alternation keeps the split balanced;
    // max-internal-degree consumption keeps the boundary compact (low cut)
    // and the lowest-id tie-break keeps it deterministic.
    std::vector<std::set<NodeId>> frontier(static_cast<std::size_t>(k));
    std::vector<std::int64_t> size(static_cast<std::size_t>(k), 0);
    int assigned = 0;
    for (int i = 0; i < k; ++i) {
      island_of[static_cast<std::size_t>(seeds[static_cast<std::size_t>(i)])] = i;
      ++size[static_cast<std::size_t>(i)];
      ++assigned;
    }
    for (int i = 0; i < k; ++i)
      for (const NodeId v : adj[static_cast<std::size_t>(seeds[static_cast<std::size_t>(i)])])
        if (island_of[static_cast<std::size_t>(v)] < 0)
          frontier[static_cast<std::size_t>(i)].insert(v);

    NodeId rescue = 0;  // cursor for disconnected leftovers
    while (assigned < n) {
      int best = -1;
      for (int i = 0; i < k; ++i) {
        if (frontier[static_cast<std::size_t>(i)].empty()) continue;
        if (best < 0 || size[static_cast<std::size_t>(i)] < size[static_cast<std::size_t>(best)])
          best = i;
      }
      if (best < 0) {
        // Every frontier is dry but nodes remain (leftover components):
        // seed the smallest island with the lowest unassigned id.
        while (island_of[static_cast<std::size_t>(rescue)] >= 0) ++rescue;
        int tgt = 0;
        for (int i = 1; i < k; ++i)
          if (size[static_cast<std::size_t>(i)] < size[static_cast<std::size_t>(tgt)]) tgt = i;
        island_of[static_cast<std::size_t>(rescue)] = tgt;
        ++size[static_cast<std::size_t>(tgt)];
        ++assigned;
        for (const NodeId v : adj[static_cast<std::size_t>(rescue)])
          if (island_of[static_cast<std::size_t>(v)] < 0)
            frontier[static_cast<std::size_t>(tgt)].insert(v);
        continue;
      }
      auto& fr = frontier[static_cast<std::size_t>(best)];
      NodeId u = kNoNode;
      int u_gain = -1;
      for (auto it = fr.begin(); it != fr.end();) {
        const NodeId cand = *it;
        if (island_of[static_cast<std::size_t>(cand)] >= 0) {
          it = fr.erase(it);  // stale: another island claimed it first
          continue;
        }
        int gain = 0;
        for (const NodeId v : adj[static_cast<std::size_t>(cand)])
          if (island_of[static_cast<std::size_t>(v)] == best) ++gain;
        if (gain > u_gain) {  // set order makes ties resolve to the lowest id
          u = cand;
          u_gain = gain;
        }
        ++it;
      }
      if (u == kNoNode) continue;
      fr.erase(u);
      island_of[static_cast<std::size_t>(u)] = best;
      ++size[static_cast<std::size_t>(best)];
      ++assigned;
      for (const NodeId v : adj[static_cast<std::size_t>(u)])
        if (island_of[static_cast<std::size_t>(v)] < 0) fr.insert(v);
    }
  }

  // Renumber so island k's lowest node id increases with k; drop empties.
  std::vector<int> remap(static_cast<std::size_t>(k), -1);
  int next = 0;
  for (int u = 0; u < n; ++u) {
    const int raw = island_of[static_cast<std::size_t>(u)];
    if (remap[static_cast<std::size_t>(raw)] < 0) remap[static_cast<std::size_t>(raw)] = next++;
  }
  for (int u = 0; u < n; ++u)
    island_of[static_cast<std::size_t>(u)] =
        remap[static_cast<std::size_t>(island_of[static_cast<std::size_t>(u)])];

  plan.islands = next;
  plan.island_of = std::move(island_of);
  for (const EdgeKey& e : edges)
    if (plan.island_of[static_cast<std::size_t>(e.a)] !=
        plan.island_of[static_cast<std::size_t>(e.b)])
      plan.cut.push_back(e);

  if (plan.islands < 2) {
    plan.reason = "partition produced fewer than 2 islands";
    return plan;
  }
  if (static_cast<long>(plan.cut.size()) > budget) {
    plan.reason = "cut " + std::to_string(plan.cut.size()) + " exceeds budget " +
                  std::to_string(budget);
    return plan;
  }
  plan.feasible = true;
  return plan;
}

}  // namespace gcs
