// E6 — self-stabilization of the gradient property (§1, §5.3.3).
//   From a corrupted clock state (random scatter within Ghat/2) the system
//   re-establishes legality (Def. 5.13 with the stabilized gradient
//   sequence) within O(Ghat/mu) = O(D) time.
//
// The size axis runs as a SweepRunner grid (sharded work-stealing pool,
// --threads), one independent Scenario per n.
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto sizes = parse_int_list(flags.get("sizes", std::string()), {8, 16, 32});
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 7));

  print_header("E6 exp_self_stabilization",
               "gradient legality restored within O(Ghat/mu) = O(D) after "
               "arbitrary clock corruption");

  auto base = fast_line_spec(8);
  base.seed = seed;
  Sweep sweep(base);
  sweep.axis("n", sizes);
  SweepOptions options;
  options.threads = flags.get("threads", 2);
  SweepRunner runner(options);
  runner.set_run_fn([seed](Scenario& s, RunResult& r) {
    s.start();
    const int n = s.spec().n;
    const double ghat = s.spec().aopt.gtilde_static;
    s.run_until(200.0);

    Rng rng(seed ^ (static_cast<std::uint64_t>(n) << 8));
    const double base_l = s.engine().logical(0);
    for (NodeId u = 0; u < n; ++u) {
      s.engine().corrupt_logical(u, base_l + rng.uniform(0.0, ghat / 2.0));
    }
    const auto broken = check_legality(s.engine(), ghat);

    const Time t0 = s.sim().now();
    const double unit = ghat / s.spec().aopt.mu;
    Time legal_at = kTimeInf;
    while (s.sim().now() < t0 + 8.0 * unit) {
      s.run_for(unit / 40.0);
      if (check_legality(s.engine(), ghat).legal()) {
        legal_at = s.sim().now();
        break;
      }
    }
    bool stays = legal_at < kTimeInf;
    if (stays) {
      for (int round = 0; round < 5; ++round) {
        s.run_for(unit / 10.0);
        stays = stays && check_legality(s.engine(), ghat).legal();
      }
    }

    r.values["ghat"] = ghat;
    r.values["margin_at_corrupt"] = broken.worst_margin;
    r.values["recovery"] = legal_at - t0;
    r.values["recovery_norm"] = (legal_at - t0) / unit;
    r.values["stays_legal"] = stays ? 1.0 : 0.0;
  });
  const auto results = runner.run(sweep);

  Table table("E6 — recovery time from scattered clock corruption (line)");
  table.headers({"n", "Ghat", "margin@corrupt", "t(legal again)",
                 "t / (Ghat/mu)", "stays legal"});
  std::vector<double> xs;
  std::vector<double> recovery;
  for (const auto& r : results) {
    if (!r.ok()) {
      std::cerr << "run n=" << r.n << " failed: " << r.error << "\n";
      return 1;
    }
    table.row()
        .cell(r.n)
        .cell(r.values.at("ghat"))
        .cell(r.values.at("margin_at_corrupt"))
        .cell(r.values.at("recovery"))
        .cell(r.values.at("recovery_norm"))
        .cell(r.values.at("stays_legal") != 0.0);
    xs.push_back(r.n);
    recovery.push_back(r.values.at("recovery"));
  }
  table.print();

  const auto fit = fit_linear(xs, recovery);
  std::cout << "recovery time vs n: slope " << format_double(fit.slope, 2)
            << ", r2 = " << format_double(fit.r2, 3)
            << "\npaper: O(D) self-stabilization -> recovery/(Ghat/mu) bounded "
               "by a constant across sizes\n";
  return 0;
}
