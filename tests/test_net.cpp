#include <gtest/gtest.h>

#include <vector>

#include "graph/dynamic_graph.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace gcs {
namespace {

struct Fixture {
  Simulator sim;
  DynamicGraph graph{sim, 4, 7};
  Transport transport{sim, graph, 9};
  std::vector<Delivery> deliveries;
  std::vector<Payload> payloads;  ///< copied out: d.payload dies with the call

  explicit Fixture(double delay_min = 0.1, double delay_max = 0.5) {
    graph.set_detection_delay_mode(DetectionDelayMode::kZero);
    EdgeParams p;
    p.eps = 0.1;
    p.tau = 0.2;
    p.msg_delay_min = delay_min;
    p.msg_delay_max = delay_max;
    graph.create_edge_instant(EdgeKey(0, 1), p);
    graph.create_edge_instant(EdgeKey(1, 2), p);
    transport.set_handler([this](const Delivery& d) {
      deliveries.push_back(d);
      payloads.push_back(*d.payload);
    });
  }
};

TEST(Transport, DeliversWithinDelayBounds) {
  Fixture f;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(f.transport.send(0, 1, Beacon{1.0 * i, 0.0}));
  }
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 100u);
  for (const auto& d : f.deliveries) {
    const double transit = d.delivered_at - d.sent_at;
    EXPECT_GE(transit, 0.1 - 1e-12);
    EXPECT_LE(transit, 0.5 + 1e-12);
    EXPECT_EQ(d.from, 0);
    EXPECT_EQ(d.to, 1);
    EXPECT_DOUBLE_EQ(d.known_min_delay, 0.1);
  }
}

TEST(Transport, RefusesSendWithoutEdgeInSendersView) {
  Fixture f;
  EXPECT_FALSE(f.transport.send(0, 2, Beacon{}));
  EXPECT_FALSE(f.transport.send(0, 3, Beacon{}));
  EXPECT_EQ(f.transport.sent_count(), 0u);
}

TEST(Transport, DelayModeMinAndMax) {
  Fixture f;
  f.transport.set_delay_mode(DelayMode::kMin);
  f.transport.send(0, 1, Beacon{});
  f.transport.set_delay_mode(DelayMode::kMax);
  f.transport.send(0, 1, Beacon{});
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(f.deliveries[0].delivered_at - f.deliveries[0].sent_at, 0.1);
  EXPECT_DOUBLE_EQ(f.deliveries[1].delivered_at - f.deliveries[1].sent_at, 0.5);
}

TEST(Transport, DirectionalOverrideClampedToBounds) {
  Fixture f;
  f.transport.set_directional_delay(0, 1, 0.3);
  f.transport.send(0, 1, Beacon{});
  f.transport.set_directional_delay(0, 1, 99.0);  // clamped to max
  f.transport.send(0, 1, Beacon{});
  f.transport.clear_directional_delay(0, 1);
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(f.deliveries[0].delivered_at - f.deliveries[0].sent_at, 0.3);
  EXPECT_DOUBLE_EQ(f.deliveries[1].delivered_at - f.deliveries[1].sent_at, 0.5);
}

TEST(Transport, DropsWhenEdgeVanishesMidFlight) {
  Fixture f;
  f.transport.set_delay_mode(DelayMode::kMax);  // 0.5 transit
  EXPECT_TRUE(f.transport.send(0, 1, Beacon{}));
  f.sim.run_until(0.1);
  f.graph.destroy_edge(EdgeKey(0, 1));
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 0u);
  EXPECT_EQ(f.transport.dropped_count(), 1u);
  EXPECT_EQ(f.transport.arena().live(), 0u);  // drops release their ref too
}

TEST(Transport, DropsWhenEdgeAppearedAfterSend) {
  Fixture f;
  f.transport.set_delay_mode(DelayMode::kMax);
  EXPECT_TRUE(f.transport.send(0, 1, Beacon{}));
  f.sim.run_until(0.1);
  // Re-create the edge: receiver's view_since moves past the send time.
  f.graph.destroy_edge(EdgeKey(0, 1));
  EdgeParams p;
  p.eps = 0.1;
  p.tau = 0.2;
  p.msg_delay_min = 0.1;
  p.msg_delay_max = 0.5;
  f.graph.create_edge(EdgeKey(0, 1), p);
  f.sim.run();
  EXPECT_EQ(f.deliveries.size(), 0u);
}

TEST(Transport, PayloadVariantsRoundTrip) {
  Fixture f;
  f.transport.send(0, 1, Beacon{12.5, 13.5});
  f.transport.send(1, 2, InsertEdgeMsg{77.0, 10.0});
  f.sim.run();
  ASSERT_EQ(f.deliveries.size(), 2u);
  EXPECT_EQ(f.transport.arena().live(), 0u);  // all refs reclaimed
  int beacons = 0;
  int inserts = 0;
  for (const auto& payload : f.payloads) {
    if (const auto* b = std::get_if<Beacon>(&payload)) {
      ++beacons;
      EXPECT_DOUBLE_EQ(b->logical, 12.5);
      EXPECT_DOUBLE_EQ(b->max_estimate, 13.5);
    } else if (const auto* ins = std::get_if<InsertEdgeMsg>(&payload)) {
      ++inserts;
      EXPECT_DOUBLE_EQ(ins->l_ins, 77.0);
      EXPECT_DOUBLE_EQ(ins->gtilde, 10.0);
    }
  }
  EXPECT_EQ(beacons, 1);
  EXPECT_EQ(inserts, 1);
}

}  // namespace
}  // namespace gcs
