// Algorithm registry: clock-sync algorithms self-register a per-node
// factory under a name ("aopt", "max-jump", ...). The registration sites
// live next to the implementations (core/aopt_node.cpp, baseline/
// baselines.cpp); new algorithms only need to add themselves here — no
// switch statement to extend.
#pragma once

#include "core/engine.h"
#include "util/registry.h"

namespace gcs {

/// Build context for algorithm factories.
struct AlgoArgs {
  AlgoParams params;
};

/// An algorithm factory produces the engine's per-node factory.
using AlgoFactory =
    std::function<Engine::AlgorithmFactory(const ParamMap&, const AlgoArgs&)>;

/// The process-wide algorithm registry (builtins registered on first use).
Registry<AlgoFactory>& algo_registry();

/// Registration sites (called once by algo_registry()).
void register_aopt_algorithm(Registry<AlgoFactory>& r);
void register_baseline_algorithms(Registry<AlgoFactory>& r);

}  // namespace gcs
