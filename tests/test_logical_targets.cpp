// The exact logical-time target mechanism (Engine/NodeApi): the insertion
// protocol's correctness rests on callbacks firing exactly when L_u crosses
// the agreed logical values, including across rate and drift changes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aopt_node.h"
#include "runner/scenario.h"

namespace gcs {
namespace {

// A probe algorithm exposing schedule_at_logical directly.
class ProbeAlgo final : public Algorithm {
 public:
  [[nodiscard]] const char* name() const override { return "probe"; }
  void reevaluate() override {}
  NodeApi* api() { return api_; }
};

ScenarioSpec probe_config(const ComponentSpec& drift) {
  ScenarioSpec cfg;
  cfg.n = 2;
  cfg.explicit_edges = {EdgeKey(0, 1)};
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 2e-3;
  cfg.aopt.mu = 0.1;
  cfg.drift = drift;
  return cfg;
}

struct ProbeWorld {
  Simulator sim;
  DynamicGraph graph{sim, 2};
  Transport transport{sim, graph};
  std::unique_ptr<DriftModel> drift;
  OracleEstimateSource estimates{graph, OracleErrorPolicy::kZero};
  StaticGskewEstimator gskew{5.0};
  std::unique_ptr<Engine> engine;
  ProbeAlgo* probe0 = nullptr;

  explicit ProbeWorld(std::unique_ptr<DriftModel> d) : drift(std::move(d)) {
    AlgoParams params;
    params.rho = 2e-3;
    params.mu = 0.1;
    EngineConfig config;
    engine = std::make_unique<Engine>(
        sim, graph, transport, *drift, estimates, gskew, params, config,
        [this](NodeId u) -> std::unique_ptr<Algorithm> {
          auto algo = std::make_unique<ProbeAlgo>();
          if (u == 0) probe0 = algo.get();
          return algo;
        });
    graph.create_edge_instant(EdgeKey(0, 1), default_edge_params());
    engine->start();
  }
};

TEST(LogicalTargets, FireExactlyAtTargetValue) {
  ProbeWorld w(std::make_unique<ConstantDrift>(2e-3, 1.5e-3, 2));
  std::vector<double> observed;
  for (double target : {10.0, 25.0, 17.5}) {  // registered out of order
    w.probe0->api()->schedule_at_logical(
        target, [&, target] { observed.push_back(w.engine->logical(0)); });
  }
  w.sim.run_until(40.0);
  ASSERT_EQ(observed.size(), 3u);
  // Fired in target order regardless of registration order, at the value.
  EXPECT_NEAR(observed[0], 10.0, 1e-9);
  EXPECT_NEAR(observed[1], 17.5, 1e-9);
  EXPECT_NEAR(observed[2], 25.0, 1e-9);
}

TEST(LogicalTargets, SurviveRateMultiplierChanges) {
  ProbeWorld w(std::make_unique<ConstantDrift>(2e-3, 0.0, 2));
  double fired_at_logical = -1.0;
  w.probe0->api()->schedule_at_logical(
      30.0, [&] { fired_at_logical = w.engine->logical(0); });
  // Flip the node's speed several times before the target is reached.
  w.sim.run_until(5.0);
  w.probe0->api()->set_rate_multiplier(1.1);
  w.sim.run_until(12.0);
  w.probe0->api()->set_rate_multiplier(1.0);
  w.sim.run_until(20.0);
  w.probe0->api()->set_rate_multiplier(1.1);
  w.sim.run_until(40.0);
  EXPECT_NEAR(fired_at_logical, 30.0, 1e-9);
}

TEST(LogicalTargets, SurviveDriftChanges) {
  // Alternating drift changes the hardware rate every 3 time units; the
  // logical-target event must be re-aimed each time and still hit exactly.
  ProbeWorld w(std::make_unique<AlternatingBlocksDrift>(2e-3, 2, 2, 3.0));
  double fired_at_logical = -1.0;
  w.probe0->api()->schedule_at_logical(
      20.0, [&] { fired_at_logical = w.engine->logical(0); });
  w.sim.run_until(40.0);
  EXPECT_NEAR(fired_at_logical, 20.0, 1e-7);
}

TEST(LogicalTargets, PastTargetFiresImmediately) {
  ProbeWorld w(std::make_unique<ConstantDrift>(2e-3, 0.0, 2));
  w.sim.run_until(10.0);
  bool fired = false;
  w.probe0->api()->schedule_at_logical(5.0, [&] { fired = true; });  // already passed
  w.sim.run_until(10.0 + 1e-6);
  EXPECT_TRUE(fired);
}

TEST(LogicalTargets, CallbackMayScheduleFurtherTargets) {
  ProbeWorld w(std::make_unique<ConstantDrift>(2e-3, 0.0, 2));
  std::vector<double> hits;
  std::function<void(double)> chain = [&](double target) {
    w.probe0->api()->schedule_at_logical(target, [&, target] {
      hits.push_back(w.engine->logical(0));
      if (target < 30.0) chain(target + 10.0);
    });
  };
  chain(10.0);
  w.sim.run_until(50.0);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_NEAR(hits[0], 10.0, 1e-9);
  EXPECT_NEAR(hits[1], 20.0, 1e-9);
  EXPECT_NEAR(hits[2], 30.0, 1e-9);
}

TEST(LogicalTargets, AoptInsertionTimesHitTheGridUnderDrift) {
  // End-to-end: with oscillating drift, both endpoints of a new edge enter
  // level 1 exactly when their own logical clock reads T0 (Listing 1 line 19).
  ScenarioSpec cfg = probe_config(ComponentSpec("blocks"));
  cfg.n = 3;
  cfg.explicit_edges = topo_line(3);
  cfg.drift.params.set("period", 7.0);
  cfg.aopt.gtilde_static = 1.5;
  Scenario s(cfg);
  s.start();
  s.run_until(20.0);
  s.graph().create_edge(EdgeKey(0, 2), cfg.edge_params);
  s.run_until(35.0);
  const auto info = s.aopt(0).peer_info(2);
  ASSERT_TRUE(info.has_value());
  ASSERT_LT(info->t0, kTimeInf);
  // March to just before/after T0 in logical terms and check the flip.
  while (s.engine().logical(0) < info->t0 - 0.05) s.run_for(0.01);
  EXPECT_FALSE(s.aopt(0).edge_in_level(2, 1));
  while (s.engine().logical(0) < info->t0 + 0.05) s.run_for(0.01);
  EXPECT_TRUE(s.aopt(0).edge_in_level(2, 1));
}

}  // namespace
}  // namespace gcs
