// Bounded lock-free single-producer/single-consumer ring.
//
// The pipe transport's building block: one ring per directed node pair, the
// sending thread is the only producer, the receiving thread the only
// consumer. The classic two-cursor design: the producer owns tail_, the
// consumer owns head_, each reads the other's cursor with acquire and
// publishes its own with release — slot contents are synchronized by those
// two edges alone, so push/pop are wait-free and allocation-free. Cursors
// live on separate cache lines (no false sharing); they grow monotonically
// and are wrapped by the power-of-two index mask, which makes `tail - head`
// the exact queue size with no empty/full ambiguity.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/common.h"

namespace gcs {

template <class T>
class SpscRing {
 public:
  /// `capacity` must be a power of two (the index mask trick).
  explicit SpscRing(std::size_t capacity) : slots_(capacity), mask_(capacity - 1) {
    require(capacity >= 2 && (capacity & mask_) == 0,
            "SpscRing: capacity must be a power of two >= 2");
  }

  /// Producer side. False when full (caller decides: drop or retry).
  bool push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;  // full
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate (racy) size — diagnostics only.
  [[nodiscard]] std::size_t size_approx() const {
    return tail_.load(std::memory_order_relaxed) -
           head_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace gcs
