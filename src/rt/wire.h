// Wire format for runtime transports.
//
// A length-prefixed little-endian frame carrying one Message payload:
//
//   u16 length   (bytes after this field: the whole frame minus 2)
//   u8  version  (kWireVersion; receivers drop unknown versions)
//   u8  tag      (payload alternative: 0 Beacon, 1 InsertEdge, 2 TimeRequest,
//                 3 TimeResponse, 4 LivenessPing — the Payload variant order,
//                 pinned here)
//   u32 from, u32 to
//   f64 sent_at  (sender model time)
//   payload fields (fixed per tag, doubles and u32s, little-endian)
//   u32 crc32c   (v2+: Castagnoli CRC of every preceding byte, length
//                 prefix included)
//
// The prefix is redundant for UDP (datagram boundaries frame for free) but
// makes the same frames usable over stream transports, and lets a receiver
// reject truncated datagrams in one check. Field-wise encoding rather than
// a struct memcpy: the frame layout is a contract between *processes*, and
// must not silently follow compiler padding.
//
// Version history. v1 had no integrity trailer: a flipped payload bit
// decoded into a plausible message. v2 appends the CRC32C trailer; the
// decoder verifies it before looking at any field and still accepts v1
// frames for one release so mixed-version clusters can upgrade node by
// node (encoders always emit v2).
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/message.h"

namespace gcs {

/// A payload in flight between runtime nodes, plus its addressing.
/// `deliver_at` is pipe-local fault-injection state (the earliest model time
/// the receiver may surface the message); it never goes on the wire.
struct WireMsg {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Time sent_at = 0.0;
  Time deliver_at = 0.0;
  Payload payload{};
};

inline constexpr std::uint8_t kWireVersion = 2;
/// Still accepted on decode (one-release migration window); never emitted.
inline constexpr std::uint8_t kWireVersionLegacy = 1;
/// Bytes of the v2 CRC32C trailer.
inline constexpr std::size_t kWireCrcBytes = 4;
/// Largest encoded frame (header + widest payload alternative + trailer).
inline constexpr std::size_t kWireMax = 64;

/// CRC32C (Castagnoli, reflected 0x82F63B78) — the checksum iSCSI and
/// ext4 use. Software table implementation; frames are tiny.
[[nodiscard]] std::uint32_t crc32c(const std::uint8_t* data, std::size_t len);

/// Encode into `buf` (capacity >= kWireMax). Returns the frame size in
/// bytes, length prefix and CRC trailer included. Always emits kWireVersion.
std::size_t wire_encode(const WireMsg& m, std::uint8_t* buf);

/// Decode one frame. False on truncation, bad version, bad tag, a length
/// prefix disagreeing with `len`, or (v2) a CRC mismatch — the CRC is
/// checked before any field is interpreted. `deliver_at` is left at 0.
bool wire_decode(const std::uint8_t* buf, std::size_t len, WireMsg& out);

}  // namespace gcs
