#include <gtest/gtest.h>

#include <algorithm>

#include "graph/adversary.h"
#include "graph/dynamic_graph.h"
#include "graph/paths.h"
#include "graph/topology.h"
#include "sim/simulator.h"

namespace gcs {
namespace {

EdgeParams params_with_tau(double tau) {
  EdgeParams p;
  p.eps = 0.1;
  p.tau = tau;
  p.msg_delay_max = 0.5;
  p.msg_delay_min = 0.1;
  return p;
}

TEST(Topology, LineRingStarCounts) {
  EXPECT_EQ(topo_line(5).size(), 4u);
  EXPECT_EQ(topo_ring(5).size(), 5u);
  EXPECT_EQ(topo_star(5).size(), 4u);
  EXPECT_EQ(topo_complete(5).size(), 10u);
  EXPECT_EQ(topo_grid(3, 4).size(), 3u * 3u + 4u * 2u);
  EXPECT_EQ(topo_torus(3, 3).size(), 18u);
}

TEST(Topology, HopDiameters) {
  EXPECT_EQ(hop_diameter(6, topo_line(6)), 5);
  EXPECT_EQ(hop_diameter(6, topo_ring(6)), 3);
  EXPECT_EQ(hop_diameter(6, topo_star(6)), 2);
  EXPECT_EQ(hop_diameter(6, topo_complete(6)), 1);
  EXPECT_EQ(hop_diameter(3, {EdgeKey(0, 1)}), -1);  // disconnected
}

TEST(Topology, RandomTreeIsConnectedSpanning) {
  Rng rng(3);
  const auto edges = topo_random_tree(20, rng);
  EXPECT_EQ(edges.size(), 19u);
  EXPECT_GT(hop_diameter(20, edges), 0);
}

TEST(Topology, GnpConnected) {
  Rng rng(5);
  const auto edges = topo_gnp_connected(24, 0.15, rng);
  EXPECT_GE(hop_diameter(24, edges), 1);
}

TEST(Topology, RandomGeometricConnectedWithPositions) {
  Rng rng(7);
  std::vector<Point2> pos;
  const auto edges = topo_random_geometric(30, 0.2, rng, &pos);
  EXPECT_EQ(pos.size(), 30u);
  EXPECT_GE(hop_diameter(30, edges), 1);
}

TEST(DynamicGraph, InstantCreationVisibleToBothViews) {
  Simulator sim;
  DynamicGraph g(sim, 4);
  g.create_edge_instant(EdgeKey(0, 1), params_with_tau(0.5));
  EXPECT_TRUE(g.view_present(0, 1));
  EXPECT_TRUE(g.view_present(1, 0));
  EXPECT_TRUE(g.both_views_present(EdgeKey(0, 1)));
  EXPECT_FALSE(g.view_present(0, 2));
  ASSERT_EQ(g.view_neighbors(0).size(), 1u);
  EXPECT_EQ(g.view_neighbors(0)[0].id, 1);
}

TEST(DynamicGraph, DetectionDelayBoundedByTau) {
  Simulator sim;
  DynamicGraph g(sim, 2, 11);
  g.set_detection_delay_mode(DetectionDelayMode::kUniform);
  const double tau = 0.5;
  sim.run_until(10.0);
  g.create_edge(EdgeKey(0, 1), params_with_tau(tau));
  sim.run_until(10.0 + tau + 1e-9);
  EXPECT_TRUE(g.view_present(0, 1));
  EXPECT_TRUE(g.view_present(1, 0));
  // Removal detected within tau as well.
  g.destroy_edge(EdgeKey(0, 1));
  sim.run_until(sim.now() + tau + 1e-9);
  EXPECT_FALSE(g.view_present(0, 1));
  EXPECT_FALSE(g.view_present(1, 0));
}

TEST(DynamicGraph, MaxAsymmetryMode) {
  Simulator sim;
  DynamicGraph g(sim, 2, 11);
  g.set_detection_delay_mode(DetectionDelayMode::kMax);
  sim.run_until(5.0);
  g.create_edge(EdgeKey(0, 1), params_with_tau(1.0));
  // Endpoint a detects instantly, b after exactly tau.
  EXPECT_TRUE(g.view_present(0, 1));
  EXPECT_FALSE(g.view_present(1, 0));
  sim.run_until(6.0 + 1e-9);
  EXPECT_TRUE(g.view_present(1, 0));
}

TEST(DynamicGraph, FlappingEdgeResolvesToFinalState) {
  Simulator sim;
  DynamicGraph g(sim, 2, 13);
  g.set_detection_delay_mode(DetectionDelayMode::kUniform);
  sim.run_until(1.0);
  const EdgeKey e(0, 1);
  const auto p = params_with_tau(0.5);
  g.create_edge(e, p);
  g.destroy_edge(e);
  g.create_edge(e, p);
  g.destroy_edge(e);
  sim.run_until(3.0);
  EXPECT_FALSE(g.view_present(0, 1));
  EXPECT_FALSE(g.view_present(1, 0));
  EXPECT_FALSE(g.adversary_present(e));
}

TEST(DynamicGraph, ListenerSeesDiscoveryAndLoss) {
  struct Recorder : DynamicGraph::Listener {
    std::vector<std::pair<NodeId, NodeId>> ups, downs;
    void on_edge_discovered(NodeId u, NodeId peer) override { ups.emplace_back(u, peer); }
    void on_edge_lost(NodeId u, NodeId peer) override { downs.emplace_back(u, peer); }
  };
  Simulator sim;
  DynamicGraph g(sim, 3, 17);
  Recorder rec;
  g.set_listener(&rec);
  g.set_detection_delay_mode(DetectionDelayMode::kZero);
  g.create_edge(EdgeKey(0, 2), params_with_tau(0.1));
  EXPECT_EQ(rec.ups.size(), 2u);
  g.destroy_edge(EdgeKey(0, 2));
  EXPECT_EQ(rec.downs.size(), 2u);
}

TEST(DynamicGraph, ViewSinceTracksLatestDiscovery) {
  Simulator sim;
  DynamicGraph g(sim, 2, 19);
  g.set_detection_delay_mode(DetectionDelayMode::kZero);
  const EdgeKey e(0, 1);
  sim.run_until(2.0);
  g.create_edge(e, params_with_tau(0.1));
  EXPECT_DOUBLE_EQ(g.view_since(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.both_views_since(e), 2.0);
  sim.run_until(5.0);
  g.destroy_edge(e);
  g.create_edge(e, params_with_tau(0.1));
  EXPECT_DOUBLE_EQ(g.view_since(0, 1), 5.0);
}

TEST(DynamicGraph, ParamsMustNotChangeAcrossReinsertion) {
  Simulator sim;
  DynamicGraph g(sim, 2, 23);
  const EdgeKey e(0, 1);
  g.create_edge(e, params_with_tau(0.5));
  g.destroy_edge(e);
  EXPECT_THROW(g.create_edge(e, params_with_tau(0.7)), std::runtime_error);
}

TEST(DynamicGraph, ConnectivityQueries) {
  Simulator sim;
  DynamicGraph g(sim, 4, 29);
  const auto p = params_with_tau(0.1);
  for (const auto& e : topo_line(4)) g.create_edge_instant(e, p);
  EXPECT_TRUE(g.adversary_connected());
  EXPECT_FALSE(g.connected_without(EdgeKey(1, 2)));  // bridge
  g.create_edge_instant(EdgeKey(0, 3), p);
  EXPECT_TRUE(g.connected_without(EdgeKey(1, 2)));  // ring now
}

TEST(Paths, DijkstraOnWeightedLine) {
  const auto edges = topo_line(5);
  const auto adj = build_adjacency(5, edges, [](const EdgeKey&) { return 2.0; });
  const auto dist = dijkstra(adj, 0);
  EXPECT_DOUBLE_EQ(dist[4], 8.0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
}

TEST(Paths, DijkstraPrefersLightPath) {
  // 0-1-2 with weights 1,1 and direct 0-2 with weight 5.
  std::vector<EdgeKey> edges{EdgeKey(0, 1), EdgeKey(1, 2), EdgeKey(0, 2)};
  const auto adj = build_adjacency(3, edges, [](const EdgeKey& e) {
    return (e == EdgeKey(0, 2)) ? 5.0 : 1.0;
  });
  EXPECT_DOUBLE_EQ(dijkstra(adj, 0)[2], 2.0);
}

TEST(Paths, UnreachableIsInfinite) {
  const auto adj = build_adjacency(3, {EdgeKey(0, 1)}, [](const EdgeKey&) { return 1.0; });
  EXPECT_TRUE(std::isinf(dijkstra(adj, 0)[2]));
  EXPECT_EQ(bfs_hops(adj, 0)[2], -1);
  EXPECT_TRUE(std::isinf(weighted_diameter(adj)));
}

TEST(Paths, WeightedDiameterOfRing) {
  const auto adj = build_adjacency(6, topo_ring(6), [](const EdgeKey&) { return 1.0; });
  EXPECT_DOUBLE_EQ(weighted_diameter(adj), 3.0);
}

TEST(ScriptedAdversaryTest, ReplaysEvents) {
  Simulator sim;
  DynamicGraph g(sim, 3, 31);
  g.set_detection_delay_mode(DetectionDelayMode::kZero);
  ScriptedAdversary adv(sim, g);
  adv.add_create(1.0, EdgeKey(0, 1), params_with_tau(0.1));
  adv.add_create(2.0, EdgeKey(1, 2), params_with_tau(0.1));
  adv.add_destroy(3.0, EdgeKey(0, 1));
  adv.arm();
  sim.run_until(1.5);
  EXPECT_TRUE(g.both_views_present(EdgeKey(0, 1)));
  EXPECT_FALSE(g.both_views_present(EdgeKey(1, 2)));
  sim.run_until(4.0);
  EXPECT_FALSE(g.both_views_present(EdgeKey(0, 1)));
  EXPECT_TRUE(g.both_views_present(EdgeKey(1, 2)));
}

TEST(ChurnAdversaryTest, KeepsGraphConnected) {
  Simulator sim;
  DynamicGraph g(sim, 8, 37);
  g.set_detection_delay_mode(DetectionDelayMode::kZero);
  const auto p = params_with_tau(0.1);
  const auto ring = topo_ring(8);
  for (const auto& e : ring) g.create_edge_instant(e, p);
  auto candidates = topo_complete(8);
  ChurnAdversary::Config config;
  config.ops_per_time = 2.0;
  ChurnAdversary churn(sim, g, candidates, p, config, 41);
  churn.arm();
  for (int step = 0; step < 50; ++step) {
    sim.run_until(step * 2.0);
    EXPECT_TRUE(g.adversary_connected()) << "disconnected at t=" << sim.now();
  }
  EXPECT_GT(churn.removals() + churn.additions(), 10);
}

}  // namespace
}  // namespace gcs
