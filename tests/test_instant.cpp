// Instant-coalesced evaluation (EngineConfig::coalesce_instants).
//
// Edge cases of the instant grouping: two deliveries to one node at
// bit-identical timestamps, a delivery tying with a periodic timer, and a
// node that joins and receives a message within the same instant. Each case
// asserts (a) FIFO (time, seq) order is preserved WITHIN the instant group
// — effects apply in exactly the order the events were scheduled — and
// (b) the coalesced engine runs Algorithm::reevaluate() exactly once per
// dirty node when the instant closes, where the legacy per-event mode runs
// it once per event.
//
// Also the tentpole's paper-semantics equivalence claims:
//  * with no two events sharing an instant, per-instant and per-event
//    evaluation produce IDENTICAL skew trajectories (beacon estimates draw
//    no per-scan randomness, so the comparison is bit-exact);
//  * when instants are shared (zero-delay deliveries land on their send
//    instant), the trajectories diverge — coalesced runs scan less — but
//    both modes keep the paper's guarantees (legality, G <= G̃) and each
//    mode stays seed-deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "clock/drift.h"
#include "core/engine.h"
#include "estimate/estimate_source.h"
#include "graph/dynamic_graph.h"
#include "metrics/legality.h"
#include "metrics/skew.h"
#include "net/transport.h"
#include "runner/scenario.h"
#include "sim/simulator.h"

namespace gcs {
namespace {

/// Counts reevaluate() calls per node; does nothing else (never switches
/// modes, so clock trajectories stay trivial and instants stay exact).
class ProbeAlgo final : public Algorithm {
 public:
  explicit ProbeAlgo(int* counter) : counter_(counter) {}
  [[nodiscard]] const char* name() const override { return "probe"; }
  void reevaluate() override { ++*counter_; }

 private:
  int* counter_;
};

/// Flat recording of every fired engine/transport event.
struct FiredLog final : public KernelTraceSink {
  struct Rec {
    Time t;
    NodeId node;
    EventKind kind;
  };
  std::vector<Rec> recs;
  void on_event_fired(Time t, NodeId node, EventKind kind) override {
    recs.push_back(Rec{t, node, kind});
  }
  [[nodiscard]] std::vector<Rec> at(Time t) const {
    std::vector<Rec> out;
    for (const Rec& r : recs) {
      if (r.t == t) out.push_back(r);
    }
    return out;
  }
};

/// A minimal hand-built world: n nodes, oracle-zero estimates (no estimate
/// randomness), constant unit hardware rates, probe algorithms. Periodic
/// engine timers are pushed out to `tick_period` so tests control every
/// event; beacons are disabled (messages are sent manually).
struct World {
  explicit World(int n, EdgeParams edge_params, bool coalesce,
                 Duration tick_period = 1e6)
      : graph(sim, n, 5),
        transport(sim, graph),
        drift(/*rho=*/0.0, /*offset=*/0.0, n),
        estimates(graph, OracleErrorPolicy::kZero),
        gskew(10.0),
        counts(static_cast<std::size_t>(n), 0),
        params(edge_params) {
    graph.set_detection_delay_mode(DetectionDelayMode::kZero);
    transport.set_delay_mode(DelayMode::kMin);
    EngineConfig config;
    config.tick_period = tick_period;
    config.beacon_period = tick_period;
    config.enable_beacons = false;
    config.coalesce_instants = coalesce;
    AlgoParams algo_params;  // defaults are valid
    engine = std::make_unique<Engine>(
        sim, graph, transport, drift, estimates, gskew, algo_params, config,
        [this](NodeId u) -> std::unique_ptr<Algorithm> {
          return std::make_unique<ProbeAlgo>(&counts[static_cast<std::size_t>(u)]);
        });
    engine->set_kernel_trace(&log);
    transport.set_kernel_trace(&log);
  }

  Simulator sim;
  DynamicGraph graph;
  Transport transport;
  ConstantDrift drift;
  OracleEstimateSource estimates;
  StaticGskewEstimator gskew;
  std::vector<int> counts;
  EdgeParams params;
  std::unique_ptr<Engine> engine;
  FiredLog log;
};

EdgeParams tight_params(double delay_min) {
  EdgeParams p;
  p.eps = 0.1;
  p.tau = 0.2;
  p.msg_delay_min = delay_min;
  p.msg_delay_max = 0.5;
  return p;
}

TEST(InstantCoalescing, TwoDeliveriesAtBitIdenticalTimestampEvaluateOnce) {
  World w(3, tight_params(0.25), /*coalesce=*/true);
  w.graph.create_edge_instant(EdgeKey(0, 1), w.params);
  w.graph.create_edge_instant(EdgeKey(1, 2), w.params);
  w.engine->start();
  w.sim.run_until(1.0);
  const int before = w.counts[1];

  // Both sends drawn at t=1 with the pinned minimum delay: 1.0 + 0.25 is
  // exact in binary, so both deliveries land at the bit-identical instant.
  ASSERT_TRUE(w.transport.send(0, 1, Beacon{50.0, 100.0, 0.0}));
  ASSERT_TRUE(w.transport.send(2, 1, Beacon{60.0, 200.0, 0.0}));
  w.sim.run_until(2.0);

  // Both raised M (100 then 200): two dirty events, ONE evaluation.
  EXPECT_EQ(w.counts[1], before + 1);
  EXPECT_GT(w.engine->max_estimate(1), 150.0);  // the second candidate won

  // FIFO within the instant group: the deliveries fired in schedule order.
  const auto group = w.log.at(1.25);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].kind, EventKind::kDelivery);
  EXPECT_EQ(group[1].kind, EventKind::kDelivery);
  EXPECT_EQ(group[0].node, 1);
  EXPECT_EQ(group[1].node, 1);

  // The same two deliveries under legacy per-event semantics: two scans.
  World legacy(3, tight_params(0.25), /*coalesce=*/false);
  legacy.graph.create_edge_instant(EdgeKey(0, 1), legacy.params);
  legacy.graph.create_edge_instant(EdgeKey(1, 2), legacy.params);
  legacy.engine->start();
  legacy.sim.run_until(1.0);
  const int legacy_before = legacy.counts[1];
  ASSERT_TRUE(legacy.transport.send(0, 1, Beacon{50.0, 100.0, 0.0}));
  ASSERT_TRUE(legacy.transport.send(2, 1, Beacon{60.0, 200.0, 0.0}));
  legacy.sim.run_until(2.0);
  EXPECT_EQ(legacy.counts[1], legacy_before + 2);
}

TEST(InstantCoalescing, CleanDeliveryDoesNotTriggerEvaluation) {
  World w(3, tight_params(0.25), /*coalesce=*/true);
  w.graph.create_edge_instant(EdgeKey(0, 1), w.params);
  w.engine->start();
  w.sim.run_until(1.0);

  // First beacon raises M at node 1 -> dirty -> one scan.
  const int before = w.counts[1];
  ASSERT_TRUE(w.transport.send(0, 1, Beacon{50.0, 100.0, 0.0}));
  w.sim.run_until(2.0);
  EXPECT_EQ(w.counts[1], before + 1);

  // A beacon whose candidate cannot beat the current M changes no discrete
  // trigger input: no evaluation (the tick guard band covers drift).
  const int after_first = w.counts[1];
  ASSERT_TRUE(w.transport.send(0, 1, Beacon{1.0, 2.0, 0.0}));
  w.sim.run_until(3.0);
  EXPECT_EQ(w.counts[1], after_first);
}

TEST(InstantCoalescing, DeliveryAndTimerTieAtOneInstantEvaluateOnce) {
  // Node 1's first tick fires at tick_period * (1+1)/(3+1) = 2.5 * 0.5 =
  // 1.25, and a message sent at t=1 with the pinned 0.25 delay arrives at
  // 1.25 — both exact in binary, one instant group.
  World w(3, tight_params(0.25), /*coalesce=*/true, /*tick_period=*/2.5);
  w.graph.create_edge_instant(EdgeKey(0, 1), w.params);
  w.engine->start();
  w.sim.run_until(1.0);
  const int before = w.counts[1];
  ASSERT_TRUE(w.transport.send(0, 1, Beacon{50.0, 100.0, 0.0}));
  w.sim.run_until(2.0);

  // Tick (always dirty) + M-raising delivery at one instant: ONE scan.
  EXPECT_EQ(w.counts[1], before + 1);

  // FIFO within the group: the tick was scheduled at start(), long before
  // the delivery, so it fires first.
  const auto group = w.log.at(1.25);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].kind, EventKind::kTick);
  EXPECT_EQ(group[0].node, 1);
  EXPECT_EQ(group[1].kind, EventKind::kDelivery);
  EXPECT_EQ(group[1].node, 1);
}

TEST(InstantCoalescing, JoinAndDeliveryAtOneInstantEvaluateOnce) {
  // A node joins (edge created) and receives a message within the same
  // instant: the zero-minimum delay lands the delivery on its send instant.
  World w(2, tight_params(0.0), /*coalesce=*/true);
  w.engine->start();
  w.sim.run_until(0.5);
  const int before0 = w.counts[0];
  const int before1 = w.counts[1];

  w.sim.schedule_at(1.0, [&w] {
    w.graph.create_edge_instant(EdgeKey(0, 1), w.params);
    ASSERT_TRUE(w.transport.send(0, 1, Beacon{50.0, 100.0, 0.0}));
  });
  w.sim.run_until(2.0);

  // Node 1 turned dirty twice within the instant (edge discovery, then the
  // M-raising delivery) but evaluated once; node 0 (discovery only) too.
  EXPECT_EQ(w.counts[1], before1 + 1);
  EXPECT_EQ(w.counts[0], before0 + 1);
  // The delivery was accepted, not dropped: the edge existed in the
  // receiver's view from exactly the send instant on (since == sent_at).
  EXPECT_EQ(w.transport.delivered_count(), 1u);
  EXPECT_EQ(w.transport.dropped_count(), 0u);
  EXPECT_GT(w.engine->max_estimate(1), 99.0);
  // FIFO: the join ran inside the closure; the delivery (scheduled by that
  // closure at the same instant, higher seq) fired after it.
  const auto group = w.log.at(1.0);
  ASSERT_EQ(group.size(), 1u);  // the closure itself is not traced
  EXPECT_EQ(group[0].kind, EventKind::kDelivery);
}

// ---------------------------------------------------------------------------
// Tentpole equivalence: per-instant vs per-event evaluation.

ScenarioSpec equivalence_spec(bool coalesce) {
  ScenarioSpec spec;
  spec.name = "instant-equivalence";
  spec.n = 10;
  spec.topology = ComponentSpec("line");
  spec.edge_params = default_edge_params(0.05, 0.25, 0.5, 0.1);
  spec.aopt.rho = 1e-3;
  spec.aopt.mu = 0.1;
  spec.gtilde_auto = true;
  spec.drift = ComponentSpec("spread");
  spec.estimates = ComponentSpec("beacon");
  spec.seed = 20260729;
  spec.engine.coalesce_instants = coalesce;
  return spec;
}

TEST(InstantEquivalence, IdenticalTrajectoriesWhenNoEventsShareAnInstant) {
  // Staggered per-node phases and continuous uniform delay draws keep every
  // instant to a single event (the merged heartbeat is ONE event), so
  // deferring the scan to the end of the instant changes nothing: same
  // state, same instant, same decision. Beacon estimates draw no per-scan
  // randomness, so the two modes must match bit-for-bit.
  Scenario a(equivalence_spec(true));
  Scenario b(equivalence_spec(false));
  a.start();
  b.start();
  for (int step = 1; step <= 12; ++step) {
    const Time t = 5.0 * step;
    a.run_until(t);
    b.run_until(t);
    const auto sa = measure_skew(a.engine());
    const auto sb = measure_skew(b.engine());
    EXPECT_EQ(sa.global, sb.global) << "t=" << t;
    EXPECT_EQ(sa.worst_local, sb.worst_local) << "t=" << t;
  }
  for (NodeId u = 0; u < a.spec().n; ++u) {
    EXPECT_EQ(a.engine().logical(u), b.engine().logical(u)) << "node " << u;
    EXPECT_EQ(a.engine().max_estimate(u), b.engine().max_estimate(u));
  }
  EXPECT_EQ(a.sim().fired_count(), b.sim().fired_count());
}

ScenarioSpec shared_instant_spec(bool coalesce) {
  // delay_min = 0 with pinned-minimum delays: every delivery lands ON its
  // send instant, so each beacon broadcast forms a multi-event instant group
  // (sender heartbeat + receptions). This is the regime where per-instant
  // and per-event evaluation genuinely diverge.
  ScenarioSpec spec;
  spec.name = "instant-shared";
  spec.n = 8;
  spec.topology = ComponentSpec("line");
  spec.edge_params = default_edge_params(0.05, 0.25, 0.5, 0.0);
  spec.aopt.rho = 1e-3;
  spec.aopt.mu = 0.1;
  spec.gtilde_auto = true;
  spec.drift = ComponentSpec("spread");
  spec.estimates = ComponentSpec("uniform");
  spec.delays = DelayMode::kMin;
  spec.seed = 42;
  spec.engine.coalesce_instants = coalesce;
  return spec;
}

TEST(InstantEquivalence, BoundedDivergenceWhenInstantsAreShared) {
  Scenario a(shared_instant_spec(true));
  Scenario b(shared_instant_spec(false));
  a.start();
  b.start();
  a.run_until(120.0);
  b.run_until(120.0);

  // Coalescing merges scans on shared instants, so the coalesced run must
  // have evaluated less; the oracle RNG streams then diverge and the
  // trajectories are NOT identical — but both stay within the paper's
  // guarantees, which is the bound that matters.
  const double gtilde = a.spec().aopt.gtilde_static;
  for (Scenario* s : {&a, &b}) {
    const auto snap = measure_skew(s->engine());
    EXPECT_LT(snap.global, gtilde);
    EXPECT_TRUE(check_legality(s->engine(), gtilde).legal());
  }
  // And each mode is individually seed-deterministic.
  Scenario a2(shared_instant_spec(true));
  a2.start();
  a2.run_until(120.0);
  EXPECT_EQ(measure_skew(a.engine()).global, measure_skew(a2.engine()).global);
  EXPECT_EQ(a.sim().fired_count(), a2.sim().fired_count());
}

}  // namespace
}  // namespace gcs
