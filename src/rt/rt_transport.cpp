#include "rt/rt_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gcs {

namespace {

/// The chaos corruption decision for one send, derived from ONE u64 draw of
/// the per-link corruption stream. The top 53 bits decide whether to flip
/// (uniform in [0,1) against the armed probability); the low bits pick the
/// bit to flip once the frame length is known. Shared by every backend so
/// "corrupt 0.5" means the same thing over pipes, UDP and TCP.
struct CorruptDraw {
  std::uint64_t raw = 0;
  [[nodiscard]] bool hit(float probability) const {
    if (probability <= 0.0f) return false;
    const double u = static_cast<double>(raw >> 11) * 0x1.0p-53;
    return u < static_cast<double>(probability);
  }
  /// Bit index within [first_byte, len) of an encoded frame.
  [[nodiscard]] std::size_t bit(std::size_t first_byte, std::size_t len) const {
    const std::size_t nbits = (len - first_byte) * 8;
    return first_byte * 8 + static_cast<std::size_t>(raw % nbits);
  }
};

/// Flip one bit past the length prefix of an encoded frame.
void flip_frame_bit(std::uint8_t* frame, std::size_t len, const CorruptDraw& d) {
  const std::size_t bit = d.bit(/*first_byte=*/2, len);
  frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

}  // namespace

// -------------------------------------------------------------------- pipe

PipeHub::PipeHub(int n, TimeSource& clock, const FaultSpec& faults,
                 std::size_t ring_capacity)
    : n_(n), clock_(clock), faults_(faults) {
  require(n >= 1, "PipeHub: need n >= 1");
  const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  rings_.reserve(nn);
  rngs_.reserve(nn);
  chaos_rngs_.reserve(nn);
  Rng root(faults.seed ^ 0x9d1eULL);
  Rng chaos_root(faults.seed ^ 0xc4a05ULL);
  Rng corrupt_root(faults.seed ^ 0xf11bULL);
  corrupt_rngs_.reserve(nn);
  for (std::size_t i = 0; i < nn; ++i) {
    rings_.push_back(std::make_unique<SpscRing<WireMsg>>(ring_capacity));
    rngs_.push_back(root.fork(i));
    chaos_rngs_.push_back(chaos_root.fork(i));
    corrupt_rngs_.push_back(corrupt_root.fork(i));
  }
  link_faults_ = std::make_unique<std::atomic<std::uint64_t>[]>(nn);
  ring_full_link_ = std::make_unique<std::atomic<std::uint64_t>[]>(nn);
  inboxes_.resize(static_cast<std::size_t>(n));
}

void PipeHub::set_link_fault(NodeId from, NodeId to, const LinkFault& f) {
  require(from >= 0 && from < n_ && to >= 0 && to < n_ && from != to,
          "PipeHub: bad link");
  link_faults_[link_index(from, to)].store(pack_link_fault(f),
                                           std::memory_order_relaxed);
}

bool PipeHub::push_one(const WireMsg& m) {
  if (!ring(m.from, m.to).push(m)) {
    // Ring full: backpressure means loss, exactly like a saturated NIC
    // queue. The protocol tolerates loss by design — but the operator must
    // be able to see it, so it gets its own counter, per directed link.
    ring_full_.fetch_add(1, std::memory_order_relaxed);
    ring_full_link_[link_index(m.from, m.to)].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PipeHub::send(const WireMsg& m) {
  require(m.from >= 0 && m.from < n_ && m.to >= 0 && m.to < n_ && m.from != m.to,
          "PipeHub: bad addressing");
  const std::size_t link = link_index(m.from, m.to);
  Rng& rng = edge_rng(m.from, m.to);
  // Always draw the full decision tuple: the per-edge RNG stream is then a
  // pure function of the send count, so a fixed seed reproduces the same
  // fault pattern whatever the thread interleaving or fault configuration.
  const double roll_drop = rng.uniform(0.0, 1.0);
  const double roll_dup = rng.uniform(0.0, 1.0);
  const double roll_reorder = rng.uniform(0.0, 1.0);
  const double draw_delay = rng.uniform(0.0, 1.0);
  const double draw_jitter = rng.uniform(0.0, 1.0);
  // Same discipline for the chaos stream (one roll per send, armed or not).
  const double roll_chaos = chaos_rngs_[link].uniform(0.0, 1.0);
  const CorruptDraw corrupt{corrupt_rngs_[link].next()};
  if (roll_drop < faults_.drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return true;  // swallowed in flight; the sender cannot tell
  }
  const LinkFault chaos =
      unpack_link_fault(link_faults_[link].load(std::memory_order_relaxed));
  if (roll_chaos < chaos.drop) {
    chaos_dropped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (corrupt.hit(chaos.corrupt)) {
    // Pipe frames are structs, not bytes, so corruption goes through the
    // real codec: encode, flip one bit, re-decode. CRC32C detects every
    // single-bit error, so the decode fails and the frame dies in flight,
    // counted exactly as a socket backend's receiver would count it.
    corrupted_.fetch_add(1, std::memory_order_relaxed);
    std::uint8_t frame[kWireMax];
    const std::size_t len = wire_encode(m, frame);
    flip_frame_bit(frame, len, corrupt);
    WireMsg decoded;
    if (!wire_decode(frame, len, decoded)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return true;  // swallowed in flight, like a chaos drop
    }
    // Unreachable for single-bit flips, but if the codec ever let one
    // through, delivering the decoded bytes is the honest behavior.
  }
  WireMsg out = m;
  Duration hold = draw_jitter * faults_.jitter + chaos.extra_delay;
  if (roll_reorder < faults_.reorder) {
    hold += draw_delay * faults_.delay;
    delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  out.deliver_at = hold > 0.0 ? clock_.now() + hold : 0.0;
  const bool ok = push_one(out);
  if (roll_dup < faults_.dup) {
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    push_one(out);
  }
  return ok;
}

bool PipeHub::poll(NodeId self, WireMsg& out) {
  require(self >= 0 && self < n_, "PipeHub: bad poll node");
  Inbox& inbox = inboxes_[static_cast<std::size_t>(self)];
  // Drain every inbound ring into the pending heap first: a freshly arrived
  // message may be due before an already-held delayed one.
  WireMsg m;
  for (NodeId from = 0; from < n_; ++from) {
    if (from == self) continue;
    while (ring(from, self).pop(m)) {
      inbox.pending.emplace(m, inbox.seq++);
    }
  }
  if (inbox.pending.empty()) return false;
  const auto& head = inbox.pending.top();
  if (head.first.deliver_at > clock_.now()) return false;  // held back (fault delay)
  out = head.first;
  inbox.pending.pop();
  return true;
}

// --------------------------------------------------------------------- udp

UdpTransport::UdpTransport(int n, NodeId self, std::uint16_t base_port,
                           TimeSource* clock, std::uint64_t chaos_seed)
    : n_(n), self_(self), base_port_(base_port), clock_(clock) {
  require(n >= 1 && self >= 0 && self < n, "UdpTransport: bad node");
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  require(fd_ >= 0, "UdpTransport: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port + self));
  const int rc = ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    ::close(fd_);
    fd_ = -1;
    require(false, "UdpTransport: bind(127.0.0.1:" +
                       std::to_string(base_port + self) + ") failed: " +
                       std::strerror(errno));
  }
  // Per-destination chaos stream, forked the same way PipeHub forks its
  // per-link streams: every daemon derives the same decisions for its own
  // outbound links from (chaos_seed, self, to, send count) alone.
  Rng chaos_root(chaos_seed ^ 0xc4a05ULL);
  Rng corrupt_root(chaos_seed ^ 0xf11bULL);
  chaos_rngs_.reserve(static_cast<std::size_t>(n));
  corrupt_rngs_.reserve(static_cast<std::size_t>(n));
  for (NodeId to = 0; to < n; ++to) {
    const std::uint64_t stream =
        static_cast<std::uint64_t>(self) * static_cast<std::uint64_t>(n) +
        static_cast<std::uint64_t>(to);
    chaos_rngs_.push_back(chaos_root.fork(stream));
    corrupt_rngs_.push_back(corrupt_root.fork(stream));
  }
  link_faults_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(n));
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::set_link_fault(NodeId from, NodeId to, const LinkFault& f) {
  if (from != self_) return;  // the peer's transport owns the reverse slot
  require(to >= 0 && to < n_ && to != self_, "UdpTransport: bad link");
  // A latency storm needs a clock to measure the hold against. Refusing to
  // arm one here beats the old behavior (silently releasing stashed frames
  // with zero delay — a storm that quietly tests nothing).
  require(f.extra_delay <= 0.0f || clock_ != nullptr,
          "UdpTransport: latency fault armed without a clock");
  link_faults_[static_cast<std::size_t>(to)].store(pack_link_fault(f),
                                                   std::memory_order_relaxed);
}

bool UdpTransport::transmit(const std::uint8_t* frame, std::size_t len, NodeId to) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port_ + to));
  // Bounded retry on transient kernel-side backpressure: a loopback socket
  // buffer drains in microseconds, so a couple of immediate retries clear
  // almost every EAGAIN without ever blocking the pump thread.
  constexpr int kAttempts = 3;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const ssize_t rc = ::sendto(fd_, frame, len, 0,
                                reinterpret_cast<const sockaddr*>(&addr),
                                sizeof(addr));
    if (rc == static_cast<ssize_t>(len)) {
      ++sent_;
      return true;
    }
    const bool transient =
        rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS);
    if (!transient) break;
    ++send_retries_;
  }
  // A real socket failure, NOT an injected fault: dropped() stays a pure
  // function of the chaos script.
  ++send_errors_;
  return false;
}

void UdpTransport::flush_stash() {
  if (stash_.empty() || clock_ == nullptr) return;
  const Time now = clock_->now();
  while (!stash_.empty() && stash_.top().release_at <= now) {
    const Stashed& top = stash_.top();
    transmit(top.frame.data(), top.len, top.to);
    stash_.pop();
  }
}

bool UdpTransport::send(const WireMsg& m) {
  require(m.to >= 0 && m.to < n_ && m.to != self_, "UdpTransport: bad addressing");
  flush_stash();
  // One chaos roll per send, armed or not (see PipeHub::send); the
  // corruption stream keeps the same discipline independently.
  const double roll = chaos_rngs_[static_cast<std::size_t>(m.to)].uniform(0.0, 1.0);
  const CorruptDraw corrupt{corrupt_rngs_[static_cast<std::size_t>(m.to)].next()};
  const LinkFault chaos = unpack_link_fault(
      link_faults_[static_cast<std::size_t>(m.to)].load(std::memory_order_relaxed));
  if (roll < chaos.drop) {
    ++dropped_;
    return true;  // swallowed in flight; the sender cannot tell
  }
  std::uint8_t frame[kWireMax];
  const std::size_t len = wire_encode(m, frame);
  if (corrupt.hit(chaos.corrupt)) {
    flip_frame_bit(frame, len, corrupt);
    ++corrupted_;
  }
  if (chaos.extra_delay > 0.0f && clock_ != nullptr) {
    Stashed stashed;
    stashed.release_at = clock_->now() + chaos.extra_delay;
    stashed.seq = stash_seq_++;
    std::memcpy(stashed.frame.data(), frame, len);
    stashed.len = len;
    stashed.to = m.to;
    stash_.push(stashed);
    return true;
  }
  return transmit(frame, len, m.to);
}

bool UdpTransport::poll(NodeId self, WireMsg& out) {
  require(self == self_, "UdpTransport: instance serves one node");
  flush_stash();
  std::uint8_t buf[kWireMax];
  for (;;) {
    const ssize_t rc = ::recvfrom(fd_, buf, sizeof(buf), 0, nullptr, nullptr);
    if (rc < 0) return false;  // EWOULDBLOCK: nothing ready
    if (wire_decode(buf, static_cast<std::size_t>(rc), out)) {
      ++received_;
      return true;
    }
    // Undecodable datagram (chaos corruption, foreign sender, truncation):
    // count it and keep draining. The counter is what lets CI prove every
    // injected bit flip was caught rather than silently absorbed.
    ++rejected_;
  }
}

}  // namespace gcs
