// E3 — local skew scales like Theta(log_sigma D), not Theta(D).
//   The paper's headline: while the *global* skew necessarily grows linearly
//   with the network extent (Theorem 5.6 is tight), the *local* skew bound
//   kappa*(log_sigma(Ghat/kappa)+O(1)) grows only logarithmically. We sweep
//   the line length and report measured steady global skew (linear in n),
//   measured worst local skew, and the theoretical local bound (log in n).
//
// The sweep over n runs as a SweepRunner grid: one Scenario per size, the
// cross-product executed on a thread pool (--threads), results identical to
// the serial run because every Scenario owns its simulator and RNG streams.
#include "exp_common.h"

#include <cmath>

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto sizes =
      parse_int_list(flags.get("sizes", std::string()), {8, 16, 32, 64});
  const auto seeds = parse_int_list(flags.get("seeds", std::string()), {1});
  const double measure_time = flags.get("measure", 600.0);
  const int threads = flags.get("threads", 2);

  print_header("E3 exp_local_skew_scaling",
               "local skew = O(kappa log_sigma(D/kappa)) while global skew = Theta(D)");

  Sweep sweep(fast_line_spec(8));
  sweep.axis("n", sizes);
  sweep.axis("seed", seeds);

  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  runner.set_run_fn([measure_time](Scenario& s, RunResult& r) {
    s.start();
    const int n = s.spec().n;
    const double ghat = s.spec().aopt.gtilde_static;
    const double sigma = s.spec().aopt.sigma();
    const double kappa = metric_kappa(s.engine(), EdgeKey(0, 1));
    const double mu = s.spec().aopt.mu;

    // Drive the system into the steady regime: scatter to the diameter
    // bound, then let the gradient mechanism redistribute.
    const double d_bound = estimate_dynamic_diameter(s.engine());
    scatter_clocks_linearly(s, 2.0 * d_bound);
    s.run_for(2.0 * ghat / mu);

    RunningStats global;
    double worst_local = 0.0;
    const Time measure_start = s.sim().now();
    while (s.sim().now() < measure_start + measure_time) {
      s.run_for(5.0);
      const auto snap = measure_skew(s.engine());
      global.add(snap.global);
      worst_local = std::max(worst_local, snap.worst_local);
    }

    r.final_global = global.mean();
    r.max_local = worst_local;
    r.values["G steady"] = global.mean();
    r.values["local worst"] = worst_local;
    r.values["local bound"] = gradient_bound(kappa, ghat, sigma);
    (void)n;
  });

  const auto results = runner.run(sweep);

  const bool multi_seed = seeds.size() > 1;
  Table table("E3 — skew scaling with network size (line, worst-case constant drift)");
  table.headers(multi_seed
                    ? std::vector<std::string>{"n", "seed", "G steady (~D)",
                                               "local worst", "local bound",
                                               "local/bound", "global/local"}
                    : std::vector<std::string>{"n", "G steady (~D)", "local worst",
                                               "local bound", "local/bound",
                                               "global/local"});
  std::vector<double> xs;
  std::vector<double> global_series;
  std::vector<double> local_series;
  for (const auto& r : results) {
    if (!r.ok()) {
      std::cerr << "run n=" << r.n << " failed: " << r.error << "\n";
      continue;
    }
    const double global = r.values.at("G steady");
    const double worst_local = r.values.at("local worst");
    const double local_bound = r.values.at("local bound");
    auto& row = table.row().cell(r.n);
    if (multi_seed) row.cell(static_cast<long long>(r.seed));
    row.cell(global)
        .cell(worst_local)
        .cell(local_bound)
        .cell(worst_local / local_bound)
        .cell(global / std::max(worst_local, 1e-9));
    xs.push_back(r.n);
    global_series.push_back(global);
    local_series.push_back(worst_local);
  }
  table.print();

  const auto gfit = fit_linear(xs, global_series);
  const auto lfit_linear = fit_linear(xs, local_series);
  const auto lfit_log = fit_log(xs, local_series);
  std::cout << "global skew vs n:  linear fit slope " << format_double(gfit.slope)
            << " (r2=" << format_double(gfit.r2, 3) << ") — grows with D\n"
            << "local skew vs n:   linear r2=" << format_double(lfit_linear.r2, 3)
            << ", log r2=" << format_double(lfit_log.r2, 3)
            << " — paper predicts the log model (and a slope near zero)\n"
            << "key ratio: global/local widens with n -> gradient property pays "
               "off more the larger the network\n";
  return 0;
}
