// E1 — Theorem 5.6: global skew.
//   (I)  The global skew grows at rate at most 2ρ.
//   (II) Above D(t) + ι it shrinks at rate at least µ(1−ρ) − 2ρ.
//   Steady state: G(t) = O(D) — proportional to the network extent.
//
// Workload: line topology, maximally divergent constant drift. An initial
// linear clock scatter of 2·D̂ across the line puts the system above the
// steady regime, from which the decay rate and the O(D) floor are measured.
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto sizes = parse_int_list(flags.get("sizes", std::string()), {8, 16, 32, 64});
  const double settle = flags.get("settle", 900.0);

  print_header("E1 exp_global_skew",
               "Theorem 5.6: growth rate <= 2*rho; recovery rate >= mu(1-rho)-2rho; "
               "steady-state G = O(D)");

  Table table("Theorem 5.6 — global skew vs. network extent (line, worst-case drift)");
  table.headers({"n", "D^ bound", "G steady", "G/D^", "growth<=2rho", "decay rate",
                 "guarantee", "decay ok"});

  std::vector<double> xs;
  std::vector<double> ys;
  for (int n : sizes) {
    auto cfg = fast_line_config(n);
    cfg.name = "global-skew-n" + std::to_string(n);
    Scenario s(cfg);
    s.start();
    const double d_bound = estimate_dynamic_diameter(s.engine());
    cfg.aopt.gtilde_static = std::max(cfg.aopt.gtilde_static, 4.0 * d_bound);

    // Phase 1 (growth): from the synchronized start, G may only grow at 2rho.
    double worst_growth = 0.0;
    double prev_g = 0.0;
    Time prev_t = 0.0;
    for (int step = 1; step <= 20; ++step) {
      s.run_until(step * 5.0);
      const double g = s.engine().true_global_skew();
      worst_growth = std::max(worst_growth, (g - prev_g) / (s.sim().now() - prev_t));
      prev_g = g;
      prev_t = s.sim().now();
    }

    // Phase 2 (decay): scatter clocks linearly up to 2*D^ end-to-end.
    const double scatter = 2.0 * d_bound;
    const double base = s.engine().logical(0);
    for (NodeId u = 0; u < n; ++u) {
      s.engine().corrupt_logical(
          u, base + scatter * static_cast<double>(u) / (n - 1));
    }
    const double g0 = s.engine().true_global_skew();
    const Time t0 = s.sim().now();
    const Duration window = 0.25 * (g0 - d_bound) /
                            (cfg.aopt.mu * (1.0 - cfg.aopt.rho) - 2.0 * cfg.aopt.rho);
    s.run_until(t0 + window);
    const double g1 = s.engine().true_global_skew();
    const double decay_rate = (g0 - g1) / window;
    const double guarantee =
        cfg.aopt.mu * (1.0 - cfg.aopt.rho) - 2.0 * cfg.aopt.rho;

    // Phase 3 (steady): settle and measure the O(D) floor.
    s.run_until(t0 + window + settle);
    RunningStats steady;
    for (int step = 0; step < 40; ++step) {
      s.run_for(5.0);
      steady.add(s.engine().true_global_skew());
    }

    table.row()
        .cell(n)
        .cell(d_bound)
        .cell(steady.mean())
        .cell(steady.mean() / d_bound)
        .cell(worst_growth <= 2.0 * cfg.aopt.rho + 1e-6)
        .cell(decay_rate)
        .cell(guarantee)
        .cell(decay_rate >= 0.9 * guarantee);
    xs.push_back(n);
    ys.push_back(steady.mean());
  }
  table.print();

  const auto fit = fit_linear(xs, ys);
  std::cout << "steady G(n) linear fit: G = " << format_double(fit.intercept)
            << " + " << format_double(fit.slope) << " * n   (r2 = "
            << format_double(fit.r2, 3) << ")\n"
            << "paper: G = Theta(D) -> expect r2 close to 1 with positive slope\n";
  return 0;
}
