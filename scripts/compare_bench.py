#!/usr/bin/env python3
"""Compare two Google Benchmark JSON files.

Prints a per-benchmark table of before/after times and the speedup ratio
(before / after: > 1 means the second file is faster). Optionally enforces
regression gates: with one or more --check NAME arguments, the script exits
nonzero if any named benchmark's after-time exceeds its before-time by more
than --max-regression (a ratio, default 1.10 = 10% slower). --check-prefix
gates every benchmark whose canonical name starts with the given prefix
(aggregate `_mean` rows are folded into the canonical name first, so a
repetitions run gates on its means).

With --allow-regression, gate failures are still reported but the exit code
stays 0 — the escape hatch CI uses when a PR carries the `allow-regression`
label (see README "Performance").

Usage:
  scripts/compare_bench.py BEFORE.json AFTER.json
  scripts/compare_bench.py BEFORE.json AFTER.json \
      --check BM_ScenarioSimulation/1024 --max-regression 1.10
  scripts/compare_bench.py BEFORE.json AFTER.json \
      --check-prefix BM_ScenarioSimulation --max-regression 1.15
  scripts/compare_bench.py BEFORE.json AFTER.json --report-out compare.txt

A benchmark present in only one of the two files is an error: each such
name is reported with its own "only in before/after" message and the exit
code is nonzero (previously these rows were listed and silently skipped,
so a renamed or deleted benchmark could drift past the comparison). Pass
--ignore-unmatched to restore the old listing-only behavior (e.g. when a
PR intentionally adds benchmarks that the committed baseline predates);
--allow-regression keeps reporting mismatches but exits 0. A prefix
matching nothing in the *before* file still fails the gate, so a renamed
benchmark cannot silently un-gate itself. Missing or malformed JSON files
are reported as one-line errors, not stack traces.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str, metric: str) -> dict[str, float]:
    """Map benchmark name -> time (in nanoseconds) from one JSON file.

    Plain iteration rows are preferred; files recorded with
    --benchmark_report_aggregates_only carry only aggregate rows, so the
    `_mean` aggregates (stripped back to the canonical name) fill the gaps.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as err:
        raise SystemExit(f"{path}: cannot read benchmark file: {err.strerror or err}")
    except json.JSONDecodeError as err:
        raise SystemExit(f"{path}: not valid benchmark JSON: {err}")
    if not isinstance(data, dict) or "benchmarks" not in data:
        raise SystemExit(f"{path}: no 'benchmarks' array (not a Google Benchmark JSON?)")
    plain: dict[str, float] = {}
    means: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench["name"]
        value = float(bench[metric])
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            raise SystemExit(f"{path}: unknown time_unit {unit!r} for {name}")
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "mean" and name.endswith("_mean"):
                means[name[: -len("_mean")]] = value * scale
        else:
            plain[name] = value * scale
    return means | plain  # plain rows win when both exist


def format_ns(ns: float) -> str:
    for limit, unit in ((1e9, "s"), (1e6, "ms"), (1e3, "us")):
        if ns >= limit:
            return f"{ns / limit:.3g} {unit}"
    return f"{ns:.3g} ns"


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("before", help="baseline benchmark JSON")
    parser.add_argument("after", help="candidate benchmark JSON")
    parser.add_argument(
        "--metric",
        default="real_time",
        choices=["real_time", "cpu_time"],
        help="which per-iteration time to compare (default: real_time)",
    )
    parser.add_argument(
        "--check",
        action="append",
        default=[],
        metavar="NAME",
        help="benchmark name that must not regress (repeatable); "
        "an unknown name fails the gate",
    )
    parser.add_argument(
        "--check-prefix",
        action="append",
        default=[],
        metavar="PREFIX",
        help="gate every benchmark whose name starts with PREFIX "
        "(repeatable); a prefix matching nothing fails the gate",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.10,
        metavar="RATIO",
        help="fail a checked benchmark when after > before * RATIO "
        "(default 1.10)",
    )
    parser.add_argument(
        "--allow-regression",
        action="store_true",
        help="report gate failures but exit 0 (CI escape hatch, see README)",
    )
    parser.add_argument(
        "--ignore-unmatched",
        action="store_true",
        help="benchmarks present in only one file are listed instead of "
        "failing (use when a PR intentionally adds or removes benchmarks)",
    )
    parser.add_argument(
        "--report-out",
        metavar="FILE",
        help="also write the comparison table to FILE",
    )
    args = parser.parse_args()

    before = load_benchmarks(args.before, args.metric)
    after = load_benchmarks(args.after, args.metric)

    names = sorted(before.keys() | after.keys())
    width = max((len(n) for n in names), default=4)
    lines = [
        f"# {args.metric}: {args.before} -> {args.after}",
        f"{'benchmark':<{width}}  {'before':>10}  {'after':>10}  {'speedup':>8}",
    ]
    for name in names:
        b, a = before.get(name), after.get(name)
        if b is None or a is None:
            side = "after only" if b is None else "before only"
            lines.append(f"{name:<{width}}  {'--':>10}  {'--':>10}  [{side}]")
            continue
        ratio = b / a if a > 0 else float("inf")
        lines.append(
            f"{name:<{width}}  {format_ns(b):>10}  {format_ns(a):>10}  {ratio:>7.2f}x"
        )

    checks = list(args.check)
    failures = []
    unmatched = sorted(before.keys() ^ after.keys())
    if unmatched and not args.ignore_unmatched:
        for name in unmatched:
            side = "before" if name in before else "after"
            failures.append(
                f"{name}: only in the {side} file "
                f"({args.before if side == 'before' else args.after}) — "
                "renamed/added/deleted benchmark? Re-record the baseline or "
                "pass --ignore-unmatched"
            )
    for prefix in args.check_prefix:
        expanded = sorted(n for n in before if n.startswith(prefix))
        if not expanded:
            failures.append(f"--check-prefix {prefix}: matches nothing in the before file")
        checks.extend(n for n in expanded if n not in checks)
    for name in checks:
        b, a = before.get(name), after.get(name)
        if b is None or a is None:
            failures.append(f"{name}: missing from {'before' if b is None else 'after'} file")
            continue
        if a > b * args.max_regression:
            failures.append(
                f"{name}: {format_ns(a)} vs {format_ns(b)} baseline "
                f"({a / b:.2f}x > allowed {args.max_regression:.2f}x)"
            )
    if failures:
        lines.append("")
        lines.append("FAILURES:")
        lines.extend(f"  {f}" for f in failures)
        if args.allow_regression:
            lines.append("(--allow-regression: reported only, not failing the job)")
    elif checks:
        lines.append("")
        lines.append(f"All {len(checks)} checked benchmark(s) within bounds.")

    report = "\n".join(lines)
    print(report)
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    return 1 if failures and not args.allow_regression else 0


if __name__ == "__main__":
    sys.exit(main())
