#include "clock/drift.h"

#include <algorithm>
#include <cmath>

namespace gcs {

namespace {
void check_rho(double rho) {
  require(rho >= 0.0 && rho < 1.0, "drift: rho must be in [0,1)");
}
}  // namespace

// ---------------------------------------------------------------- Constant

ConstantDrift::ConstantDrift(double rho, std::vector<double> offsets)
    : rho_(rho), offsets_(std::move(offsets)) {
  check_rho(rho);
  for (double off : offsets_) {
    require(std::fabs(off) <= rho_ + 1e-15, "ConstantDrift: |offset| > rho");
  }
}

ConstantDrift::ConstantDrift(double rho, double offset, int n)
    : ConstantDrift(rho, std::vector<double>(static_cast<std::size_t>(n), offset)) {}

double ConstantDrift::rate_at(NodeId u, Time) {
  return 1.0 + offsets_.at(static_cast<std::size_t>(u));
}

// ------------------------------------------------------------ LinearSpread

LinearSpreadDrift::LinearSpreadDrift(double rho, int n) : rho_(rho), n_(n) {
  check_rho(rho);
  require(n >= 1, "LinearSpreadDrift: need n >= 1");
}

double LinearSpreadDrift::rate_at(NodeId u, Time) {
  if (n_ == 1) return 1.0;
  const double frac = static_cast<double>(u) / static_cast<double>(n_ - 1);
  return 1.0 - rho_ + 2.0 * rho_ * frac;
}

// ------------------------------------------------------- AlternatingBlocks

AlternatingBlocksDrift::AlternatingBlocksDrift(double rho, int n, int blocks,
                                               Duration period)
    : rho_(rho), n_(n), blocks_(blocks), period_(period) {
  check_rho(rho);
  require(n >= 1 && blocks >= 1 && period > 0.0,
          "AlternatingBlocksDrift: bad arguments");
}

double AlternatingBlocksDrift::rate_at(NodeId u, Time t) {
  const int block = static_cast<int>(
      static_cast<long long>(u) * blocks_ / std::max(1, n_));
  const auto phase = static_cast<long long>(std::floor(t / period_));
  const int sign = ((block + static_cast<int>(phase & 1)) % 2 == 0) ? 1 : -1;
  return 1.0 + rho_ * sign;
}

Time AlternatingBlocksDrift::next_change_after(NodeId, Time t) {
  const auto phase = std::floor(t / period_);
  Time next = (phase + 1.0) * period_;
  if (next <= t) next = (phase + 2.0) * period_;
  return next;
}

// ------------------------------------------------------------- RandomWalk

RandomWalkDrift::RandomWalkDrift(double rho, int n, Duration step_period,
                                 double step_std, std::uint64_t seed)
    : rho_(rho), n_(n), step_period_(step_period), step_std_(step_std) {
  check_rho(rho);
  require(n >= 1 && step_period > 0.0 && step_std >= 0.0,
          "RandomWalkDrift: bad arguments");
  Rng root(seed);
  node_rngs_.reserve(static_cast<std::size_t>(n));
  walks_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) node_rngs_.push_back(root.fork(static_cast<std::uint64_t>(i)));
}

double RandomWalkDrift::offset(NodeId u, std::size_t k) {
  auto& walk = walks_.at(static_cast<std::size_t>(u));
  auto& rng = node_rngs_.at(static_cast<std::size_t>(u));
  while (walk.size() <= k) {
    const double prev = walk.empty() ? 0.0 : walk.back();
    const double next = std::clamp(prev + rng.normal(0.0, step_std_), -rho_, rho_);
    walk.push_back(next);
  }
  return walk[k];
}

double RandomWalkDrift::rate_at(NodeId u, Time t) {
  const auto k = static_cast<std::size_t>(std::max(0.0, std::floor(t / step_period_)));
  return 1.0 + offset(u, k);
}

Time RandomWalkDrift::next_change_after(NodeId, Time t) {
  const auto k = std::floor(std::max(0.0, t) / step_period_);
  Time next = (k + 1.0) * step_period_;
  if (next <= t) next = (k + 2.0) * step_period_;
  return next;
}

// ------------------------------------------- ConstantDriftOscillator (INET)

ConstantDriftOscillator::ConstantDriftOscillator(double rho, int n,
                                                 std::vector<double> ppm)
    : rho_(rho), n_(n), ppm_(std::move(ppm)) {
  check_rho(rho);
  require(n >= 1, "ConstantDriftOscillator: need n >= 1");
  require(!ppm_.empty(), "ConstantDriftOscillator: need at least one ppm value");
  for (double p : ppm_) {
    require(std::fabs(p) * 1e-6 <= rho_ + 1e-15,
            "ConstantDriftOscillator: |ppm|*1e-6 > rho");
  }
}

double ConstantDriftOscillator::rate_at(NodeId u, Time) {
  return 1.0 + ppm_[static_cast<std::size_t>(u) % ppm_.size()] * 1e-6;
}

// --------------------------------------------- RandomDriftOscillator (INET)

RandomDriftOscillator::RandomDriftOscillator(double rho, int n, Duration interval,
                                             double change_ppm, double limit_ppm,
                                             std::uint64_t seed)
    : rho_(rho),
      n_(n),
      interval_(interval),
      change_ppm_(change_ppm),
      limit_ppm_(limit_ppm) {
  check_rho(rho);
  require(n >= 1 && interval > 0.0 && change_ppm >= 0.0 && limit_ppm >= 0.0,
          "RandomDriftOscillator: bad arguments");
  require(limit_ppm * 1e-6 <= rho_ + 1e-15,
          "RandomDriftOscillator: limit_ppm*1e-6 > rho");
  Rng root(seed);
  node_rngs_.reserve(static_cast<std::size_t>(n));
  walks_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    node_rngs_.push_back(root.fork(static_cast<std::uint64_t>(i)));
  }
}

double RandomDriftOscillator::offset_ppm(NodeId u, std::size_t k) {
  auto& walk = walks_.at(static_cast<std::size_t>(u));
  auto& rng = node_rngs_.at(static_cast<std::size_t>(u));
  if (walk.empty()) walk.push_back(0.0);  // the walk starts at zero offset
  while (walk.size() <= k) {
    const double step = rng.uniform(-change_ppm_, change_ppm_);
    walk.push_back(std::clamp(walk.back() + step, -limit_ppm_, limit_ppm_));
  }
  return walk[k];
}

double RandomDriftOscillator::rate_at(NodeId u, Time t) {
  const auto k = static_cast<std::size_t>(std::max(0.0, std::floor(t / interval_)));
  return 1.0 + offset_ppm(u, k) * 1e-6;
}

Time RandomDriftOscillator::next_change_after(NodeId, Time t) {
  const auto k = std::floor(std::max(0.0, t) / interval_);
  Time next = (k + 1.0) * interval_;
  if (next <= t) next = (k + 2.0) * interval_;
  return next;
}

// ------------------------------------------------------------- Sinusoidal

SinusoidalDrift::SinusoidalDrift(double rho, int n, Duration period, int steps)
    : rho_(rho), n_(n), period_(period), steps_(steps) {
  check_rho(rho);
  require(n >= 1 && period > 0.0 && steps >= 4, "SinusoidalDrift: bad arguments");
}

double SinusoidalDrift::rate_at(NodeId u, Time t) {
  // Evaluate at the midpoint of the current discretization segment so the
  // piecewise-constant value is centered on the true sinusoid.
  const double seg = period_ / static_cast<double>(steps_);
  const double mid = (std::floor(t / seg) + 0.5) * seg;
  const double phase = 2.0 * M_PI * static_cast<double>(u) / static_cast<double>(n_);
  return 1.0 + rho_ * std::sin(2.0 * M_PI * mid / period_ + phase);
}

Time SinusoidalDrift::next_change_after(NodeId, Time t) {
  const double seg = period_ / static_cast<double>(steps_);
  Time next = (std::floor(t / seg) + 1.0) * seg;
  if (next <= t) next += seg;
  return next;
}

// ---------------------------------------------------------- ReferenceNode

ReferenceNodeDrift::ReferenceNodeDrift(std::unique_ptr<DriftModel> inner,
                                       NodeId reference)
    : inner_(std::move(inner)), reference_(reference) {
  require(inner_ != nullptr, "ReferenceNodeDrift: null inner model");
  require(reference >= 0, "ReferenceNodeDrift: bad reference node");
}

double ReferenceNodeDrift::boost() const {
  const double rho = inner_->rho();
  return (1.0 + rho) / (1.0 - rho);
}

double ReferenceNodeDrift::rate_at(NodeId u, Time t) {
  const double rate = inner_->rate_at(u, t);
  return u == reference_ ? rate * boost() : rate;
}

Time ReferenceNodeDrift::next_change_after(NodeId u, Time t) {
  return inner_->next_change_after(u, t);
}

double ReferenceNodeDrift::rho() const {
  // rho~ <= (1+rho)^2/(1-rho) - 1, per the §3 remark.
  const double rho = inner_->rho();
  return (1.0 + rho) * (1.0 + rho) / (1.0 - rho) - 1.0;
}

// --------------------------------------------------------------- Scripted

void ScriptedDrift::add(NodeId u, Time at, double rate) {
  require(std::fabs(rate - 1.0) <= rho_ + 1e-15, "ScriptedDrift: |rate-1| > rho");
  auto& vec = script_[u];
  require(vec.empty() || vec.back().first < at,
          "ScriptedDrift: breakpoints must be strictly increasing");
  vec.emplace_back(at, rate);
}

double ScriptedDrift::rate_at(NodeId u, Time t) {
  const auto it = script_.find(u);
  if (it == script_.end()) return 1.0;
  const auto& vec = it->second;
  // Last breakpoint with time <= t.
  auto pos = std::upper_bound(vec.begin(), vec.end(), t,
                              [](Time value, const auto& bp) { return value < bp.first; });
  if (pos == vec.begin()) return 1.0;
  return std::prev(pos)->second;
}

Time ScriptedDrift::next_change_after(NodeId u, Time t) {
  const auto it = script_.find(u);
  if (it == script_.end()) return kTimeInf;
  const auto& vec = it->second;
  auto pos = std::upper_bound(vec.begin(), vec.end(), t,
                              [](Time value, const auto& bp) { return value < bp.first; });
  return pos == vec.end() ? kTimeInf : pos->first;
}

// --------------------------------------------------------------------------
// Registration.

namespace {

void register_builtin_drift_models(Registry<DriftFactory>& r) {
  using E = Registry<DriftFactory>::Entry;
  r.add(E{"none",
          "all rates exactly 1 + offset",
          {{"offset", "0", "constant rate offset, |offset| <= rho"}},
          [](const ParamMap& p, const DriftArgs& a) -> std::unique_ptr<DriftModel> {
            return std::make_unique<ConstantDrift>(a.rho, p.get_double("offset", 0.0),
                                                   a.n);
          }});
  r.add(E{"spread", "maximally divergent constant rates (worst case for global skew)",
          {},
          [](const ParamMap&, const DriftArgs& a) -> std::unique_ptr<DriftModel> {
            return std::make_unique<LinearSpreadDrift>(a.rho, a.n);
          }});
  r.add(E{"blocks",
          "block-sign drift flipping every period (gradient stressor)",
          {{"period", "200", "sign-flip period"},
           {"blocks", "2", "number of contiguous index blocks"}},
          [](const ParamMap& p, const DriftArgs& a) -> std::unique_ptr<DriftModel> {
            return std::make_unique<AlternatingBlocksDrift>(
                a.rho, a.n, p.get_int("blocks", 2), p.get_double("period", 200.0));
          }});
  r.add(E{"walk",
          "bounded random walk of per-node offsets",
          {{"period", "10", "step period"},
           {"std", "0", "step standard deviation (0 = rho/4)"}},
          [](const ParamMap& p, const DriftArgs& a) -> std::unique_ptr<DriftModel> {
            const double std_dev = p.get_double("std", 0.0);
            return std::make_unique<RandomWalkDrift>(
                a.rho, a.n, p.get_double("period", 10.0),
                std_dev > 0.0 ? std_dev : a.rho / 4.0, a.seed ^ 0xd21fULL);
          }});
  r.add(E{"osc-const",
          "INET-style constant-drift oscillator: per-node ppm offsets (cycled)",
          {{"ppm", "100", "'/'-separated ppm list, e.g. 100/-200/50 (nodes cycle "
                          "through it); |ppm|*1e-6 <= rho"}},
          [](const ParamMap& p, const DriftArgs& a) -> std::unique_ptr<DriftModel> {
            std::vector<double> ppm;
            std::string text = p.get_str("ppm", "100");
            std::size_t start = 0;
            while (start <= text.size()) {
              const std::size_t slash = text.find('/', start);
              const std::string item =
                  text.substr(start, slash == std::string::npos ? std::string::npos
                                                                : slash - start);
              ppm.push_back(parse_strict_double("param 'ppm'", item));
              if (slash == std::string::npos) break;
              start = slash + 1;
            }
            return std::make_unique<ConstantDriftOscillator>(a.rho, a.n,
                                                             std::move(ppm));
          }});
  r.add(E{"osc-random",
          "INET-style random-drift oscillator: bounded uniform walk of the ppm rate",
          {{"interval", "10", "time between drift-rate changes"},
           {"change", "25", "max |ppm| change per interval (uniform draw)"},
           {"limit", "0", "drift-rate clamp in ppm (0 = rho*1e6)"}},
          [](const ParamMap& p, const DriftArgs& a) -> std::unique_ptr<DriftModel> {
            const double limit = p.get_double("limit", 0.0);
            return std::make_unique<RandomDriftOscillator>(
                a.rho, a.n, p.get_double("interval", 10.0),
                p.get_double("change", 25.0),
                limit > 0.0 ? limit : a.rho * 1e6, a.seed ^ 0x05c1ULL);
          }});
  r.add(E{"sine",
          "temperature-cycle style oscillation with per-node phase",
          {{"period", "400", "oscillation period"},
           {"steps", "32", "piecewise-constant segments per period"}},
          [](const ParamMap& p, const DriftArgs& a) -> std::unique_ptr<DriftModel> {
            return std::make_unique<SinusoidalDrift>(a.rho, a.n,
                                                     p.get_double("period", 400.0),
                                                     p.get_int("steps", 32));
          }});
}

}  // namespace

Registry<DriftFactory>& drift_registry() {
  static Registry<DriftFactory>* registry = [] {
    auto* r = new Registry<DriftFactory>("drift model");
    register_builtin_drift_models(*r);
    return r;
  }();
  return *registry;
}

}  // namespace gcs
