// Runtime subsystem tests: SPSC ring, wire codec, time sources, pipe fault
// injection, and live AOPT clusters (lockstep-deterministic) including
// re-convergence under drop/duplicate/reorder faults. Also covers the RTT
// estimate source in plain simulation mode (registry-selected).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "estimate/rtt_estimate.h"
#include "metrics/skew.h"
#include "rt/rt_cluster.h"
#include "rt/rt_node.h"
#include "rt/rt_transport.h"
#include "rt/spsc_ring.h"
#include "rt/time_source.h"
#include "rt/wire.h"
#include "runner/scenario.h"

using namespace gcs;

namespace {

// ----------------------------------------------------------------- spsc ring

TEST(SpscRing, FifoAndCapacity) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.size_approx(), 0u);
  int out = 0;
  EXPECT_FALSE(ring.pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99)) << "full ring must refuse";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));
  // Wrap-around: cursors are monotone, the mask does the indexing.
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.push(round));
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(SpscRing, RejectsNonPowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(3), std::runtime_error);
  EXPECT_THROW(SpscRing<int>(1), std::runtime_error);
  EXPECT_NO_THROW(SpscRing<int>(2));
}

TEST(SpscRing, CrossThreadOrderPreserved) {
  SpscRing<int> ring(64);
  constexpr int kCount = 20000;
  std::vector<int> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    int v = 0;
    while (static_cast<int>(received.size()) < kCount) {
      if (ring.pop(v)) received.push_back(v);
    }
  });
  for (int i = 0; i < kCount;) {
    if (ring.push(i)) ++i;
  }
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

// ---------------------------------------------------------------- wire codec

WireMsg roundtrip(const WireMsg& in) {
  std::uint8_t buf[kWireMax];
  const std::size_t len = wire_encode(in, buf);
  EXPECT_LE(len, kWireMax);
  WireMsg out;
  EXPECT_TRUE(wire_decode(buf, len, out));
  return out;
}

TEST(Wire, RoundTripsEveryPayload) {
  WireMsg m;
  m.from = 3;
  m.to = 7;
  m.sent_at = 12.5;

  m.payload = Beacon{1.25, 2.5, 0.75};
  WireMsg b = roundtrip(m);
  EXPECT_EQ(b.from, 3);
  EXPECT_EQ(b.to, 7);
  EXPECT_DOUBLE_EQ(b.sent_at, 12.5);
  ASSERT_TRUE(std::holds_alternative<Beacon>(b.payload));
  EXPECT_DOUBLE_EQ(std::get<Beacon>(b.payload).logical, 1.25);
  EXPECT_DOUBLE_EQ(std::get<Beacon>(b.payload).max_estimate, 2.5);
  EXPECT_DOUBLE_EQ(std::get<Beacon>(b.payload).min_estimate, 0.75);

  m.payload = InsertEdgeMsg{9.0, 42.0};
  WireMsg ins = roundtrip(m);
  ASSERT_TRUE(std::holds_alternative<InsertEdgeMsg>(ins.payload));
  EXPECT_DOUBLE_EQ(std::get<InsertEdgeMsg>(ins.payload).l_ins, 9.0);
  EXPECT_DOUBLE_EQ(std::get<InsertEdgeMsg>(ins.payload).gtilde, 42.0);

  m.payload = TimeRequest{77u, 3.25};
  WireMsg req = roundtrip(m);
  ASSERT_TRUE(std::holds_alternative<TimeRequest>(req.payload));
  EXPECT_EQ(std::get<TimeRequest>(req.payload).id, 77u);
  EXPECT_DOUBLE_EQ(std::get<TimeRequest>(req.payload).sender_hw, 3.25);

  m.payload = TimeResponse{77u, 3.25, 4.5};
  WireMsg resp = roundtrip(m);
  ASSERT_TRUE(std::holds_alternative<TimeResponse>(resp.payload));
  EXPECT_EQ(std::get<TimeResponse>(resp.payload).id, 77u);
  EXPECT_DOUBLE_EQ(std::get<TimeResponse>(resp.payload).echo_hw, 3.25);
  EXPECT_DOUBLE_EQ(std::get<TimeResponse>(resp.payload).remote_logical, 4.5);
}

TEST(Wire, DeliverAtNeverOnTheWire) {
  WireMsg m;
  m.from = 0;
  m.to = 1;
  m.deliver_at = 99.0;  // pipe-local fault state
  m.payload = Beacon{};
  WireMsg out = roundtrip(m);
  EXPECT_DOUBLE_EQ(out.deliver_at, 0.0);
}

TEST(Wire, RejectsMalformedFrames) {
  WireMsg m;
  m.from = 1;
  m.to = 2;
  m.payload = Beacon{1.0, 2.0, 3.0};
  std::uint8_t buf[kWireMax];
  const std::size_t len = wire_encode(m, buf);

  WireMsg out;
  EXPECT_FALSE(wire_decode(buf, len - 1, out)) << "truncated";
  EXPECT_FALSE(wire_decode(buf, 3, out)) << "shorter than header";

  std::uint8_t bad[kWireMax];
  std::copy(buf, buf + len, bad);
  bad[2] = 0xFF;  // version
  EXPECT_FALSE(wire_decode(bad, len, out));
  std::copy(buf, buf + len, bad);
  bad[3] = 9;  // tag
  EXPECT_FALSE(wire_decode(bad, len, out));
  std::copy(buf, buf + len, bad);
  bad[0] = static_cast<std::uint8_t>(bad[0] + 1);  // length prefix mismatch
  EXPECT_FALSE(wire_decode(bad, len, out));
}

// -------------------------------------------------------------- time sources

TEST(TimeSourceSuite, SimClockReadsKernelAndRefusesToSleep) {
  Simulator sim;
  SimClock clock(sim);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  EXPECT_NO_THROW(clock.sleep_until(5.0));
  EXPECT_THROW(clock.sleep_until(6.0), std::runtime_error);
}

TEST(TimeSourceSuite, ScaledClockScalesFromOrigin) {
  VirtualClock inner;
  inner.advance_to(100.0);
  ScaledClock scaled(inner, 10.0);  // origin captured at 100
  EXPECT_DOUBLE_EQ(scaled.now(), 0.0);
  inner.advance(2.0);
  EXPECT_DOUBLE_EQ(scaled.now(), 20.0);

  ScaledClock anchored(inner, 2.0, 100.0);  // explicit origin
  EXPECT_DOUBLE_EQ(anchored.now(), 4.0);
}

TEST(TimeSourceSuite, VirtualClockWakesSleepers) {
  VirtualClock clock;
  EXPECT_THROW(clock.advance_to(-1.0), std::runtime_error);
  std::thread sleeper([&] { clock.sleep_until(3.0); });
  clock.advance_to(1.0);
  clock.advance(2.0);
  sleeper.join();
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(TimeSourceSuite, MonotonicClockAdvances) {
  MonotonicClock clock;
  const Time a = clock.now();
  const Time b = clock.now();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0.0);
}

// ------------------------------------------------------------------ pipe hub

WireMsg beacon_msg(NodeId from, NodeId to, double tag) {
  WireMsg m;
  m.from = from;
  m.to = to;
  m.sent_at = tag;
  m.payload = Beacon{tag, tag, tag};
  return m;
}

TEST(PipeHub, DeliversInOrderWithoutFaults) {
  VirtualClock clock;
  PipeHub hub(2, clock);
  for (int i = 0; i < 5; ++i) hub.send(beacon_msg(0, 1, i));
  WireMsg out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(hub.poll(1, out));
    EXPECT_DOUBLE_EQ(out.sent_at, i);
  }
  EXPECT_FALSE(hub.poll(1, out));
  EXPECT_EQ(hub.sent(), 5u);
  EXPECT_EQ(hub.dropped(), 0u);
}

TEST(PipeHub, FaultsAreSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    VirtualClock clock;
    FaultSpec faults;
    faults.drop = 0.3;
    faults.dup = 0.2;
    faults.reorder = 0.3;
    faults.delay = 1.0;
    faults.seed = seed;
    PipeHub hub(2, clock, faults);
    for (int i = 0; i < 200; ++i) hub.send(beacon_msg(0, 1, i));
    clock.advance_to(10.0);  // release every delayed copy
    std::vector<double> seen;
    WireMsg out;
    while (hub.poll(1, out)) seen.push_back(out.sent_at);
    return seen;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b) << "same seed, same interleaving -> same fault pattern";
  EXPECT_NE(a, c) << "different seed must differ";
  EXPECT_LT(a.size(), 220u);
  EXPECT_GT(a.size(), 120u);
}

TEST(PipeHub, ReorderHoldsBackUntilClockPasses) {
  VirtualClock clock;
  FaultSpec faults;
  faults.reorder = 1.0;  // every message delayed by uniform(0, delay]
  faults.delay = 5.0;
  PipeHub hub(2, clock, faults);
  hub.send(beacon_msg(0, 1, 1.0));
  WireMsg out;
  EXPECT_FALSE(hub.poll(1, out)) << "held back at t=0";
  clock.advance_to(5.0);
  EXPECT_TRUE(hub.poll(1, out));
  EXPECT_EQ(hub.delayed(), 1u);
}

TEST(PipeHub, DuplicateYieldsTwoCopies) {
  VirtualClock clock;
  FaultSpec faults;
  faults.dup = 1.0;
  PipeHub hub(2, clock, faults);
  hub.send(beacon_msg(0, 1, 1.0));
  WireMsg out;
  EXPECT_TRUE(hub.poll(1, out));
  EXPECT_TRUE(hub.poll(1, out));
  EXPECT_FALSE(hub.poll(1, out));
  EXPECT_EQ(hub.duplicated(), 1u);
}

// ----------------------------------------------- rt cluster (lockstep, pipe)

ScenarioSpec rt_spec(int n) {
  ScenarioSpec spec;
  spec.name = "rt-test";
  spec.n = n;
  spec.seed = 11;
  spec.topology = ComponentSpec(n >= 3 ? "ring" : "line");
  spec.drift = ComponentSpec("osc-const");
  spec.drift.params.set("ppm", "150/-200/80");
  spec.estimates = ComponentSpec("rtt");
  spec.edge_params.eps = 0.1;
  spec.edge_params.tau = 0.5;
  spec.edge_params.msg_delay_max = 0.6;
  spec.edge_params.msg_delay_min = 0.0;
  spec.gtilde_auto = true;
  return spec;
}

/// A lockstep cluster run: the clock must outlive the cluster, so both live
/// here together with the final logical clocks.
struct LockstepRun {
  std::unique_ptr<VirtualClock> clock = std::make_unique<VirtualClock>();
  std::unique_ptr<RtCluster> cluster;
  std::vector<ClockValue> logical;
};

LockstepRun run_lockstep_cluster(const ScenarioSpec& spec,
                                 const FaultSpec& faults, Time horizon) {
  LockstepRun run;
  run.cluster = std::make_unique<RtCluster>(spec, *run.clock, faults);
  run.cluster->start();
  run.cluster->schedule_samples(horizon, 1.0);
  run.cluster->run_lockstep(*run.clock, horizon, 0.25);
  for (NodeId u = 0; u < run.cluster->size(); ++u) {
    run.logical.push_back(run.cluster->node(u).logical());
  }
  return run;
}

TEST(RtCluster, ConvergesWithoutFaults) {
  LockstepRun run = run_lockstep_cluster(rt_spec(3), {}, 60.0);
  RtCluster* cluster = run.cluster.get();

  // Every replica kept running and stayed mutually synchronized.
  for (std::size_t u = 0; u < run.logical.size(); ++u) {
    EXPECT_GT(run.logical[u], 59.0) << "node " << u << " stalled";
  }
  // Estimates exist and are eps-accurate against the peer replica's true
  // logical clock (all replicas sit at the same model instant here).
  for (const EdgeKey& e : cluster->edges()) {
    Engine& engine = cluster->node(e.a).engine();
    const double eps = engine.edge_eps(e);
    const auto est = cluster->node(e.a).scenario().estimate_of(e.a, e.b);
    ASSERT_TRUE(est.has_value()) << "no estimate on " << e.str();
    const double err = std::abs(*est - cluster->node(e.b).logical());
    EXPECT_LE(err, eps) << "estimate error on " << e.str();
  }
  // Skew within the derived gradient bound on every post-warmup sample.
  for (const RtEdgeReport& r : cluster->edge_report(10)) {
    EXPECT_GT(r.samples, 0);
    EXPECT_LE(r.max_abs_skew, r.bound) << "edge " << r.edge.str();
  }
}

TEST(RtCluster, ReconvergesUnderDropDuplicateReorder) {
  FaultSpec faults;
  faults.drop = 0.3;
  faults.dup = 0.2;
  faults.reorder = 0.3;
  faults.delay = 0.5;
  faults.seed = 21;
  LockstepRun run = run_lockstep_cluster(rt_spec(3), faults, 60.0);
  RtCluster* cluster = run.cluster.get();

  EXPECT_GT(cluster->hub().dropped(), 0u);
  EXPECT_GT(cluster->hub().duplicated(), 0u);
  EXPECT_GT(cluster->hub().delayed(), 0u);
  for (std::size_t u = 0; u < run.logical.size(); ++u) {
    EXPECT_GT(run.logical[u], 59.0) << "node " << u << " stalled under faults";
  }
  for (const RtEdgeReport& r : cluster->edge_report(20)) {
    EXPECT_GT(r.samples, 0);
    EXPECT_LE(r.max_abs_skew, r.bound)
        << "edge " << r.edge.str() << " violated its bound under faults";
  }
}

TEST(RtCluster, LockstepRunsAreBitDeterministic) {
  FaultSpec faults;
  faults.drop = 0.25;
  faults.dup = 0.15;
  faults.reorder = 0.25;
  faults.delay = 0.5;
  faults.seed = 5;
  const auto a = run_lockstep_cluster(rt_spec(3), faults, 30.0).logical;
  const auto b = run_lockstep_cluster(rt_spec(3), faults, 30.0).logical;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u], b[u]) << "node " << u << " diverged across identical runs";
  }
}

TEST(RtNode, RejectsFramesFromUnknownPeers) {
  VirtualClock clock;
  PipeHub hub(4, clock);
  RtNode node(rt_spec(4), 0, hub, clock);
  node.start();
  // In the 4-ring, 0's neighbors are 1 and 3 — but NOT 2. A frame from a
  // non-neighbor must be dropped at injection (paper §3.1 delivery rule).
  hub.send(beacon_msg(1, 0, 1.0));
  hub.send(beacon_msg(2, 0, 2.0));
  hub.send(beacon_msg(3, 0, 3.0));
  clock.advance_to(0.25);
  node.pump();
  EXPECT_EQ(node.ingress_count(), 2u);
  EXPECT_EQ(node.rejected_count(), 1u);
}

// ------------------------------------------------- rtt estimates (sim mode)

TEST(RttEstimate, ConvergesInSimulationMode) {
  ScenarioSpec spec;
  spec.n = 4;
  spec.seed = 3;
  spec.topology = ComponentSpec("ring");
  spec.drift = ComponentSpec("spread");
  spec.estimates = ComponentSpec::parse("rtt:probe=0.5,window=4");
  spec.edge_params = default_edge_params();
  spec.gtilde_auto = true;
  Scenario scenario(spec);
  scenario.start();
  scenario.run_until(30.0);

  for (const EdgeKey& e : scenario.initial_edges()) {
    const double eps = scenario.engine().edge_eps(e);
    const auto est = scenario.estimate_of(e.a, e.b);
    ASSERT_TRUE(est.has_value()) << "no estimate on " << e.str();
    const double err = std::abs(*est - scenario.engine().logical(e.b));
    EXPECT_LE(err, eps) << "edge " << e.str();
    const auto back = scenario.estimate_of(e.b, e.a);
    ASSERT_TRUE(back.has_value());
  }
}

TEST(RttEstimate, ProbePeriodDefaultsToBeaconPeriod) {
  ScenarioSpec spec;
  spec.n = 3;
  spec.seed = 3;
  spec.topology = ComponentSpec("ring");
  spec.estimates = ComponentSpec("rtt");
  spec.edge_params = default_edge_params();
  spec.engine.beacon_period = 0.4;
  spec.gtilde_auto = true;
  Scenario scenario(spec);
  scenario.start();
  scenario.run_until(5.0);
  // The engine scheduled probes (otherwise no estimate could ever form).
  ASSERT_TRUE(scenario.estimate_of(0, 1).has_value());
}

}  // namespace
