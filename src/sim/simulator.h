// Deterministic discrete-event simulation kernel.
//
// Events fire in non-decreasing time order; equal-time events fire in
// scheduling (FIFO) order, which makes every execution reproducible.
//
// The timer structure is a generation-tagged, index-tracked 4-ary min-heap:
// every pending event lives in a stable slot (reused through a free list and
// guarded against stale handles by a generation counter) and the heap keeps
// each slot's position up to date, so cancel and reschedule are true
// O(log n) operations with no hash lookups and no tombstones. Recurring
// engine events are typed records (sim/event.h) stored inline in the slot,
// so the steady-state schedule/fire/cancel cycle performs no allocation;
// closures remain available as an escape hatch.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event.h"
#include "util/common.h"

namespace gcs {

/// Opaque handle to a scheduled event; valid until it fires or is cancelled.
/// Packs (slot index, slot generation); never 0 for a live event.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now, tolerating tiny negative
  /// drift from floating-point arithmetic, which is clamped to now).
  EventId schedule_at(Time at, Callback fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule a typed event record (no allocation; one copy into the
  /// kernel's slot storage). Same time rules.
  EventId schedule_event_at(Time at, const SimEvent& ev);
  EventId schedule_event_after(Duration delay, const SimEvent& ev) {
    return schedule_event_at(now_ + delay, ev);
  }

  /// Cancel a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id);

  /// Move a pending event to a new time, keeping its payload and handle.
  /// The event is re-sequenced as if freshly scheduled (FIFO among equal
  /// times). Returns false if the event already fired/was cancelled.
  bool reschedule(EventId id, Time at);

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return resolve(id) != kNoSlot; }

  /// Fire the next event; returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or `t` is passed.
  /// Afterwards now() == max(now, t) (time advances to t even if idle).
  void run_until(Time t);

  /// Run until the queue is empty.
  void run();

  [[nodiscard]] std::size_t pending_count() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

 private:
  // Slot index width inside a heap key: up to ~1M concurrently pending
  // events; the remaining 44 bits of sequence number allow ~1.7e13 schedules
  // per Simulator lifetime (both bounds checked).
  static constexpr int kSlotBits = 20;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  /// 16 bytes: fire time plus (seq << kSlotBits | slot). The sequence is
  /// strictly increasing per schedule, so comparing keys realizes the FIFO
  /// tie-break among equal times and the slot bits never influence order.
  /// The time is stored as its raw bits — event times are always >= +0.0
  /// (clamp_time enforces this, normalizing -0.0), and non-negative doubles
  /// order identically to their bit patterns — so (time, seq) comparisons
  /// compile to a single 128-bit unsigned compare instead of two
  /// hard-to-predict branches (heap sifts are mispredict-bound).
  struct HeapEntry {
    std::uint64_t time_bits;
    std::uint64_t key;
    [[nodiscard]] Time time() const { return std::bit_cast<Time>(time_bits); }
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key & kSlotMask);
    }
  };
  /// Compact per-slot bookkeeping, separate from the fat event records so
  /// heap sifts touch only this 8-byte array.
  struct SlotMeta {
    std::uint32_t heap_pos = 0;
    std::uint32_t gen = 1;  ///< bumped on release; 0 is never a live gen
  };

#ifdef __SIZEOF_INT128__
  static unsigned __int128 order_key(const HeapEntry& e) {
    return (static_cast<unsigned __int128>(e.time_bits) << 64) | e.key;
  }
  static bool fires_before(const HeapEntry& a, const HeapEntry& b) {
    return order_key(a) < order_key(b);
  }
#else
  static bool fires_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
    return a.key < b.key;
  }
#endif
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return EventId{(static_cast<std::uint64_t>(gen) << 32) | slot};
  }

  /// Slot index for a live handle, or kNoSlot if stale/invalid.
  static constexpr std::uint32_t kNoSlot = ~0U;
  [[nodiscard]] std::uint32_t resolve(EventId id) const;

  [[nodiscard]] Time clamp_time(Time at) const;
  /// Index of the smallest child of `pos` in a heap of size n (pos must
  /// have at least one child). Shared by sift_down and pop_root so the
  /// selection logic cannot diverge.
  [[nodiscard]] std::size_t min_child(std::size_t pos, std::size_t n) const;
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void restore_heap(std::size_t pos);
  void remove_heap_entry(std::size_t pos);
  void pop_root();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::vector<HeapEntry> heap_;     ///< 4-ary min-heap by (time, key)
  std::vector<SlotMeta> meta_;      ///< parallel to events_
  std::vector<SimEvent> events_;    ///< stable event storage by slot
  std::vector<Callback> closures_;  ///< kClosure callbacks, same slot index
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace gcs
