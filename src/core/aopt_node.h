// AOPT — the paper's optimal dynamic gradient clock synchronization
// algorithm (§4): neighbor-set hierarchy with staged edge insertion
// (Listings 1 and 2), fast/slow mode triggers (Defs. 4.5/4.6), and the
// max-estimate fallback (Def. 4.7 / Listing 3).
//
// Besides the paper's insertion strategy (static eq. 10 and dynamic
// Lemma 7.1 durations), the class implements two ablation policies used by
// the experiments in §5.5: immediate insertion and weight-decay insertion.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/params.h"
#include "core/triggers.h"

namespace gcs {

class AoptNode final : public Algorithm {
 public:
  explicit AoptNode(AlgoParams params) : params_(params) {}

  [[nodiscard]] const char* name() const override { return "AOPT"; }

  void on_edge_discovered(NodeId peer) override;
  void on_edge_lost(NodeId peer) override;
  void on_insert_edge_msg(NodeId from, const InsertEdgeMsg& msg) override;
  void on_estimate_dirty(NodeId peer) override;
  void reevaluate() override;

  [[nodiscard]] bool edge_in_level(NodeId peer, int s) const override;
  [[nodiscard]] double edge_kappa(NodeId peer) const override;

  // ------------------------------------------------------- introspection

  struct PeerInfo {
    bool present = false;
    double t0 = kTimeInf;  ///< T₀ (logical); kTimeInf while not agreed
    double insertion_duration = 0.0;  ///< I_e
    double gtilde = 0.0;              ///< G̃ used for this insertion
    double kappa = 0.0;
    double delta = 0.0;
    /// Level-s insertion time T_s = T₀ + (1 − 2^{1−s})·I (s >= 1).
    [[nodiscard]] double insertion_time(int s) const;
    /// Logical time by which the edge is inserted on all levels.
    [[nodiscard]] double fully_inserted_at() const { return t0 + insertion_duration; }
  };
  [[nodiscard]] std::optional<PeerInfo> peer_info(NodeId peer) const;

  [[nodiscard]] long long mode_switches() const { return mode_switches_; }
  [[nodiscard]] bool last_fast_trigger() const { return last_decision_.fast; }
  [[nodiscard]] bool last_slow_trigger() const { return last_decision_.slow; }
  [[nodiscard]] const TriggerDecision& last_decision() const { return last_decision_; }

  /// True iff a Lemma 5.3 violation (both triggers at once) was ever seen.
  [[nodiscard]] bool saw_trigger_conflict() const { return saw_conflict_; }

 private:
  struct Peer {
    // Hot fields first: reevaluate walks these on every event.
    NodeId id = kNoNode;
    bool present = false;
    // Derived per-edge constants (κ_e, δ_e, ε_e, τ_e).
    double kappa = 0.0;
    double delta = 0.0;
    double eps = 0.0;
    double tau = 0.0;
    // Insertion agreement (Listing 2). T0 == kTimeInf means "⊥".
    double t0 = kTimeInf;
    double insertion_duration = 0.0;
    // ---- cold: handshake bookkeeping ----
    std::uint64_t gen = 0;  ///< bumped on every discovery/loss; guards callbacks
    Time discovered_at = 0.0;
    ClockValue discovered_logical = 0.0;
    double tmsg = 0.0;        ///< T_e (msg_delay_max)
    double gtilde = 0.0;
    double kappa_init = 0.0;  ///< weight-decay start value
  };

  /// Incremental re-evaluation state: a compact mirror of the *present*
  /// peers, parallel to a persistent LevelPeer staging array. reevaluate()
  /// runs after every event touching this node, so instead of re-deriving
  /// every input per scan, each input is refreshed only when its own
  /// invalidation condition fires:
  ///   - membership / handshake state (t0, I, per-edge constants): rebuild
  ///     on hot_dirty_, set by discovery, loss and insertion agreement;
  ///   - level_limit: recomputed only when the own logical clock crosses
  ///     level_next (the exact next T_s threshold), which reproduces the
  ///     full recomputation bit-for-bit because limits are piecewise
  ///     constant in own-logical time;
  ///   - beacon estimate snapshots: re-fetched only after on_estimate_dirty
  ///     (the engine's dirty-peer notification on beacon consumption);
  ///   - κ and the structural trigger aggregates: constant per edge except
  ///     under weight decay, which downgrades to per-scan recomputation.
  /// Estimates themselves are still *evaluated* every scan (they move
  /// continuously with the clocks), but through the inline fast paths
  /// (NodeApi::peer_true_logical + OracleEstimateSource::perturb, or the
  /// cached beacon snapshot), reading/drawing exactly what the virtual
  /// estimate path would.
  struct HotPeer {
    NodeId id = kNoNode;
    int peer_index = 0;            ///< into peers_ (stable since last rebuild)
    double level_next = kTimeInf;  ///< own-logical threshold to refresh level
    BeaconEstimateSource::Entry entry;  ///< cached beacon snapshot
    bool est_cached = false;       ///< snapshot valid (beacon mode only)
    bool has_entry = false;        ///< snapshot exists (beacon mode only)
  };
  /// level_limit plus the own-logical threshold at which the cached value
  /// must be recomputed (kTimeInf when only structure can change it).
  struct LevelState {
    int limit = 0;
    double next = kTimeInf;
  };

  [[nodiscard]] bool is_leader_of(NodeId peer) const { return api_->id() < peer; }
  /// The peer record for `id`, or nullptr if never seen. Peers live in a
  /// sorted flat vector: iteration order is then stdlib-independent (an
  /// unordered_map here makes oracle estimate draws — and so whole runs —
  /// depend on hash iteration order), and the per-reevaluate walk touches
  /// contiguous memory.
  [[nodiscard]] const Peer* find_peer(NodeId id) const;
  [[nodiscard]] Peer* find_peer(NodeId id) {
    return const_cast<Peer*>(std::as_const(*this).find_peer(id));
  }
  Peer& peer_slot(NodeId id);  ///< find-or-insert (sorted)
  void leader_check(NodeId peer, std::uint64_t gen);
  void follower_check(NodeId peer, std::uint64_t gen, InsertEdgeMsg msg);
  void compute_insertion_times(Peer& p, ClockValue l_ins, double gtilde);
  [[nodiscard]] LevelState level_state(const Peer& p, ClockValue own_logical) const;
  /// Largest level the peer currently belongs to (0 = discovery set only).
  [[nodiscard]] int level_limit(const Peer& p, ClockValue own_logical) const {
    if (!p.present) return -1;
    return level_state(p, own_logical).limit;
  }
  [[nodiscard]] double current_kappa(const Peer& p, ClockValue own_logical) const;
  /// Rebuild hot_/level_peers_ from the present peers (membership changed).
  void rebuild_hot(ClockValue own);
  /// Lemma 5.3 violation reporting, off the reevaluate hot path (the log
  /// machinery would otherwise bloat its stack frame).
  [[gnu::cold]] [[gnu::noinline]] void report_trigger_conflict();

  AlgoParams params_;
  std::vector<Peer> peers_;  ///< sorted by id; entries persist across edge loss
  std::vector<HotPeer> hot_;         ///< present peers, scan order (= id order)
  std::vector<LevelPeer> level_peers_;  ///< parallel to hot_
  TriggerAggregates agg_;            ///< cached structural fold over level_peers_
  bool hot_dirty_ = true;            ///< membership/handshake changed
  ClockValue last_own_ = -kTimeInf;  ///< guards against logical-clock regression
  TriggerDecision last_decision_;
  long long mode_switches_ = 0;
  bool saw_conflict_ = false;
};

}  // namespace gcs
