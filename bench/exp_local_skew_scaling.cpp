// E3 — local skew scales like Theta(log_sigma D), not Theta(D).
//   The paper's headline: while the *global* skew necessarily grows linearly
//   with the network extent (Theorem 5.6 is tight), the *local* skew bound
//   kappa*(log_sigma(Ghat/kappa)+O(1)) grows only logarithmically. We sweep
//   the line length and report measured steady global skew (linear in n),
//   measured worst local skew, and the theoretical local bound (log in n).
#include "exp_common.h"

#include <cmath>

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto sizes =
      parse_int_list(flags.get("sizes", std::string()), {8, 16, 32, 64});
  const double measure_time = flags.get("measure", 600.0);

  print_header("E3 exp_local_skew_scaling",
               "local skew = O(kappa log_sigma(D/kappa)) while global skew = Theta(D)");

  Table table("E3 — skew scaling with network size (line, worst-case constant drift)");
  table.headers({"n", "G steady (~D)", "local worst", "local bound",
                 "local/bound", "global/local"});

  std::vector<double> xs;
  std::vector<double> global_series;
  std::vector<double> local_series;
  for (int n : sizes) {
    auto cfg = fast_line_config(n);
    cfg.name = "local-skew-n" + std::to_string(n);
    Scenario s(cfg);
    s.start();
    const double ghat = cfg.aopt.gtilde_static;
    const double sigma = cfg.aopt.sigma();
    const double kappa = metric_kappa(s.engine(), EdgeKey(0, 1));

    // Drive the system into the steady regime: scatter to the diameter
    // bound, then let the gradient mechanism redistribute.
    const double d_bound = estimate_dynamic_diameter(s.engine());
    const double base = s.engine().logical(0);
    for (NodeId u = 0; u < n; ++u) {
      s.engine().corrupt_logical(
          u, base + 2.0 * d_bound * static_cast<double>(u) / (n - 1));
    }
    s.run_for(2.0 * ghat / cfg.aopt.mu);

    RunningStats global;
    double worst_local = 0.0;
    const Time measure_start = s.sim().now();
    while (s.sim().now() < measure_start + measure_time) {
      s.run_for(5.0);
      const auto snap = measure_skew(s.engine());
      global.add(snap.global);
      worst_local = std::max(worst_local, snap.worst_local);
    }

    const double local_bound = gradient_bound(kappa, ghat, sigma);
    table.row()
        .cell(n)
        .cell(global.mean())
        .cell(worst_local)
        .cell(local_bound)
        .cell(worst_local / local_bound)
        .cell(global.mean() / std::max(worst_local, 1e-9));
    xs.push_back(n);
    global_series.push_back(global.mean());
    local_series.push_back(worst_local);
  }
  table.print();

  const auto gfit = fit_linear(xs, global_series);
  const auto lfit_linear = fit_linear(xs, local_series);
  const auto lfit_log = fit_log(xs, local_series);
  std::cout << "global skew vs n:  linear fit slope " << format_double(gfit.slope)
            << " (r2=" << format_double(gfit.r2, 3) << ") — grows with D\n"
            << "local skew vs n:   linear r2=" << format_double(lfit_linear.r2, 3)
            << ", log r2=" << format_double(lfit_log.r2, 3)
            << " — paper predicts the log model (and a slope near zero)\n"
            << "key ratio: global/local widens with n -> gradient property pays "
               "off more the larger the network\n";
  return 0;
}
