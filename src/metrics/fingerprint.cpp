#include "metrics/fingerprint.h"

#include <bit>
#include <cmath>

#include <memory>
#include <vector>

#include "core/engine.h"
#include "rt/chaos.h"
#include "rt/rt_cluster.h"
#include "rt/time_source.h"
#include "runner/island_runner.h"
#include "runner/scenario.h"

namespace gcs {

namespace {

constexpr std::uint64_t kHashSeed = 0x9e3779b97f4a7c15ULL;

std::uint64_t fold_word(std::uint64_t h, std::uint64_t w) {
  return TrajectoryFingerprinter::mix(h ^ w);
}

}  // namespace

std::int64_t TrajectoryFingerprinter::quantize(double logical) {
  // llrint is deterministic under the default (round-to-nearest-even)
  // mode, which nothing in the repo changes. Clocks are finite in any run
  // that completes; the guard keeps a corrupted run from raising FE traps.
  const double scaled = logical * kInvQuantum;
  if (!(std::fabs(scaled) < 9.0e18)) return std::signbit(scaled) ? -1 : 1;
  return std::llrint(scaled);
}

std::uint64_t TrajectoryFingerprinter::fold(std::uint64_t h, std::uint64_t time_bits,
                                            NodeId node, EventKind kind,
                                            std::int64_t qlogical) {
  h = fold_word(h, time_bits);
  h = fold_word(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 8) |
                       static_cast<std::uint64_t>(kind));
  h = fold_word(h, static_cast<std::uint64_t>(qlogical));
  return h;
}

void TrajectoryFingerprinter::attach(Scenario& scenario, KernelTraceSink* chain) {
  engine_ = &scenario.engine();
  chain_ = chain;
  scenario.engine().set_kernel_trace(this);
  scenario.transport().set_kernel_trace(this);
}

void TrajectoryFingerprinter::on_event_fired(Time t, NodeId node, EventKind kind) {
  const std::int64_t q =
      engine_ != nullptr && node != kNoNode
          ? quantize(engine_->peek_logical(node))
          : 0;
  hash_ = fold(hash_, std::bit_cast<std::uint64_t>(t), node, kind, q);
  ++events_;
  if (chain_ != nullptr) chain_->on_event_fired(t, node, kind);
}

FingerprintResult fingerprint_run(Scenario& scenario, Time horizon) {
  TrajectoryFingerprinter fp;
  fp.attach(scenario);
  scenario.start();
  scenario.run_until(horizon);
  return FingerprintResult{fp.value(), fp.events()};
}

FingerprintResult fingerprint_run(const ScenarioSpec& spec, Time horizon) {
  Scenario scenario(spec);
  return fingerprint_run(scenario, horizon);
}

namespace {

/// Per-shard passive event log; owned and written by exactly one shard
/// thread during the run, merged single-threaded afterwards.
class IslandLogSink final : public KernelTraceSink {
 public:
  struct Entry {
    Time t = 0.0;
    NodeId node = kNoNode;
    EventKind kind = EventKind::kClosure;
    std::int64_t qlogical = 0;
  };

  explicit IslandLogSink(Engine& engine) : engine_(&engine) {}

  void on_event_fired(Time t, NodeId node, EventKind kind) override {
    const std::int64_t q =
        node != kNoNode ? TrajectoryFingerprinter::quantize(engine_->peek_logical(node))
                        : 0;
    entries_.push_back({t, node, kind, q});
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  Engine* engine_;
  std::vector<Entry> entries_;
};

}  // namespace

FingerprintResult fingerprint_run_islands(const ScenarioSpec& spec, Time horizon,
                                          int islands) {
  IslandExecutionPlan plan = plan_islands(spec, islands);
  if (!plan.islands_enabled) return fingerprint_run(spec, horizon);

  IslandRunner runner(spec, std::move(plan));
  std::vector<std::unique_ptr<IslandLogSink>> sinks;
  sinks.reserve(static_cast<std::size_t>(runner.shards()));
  for (int i = 0; i < runner.shards(); ++i) {
    Scenario& shard = runner.shard(i);
    sinks.push_back(std::make_unique<IslandLogSink>(shard.engine()));
    shard.engine().set_kernel_trace(sinks.back().get());
    shard.transport().set_kernel_trace(sinks.back().get());
  }
  runner.run(horizon);

  // K-way merge by (fire time, node). Shard logs are disjoint and
  // time-sorted (see the header doc), and equal-time events within one shard
  // already sit in their serial relative order, so within-shard order is
  // preserved. Cross-shard ties need care: the serial kernel breaks equal
  // times by scheduling sequence (simulator.h HeapEntry), and the only event
  // family that realistically collides across shards — synchronized
  // per-node drift changes (walk/blocks/sine fire every node at k·period;
  // ticks and beacons are phase-staggered on purpose) — is scheduled and
  // rescheduled in ascending node order, so its serial seq order IS node-id
  // order. Breaking cross-shard time ties by node id therefore reproduces
  // the serial fold; node ownership is disjoint so the key never ties
  // across shards.
  std::vector<std::size_t> pos(sinks.size(), 0);
  FingerprintResult out;
  out.hash = kHashSeed;
  const auto before = [](const IslandLogSink::Entry& a, const IslandLogSink::Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.node < b.node;
  };
  for (;;) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(sinks.size()); ++i) {
      const auto& log = sinks[static_cast<std::size_t>(i)]->entries();
      if (pos[static_cast<std::size_t>(i)] >= log.size()) continue;
      if (best < 0 ||
          before(log[pos[static_cast<std::size_t>(i)]],
                 sinks[static_cast<std::size_t>(best)]->entries()[pos[static_cast<std::size_t>(best)]])) {
        best = i;
      }
    }
    if (best < 0) break;
    const auto& e =
        sinks[static_cast<std::size_t>(best)]->entries()[pos[static_cast<std::size_t>(best)]++];
    out.hash = TrajectoryFingerprinter::fold(out.hash, std::bit_cast<std::uint64_t>(e.t),
                                             e.node, e.kind, e.qlogical);
    ++out.events;
  }
  return out;
}

FingerprintResult fingerprint_lockstep(const ScenarioSpec& spec,
                                       const std::string& chaos, Time horizon,
                                       Duration step, Duration sample_period) {
  VirtualClock clock;
  RtCluster cluster(spec, clock);
  if (!chaos.empty()) {
    // Same detector settings as the lockstep chaos tests: ingress silence
    // is supposed to cause real eviction/rediscovery during the run.
    DetectorConfig det;
    det.suspect_after = 1.5;
    det.evict_after = 4.0;
    det.probe_interval = 0.5;
    cluster.enable_detector(det);
    cluster.arm_chaos(ChaosScript::from_flag(chaos, cluster.size(),
                                             cluster.edges(), horizon, spec.seed));
  }
  cluster.start();
  cluster.schedule_samples(horizon, sample_period);
  cluster.run_lockstep(clock, horizon, step);

  // Fold the self-sampled series: PR 7 proved it bit-reproducible for a
  // fixed (spec, script), so it pins the lockstep trajectory the way the
  // kernel-event fold pins a simulation run.
  FingerprintResult result;
  result.hash = kHashSeed;
  const auto& samples = cluster.samples();
  for (std::size_t u = 0; u < samples.size(); ++u) {
    for (const RtSample& s : samples[u]) {
      result.hash = fold_word(result.hash, std::bit_cast<std::uint64_t>(s.t));
      result.hash = fold_word(
          result.hash,
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 1) |
              (s.live ? 1u : 0u));
      result.hash = fold_word(result.hash, static_cast<std::uint64_t>(
                                               TrajectoryFingerprinter::quantize(s.logical)));
      result.hash = fold_word(result.hash, static_cast<std::uint64_t>(
                                               TrajectoryFingerprinter::quantize(s.hardware)));
      ++result.events;
    }
  }
  return result;
}

}  // namespace gcs
