// rt_loopback: the runtime subsystem end to end, in one process.
//
// Runs N live AOPT nodes — each a full replica stack slaved to the wall
// clock — over either the in-process pipe transport (lock-free SPSC rings,
// optional injected faults) or real UDP loopback sockets. Drift is
// simulated per node (osc-const ppm offsets), estimates come from the
// measured-RTT offset exchange, and every node self-samples its clocks on a
// shared model-time grid; the per-edge skew join runs offline at the end.
//
//   rt_loopback --nodes=4 --seconds=3 --time-scale=100        # pipe backend
//   rt_loopback --transport=udp --nodes=2 --seconds=3
//   rt_loopback --seconds=30 --time-scale=10 --check-bound --csv=skew.csv
//
// --check-bound makes the exit code enforce that every post-warmup skew
// sample is within the edge's derived gradient bound (the CI soak gate).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "metrics/skew.h"
#include "rt/rt_cluster.h"
#include "util/flags.h"
#include "util/table.h"

using namespace gcs;

namespace {

/// The runtime scenario preset: ring topology, per-node constant-ppm
/// oscillators, RTT estimates. msg_delay_min is 0 — a real transit can be
/// arbitrarily fast, and the causality compensation must stay sound —
/// while msg_delay_max bounds pump latency at the chosen time scale.
ScenarioSpec make_rt_spec(int n, double probe_period, double delay_max,
                          std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "rt-loopback";
  spec.n = n;
  spec.seed = seed;
  spec.topology = ComponentSpec(n >= 3 ? "ring" : "line");
  spec.drift = ComponentSpec("osc-const");
  spec.drift.params.set("ppm", "120/-180/60/-90/150/-40");
  spec.estimates = ComponentSpec("rtt");
  spec.estimates.params.set("probe", probe_period);
  spec.edge_params.eps = 0.1;
  spec.edge_params.tau = 0.5;
  spec.edge_params.msg_delay_max = delay_max;
  spec.edge_params.msg_delay_min = 0.0;
  spec.engine.beacon_period = probe_period;
  spec.engine.tick_period = probe_period;
  spec.gtilde_auto = true;
  return spec;
}

struct RunSummary {
  std::vector<RtEdgeReport> reports;
  std::uint64_t frames_out = 0;
  std::uint64_t frames_in = 0;
  Time horizon = 0.0;
};

int report(const RunSummary& run, bool check_bound) {
  Table table("rt_loopback: per-edge skew over the sampled grid");
  table.headers({"edge", "samples", "max |skew|", "mean |skew|", "eps", "kappa",
                 "bound", "ok"});
  bool all_ok = true;
  for (const RtEdgeReport& r : run.reports) {
    const bool ok = r.samples > 0 && r.max_abs_skew <= r.bound;
    all_ok = all_ok && ok;
    table.row()
        .cell(r.edge.str())
        .cell(r.samples)
        .cell(r.max_abs_skew)
        .cell(r.mean_abs_skew)
        .cell(r.eps)
        .cell(r.kappa)
        .cell(r.bound)
        .cell(ok ? "yes" : "NO");
  }
  table.print();
  std::cout << "model horizon " << run.horizon << " s, frames out "
            << run.frames_out << ", frames in " << run.frames_in << "\n";
  if (check_bound && !all_ok) {
    std::cout << "FAIL: a sampled edge skew exceeded its gradient bound\n";
    return 1;
  }
  return 0;
}

int run_pipe(const Flags& flags, const ScenarioSpec& spec, Time horizon,
             Duration sample_period, int warmup) {
  MonotonicClock wall;
  ScaledClock clock(wall, flags.get("time-scale", 10.0));
  FaultSpec faults;
  faults.drop = flags.get("drop", 0.0);
  faults.dup = flags.get("dup", 0.0);
  faults.reorder = flags.get("reorder", 0.0);
  faults.delay = flags.get("delay", 0.2);
  faults.jitter = flags.get("jitter", 0.0);
  faults.seed = static_cast<std::uint64_t>(flags.get("seed", 1));

  RtCluster cluster(spec, clock, faults);
  cluster.start();
  cluster.schedule_samples(horizon, sample_period);
  cluster.run_threads(horizon);

  RunSummary run;
  run.reports = cluster.edge_report(warmup);
  run.horizon = horizon;
  for (NodeId u = 0; u < cluster.size(); ++u) {
    run.frames_out += cluster.node(u).egress_count();
    run.frames_in += cluster.node(u).ingress_count();
  }
  const std::string csv = flags.get("csv", std::string());
  if (!csv.empty()) {
    cluster.write_skew_csv(csv, warmup);
    std::cout << "wrote " << csv << "\n";
  }
  std::cout << "pipe hub: sent " << cluster.hub().sent() << ", dropped "
            << cluster.hub().dropped() << ", duplicated "
            << cluster.hub().duplicated() << ", delayed "
            << cluster.hub().delayed() << "\n";
  return report(run, flags.get("check-bound", false));
}

int run_udp(const Flags& flags, const ScenarioSpec& spec, Time horizon,
            Duration sample_period, int warmup) {
  const int n = spec.n;
  const auto base_port =
      static_cast<std::uint16_t>(flags.get("base-port", 29200));
  MonotonicClock wall;
  ScaledClock clock(wall, flags.get("time-scale", 10.0));

  // One socket-backed transport and one replica per node, all in-process:
  // the frames really cross the kernel's UDP stack.
  std::vector<std::unique_ptr<UdpTransport>> sockets;
  std::vector<std::unique_ptr<RtNode>> nodes;
  for (NodeId u = 0; u < n; ++u) {
    sockets.push_back(std::make_unique<UdpTransport>(n, u, base_port));
    nodes.push_back(std::make_unique<RtNode>(spec, u, *sockets.back(), clock));
  }
  std::vector<std::vector<RtSample>> samples(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) nodes[u]->start();
  const int count = static_cast<int>(std::floor(horizon / sample_period + 1e-9));
  for (NodeId u = 0; u < n; ++u) {
    RtNode* node = nodes[static_cast<std::size_t>(u)].get();
    auto* out = &samples[static_cast<std::size_t>(u)];
    for (int k = 1; k <= count; ++k) {
      const Time t = static_cast<Time>(k) * sample_period;
      node->at(t, [node, out, t] {
        out->push_back(RtSample{t, node->logical(), node->hardware()});
      });
    }
  }
  std::vector<std::thread> threads;
  for (NodeId u = 0; u < n; ++u) {
    RtNode* node = nodes[static_cast<std::size_t>(u)].get();
    threads.emplace_back([node, horizon] {
      while (node->pump() < horizon) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      node->pump();
    });
  }
  for (auto& th : threads) th.join();

  RunSummary run;
  run.horizon = horizon;
  const AlgoParams& aopt = nodes.front()->scenario().spec().aopt;
  for (const EdgeKey& e : nodes.front()->scenario().initial_edges()) {
    RtEdgeReport r;
    r.edge = e;
    Engine& engine = nodes[static_cast<std::size_t>(e.a)]->engine();
    r.eps = engine.edge_eps(e);
    r.kappa = engine.metric_kappa(e);
    r.bound = gradient_bound(r.kappa, aopt.gtilde_static, aopt.sigma());
    const auto& sa = samples[static_cast<std::size_t>(e.a)];
    const auto& sb = samples[static_cast<std::size_t>(e.b)];
    const std::size_t joined = std::min(sa.size(), sb.size());
    double sum = 0.0;
    for (std::size_t k = static_cast<std::size_t>(warmup); k < joined; ++k) {
      const double skew = std::abs(sa[k].logical - sb[k].logical);
      r.max_abs_skew = std::max(r.max_abs_skew, skew);
      sum += skew;
      ++r.samples;
    }
    r.mean_abs_skew = r.samples > 0 ? sum / r.samples : 0.0;
    run.reports.push_back(r);
  }
  for (const auto& node : nodes) {
    run.frames_out += node->egress_count();
    run.frames_in += node->ingress_count();
  }
  return report(run, flags.get("check-bound", false));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string transport = flags.get("transport", std::string("pipe"));
  const int n = flags.get("nodes", transport == "udp" ? 2 : 4);
  const double scale = flags.get("time-scale", 10.0);
  const Time horizon = flags.get("seconds", 3.0) * scale;  // model seconds
  const double probe = flags.get("probe", 0.25);
  const double sample_period = flags.get("sample-period", 0.5);
  // Transit bound in model time: pump cadence (~ms wall) times the scale,
  // with generous slack for scheduler stalls.
  const double delay_max = flags.get("delay-max", std::max(0.5, 0.05 * scale));
  const int warmup = flags.get(
      "warmup", static_cast<int>(std::ceil(0.25 * horizon / sample_period)));

  const ScenarioSpec spec =
      make_rt_spec(n, probe, delay_max,
                   static_cast<std::uint64_t>(flags.get("seed", 1)));
  if (transport == "udp") return run_udp(flags, spec, horizon, sample_period, warmup);
  if (transport == "pipe") return run_pipe(flags, spec, horizon, sample_period, warmup);
  std::cerr << "unknown --transport=" << transport << " (pipe|udp)\n";
  return 2;
}
