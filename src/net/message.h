// Wire messages exchanged by the synchronization protocols.
#pragma once

#include <variant>

#include "util/common.h"

namespace gcs {

/// Periodic beacon: carries the sender's logical clock and max estimate
/// ("nodes piggy-back their current max estimate to each message sent").
/// The min estimate is piggy-backed as well: it is the symmetric flooded
/// lower bound on the minimum clock that the distributed global-skew
/// estimator (§7 substrate) is built from.
struct Beacon {
  ClockValue logical = 0.0;
  ClockValue max_estimate = 0.0;
  ClockValue min_estimate = 0.0;
};

/// Listing 1 line 9: insertedge({u,v}, L_ins, G̃) from the edge leader.
struct InsertEdgeMsg {
  ClockValue l_ins = 0.0;
  double gtilde = 0.0;
};

/// RTT offset-exchange probe (edyn-style two-request/response scheme, see
/// estimate/rtt_estimate.h). The sender stamps its own hardware clock; the
/// responder echoes it back untouched so the round-trip time needs no state
/// at the responder.
struct TimeRequest {
  std::uint32_t id = 0;         ///< matches the response to the pending probe
  ClockValue sender_hw = 0.0;   ///< sender's hardware clock at send
};

/// Reply to a TimeRequest: the echoed request stamp plus the responder's
/// logical clock at response time (the quantity the estimate layer tracks).
struct TimeResponse {
  std::uint32_t id = 0;
  ClockValue echo_hw = 0.0;        ///< TimeRequest::sender_hw, echoed
  ClockValue remote_logical = 0.0; ///< responder's L at response send
};

/// Failure-detector probe (rt/liveness.h). Pings bypass the engine entirely:
/// the runtime ingress answers a ping with a pong and feeds both into the
/// detector as liveness evidence, so a fully partitioned edge can be
/// rediscovered even though no protocol traffic flows over it. Never used in
/// simulation mode.
struct LivenessPing {
  std::uint32_t seq = 0;   ///< sender-local probe counter
  std::uint32_t kind = 0;  ///< 0 = ping, 1 = pong (echoes the ping's seq)
};

using Payload =
    std::variant<Beacon, InsertEdgeMsg, TimeRequest, TimeResponse, LivenessPing>;

/// A message delivered to a node. Zero-copy: `payload` points into the
/// transport's message arena (net/arena.h) and is valid only for the
/// duration of the on_delivery call — consumers that keep a message must
/// copy the Payload (or the fields they need) out.
struct Delivery {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Time sent_at = 0.0;
  Time delivered_at = 0.0;
  /// Receiver-known lower bound on the transit time (edge msg_delay_min):
  /// what the receiver may safely add, scaled by (1−ρ), to clock values in
  /// the payload (paper §3.1, "causality" relation).
  Duration known_min_delay = 0.0;
  const Payload* payload = nullptr;
};

}  // namespace gcs
