// rt_loopback: the runtime subsystem end to end, in one process.
//
// Runs N live AOPT nodes — each a full replica stack slaved to the wall
// clock — over either the in-process pipe transport (lock-free SPSC rings,
// optional injected faults) or real UDP loopback sockets. Drift is
// simulated per node (osc-const ppm offsets), estimates come from the
// measured-RTT offset exchange, and every node self-samples its clocks on a
// shared model-time grid; the per-edge skew join runs offline at the end.
//
//   rt_loopback --nodes=4 --seconds=3 --time-scale=100        # pipe backend
//   rt_loopback --transport=udp --nodes=2 --seconds=3
//   rt_loopback --transport=tcp --nodes=4 --seconds=12 --time-scale=10 \
//       --detector --chaos=corrupt --check-bound
//   rt_loopback --seconds=30 --time-scale=10 --check-bound --csv=skew.csv
//   rt_loopback --detector --chaos=partition --chaos-seed=7 --check-bound
//
// --check-bound makes the exit code enforce the gradient bound: without
// chaos, over every post-warmup sample; with chaos, per quiet phase — after
// each scripted fault clears, every edge skew must be back within its bound
// throughout [clear + stabilization, next fault) (the re-convergence gate).
// It also enforces the wire-integrity invariant on the pipe and tcp
// backends: every chaos-injected bit flip must show up in rejected() — a
// corrupted frame that decoded anyway would be a codec bug (UDP is exempt
// only because the kernel may drop a corrupted datagram before delivery).
//
// --chaos takes a preset name (crash|partition|churn|corrupt) or an inline
// script ("at 5 cut 0 1; at 12 heal 0 1" — see rt/chaos.h for the
// grammar). Chaos almost always wants --detector, which arms the liveness
// layer that turns the injected silence into real edge eviction and
// rediscovery.
#include <cmath>
#include <iostream>
#include <string>

#include "rt/rt_cluster.h"
#include "util/flags.h"
#include "util/table.h"

using namespace gcs;

namespace {

/// The runtime scenario preset: ring topology, per-node constant-ppm
/// oscillators, RTT estimates. msg_delay_min is 0 — a real transit can be
/// arbitrarily fast, and the causality compensation must stay sound —
/// while msg_delay_max bounds pump latency at the chosen time scale.
ScenarioSpec make_rt_spec(int n, double probe_period, double delay_max,
                          std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "rt-loopback";
  spec.n = n;
  spec.seed = seed;
  spec.topology = ComponentSpec(n >= 3 ? "ring" : "line");
  spec.drift = ComponentSpec("osc-const");
  spec.drift.params.set("ppm", "120/-180/60/-90/150/-40");
  spec.estimates = ComponentSpec("rtt");
  spec.estimates.params.set("probe", probe_period);
  spec.edge_params.eps = 0.1;
  spec.edge_params.tau = 0.5;
  spec.edge_params.msg_delay_max = delay_max;
  spec.edge_params.msg_delay_min = 0.0;
  spec.engine.beacon_period = probe_period;
  spec.engine.tick_period = probe_period;
  spec.gtilde_auto = true;
  return spec;
}

bool print_reports(const std::string& title,
                   const std::vector<RtEdgeReport>& reports,
                   bool require_samples) {
  Table table(title);
  table.headers({"edge", "samples", "max |skew|", "mean |skew|", "eps", "kappa",
                 "bound", "ok"});
  bool all_ok = true;
  for (const RtEdgeReport& r : reports) {
    const bool ok = r.max_abs_skew <= r.bound && (r.samples > 0 || !require_samples);
    all_ok = all_ok && ok;
    table.row()
        .cell(r.edge.str())
        .cell(r.samples)
        .cell(r.max_abs_skew)
        .cell(r.mean_abs_skew)
        .cell(r.eps)
        .cell(r.kappa)
        .cell(r.bound)
        .cell(ok ? "yes" : "NO");
  }
  table.print();
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string transport = flags.get("transport", std::string("pipe"));
  RtBackend backend = RtBackend::kPipe;
  if (transport == "udp") {
    backend = RtBackend::kUdp;
  } else if (transport == "tcp") {
    backend = RtBackend::kTcp;
  } else if (transport != "pipe") {
    std::cerr << "unknown --transport=" << transport << " (pipe|udp|tcp)\n";
    return 2;
  }
  const bool pipe = backend == RtBackend::kPipe;
  const int n = flags.get("nodes", backend == RtBackend::kUdp ? 2 : 4);
  const double scale = flags.get("time-scale", 10.0);
  const Time horizon = flags.get("seconds", 3.0) * scale;  // model seconds
  const double probe = flags.get("probe", 0.25);
  const double sample_period = flags.get("sample-period", 0.5);
  // Transit bound in model time: pump cadence (~ms wall) times the scale,
  // with generous slack for scheduler stalls.
  const double delay_max = flags.get("delay-max", std::max(0.5, 0.05 * scale));
  const int warmup = flags.get(
      "warmup", static_cast<int>(std::ceil(0.25 * horizon / sample_period)));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get("seed", 1));

  const ScenarioSpec spec = make_rt_spec(n, probe, delay_max, seed);

  MonotonicClock wall;
  ScaledClock clock(wall, scale);
  FaultSpec faults;
  faults.drop = flags.get("drop", 0.0);
  faults.dup = flags.get("dup", 0.0);
  faults.reorder = flags.get("reorder", 0.0);
  faults.delay = flags.get("delay", 0.2);
  faults.jitter = flags.get("jitter", 0.0);
  faults.seed = seed;

  RtCluster cluster(spec, clock, faults, 1024, backend,
                    static_cast<std::uint16_t>(flags.get("base-port", 29200)));

  if (flags.get("detector", false) || flags.has("chaos")) {
    DetectorConfig detector;
    detector.suspect_after = flags.get("suspect", 3.0 * probe);
    detector.evict_after = flags.get("evict", 8.0 * probe);
    detector.probe_interval = flags.get("probe-interval", 2.0 * probe);
    cluster.enable_detector(detector);
  }

  ChaosScript script;
  // Must stay below the presets' inter-fault gaps (>= 0.14 * horizon) or
  // the quiet windows vanish and nothing gets gated.
  const double stabilization = flags.get("stabilization", 0.1 * horizon);
  if (flags.has("chaos")) {
    script = ChaosScript::from_flag(
        flags.get("chaos", std::string("churn")), cluster.size(),
        cluster.edges(), horizon,
        static_cast<std::uint64_t>(flags.get("chaos-seed", 1)));
    std::cout << "chaos script: " << script.str() << "\n";
    cluster.arm_chaos(script);
  }

  cluster.start();
  cluster.schedule_samples(horizon, sample_period);
  cluster.run_threads(horizon);
  // Settle pass: consume frames still sitting in socket buffers at the
  // horizon so the ingress counters cover everything transmitted.
  cluster.drain();

  std::uint64_t frames_out = 0;
  std::uint64_t frames_in = 0;
  for (NodeId u = 0; u < cluster.size(); ++u) {
    frames_out += cluster.node(u).egress_count();
    frames_in += cluster.node(u).ingress_count();
  }
  const std::string csv = flags.get("csv", std::string());
  if (!csv.empty()) {
    cluster.write_skew_csv(csv, 0);
    std::cout << "wrote " << csv << "\n";
  }
  if (pipe) {
    std::cout << "pipe hub: sent " << cluster.hub().sent() << ", dropped "
              << cluster.hub().dropped() << ", duplicated "
              << cluster.hub().duplicated() << ", delayed "
              << cluster.hub().delayed() << ", chaos-dropped "
              << cluster.hub().chaos_dropped() << ", ring-full "
              << cluster.hub().ring_full() << ", corrupted "
              << cluster.hub().corrupted() << ", wire-rejected "
              << cluster.hub().rejected() << "\n";
  } else if (backend == RtBackend::kUdp) {
    std::uint64_t sent = 0, dropped = 0, errors = 0;
    for (NodeId u = 0; u < cluster.size(); ++u) {
      sent += cluster.udp(u).sent();
      dropped += cluster.udp(u).dropped();
      errors += cluster.udp(u).send_errors();
    }
    std::cout << "udp: sent " << sent << ", chaos-dropped " << dropped
              << ", send-errors " << errors << ", corrupted "
              << cluster.total_corrupted() << ", wire-rejected "
              << cluster.total_rejected() << "\n";
  } else {
    std::uint64_t sent = 0, dropped = 0, backpressure = 0, conn_down = 0,
                  resets = 0, reconnects = 0;
    for (NodeId u = 0; u < cluster.size(); ++u) {
      sent += cluster.tcp(u).sent();
      dropped += cluster.tcp(u).dropped();
      backpressure += cluster.tcp(u).backpressure();
      conn_down += cluster.tcp(u).conn_down();
      resets += cluster.tcp(u).resets();
      reconnects += cluster.tcp(u).reconnects();
    }
    std::cout << "tcp: sent " << sent << ", chaos-dropped " << dropped
              << ", backpressure " << backpressure << ", conn-down "
              << conn_down << ", resets " << resets << ", reconnects "
              << reconnects << ", corrupted " << cluster.total_corrupted()
              << ", wire-rejected " << cluster.total_rejected() << "\n";
  }
  std::cout << "model horizon " << horizon << " s, frames out " << frames_out
            << ", frames in " << frames_in << "\n";

  const bool check = flags.get("check-bound", false);
  bool all_ok = true;
  if (script.empty()) {
    all_ok = print_reports("rt_loopback: per-edge skew over the sampled grid",
                           cluster.edge_report(warmup), /*require_samples=*/true);
  } else {
    print_reports("rt_loopback: whole-run skew (faulted intervals included)",
                  cluster.edge_report(warmup), /*require_samples=*/false);
    for (const ChaosPhase& phase : script.phases(horizon, stabilization)) {
      if (!phase.gateable()) {
        std::cout << "phase '" << phase.label << "' [" << phase.fault_at << ", "
                  << phase.clear_at << "]: no quiet window, not gated\n";
        continue;
      }
      const bool ok = print_reports(
          "re-convergence gate '" + phase.label + "': quiet window [" +
              std::to_string(phase.gate_begin) + ", " +
              std::to_string(phase.gate_end) + ")",
          cluster.edge_report_window(phase.gate_begin, phase.gate_end),
          /*require_samples=*/true);
      all_ok = all_ok && ok;
    }
  }
  if (check && !all_ok) {
    std::cout << "FAIL: a sampled edge skew exceeded its gradient bound\n";
    return 1;
  }
  // Wire-integrity gate: on backends with reliable in-process delivery
  // every injected bit flip must have been caught by the CRC and counted —
  // zero corrupted frames may reach the engine. (UDP is exempt: the kernel
  // may legitimately shed a corrupted datagram before our decoder sees it.)
  if (check && backend != RtBackend::kUdp &&
      cluster.total_rejected() != cluster.total_corrupted()) {
    std::cout << "FAIL: wire integrity: " << cluster.total_corrupted()
              << " corrupted frames but " << cluster.total_rejected()
              << " rejected at ingress\n";
    return 1;
  }
  return 0;
}
