// ASCII table formatting for experiment reports (the "figures" of this repo).
#pragma once

#include <string>
#include <vector>

namespace gcs {

/// Column-aligned ASCII table with a title, headers and string cells.
/// Numeric convenience overloads format with fixed precision.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& headers(std::vector<std::string> hs) {
    headers_ = std::move(hs);
    return *this;
  }

  /// Begin a new row.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(double value, int precision = 4);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(long long value);
  Table& cell(std::size_t value) { return cell(static_cast<long long>(value)); }
  Table& cell(bool value) { return cell(std::string(value ? "yes" : "no")); }

  /// Render to a string (with borders and alignment).
  [[nodiscard]] std::string str() const;

  /// Print to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double compactly (no trailing zero noise), e.g. for cells/logs.
std::string format_double(double value, int precision = 4);

}  // namespace gcs
