// Hardware-clock drift models (the adversary's choice of h_u(t)).
//
// All models produce piecewise-constant rates within [1-rho, 1+rho]; the
// engine queries `rate_at` and schedules a re-query at `next_change_after`.
// Queries may be non-monotone in t (metrics sample the past); models with
// lazily generated schedules extend them as needed and memoize, so a given
// (node, t) always returns the same value.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "util/common.h"
#include "util/registry.h"
#include "util/rng.h"

namespace gcs {

class DriftModel {
 public:
  virtual ~DriftModel() = default;

  /// Hardware rate of node u at time t; must lie in [1-rho, 1+rho].
  virtual double rate_at(NodeId u, Time t) = 0;

  /// Next time after t at which u's rate changes (kTimeInf if never).
  virtual Time next_change_after(NodeId u, Time t) = 0;

  /// Drift bound the model respects.
  [[nodiscard]] virtual double rho() const = 0;
};

/// Every node runs at a fixed rate 1 + offset_u, |offset_u| <= rho.
class ConstantDrift final : public DriftModel {
 public:
  ConstantDrift(double rho, std::vector<double> offsets);
  /// All nodes at the same fixed offset.
  ConstantDrift(double rho, double offset, int n);

  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override { (void)u, (void)t; return kTimeInf; }
  [[nodiscard]] double rho() const override { return rho_; }

 private:
  double rho_;
  std::vector<double> offsets_;
};

/// Node i runs at rate 1 - rho + 2*rho*i/(n-1): the maximally divergent
/// constant assignment (worst case for global skew growth).
class LinearSpreadDrift final : public DriftModel {
 public:
  LinearSpreadDrift(double rho, int n);
  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override { (void)u, (void)t; return kTimeInf; }
  [[nodiscard]] double rho() const override { return rho_; }

 private:
  double rho_;
  int n_;
};

/// The network is split into `blocks` contiguous index blocks; block parity
/// decides the sign of the drift, and all signs flip every `period`.
/// A classic stressor for the *gradient* property: adjacent blocks pull
/// apart at rate 2*rho, then reverse.
class AlternatingBlocksDrift final : public DriftModel {
 public:
  AlternatingBlocksDrift(double rho, int n, int blocks, Duration period);
  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override;
  [[nodiscard]] double rho() const override { return rho_; }

 private:
  double rho_;
  int n_;
  int blocks_;
  Duration period_;
};

/// Bounded random walk: every `step_period`, each node's offset moves by a
/// N(0, step_std) increment, clamped to [-rho, rho]. Deterministic given seed.
class RandomWalkDrift final : public DriftModel {
 public:
  RandomWalkDrift(double rho, int n, Duration step_period, double step_std,
                  std::uint64_t seed);
  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override;
  [[nodiscard]] double rho() const override { return rho_; }

 private:
  /// Offset of node u during step k (memoized; extends lazily).
  double offset(NodeId u, std::size_t k);

  double rho_;
  int n_;
  Duration step_period_;
  double step_std_;
  std::vector<Rng> node_rngs_;
  std::vector<std::vector<double>> walks_;  // walks_[u][k]
};

/// Temperature-cycle-style drift: rate_u(t) = 1 + rho*sin(2π t/period + φ_u)
/// with per-node phase φ_u = 2π u/n, discretized into `steps` piecewise-
/// constant segments per period (the model requires piecewise-constant
/// rates; the discretization error is folded into rho).
class SinusoidalDrift final : public DriftModel {
 public:
  SinusoidalDrift(double rho, int n, Duration period, int steps = 32);
  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override;
  [[nodiscard]] double rho() const override { return rho_; }

 private:
  double rho_;
  int n_;
  Duration period_;
  int steps_;
};

/// INET-style constant-drift oscillator (ConstantDriftOscillator in the
/// clockdrift showcase): each node's hardware rate is 1 + ppm_u·1e-6, fixed
/// for the whole run and configured *per node* in parts-per-million — the
/// way real oscillator datasheets and the INET showcase configurations
/// specify it. Nodes beyond the configured list cycle through it (the
/// showcase's "same config for every switch" pattern). |ppm·1e-6| must not
/// exceed rho.
class ConstantDriftOscillator final : public DriftModel {
 public:
  ConstantDriftOscillator(double rho, int n, std::vector<double> ppm);

  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override { (void)u, (void)t; return kTimeInf; }
  [[nodiscard]] double rho() const override { return rho_; }

 private:
  double rho_;
  int n_;
  std::vector<double> ppm_;
};

/// INET-style random-drift oscillator (RandomDriftOscillator): the drift
/// *rate* performs a bounded uniform random walk — every `interval`, each
/// node's ppm offset moves by uniform(-change_ppm, +change_ppm) and is
/// clamped to [-limit_ppm, +limit_ppm] (the showcase's driftRateChange /
/// driftRateChangeLimit pair). Distinct from RandomWalkDrift: uniform (not
/// Gaussian) increments and an explicit drift-rate limit that may sit well
/// inside the model bound rho. Deterministic given the seed; queries may be
/// non-monotone (the walk is memoized per step).
class RandomDriftOscillator final : public DriftModel {
 public:
  RandomDriftOscillator(double rho, int n, Duration interval, double change_ppm,
                        double limit_ppm, std::uint64_t seed);

  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override;
  [[nodiscard]] double rho() const override { return rho_; }

 private:
  /// ppm offset of node u during step k (memoized; extends lazily).
  double offset_ppm(NodeId u, std::size_t k);

  double rho_;
  int n_;
  Duration interval_;
  double change_ppm_;
  double limit_ppm_;
  std::vector<Rng> node_rngs_;
  std::vector<std::vector<double>> walks_;  // walks_[u][k], in ppm
};

/// §3 remark: make one reference node u0 artificially faster by a factor
/// (1+rho)/(1-rho), so it always carries the maximum clock. The effective
/// drift bound becomes rho~ = (1+rho)^2/(1-rho) - 1 (≈ 3 rho) and every
/// statement holds with D(t) replaced by the estimate *radius* R_u0(t) —
/// beneficial when the network is much "wider" than it is "deep" from u0.
class ReferenceNodeDrift final : public DriftModel {
 public:
  ReferenceNodeDrift(std::unique_ptr<DriftModel> inner, NodeId reference);

  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override;
  /// The *effective* bound rho~ (callers must configure the algorithm with
  /// this, not the inner model's rho).
  [[nodiscard]] double rho() const override;

  [[nodiscard]] NodeId reference() const { return reference_; }
  [[nodiscard]] double boost() const;

 private:
  std::unique_ptr<DriftModel> inner_;
  NodeId reference_;
};

/// Fully scripted: per-node sorted (time, rate) breakpoints. Rate holds from
/// its breakpoint until the next one; before the first breakpoint rate is 1.
class ScriptedDrift final : public DriftModel {
 public:
  explicit ScriptedDrift(double rho) : rho_(rho) {}

  /// Add a breakpoint; times per node must be strictly increasing.
  void add(NodeId u, Time at, double rate);

  double rate_at(NodeId u, Time t) override;
  Time next_change_after(NodeId u, Time t) override;
  [[nodiscard]] double rho() const override { return rho_; }

 private:
  double rho_;
  std::map<NodeId, std::vector<std::pair<Time, double>>> script_;
};

// --------------------------------------------------------------------------
// Drift-model registry.

/// Build context handed to drift factories.
struct DriftArgs {
  int n = 0;
  double rho = 1e-3;        ///< the algorithm's drift bound
  std::uint64_t seed = 1;   ///< scenario seed (factories salt it themselves)
};

using DriftFactory =
    std::function<std::unique_ptr<DriftModel>(const ParamMap&, const DriftArgs&)>;

/// The process-wide drift registry (builtins registered on first use).
Registry<DriftFactory>& drift_registry();

}  // namespace gcs
