#include "rt/wire.h"

#include <cstring>
#include <type_traits>

namespace gcs {

namespace {

// Little-endian scalar writers/readers. The cursors advance as a side
// effect; bounds are the caller's responsibility (frames are tiny and the
// sizes are static per tag).

template <class T>
void put(std::uint8_t*& p, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(p, &v, sizeof(T));
  p += sizeof(T);
}

template <class T>
T get(const std::uint8_t*& p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

// 256-entry table for the reflected Castagnoli polynomial, built once at
// compile time.
struct Crc32cTable {
  std::uint32_t t[256];
  constexpr Crc32cTable() : t{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};

constexpr Crc32cTable kCrcTable{};

}  // namespace

std::uint32_t crc32c(const std::uint8_t* data, std::size_t len) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = kCrcTable.t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::size_t wire_encode(const WireMsg& m, std::uint8_t* buf) {
  std::uint8_t* p = buf + 2;  // length prefix is back-patched below
  put<std::uint8_t>(p, kWireVersion);
  const std::uint8_t tag = static_cast<std::uint8_t>(m.payload.index());
  put<std::uint8_t>(p, tag);
  put<std::uint32_t>(p, static_cast<std::uint32_t>(m.from));
  put<std::uint32_t>(p, static_cast<std::uint32_t>(m.to));
  put<double>(p, m.sent_at);
  switch (tag) {
    case 0: {
      const auto& b = std::get<Beacon>(m.payload);
      put<double>(p, b.logical);
      put<double>(p, b.max_estimate);
      put<double>(p, b.min_estimate);
      break;
    }
    case 1: {
      const auto& ins = std::get<InsertEdgeMsg>(m.payload);
      put<double>(p, ins.l_ins);
      put<double>(p, ins.gtilde);
      break;
    }
    case 2: {
      const auto& req = std::get<TimeRequest>(m.payload);
      put<std::uint32_t>(p, req.id);
      put<double>(p, req.sender_hw);
      break;
    }
    case 3: {
      const auto& resp = std::get<TimeResponse>(m.payload);
      put<std::uint32_t>(p, resp.id);
      put<double>(p, resp.echo_hw);
      put<double>(p, resp.remote_logical);
      break;
    }
    case 4: {
      const auto& ping = std::get<LivenessPing>(m.payload);
      put<std::uint32_t>(p, ping.seq);
      put<std::uint32_t>(p, ping.kind);
      break;
    }
    default:
      require(false, "wire_encode: unknown payload alternative");
  }
  const std::size_t total = static_cast<std::size_t>(p - buf) + kWireCrcBytes;
  require(total <= kWireMax, "wire_encode: frame exceeds kWireMax");
  std::uint8_t* len_p = buf;
  put<std::uint16_t>(len_p, static_cast<std::uint16_t>(total - 2));
  // The CRC covers everything before it, length prefix included, so a
  // corrupted prefix fails the check even when the framing still lines up.
  put<std::uint32_t>(p, crc32c(buf, total - kWireCrcBytes));
  return total;
}

bool wire_decode(const std::uint8_t* buf, std::size_t len, WireMsg& out) {
  constexpr std::size_t kHeader = 2 + 1 + 1 + 4 + 4 + 8;
  if (len < kHeader) return false;
  const std::uint8_t* p = buf;
  const std::uint16_t body = get<std::uint16_t>(p);
  if (static_cast<std::size_t>(body) + 2 != len) return false;
  const std::uint8_t version = get<std::uint8_t>(p);
  std::size_t payload_end = len;
  if (version == kWireVersion) {
    // Integrity first: no field is trusted until the trailer checks out.
    if (len < kHeader + kWireCrcBytes) return false;
    const std::uint8_t* crc_p = buf + len - kWireCrcBytes;
    if (get<std::uint32_t>(crc_p) != crc32c(buf, len - kWireCrcBytes)) {
      return false;
    }
    payload_end = len - kWireCrcBytes;
  } else if (version != kWireVersionLegacy) {
    return false;  // unknown version: drop, never guess at the layout
  }
  const std::uint8_t tag = get<std::uint8_t>(p);
  out.from = static_cast<NodeId>(get<std::uint32_t>(p));
  out.to = static_cast<NodeId>(get<std::uint32_t>(p));
  out.sent_at = get<double>(p);
  out.deliver_at = 0.0;
  const std::size_t rest = payload_end - kHeader;
  switch (tag) {
    case 0: {
      if (rest != 24) return false;
      Beacon b;
      b.logical = get<double>(p);
      b.max_estimate = get<double>(p);
      b.min_estimate = get<double>(p);
      out.payload = b;
      return true;
    }
    case 1: {
      if (rest != 16) return false;
      InsertEdgeMsg ins;
      ins.l_ins = get<double>(p);
      ins.gtilde = get<double>(p);
      out.payload = ins;
      return true;
    }
    case 2: {
      if (rest != 12) return false;
      TimeRequest req;
      req.id = get<std::uint32_t>(p);
      req.sender_hw = get<double>(p);
      out.payload = req;
      return true;
    }
    case 3: {
      if (rest != 20) return false;
      TimeResponse resp;
      resp.id = get<std::uint32_t>(p);
      resp.echo_hw = get<double>(p);
      resp.remote_logical = get<double>(p);
      out.payload = resp;
      return true;
    }
    case 4: {
      if (rest != 8) return false;
      LivenessPing ping;
      ping.seq = get<std::uint32_t>(p);
      ping.kind = get<std::uint32_t>(p);
      out.payload = ping;
      return true;
    }
    default:
      return false;
  }
}

}  // namespace gcs
