// Shared fingerprint-table machinery: the scenario catalog behind
// tests/fingerprints/fingerprints.csv, the CSV row codec, and the "run one
// catalog entry" helper. Used by test_fingerprint.cpp (per-row pinning +
// regeneration mode), test_kernel_trace.cpp (golden-trace cross-check) and
// test_fuzz.cpp (thread-invariance property).
//
// The committed CSV is the source of truth for verification: each row
// carries the full serialized spec, so a row is checkable in isolation
// (ctest registers one test per row by name). The catalog() here is the
// source of truth for REGENERATION: regen mode recomputes every catalog
// entry and rewrites the table, and a dedicated test pins catalog ↔ table
// agreement so the two cannot drift apart silently.
//
// CSV layout (comma-separated, '#' comments):
//
//   name,kind,horizon,chaos,coalesce_inv,hash,events,spec
//
// `spec` is ScenarioSpec::str() — space-separated key=value pairs whose
// values may contain commas (component params) — so it is the LAST field
// and rows are parsed by splitting only the first seven commas. `chaos` is
// "-" for simulation rows; for rt rows it is a chaos preset name (presets
// contain no commas; inline scripts are not allowed in the table).
// `coalesce_inv` marks rows proven bit-identical under both instant
// -coalescing modes (see Case::coalesce_invariant).
#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/fingerprint.h"
#include "runner/scenario.h"
#include "util/common.h"

namespace gcs::fptable {

struct Case {
  std::string name;   ///< unique row id; also the per-row ctest suffix
  std::string kind;   ///< "sim" (event-fold) or "rt" (lockstep sample-fold)
  double horizon = 20.0;
  std::string chaos;  ///< rt rows: preset name ("" = no chaos)
  /// This row's trajectory is bit-identical under both instant-coalescing
  /// modes, and the invariance suite + coalesce-flipped regeneration enforce
  /// that. PR 5 proved the equivalence only where trigger scans draw no
  /// per-scan state (beacon estimates; the baseline algorithms) — oracle
  ///-estimate AOPT rows legitimately diverge (test_instant.cpp pins why),
  /// so they are pinned per-mode (at the spec's own coalesce setting) and
  /// excluded from the flip.
  bool coalesce_invariant = false;
  ScenarioSpec spec;
};

/// One committed table row (Case flattened to strings + the pinned result).
struct Row {
  std::string name;
  std::string kind;
  double horizon = 0.0;
  std::string chaos;
  bool coalesce_invariant = false;
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  std::string spec;  ///< ScenarioSpec::str(), reconstructable via set()
};

inline std::string table_path() {
  return std::string(GCS_SOURCE_DIR) + "/tests/fingerprints/fingerprints.csv";
}

/// Rebuild a spec from its str() rendering (explicit_edges excepted, which
/// the catalog never uses — registry topologies only).
inline ScenarioSpec spec_from_str(const std::string& text) {
  ScenarioSpec spec;
  for (const std::string& token : split(text, ' ')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    require(eq != std::string::npos, "fingerprint table: bad spec token '" + token + "'");
    spec.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return spec;
}

// ---------------------------------------------------------------- catalog

/// The golden-trace reference scenario (test_kernel_trace.cpp runs the same
/// spec against the committed event trace; the "beacon-reference" table row
/// pins its fingerprint, and regen_golden.sh requires the two to agree).
inline ScenarioSpec kernel_trace_reference_spec() {
  ScenarioSpec spec;
  spec.name = "kernel-trace-reference";
  spec.n = 12;
  spec.topology = ComponentSpec("line");
  spec.edge_params = default_edge_params(0.05, 0.25, 0.5, 0.1);
  spec.aopt.rho = 1e-3;
  spec.aopt.mu = 0.1;
  spec.gtilde_auto = true;
  spec.drift = ComponentSpec::parse("walk:period=5");
  spec.estimates = ComponentSpec("beacon");
  // keep_connected=false: on a line every removal disconnects, so a
  // connectivity-preserving churn would never act. Transient partitions are
  // fine here — they also exercise the transport's drop path.
  spec.adversary = ComponentSpec::parse("churn:rate=0.6,start=5,keep_connected=false");
  spec.seed = 20260728;
  return spec;
}

namespace detail {

inline ScenarioSpec sim_base(const std::string& name, int n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.n = n;
  spec.seed = seed;
  spec.edge_params = default_edge_params(0.05, 0.25, 0.5, 0.1);
  spec.aopt.rho = 1e-3;
  spec.aopt.mu = 0.1;
  spec.gtilde_auto = true;
  return spec;
}

/// The lockstep-runtime base: mirrors tests/test_rt.cpp's rt_spec (ring,
/// oscillator drift, measured-RTT estimates) — the configuration whose
/// lockstep bit-reproducibility PR 7 established.
inline ScenarioSpec rt_base(const std::string& name, int n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.n = n;
  spec.seed = seed;
  spec.topology = ComponentSpec(n >= 3 ? "ring" : "line");
  spec.drift = ComponentSpec::parse("osc-const:ppm=150/-200/80");
  spec.estimates = ComponentSpec("rtt");
  spec.edge_params.eps = 0.1;
  spec.edge_params.tau = 0.5;
  spec.edge_params.msg_delay_max = 0.6;
  spec.edge_params.msg_delay_min = 0.0;
  spec.gtilde_auto = true;
  return spec;
}

}  // namespace detail

/// The pinned catalog: ≥20 simulation combinations spanning the registry's
/// topology × algorithm × drift × estimate × gskew × adversary families,
/// plus lockstep-runtime chaos rows. Rows flagged coalesce-invariant are
/// additionally pinned across both instant-coalescing modes —
/// test_fingerprint verifies the flag continuously, so a mislabeled row
/// fails loudly rather than silently pinning a mode-dependent hash.
inline std::vector<Case> catalog() {
  using detail::rt_base;
  using detail::sim_base;
  std::vector<Case> cases;
  // `inv`: the row is coalesce-invariant (see Case::coalesce_invariant) —
  // beacon-estimate rows and the baseline algorithms qualify; AOPT rows on
  // oracle estimates do not (their trigger scans read scan-time state).
  const auto sim = [&cases](const std::string& name, ScenarioSpec spec,
                            bool inv, double horizon = 20.0) {
    cases.push_back(Case{name, "sim", horizon, "", inv, std::move(spec)});
  };

  // The golden-trace reference, pinned at the same horizon as the trace
  // (beacon estimates: PR 5's regeneration came back byte-identical).
  sim("beacon-reference", kernel_trace_reference_spec(), true, 30.0);

  // Topology family sweep (AOPT, spread drift, uniform estimates).
  {
    ScenarioSpec s = sim_base("fp-line", 24, 101);
    s.topology = ComponentSpec("line");
    sim("line-spread-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-ring", 24, 102);
    s.topology = ComponentSpec("ring");
    sim("ring-spread-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-star", 16, 103);
    s.topology = ComponentSpec("star");
    sim("star-spread-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-complete", 12, 104);
    s.topology = ComponentSpec("complete");
    s.drift = ComponentSpec("none");
    sim("complete-none-uniform", s, true);
  }
  {
    ScenarioSpec s = sim_base("fp-grid", 24, 105);
    s.topology = ComponentSpec::parse("grid:rows=4,cols=6");
    s.drift = ComponentSpec::parse("walk:period=5");
    sim("grid-walk-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-torus", 16, 106);
    s.topology = ComponentSpec::parse("torus:rows=4,cols=4");
    s.drift = ComponentSpec::parse("blocks:period=8,blocks=4");
    sim("torus-blocks-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-hypercube", 16, 107);
    s.topology = ComponentSpec::parse("hypercube:dim=4");
    s.estimates = ComponentSpec("beacon");
    sim("hypercube-spread-beacon", s, true);
  }
  {
    ScenarioSpec s = sim_base("fp-barbell", 16, 108);
    s.topology = ComponentSpec::parse("barbell:k=5,path=6");
    s.drift = ComponentSpec::parse("walk:period=5");
    sim("barbell-walk-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-tree", 24, 109);
    s.topology = ComponentSpec("tree");
    sim("tree-spread-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-gnp", 20, 110);
    s.topology = ComponentSpec::parse("gnp:p=0.2");
    sim("gnp-spread-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-geometric", 20, 111);
    s.topology = ComponentSpec::parse("geometric:radius=0.35");
    sim("geometric-spread-uniform", s, false);
  }

  // Algorithm family (same line workload, every registered algorithm).
  {
    ScenarioSpec s = sim_base("fp-maxjump", 16, 112);
    s.topology = ComponentSpec("line");
    s.algo = ComponentSpec("max-jump");
    sim("line-maxjump-spread-uniform", s, true);
  }
  {
    ScenarioSpec s = sim_base("fp-brm", 16, 113);
    s.topology = ComponentSpec("ring");
    s.algo = ComponentSpec("bounded-rate-max");
    sim("ring-boundedratemax-spread-uniform", s, true);
  }
  {
    ScenarioSpec s = sim_base("fp-free", 16, 114);
    s.topology = ComponentSpec("line");
    s.algo = ComponentSpec("free-running");
    sim("line-freerunning-spread-uniform", s, true);
  }

  // Drift family (line/ring AOPT under every remaining drift model).
  {
    ScenarioSpec s = sim_base("fp-sine", 20, 115);
    s.topology = ComponentSpec("ring");
    s.drift = ComponentSpec::parse("sine:period=10,steps=16");
    s.estimates = ComponentSpec("zero");
    sim("ring-sine-zero", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-osc-const", 18, 116);
    s.topology = ComponentSpec("line");
    s.drift = ComponentSpec::parse("osc-const:ppm=150/-200/80");
    sim("line-oscconst-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-osc-random", 18, 117);
    s.topology = ComponentSpec("ring");
    s.drift = ComponentSpec::parse("osc-random:interval=4,change=50");
    s.estimates = ComponentSpec("beacon");
    sim("ring-oscrandom-beacon", s, true);
  }

  // Estimate + G̃-source families.
  {
    ScenarioSpec s = sim_base("fp-adversarial", 16, 118);
    s.topology = ComponentSpec("star");
    s.estimates = ComponentSpec("adversarial");
    sim("star-spread-adversarial", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-gskew-oracle", 16, 119);
    s.topology = ComponentSpec("line");
    s.gskew = ComponentSpec("oracle");
    sim("line-gskew-oracle", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-gskew-dist", 16, 120);
    s.topology = ComponentSpec("ring");
    s.estimates = ComponentSpec("beacon");
    s.gskew = ComponentSpec("distributed");
    sim("ring-beacon-gskew-distributed", s, true);
  }

  // Dynamic-topology family (churn adversary; the reference row above
  // already pins line churn under beacons).
  {
    ScenarioSpec s = sim_base("fp-churn-grid", 24, 121);
    s.topology = ComponentSpec::parse("grid:rows=4,cols=6");
    s.adversary = ComponentSpec::parse("churn:rate=0.4,start=5");
    sim("grid-churn-uniform", s, false);
  }
  {
    ScenarioSpec s = sim_base("fp-churn-ring", 16, 122);
    s.topology = ComponentSpec("ring");
    s.estimates = ComponentSpec("beacon");
    s.adversary = ComponentSpec::parse("churn:rate=0.6,start=5,keep_connected=false");
    sim("ring-churn-beacon", s, true);
  }

  // Island-decomposable family: edge-uniform delays + beacon estimates —
  // the spec shape plan_islands accepts. Pinned serial here like every
  // other row; test_fingerprint's island-invariance suite re-runs each at
  // 1/2/8 island workers and requires the exact same hash, which is what
  // makes these rows the determinism gate for the island engine.
  {
    ScenarioSpec s = sim_base("fp-isl-clusters", 32, 123);
    s.topology = ComponentSpec::parse("clusters:k=4,s=8");
    s.estimates = ComponentSpec("beacon");
    s.delays = DelayMode::kEdgeUniform;
    sim("clusters-beacon-edgeuniform", s, true);
  }
  {
    ScenarioSpec s = sim_base("fp-isl-grid", 32, 124);
    s.topology = ComponentSpec::parse("grid:rows=4,cols=8");
    s.drift = ComponentSpec::parse("walk:period=5");
    s.estimates = ComponentSpec("beacon");
    s.delays = DelayMode::kEdgeUniform;
    sim("grid-walk-beacon-edgeuniform", s, true);
  }
  {
    ScenarioSpec s = sim_base("fp-isl-gskew", 24, 125);
    s.topology = ComponentSpec::parse("clusters:k=3,s=8,bridges=2");
    s.estimates = ComponentSpec("beacon");
    s.delays = DelayMode::kEdgeUniform;
    s.gskew = ComponentSpec("distributed");
    sim("clusters-beacon-gskew-distributed-edgeuniform", s, true);
  }
  {
    ScenarioSpec s = sim_base("fp-isl-maxjump", 24, 126);
    s.topology = ComponentSpec("line");
    s.algo = ComponentSpec("max-jump");
    s.estimates = ComponentSpec("beacon");
    s.delays = DelayMode::kEdgeUniform;
    sim("line-maxjump-beacon-edgeuniform", s, true);
  }
  {
    ScenarioSpec s = sim_base("fp-isl-churn", 32, 127);
    s.topology = ComponentSpec::parse("clusters:k=4,s=8");
    s.estimates = ComponentSpec("beacon");
    s.delays = DelayMode::kEdgeUniform;
    s.adversary = ComponentSpec::parse("churn:rate=0.4,start=5");
    sim("clusters-churn-beacon-edgeuniform", s, true);
  }

  // Lockstep-runtime chaos rows (preset names resolve deterministically
  // from (preset, topology, horizon, seed) — see rt/chaos.h).
  // rt rows are pinned at their spec's own coalescing mode only (the flip
  // equivalence is a simulation-engine claim; lockstep runs stay out of it).
  cases.push_back(Case{"rt-ring-crash", "rt", 30.0, "crash", false,
                       rt_base("fp-rt-crash", 5, 201)});
  cases.push_back(Case{"rt-ring-partition", "rt", 30.0, "partition", false,
                       rt_base("fp-rt-partition", 5, 202)});
  cases.push_back(Case{"rt-ring-churn", "rt", 30.0, "churn", false,
                       rt_base("fp-rt-churn", 4, 203)});

  return cases;
}

// ------------------------------------------------------------ execution

constexpr Duration kRtStep = 0.25;
constexpr Duration kRtSamplePeriod = 1.0;

/// Compute one catalog entry's fingerprint (sim: event fold to horizon;
/// rt: lockstep sample fold under the row's chaos preset).
inline FingerprintResult run_case(const Case& c) {
  if (c.kind == "rt") {
    return fingerprint_lockstep(c.spec, c.chaos, c.horizon, kRtStep, kRtSamplePeriod);
  }
  return fingerprint_run(c.spec, c.horizon);
}

// ------------------------------------------------------------- CSV codec

inline std::string format_row(const Row& row) {
  std::ostringstream os;
  os << row.name << ',' << row.kind << ',' << ParamMap::format(row.horizon) << ','
     << (row.chaos.empty() ? "-" : row.chaos) << ','
     << (row.coalesce_invariant ? "yes" : "no") << ',' << std::hex;
  os.width(16);
  os.fill('0');
  os << row.hash << std::dec << ',' << row.events << ',' << row.spec;
  return os.str();
}

inline Row parse_row(const std::string& line) {
  // The spec field is last and may contain commas: split only the first 7.
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (int i = 0; i < 7; ++i) {
    const std::size_t comma = line.find(',', start);
    require(comma != std::string::npos, "fingerprint table: short row '" + line + "'");
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  fields.push_back(line.substr(start));
  Row row;
  row.name = fields[0];
  row.kind = fields[1];
  row.horizon = std::stod(fields[2]);
  row.chaos = fields[3] == "-" ? "" : fields[3];
  require(fields[4] == "yes" || fields[4] == "no",
          "fingerprint table: bad coalesce_inv in row '" + line + "'");
  row.coalesce_invariant = fields[4] == "yes";
  row.hash = std::stoull(fields[5], nullptr, 16);
  row.events = std::stoull(fields[6]);
  row.spec = fields[7];
  require(row.kind == "sim" || row.kind == "rt",
          "fingerprint table: unknown kind in row '" + line + "'");
  return row;
}

inline std::vector<Row> load_table(const std::string& path = table_path()) {
  std::ifstream f(path);
  require(f.good(), "fingerprint table missing: " + path +
                        " — run scripts/regen_fingerprints.sh");
  std::vector<Row> rows;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    rows.push_back(parse_row(line));
  }
  return rows;
}

/// load_table(), except a missing file yields a single sentinel row (name
/// "table_missing") instead of throwing — safe to call during gtest's
/// static-init parameter expansion, where a throw would abort the binary
/// before the regeneration test could ever run to create the file.
inline std::vector<Row> load_table_or_sentinel() {
  std::ifstream f(table_path());
  if (!f.good()) return {Row{"table_missing", "", 0.0, "", false, 0, 0, ""}};
  return load_table();
}

inline void save_table(const std::vector<Row>& rows,
                       const std::string& path = table_path()) {
  std::ofstream f(path);
  require(f.good(), "cannot write fingerprint table: " + path);
  f << "# Trajectory fingerprint table — one pinned hash per scenario.\n"
       "# Regenerate CONSCIOUSLY via scripts/regen_fingerprints.sh; see\n"
       "# docs/ARCHITECTURE.md (Fingerprint pinning) for when regeneration\n"
       "# is legitimate vs when a mismatch is a trajectory regression.\n"
       "# name,kind,horizon,chaos,coalesce_inv,hash,events,spec\n";
  for (const Row& row : rows) f << format_row(row) << '\n';
}

/// Reconstruct the Case a committed row describes (used by the per-row
/// tests: the row is self-contained, no catalog lookup needed).
inline Case case_from_row(const Row& row) {
  return Case{row.name,  row.kind,
              row.horizon, row.chaos,
              row.coalesce_invariant, spec_from_str(row.spec)};
}

}  // namespace gcs::fptable
