#include "rt/time_source.h"

#include <chrono>
#include <thread>

namespace gcs {

namespace {
using SteadySeconds = std::chrono::duration<double>;
}  // namespace

Time MonotonicClock::now() {
  return SteadySeconds(std::chrono::steady_clock::now().time_since_epoch()).count();
}

void MonotonicClock::sleep_until(Time t) {
  const auto deadline =
      std::chrono::steady_clock::time_point(
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              SteadySeconds(t)));
  std::this_thread::sleep_until(deadline);
}

ScaledClock::ScaledClock(TimeSource& inner, double scale)
    : ScaledClock(inner, scale, inner.now()) {}

ScaledClock::ScaledClock(TimeSource& inner, double scale, Time origin)
    : inner_(inner), scale_(scale), origin_(origin) {
  require(scale > 0.0, "ScaledClock: scale must be > 0");
}

Time VirtualClock::now() {
  const std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void VirtualClock::sleep_until(Time t) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return now_ >= t; });
}

void VirtualClock::advance_to(Time t) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    require(t >= now_, "VirtualClock: time cannot go backwards");
    now_ = t;
  }
  cv_.notify_all();
}

void VirtualClock::advance(Duration dt) {
  require(dt >= 0.0, "VirtualClock: time cannot go backwards");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    now_ += dt;
  }
  cv_.notify_all();
}

}  // namespace gcs
