#include "estimate/estimate_source.h"

#include <cmath>

namespace gcs {

// ------------------------------------------------------------------ oracle

OracleEstimateSource::OracleEstimateSource(DynamicGraph& graph,
                                           OracleErrorPolicy policy,
                                           std::uint64_t seed)
    : graph_(graph), policy_(policy), rng_(seed) {}

std::optional<ClockValue> OracleEstimateSource::estimate(NodeId u, NodeId v) {
  require(clocks_ != nullptr, "OracleEstimateSource: bind() not called");
  if (!graph_.view_present(u, v)) return std::nullopt;
  const double e = graph_.params(EdgeKey(u, v)).eps;
  const ClockValue truth = clocks_->true_logical(v);
  switch (policy_) {
    case OracleErrorPolicy::kZero:
      return truth;
    case OracleErrorPolicy::kUniform:
      return truth + rng_.uniform(-e, e);
    case OracleErrorPolicy::kAdversarial: {
      // Shrink the perceived skew: report the neighbor ε closer to us than
      // it is (never crossing), which maximally delays trigger reactions.
      const ClockValue mine = clocks_->true_logical(u);
      if (truth > mine) return std::max(mine, truth - e);
      if (truth < mine) return std::min(mine, truth + e);
      return truth;
    }
  }
  return truth;
}

double OracleEstimateSource::eps(const EdgeKey& e) const {
  return graph_.params(e).eps;
}

// ------------------------------------------------------------------ beacon

double beacon_eps(const EdgeParams& e, double beacon_period, double rho, double mu) {
  const double receipt = (1.0 + rho) * (1.0 + mu) * e.msg_delay_max -
                         (1.0 - rho) * e.msg_delay_min;
  const double gap = beacon_period + e.delay_uncertainty();
  const double growth = (2.0 * rho + mu * (1.0 + rho)) * gap;
  return receipt + growth;
}

BeaconEstimateSource::BeaconEstimateSource(DynamicGraph& graph,
                                           double beacon_period, double rho,
                                           double mu)
    : graph_(graph), beacon_period_(beacon_period), rho_(rho), mu_(mu) {
  require(beacon_period > 0.0, "BeaconEstimateSource: beacon_period must be > 0");
}

std::optional<ClockValue> BeaconEstimateSource::estimate(NodeId u, NodeId v) {
  require(clocks_ != nullptr, "BeaconEstimateSource: bind() not called");
  if (!graph_.view_present(u, v)) return std::nullopt;
  const auto it = entries_.find(key(u, v));
  if (it == entries_.end()) return std::nullopt;
  // Advance the snapshot at the receiver's own hardware rate: the estimate
  // error stays within beacon_eps() because the rate mismatch to the
  // neighbor's logical clock is bounded by 2ρ + µ(1+ρ).
  const ClockValue hw_elapsed = clocks_->true_hardware(u) - it->second.recv_hw;
  return it->second.base + hw_elapsed;
}

double BeaconEstimateSource::eps(const EdgeKey& e) const {
  return beacon_eps(graph_.params(e), beacon_period_, rho_, mu_);
}

void BeaconEstimateSource::on_beacon(const Delivery& d) {
  require(clocks_ != nullptr, "BeaconEstimateSource: bind() not called");
  const auto* beacon = std::get_if<Beacon>(&d.payload);
  if (beacon == nullptr) return;
  Entry entry;
  entry.base = beacon->logical + (1.0 - rho_) * d.known_min_delay;
  entry.recv_hw = clocks_->true_hardware(d.to);
  entries_[key(d.to, d.from)] = entry;
}

void BeaconEstimateSource::on_edge_lost(NodeId u, NodeId peer) {
  entries_.erase(key(u, peer));
}

}  // namespace gcs
