// Measured-RTT estimate source (the service-mode realization of eq. 1).
//
// Instead of compensating beacon transit with the model's known delay floor
// (BeaconEstimateSource), this source *measures* the round-trip time with an
// edyn-style two-request/response offset exchange: each probe round sends two
// back-to-back TimeRequests per neighbor, every TimeResponse yields one RTT
// sample, and the transit compensation is half the sliding-window average of
// the surviving samples after outlier rejection (a sample more than
// `outlier` times the window minimum is a queueing spike, not a path
// property, and is excluded). Two requests per round means a single lost or
// deferred datagram cannot starve a round of samples — the reason edyn's
// exchange is two-phase.
//
// The reported ε_e is beacon_eps(e, probe_period, ρ, µ): the worst-case
// receipt error of an *uncompensated* timestamp plus drift growth over one
// period. RTT compensation only shrinks the receipt term (the residual error
// is the path asymmetry, at most the delay uncertainty that the beacon bound
// already charges in full), so the beacon formula stays a sound, if
// conservative, bound for this source.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "estimate/estimate_source.h"

namespace gcs {

class RttEstimateSource final : public EstimateSource {
 public:
  RttEstimateSource(DynamicGraph& graph, Duration probe_period, double rho,
                    double mu, int window, double outlier);

  std::optional<ClockValue> estimate(NodeId u, NodeId v) override;
  [[nodiscard]] double eps(const EdgeKey& e) const override;
  void on_edge_lost(NodeId u, NodeId peer) override;

  [[nodiscard]] Duration probe_period() const override { return probe_period_; }
  void on_probe(NodeId u, ProbeSender& sender) override;
  void on_time_response(const Delivery& d, const TimeResponse& resp) override;

  /// Smoothed transit estimate for the directed edge (peer -> owner), or a
  /// negative value if no RTT sample has survived yet (test/metrics access).
  [[nodiscard]] double transit_estimate(NodeId owner, NodeId peer) const;
  [[nodiscard]] std::uint64_t sample_count() const { return samples_accepted_; }

 private:
  /// Per-directed-edge sync state (owner's view of one peer).
  struct EdgeSync {
    std::vector<double> rtts;     ///< sliding window, circular overwrite
    std::size_t next = 0;         ///< overwrite cursor into rtts
    ClockValue base = 0.0;        ///< remote L + compensated transit at receipt
    ClockValue recv_hw = 0.0;     ///< owner hardware clock at receipt
    bool have_estimate = false;
  };
  /// An unanswered TimeRequest. Entries older than kStaleRounds probe
  /// periods are pruned on the owner's next probe — a response that late is
  /// indistinguishable from a duplicate and would be dropped either way.
  struct Pending {
    NodeId peer = kNoNode;
    ClockValue send_hw = 0.0;
  };
  static constexpr double kStaleRounds = 4.0;

  static std::uint64_t key(NodeId owner, NodeId peer) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(owner)) << 32) |
           static_cast<std::uint32_t>(peer);
  }
  /// Outlier-rejected mean of the window, halved into a one-way transit.
  [[nodiscard]] static double filtered_transit(const std::vector<double>& rtts,
                                               double outlier);

  DynamicGraph& graph_;
  Duration probe_period_;
  double rho_;
  double mu_;
  int window_;
  double outlier_;
  std::unordered_map<std::uint64_t, EdgeSync> edges_;        ///< key(owner, peer)
  std::unordered_map<std::uint64_t, Pending> pending_;       ///< key(owner, probe id)
  std::unordered_map<NodeId, std::uint32_t> next_id_;        ///< per-owner probe ids
  std::uint64_t samples_accepted_ = 0;
};

/// Hook for estimate_source.cpp's builtin registration.
void register_rtt_estimate(Registry<EstimateFactory>& r);

}  // namespace gcs
