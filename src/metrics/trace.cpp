#include "metrics/trace.h"

#include "util/csv.h"

namespace gcs {

namespace {
const char* kind_name(ExecutionTrace::EventKind kind) {
  switch (kind) {
    case ExecutionTrace::EventKind::kModeChange: return "mode";
    case ExecutionTrace::EventKind::kLogicalJump: return "jump";
    case ExecutionTrace::EventKind::kMaxRaised: return "max";
    case ExecutionTrace::EventKind::kSnapshot: return "snap";
  }
  return "?";
}
}  // namespace

ExecutionTrace::ExecutionTrace(Engine& engine, Duration snapshot_period)
    : engine_(engine) {
  engine_.set_observer(this);
  if (snapshot_period > 0.0) {
    sampler_ = std::make_unique<PeriodicSampler>(engine_.sim(), snapshot_period,
                                                 [this](Time) { snapshot(); });
    sampler_->start(snapshot_period);
  }
}

ExecutionTrace::~ExecutionTrace() {
  engine_.set_observer(nullptr);
  if (sampler_ != nullptr) sampler_->stop();
}

void ExecutionTrace::on_mode_change(Time t, NodeId u, double old_mult,
                                    double new_mult) {
  events_.push_back({t, EventKind::kModeChange, u, old_mult, new_mult});
}

void ExecutionTrace::on_logical_jump(Time t, NodeId u, ClockValue from,
                                     ClockValue to) {
  events_.push_back({t, EventKind::kLogicalJump, u, from, to});
}

void ExecutionTrace::on_max_estimate_raised(Time t, NodeId u, ClockValue value) {
  events_.push_back({t, EventKind::kMaxRaised, u, value, 0.0});
}

void ExecutionTrace::snapshot() {
  const Time t = engine_.sim().now();
  for (NodeId u = 0; u < engine_.size(); ++u) {
    events_.push_back({t, EventKind::kSnapshot, u, engine_.logical(u),
                       engine_.max_estimate(u)});
  }
}

std::size_t ExecutionTrace::count(EventKind kind) const {
  std::size_t total = 0;
  for (const auto& e : events_) total += (e.kind == kind) ? 1 : 0;
  return total;
}

std::vector<int> ExecutionTrace::mode_switches_per_node() const {
  std::vector<int> counts(static_cast<std::size_t>(engine_.size()), 0);
  for (const auto& e : events_) {
    if (e.kind == EventKind::kModeChange) {
      ++counts.at(static_cast<std::size_t>(e.node));
    }
  }
  return counts;
}

std::string ExecutionTrace::csv() const {
  CsvWriter writer;
  writer.row({"t", "kind", "node", "a", "b"});
  for (const auto& e : events_) {
    writer.field(e.t).field(std::string(kind_name(e.kind))).field(e.node);
    writer.field(e.a).field(e.b).endrow();
  }
  return writer.str();
}

void ExecutionTrace::write_csv(const std::string& path) const {
  CsvWriter writer(path);
  writer.row({"t", "kind", "node", "a", "b"});
  for (const auto& e : events_) {
    writer.field(e.t).field(std::string(kind_name(e.kind))).field(e.node);
    writer.field(e.a).field(e.b).endrow();
  }
}

}  // namespace gcs
