// Sweep: expand a ScenarioSpec over axes into a cross-product of runs, and
// SweepRunner: execute the grid on a sharded worker pool with per-run
// deterministic seeding, returning structured RunResult records.
//
// Axes mutate the spec through ScenarioSpec::set(), so anything addressable
// from the CLI is sweepable ("n", "seed", "mu", "topo", "drift.period", ...).
// Each run builds its own Scenario (simulator, graph, engine, RNGs), so runs
// are independent and results are identical for any thread count; a run that
// throws is recorded as an error in its RunResult instead of aborting the
// sweep.
//
// ## Sharded execution (see SweepRunner::run)
//
// The grid is block-partitioned into one shard per worker. Each worker owns
// a cache-line-padded shard: a deque of run indices it pops from the front,
// plus a private result list. A worker whose shard runs dry STEALS from the
// back of the longest remaining shard, so heterogeneous run lengths (a "n"
// axis spanning 8..1024) cannot strand one worker with all the long runs.
// All per-run state — Scenario arenas, RNG streams, result storage — is
// constructed on the owning worker's thread (first-touch local, no sharing;
// on NUMA machines the OS places those pages on the worker's node), and the
// per-shard result lists are merged into grid order by run index after the
// join, so results are byte-identical for every thread count.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runner/scenario.h"
#include "runner/spec.h"
#include "util/table.h"

namespace gcs {

/// Structured outcome of one run of a sweep.
struct RunResult {
  int index = 0;                            ///< position in the expanded grid
  std::string name;                         ///< spec name
  std::map<std::string, std::string> axes;  ///< this run's axis assignment
  std::uint64_t seed = 0;
  int n = 0;

  double final_global = 0.0;  ///< G at the horizon
  double max_global = 0.0;    ///< max G over samples
  double final_local = 0.0;   ///< worst edge skew at the horizon
  double max_local = 0.0;     ///< max worst edge skew over samples
  bool legal = false;         ///< gradient legality at the horizon
  double legality_margin = 0.0;
  std::uint64_t events = 0;   ///< simulator events fired
  int adversary_ops = 0;      ///< topology operations applied

  /// Experiment-specific metrics (custom run functions fill these; they
  /// become extra CSV/table columns).
  std::map<std::string, double> values;

  double wall_seconds = 0.0;
  std::string error;  ///< empty = success; otherwise what the run threw

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// A base spec plus axes to expand (cross product, declaration order; the
/// last axis varies fastest).
class Sweep {
 public:
  explicit Sweep(ScenarioSpec base) : base_(std::move(base)) {}

  Sweep& axis(const std::string& key, std::vector<std::string> values);
  Sweep& axis(const std::string& key, const std::vector<int>& values);
  Sweep& axis(const std::string& key, const std::vector<double>& values);
  Sweep& seeds(const std::vector<std::uint64_t>& values);

  struct Expanded {
    ScenarioSpec spec;
    std::map<std::string, std::string> axes;
  };
  /// The full grid; every entry's spec has all axis assignments applied.
  [[nodiscard]] std::vector<Expanded> expand() const;

  [[nodiscard]] const ScenarioSpec& base() const { return base_; }
  [[nodiscard]] std::size_t size() const;

 private:
  struct Axis {
    std::string key;
    std::vector<std::string> values;
  };
  ScenarioSpec base_;
  std::vector<Axis> axes_;
};

struct SweepOptions {
  int threads = 2;             ///< worker threads (capped at the grid size)
  double horizon = 500.0;      ///< default run function: run until this time
  double sample_period = 5.0;  ///< default run function: skew sampling cadence
  bool check_legality = true;  ///< default run function: legality at horizon
  int level_cap = 32;
};

class SweepRunner {
 public:
  /// A run body: drive the (not yet started) scenario and fill metrics.
  /// The runner wraps it with construction, wall timing and error capture.
  using RunFn = std::function<void(Scenario&, RunResult&)>;
  /// A per-cell spec transform, applied after axis assignment and before
  /// Scenario construction. Lets an experiment derive *correlated*
  /// parameters from an axis value (e.g. G̃ as a function of the "n" axis),
  /// which a plain cross-product cannot express. Must be thread-safe.
  using SpecFn = std::function<void(ScenarioSpec&)>;

  explicit SweepRunner(SweepOptions options = {});

  /// Replace the default horizon/sampling body with an experiment-specific
  /// one (it must call scenario.start() itself).
  void set_run_fn(RunFn fn) { run_fn_ = std::move(fn); }

  /// Install a per-cell spec transform (see SpecFn).
  void set_spec_fn(SpecFn fn) { spec_fn_ = std::move(fn); }

  /// Execute the grid. Results are indexed like Sweep::expand(), identical
  /// for any thread count.
  [[nodiscard]] std::vector<RunResult> run(const Sweep& sweep) const;

  [[nodiscard]] const SweepOptions& options() const { return options_; }

  /// The default body built from `options`: start, sample skew every
  /// sample_period until horizon, record skews/legality/events.
  static RunFn default_run_fn(const SweepOptions& options);

  /// Render results as a table (axis columns + metrics + custom values).
  static Table to_table(const std::vector<RunResult>& results, const std::string& title);

  /// Write results as CSV (same columns as to_table, plus name/seed/error).
  /// `include_wall` = false omits the wall_seconds column, making the file
  /// byte-identical across thread counts and machines (used by the CI sweep
  /// determinism smoke).
  static void write_csv(const std::vector<RunResult>& results, const std::string& path,
                        bool include_wall = true);

 private:
  SweepOptions options_;
  RunFn run_fn_;
  SpecFn spec_fn_;
};

}  // namespace gcs
