// Shared helpers for the experiment binaries (bench/exp_*.cpp).
//
// Every experiment binary runs standalone with defaults chosen so the whole
// bench directory completes in a couple of minutes, prints paper-style
// tables to stdout, and accepts --key=value overrides (see util/flags.h).
// Experiments construct runs through ScenarioSpec, and grids (size/policy/
// algorithm axes) run through SweepRunner's sharded work-stealing pool —
// every multi-run experiment accepts --threads=N. Spec keys given on the
// command line override the experiment's defaults via the same shared
// parsing path as simulate_cli.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "metrics/diameter.h"
#include "metrics/legality.h"
#include "metrics/recorder.h"
#include "metrics/skew.h"
#include "runner/scenario.h"
#include "runner/sweep.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace gcs::bench {

/// Parse a comma-separated list of integers (e.g. "8,16,32").
std::vector<int> parse_int_list(const std::string& csv, std::vector<int> def);

/// Standard experiment header block.
void print_header(const std::string& id, const std::string& claim);

/// Line-topology spec tuned for bench runtimes: mu at the eq. (7) maximum,
/// smaller edge uncertainties than the test defaults, G̃ auto-derived from
/// the topology at Scenario build time.
ScenarioSpec fast_line_spec(int n);

/// The §8-flavored adversarial communication regime: every message takes the
/// maximum delay and no transit compensation is possible, so max-estimate
/// staleness (and hence hidden skew) is Θ(D).
void apply_adversarial_delays(ScenarioSpec& spec, double delay_max = 2.0,
                              double beacon_period = 1.0);

/// Max |L_a - L_b| over a fixed set of edges at the current instant.
double worst_skew_over(Engine& engine, const std::vector<EdgeKey>& edges);

/// Scatter logical clocks linearly across node ids up to `span` end-to-end
/// (the standard way the experiments leave the steady regime).
void scatter_clocks_linearly(Scenario& s, double span);

}  // namespace gcs::bench
