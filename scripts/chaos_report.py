#!/usr/bin/env python3
"""Join per-daemon clock CSVs into a fault-timeline skew table and gate it.

Each gcsd daemon self-samples its own clocks on a start-relative model-time
grid and writes one CSV (schema: t,node,logical,hardware,live). Daemons
start at slightly different wall instants, so their grids do not line up;
this script linearly interpolates every node's logical clock onto a common
grid (the overlap of all per-node time ranges), joins the per-edge skew
|L_a(t) - L_b(t)|, and compares each phase's maximum against the edge's
derived gradient bound from the --bounds table (schema: a,b,eps,kappa,bound,
written by `gcsd --bounds-csv`).

Phases come from repeated --gate label:begin:end flags — the quiet windows
after each scripted fault clears (ChaosScript::phases in src/rt/chaos.h
derives the same windows in-process; CI passes them explicitly because it
runs an explicit inline chaos script). The script grammar covers
crash/restart, cut/heal, drop/clear, storm/calm, corrupt (seeded bit
flips, every one CRC-rejected at ingress) and conn-reset (TCP connection
hard-close; instantaneous, so its gate window runs from the reset itself
to the next fault) — any cleared or instantaneous fault can head a gated
phase here. A grid point only contributes where BOTH endpoints were live:
samples recorded by a crashed or catching-up daemon never trip the gate.

    chaos_report.py --bounds bounds.csv \
        --gate cut:24:40 --gate crash:52:60 \
        [--out timeline.csv] node0.csv node1.csv ...

Exit status is non-zero iff a gated phase has an edge whose max skew
exceeds its bound, or has no live joined samples at all (a gate that
cannot observe anything must fail loudly, not vacuously pass).
"""

import argparse
import bisect
import csv
import sys


def read_node_csv(path):
    """-> (node_id, [(t, logical, live)]) sorted by t."""
    rows = []
    node = None
    with open(path, newline="") as f:
        for rec in csv.DictReader(f):
            node = int(rec["node"])
            rows.append((float(rec["t"]), float(rec["logical"]),
                         rec.get("live", "1") == "1"))
    if node is None:
        sys.exit(f"chaos_report: {path}: no samples")
    rows.sort(key=lambda r: r[0])
    return node, rows


def read_bounds_csv(path):
    """-> [((a, b), eps, kappa, bound)]."""
    edges = []
    with open(path, newline="") as f:
        for rec in csv.DictReader(f):
            edges.append(((int(rec["a"]), int(rec["b"])), float(rec["eps"]),
                          float(rec["kappa"]), float(rec["bound"])))
    if not edges:
        sys.exit(f"chaos_report: {path}: no edges")
    return edges


def interpolate(rows, t):
    """Linear interpolation of (logical, live) at time t.

    live is the AND of the bracketing samples: a point between a live and a
    dead sample is not trustworthy. Exact grid hits use that sample alone.
    """
    times = [r[0] for r in rows]
    i = bisect.bisect_left(times, t)
    if i < len(rows) and times[i] == t:
        return rows[i][1], rows[i][2]
    if i == 0 or i == len(rows):
        return None, False  # outside this node's range
    t0, l0, a0 = rows[i - 1]
    t1, l1, a1 = rows[i]
    w = (t - t0) / (t1 - t0)
    return l0 + w * (l1 - l0), a0 and a1


def parse_gate(spec):
    label, begin, end = spec.split(":")
    begin, end = float(begin), float(end)
    if end <= begin:
        sys.exit(f"chaos_report: bad gate '{spec}': end <= begin")
    return label, begin, end


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("csvs", nargs="+", metavar="node.csv",
                    help="per-daemon clock CSVs (one per node)")
    ap.add_argument("--bounds", required=True,
                    help="per-edge eps/kappa/bound table (gcsd --bounds-csv)")
    ap.add_argument("--gate", action="append", default=[],
                    metavar="label:begin:end",
                    help="gated quiet window in model time (repeatable)")
    ap.add_argument("--out", help="write the timeline table as CSV")
    args = ap.parse_args()

    series = {}
    for path in args.csvs:
        node, rows = read_node_csv(path)
        if node in series:
            sys.exit(f"chaos_report: duplicate node {node} in {path}")
        series[node] = rows
    edges = read_bounds_csv(args.bounds)
    for (a, b), *_ in edges:
        for u in (a, b):
            if u not in series:
                sys.exit(f"chaos_report: no CSV for node {u} (edge {a}-{b})")

    # The common grid: the first node's sample times, clipped to the overlap
    # of every node's range so interpolation never extrapolates.
    lo = max(rows[0][0] for rows in series.values())
    hi = min(rows[-1][0] for rows in series.values())
    if hi <= lo:
        sys.exit("chaos_report: node time ranges do not overlap")
    base = series[min(series)]
    grid = [t for (t, _, _) in base if lo <= t <= hi]

    # Phase list: the whole run (reported, never gated) plus each --gate.
    phases = [("all", lo, hi, False)]
    phases += [(label, begin, end, True)
               for label, begin, end in map(parse_gate, args.gate)]

    timeline = []  # (phase, gated, edge, samples, max_skew, bound, ok)
    failures = []
    for label, begin, end, gated in phases:
        for (a, b), eps, kappa, bound in edges:
            skews = []
            for t in grid:
                if not (begin <= t < end):
                    continue
                la, ok_a = interpolate(series[a], t)
                lb, ok_b = interpolate(series[b], t)
                if la is None or lb is None or not (ok_a and ok_b):
                    continue
                skews.append(abs(la - lb))
            max_skew = max(skews) if skews else 0.0
            ok = bool(skews) and max_skew <= bound
            timeline.append((label, gated, (a, b), len(skews), max_skew,
                             eps, kappa, bound, ok))
            if gated and not ok:
                why = "no live samples" if not skews else (
                    f"max skew {max_skew:.6g} > bound {bound:.6g}")
                failures.append(f"phase '{label}' edge {a}-{b}: {why}")

    name_w = max(len(p[0]) for p in timeline)
    print(f"{'phase':<{name_w}}  gated  edge   samples  max|skew|   bound     ok")
    for label, gated, (a, b), n, max_skew, eps, kappa, bound, ok in timeline:
        print(f"{label:<{name_w}}  {'yes' if gated else 'no ':<5}"
              f"  {a}-{b:<4} {n:>7}  {max_skew:>9.6f}  {bound:>8.4f}  "
              f"{'yes' if ok else 'NO'}")

    if args.out:
        with open(args.out, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(["phase", "gated", "a", "b", "samples", "max_skew",
                        "eps", "kappa", "bound", "ok"])
            for label, gated, (a, b), n, max_skew, eps, kappa, bound, ok in timeline:
                w.writerow([label, int(gated), a, b, n, f"{max_skew:.9g}",
                            f"{eps:.9g}", f"{kappa:.9g}", f"{bound:.9g}",
                            int(ok)])
        print(f"wrote {args.out}")

    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
