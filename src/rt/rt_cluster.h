// An in-process runtime cluster: N RtNode replicas over a shared PipeHub
// and one wall clock, with race-free clock sampling and an offline per-edge
// skew join.
//
// Sampling works by scheduling a kernel closure on EVERY node at the same
// model-time grid points before the run starts: each node records its own
// (logical, hardware) pair on its own thread at exactly t = k·period, so no
// cross-thread clock read ever happens. After the run the cluster joins the
// per-node series by grid index into per-edge |L_u − L_v| samples — the live
// counterpart of metrics/skew.h, feeding the same TimeSeries recorder.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metrics/recorder.h"
#include "rt/rt_node.h"
#include "rt/rt_transport.h"
#include "rt/time_source.h"

namespace gcs {

/// One self-sampled clock reading (taken by the node's own thread).
struct RtSample {
  Time t = 0.0;
  ClockValue logical = 0.0;
  ClockValue hardware = 0.0;
};

/// Offline per-edge skew summary over the sampled grid.
struct RtEdgeReport {
  EdgeKey edge;
  double eps = 0.0;           ///< estimate layer's ε_e
  double kappa = 0.0;         ///< metric κ_e (eq. 9 with that ε)
  double bound = 0.0;         ///< stable gradient bound for κ-distance κ_e
  double max_abs_skew = 0.0;  ///< max |L_u − L_v| over joined samples
  double mean_abs_skew = 0.0;
  int samples = 0;
};

class RtCluster {
 public:
  /// Builds one replica per node of the resolved topology, all sharing
  /// `clock` and a PipeHub carrying `faults`.
  explicit RtCluster(const ScenarioSpec& spec, TimeSource& clock,
                     const FaultSpec& faults = {},
                     std::size_t ring_capacity = 1024);

  /// Start every replica (t=0 topology + engine). Call once, before pumping.
  void start();

  /// Schedule clock self-sampling on every node at k·period for
  /// k = 1 .. floor(horizon/period). Call after start(), before running.
  void schedule_samples(Time horizon, Duration period);

  /// Deterministic single-threaded run: crank `vclock` (which must be the
  /// TimeSource the cluster was built on) in `step` increments up to
  /// `horizon`, pumping every node round-robin a fixed number of rounds per
  /// increment so request/response exchanges settle within the step.
  void run_lockstep(VirtualClock& vclock, Time horizon, Duration step);

  /// Real-time run: one thread per node, each pumping until its kernel
  /// reaches `horizon` (model time), sleeping `poll_interval` model seconds
  /// between pumps.
  void run_threads(Time horizon, Duration poll_interval = 0.002);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] RtNode& node(NodeId u) { return *nodes_[static_cast<std::size_t>(u)]; }
  [[nodiscard]] PipeHub& hub() { return *hub_; }
  [[nodiscard]] const std::vector<EdgeKey>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<std::vector<RtSample>>& samples() const {
    return samples_;
  }

  /// |L_u − L_v| per grid point for one edge, as a recorder series.
  [[nodiscard]] TimeSeries edge_skew_series(const EdgeKey& e) const;

  /// Per-edge summary across every topology edge (skips warmup_samples
  /// leading grid points — convergence transient).
  [[nodiscard]] std::vector<RtEdgeReport> edge_report(int warmup_samples = 0);

  /// Long-format CSV: one row per (grid point, edge) with the skew sample
  /// and the edge's ε/κ/bound columns. Throws on I/O failure.
  void write_skew_csv(const std::string& path, int warmup_samples = 0);

 private:
  TimeSource& clock_;
  std::unique_ptr<PipeHub> hub_;
  std::vector<std::unique_ptr<RtNode>> nodes_;
  std::vector<EdgeKey> edges_;
  std::vector<std::vector<RtSample>> samples_;  ///< [node][grid index]
  bool started_ = false;
};

}  // namespace gcs
