// Deterministic, seedable PRNG (xoshiro256**) with convenience distributions.
//
// We implement our own generator instead of std::mt19937_64 so that all
// experiment outputs are reproducible across standard-library versions (the
// std distributions are not pinned by the standard; ours are).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

#include "util/common.h"

namespace gcs {

/// splitmix64 — used for seeding xoshiro and as a standalone hash/stream.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — public-domain algorithm by Blackman & Vigna.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t below(std::uint64_t n) {
    // Lemire-style rejection via modulo threshold; n is small in practice.
    const std::uint64_t threshold = (0ULL - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) {
    double u;
    do {
      u = uniform01();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Derive an independent child generator (for per-node streams).
  [[nodiscard]] Rng fork(std::uint64_t stream) {
    std::uint64_t sm = next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    Rng child(0);
    for (auto& word : child.s_) word = splitmix64(sm);
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace gcs
