// Skew measurements: global skew, local (edge) skew, and the gradient curve
// (skew as a function of κ-distance over the stable subgraph).
#pragma once

#include <vector>

#include "core/engine.h"
#include "graph/paths.h"

namespace gcs {

/// κ_e used by metrics: what AOPT derives for the edge (eq. 9), computed
/// from the engine's parameters and the estimate layer's ε — identical for
/// every algorithm so comparisons are apples-to-apples.
double metric_kappa(Engine& engine, const EdgeKey& e);

/// The κ the running algorithm currently applies to the edge (time-varying
/// under weight-decay insertion); falls back to metric_kappa for algorithms
/// that do not track per-edge weights.
double live_kappa(Engine& engine, const EdgeKey& e);

struct SkewSnapshot {
  double global = 0.0;        ///< max_u L_u − min_u L_u
  double worst_local = 0.0;   ///< max |L_u − L_v| over edges with both views present
  double worst_local_ratio = 0.0;  ///< max |L_u − L_v| / κ_e over those edges
  EdgeKey worst_local_edge;
};

/// Measure global and local skew at the current instant.
SkewSnapshot measure_skew(Engine& engine);

/// Max |L_a − L_b| over the given node pairs at the current instant
/// (the pairs need not be graph edges).
double worst_pair_skew(Engine& engine, const std::vector<EdgeKey>& pairs);

struct GradientPoint {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  int hops = 0;
  double kappa_dist = 0.0;  ///< min-κ-weight path distance in the stable subgraph
  double skew = 0.0;        ///< |L_u − L_v|
};

/// All-pairs skew vs. κ-distance over the subgraph of edges whose *both*
/// views have been continuously present for at least `stable_for`.
/// Pairs disconnected in that subgraph are omitted.
std::vector<GradientPoint> measure_gradient(Engine& engine, Duration stable_for);

/// The stable gradient bound of Corollary 5.26 / Lemma 5.14 for a path of
/// κ-weight d: (s+1)·d with s = max(1, 2 + ceil(log_sigma(ghat/d))).
double gradient_bound(double kappa_dist, double ghat, double sigma);

}  // namespace gcs
