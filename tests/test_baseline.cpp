#include <gtest/gtest.h>

#include <cmath>

#include "metrics/recorder.h"
#include "metrics/skew.h"
#include "runner/scenario.h"

namespace gcs {
namespace {

ScenarioSpec comparison_config(int n, const std::string& algo) {
  ScenarioSpec cfg;
  cfg.n = n;
  cfg.explicit_edges = topo_line(n);
  cfg.edge_params = default_edge_params();
  cfg.algo = ComponentSpec(algo);
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  cfg.aopt.gtilde_static =
      suggest_gtilde(n, cfg.explicit_edges, cfg.edge_params, cfg.aopt);
  cfg.drift = ComponentSpec("spread");
  cfg.estimates = ComponentSpec("uniform");
  return cfg;
}

TEST(Baselines, MaxJumpBoundsGlobalSkew) {
  Scenario s(comparison_config(10, "max-jump"));
  s.start();
  double worst = 0.0;
  for (int step = 1; step <= 100; ++step) {
    s.run_until(step * 10.0);
    worst = std::max(worst, s.engine().true_global_skew());
  }
  // Max flooding keeps global skew bounded by the info-staleness diameter:
  // far below free-running divergence (2*rho*1000 = 2.0 between ends).
  EXPECT_LT(worst, 1.5);
}

TEST(Baselines, BoundedRateMaxBoundsGlobalSkew) {
  Scenario s(comparison_config(10, "bounded-rate-max"));
  s.start();
  double worst = 0.0;
  for (int step = 1; step <= 100; ++step) {
    s.run_until(step * 10.0);
    worst = std::max(worst, s.engine().true_global_skew());
  }
  EXPECT_LT(worst, 1.5);
}

TEST(Baselines, BoundedRateMaxRespectsRateEnvelope) {
  auto cfg = comparison_config(8, "bounded-rate-max");
  Scenario s(cfg);
  s.start();
  std::vector<double> prev(8);
  Time prev_t = 0.0;
  for (int step = 1; step <= 40; ++step) {
    s.run_until(step * 5.0);
    for (NodeId u = 0; u < 8; ++u) {
      const double l = s.engine().logical(u);
      const double rate = (l - prev[static_cast<std::size_t>(u)]) / (s.sim().now() - prev_t);
      EXPECT_GE(rate, cfg.aopt.alpha() - 1e-9);
      EXPECT_LE(rate, cfg.aopt.beta() + 1e-9);
      prev[static_cast<std::size_t>(u)] = l;
    }
    prev_t = s.sim().now();
  }
}

TEST(Baselines, MaxJumpViolatesRateEnvelopeByJumping) {
  Scenario s(comparison_config(10, "max-jump"));
  s.start();
  s.run_until(500.0);
  double total_jump = 0.0;
  for (NodeId u = 0; u < 10; ++u) {
    auto* node = dynamic_cast<MaxJumpNode*>(&s.engine().algorithm(u));
    ASSERT_NE(node, nullptr);
    total_jump = std::max(total_jump, node->max_jump());
  }
  EXPECT_GT(total_jump, 0.0) << "max-jump never jumped; scenario too tame";
}

// ---------------------------------------------------------------------------
// The headline comparison: when a long-range edge appears between nodes
// carrying (legal) end-to-end skew, max-jump slams its endpoint onto the new
// maximum — the *old* edge to its line neighbor instantaneously carries that
// whole skew. AOPT redistributes smoothly and old edges stay within the
// gradient bound. (This is the §1/§2 motivation for gradient CSAs.)
// ---------------------------------------------------------------------------

double worst_old_edge_skew_after_shortcut(const std::string& algo, int n) {
  auto cfg = comparison_config(n, algo);
  // §8-style adversarial communication: every message takes the maximum
  // delay and no transit compensation is possible (delay_min = 0), so the
  // max-estimate wavefront hides Θ(D) skew along the line.
  cfg.aopt.rho = 5e-3;
  cfg.aopt.mu = 0.1;
  cfg.aopt.gtilde_static = 60.0;  // must dominate the large hidden skew
  cfg.edge_params = default_edge_params(0.1, 0.5, /*delay_max=*/2.0,
                                        /*delay_min=*/0.0);
  cfg.delays = DelayMode::kMax;
  cfg.engine.beacon_period = 1.0;
  cfg.engine.tick_period = 0.5;
  Scenario s(cfg);
  s.start();
  s.run_until(300.0);  // steady state on the line
  s.graph().create_edge(EdgeKey(0, n - 1), cfg.edge_params);
  double worst_old_edge = 0.0;
  for (int step = 0; step < 400; ++step) {
    s.run_for(0.5);
    for (const auto& e : topo_line(n)) {  // old edges only
      const double skew = std::fabs(s.engine().logical(e.a) - s.engine().logical(e.b));
      worst_old_edge = std::max(worst_old_edge, skew);
    }
  }
  return worst_old_edge;
}

TEST(Baselines, ShortcutInsertionHurtsMaxJumpNotAopt) {
  const int n = 12;
  const double aopt = worst_old_edge_skew_after_shortcut("aopt", n);
  const double maxjump = worst_old_edge_skew_after_shortcut("max-jump", n);
  // Max-jump concentrates the revealed skew on one old edge; AOPT keeps the
  // gradient property on edges that have been present for a long time.
  EXPECT_GT(maxjump, 2.0 * aopt)
      << "max-jump worst old-edge skew " << maxjump << " vs AOPT " << aopt;
}

TEST(Baselines, SteadyLocalSkewAoptBeatsMaxJump) {
  // Even without topology changes, max-jump's local skew is set by the M
  // wavefront staleness per hop; AOPT's by drift alone (much smaller).
  auto run = [](const std::string& algo) {
    auto cfg = comparison_config(12, algo);
    Scenario s(cfg);
    s.start();
    s.run_until(200.0);
    double worst = 0.0;
    for (int step = 0; step < 200; ++step) {
      s.run_for(1.0);
      worst = std::max(worst, measure_skew(s.engine()).worst_local);
    }
    return worst;
  };
  const double aopt = run("aopt");
  const double maxjump = run("max-jump");
  EXPECT_LT(aopt, maxjump)
      << "AOPT local skew " << aopt << " should beat max-jump " << maxjump;
}

TEST(Baselines, FreeRunningHasNoBoundedGlobalSkew) {
  Scenario s(comparison_config(10, "free-running"));
  s.start();
  s.run_until(500.0);
  const double g500 = s.engine().true_global_skew();
  s.run_until(1500.0);
  const double g1500 = s.engine().true_global_skew();
  EXPECT_GT(g1500, 2.5 * g500);  // grows linearly with time
}

}  // namespace
}  // namespace gcs
