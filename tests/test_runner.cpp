// Tests for the scenario assembly layer (src/runner).
#include <gtest/gtest.h>

#include <cmath>

#include "runner/scenario.h"

namespace gcs {
namespace {

TEST(ScenarioConfigTest, RejectsInvalidAlgoParams) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.initial_edges = topo_line(4);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 0.05;
  cfg.aopt.mu = 0.05;  // mu <= 2rho/(1-rho): invalid
  EXPECT_THROW(Scenario{cfg}, std::runtime_error);
}

TEST(ScenarioConfigTest, RejectsBadEdgeParams) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.initial_edges = topo_line(4);
  cfg.edge_params.eps = -1.0;
  EXPECT_THROW(Scenario{cfg}, std::runtime_error);
}

TEST(ScenarioConfigTest, RejectsReferenceNodeOutOfRange) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.initial_edges = topo_line(4);
  cfg.edge_params = default_edge_params();
  cfg.aopt.mu = 0.1;
  cfg.reference_node = 9;
  EXPECT_THROW(Scenario{cfg}, std::runtime_error);
}

TEST(ScenarioTest, StartTwiceThrows) {
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.initial_edges = topo_line(3);
  cfg.edge_params = default_edge_params();
  Scenario s(cfg);
  s.start();
  EXPECT_THROW(s.start(), std::runtime_error);
}

TEST(ScenarioTest, AoptAccessorRejectsBaselines) {
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.initial_edges = topo_line(3);
  cfg.edge_params = default_edge_params();
  cfg.algo = AlgoKind::kMaxJump;
  Scenario s(cfg);
  s.start();
  EXPECT_THROW(s.aopt(0), std::runtime_error);
}

TEST(ScenarioTest, AllAlgoKindsRunAllEstimateKinds) {
  for (AlgoKind algo : {AlgoKind::kAopt, AlgoKind::kMaxJump,
                        AlgoKind::kBoundedRateMax, AlgoKind::kFreeRunning}) {
    for (EstimateKind est :
         {EstimateKind::kOracleZero, EstimateKind::kOracleUniform,
          EstimateKind::kOracleAdversarial, EstimateKind::kBeacon}) {
      ScenarioConfig cfg;
      cfg.n = 4;
      cfg.initial_edges = topo_ring(4);
      cfg.edge_params = default_edge_params();
      cfg.algo = algo;
      cfg.estimates = est;
      Scenario s(cfg);
      s.start();
      s.run_until(20.0);
      for (NodeId u = 0; u < 4; ++u) {
        EXPECT_GT(s.engine().logical(u), 18.0) << to_string(algo);
      }
    }
  }
}

TEST(ScenarioTest, AllDriftKindsRespectEnvelope) {
  for (DriftKind drift :
       {DriftKind::kNone, DriftKind::kLinearSpread, DriftKind::kAlternatingBlocks,
        DriftKind::kRandomWalk, DriftKind::kSinusoidal}) {
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.initial_edges = topo_line(4);
    cfg.edge_params = default_edge_params();
    cfg.drift = drift;
    cfg.aopt.rho = 2e-3;
    Scenario s(cfg);
    s.start();
    s.run_until(100.0);
    for (NodeId u = 0; u < 4; ++u) {
      const double h = s.engine().hardware(u);
      EXPECT_GE(h, 100.0 * (1.0 - cfg.aopt.rho) - 1e-6);
      EXPECT_LE(h, 100.0 * (1.0 + cfg.aopt.rho) + 1e-6);
    }
  }
}

TEST(DefaultEdgeParamsTest, ValidatesAndPopulates) {
  const auto p = default_edge_params(0.2, 0.3, 0.9, 0.4);
  EXPECT_DOUBLE_EQ(p.eps, 0.2);
  EXPECT_DOUBLE_EQ(p.tau, 0.3);
  EXPECT_DOUBLE_EQ(p.msg_delay_max, 0.9);
  EXPECT_DOUBLE_EQ(p.msg_delay_min, 0.4);
  EXPECT_DOUBLE_EQ(p.delay_uncertainty(), 0.5);
  EXPECT_THROW(default_edge_params(0.1, 0.5, 0.2, 0.4), std::runtime_error);
}

TEST(SuggestGtilde, ScalesWithTopologyExtent) {
  const auto params = default_edge_params();
  AlgoParams aopt;
  const double line8 = suggest_gtilde(8, topo_line(8), params, aopt);
  const double line32 = suggest_gtilde(32, topo_line(32), params, aopt);
  const double star32 = suggest_gtilde(32, topo_star(32), params, aopt);
  EXPECT_GT(line32, 3.0 * line8);  // linear in diameter
  EXPECT_LT(star32, line32 / 3.0);  // star has diameter 2
  EXPECT_THROW(suggest_gtilde(4, {EdgeKey(0, 1)}, params, aopt),
               std::runtime_error);  // disconnected
}

TEST(ToStringTest, AlgoKindNames) {
  EXPECT_STREQ(to_string(AlgoKind::kAopt), "AOPT");
  EXPECT_STREQ(to_string(AlgoKind::kMaxJump), "max-jump");
  EXPECT_STREQ(to_string(AlgoKind::kBoundedRateMax), "bounded-rate-max");
  EXPECT_STREQ(to_string(AlgoKind::kFreeRunning), "free-running");
}

TEST(ScenarioTest, SeedsChangeExecutionsDeterministically) {
  auto run_once = [](std::uint64_t seed) {
    ScenarioConfig cfg;
    cfg.n = 6;
    cfg.initial_edges = topo_ring(6);
    cfg.edge_params = default_edge_params();
    cfg.drift = DriftKind::kRandomWalk;
    cfg.estimates = EstimateKind::kOracleUniform;
    cfg.aopt.rho = 2e-3;
    cfg.seed = seed;
    Scenario s(cfg);
    s.start();
    s.run_until(150.0);
    double sum = 0.0;
    for (NodeId u = 0; u < 6; ++u) sum += s.engine().logical(u);
    return sum;
  };
  const double a1 = run_once(1);
  const double a2 = run_once(1);
  const double b = run_once(2);
  EXPECT_DOUBLE_EQ(a1, a2);  // bit-reproducible for equal seeds
  EXPECT_NE(a1, b);          // seed actually matters
}

TEST(ScenarioTest, InitialTopologyMayBeEmptyOfEdges) {
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.edge_params = default_edge_params();
  Scenario s(cfg);  // no initial edges at all
  s.start();
  s.run_until(30.0);
  // Free-drifting singletons; edges can still be added later.
  s.graph().create_edge(EdgeKey(0, 1), cfg.edge_params);
  s.run_until(60.0);
  EXPECT_TRUE(s.graph().both_views_present(EdgeKey(0, 1)));
}

}  // namespace
}  // namespace gcs
