#include "rt/rt_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gcs {

// -------------------------------------------------------------------- pipe

PipeHub::PipeHub(int n, TimeSource& clock, const FaultSpec& faults,
                 std::size_t ring_capacity)
    : n_(n), clock_(clock), faults_(faults) {
  require(n >= 1, "PipeHub: need n >= 1");
  const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  rings_.reserve(nn);
  rngs_.reserve(nn);
  Rng root(faults.seed ^ 0x9d1eULL);
  for (std::size_t i = 0; i < nn; ++i) {
    rings_.push_back(std::make_unique<SpscRing<WireMsg>>(ring_capacity));
    rngs_.push_back(root.fork(i));
  }
  inboxes_.resize(static_cast<std::size_t>(n));
}

bool PipeHub::push_one(const WireMsg& m) {
  if (!ring(m.from, m.to).push(m)) {
    // Ring full: backpressure means loss, exactly like a saturated NIC
    // queue. The protocol tolerates loss by design.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PipeHub::send(const WireMsg& m) {
  require(m.from >= 0 && m.from < n_ && m.to >= 0 && m.to < n_ && m.from != m.to,
          "PipeHub: bad addressing");
  Rng& rng = edge_rng(m.from, m.to);
  // Always draw the full decision tuple: the per-edge RNG stream is then a
  // pure function of the send count, so a fixed seed reproduces the same
  // fault pattern whatever the thread interleaving or fault configuration.
  const double roll_drop = rng.uniform(0.0, 1.0);
  const double roll_dup = rng.uniform(0.0, 1.0);
  const double roll_reorder = rng.uniform(0.0, 1.0);
  const double draw_delay = rng.uniform(0.0, 1.0);
  const double draw_jitter = rng.uniform(0.0, 1.0);
  if (roll_drop < faults_.drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return true;  // swallowed in flight; the sender cannot tell
  }
  WireMsg out = m;
  Duration hold = draw_jitter * faults_.jitter;
  if (roll_reorder < faults_.reorder) {
    hold += draw_delay * faults_.delay;
    delayed_.fetch_add(1, std::memory_order_relaxed);
  }
  out.deliver_at = hold > 0.0 ? clock_.now() + hold : 0.0;
  const bool ok = push_one(out);
  if (roll_dup < faults_.dup) {
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    push_one(out);
  }
  return ok;
}

bool PipeHub::poll(NodeId self, WireMsg& out) {
  require(self >= 0 && self < n_, "PipeHub: bad poll node");
  Inbox& inbox = inboxes_[static_cast<std::size_t>(self)];
  // Drain every inbound ring into the pending heap first: a freshly arrived
  // message may be due before an already-held delayed one.
  WireMsg m;
  for (NodeId from = 0; from < n_; ++from) {
    if (from == self) continue;
    while (ring(from, self).pop(m)) {
      inbox.pending.emplace(m, inbox.seq++);
    }
  }
  if (inbox.pending.empty()) return false;
  const auto& head = inbox.pending.top();
  if (head.first.deliver_at > clock_.now()) return false;  // held back (fault delay)
  out = head.first;
  inbox.pending.pop();
  return true;
}

// --------------------------------------------------------------------- udp

UdpTransport::UdpTransport(int n, NodeId self, std::uint16_t base_port)
    : n_(n), self_(self), base_port_(base_port) {
  require(n >= 1 && self >= 0 && self < n, "UdpTransport: bad node");
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  require(fd_ >= 0, "UdpTransport: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port + self));
  const int rc = ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    ::close(fd_);
    fd_ = -1;
    require(false, "UdpTransport: bind(127.0.0.1:" +
                       std::to_string(base_port + self) + ") failed: " +
                       std::strerror(errno));
  }
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpTransport::send(const WireMsg& m) {
  require(m.to >= 0 && m.to < n_ && m.to != self_, "UdpTransport: bad addressing");
  std::uint8_t buf[kWireMax];
  const std::size_t len = wire_encode(m, buf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port_ + m.to));
  const ssize_t rc = ::sendto(fd_, buf, len, 0,
                              reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != static_cast<ssize_t>(len)) return false;  // EWOULDBLOCK etc: a drop
  ++sent_;
  return true;
}

bool UdpTransport::poll(NodeId self, WireMsg& out) {
  require(self == self_, "UdpTransport: instance serves one node");
  std::uint8_t buf[kWireMax];
  for (;;) {
    const ssize_t rc = ::recvfrom(fd_, buf, sizeof(buf), 0, nullptr, nullptr);
    if (rc < 0) return false;  // EWOULDBLOCK: nothing ready
    if (wire_decode(buf, static_cast<std::size_t>(rc), out)) {
      ++received_;
      return true;
    }
    // Undecodable datagram (foreign sender, truncation): skip and keep
    // draining — the socket is ours alone, so this is defensive only.
  }
}

}  // namespace gcs
