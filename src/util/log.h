// Tiny leveled logger. Off by default above WARN to keep benches quiet;
// tests and examples can raise verbosity.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace gcs {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style one-shot log statement: LogLine(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  ~LogLine() {
    if (enabled_) detail::log_emit(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

#define GCS_LOG(level) ::gcs::LogLine(level)
#define GCS_TRACE ::gcs::LogLine(::gcs::LogLevel::kTrace)
#define GCS_DEBUG ::gcs::LogLine(::gcs::LogLevel::kDebug)
#define GCS_INFO ::gcs::LogLine(::gcs::LogLevel::kInfo)
#define GCS_WARN ::gcs::LogLine(::gcs::LogLevel::kWarn)
#define GCS_ERROR ::gcs::LogLine(::gcs::LogLevel::kError)

}  // namespace gcs
