#include "runner/sweep.h"

#include <chrono>
#include <deque>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <utility>

#include "metrics/legality.h"
#include "metrics/skew.h"
#include "util/csv.h"

namespace gcs {

Sweep& Sweep::axis(const std::string& key, std::vector<std::string> values) {
  require(!values.empty(), "Sweep: axis '" + key + "' has no values");
  for (const auto& existing : axes_) {
    require(existing.key != key, "Sweep: duplicate axis '" + key + "'");
  }
  axes_.push_back(Axis{key, std::move(values)});
  return *this;
}

Sweep& Sweep::axis(const std::string& key, const std::vector<int>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (int v : values) out.push_back(std::to_string(v));
  return axis(key, std::move(out));
}

Sweep& Sweep::axis(const std::string& key, const std::vector<double>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(ParamMap::format(v));
  return axis(key, std::move(out));
}

Sweep& Sweep::seeds(const std::vector<std::uint64_t>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (std::uint64_t v : values) out.push_back(std::to_string(v));
  return axis("seed", std::move(out));
}

std::size_t Sweep::size() const {
  std::size_t total = 1;
  for (const auto& a : axes_) total *= a.values.size();
  return total;
}

std::vector<Sweep::Expanded> Sweep::expand() const {
  std::vector<Expanded> grid;
  grid.reserve(size());
  std::vector<std::size_t> cursor(axes_.size(), 0);
  while (true) {
    Expanded e{base_, {}};
    for (std::size_t i = 0; i < axes_.size(); ++i) {
      const std::string& value = axes_[i].values[cursor[i]];
      e.spec.set(axes_[i].key, value);
      e.axes[axes_[i].key] = value;
    }
    grid.push_back(std::move(e));
    if (axes_.empty()) return grid;
    // Odometer increment, last axis fastest.
    std::size_t i = axes_.size();
    bool carried_out = true;
    while (i > 0) {
      --i;
      if (++cursor[i] < axes_[i].values.size()) {
        carried_out = false;
        break;
      }
      cursor[i] = 0;
    }
    if (carried_out) return grid;
  }
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options), run_fn_(default_run_fn(options)) {}

SweepRunner::RunFn SweepRunner::default_run_fn(const SweepOptions& options) {
  return [options](Scenario& s, RunResult& r) {
    s.start();
    double max_global = 0.0;
    double max_local = 0.0;
    double last_global = 0.0;
    double last_local = 0.0;
    Time t = 0.0;
    while (t < options.horizon) {
      t = std::min(t + options.sample_period, options.horizon);
      s.run_until(t);
      const auto snap = measure_skew(s.engine());
      last_global = snap.global;
      last_local = snap.worst_local;
      max_global = std::max(max_global, snap.global);
      max_local = std::max(max_local, snap.worst_local);
    }
    r.final_global = last_global;
    r.final_local = last_local;
    r.max_global = max_global;
    r.max_local = max_local;
    if (options.check_legality) {
      const auto report =
          check_legality(s.engine(), s.spec().aopt.gtilde_static, options.level_cap);
      r.legal = report.legal();
      r.legality_margin = report.worst_margin;
    }
  };
}

namespace {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kShardAlign = std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kShardAlign = 64;
#endif

/// One worker's shard: its slice of the grid plus everything it writes while
/// running. Cache-line aligned and padded so neighboring workers never share
/// a line; the mutex only guards the deque (stealing), never the results.
struct alignas(kShardAlign) Shard {
  std::mutex mutex;
  std::deque<int> pending;             ///< run indices; owner pops front, thieves pop back
  std::vector<std::pair<int, RunResult>> done;  ///< (run index, result), owner-only
};

}  // namespace

std::vector<RunResult> SweepRunner::run(const Sweep& sweep) const {
  // Touch every registry once so lazy bootstrap happens before workers race.
  sweep.base().validate();

  const std::vector<Sweep::Expanded> grid = sweep.expand();
  const int thread_count =
      std::max(1, std::min<int>(options_.threads, static_cast<int>(grid.size())));

  // Block-partition the grid into one shard per worker: contiguous index
  // ranges keep neighboring (usually similar-cost) runs on one worker and
  // make the no-steal case equivalent to a static partition.
  std::vector<Shard> shards(static_cast<std::size_t>(thread_count));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    shards[i * static_cast<std::size_t>(thread_count) / grid.size()]
        .pending.push_back(static_cast<int>(i));
  }

  const auto execute_run = [&](int i, RunResult& r) {
    const auto& cell = grid[static_cast<std::size_t>(i)];
    r.index = i;
    r.name = cell.spec.name;
    r.axes = cell.axes;
    r.seed = cell.spec.seed;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      ScenarioSpec spec = cell.spec;
      if (spec_fn_) spec_fn_(spec);  // derive correlated parameters per cell
      // Constructed HERE, on the owning worker's thread: the scenario's
      // arenas and RNG streams are first-touch local to this worker (and on
      // NUMA machines, to its node); the per-run seed comes from the spec,
      // so streams are identical no matter which worker runs the index.
      Scenario scenario(spec);
      r.n = scenario.spec().n;
      run_fn_(scenario, r);
      r.events = scenario.sim().fired_count();
      if (scenario.adversary() != nullptr) {
        r.adversary_ops = scenario.adversary()->operations();
      }
    } catch (const std::exception& e) {
      r.error = e.what();
    } catch (...) {
      r.error = "unknown exception";
    }
    r.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  const auto worker = [&](std::size_t me) {
    Shard& own = shards[me];
    for (;;) {
      int i = -1;
      {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.pending.empty()) {
          i = own.pending.front();  // owner end
          own.pending.pop_front();
        }
      }
      if (i < 0) {
        // Own shard dry: steal from the BACK of the fullest remaining shard
        // (the end its owner will reach last, minimizing contention).
        std::size_t victim = shards.size();
        std::size_t best = 0;
        for (std::size_t s = 0; s < shards.size(); ++s) {
          if (s == me) continue;
          std::lock_guard<std::mutex> lock(shards[s].mutex);
          if (shards[s].pending.size() > best) {
            best = shards[s].pending.size();
            victim = s;
          }
        }
        if (victim == shards.size()) return;  // everything everywhere is done
        std::lock_guard<std::mutex> lock(shards[victim].mutex);
        if (shards[victim].pending.empty()) continue;  // raced; rescan
        i = shards[victim].pending.back();  // thief end
        shards[victim].pending.pop_back();
      }
      RunResult r;
      execute_run(i, r);
      own.done.emplace_back(i, std::move(r));  // owner-local, no lock needed
    }
  };

  if (thread_count <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(thread_count));
    for (int t = 0; t < thread_count; ++t) {
      pool.emplace_back(worker, static_cast<std::size_t>(t));
    }
    for (auto& th : pool) th.join();
  }

  // Deterministic merge: scatter every shard's results into grid order by
  // run index. Which worker ran an index never matters to the caller.
  std::vector<RunResult> results(grid.size());
  for (Shard& s : shards) {
    for (auto& [i, r] : s.done) {
      results[static_cast<std::size_t>(i)] = std::move(r);
    }
  }
  return results;
}

namespace {

/// Union of custom-value keys over all results, sorted.
std::vector<std::string> value_columns(const std::vector<RunResult>& results) {
  std::set<std::string> keys;
  for (const auto& r : results) {
    for (const auto& [k, v] : r.values) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

std::vector<std::string> axis_columns(const std::vector<RunResult>& results) {
  std::set<std::string> keys;
  for (const auto& r : results) {
    for (const auto& [k, v] : r.axes) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

}  // namespace

Table SweepRunner::to_table(const std::vector<RunResult>& results,
                            const std::string& title) {
  const auto axes = axis_columns(results);
  const auto extras = value_columns(results);
  Table table(title);
  std::vector<std::string> headers;
  for (const auto& a : axes) headers.push_back(a);
  headers.insert(headers.end(), {"n", "G final", "G max", "local final", "local max",
                                 "legal", "events", "wall s"});
  for (const auto& e : extras) headers.push_back(e);
  headers.push_back("error");
  table.headers(headers);
  for (const auto& r : results) {
    auto& row = table.row();
    for (const auto& a : axes) {
      const auto it = r.axes.find(a);
      row.cell(it == r.axes.end() ? std::string("-") : it->second);
    }
    row.cell(r.n)
        .cell(r.final_global)
        .cell(r.max_global)
        .cell(r.final_local)
        .cell(r.max_local)
        .cell(r.legal)
        .cell(static_cast<long long>(r.events))
        .cell(r.wall_seconds, 2);
    for (const auto& e : extras) {
      const auto it = r.values.find(e);
      if (it == r.values.end()) {
        row.cell("-");
      } else {
        row.cell(it->second);
      }
    }
    row.cell(r.error.empty() ? "-" : r.error);
  }
  return table;
}

void SweepRunner::write_csv(const std::vector<RunResult>& results,
                            const std::string& path, bool include_wall) {
  const auto axes = axis_columns(results);
  const auto extras = value_columns(results);
  CsvWriter csv(path);
  std::vector<std::string> headers{"index", "name", "seed"};
  for (const auto& a : axes) headers.push_back("axis_" + a);
  headers.insert(headers.end(),
                 {"n", "final_global", "max_global", "final_local", "max_local",
                  "legal", "legality_margin", "events", "adversary_ops"});
  if (include_wall) headers.push_back("wall_seconds");
  for (const auto& e : extras) headers.push_back(e);
  headers.push_back("error");
  csv.row(headers);
  for (const auto& r : results) {
    csv.field(r.index).field(r.name).field(static_cast<long long>(r.seed));
    for (const auto& a : axes) {
      const auto it = r.axes.find(a);
      csv.field(it == r.axes.end() ? std::string() : it->second);
    }
    csv.field(r.n)
        .field(r.final_global)
        .field(r.max_global)
        .field(r.final_local)
        .field(r.max_local)
        .field(r.legal ? 1 : 0)
        .field(r.legality_margin)
        .field(static_cast<long long>(r.events))
        .field(r.adversary_ops);
    if (include_wall) csv.field(r.wall_seconds);
    for (const auto& e : extras) {
      const auto it = r.values.find(e);
      if (it == r.values.end()) {
        csv.field(std::string());
      } else {
        csv.field(it->second);
      }
    }
    csv.field(r.error).endrow();
  }
}

}  // namespace gcs
