#include "rt/rt_cluster.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "graph/topology.h"
#include "metrics/skew.h"
#include "util/csv.h"

namespace gcs {

namespace {

/// Resolve the topology exactly as Scenario's constructor will (same seed,
/// same registry, same RNG stream), so the hub can be sized before any
/// replica exists. Every replica then re-derives the identical edge list.
TopologyResult resolve_topology(const ScenarioSpec& spec) {
  Rng topo_rng(spec.seed);
  TopologyArgs targs{spec.n, topo_rng, &spec.explicit_edges};
  const auto& entry = topology_registry().get(spec.topology.kind);
  TopologyResult topo = entry.factory(spec.topology.params, targs);
  require(topo.n >= 1, "RtCluster: topology produced n < 1");
  return topo;
}

}  // namespace

RtCluster::RtCluster(const ScenarioSpec& spec, TimeSource& clock,
                     const FaultSpec& faults, std::size_t ring_capacity,
                     RtBackend backend, std::uint16_t base_port)
    : clock_(clock), backend_(backend) {
  TopologyResult topo = resolve_topology(spec);
  edges_ = std::move(topo.edges);
  if (backend_ == RtBackend::kPipe) {
    hub_ = std::make_unique<PipeHub>(topo.n, clock, faults, ring_capacity);
  } else if (backend_ == RtBackend::kUdp) {
    udp_.reserve(static_cast<std::size_t>(topo.n));
    for (NodeId u = 0; u < topo.n; ++u) {
      udp_.push_back(std::make_unique<UdpTransport>(topo.n, u, base_port,
                                                    &clock, faults.seed));
    }
  } else {
    tcp_.reserve(static_cast<std::size_t>(topo.n));
    for (NodeId u = 0; u < topo.n; ++u) {
      tcp_.push_back(std::make_unique<TcpTransport>(topo.n, u, base_port,
                                                    clock, faults.seed));
    }
  }
  nodes_.reserve(static_cast<std::size_t>(topo.n));
  for (NodeId u = 0; u < topo.n; ++u) {
    nodes_.push_back(std::make_unique<RtNode>(spec, u, transport_of(u), clock));
  }
  samples_.resize(nodes_.size());
}

RtTransport& RtCluster::transport_of(NodeId u) {
  if (backend_ == RtBackend::kPipe) return *hub_;
  if (backend_ == RtBackend::kUdp) return *udp_[static_cast<std::size_t>(u)];
  return *tcp_[static_cast<std::size_t>(u)];
}

void RtCluster::enable_detector(const DetectorConfig& config) {
  require(!started_, "RtCluster: enable_detector() after start()");
  for (auto& node : nodes_) node->enable_detector(config);
}

void RtCluster::arm_chaos(const ChaosScript& script) {
  require(!chaos_, "RtCluster: chaos already armed");
  script.validate(size());
  chaos_.emplace(script, *this);
}

void RtCluster::start() {
  require(!started_, "RtCluster: start() called twice");
  started_ = true;
  for (auto& node : nodes_) node->start();
}

void RtCluster::chaos_crash(NodeId u) {
  node(u).request_crash();
}

void RtCluster::chaos_restart(NodeId u) {
  node(u).request_restart();
}

void RtCluster::chaos_link(NodeId from, NodeId to, const LinkFault& f) {
  if (backend_ == RtBackend::kPipe) {
    hub_->set_link_fault(from, to, f);
  } else {
    // Only the sender's transport owns the outbound slot; the scheduler
    // calls this once per direction, so forwarding to the owner suffices.
    transport_of(from).set_link_fault(from, to, f);
  }
}

void RtCluster::chaos_conn_reset(NodeId a, NodeId b) {
  // Only the stream backend has connections to reset; over pipes and UDP
  // the op is a no-op by design (the grammar stays backend-agnostic).
  if (backend_ != RtBackend::kTcp) return;
  // Each side owns its outbound connection; resetting both covers the link.
  tcp_[static_cast<std::size_t>(a)]->request_reset(b);
  tcp_[static_cast<std::size_t>(b)]->request_reset(a);
}

std::uint64_t RtCluster::total_corrupted() const {
  switch (backend_) {
    case RtBackend::kPipe: return hub_->corrupted();
    case RtBackend::kUdp: {
      std::uint64_t sum = 0;
      for (const auto& t : udp_) sum += t->corrupted();
      return sum;
    }
    case RtBackend::kTcp: {
      std::uint64_t sum = 0;
      for (const auto& t : tcp_) sum += t->corrupted();
      return sum;
    }
  }
  return 0;
}

std::uint64_t RtCluster::total_rejected() const {
  switch (backend_) {
    case RtBackend::kPipe: return hub_->rejected();
    case RtBackend::kUdp: {
      std::uint64_t sum = 0;
      for (const auto& t : udp_) sum += t->rejected();
      return sum;
    }
    case RtBackend::kTcp: {
      std::uint64_t sum = 0;
      for (const auto& t : tcp_) sum += t->rejected();
      return sum;
    }
  }
  return 0;
}

void RtCluster::schedule_samples(Time horizon, Duration period) {
  require(started_, "RtCluster: schedule_samples() before start()");
  require(period > 0.0, "RtCluster: sample period must be positive");
  const int count = static_cast<int>(std::floor(horizon / period + 1e-9));
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    samples_[u].clear();
    samples_[u].reserve(static_cast<std::size_t>(count));
    RtNode* node = nodes_[u].get();
    std::vector<RtSample>* out = &samples_[u];
    for (int k = 1; k <= count; ++k) {
      const Time t = static_cast<Time>(k) * period;
      node->at(t, [node, out, t] {
        out->push_back(RtSample{t, node->logical(), node->hardware(),
                                node->sampling_live()});
      });
    }
  }
}

void RtCluster::run_lockstep(VirtualClock& vclock, Time horizon, Duration step) {
  require(started_, "RtCluster: run before start()");
  require(step > 0.0, "RtCluster: step must be positive");
  // A fixed number of round-robin sub-rounds per increment bounds message
  // latency at one step while letting multi-leg exchanges (probe → response
  // → estimate consumption) complete within the same model instant.
  constexpr int kRounds = 4;
  for (Time t = step; t < horizon + step * 0.5; t += step) {
    vclock.advance_to(std::min(t, horizon));
    // Chaos ops land at step boundaries, before any node pumps: the whole
    // run is then a pure function of (spec, faults, script).
    if (chaos_) chaos_->poll(vclock.now());
    for (int round = 0; round < kRounds; ++round) {
      for (auto& node : nodes_) node->pump();
    }
  }
}

void RtCluster::run_threads(Time horizon, Duration poll_interval) {
  require(started_, "RtCluster: run before start()");
  require(poll_interval > 0.0, "RtCluster: poll interval must be positive");
  std::atomic<bool> stop{false};
  std::thread chaos_thread;
  if (chaos_) {
    ChaosScheduler* sched = &*chaos_;
    TimeSource* clock = &clock_;
    chaos_thread = std::thread([sched, clock, &stop, poll_interval] {
      while (!stop.load(std::memory_order_acquire)) {
        sched->poll(clock->now());
        if (sched->done()) return;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(poll_interval));
      }
    });
  }
  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (auto& node_ptr : nodes_) {
    RtNode* node = node_ptr.get();
    threads.emplace_back([node, horizon, poll_interval] {
      while (node->pump() < horizon) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(poll_interval));
      }
      // One last drain so frames sent by slower peers near the horizon are
      // still consumed (their senders may reach the horizon after us).
      node->pump();
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  if (chaos_thread.joinable()) chaos_thread.join();
}

void RtCluster::drain(int rounds) {
  require(started_, "RtCluster: drain before start()");
  for (int round = 0; round < rounds; ++round) {
    for (auto& node : nodes_) node->pump();
  }
}

std::vector<RtCluster::JoinedSample> RtCluster::join_edge(const EdgeKey& e) const {
  const auto& sa = samples_[static_cast<std::size_t>(e.a)];
  const auto& sb = samples_[static_cast<std::size_t>(e.b)];
  const std::size_t count = std::min(sa.size(), sb.size());
  std::vector<JoinedSample> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    out.push_back(JoinedSample{sa[k].t, std::abs(sa[k].logical - sb[k].logical),
                               sa[k].live && sb[k].live});
  }
  return out;
}

TimeSeries RtCluster::edge_skew_series(const EdgeKey& e) const {
  TimeSeries series;
  for (const JoinedSample& s : join_edge(e)) series.add(s.t, s.skew);
  return series;
}

RtEdgeReport RtCluster::summarize(const EdgeKey& e, Time begin, Time end,
                                  bool live_only) {
  RtEdgeReport r;
  r.edge = e;
  Engine& engine = node(e.a).engine();
  const AlgoParams& params = nodes_.front()->scenario().spec().aopt;
  r.eps = engine.edge_eps(e);
  r.kappa = engine.metric_kappa(e);
  r.bound = gradient_bound(r.kappa, params.gtilde_static, params.sigma());
  double sum = 0.0;
  for (const JoinedSample& s : join_edge(e)) {
    if (s.t < begin || s.t >= end) continue;
    if (live_only && !s.live) continue;
    r.max_abs_skew = std::max(r.max_abs_skew, s.skew);
    sum += s.skew;
    ++r.samples;
  }
  r.mean_abs_skew = r.samples > 0 ? sum / r.samples : 0.0;
  return r;
}

std::vector<RtEdgeReport> RtCluster::edge_report(int warmup_samples) {
  std::vector<RtEdgeReport> reports;
  reports.reserve(edges_.size());
  for (const EdgeKey& e : edges_) {
    // Warmup is expressed in grid points; convert to a time cut using the
    // joined series' own grid (uniform by construction).
    const auto joined = join_edge(e);
    const std::size_t w = static_cast<std::size_t>(std::max(warmup_samples, 0));
    Time begin = 0.0;
    if (w > 0) begin = w <= joined.size() ? joined[w - 1].t + 1e-12 : kTimeInf;
    reports.push_back(summarize(e, begin, kTimeInf, /*live_only=*/true));
  }
  return reports;
}

std::vector<RtEdgeReport> RtCluster::edge_report_window(Time begin, Time end) {
  std::vector<RtEdgeReport> reports;
  reports.reserve(edges_.size());
  for (const EdgeKey& e : edges_) {
    reports.push_back(summarize(e, begin, end, /*live_only=*/true));
  }
  return reports;
}

void RtCluster::write_skew_csv(const std::string& path, int warmup_samples) {
  CsvWriter csv(path);
  csv.row({"t", "a", "b", "skew", "eps", "kappa", "bound", "live"});
  for (const EdgeKey& e : edges_) {
    Engine& engine = node(e.a).engine();
    const double eps = engine.edge_eps(e);
    const double kappa = engine.metric_kappa(e);
    const double bound =
        gradient_bound(kappa, nodes_.front()->scenario().spec().aopt.gtilde_static,
                       nodes_.front()->scenario().spec().aopt.sigma());
    const auto joined = join_edge(e);
    for (std::size_t k = static_cast<std::size_t>(warmup_samples);
         k < joined.size(); ++k) {
      csv.field(joined[k].t)
          .field(e.a)
          .field(e.b)
          .field(joined[k].skew)
          .field(eps)
          .field(kappa)
          .field(bound)
          .field(joined[k].live ? 1 : 0)
          .endrow();
    }
  }
}

}  // namespace gcs
