#include "metrics/recorder.h"

#include <algorithm>

namespace gcs {

double TimeSeries::max_in(Time from, Time to) const {
  double best = -kTimeInf;
  for (const auto& [t, v] : points_) {
    if (t >= from && t <= to) best = std::max(best, v);
  }
  return best;
}

Time TimeSeries::first_below(double threshold, Time from) const {
  for (const auto& [t, v] : points_) {
    if (t >= from && v <= threshold) return t;
  }
  return kTimeInf;
}

void PeriodicSampler::start(Duration phase) {
  require(!running_, "PeriodicSampler: already running");
  running_ = true;
  event_ = sim_.schedule_after(phase, [this] { tick(); });
}

void PeriodicSampler::stop() {
  if (!running_) return;
  running_ = false;
  if (event_.valid()) sim_.cancel(event_);
  event_ = EventId{};
}

void PeriodicSampler::tick() {
  probe_(sim_.now());
  if (!running_) return;  // probe may have called stop()
  event_ = sim_.schedule_after(period_, [this] { tick(); });
}

}  // namespace gcs
