// ScenarioSpec: a fully string-serializable description of a scenario.
//
// Every pluggable dimension is a ComponentSpec — a registry key plus a
// key=value ParamMap — so one parsing/validation path serves the CLI
// (--drift=walk:period=5), the benches, the tests and the sweep runner's
// axes. Typed model parameters (AlgoParams, EdgeParams, EngineConfig)
// stay as structs but are addressable through the same `set(key, value)`
// path ("mu", "eps", "tick_period", ...).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/params.h"
#include "graph/dynamic_graph.h"
#include "graph/edge_params.h"
#include "net/transport.h"
#include "util/common.h"
#include "util/flags.h"
#include "util/registry.h"

namespace gcs {

/// One pluggable component: registry key + parameters.
struct ComponentSpec {
  std::string kind;
  ParamMap params;

  ComponentSpec() = default;
  ComponentSpec(const char* kind_in) : kind(kind_in) {}  // NOLINT(google-explicit-constructor)
  ComponentSpec(std::string kind_in) : kind(std::move(kind_in)) {}  // NOLINT
  ComponentSpec(std::string kind_in, ParamMap params_in)
      : kind(std::move(kind_in)), params(std::move(params_in)) {}

  /// Parse "kind" or "kind:key=value,key=value".
  static ComponentSpec parse(const std::string& text);

  /// Inverse of parse().
  [[nodiscard]] std::string str() const;

  friend bool operator==(const ComponentSpec& a, const ComponentSpec& b) {
    return a.kind == b.kind && a.params.all() == b.params.all();
  }
};

/// The complete description of a run. Value-semantic and cheap to copy —
/// the sweep runner clones and mutates it per grid point.
struct ScenarioSpec {
  std::string name = "scenario";
  int n = 8;  ///< node count; topologies sized by their own params override it
  std::uint64_t seed = 1;

  ComponentSpec topology{"explicit"};  ///< "explicit" reads `explicit_edges`
  ComponentSpec algo{"aopt"};
  ComponentSpec drift{"spread"};
  ComponentSpec estimates{"uniform"};
  ComponentSpec gskew{"static"};
  ComponentSpec adversary{"none"};

  /// Edge list for the "explicit" topology (programmatic construction).
  std::vector<EdgeKey> explicit_edges;

  AlgoParams aopt;
  EdgeParams edge_params;
  EngineConfig engine;
  DetectionDelayMode detection = DetectionDelayMode::kUniform;
  DelayMode delays = DelayMode::kUniform;

  /// §3 remark: boost this node so it always carries the maximum clock.
  NodeId reference_node = kNoNode;

  /// Island-parallel execution (src/runner/island_runner): 0 = off (serial),
  /// -1 = auto (pick a worker count from the hardware), N >= 1 = exactly N
  /// island shards. Scenarios whose spec is not island-decomposable (see
  /// plan_islands) silently fall back to the serial engine — trajectories
  /// are identical either way, this only selects the execution strategy.
  int islands = 0;

  /// Max cross-island edges the partitioner may leave (-1 = default of n).
  int island_budget = -1;

  /// Derive G̃ from the built topology via suggest_gtilde() instead of
  /// using aopt.gtilde_static (set by "gtilde=auto" / "gtilde=0").
  bool gtilde_auto = false;

  // ------------------------------------------------------------- mutation

  /// THE shared parsing path: apply one key=value assignment. Accepts
  /// component keys ("drift=walk:period=5"), dotted component params
  /// ("drift.period=5"), model scalars ("mu=0.1", "eps=0.05"), engine knobs
  /// ("beacon_period=0.5") and legacy CLI aliases ("rows", "blocks", ...).
  /// Throws on unknown keys or malformed values.
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value) { set(key, ParamMap::format(value)); }
  void set(const std::string& key, int value) { set(key, std::to_string(value)); }

  /// Build a spec by applying every --key=value flag (minus `reserved`
  /// runner-level keys such as horizon/trace) to a default spec.
  static ScenarioSpec from_flags(const Flags& flags,
                                 const std::vector<std::string>& reserved = {});

  /// Serialize to key=value pairs; set()-ing them onto a default spec
  /// reproduces this spec (explicit_edges excepted — they are programmatic).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> to_kv() const;

  /// One-line rendering of to_kv() for logs and tables.
  [[nodiscard]] std::string str() const;

  /// Resolve every component against its registry (unknown kinds/params
  /// throw) and check the model constraints. Called by Scenario; call it
  /// directly to fail fast before a sweep.
  void validate() const;

  /// The keys set() accepts, for usage messages (one per line).
  static std::string key_help();
};

}  // namespace gcs
