#include "core/params.h"

#include <cmath>
#include <sstream>

namespace gcs {

const char* to_string(InsertionPolicy policy) {
  switch (policy) {
    case InsertionPolicy::kStagedStatic: return "staged-static";
    case InsertionPolicy::kStagedDynamic: return "staged-dynamic";
    case InsertionPolicy::kImmediate: return "immediate";
    case InsertionPolicy::kWeightDecay: return "weight-decay";
  }
  return "?";
}

std::string ValidationResult::str() const {
  std::ostringstream out;
  for (const auto& e : errors) out << "error: " << e << "\n";
  for (const auto& w : warnings) out << "warning: " << w << "\n";
  return out.str();
}

double AlgoParams::insertion_duration_static(double gtilde) const {
  // eq. (10): I(G̃) = (20(1+µ)/(1−ρ) + 56µ + (8+56µ)/σ) · G̃/µ
  const double s = sigma();
  return (20.0 * (1.0 + mu) / (1.0 - rho) + 56.0 * mu + (8.0 + 56.0 * mu) / s) *
         gtilde / mu;
}

double AlgoParams::insertion_duration_dynamic(double gtilde, double msg_delay_max,
                                              double tau) const {
  // Lemma 7.1 proof form: ℓ_e = ⌈log₂(G̃_e/µ + T_e + τ_e)⌉, I_e = B·2^{3+ℓ_e}.
  const double arg = gtilde / mu + msg_delay_max + tau;
  require(arg > 0.0, "insertion_duration_dynamic: non-positive argument");
  const double ell = std::ceil(std::log2(arg));
  return B * std::exp2(3.0 + ell);
}

double AlgoParams::handshake_delta(const EdgeParams& e) const {
  // Listing 1 line 1: ∆ = (1+ρ)(1+µ)(T+τ)/(1−ρ) + τ
  return (1.0 + rho) * (1.0 + mu) * (e.msg_delay_max + e.tau) / (1.0 - rho) + e.tau;
}

EdgeConstants AlgoParams::edge_constants(const EdgeParams& e) const {
  EdgeConstants c;
  const double base = 4.0 * (e.eps + mu * e.tau);
  c.kappa = base * (1.0 + kappa_slack);
  const double delta_room = c.kappa / 2.0 - 2.0 * e.eps - 2.0 * mu * e.tau;
  c.delta = delta_frac * delta_room;
  return c;
}

ValidationResult AlgoParams::validate() const {
  ValidationResult r;
  if (!(rho > 0.0 && rho < 1.0)) r.errors.push_back("rho must be in (0,1)");
  if (!(mu > 0.0)) r.errors.push_back("mu must be positive");
  if (rho > 0.0 && rho < 1.0) {
    const double mu_min = 2.0 * rho / (1.0 - rho);
    if (mu <= mu_min) {
      r.errors.push_back("mu must exceed 2*rho/(1-rho) so that sigma > 1 (eq. 8)");
    }
  }
  if (mu > 0.1) {
    r.warnings.push_back("mu > 1/10 violates eq. (7); the §5 analysis constants "
                         "no longer apply");
  }
  if (!(iota > 0.0)) r.errors.push_back("iota must be positive (Def. 4.4)");
  if (!(kappa_slack > 0.0)) r.errors.push_back("kappa_slack must be positive (eq. 9 is strict)");
  if (!(delta_frac > 0.0 && delta_frac < 1.0)) {
    r.errors.push_back("delta_frac must be in (0,1) (Def. 4.6 constraint is an open interval)");
  }
  if (!(gtilde_static > 0.0)) r.errors.push_back("gtilde_static must be positive");
  if (r.errors.empty() && sigma() < 3.0) {
    r.warnings.push_back("sigma < 3: outside the regime assumed by Lemma 5.20 "
                         "(any sigma > 1 works with adjusted insertion times)");
  }
  if (insertion == InsertionPolicy::kStagedDynamic) {
    const double b_min = 320.0 * 128.0 / ((1.0 - rho) * (1.0 - rho));
    const double b_max = mu / (2.0 * rho);
    if (B < b_min || B > b_max) {
      std::ostringstream msg;
      msg << "B=" << B << " outside eq. (12) range [" << b_min << ", " << b_max
          << "]; Lemma 7.1 separation constants are not guaranteed";
      r.warnings.push_back(msg.str());
    }
  }
  if (level_cap < 1) r.errors.push_back("level_cap must be >= 1");
  return r;
}

ValidationResult AlgoParams::validate_edge(const EdgeParams& e) const {
  ValidationResult r;
  const EdgeConstants c = edge_constants(e);
  if (!(c.kappa > 4.0 * (e.eps + mu * e.tau))) {
    r.errors.push_back("kappa violates eq. (9): kappa > 4(eps + mu*tau) required");
  }
  const double delta_room = c.kappa / 2.0 - 2.0 * e.eps - 2.0 * mu * e.tau;
  if (!(c.delta > 0.0 && c.delta < delta_room)) {
    r.errors.push_back("delta outside (0, kappa/2 - 2eps - 2mu*tau)");
  }
  if (iota >= c.kappa / 4.0) {
    r.warnings.push_back("iota is large relative to kappa; trigger separation is thin");
  }
  return r;
}

}  // namespace gcs
