#include "runner/sweep.h"

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "metrics/legality.h"
#include "metrics/skew.h"
#include "util/csv.h"

namespace gcs {

Sweep& Sweep::axis(const std::string& key, std::vector<std::string> values) {
  require(!values.empty(), "Sweep: axis '" + key + "' has no values");
  for (const auto& existing : axes_) {
    require(existing.key != key, "Sweep: duplicate axis '" + key + "'");
  }
  axes_.push_back(Axis{key, std::move(values)});
  return *this;
}

Sweep& Sweep::axis(const std::string& key, const std::vector<int>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (int v : values) out.push_back(std::to_string(v));
  return axis(key, std::move(out));
}

Sweep& Sweep::axis(const std::string& key, const std::vector<double>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(ParamMap::format(v));
  return axis(key, std::move(out));
}

Sweep& Sweep::seeds(const std::vector<std::uint64_t>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (std::uint64_t v : values) out.push_back(std::to_string(v));
  return axis("seed", std::move(out));
}

std::size_t Sweep::size() const {
  std::size_t total = 1;
  for (const auto& a : axes_) total *= a.values.size();
  return total;
}

std::vector<Sweep::Expanded> Sweep::expand() const {
  std::vector<Expanded> grid;
  grid.reserve(size());
  std::vector<std::size_t> cursor(axes_.size(), 0);
  while (true) {
    Expanded e{base_, {}};
    for (std::size_t i = 0; i < axes_.size(); ++i) {
      const std::string& value = axes_[i].values[cursor[i]];
      e.spec.set(axes_[i].key, value);
      e.axes[axes_[i].key] = value;
    }
    grid.push_back(std::move(e));
    if (axes_.empty()) return grid;
    // Odometer increment, last axis fastest.
    std::size_t i = axes_.size();
    bool carried_out = true;
    while (i > 0) {
      --i;
      if (++cursor[i] < axes_[i].values.size()) {
        carried_out = false;
        break;
      }
      cursor[i] = 0;
    }
    if (carried_out) return grid;
  }
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options), run_fn_(default_run_fn(options)) {}

SweepRunner::RunFn SweepRunner::default_run_fn(const SweepOptions& options) {
  return [options](Scenario& s, RunResult& r) {
    s.start();
    double max_global = 0.0;
    double max_local = 0.0;
    double last_global = 0.0;
    double last_local = 0.0;
    Time t = 0.0;
    while (t < options.horizon) {
      t = std::min(t + options.sample_period, options.horizon);
      s.run_until(t);
      const auto snap = measure_skew(s.engine());
      last_global = snap.global;
      last_local = snap.worst_local;
      max_global = std::max(max_global, snap.global);
      max_local = std::max(max_local, snap.worst_local);
    }
    r.final_global = last_global;
    r.final_local = last_local;
    r.max_global = max_global;
    r.max_local = max_local;
    if (options.check_legality) {
      const auto report =
          check_legality(s.engine(), s.spec().aopt.gtilde_static, options.level_cap);
      r.legal = report.legal();
      r.legality_margin = report.worst_margin;
    }
  };
}

std::vector<RunResult> SweepRunner::run(const Sweep& sweep) const {
  // Touch every registry once so lazy bootstrap happens before workers race.
  sweep.base().validate();

  const std::vector<Sweep::Expanded> grid = sweep.expand();
  std::vector<RunResult> results(grid.size());

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= grid.size()) return;
      RunResult& r = results[i];
      r.index = static_cast<int>(i);
      r.name = grid[i].spec.name;
      r.axes = grid[i].axes;
      r.seed = grid[i].spec.seed;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        Scenario scenario(grid[i].spec);
        r.n = scenario.spec().n;
        run_fn_(scenario, r);
        r.events = scenario.sim().fired_count();
        if (scenario.adversary() != nullptr) {
          r.adversary_ops = scenario.adversary()->operations();
        }
      } catch (const std::exception& e) {
        r.error = e.what();
      } catch (...) {
        r.error = "unknown exception";
      }
      r.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }
  };

  const int thread_count =
      std::max(1, std::min<int>(options_.threads, static_cast<int>(grid.size())));
  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(thread_count));
    for (int t = 0; t < thread_count; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return results;
}

namespace {

/// Union of custom-value keys over all results, sorted.
std::vector<std::string> value_columns(const std::vector<RunResult>& results) {
  std::set<std::string> keys;
  for (const auto& r : results) {
    for (const auto& [k, v] : r.values) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

std::vector<std::string> axis_columns(const std::vector<RunResult>& results) {
  std::set<std::string> keys;
  for (const auto& r : results) {
    for (const auto& [k, v] : r.axes) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

}  // namespace

Table SweepRunner::to_table(const std::vector<RunResult>& results,
                            const std::string& title) {
  const auto axes = axis_columns(results);
  const auto extras = value_columns(results);
  Table table(title);
  std::vector<std::string> headers;
  for (const auto& a : axes) headers.push_back(a);
  headers.insert(headers.end(), {"n", "G final", "G max", "local final", "local max",
                                 "legal", "events", "wall s"});
  for (const auto& e : extras) headers.push_back(e);
  headers.push_back("error");
  table.headers(headers);
  for (const auto& r : results) {
    auto& row = table.row();
    for (const auto& a : axes) {
      const auto it = r.axes.find(a);
      row.cell(it == r.axes.end() ? std::string("-") : it->second);
    }
    row.cell(r.n)
        .cell(r.final_global)
        .cell(r.max_global)
        .cell(r.final_local)
        .cell(r.max_local)
        .cell(r.legal)
        .cell(static_cast<long long>(r.events))
        .cell(r.wall_seconds, 2);
    for (const auto& e : extras) {
      const auto it = r.values.find(e);
      if (it == r.values.end()) {
        row.cell("-");
      } else {
        row.cell(it->second);
      }
    }
    row.cell(r.error.empty() ? "-" : r.error);
  }
  return table;
}

void SweepRunner::write_csv(const std::vector<RunResult>& results,
                            const std::string& path) {
  const auto axes = axis_columns(results);
  const auto extras = value_columns(results);
  CsvWriter csv(path);
  std::vector<std::string> headers{"index", "name", "seed"};
  for (const auto& a : axes) headers.push_back("axis_" + a);
  headers.insert(headers.end(),
                 {"n", "final_global", "max_global", "final_local", "max_local",
                  "legal", "legality_margin", "events", "adversary_ops",
                  "wall_seconds"});
  for (const auto& e : extras) headers.push_back(e);
  headers.push_back("error");
  csv.row(headers);
  for (const auto& r : results) {
    csv.field(r.index).field(r.name).field(static_cast<long long>(r.seed));
    for (const auto& a : axes) {
      const auto it = r.axes.find(a);
      csv.field(it == r.axes.end() ? std::string() : it->second);
    }
    csv.field(r.n)
        .field(r.final_global)
        .field(r.max_global)
        .field(r.final_local)
        .field(r.max_local)
        .field(r.legal ? 1 : 0)
        .field(r.legality_margin)
        .field(static_cast<long long>(r.events))
        .field(r.adversary_ops)
        .field(r.wall_seconds);
    for (const auto& e : extras) {
      const auto it = r.values.find(e);
      if (it == r.values.end()) {
        csv.field(std::string());
      } else {
        csv.field(it->second);
      }
    }
    csv.field(r.error).endrow();
  }
}

}  // namespace gcs
