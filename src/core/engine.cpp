#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace gcs {

// ----------------------------------------------------------------- NodeApi

Time NodeApi::now() const { return engine_.sim_.now(); }
const AlgoParams& NodeApi::algo_params() const { return engine_.params_; }
ClockValue NodeApi::logical() { return engine_.logical(id_); }
ClockValue NodeApi::hardware() { return engine_.hardware(id_); }
ClockValue NodeApi::max_estimate() { return engine_.max_estimate(id_); }
bool NodeApi::max_locked() const { return engine_.max_locked(id_); }
double NodeApi::rate_multiplier() const { return engine_.rate_multiplier(id_); }
void NodeApi::set_rate_multiplier(double mult) {
  engine_.set_rate_multiplier(id_, mult);
}
void NodeApi::set_logical_value(ClockValue v) { engine_.set_logical_value(id_, v); }

const std::unordered_set<NodeId>& NodeApi::neighbors() const {
  return engine_.graph_.view_neighbors(id_);
}
Time NodeApi::neighbor_since(NodeId peer) const {
  return engine_.graph_.view_since(id_, peer);
}
const EdgeParams& NodeApi::edge_params(NodeId peer) const {
  return engine_.graph_.params(EdgeKey(id_, peer));
}
std::optional<ClockValue> NodeApi::neighbor_estimate(NodeId peer) {
  return engine_.estimates_.estimate(id_, peer);
}
double NodeApi::edge_eps(NodeId peer) const {
  return engine_.estimates_.eps(EdgeKey(id_, peer));
}
bool NodeApi::send_insert_edge(NodeId peer, ClockValue l_ins, double gtilde) {
  return engine_.transport_.send(id_, peer, InsertEdgeMsg{l_ins, gtilde});
}
double NodeApi::global_skew_estimate() { return engine_.gskew_.estimate(id_); }

void NodeApi::schedule_at_logical(ClockValue target, std::function<void()> fn) {
  auto& n = engine_.node(id_);
  n.logical_targets.emplace(target, std::move(fn));
  engine_.reschedule_logical_event(id_);
}

void NodeApi::schedule_after(Duration dt, std::function<void()> fn) {
  engine_.sim_.schedule_after(dt, std::move(fn));
}

// ------------------------------------------------------------------ Engine

Engine::Engine(Simulator& sim, DynamicGraph& graph, Transport& transport,
               DriftModel& drift, EstimateSource& estimates,
               GlobalSkewEstimator& gskew, AlgoParams params, EngineConfig config,
               const AlgorithmFactory& factory)
    : sim_(sim),
      graph_(graph),
      transport_(transport),
      drift_(drift),
      estimates_(estimates),
      gskew_(gskew),
      params_(params),
      config_(config) {
  const auto validation = params_.validate();
  require(validation.ok(), "Engine: invalid AlgoParams:\n" + validation.str());
  require(config_.tick_period > 0.0 && config_.beacon_period > 0.0,
          "Engine: periods must be positive");

  const int n = graph_.size();
  nodes_.reserve(static_cast<std::size_t>(n));
  const Time t0 = sim_.now();
  for (NodeId u = 0; u < n; ++u) {
    auto state = std::make_unique<NodeState>();
    const double h_rate = drift_.rate_at(u, t0);
    state->hw = PiecewiseLinearClock(t0, 0.0, h_rate);
    state->logical = PiecewiseLinearClock(t0, 0.0, h_rate);  // mult=1 initially
    state->maxest = PiecewiseLinearClock(t0, 0.0, h_rate);
    // The min estimate starts at the true minimum (0) and advances at the
    // safe rate (1-rho)/(1+rho)*h, which cannot overtake any logical clock.
    state->minest = PiecewiseLinearClock(
        t0, 0.0, (1.0 - params_.rho) / (1.0 + params_.rho) * h_rate);
    state->m_locked = true;
    state->api = std::make_unique<NodeApi>(*this, u);
    state->algo = factory(u);
    require(state->algo != nullptr, "Engine: factory returned null algorithm");
    state->algo->attach(state->api.get());
    nodes_.push_back(std::move(state));
  }
  estimates_.bind(this);
  graph_.set_listener(this);
  transport_.set_handler([this](const Delivery& d) { on_delivery(d); });
}

void Engine::start() {
  require(!started_, "Engine: start() called twice");
  started_ = true;
  const int n = size();
  for (NodeId u = 0; u < n; ++u) {
    node(u).algo->init();
    schedule_drift(u);
    // Stagger per-node periodic events so same-time bursts do not mask
    // event-ordering bugs and beacons do not synchronize artificially.
    const double phase = (static_cast<double>(u) + 1.0) / (static_cast<double>(n) + 1.0);
    schedule_tick(u, config_.tick_period * phase);
    if (config_.enable_beacons) schedule_beacon(u, config_.beacon_period * phase);
    reevaluate(u);
  }
}

void Engine::advance(NodeId u) {
  NodeState& n = node(u);
  const Time t = sim_.now();
  n.hw.advance(t);
  n.logical.advance(t);
  n.minest.advance(t);
  if (!n.m_locked) n.maxest.advance(t);
}

double Engine::unlocked_max_rate(const NodeState& n) const {
  return (1.0 - params_.rho) / (1.0 + params_.rho) * n.hw.rate();
}

ClockValue Engine::logical(NodeId u) {
  advance(u);
  return node(u).logical.value();
}

ClockValue Engine::hardware(NodeId u) {
  advance(u);
  return node(u).hw.value();
}

ClockValue Engine::max_estimate(NodeId u) {
  advance(u);
  NodeState& n = node(u);
  return n.m_locked ? n.logical.value() : n.maxest.value();
}

ClockValue Engine::min_estimate(NodeId u) {
  advance(u);
  return node(u).minest.value();
}

bool Engine::max_locked(NodeId u) const { return node(u).m_locked; }
double Engine::rate_multiplier(NodeId u) const { return node(u).mult; }
double Engine::hardware_rate(NodeId u) const { return node(u).hw.rate(); }
Algorithm& Engine::algorithm(NodeId u) { return *node(u).algo; }

double Engine::true_global_skew() {
  double lo = kTimeInf;
  double hi = -kTimeInf;
  for (NodeId u = 0; u < size(); ++u) {
    const ClockValue l = logical(u);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  return size() > 0 ? hi - lo : 0.0;
}

void Engine::corrupt_logical(NodeId u, ClockValue value) {
  advance(u);
  NodeState& n = node(u);
  const ClockValue m_before = n.m_locked ? n.logical.value() : n.maxest.value();
  n.logical.set_value(sim_.now(), value);
  if (n.minest.value() > value) n.minest.set_value(sim_.now(), value);
  if (value >= m_before) {
    // The paper's invariant M_u >= L_u (eq. 4) must keep holding.
    n.m_locked = true;
    if (n.mlock_event.valid()) sim_.cancel(n.mlock_event);
    n.mlock_event = EventId{};
  } else if (n.m_locked) {
    // L dropped below the old M: keep M at its former value, now unlocked.
    n.m_locked = false;
    n.maxest.set_value(sim_.now(), m_before);
    n.maxest.set_rate(sim_.now(), unlocked_max_rate(n));
    reschedule_mlock(u);
  } else {
    reschedule_mlock(u);
  }
  reschedule_logical_event(u);
  reevaluate(u);
}

void Engine::corrupt_max_estimate(NodeId u, ClockValue value) {
  advance(u);
  NodeState& n = node(u);
  const ClockValue l = n.logical.value();
  if (value <= l) {
    n.m_locked = true;
    if (n.mlock_event.valid()) sim_.cancel(n.mlock_event);
    n.mlock_event = EventId{};
  } else {
    n.m_locked = false;
    n.maxest.set_value(sim_.now(), value);
    n.maxest.set_rate(sim_.now(), unlocked_max_rate(n));
    reschedule_mlock(u);
  }
  reevaluate(u);
}

void Engine::on_edge_discovered(NodeId u, NodeId peer) {
  advance(u);
  node(u).algo->on_edge_discovered(peer);
  if (started_) reevaluate(u);
}

void Engine::on_edge_lost(NodeId u, NodeId peer) {
  advance(u);
  estimates_.on_edge_lost(u, peer);
  node(u).algo->on_edge_lost(peer);
  if (started_) reevaluate(u);
}

void Engine::apply_drift(NodeId u) {
  advance(u);
  NodeState& n = node(u);
  const double h_rate = drift_.rate_at(u, sim_.now());
  n.hw.set_rate(sim_.now(), h_rate);
  n.logical.set_rate(sim_.now(), n.mult * h_rate);
  n.minest.set_rate(sim_.now(), unlocked_max_rate(n));
  if (!n.m_locked) n.maxest.set_rate(sim_.now(), unlocked_max_rate(n));
  reschedule_logical_event(u);
  reschedule_mlock(u);
}

void Engine::schedule_drift(NodeId u) {
  const Time next = drift_.next_change_after(u, sim_.now());
  if (next == kTimeInf) return;
  sim_.schedule_at(next, [this, u] {
    apply_drift(u);
    schedule_drift(u);
  });
}

void Engine::schedule_tick(NodeId u, Duration delay) {
  sim_.schedule_after(delay, [this, u] {
    reevaluate(u);
    schedule_tick(u, config_.tick_period);
  });
}

void Engine::schedule_beacon(NodeId u, Duration delay) {
  sim_.schedule_after(delay, [this, u] {
    advance(u);
    NodeState& n = node(u);
    const Beacon beacon{n.logical.value(),
                        n.m_locked ? n.logical.value() : n.maxest.value(),
                        n.minest.value()};
    for (NodeId peer : graph_.view_neighbors(u)) {
      transport_.send(u, peer, beacon);
    }
    schedule_beacon(u, config_.beacon_period);
  });
}

void Engine::reschedule_logical_event(NodeId u) {
  NodeState& n = node(u);
  if (n.logical_event.valid()) {
    sim_.cancel(n.logical_event);
    n.logical_event = EventId{};
  }
  if (n.logical_targets.empty()) return;
  n.logical.advance(sim_.now());
  const Time fire_at = n.logical.time_of_value(n.logical_targets.begin()->first);
  n.logical_event = sim_.schedule_at(fire_at, [this, u] { fire_logical_targets(u); });
}

void Engine::fire_logical_targets(NodeId u) {
  advance(u);
  NodeState& n = node(u);
  n.logical_event = EventId{};
  // Fire every target at or (within float fuzz) below the current L.
  const ClockValue l = n.logical.value();
  const ClockValue fuzz = 1e-9 * (std::fabs(l) + 1.0);
  std::vector<std::function<void()>> due;
  while (!n.logical_targets.empty() && n.logical_targets.begin()->first <= l + fuzz) {
    due.push_back(std::move(n.logical_targets.begin()->second));
    n.logical_targets.erase(n.logical_targets.begin());
  }
  for (auto& fn : due) fn();
  reschedule_logical_event(u);
  reevaluate(u);
}

void Engine::reschedule_mlock(NodeId u) {
  NodeState& n = node(u);
  if (n.mlock_event.valid()) {
    sim_.cancel(n.mlock_event);
    n.mlock_event = EventId{};
  }
  if (n.m_locked) return;
  const double l_rate = n.logical.rate();
  const double m_rate = n.maxest.rate();
  const double gap = n.maxest.value_at(sim_.now()) - n.logical.value_at(sim_.now());
  if (gap <= 0.0) {
    // Degenerate (value corruption): lock immediately.
    advance(u);
    n.m_locked = true;
    return;
  }
  require(l_rate > m_rate, "Engine: logical rate must exceed unlocked M rate");
  const Duration dt = gap / (l_rate - m_rate);
  n.mlock_event = sim_.schedule_after(dt, [this, u] {
    advance(u);
    NodeState& s = node(u);
    s.mlock_event = EventId{};
    s.m_locked = true;  // from now on M_u tracks L_u exactly
    reevaluate(u);
  });
}

void Engine::apply_max_candidate(NodeId u, ClockValue candidate) {
  advance(u);
  NodeState& n = node(u);
  const ClockValue l = n.logical.value();
  if (n.m_locked) {
    if (candidate > l) {
      n.m_locked = false;
      n.maxest.set_value(sim_.now(), candidate);
      n.maxest.set_rate(sim_.now(), unlocked_max_rate(n));
      reschedule_mlock(u);
      if (observer_ != nullptr) {
        observer_->on_max_estimate_raised(sim_.now(), u, candidate);
      }
    }
    return;
  }
  if (candidate > n.maxest.value()) {
    n.maxest.set_value(sim_.now(), candidate);
    reschedule_mlock(u);
    if (observer_ != nullptr) {
      observer_->on_max_estimate_raised(sim_.now(), u, candidate);
    }
  }
}

void Engine::set_rate_multiplier(NodeId u, double mult) {
  require(mult > 0.0, "Engine: rate multiplier must be positive");
  NodeState& n = node(u);
  if (n.mult == mult) return;
  advance(u);
  if (observer_ != nullptr) observer_->on_mode_change(sim_.now(), u, n.mult, mult);
  n.mult = mult;
  n.logical.set_rate(sim_.now(), mult * n.hw.rate());
  reschedule_logical_event(u);
  reschedule_mlock(u);
}

void Engine::set_logical_value(NodeId u, ClockValue v) {
  advance(u);
  NodeState& n = node(u);
  const ClockValue m_before = n.m_locked ? n.logical.value() : n.maxest.value();
  if (observer_ != nullptr) {
    observer_->on_logical_jump(sim_.now(), u, n.logical.value(), v);
  }
  n.logical.set_value(sim_.now(), v);
  if (v >= m_before) {
    n.m_locked = true;
    if (n.mlock_event.valid()) sim_.cancel(n.mlock_event);
    n.mlock_event = EventId{};
  } else {
    reschedule_mlock(u);
  }
  reschedule_logical_event(u);
}

void Engine::reevaluate(NodeId u) {
  NodeState& n = node(u);
  if (n.in_reevaluate) return;
  n.in_reevaluate = true;
  advance(u);
  n.algo->reevaluate();
  n.in_reevaluate = false;
}

void Engine::on_delivery(const Delivery& d) {
  advance(d.to);
  if (const auto* beacon = std::get_if<Beacon>(&d.payload)) {
    estimates_.on_beacon(d);
    // Max-estimate flooding (Condition 4.3): the receiver may add the
    // drift-discounted known transit lower bound.
    const ClockValue candidate =
        beacon->max_estimate + (1.0 - params_.rho) * d.known_min_delay;
    apply_max_candidate(d.to, candidate);
    // Min-estimate flooding: the sender's lower bound, advanced by the
    // drift-discounted transit floor, is still a lower bound on min_v L_v.
    NodeState& receiver = node(d.to);
    const ClockValue min_candidate =
        beacon->min_estimate + (1.0 - params_.rho) * d.known_min_delay;
    if (min_candidate > receiver.minest.value()) {
      receiver.minest.set_value(sim_.now(), min_candidate);
    }
  } else if (const auto* ins = std::get_if<InsertEdgeMsg>(&d.payload)) {
    node(d.to).algo->on_insert_edge_msg(d.from, *ins);
  }
  reevaluate(d.to);
}

}  // namespace gcs
