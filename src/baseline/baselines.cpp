#include "baseline/baselines.h"

#include <algorithm>

namespace gcs {

void MaxJumpNode::reevaluate() {
  if (api_->max_locked()) return;
  const ClockValue l = api_->logical();
  const ClockValue m = api_->max_estimate();
  if (m > l) {
    max_jump_ = std::max(max_jump_, m - l);
    api_->set_logical_value(m);
  }
}

void BoundedRateMaxNode::reevaluate() {
  const ClockValue l = api_->logical();
  const ClockValue m = api_->max_estimate();
  if (api_->max_locked()) {
    api_->set_rate_multiplier(1.0);
  } else if (l <= m - iota_) {
    api_->set_rate_multiplier(1.0 + mu_);
  }
  // In the ι-wide band below M: keep the current mode (hysteresis).
}

}  // namespace gcs
