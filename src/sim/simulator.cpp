#include "sim/simulator.h"

#include <cmath>
#include <stdexcept>

namespace gcs {

EventId Simulator::schedule_at(Time at, Callback fn) {
  if (std::isnan(at)) throw std::invalid_argument("Simulator: NaN event time");
  if (at < now_) {
    // Tolerate tiny negative offsets caused by float round-off in rate
    // conversions; anything larger is a logic error in the caller.
    if (now_ - at > 1e-6 * (std::fabs(now_) + 1.0)) {
      throw std::invalid_argument("Simulator: scheduling in the past");
    }
    at = now_;
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueEntry{at, seq});
  callbacks_.emplace(seq, std::move(fn));
  return EventId{seq};
}

bool Simulator::cancel(EventId id) {
  return callbacks_.erase(id.value) > 0;  // heap entry becomes a tombstone
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry top = queue_.top();
    auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    queue_.pop();
    now_ = top.time;
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    ++fired_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty()) {
    // Skip tombstones to see the true next event time.
    const QueueEntry top = queue_.top();
    if (callbacks_.count(top.seq) == 0) {
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace gcs
