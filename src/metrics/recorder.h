// Time-series recording driven by the simulator.
#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "util/common.h"
#include "util/stats.h"

namespace gcs {

/// A recorded (time, value) series with summary helpers.
class TimeSeries {
 public:
  void add(Time t, double value) {
    points_.emplace_back(t, value);
    stats_.add(value);
  }

  [[nodiscard]] const std::vector<std::pair<Time, double>>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] double max() const { return stats_.max(); }
  [[nodiscard]] double min() const { return stats_.min(); }
  [[nodiscard]] double mean() const { return stats_.mean(); }
  [[nodiscard]] double last() const {
    require(!points_.empty(), "TimeSeries: empty");
    return points_.back().second;
  }

  /// Max value over points with t in [from, to].
  [[nodiscard]] double max_in(Time from, Time to) const;

  /// First time at which the value is <= threshold, starting from `from`;
  /// kTimeInf if never.
  [[nodiscard]] Time first_below(double threshold, Time from = 0.0) const;

 private:
  std::vector<std::pair<Time, double>> points_;
  RunningStats stats_;
};

/// Invokes a probe function every `period` of simulated time.
class PeriodicSampler {
 public:
  using Probe = std::function<void(Time)>;

  PeriodicSampler(Simulator& sim, Duration period, Probe probe)
      : sim_(sim), period_(period), probe_(std::move(probe)) {
    require(period > 0.0, "PeriodicSampler: period must be positive");
  }

  /// Start sampling (first sample after `phase`).
  void start(Duration phase = 0.0);
  void stop();

 private:
  void tick();

  Simulator& sim_;
  Duration period_;
  Probe probe_;
  EventId event_{};
  bool running_ = false;
};

}  // namespace gcs
