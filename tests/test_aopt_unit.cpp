// Focused unit tests of AoptNode behaviors: the max-estimate condition
// (Def. 4.4 / Listing 3), handshake corner cases, introspection, and the
// interaction between corruption and the trigger machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "runner/scenario.h"

namespace gcs {
namespace {

ScenarioSpec tiny(int n) {
  ScenarioSpec cfg;
  cfg.n = n;
  cfg.explicit_edges = topo_line(n);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.1;
  cfg.aopt.gtilde_static = 5.0;
  cfg.drift = ComponentSpec("none");
  cfg.estimates = ComponentSpec("zero");
  return cfg;
}

TEST(AoptUnit, PeerInfoAbsentForUnknownNode) {
  Scenario s(tiny(3));
  s.start();
  EXPECT_FALSE(s.aopt(0).peer_info(2).has_value());  // never a neighbor
  EXPECT_TRUE(s.aopt(0).peer_info(1).has_value());
  EXPECT_EQ(s.aopt(0).edge_kappa(2), 0.0);
  EXPECT_FALSE(s.aopt(0).edge_in_level(2, 1));
}

TEST(AoptUnit, DerivedConstantsMatchParams) {
  Scenario s(tiny(2));
  s.start();
  const auto info = s.aopt(0).peer_info(1);
  ASSERT_TRUE(info.has_value());
  EdgeParams ep = s.spec().edge_params;
  ep.eps = s.engine().edge_eps(EdgeKey(0, 1));
  const EdgeConstants expect = s.spec().aopt.edge_constants(ep);
  EXPECT_DOUBLE_EQ(info->kappa, expect.kappa);
  EXPECT_DOUBLE_EQ(info->delta, expect.delta);
  EXPECT_DOUBLE_EQ(s.aopt(0).edge_kappa(1), expect.kappa);
}

TEST(AoptUnit, MaxEstimateConditionDrivesFastMode) {
  // MC (Def. 4.4): raise M at a node whose neighbors are level with it;
  // neither FC nor SC applies, so the max-estimate trigger must switch the
  // node to fast mode, and back to slow when it locks onto M.
  Scenario s(tiny(2));
  s.start();
  s.run_until(10.0);
  ASSERT_DOUBLE_EQ(s.engine().rate_multiplier(0), 1.0);
  s.engine().corrupt_max_estimate(0, s.engine().logical(0) + 1.0);
  s.run_for(1.0);  // next tick re-evaluates
  EXPECT_DOUBLE_EQ(s.engine().rate_multiplier(0), 1.0 + s.spec().aopt.mu);
  EXPECT_FALSE(s.aopt(0).last_fast_trigger());  // it was MC, not FC
  // After catching M (1.0 gap at ~mu rate => ~10 units), slow again.
  s.run_for(30.0);
  EXPECT_TRUE(s.engine().max_locked(0));
  EXPECT_DOUBLE_EQ(s.engine().rate_multiplier(0), 1.0);
}

TEST(AoptUnit, FastTriggerFiresWhenNeighborFarAhead) {
  Scenario s(tiny(2));
  s.start();
  s.run_until(10.0);
  const auto info = s.aopt(0).peer_info(1);
  ASSERT_TRUE(info.has_value());
  // Push node 1 ahead by 2 kappa: node 0's level-1 FC must fire.
  s.engine().corrupt_logical(1, s.engine().logical(1) + 2.0 * info->kappa);
  s.run_for(1.0);
  EXPECT_TRUE(s.aopt(0).last_fast_trigger());
  EXPECT_DOUBLE_EQ(s.engine().rate_multiplier(0), 1.0 + s.spec().aopt.mu);
  // ...and node 1's SC (neighbor far behind) must hold it in slow mode.
  EXPECT_TRUE(s.aopt(1).last_slow_trigger());
  EXPECT_DOUBLE_EQ(s.engine().rate_multiplier(1), 1.0);
}

TEST(AoptUnit, ModeSwitchCounterAdvances) {
  auto cfg = tiny(4);
  cfg.drift = ComponentSpec("blocks");
  cfg.drift.params.set("blocks", 2);
  cfg.drift.params.set("period", 40.0);
  cfg.aopt.rho = 4e-3;
  Scenario s(cfg);
  s.start();
  s.run_until(400.0);
  long long total = 0;
  for (NodeId u = 0; u < 4; ++u) total += s.aopt(u).mode_switches();
  EXPECT_GT(total, 0);
}

TEST(AoptUnit, InsertEdgeMsgFromStrangerIsIgnored) {
  Scenario s(tiny(3));
  s.start();
  s.run_until(5.0);
  // Deliver a forged insertedge from node 2 (no edge 0-2 exists).
  s.aopt(0).on_insert_edge_msg(2, InsertEdgeMsg{100.0, 5.0});
  s.run_until(20.0);
  EXPECT_FALSE(s.aopt(0).peer_info(2).has_value());
  EXPECT_FALSE(s.aopt(0).edge_in_level(2, 1));
}

TEST(AoptUnit, StaleInsertEdgeMsgAfterLossIsIgnored) {
  Scenario s(tiny(3));
  s.start();
  s.run_until(5.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(6.0);  // discovered, handshake pending
  // The edge vanishes; a late insertedge must not resurrect insertion.
  s.graph().destroy_edge(EdgeKey(0, 2));
  s.run_until(8.0);
  s.aopt(2).on_insert_edge_msg(0, InsertEdgeMsg{50.0, 5.0});
  s.run_until(30.0);
  const auto info = s.aopt(2).peer_info(0);
  if (info.has_value()) {
    EXPECT_FALSE(info->present);
    EXPECT_EQ(info->t0, kTimeInf);
  }
}

TEST(AoptUnit, HandshakeUsesGtildeAtSendTime) {
  auto cfg = tiny(3);
  cfg.gskew = ComponentSpec("oracle");
  cfg.gskew.params.set("factor", 2.0);
  cfg.gskew.params.set("margin", 1.0);
  Scenario s(cfg);
  s.start();
  s.run_until(20.0);
  const double g_now = s.engine().true_global_skew();
  s.graph().create_edge(EdgeKey(0, 2), cfg.edge_params);
  s.run_until(35.0);
  const auto info = s.aopt(0).peer_info(2);
  ASSERT_TRUE(info.has_value());
  ASSERT_LT(info->t0, kTimeInf);
  // The recorded estimate is the oracle's value around handshake time:
  // 2*G + 1 with G tiny here.
  EXPECT_GE(info->gtilde, 1.0);
  EXPECT_LE(info->gtilde, 2.0 * (g_now + 0.5) + 1.5);
}

TEST(AoptUnit, T0IsOnTheGridAndAfterLins) {
  Scenario s(tiny(3));
  s.start();
  s.run_until(15.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(30.0);
  const auto info = s.aopt(0).peer_info(2);
  ASSERT_TRUE(info.has_value());
  ASSERT_LT(info->t0, kTimeInf);
  const double ratio = info->t0 / info->insertion_duration;
  EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
  // L_ins >= L(discovery) + Gtilde => T0 comfortably after discovery.
  EXPECT_GT(info->t0, 15.0 + s.spec().aopt.gtilde_static / 2.0);
}

TEST(AoptUnit, LevelZeroMembershipTracksDiscoveryOnly) {
  Scenario s(tiny(3));
  s.start();
  s.run_until(15.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(16.0);  // discovered (tau=0.5), far from T0
  EXPECT_TRUE(s.aopt(0).edge_in_level(2, 0));   // N^0 = discovery set
  EXPECT_FALSE(s.aopt(0).edge_in_level(2, 1));  // not yet on level 1
}

TEST(AoptUnit, WeightDecayKappaInitCoversGlobalSkew) {
  auto cfg = tiny(3);
  cfg.aopt.insertion = InsertionPolicy::kWeightDecay;
  Scenario s(cfg);
  s.start();
  s.run_until(15.0);
  s.graph().create_edge(EdgeKey(0, 2), cfg.edge_params);
  s.run_until(30.0);
  const auto info = s.aopt(0).peer_info(2);
  ASSERT_TRUE(info.has_value());
  ASSERT_LT(info->t0, kTimeInf);
  // Walk L to just past T0 and check kappa(t) starts at 2*Gtilde + kappa_e:
  // big enough that the edge's gradient constraint is vacuous initially.
  while (s.engine().logical(0) < info->t0 + 0.5) s.run_for(2.0);
  const double kappa_now = s.aopt(0).edge_kappa(2);
  EXPECT_GT(kappa_now, 2.0 * info->gtilde * 0.9);
}

TEST(AoptUnit, SelfLoopEdgeRejectedByModel) {
  Scenario s(tiny(3));
  s.start();
  EXPECT_THROW(s.graph().create_edge(EdgeKey(1, 1), s.spec().edge_params),
               std::invalid_argument);
}

TEST(AoptUnit, TwoNodeNetworkConverges) {
  auto cfg = tiny(2);
  cfg.drift = ComponentSpec("spread");
  cfg.aopt.rho = 2e-3;
  Scenario s(cfg);
  s.start();
  s.run_until(600.0);
  // One edge, constant pull-apart at 2*rho: the skew must stay around the
  // single-edge gradient scale, far below unsynchronized drift (2.4).
  const double skew = std::fabs(s.engine().logical(0) - s.engine().logical(1));
  const auto info = s.aopt(0).peer_info(1);
  ASSERT_TRUE(info.has_value());
  EXPECT_LT(skew, 2.0 * info->kappa);
}

TEST(AoptUnit, SingleNodeDegenerateCase) {
  ScenarioSpec cfg;
  cfg.n = 1;
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  Scenario s(cfg);
  s.start();
  s.run_until(100.0);
  EXPECT_NEAR(s.engine().logical(0), 100.0, 0.2);
  EXPECT_DOUBLE_EQ(s.engine().true_global_skew(), 0.0);
}

}  // namespace
}  // namespace gcs
