// Deterministic chaos injection for the runtime.
//
// A ChaosScript is a time-ordered list of fault ops — node crash/restart,
// bidirectional link cuts, asymmetric loss, latency storms — either parsed
// from a tiny text grammar or generated from a seeded preset, so every
// chaos run is reproducible from (script text | preset name + seed) alone.
// A ChaosScheduler replays the script against a ChaosTarget (RtCluster
// in-process, or a gcsd daemon applying the ops that involve itself); the
// ops themselves are applied through lock-free per-directed-link fault
// slots in the transports plus atomic crash/restart request flags in
// RtNode, so the scheduler may run on any thread.
//
// Script grammar (ops separated by ';' or newline, '#' comments to EOL):
//
//   at <t> crash <u>            node u stops executing and communicating
//   at <t> restart <u>          node u rejoins via the insertion protocol
//   at <t> cut <a> <b>          block the link both ways (partition edge)
//   at <t> heal <a> <b>         unblock both ways
//   at <t> drop <a> <b> <p>     lose fraction p of frames a -> b (one way)
//   at <t> clear <a> <b>        clear the a -> b fault slot
//   at <t> storm <a> <b> <d>    add d seconds of delay both ways
//   at <t> calm <a> <b>         clear both fault slots
//   at <t> corrupt <a> <b> <p>  flip one bit in fraction p of frames
//                               a -> b (one way; CRC must catch every one)
//   at <t> conn-reset <a> <b>   reset the transport connection both ways
//                               (stream backends; instantaneous, no clear)
//
// Each directed link has ONE LinkFault slot: cut/drop/storm/corrupt
// overwrite each other (last writer wins), which keeps the transport hot
// path to a single atomic load.
//
// Phases: the script partitions time into fault intervals (first fault op
// after quiet -> last op returning the active-fault set to empty). The
// re-convergence gate checks each quiet window [clear + stabilization,
// next fault): every sampled edge skew must be back within its derived
// gradient bound — the paper's stabilization guarantee, asserted live.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace gcs {

/// One directed link's injected fault state. drop >= 1 means blocked.
/// Packed into a single 64-bit atomic by the transports, so floats rather
/// than doubles — and the two probabilities are stored as bfloat16 (top 16
/// bits of the float32) to keep all three fields in one word. Probabilities
/// round-trip only at bfloat16 precision (powers of two like 0.5 and 1.0
/// are exact; 0.3 quantizes to ~0.0007 relative error), which is far below
/// anything a chaos script cares about and keeps the hot path at a single
/// atomic load.
struct LinkFault {
  float drop = 0.0f;         ///< loss probability in [0,1]; >= 1 blocks
  float extra_delay = 0.0f;  ///< added model-seconds of delivery delay
  float corrupt = 0.0f;      ///< probability of a single in-flight bit flip
};

[[nodiscard]] inline std::uint64_t pack_link_fault(const LinkFault& f) {
  std::uint32_t d, e, c;
  static_assert(sizeof(float) == 4);
  __builtin_memcpy(&d, &f.drop, 4);
  __builtin_memcpy(&e, &f.extra_delay, 4);
  __builtin_memcpy(&c, &f.corrupt, 4);
  return (static_cast<std::uint64_t>(d >> 16) << 48) |
         (static_cast<std::uint64_t>(c >> 16) << 32) | e;
}

[[nodiscard]] inline LinkFault unpack_link_fault(std::uint64_t bits) {
  LinkFault f;
  const std::uint32_t d = static_cast<std::uint32_t>(bits >> 48) << 16;
  const std::uint32_t c = static_cast<std::uint32_t>((bits >> 32) & 0xFFFFu) << 16;
  const std::uint32_t e = static_cast<std::uint32_t>(bits);
  __builtin_memcpy(&f.drop, &d, 4);
  __builtin_memcpy(&f.corrupt, &c, 4);
  __builtin_memcpy(&f.extra_delay, &e, 4);
  return f;
}

/// What a chaos script runs against. All methods must be callable from the
/// scheduler's thread (RtCluster maps them onto atomics).
class ChaosTarget {
 public:
  virtual ~ChaosTarget() = default;
  virtual void chaos_crash(NodeId u) = 0;
  virtual void chaos_restart(NodeId u) = 0;
  /// Set the fault slot of the directed link from -> to.
  virtual void chaos_link(NodeId from, NodeId to, const LinkFault& f) = 0;
  /// Reset the transport connection between a and b (both directions).
  /// Meaningful for stream backends (TCP); datagram and in-process
  /// backends have no connection to reset, hence the default no-op.
  virtual void chaos_conn_reset(NodeId a, NodeId b) {
    (void)a;
    (void)b;
  }
};

struct ChaosOp {
  enum class Kind {
    kCrash, kRestart, kCut, kHeal, kDrop, kClear, kStorm, kCalm,
    kCorrupt, kConnReset
  };
  Time at = 0.0;
  Kind kind = Kind::kCrash;
  NodeId a = kNoNode;
  NodeId b = kNoNode;    ///< second endpoint for link ops
  double value = 0.0;    ///< drop probability / storm delay
};

[[nodiscard]] const char* to_string(ChaosOp::Kind k);

/// A quiet-window gate derived from the script: after the fault interval
/// [fault_at, clear_at] the skew must be back within bounds throughout
/// [gate_begin, gate_end). gateable() is false when the next fault arrives
/// before the stabilization window elapses.
struct ChaosPhase {
  Time fault_at = 0.0;
  Time clear_at = 0.0;
  Time gate_begin = 0.0;
  Time gate_end = 0.0;
  std::string label;
  [[nodiscard]] bool gateable() const { return gate_end > gate_begin; }
};

class ChaosScript {
 public:
  /// Parse the text grammar above. Throws on malformed input — including
  /// negative node ids and scripts that parse to zero ops (an all-comment
  /// or empty string is a mangled flag, not a request for no chaos; use a
  /// default-constructed ChaosScript for that). Ops are sorted by time
  /// (stable: equal-time ops keep text order).
  static ChaosScript parse(const std::string& text);

  /// Seeded preset generator. Names: "crash" (two crash/restart cycles on
  /// rng-picked nodes), "partition" (cut + heal an rng-picked edge),
  /// "churn" (loss storm, crash cycle, cut cycle interleaved), "corrupt"
  /// (bit-flip storms on rng-picked edges plus a burst of connection
  /// resets — the wire-integrity stressor). Ops are placed at fixed
  /// fractions of `horizon`; node/edge picks come from Rng(seed), so
  /// (name, topology, horizon, seed) fully determine the run.
  static ChaosScript preset(const std::string& name, int n,
                            const std::vector<EdgeKey>& edges, Time horizon,
                            std::uint64_t seed);

  /// parse() if `spec` contains "at ", else preset(spec, ...).
  static ChaosScript from_flag(const std::string& spec, int n,
                               const std::vector<EdgeKey>& edges, Time horizon,
                               std::uint64_t seed);

  /// Throw if any op references a node id >= n. parse() already rejects
  /// negative ids; this closes the other side once the cluster size is
  /// known (RtCluster::arm_chaos calls it — a stray id would otherwise
  /// index straight past the node vector).
  void validate(int n) const;

  [[nodiscard]] const std::vector<ChaosOp>& ops() const { return ops_; }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  /// Derive the re-convergence gates (see header comment).
  [[nodiscard]] std::vector<ChaosPhase> phases(Time horizon,
                                               Duration stabilization) const;

  /// Canonical text form (round-trips through parse()).
  [[nodiscard]] std::string str() const;

 private:
  std::vector<ChaosOp> ops_;
};

/// Replays a script against a target. poll(now) applies every op with
/// at <= now, in order, exactly once.
class ChaosScheduler {
 public:
  ChaosScheduler(ChaosScript script, ChaosTarget& target)
      : script_(std::move(script)), target_(target) {}

  void poll(Time now);
  [[nodiscard]] bool done() const { return next_ >= script_.ops().size(); }
  [[nodiscard]] std::size_t applied() const { return next_; }

 private:
  ChaosScript script_;
  ChaosTarget& target_;
  std::size_t next_ = 0;
};

}  // namespace gcs
