#include "sim/simulator.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace gcs {

Time Simulator::clamp_time(Time at) const {
  if (std::isnan(at)) throw std::invalid_argument("Simulator: NaN event time");
  if (at < now_) {
    // Tolerate tiny negative offsets caused by float round-off in rate
    // conversions; anything larger is a logic error in the caller.
    if (now_ - at > 1e-6 * (std::fabs(now_) + 1.0)) {
      throw std::invalid_argument("Simulator: scheduling in the past");
    }
    at = now_;
  }
  // Times are non-negative (now_ starts at 0 and is monotone), which the
  // heap's bit-pattern ordering relies on; normalize -0.0 to +0.0.
  return at + 0.0;
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (meta_.size() >= kSlotMask) [[unlikely]] {
    throw std::runtime_error("Simulator: too many pending events");
  }
  meta_.emplace_back();
  events_.emplace_back();
  closures_.emplace_back();
  return static_cast<std::uint32_t>(meta_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  // Only a closure can own resources; typed payloads are plain data and may
  // go stale in place (overwritten on reuse).
  if (events_[slot].kind == EventKind::kClosure) closures_[slot] = nullptr;
  SlotMeta& m = meta_[slot];
  if (++m.gen == 0) m.gen = 1;  // invalidate stale handles (wrap skips 0)
  free_slots_.push_back(slot);
}

std::uint32_t Simulator::resolve(EventId id) const {
  if (!id.valid()) return kNoSlot;
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= meta_.size() || meta_[slot].gen != gen) return kNoSlot;
  return slot;  // a live generation always has a heap entry for the slot
}

void Simulator::sift_up(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!fires_before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    meta_[heap_[pos].slot()].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  meta_[entry.slot()].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  const std::size_t n = heap_.size();
  while (4 * pos + 1 < n) {
    const std::size_t best = min_child(pos, n);
    if (!fires_before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    meta_[heap_[pos].slot()].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  meta_[entry.slot()].heap_pos = static_cast<std::uint32_t>(pos);
}

std::size_t Simulator::min_child(std::size_t pos, std::size_t n) const {
  const std::size_t first = 4 * pos + 1;
  std::size_t best = first;
  const std::size_t last = first + 4 < n ? first + 4 : n;
#ifdef __SIZEOF_INT128__
  // Branchless min-of-children: sift comparisons are data-dependent and
  // mispredict ~50% of the time, so select via conditional moves.
  unsigned __int128 best_key = order_key(heap_[first]);
  for (std::size_t c = first + 1; c < last; ++c) {
    const unsigned __int128 ck = order_key(heap_[c]);
    const bool smaller = ck < best_key;
    best = smaller ? c : best;
    best_key = smaller ? ck : best_key;
  }
#else
  for (std::size_t c = first + 1; c < last; ++c) {
    if (fires_before(heap_[c], heap_[best])) best = c;
  }
#endif
  return best;
}

void Simulator::restore_heap(std::size_t pos) {
  if (pos > 0 && fires_before(heap_[pos], heap_[(pos - 1) / 4])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

void Simulator::remove_heap_entry(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    meta_[heap_[pos].slot()].heap_pos = static_cast<std::uint32_t>(pos);
    heap_.pop_back();
    restore_heap(pos);
  } else {
    heap_.pop_back();
  }
}

EventId Simulator::schedule_event_at(Time at, const SimEvent& ev) {
  at = clamp_time(at);
  const std::uint32_t slot = acquire_slot();
  events_[slot] = ev;
  const std::uint64_t seq = next_seq_++;
  if (seq >= (1ULL << (64 - kSlotBits))) [[unlikely]] {
    throw std::runtime_error("Simulator: sequence space exhausted");
  }
  heap_.push_back(HeapEntry{std::bit_cast<std::uint64_t>(at), (seq << kSlotBits) | slot});
  meta_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return make_id(slot, meta_[slot].gen);
}

EventId Simulator::schedule_at(Time at, Callback fn) {
  const EventId id = schedule_event_at(at, SimEvent{});
  // The slot index is the low EventId bits; park the callback beside it.
  closures_[static_cast<std::uint32_t>(id.value)] = std::move(fn);
  return id;
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = resolve(id);
  if (slot == kNoSlot) return false;
  remove_heap_entry(meta_[slot].heap_pos);
  release_slot(slot);
  return true;
}

bool Simulator::reschedule(EventId id, Time at) {
  const std::uint32_t slot = resolve(id);
  if (slot == kNoSlot) return false;
  const std::size_t pos = meta_[slot].heap_pos;
  const std::uint64_t seq = next_seq_++;  // re-sequence: FIFO among equal times
  if (seq >= (1ULL << (64 - kSlotBits))) [[unlikely]] {
    throw std::runtime_error("Simulator: sequence space exhausted");
  }
  heap_[pos].time_bits = std::bit_cast<std::uint64_t>(clamp_time(at));
  heap_[pos].key = (seq << kSlotBits) | slot;
  restore_heap(pos);
  return true;
}

void Simulator::pop_root() {
  const std::size_t n = heap_.size() - 1;
  if (n == 0) {
    heap_.pop_back();
    return;
  }
  // Floyd's variant: walk the hole down along min-children to the bottom,
  // then drop the last element in and sift it up (it rarely moves far).
  // Unlike the remove-and-restore path this needs no per-level "done yet"
  // comparison against the displaced element.
  std::size_t pos = 0;
  while (4 * pos + 1 < n) {
    const std::size_t best = min_child(pos, n);
    heap_[pos] = heap_[best];
    meta_[heap_[pos].slot()].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = heap_[n];
  meta_[heap_[pos].slot()].heap_pos = static_cast<std::uint32_t>(pos);
  heap_.pop_back();
  sift_up(pos);
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  pop_root();
  const std::uint32_t slot = top.slot();
  now_ = top.time();
  ++fired_;
  // Copy the event out of its slot before firing: the handler may schedule
  // new events, growing events_ and invalidating references into it.
  if (events_[slot].kind == EventKind::kClosure) {
    const Callback fn = std::move(closures_[slot]);
    release_slot(slot);
    fn();
  } else {
    const SimEvent ev = events_[slot];
    release_slot(slot);
    ev.target->dispatch(ev);
  }
  return true;
}

void Simulator::run_until(Time t) {
  while (!heap_.empty() && heap_[0].time() <= t) step();
  if (now_ < t) now_ = t;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace gcs
