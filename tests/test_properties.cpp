// Theorem-level property tests: the quantitative claims of the paper's
// analysis (§5) checked on executable scenarios.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/diameter.h"
#include "metrics/legality.h"
#include "metrics/recorder.h"
#include "metrics/skew.h"
#include "runner/scenario.h"

namespace gcs {
namespace {

ScenarioSpec line_config(int n, double mu = 0.05, double rho = 1e-3) {
  ScenarioSpec cfg;
  cfg.n = n;
  cfg.explicit_edges = topo_line(n);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = rho;
  cfg.aopt.mu = mu;
  cfg.aopt.gtilde_static =
      suggest_gtilde(n, cfg.explicit_edges, cfg.edge_params, cfg.aopt);
  cfg.drift = ComponentSpec("spread");
  cfg.estimates = ComponentSpec("uniform");
  return cfg;
}

// ---------------------------------------------------------------------------
// Theorem 5.6 (I): the global skew grows at rate at most 2*rho.
// ---------------------------------------------------------------------------

TEST(Theorem56, GlobalSkewGrowthRateAtMostTwoRho) {
  auto cfg = line_config(10);
  Scenario s(cfg);
  s.start();
  const double rho = cfg.aopt.rho;
  Time prev_t = 0.0;
  double prev_g = 0.0;
  for (int step = 1; step <= 60; ++step) {
    s.run_until(step * 10.0);
    const double g = s.engine().true_global_skew();
    const double growth_rate = (g - prev_g) / (s.sim().now() - prev_t);
    EXPECT_LE(growth_rate, 2.0 * rho + 1e-6)
        << "global skew grew faster than 2*rho at step " << step;
    prev_g = g;
    prev_t = s.sim().now();
  }
}

// ---------------------------------------------------------------------------
// Theorem 5.6 (II): when the global skew exceeds D(t) + iota, it shrinks at
// rate at least mu*(1-rho) - 2*rho.
// ---------------------------------------------------------------------------

TEST(Theorem56, GlobalSkewRecoversAtFastRate) {
  auto cfg = line_config(8);
  Scenario s(cfg);
  s.start();
  s.run_until(100.0);
  // Jolt the top node upward: global skew >> D(t) + iota.
  const double offset = 5.0;
  s.engine().corrupt_logical(7, s.engine().logical(7) + offset);
  const double g0 = s.engine().true_global_skew();
  ASSERT_GT(g0, offset * 0.9);
  const double d_bound = estimate_dynamic_diameter(s.engine());
  ASSERT_LT(d_bound, offset / 1.5) << "diameter too large for the measurement";

  const Time t0 = s.sim().now();
  const Duration window = 30.0;
  s.run_until(t0 + window);
  const double g1 = s.engine().true_global_skew();
  const double measured_rate = (g0 - g1) / window;
  const double guaranteed =
      cfg.aopt.mu * (1.0 - cfg.aopt.rho) - 2.0 * cfg.aopt.rho;
  EXPECT_GE(measured_rate, guaranteed * 0.9)
      << "recovery rate " << measured_rate << " below guarantee " << guaranteed;
}

TEST(Theorem56, GlobalSkewConvergesNearDiameterBound) {
  // Steady state after recovery: G(t) stays in the O(D) regime, far below
  // naive drift divergence.
  auto cfg = line_config(8);
  Scenario s(cfg);
  s.start();
  s.run_until(100.0);
  s.engine().corrupt_logical(7, s.engine().logical(7) + 5.0);
  s.run_until(400.0);
  const double g = s.engine().true_global_skew();
  const double d_bound = estimate_dynamic_diameter(s.engine());
  EXPECT_LT(g, d_bound + 5.0 * cfg.aopt.iota + 0.5)
      << "global skew failed to converge back to the D(t) regime";
}

// ---------------------------------------------------------------------------
// Theorem 5.22 / Corollary 5.26: stable gradient skew. After stabilization,
// |L_u - L_v| <= (s(d)+1) * d for kappa-distance d (s(d) as in Lemma 5.14).
// ---------------------------------------------------------------------------

struct GradientCase {
  int n;
  const char* drift;
  const char* estimates;
  std::uint64_t seed;
};

class GradientPropertyTest : public ::testing::TestWithParam<GradientCase> {};

TEST_P(GradientPropertyTest, StableGradientBoundHolds) {
  const auto param = GetParam();
  auto cfg = line_config(param.n);
  cfg.drift = ComponentSpec(param.drift);
  if (cfg.drift.kind == "blocks") {
    cfg.drift.params.set("period", 150.0);
    cfg.drift.params.set("blocks", 4);
  }
  cfg.estimates = ComponentSpec(param.estimates);
  cfg.seed = param.seed;
  Scenario s(cfg);
  s.start();

  const double ghat = cfg.aopt.gtilde_static;
  const double sigma = cfg.aopt.sigma();
  // All edges are fully inserted at t=0; wait out the legality transient
  // (Lemma 5.23: Gamma ~ 15*Ghat/mu), then check repeatedly.
  const double warmup = 2.0 * ghat / cfg.aopt.mu;
  s.run_until(warmup);
  for (int round = 0; round < 8; ++round) {
    s.run_for(25.0);
    ASSERT_LT(s.engine().true_global_skew(), ghat);
    for (const auto& point : measure_gradient(s.engine(), 1.0)) {
      const double bound = gradient_bound(point.kappa_dist, ghat, sigma);
      ASSERT_LE(point.skew, bound)
          << "pair (" << point.u << "," << point.v << ") at kappa-distance "
          << point.kappa_dist << " violates the gradient bound";
    }
  }
  for (NodeId u = 0; u < param.n; ++u) {
    EXPECT_FALSE(s.aopt(u).saw_trigger_conflict());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GradientPropertyTest,
    ::testing::Values(
        GradientCase{8, "spread", "uniform", 1},
        GradientCase{12, "blocks", "uniform", 2},
        GradientCase{12, "blocks", "adversarial", 3},
        GradientCase{8, "walk", "uniform", 4},
        GradientCase{8, "spread", "beacon", 5},
        GradientCase{10, "blocks", "beacon", 6}),
    [](const ::testing::TestParamInfo<GradientCase>& info) {
      return "case" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Legality (Def. 5.13 with the Def. 5.19 gradient sequence) holds at all
// sampled times once stabilized — the invariant behind Theorem 5.25.
// ---------------------------------------------------------------------------

TEST(Legality, HoldsThroughoutStabilizedRun) {
  auto cfg = line_config(10);
  cfg.drift = ComponentSpec("blocks");
  cfg.drift.params.set("period", 120.0);
  cfg.drift.params.set("blocks", 2);
  Scenario s(cfg);
  s.start();
  const double ghat = cfg.aopt.gtilde_static;
  s.run_until(2.0 * ghat / cfg.aopt.mu);
  for (int round = 0; round < 10; ++round) {
    s.run_for(40.0);
    const auto report = check_legality(s.engine(), ghat);
    EXPECT_TRUE(report.legal())
        << "margin " << report.worst_margin << " at level " << report.worst_level
        << " node " << report.worst_node << " t=" << s.sim().now();
  }
}

// ---------------------------------------------------------------------------
// Self-stabilization: after corrupting a clock, legality is restored within
// O(Ghat/mu) time (the analysis' stabilization scale).
// ---------------------------------------------------------------------------

TEST(SelfStabilization, LegalityRestoredAfterCorruption) {
  auto cfg = line_config(8);
  Scenario s(cfg);
  s.start();
  const double ghat = cfg.aopt.gtilde_static;
  s.run_until(300.0);

  // Corrupt an interior node by half the global-skew budget.
  s.engine().corrupt_logical(4, s.engine().logical(4) + ghat / 2.0);
  const auto broken = check_legality(s.engine(), ghat);
  ASSERT_FALSE(broken.legal()) << "corruption was not strong enough to matter";

  const Time t0 = s.sim().now();
  const double budget = 6.0 * ghat / cfg.aopt.mu;  // generous O(Ghat/mu)
  Time recovered_at = kTimeInf;
  while (s.sim().now() < t0 + budget) {
    s.run_for(20.0);
    if (check_legality(s.engine(), ghat).legal()) {
      recovered_at = s.sim().now();
      break;
    }
  }
  ASSERT_LT(recovered_at, kTimeInf) << "legality not restored within budget";
  // And it stays legal afterwards.
  for (int round = 0; round < 5; ++round) {
    s.run_for(30.0);
    EXPECT_TRUE(check_legality(s.engine(), ghat).legal());
  }
}

TEST(SelfStabilization, GradientBoundRestoredAfterScatterCorruption) {
  auto cfg = line_config(8);
  Scenario s(cfg);
  s.start();
  const double ghat = cfg.aopt.gtilde_static;
  const double sigma = cfg.aopt.sigma();
  s.run_until(200.0);
  // Scatter all clocks within [0, ghat/2) — a fresh adversarial state that
  // still respects the global-skew budget.
  Rng rng(77);
  const double base = s.engine().logical(0);
  for (NodeId u = 0; u < 8; ++u) {
    s.engine().corrupt_logical(u, base + rng.uniform(0.0, ghat / 2.0));
  }
  s.run_for(8.0 * ghat / cfg.aopt.mu);
  for (const auto& point : measure_gradient(s.engine(), 1.0)) {
    EXPECT_LE(point.skew, gradient_bound(point.kappa_dist, ghat, sigma));
  }
}

// ---------------------------------------------------------------------------
// Clock-rate envelope (§3/§5.5): logical rates in [1-rho, (1+rho)(1+mu)],
// checked across drift models including mode switches.
// ---------------------------------------------------------------------------

TEST(RateEnvelope, HoldsUnderBlockDriftWithCorruptions) {
  auto cfg = line_config(8);
  cfg.drift = ComponentSpec("blocks");
  cfg.drift.params.set("period", 60.0);
  Scenario s(cfg);
  s.start();
  s.run_until(50.0);
  s.engine().corrupt_logical(3, s.engine().logical(3) + 2.0);
  std::vector<double> prev(8);
  for (NodeId u = 0; u < 8; ++u) prev[static_cast<std::size_t>(u)] = s.engine().logical(u);
  Time prev_t = s.sim().now();
  for (int step = 0; step < 50; ++step) {
    s.run_for(4.0);
    for (NodeId u = 0; u < 8; ++u) {
      const double l = s.engine().logical(u);
      const double rate = (l - prev[static_cast<std::size_t>(u)]) / (s.sim().now() - prev_t);
      EXPECT_GE(rate, cfg.aopt.alpha() - 1e-9);
      EXPECT_LE(rate, cfg.aopt.beta() + 1e-9);
      prev[static_cast<std::size_t>(u)] = l;
    }
    prev_t = s.sim().now();
  }
}

}  // namespace
}  // namespace gcs
