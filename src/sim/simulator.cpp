#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace gcs {

Simulator::Simulator(double bucket_width) {
  if (!(bucket_width > 0.0) || std::isinf(bucket_width)) {
    throw std::invalid_argument("Simulator: bucket_width must be positive");
  }
  inv_bucket_width_ = 1.0 / bucket_width;
}

std::uint8_t Simulator::register_dispatch_channel(void* self, DispatchFn fn) {
  require(self != nullptr && fn != nullptr, "Simulator: null dispatch channel");
  require(channels_.size() < kNoChannel, "Simulator: too many dispatch channels");
  channels_.push_back(Channel{self, fn});
  return static_cast<std::uint8_t>(channels_.size() - 1);
}

void Simulator::register_instant_flush(void* self, FlushFn fn) {
  require(self != nullptr && fn != nullptr, "Simulator: null flush hook");
  flush_hooks_.push_back(FlushHook{self, fn});
}

void Simulator::flush_instant() {
  // A hook may re-arm (its deferred work can schedule same-instant events
  // whose handlers defer again); loop until the instant is quiescent. Events
  // scheduled by hooks are NOT fired here — the caller's loop fires them
  // (still at now()) and re-enters this flush before advancing time.
  while (flush_armed_) {
    flush_armed_ = false;
    for (const FlushHook& h : flush_hooks_) h.fn(h.self);
  }
}

Time Simulator::clamp_time(Time at) const {
  if (std::isnan(at)) throw std::invalid_argument("Simulator: NaN event time");
  if (at < now_) {
    // Tolerate tiny negative offsets caused by float round-off in rate
    // conversions; anything larger is a logic error in the caller.
    if (now_ - at > 1e-6 * (std::fabs(now_) + 1.0)) {
      throw std::invalid_argument("Simulator: scheduling in the past");
    }
    at = now_;
  }
  // Times are non-negative (now_ starts at 0 and is monotone), which the
  // heap's bit-pattern ordering relies on; normalize -0.0 to +0.0.
  return at + 0.0;
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (meta_.size() >= kSlotMask) [[unlikely]] {
    throw std::runtime_error("Simulator: too many pending events");
  }
  meta_.emplace_back();
  recs_.emplace_back();
  targets_.emplace_back();
  closures_.emplace_back();
  // blobs_ is NOT grown here: zeroing 32 bytes per slot would tax every
  // schedule; the blob overload below grows it on demand instead.
  return static_cast<std::uint32_t>(meta_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot, EventKind kind) {
  // Only a closure can own resources; typed slot data is plain and may go
  // stale in place (overwritten on reuse).
  if (kind == EventKind::kClosure) closures_[slot] = nullptr;
  SlotMeta& m = meta_[slot];
  if (++m.gen == 0) m.gen = 1;  // invalidate stale handles (wrap skips 0)
  free_slots_.push_back(slot);
}

std::uint32_t Simulator::resolve(EventId id) const {
  if (!id.valid()) return kNoSlot;
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= meta_.size() || meta_[slot].gen != gen) return kNoSlot;
  return slot;  // a live generation always has an entry in some tier
}

void Simulator::sift_up(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!fires_before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    meta_[heap_[pos].slot()].loc = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  meta_[entry.slot()].loc = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  const std::size_t n = heap_.size();
  while (4 * pos + 1 < n) {
    const std::size_t best = min_child(pos, n);
    if (!fires_before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    meta_[heap_[pos].slot()].loc = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  meta_[entry.slot()].loc = static_cast<std::uint32_t>(pos);
}

std::size_t Simulator::min_child(std::size_t pos, std::size_t n) const {
  const std::size_t first = 4 * pos + 1;
  std::size_t best = first;
  const std::size_t last = first + 4 < n ? first + 4 : n;
#ifdef __SIZEOF_INT128__
  // Branchless min-of-children: sift comparisons are data-dependent and
  // mispredict ~50% of the time, so select via conditional moves.
  unsigned __int128 best_key = order_key(heap_[first]);
  for (std::size_t c = first + 1; c < last; ++c) {
    const unsigned __int128 ck = order_key(heap_[c]);
    const bool smaller = ck < best_key;
    best = smaller ? c : best;
    best_key = smaller ? ck : best_key;
  }
#else
  for (std::size_t c = first + 1; c < last; ++c) {
    if (fires_before(heap_[c], heap_[best])) best = c;
  }
#endif
  return best;
}

void Simulator::restore_heap(std::size_t pos) {
  if (pos > 0 && fires_before(heap_[pos], heap_[(pos - 1) / 4])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

void Simulator::remove_heap_entry(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos != last) {
    heap_[pos] = heap_[last];
    meta_[heap_[pos].slot()].loc = static_cast<std::uint32_t>(pos);
    heap_.pop_back();
    restore_heap(pos);
  } else {
    heap_.pop_back();
  }
}

void Simulator::push_heap_entry(const HeapEntry& e) {
  heap_.push_back(e);
  meta_[e.slot()].loc = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

std::vector<Simulator::HeapEntry>& Simulator::tier_vec(std::uint32_t tier,
                                                       std::uint32_t bucket) {
  return tier == kTierL1 ? l1_[bucket] : tier == kTierL2 ? l2_[bucket] : far_;
}

void Simulator::bucket_push(std::uint32_t tier, std::uint32_t bucket,
                            const HeapEntry& e) {
  std::vector<HeapEntry>& v = tier_vec(tier, bucket);
  meta_[e.slot()].loc = pack_loc(tier, bucket, static_cast<std::uint32_t>(v.size()));
  v.push_back(e);
  ++wheel_count_;
}

void Simulator::bucket_remove(std::uint32_t tier, std::uint32_t bucket,
                              std::uint32_t pos) {
  std::vector<HeapEntry>& v = tier_vec(tier, bucket);
  const std::uint32_t last = static_cast<std::uint32_t>(v.size()) - 1;
  if (pos != last) {
    v[pos] = v[last];
    meta_[v[pos].slot()].loc = pack_loc(tier, bucket, pos);
  }
  v.pop_back();
  --wheel_count_;
}

void Simulator::insert_entry(const HeapEntry& e) {
  const std::uint64_t ep = epoch_of(e.time());
  if (ep <= cur_epoch_) {
    push_heap_entry(e);
    return;
  }
  const std::uint64_t block = ep >> kL1Bits;
  const std::uint64_t cur_block = cur_epoch_ >> kL1Bits;
  if (block == cur_block) {
    bucket_push(kTierL1, static_cast<std::uint32_t>(ep & kL1Mask), e);
  } else if (block - cur_block <= kL2Count) {
    bucket_push(kTierL2, static_cast<std::uint32_t>(block & (kL2Count - 1)), e);
  } else {
    bucket_push(kTierFar, 0, e);
    far_min_coarse_ = std::min(far_min_coarse_, block);
  }
}

Simulator::HeapEntry Simulator::detach_entry(std::uint32_t slot) {
  const std::uint32_t loc = meta_[slot].loc;
  const std::uint32_t tier = loc >> 30;
  if (tier == kTierNear) {
    if (((loc >> 24) & 0x3f) == kRunBucket) {
      // Erase from the sorted run, preserving order; refresh the positions
      // of the shifted tail. Rare (see the header comment) and O(run).
      const std::uint32_t pos = loc & kPosMask;
      const HeapEntry e = run_[pos];
      run_.erase(run_.begin() + static_cast<std::ptrdiff_t>(pos));
      for (std::size_t i = pos; i < run_.size(); ++i) {
        meta_[run_[i].slot()].loc =
            pack_loc(kTierNear, kRunBucket, static_cast<std::uint32_t>(i));
      }
      return e;
    }
    const HeapEntry e = heap_[loc];
    remove_heap_entry(loc);
    return e;
  }
  const std::uint32_t bucket = (loc >> 24) & 0x3f;
  const std::uint32_t pos = loc & kPosMask;
  const HeapEntry e = tier_vec(tier, bucket)[pos];
  bucket_remove(tier, bucket, pos);
  return e;
}

void Simulator::drain_far() {
  const std::uint64_t cur_block = cur_epoch_ >> kL1Bits;
  if (far_.empty() || far_min_coarse_ > cur_block + kL2Count) return;
  std::size_t w = 0;
  std::uint64_t remaining_min = kEpochSat;
  for (std::size_t i = 0; i < far_.size(); ++i) {
    const HeapEntry e = far_[i];
    const std::uint64_t block = epoch_of(e.time()) >> kL1Bits;
    if (block <= cur_block + kL2Count) {
      --wheel_count_;  // leaving the far list; insert_entry re-counts it
      insert_entry(e);
    } else {
      far_[w] = e;
      meta_[e.slot()].loc = pack_loc(kTierFar, 0, static_cast<std::uint32_t>(w));
      ++w;
      remaining_min = std::min(remaining_min, block);
    }
  }
  far_.resize(w);
  far_min_coarse_ = remaining_min;
}

void Simulator::drain_l2_block(std::uint64_t block) {
  std::vector<HeapEntry>& v = l2_[block & (kL2Count - 1)];
  wheel_count_ -= v.size();
  for (const HeapEntry& e : v) insert_entry(e);
  v.clear();
}

void Simulator::advance_wheel() {
  // 1) The remainder of the current coarse block: promote the next
  //    non-empty fine bucket wholesale into the (empty) heap.
  const std::uint64_t block_end = (cur_epoch_ >> kL1Bits << kL1Bits) | kL1Mask;
  for (std::uint64_t e = cur_epoch_ + 1; e <= block_end; ++e) {
    std::vector<HeapEntry>& b = l1_[e & kL1Mask];
    if (b.empty()) continue;
    cur_epoch_ = e;
    wheel_count_ -= b.size();
    // The near tier is empty here, so the bucket is adopted wholesale as
    // the new run: one sort, then every pop is a sequential O(1) read.
    run_.clear();
    run_.swap(b);
    run_head_ = 0;
    std::sort(run_.begin(), run_.end(),
              [](const HeapEntry& x, const HeapEntry& y) { return fires_before(x, y); });
    for (std::size_t pos = 0; pos < run_.size(); ++pos) {
      meta_[run_[pos].slot()].loc =
          pack_loc(kTierNear, kRunBucket, static_cast<std::uint32_t>(pos));
    }
    return;
  }
  // 2) Jump to the next coarse block holding events (L2 window or far
  //    list), slide the windows, and let the next prepare_next() iteration
  //    promote within it.
  const std::uint64_t cur_block = cur_epoch_ >> kL1Bits;
  std::uint64_t target = kEpochSat;
  for (std::uint64_t i = 1; i <= kL2Count; ++i) {
    if (!l2_[(cur_block + i) & (kL2Count - 1)].empty()) {
      target = cur_block + i;
      break;
    }
  }
  if (!far_.empty()) {
    // far_min_coarse_ is a conservative (possibly stale-low) bound; take the
    // exact minimum so the jump always lands on a block with events.
    std::uint64_t fmin = kEpochSat;
    for (const HeapEntry& e : far_) {
      fmin = std::min(fmin, epoch_of(e.time()) >> kL1Bits);
    }
    far_min_coarse_ = fmin;
    target = std::min(target, fmin);
  }
  // wheel_count_ > 0 with L1 exhausted means L2 or far holds something, and
  // saturated epochs still map to a finite block (kEpochSat >> kL1Bits).
  require(target != kEpochSat, "Simulator: wheel accounting corrupted");
  cur_epoch_ = target << kL1Bits;
  // Drain the target block BEFORE the far list: far entries for block
  // target + kL2Count share the target's L2 bucket (residue collision), so
  // the bucket must be empty when they arrive.
  drain_l2_block(target);
  drain_far();
  // Entries at the block-start epoch landed in the heap directly; the rest
  // are distributed over this block's L1 buckets for step 1 to find.
}

bool Simulator::prepare_next() {
  while (run_head_ >= run_.size() && heap_.empty()) {
    if (wheel_count_ == 0) return false;
    advance_wheel();
  }
  return true;
}

EventId Simulator::schedule_event_at(Time at, const SimEvent& ev) {
  at = clamp_time(at);
  const std::uint32_t slot = acquire_slot();
  // One aligned 32-byte block copy: for node events the delivery fields are
  // dead weight, but they live in the same cache line, and the straight
  // struct copy beats any field-wise repacking.
  recs_[slot] = ev;
  const std::uint64_t seq = next_seq_++;
  if (seq >= (1ULL << (64 - kSlotBits))) [[unlikely]] {
    throw std::runtime_error("Simulator: sequence space exhausted");
  }
  insert_entry(HeapEntry{std::bit_cast<std::uint64_t>(at), (seq << kSlotBits) | slot});
  return make_id(slot, meta_[slot].gen);
}

EventId Simulator::schedule_event_at(Time at, const SimEvent& ev,
                                     const InlineBlob& blob) {
  const EventId id = schedule_event_at(at, ev);
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value);
  if (blobs_.size() <= slot) blobs_.resize(meta_.size());  // lazy, amortized
  blobs_[slot] = blob;
  return id;
}

EventId Simulator::schedule_event_at(Time at, SimEvent ev, EventDispatcher* target) {
  require(target != nullptr, "Simulator: null dispatch target");
  ev.channel = kNoChannel;  // route the fire through the virtual arm
  const EventId id = schedule_event_at(at, ev);
  targets_[static_cast<std::uint32_t>(id.value)] = target;
  return id;
}

EventId Simulator::schedule_at(Time at, Callback fn) {
  const EventId id = schedule_event_at(at, SimEvent{});
  // The slot index is the low EventId bits; park the callback beside it.
  closures_[static_cast<std::uint32_t>(id.value)] = std::move(fn);
  return id;
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = resolve(id);
  if (slot == kNoSlot) return false;
  (void)detach_entry(slot);
  release_slot(slot, recs_[slot].kind);
  return true;
}

bool Simulator::reschedule(EventId id, Time at) {
  const std::uint32_t slot = resolve(id);
  if (slot == kNoSlot) return false;
  at = clamp_time(at);
  const std::uint64_t seq = next_seq_++;  // re-sequence: FIFO among equal times
  if (seq >= (1ULL << (64 - kSlotBits))) [[unlikely]] {
    throw std::runtime_error("Simulator: sequence space exhausted");
  }
  const HeapEntry entry{std::bit_cast<std::uint64_t>(at), (seq << kSlotBits) | slot};
  const std::uint32_t loc = meta_[slot].loc;
  if (loc <= kPosMask && epoch_of(at) <= cur_epoch_) {
    // Overlay-heap entry staying in the near horizon (loc <= kPosMask means
    // tier 0, bucket 0): update in place, one restore instead of two sifts.
    heap_[loc] = entry;
    restore_heap(loc);
    return true;
  }
  (void)detach_entry(slot);
  insert_entry(entry);
  return true;
}

void Simulator::pop_root() {
  const std::size_t n = heap_.size() - 1;
  if (n == 0) {
    heap_.pop_back();
    return;
  }
  // Floyd's variant: walk the hole down along min-children to the bottom,
  // then drop the last element in and sift it up (it rarely moves far).
  // Unlike the remove-and-restore path this needs no per-level "done yet"
  // comparison against the displaced element.
  std::size_t pos = 0;
  while (4 * pos + 1 < n) {
    const std::size_t best = min_child(pos, n);
    heap_[pos] = heap_[best];
    meta_[heap_[pos].slot()].loc = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = heap_[n];
  meta_[heap_[pos].slot()].loc = static_cast<std::uint32_t>(pos);
  heap_.pop_back();
  sift_up(pos);
}

void Simulator::fire_entry(const HeapEntry& top) {
  const std::uint32_t slot = top.slot();
  now_ = top.time();
  ++fired_;
  // One aligned 32-byte copy out of the slot, so the handler may schedule
  // freely (growing recs_) without invalidating the record it was handed.
  const SimEvent ev = recs_[slot];
  if (ev.flags & kEventFlagInlineBlob) {
    // Stage the inline payload the same way: stable across re-entrant
    // scheduling (handlers never re-enter the fire path).
    fired_blob_ = blobs_[slot];
  }
  if (ev.kind == EventKind::kClosure) {
    // Move the callback out before firing: the handler may schedule new
    // events, growing closures_ and invalidating references into it.
    const Callback fn = std::move(closures_[slot]);
    release_slot(slot, EventKind::kClosure);
    fn();
    return;
  }
  if (ev.channel != kNoChannel) [[likely]] {
    release_slot(slot, ev.kind);
    // Channel dispatch: one indirect call through a plain function pointer
    // whose body is a direct call into the final owner class.
    const Channel ch = channels_[ev.channel];
    ch.fn(ch.self, ev);
  } else {
    EventDispatcher* const target = targets_[slot];  // cold escape arm
#ifndef NDEBUG
    // A typed record with channel == kNoChannel is only valid through the
    // target overload; scheduling one through the channel-dispatch overload
    // leaves a null (or a recycled slot's stale) pointer here. Catch the
    // null case at the fire site instead of segfaulting in the callee.
    require(target != nullptr,
            "Simulator: kNoChannel event fired without a dispatch target "
            "(use the schedule_event_at(at, ev, target) overload)");
#endif
    release_slot(slot, ev.kind);
    target->dispatch(ev);
  }
}

bool Simulator::step() {
  for (;;) {
    if (!prepare_next()) {
      if (!flush_armed_) return false;
      flush_instant();  // may schedule new events; re-check the queue
      continue;
    }
    const bool from_run = next_is_run();
    const HeapEntry top = from_run ? run_[run_head_] : heap_[0];
    if (flush_armed_ && top.time() > now_) {
      // Close the current instant before firing into the next one. The
      // flush may schedule earlier-firing (same-instant) events, so loop.
      flush_instant();
      continue;
    }
    if (from_run) {
      ++run_head_;
    } else {
      pop_root();
    }
    fire_entry(top);
    return true;
  }
}

void Simulator::run_until(Time t) {
  while (prepare_next()) {
    // Batch-drain the sorted run: while the run front is the next event,
    // pop-and-fire in this tight loop without re-entering wheel bookkeeping.
    // Events scheduled during the drain can only land in the overlay heap
    // (insert_entry never appends to the run), and the run front is compared
    // against the overlay root before every pop, so a later-scheduled but
    // earlier-firing event still preempts the run — order is preserved.
    while (run_head_ < run_.size() &&
           (heap_.empty() || fires_before(run_[run_head_], heap_[0]))) {
      const HeapEntry top = run_[run_head_];
      if (flush_armed_ && top.time() > now_) {
        // Instant boundary inside the run: close the current instant first.
        // The flush may schedule earlier-firing overlay events, so re-check
        // both loop conditions from scratch.
        flush_instant();
        continue;
      }
      if (top.time() > t) {
        // The degenerate t <= now() call can reach here with the instant
        // still open (the boundary check above only fires for top > now).
        if (flush_armed_) {
          flush_instant();
          continue;
        }
        if (now_ < t) now_ = t;  // idle up to the horizon; run front is beyond it
        return;
      }
      ++run_head_;
      if (run_head_ < run_.size()) {
        // The next event's slot record is known one pop ahead — pull its
        // (randomly scattered) line in while this event runs.
        __builtin_prefetch(&recs_[run_[run_head_].slot()]);
      }
      fire_entry(top);
    }
    if (!heap_.empty()) {
      const HeapEntry top = heap_[0];
      if (flush_armed_ && top.time() > now_) {
        flush_instant();
        continue;  // the flush may have changed what fires next
      }
      if (top.time() > t) {
        if (flush_armed_) {
          flush_instant();
          continue;
        }
        if (now_ < t) now_ = t;
        return;
      }
      pop_root();
      fire_entry(top);
    }
    // Near tier exhausted: loop back into prepare_next to promote the next
    // wheel bucket (or detect an empty queue).
  }
  // Queue drained with the last instant possibly still open: flush, and
  // keep firing if the flush scheduled follow-up events within the horizon.
  if (flush_armed_) {
    flush_instant();
    if (prepare_next()) {
      run_until(t);
      return;
    }
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_before(Time t) {
  // Structurally run_until with two deliberate differences: the horizon test
  // is `>= t` (events AT t stay queued for after the caller's barrier), and
  // now_ is never idle-advanced to t (a peer shard may inject events at any
  // time in [now, t)). Kept as a separate body so run_until — the path every
  // serial scenario, golden trace and pinned fingerprint runs through — is
  // untouched.
  while (prepare_next()) {
    while (run_head_ < run_.size() &&
           (heap_.empty() || fires_before(run_[run_head_], heap_[0]))) {
      const HeapEntry top = run_[run_head_];
      if (flush_armed_ && top.time() > now_) {
        flush_instant();
        continue;
      }
      if (top.time() >= t) {
        if (flush_armed_) {
          flush_instant();
          continue;
        }
        return;
      }
      ++run_head_;
      if (run_head_ < run_.size()) {
        __builtin_prefetch(&recs_[run_[run_head_].slot()]);
      }
      fire_entry(top);
    }
    if (!heap_.empty()) {
      const HeapEntry top = heap_[0];
      if (flush_armed_ && top.time() > now_) {
        flush_instant();
        continue;
      }
      if (top.time() >= t) {
        if (flush_armed_) {
          flush_instant();
          continue;
        }
        return;
      }
      pop_root();
      fire_entry(top);
    }
  }
  if (flush_armed_) {
    flush_instant();
    if (prepare_next()) run_before(t);
  }
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace gcs
