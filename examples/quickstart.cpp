// Quickstart: the smallest complete use of the library.
//
// Builds an 8-node ring running AOPT, lets it run for a while under
// drifting hardware clocks, and prints the per-node clock state plus the
// skew guarantees. Start here.
#include <iostream>

#include "metrics/legality.h"
#include "metrics/skew.h"
#include "runner/scenario.h"
#include "util/table.h"

using namespace gcs;

int main() {
  // 1. Describe the scenario: every dimension is a named, registered
  // component (see `simulate_cli --list`), plus typed model knobs.
  ScenarioSpec spec;
  spec.name = "quickstart";
  spec.n = 8;
  spec.topology = ComponentSpec("ring");    // registry component by name
  spec.edge_params = default_edge_params(); // ε=0.1, τ=0.5, delays [0.1,0.5]
  spec.aopt.rho = 1e-3;                     // hardware drift bound
  spec.aopt.mu = 0.05;                      // fast-mode boost (eq. 7)
  spec.gtilde_auto = true;                  // derive G̃ from the topology
  spec.drift = ComponentSpec("spread");     // worst-case constant drift
  // The same spec is addressable as strings — the CLI, benches and sweeps
  // all share this one parsing path:
  spec.set("mu", 0.05);

  // Parameter validation is explicit — the paper's constraints (eqs. 7-9).
  const auto validation = spec.aopt.validate();
  std::cout << "sigma = " << spec.aopt.sigma() << " (base of the skew logarithm)\n"
            << validation.str();

  // 2. Build and run.
  Scenario scenario(spec);
  scenario.start();
  scenario.run_until(500.0);

  // 3. Inspect.
  Table table("quickstart: node state at t=500");
  table.headers({"node", "hardware H_u", "logical L_u", "max est M_u", "mode"});
  for (NodeId u = 0; u < scenario.spec().n; ++u) {
    table.row()
        .cell(u)
        .cell(scenario.engine().hardware(u))
        .cell(scenario.engine().logical(u))
        .cell(scenario.engine().max_estimate(u))
        .cell(scenario.engine().rate_multiplier(u) > 1.0 ? "fast" : "slow");
  }
  table.print();

  const auto snap = measure_skew(scenario.engine());
  const auto legality = check_legality(scenario.engine(), scenario.spec().aopt.gtilde_static);
  std::cout << "global skew  G(t) = " << format_double(snap.global) << "\n"
            << "worst local skew  = " << format_double(snap.worst_local)
            << "  (" << format_double(snap.worst_local_ratio, 3)
            << " kappa on edge " << snap.worst_local_edge.str() << ")\n"
            << "gradient legality = " << (legality.legal() ? "LEGAL" : "VIOLATED")
            << " (worst margin " << format_double(legality.worst_margin) << ")\n";
  return legality.legal() ? 0 : 1;
}
