// Runtime subsystem tests: SPSC ring, wire codec, time sources, pipe fault
// injection, and live AOPT clusters (lockstep-deterministic) including
// re-convergence under drop/duplicate/reorder faults, liveness-driven
// membership (failure detector, partition/heal, crash/restart) and the
// deterministic chaos layer. Also covers the RTT estimate source in plain
// simulation mode (registry-selected).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "estimate/rtt_estimate.h"
#include "metrics/skew.h"
#include "rt/chaos.h"
#include "rt/liveness.h"
#include "rt/rt_cluster.h"
#include "rt/rt_node.h"
#include "rt/rt_transport.h"
#include "rt/spsc_ring.h"
#include "rt/tcp_transport.h"
#include "rt/time_source.h"
#include "rt/wire.h"
#include "runner/scenario.h"

using namespace gcs;

namespace {

// ----------------------------------------------------------------- spsc ring

TEST(SpscRing, FifoAndCapacity) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.size_approx(), 0u);
  int out = 0;
  EXPECT_FALSE(ring.pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99)) << "full ring must refuse";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));
  // Wrap-around: cursors are monotone, the mask does the indexing.
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.push(round));
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(SpscRing, RejectsNonPowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(3), std::runtime_error);
  EXPECT_THROW(SpscRing<int>(1), std::runtime_error);
  EXPECT_NO_THROW(SpscRing<int>(2));
}

TEST(SpscRing, CrossThreadOrderPreserved) {
  SpscRing<int> ring(64);
  constexpr int kCount = 20000;
  std::vector<int> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    int v = 0;
    while (static_cast<int>(received.size()) < kCount) {
      if (ring.pop(v)) received.push_back(v);
    }
  });
  for (int i = 0; i < kCount;) {
    if (ring.push(i)) ++i;
  }
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
}

// ---------------------------------------------------------------- wire codec

WireMsg roundtrip(const WireMsg& in) {
  std::uint8_t buf[kWireMax];
  const std::size_t len = wire_encode(in, buf);
  EXPECT_LE(len, kWireMax);
  WireMsg out;
  EXPECT_TRUE(wire_decode(buf, len, out));
  return out;
}

TEST(Wire, RoundTripsEveryPayload) {
  WireMsg m;
  m.from = 3;
  m.to = 7;
  m.sent_at = 12.5;

  m.payload = Beacon{1.25, 2.5, 0.75};
  WireMsg b = roundtrip(m);
  EXPECT_EQ(b.from, 3);
  EXPECT_EQ(b.to, 7);
  EXPECT_DOUBLE_EQ(b.sent_at, 12.5);
  ASSERT_TRUE(std::holds_alternative<Beacon>(b.payload));
  EXPECT_DOUBLE_EQ(std::get<Beacon>(b.payload).logical, 1.25);
  EXPECT_DOUBLE_EQ(std::get<Beacon>(b.payload).max_estimate, 2.5);
  EXPECT_DOUBLE_EQ(std::get<Beacon>(b.payload).min_estimate, 0.75);

  m.payload = InsertEdgeMsg{9.0, 42.0};
  WireMsg ins = roundtrip(m);
  ASSERT_TRUE(std::holds_alternative<InsertEdgeMsg>(ins.payload));
  EXPECT_DOUBLE_EQ(std::get<InsertEdgeMsg>(ins.payload).l_ins, 9.0);
  EXPECT_DOUBLE_EQ(std::get<InsertEdgeMsg>(ins.payload).gtilde, 42.0);

  m.payload = TimeRequest{77u, 3.25};
  WireMsg req = roundtrip(m);
  ASSERT_TRUE(std::holds_alternative<TimeRequest>(req.payload));
  EXPECT_EQ(std::get<TimeRequest>(req.payload).id, 77u);
  EXPECT_DOUBLE_EQ(std::get<TimeRequest>(req.payload).sender_hw, 3.25);

  m.payload = TimeResponse{77u, 3.25, 4.5};
  WireMsg resp = roundtrip(m);
  ASSERT_TRUE(std::holds_alternative<TimeResponse>(resp.payload));
  EXPECT_EQ(std::get<TimeResponse>(resp.payload).id, 77u);
  EXPECT_DOUBLE_EQ(std::get<TimeResponse>(resp.payload).echo_hw, 3.25);
  EXPECT_DOUBLE_EQ(std::get<TimeResponse>(resp.payload).remote_logical, 4.5);

  m.payload = LivenessPing{123u, 1u};
  WireMsg ping = roundtrip(m);
  ASSERT_TRUE(std::holds_alternative<LivenessPing>(ping.payload));
  EXPECT_EQ(std::get<LivenessPing>(ping.payload).seq, 123u);
  EXPECT_EQ(std::get<LivenessPing>(ping.payload).kind, 1u);
}

TEST(Wire, DeliverAtNeverOnTheWire) {
  WireMsg m;
  m.from = 0;
  m.to = 1;
  m.deliver_at = 99.0;  // pipe-local fault state
  m.payload = Beacon{};
  WireMsg out = roundtrip(m);
  EXPECT_DOUBLE_EQ(out.deliver_at, 0.0);
}

TEST(Wire, RejectsMalformedFrames) {
  WireMsg m;
  m.from = 1;
  m.to = 2;
  m.payload = Beacon{1.0, 2.0, 3.0};
  std::uint8_t buf[kWireMax];
  const std::size_t len = wire_encode(m, buf);

  WireMsg out;
  EXPECT_FALSE(wire_decode(buf, len - 1, out)) << "truncated";
  EXPECT_FALSE(wire_decode(buf, 3, out)) << "shorter than header";

  std::uint8_t bad[kWireMax];
  std::copy(buf, buf + len, bad);
  bad[2] = 0xFF;  // version
  EXPECT_FALSE(wire_decode(bad, len, out));
  std::copy(buf, buf + len, bad);
  bad[3] = 9;  // tag
  EXPECT_FALSE(wire_decode(bad, len, out));
  std::copy(buf, buf + len, bad);
  bad[0] = static_cast<std::uint8_t>(bad[0] + 1);  // length prefix mismatch
  EXPECT_FALSE(wire_decode(bad, len, out));
}

TEST(Wire, CrcCatchesEverySingleBitFlip) {
  // CRC32 detects all single-bit errors, so this holds for EVERY position —
  // including the length prefix and the trailer itself.
  WireMsg m;
  m.from = 1;
  m.to = 2;
  m.payload = TimeResponse{77u, 3.25, 4.5};
  std::uint8_t buf[kWireMax];
  const std::size_t len = wire_encode(m, buf);
  std::uint8_t bad[kWireMax];
  WireMsg out;
  for (std::size_t bit = 0; bit < len * 8; ++bit) {
    std::copy(buf, buf + len, bad);
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(wire_decode(bad, len, out)) << "flip at bit " << bit;
  }
}

TEST(Wire, StillAcceptsLegacyV1Frames) {
  // One release of compatibility: a v1 frame (no CRC trailer) from an
  // old peer must still decode. Synthesized from a v2 encode by stripping
  // the trailer and rewriting the version byte + length prefix.
  WireMsg m;
  m.from = 4;
  m.to = 5;
  m.sent_at = 6.5;
  m.payload = Beacon{1.25, 2.5, 0.75};
  std::uint8_t buf[kWireMax];
  const std::size_t v2_len = wire_encode(m, buf);
  ASSERT_GT(v2_len, kWireCrcBytes);
  const std::size_t v1_len = v2_len - kWireCrcBytes;
  const std::size_t v1_body = v1_len - 2;  // the prefix counts bytes after it
  buf[0] = static_cast<std::uint8_t>(v1_body & 0xFF);
  buf[1] = static_cast<std::uint8_t>(v1_body >> 8);
  buf[2] = kWireVersionLegacy;
  WireMsg out;
  ASSERT_TRUE(wire_decode(buf, v1_len, out));
  EXPECT_EQ(out.from, 4);
  EXPECT_EQ(out.to, 5);
  EXPECT_DOUBLE_EQ(out.sent_at, 6.5);
  ASSERT_TRUE(std::holds_alternative<Beacon>(out.payload));
  EXPECT_DOUBLE_EQ(std::get<Beacon>(out.payload).logical, 1.25);
}

TEST(Wire, FuzzNeverCrashesNeverAcceptsACorruptV2Frame) {
  // Satellite hardening gate: 10k seeded adversarial buffers. Random bytes
  // and truncations must never crash the decoder, and no version-2 frame
  // may ever decode with a wrong CRC (a random buffer could legitimately
  // parse as v1 — that's what the one-release compatibility window costs).
  Rng rng(0xf0220);
  std::uint8_t buf[kWireMax];
  WireMsg out;
  const std::vector<Payload> payloads{
      Beacon{1.0, 2.0, 3.0}, InsertEdgeMsg{4.0, 5.0}, TimeRequest{6u, 7.0},
      TimeResponse{8u, 9.0, 10.0}, LivenessPing{11u, 1u}};
  for (int iter = 0; iter < 10000; ++iter) {
    WireMsg m;
    m.from = static_cast<NodeId>(rng.below(16));
    m.to = static_cast<NodeId>(rng.below(16));
    m.sent_at = rng.uniform01();
    m.payload = payloads[rng.below(payloads.size())];
    const std::size_t len = wire_encode(m, buf);
    ASSERT_LE(len, kWireMax);
    // Every valid encode round-trips...
    ASSERT_TRUE(wire_decode(buf, len, out)) << "iter " << iter;
    ASSERT_EQ(out.payload.index(), m.payload.index());
    // ...every truncation is rejected...
    const std::size_t cut = rng.below(len);
    EXPECT_FALSE(wire_decode(buf, cut, out)) << "truncated to " << cut;
    // ...any 1..4 bit flips never decode as v2 with a bad CRC (single
    // flips are guaranteed-caught; multi flips must at least never crash).
    const int flips = 1 + static_cast<int>(rng.below(4));
    std::vector<std::size_t> bits;
    while (static_cast<int>(bits.size()) < flips) {
      const std::size_t bit = rng.below(len * 8);
      // Distinct positions only: flipping one bit twice is a no-op and the
      // unchanged frame would (correctly) decode.
      if (std::find(bits.begin(), bits.end(), bit) != bits.end()) continue;
      bits.push_back(bit);
      buf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    if (wire_decode(buf, len, out)) {
      EXPECT_EQ(buf[2], kWireVersionLegacy)
          << "iter " << iter << ": a corrupt v2 frame slipped past the CRC";
    }
    // Pure noise: arbitrary bytes at arbitrary length must not crash.
    const std::size_t noise_len = rng.below(kWireMax + 1);
    for (std::size_t k = 0; k < noise_len; ++k) {
      buf[k] = static_cast<std::uint8_t>(rng.below(256));
    }
    if (wire_decode(buf, noise_len, out)) {
      EXPECT_EQ(buf[2], kWireVersionLegacy) << "iter " << iter;
    }
  }
}

// -------------------------------------------------------------- time sources

TEST(TimeSourceSuite, SimClockReadsKernelAndRefusesToSleep) {
  Simulator sim;
  SimClock clock(sim);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  EXPECT_NO_THROW(clock.sleep_until(5.0));
  EXPECT_THROW(clock.sleep_until(6.0), std::runtime_error);
}

TEST(TimeSourceSuite, ScaledClockScalesFromOrigin) {
  VirtualClock inner;
  inner.advance_to(100.0);
  ScaledClock scaled(inner, 10.0);  // origin captured at 100
  EXPECT_DOUBLE_EQ(scaled.now(), 0.0);
  inner.advance(2.0);
  EXPECT_DOUBLE_EQ(scaled.now(), 20.0);

  ScaledClock anchored(inner, 2.0, 100.0);  // explicit origin
  EXPECT_DOUBLE_EQ(anchored.now(), 4.0);
}

TEST(TimeSourceSuite, VirtualClockWakesSleepers) {
  VirtualClock clock;
  EXPECT_THROW(clock.advance_to(-1.0), std::runtime_error);
  std::thread sleeper([&] { clock.sleep_until(3.0); });
  clock.advance_to(1.0);
  clock.advance(2.0);
  sleeper.join();
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(TimeSourceSuite, MonotonicClockAdvances) {
  MonotonicClock clock;
  const Time a = clock.now();
  const Time b = clock.now();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0.0);
}

// ------------------------------------------------------------------ pipe hub

WireMsg beacon_msg(NodeId from, NodeId to, double tag) {
  WireMsg m;
  m.from = from;
  m.to = to;
  m.sent_at = tag;
  m.payload = Beacon{tag, tag, tag};
  return m;
}

TEST(PipeHub, DeliversInOrderWithoutFaults) {
  VirtualClock clock;
  PipeHub hub(2, clock);
  for (int i = 0; i < 5; ++i) hub.send(beacon_msg(0, 1, i));
  WireMsg out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(hub.poll(1, out));
    EXPECT_DOUBLE_EQ(out.sent_at, i);
  }
  EXPECT_FALSE(hub.poll(1, out));
  EXPECT_EQ(hub.sent(), 5u);
  EXPECT_EQ(hub.dropped(), 0u);
}

TEST(PipeHub, FaultsAreSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    VirtualClock clock;
    FaultSpec faults;
    faults.drop = 0.3;
    faults.dup = 0.2;
    faults.reorder = 0.3;
    faults.delay = 1.0;
    faults.seed = seed;
    PipeHub hub(2, clock, faults);
    for (int i = 0; i < 200; ++i) hub.send(beacon_msg(0, 1, i));
    clock.advance_to(10.0);  // release every delayed copy
    std::vector<double> seen;
    WireMsg out;
    while (hub.poll(1, out)) seen.push_back(out.sent_at);
    return seen;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b) << "same seed, same interleaving -> same fault pattern";
  EXPECT_NE(a, c) << "different seed must differ";
  EXPECT_LT(a.size(), 220u);
  EXPECT_GT(a.size(), 120u);
}

TEST(PipeHub, ReorderHoldsBackUntilClockPasses) {
  VirtualClock clock;
  FaultSpec faults;
  faults.reorder = 1.0;  // every message delayed by uniform(0, delay]
  faults.delay = 5.0;
  PipeHub hub(2, clock, faults);
  hub.send(beacon_msg(0, 1, 1.0));
  WireMsg out;
  EXPECT_FALSE(hub.poll(1, out)) << "held back at t=0";
  clock.advance_to(5.0);
  EXPECT_TRUE(hub.poll(1, out));
  EXPECT_EQ(hub.delayed(), 1u);
}

TEST(PipeHub, DuplicateYieldsTwoCopies) {
  VirtualClock clock;
  FaultSpec faults;
  faults.dup = 1.0;
  PipeHub hub(2, clock, faults);
  hub.send(beacon_msg(0, 1, 1.0));
  WireMsg out;
  EXPECT_TRUE(hub.poll(1, out));
  EXPECT_TRUE(hub.poll(1, out));
  EXPECT_FALSE(hub.poll(1, out));
  EXPECT_EQ(hub.duplicated(), 1u);
}

TEST(PipeHub, RingFullCountsPerDirectedLink) {
  VirtualClock clock;
  PipeHub hub(2, clock, {}, 2);  // capacity-2 rings: backpressure on purpose
  for (int i = 0; i < 5; ++i) hub.send(beacon_msg(0, 1, i));
  EXPECT_EQ(hub.sent(), 2u);
  EXPECT_EQ(hub.ring_full(), 3u);
  EXPECT_EQ(hub.ring_full(0, 1), 3u);
  EXPECT_EQ(hub.ring_full(1, 0), 0u);
  EXPECT_EQ(hub.dropped(), 0u) << "backpressure is not an injected fault";
  // Draining frees the ring and sends succeed again.
  WireMsg out;
  EXPECT_TRUE(hub.poll(1, out));
  EXPECT_TRUE(hub.poll(1, out));
  EXPECT_FALSE(hub.poll(1, out));
  EXPECT_TRUE(hub.send(beacon_msg(0, 1, 9)));
  EXPECT_EQ(hub.ring_full(0, 1), 3u);
}

TEST(PipeHub, ChaosFaultSlotsAreDirectionalAndClearable) {
  VirtualClock clock;
  PipeHub hub(2, clock);
  hub.set_link_fault(0, 1, LinkFault{1.0f, 0.0f});  // block 0 -> 1
  WireMsg out;
  for (int i = 0; i < 10; ++i) hub.send(beacon_msg(0, 1, i));
  EXPECT_FALSE(hub.poll(1, out));
  EXPECT_EQ(hub.chaos_dropped(), 10u);
  EXPECT_EQ(hub.dropped(), 0u) << "chaos drops never pollute FaultSpec drops";
  // The reverse direction is a separate slot.
  EXPECT_TRUE(hub.send(beacon_msg(1, 0, 0)));
  EXPECT_TRUE(hub.poll(0, out));
  // Clearing restores the link.
  hub.set_link_fault(0, 1, LinkFault{});
  EXPECT_TRUE(hub.send(beacon_msg(0, 1, 42)));
  ASSERT_TRUE(hub.poll(1, out));
  EXPECT_DOUBLE_EQ(out.sent_at, 42.0);
  // A latency storm holds frames back until the clock passes the delay.
  hub.set_link_fault(0, 1, LinkFault{0.0f, 2.0f});
  hub.send(beacon_msg(0, 1, 43));
  EXPECT_FALSE(hub.poll(1, out));
  clock.advance_to(2.0);
  ASSERT_TRUE(hub.poll(1, out));
  EXPECT_DOUBLE_EQ(out.sent_at, 43.0);
}

TEST(PipeHub, CorruptedFramesAreRejectedNeverDelivered) {
  VirtualClock clock;
  PipeHub hub(2, clock);
  hub.set_link_fault(0, 1, LinkFault{0.0f, 0.0f, 1.0f});  // flip every frame
  for (int i = 0; i < 25; ++i) EXPECT_TRUE(hub.send(beacon_msg(0, 1, i)));
  // Every flip is a single-bit error, so the CRC catches every one: the
  // corrupted and rejected counters must agree exactly, and none reaches
  // the receiver. Chaos drops stay a separate counter.
  EXPECT_EQ(hub.corrupted(), 25u);
  EXPECT_EQ(hub.rejected(), 25u);
  EXPECT_EQ(hub.chaos_dropped(), 0u);
  WireMsg out;
  EXPECT_FALSE(hub.poll(1, out));
  // Clearing the fault restores clean delivery.
  hub.set_link_fault(0, 1, LinkFault{});
  EXPECT_TRUE(hub.send(beacon_msg(0, 1, 99)));
  ASSERT_TRUE(hub.poll(1, out));
  EXPECT_DOUBLE_EQ(out.sent_at, 99.0);
  EXPECT_EQ(hub.corrupted(), 25u);
}

TEST(PipeHub, CorruptionProbabilityIsSeedDeterministic) {
  // The corrupt decision stream is separate from the drop stream and a pure
  // function of the per-link send count — two hubs with the same seed must
  // corrupt the exact same frames.
  FaultSpec faults;
  faults.seed = 13;
  std::uint64_t counts[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    VirtualClock clock;
    PipeHub hub(2, clock, faults);
    hub.set_link_fault(0, 1, LinkFault{0.0f, 0.0f, 0.5f});
    for (int i = 0; i < 200; ++i) hub.send(beacon_msg(0, 1, i));
    counts[run] = hub.corrupted();
    EXPECT_EQ(hub.rejected(), hub.corrupted());
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_GT(counts[0], 50u);
  EXPECT_LT(counts[0], 150u);
}

TEST(UdpTransportSuite, ChaosDropsAreNotSendErrors) {
  VirtualClock clock;
  UdpTransport a(2, 0, 34710, &clock);
  UdpTransport b(2, 1, 34710, &clock);
  a.set_link_fault(0, 1, LinkFault{1.0f, 0.0f});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(a.send(beacon_msg(0, 1, i)));
  EXPECT_EQ(a.dropped(), 5u);
  EXPECT_EQ(a.sent(), 0u);
  EXPECT_EQ(a.send_errors(), 0u) << "injected drops must not count as errors";
  // Foreign `from` slots are the peer's concern: ignored here.
  a.set_link_fault(1, 0, LinkFault{1.0f, 0.0f});
  a.set_link_fault(0, 1, LinkFault{});
  EXPECT_TRUE(a.send(beacon_msg(0, 1, 9)));
  EXPECT_EQ(a.sent(), 1u);
  WireMsg out;
  bool got = false;
  for (int i = 0; i < 500 && !(got = b.poll(1, out)); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(got) << "cleared link must deliver";
  EXPECT_DOUBLE_EQ(out.sent_at, 9.0);
  EXPECT_EQ(b.received(), 1u);
}

TEST(UdpTransportSuite, CorruptedDatagramsAreRejectedAtIngress) {
  VirtualClock clock;
  UdpTransport a(2, 0, 34730, &clock);
  UdpTransport b(2, 1, 34730, &clock);
  a.set_link_fault(0, 1, LinkFault{0.0f, 0.0f, 1.0f});
  constexpr std::uint64_t kCount = 20;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_TRUE(a.send(beacon_msg(0, 1, static_cast<double>(i))));
  }
  EXPECT_EQ(a.corrupted(), kCount);
  WireMsg out;
  for (int i = 0; i < 2000 && b.rejected() < kCount; ++i) {
    EXPECT_FALSE(b.poll(1, out)) << "a corrupted frame decoded";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Loopback doesn't drop at this volume: every flipped frame must have
  // been seen and refused, none delivered.
  EXPECT_EQ(b.rejected(), kCount);
  EXPECT_EQ(b.received(), 0u);
}

TEST(UdpTransportSuite, LatencyStormWithoutAClockFailsLoudly) {
  // A clock-less UdpTransport cannot hold frames back, so a latency storm
  // would silently degrade to zero extra delay — the transport must refuse
  // to arm it instead of lying about the fault it injects.
  UdpTransport a(2, 0, 34750, /*clock=*/nullptr);
  EXPECT_THROW(a.set_link_fault(0, 1, LinkFault{0.0f, 1.5f}),
               std::runtime_error);
  // Faults that need no clock still arm fine.
  EXPECT_NO_THROW(a.set_link_fault(0, 1, LinkFault{0.5f, 0.0f}));
  EXPECT_NO_THROW(a.set_link_fault(0, 1, LinkFault{0.0f, 0.0f, 0.5f}));
  // And clearing an armed storm is always allowed.
  EXPECT_NO_THROW(a.set_link_fault(0, 1, LinkFault{}));
}

// ------------------------------------------------------------ tcp transport

TEST(TcpTransportSuite, DeliversOverRealConnections) {
  VirtualClock clock;
  TcpTransport a(2, 0, 46000, clock);
  TcpTransport b(2, 1, 46000, clock);
  // First send dials; the frame rides the connection as soon as the
  // non-blocking connect completes.
  EXPECT_TRUE(a.send(beacon_msg(0, 1, 7.0)));
  WireMsg out;
  bool got = false;
  for (int i = 0; i < 2000 && !got; ++i) {
    a.poll(0, out);  // progresses the outbound connection
    got = b.poll(1, out);
    if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(got) << "frame never crossed the TCP connection";
  EXPECT_DOUBLE_EQ(out.sent_at, 7.0);
  EXPECT_EQ(out.from, 0);
  EXPECT_EQ(a.sent(), 1u);
  EXPECT_EQ(b.received(), 1u);
  EXPECT_EQ(b.rejected(), 0u);
  EXPECT_GE(a.reconnects(), 1u) << "establishment must be counted";
  EXPECT_EQ(a.conn_state(1), TcpTransport::ConnState::kEstablished);
}

TEST(TcpTransportSuite, ResetEntersBackoffThenReestablishes) {
  VirtualClock clock;
  TcpTransport a(2, 0, 46010, clock);
  TcpTransport b(2, 1, 46010, clock);
  WireMsg out;
  a.send(beacon_msg(0, 1, 1.0));
  for (int i = 0; i < 2000 && !b.poll(1, out); ++i) {
    a.poll(0, out);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(a.conn_state(1), TcpTransport::ConnState::kEstablished);

  // Chaos reset: consumed on the owning thread at the next send/poll; the
  // connection hard-closes and enters Backoff, during which sends degrade
  // to the "send() == false means drop" contract.
  a.request_reset(1);
  EXPECT_FALSE(a.send(beacon_msg(0, 1, 2.0)));
  EXPECT_EQ(a.conn_state(1), TcpTransport::ConnState::kBackoff);
  EXPECT_EQ(a.resets(), 1u);
  EXPECT_EQ(a.backoff_attempts(1), 1);
  EXPECT_GT(a.last_backoff(1), 0.0);
  EXPECT_GT(a.conn_down(), 0u);

  // Past the backoff deadline the machine re-dials and recovers.
  clock.advance_to(clock.now() + 10.0);
  bool got = false;
  for (int i = 0; i < 2000 && !got; ++i) {
    a.send(beacon_msg(0, 1, 3.0));
    a.poll(0, out);
    got = b.poll(1, out);
    if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(got) << "connection never re-established after reset";
  EXPECT_EQ(a.conn_state(1), TcpTransport::ConnState::kEstablished);
  EXPECT_GE(a.reconnects(), 2u);
  EXPECT_EQ(a.backoff_attempts(1), 0) << "re-establishment resets the count";
}

TEST(TcpTransportSuite, BackoffGrowsExponentiallyAndStaysCapped) {
  // No peer listener: every dial fails, so consecutive attempts walk the
  // whole backoff schedule. Growth must be monotone (modulo jitter) and
  // capped at backoff_max * (1 + jitter).
  VirtualClock clock;
  TcpConfig cfg;
  cfg.backoff_base = 0.05;
  cfg.backoff_max = 1.6;
  cfg.jitter = 0.25;
  TcpTransport a(2, 0, 46020, clock, 1, cfg);
  std::vector<Duration> backoffs;
  for (int i = 0; i < 12; ++i) {
    // Drive the machine until this dial attempt fails. A refused loopback
    // dial can collapse Backoff -> dial -> Backoff inside one send() call,
    // so the observable progress signal is the resets counter, not state.
    const auto target = static_cast<std::uint64_t>(i) + 1;
    for (int spin = 0; spin < 2000 && a.resets() < target; ++spin) {
      a.send(beacon_msg(0, 1, i));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(a.resets(), target) << "dial " << i << " never failed";
    ASSERT_EQ(a.conn_state(1), TcpTransport::ConnState::kBackoff);
    backoffs.push_back(a.last_backoff(1));
    clock.advance_to(clock.now() + a.last_backoff(1) + 0.01);
  }
  const double cap = cfg.backoff_max * (1.0 + cfg.jitter);
  for (std::size_t i = 0; i < backoffs.size(); ++i) {
    EXPECT_GT(backoffs[i], 0.0);
    EXPECT_LE(backoffs[i], cap) << "attempt " << i << " exceeded the cap";
  }
  // The first delay sits near the base; by the 8th the cap dominates.
  EXPECT_LE(backoffs.front(), cfg.backoff_base * (1.0 + cfg.jitter) + 1e-9);
  EXPECT_GE(backoffs.back(), cfg.backoff_max);
  EXPECT_EQ(a.reconnects(), 0u);
  EXPECT_GE(a.resets(), 12u);
}

TEST(TcpTransportSuite, CorruptedFramesAreRejectedAtIngress) {
  VirtualClock clock;
  TcpTransport a(2, 0, 46030, clock);
  TcpTransport b(2, 1, 46030, clock);
  a.set_link_fault(0, 1, LinkFault{0.0f, 0.0f, 1.0f});
  constexpr std::uint64_t kCount = 25;
  WireMsg out;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    a.send(beacon_msg(0, 1, static_cast<double>(i)));
    a.poll(0, out);
  }
  EXPECT_EQ(a.corrupted(), kCount);
  for (int i = 0; i < 2000 && b.rejected() < kCount; ++i) {
    a.poll(0, out);  // keep flushing the write buffer
    EXPECT_FALSE(b.poll(1, out)) << "a corrupted frame decoded";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The stream stays framed: every flipped frame was skipped by its length
  // prefix and counted, and the connection survived all of them.
  EXPECT_EQ(b.rejected(), kCount);
  EXPECT_EQ(b.received(), 0u);
  // Clean frames still flow on the same connection afterwards.
  a.set_link_fault(0, 1, LinkFault{});
  a.send(beacon_msg(0, 1, 99.0));
  bool got = false;
  for (int i = 0; i < 2000 && !got; ++i) {
    a.poll(0, out);
    got = b.poll(1, out);
    if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(got);
  EXPECT_DOUBLE_EQ(out.sent_at, 99.0);
}

// ------------------------------------------------------------------ liveness

DetectorConfig fast_detector() {
  DetectorConfig cfg;
  cfg.suspect_after = 1.0;
  cfg.evict_after = 3.0;
  cfg.probe_interval = 0.5;
  cfg.probe_backoff = 2.0;
  cfg.probe_max = 4.0;
  return cfg;
}

TEST(Liveness, SilenceSuspectsThenEvicts) {
  LivenessDetector det(fast_detector());
  det.add_peer(1, 0.0, true);
  std::vector<LivenessAction> acts;
  det.poll(0.9, acts);
  EXPECT_TRUE(acts.empty());
  EXPECT_EQ(det.state(1), PeerLiveness::kAlive);

  det.poll(1.0, acts);  // silence hits suspect_after: probe at once
  EXPECT_EQ(det.state(1), PeerLiveness::kSuspect);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, LivenessAction::Kind::kProbe);
  EXPECT_EQ(acts[0].peer, 1);
  EXPECT_EQ(det.evictions(), 0u);

  acts.clear();
  det.poll(3.0, acts);  // silence hits evict_after: evict, keep probing
  EXPECT_EQ(det.state(1), PeerLiveness::kDown);
  ASSERT_GE(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, LivenessAction::Kind::kEvict);
  EXPECT_EQ(det.evictions(), 1u);
}

TEST(Liveness, AnyFrameRevivesADownPeer) {
  LivenessDetector det(fast_detector());
  det.add_peer(1, 0.0, true);
  std::vector<LivenessAction> acts;
  det.poll(3.0, acts);
  ASSERT_EQ(det.state(1), PeerLiveness::kDown);
  EXPECT_TRUE(det.on_frame(1, 3.5)) << "Down -> Alive must signal re-insertion";
  EXPECT_EQ(det.state(1), PeerLiveness::kAlive);
  EXPECT_EQ(det.revivals(), 1u);
  EXPECT_FALSE(det.on_frame(1, 3.6)) << "Alive -> Alive is not a revival";
  EXPECT_FALSE(det.on_frame(99, 3.7)) << "unmonitored peers are ignored";
  EXPECT_DOUBLE_EQ(det.last_heard(1), 3.6);
}

TEST(Liveness, ProbesBackOffWhileDownAndCap) {
  LivenessDetector det(fast_detector());
  det.add_peer(1, 0.0, true);
  std::vector<LivenessAction> probe_times_scratch;
  std::vector<Time> probes;
  for (Time t = 3.0; t <= 14.01; t += 0.5) {
    probe_times_scratch.clear();
    det.poll(t, probe_times_scratch);
    for (const LivenessAction& a : probe_times_scratch) {
      if (a.kind == LivenessAction::Kind::kProbe) probes.push_back(t);
    }
  }
  // Down at 3.0 with gap 0.5 doubling per probe, capped at 4.0:
  // 3.0 (gap->1), 4.0 (->2), 6.0 (->4), 10.0 (capped), 14.0.
  const std::vector<Time> expect = {3.0, 4.0, 6.0, 10.0, 14.0};
  EXPECT_EQ(probes, expect);
  EXPECT_EQ(det.probes(), expect.size());
}

TEST(Liveness, MarkDownSkipsEvictionAndProbesImmediately) {
  LivenessDetector det(fast_detector());
  det.add_peer(1, 0.0, true);
  det.mark_down(1, 5.0);  // the caller already knows (restart path)
  EXPECT_EQ(det.state(1), PeerLiveness::kDown);
  EXPECT_EQ(det.evictions(), 0u);
  std::vector<LivenessAction> acts;
  det.poll(5.0, acts);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, LivenessAction::Kind::kProbe);
  acts.clear();
  det.poll(20.0, acts);  // long silence on a Down peer never re-evicts
  for (const LivenessAction& a : acts) {
    EXPECT_NE(a.kind, LivenessAction::Kind::kEvict);
  }
  EXPECT_EQ(det.evictions(), 0u);
}

TEST(Liveness, PeerAddedDownMustProveItself) {
  LivenessDetector det(fast_detector());
  det.add_peer(2, 1.0, /*alive=*/false);
  EXPECT_EQ(det.state(2), PeerLiveness::kDown);
  std::vector<LivenessAction> acts;
  det.poll(1.0, acts);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].kind, LivenessAction::Kind::kProbe);
  EXPECT_TRUE(det.on_frame(2, 1.2));
  EXPECT_EQ(det.state(2), PeerLiveness::kAlive);
}

// ------------------------------------------------------------------- chaos

TEST(Chaos, LinkFaultPacksLosslessly) {
  // drop and corrupt ride as bfloat16 (the preset probabilities are all
  // powers of two, exact in bf16); extra_delay keeps full float32.
  const LinkFault f{0.25f, 1.5f, 0.5f};
  const LinkFault g = unpack_link_fault(pack_link_fault(f));
  EXPECT_EQ(g.drop, f.drop);
  EXPECT_EQ(g.extra_delay, f.extra_delay);
  EXPECT_EQ(g.corrupt, f.corrupt);
  const LinkFault zero = unpack_link_fault(0);
  EXPECT_EQ(zero.drop, 0.0f);
  EXPECT_EQ(zero.extra_delay, 0.0f);
  EXPECT_EQ(zero.corrupt, 0.0f);
  // Non-dyadic probabilities quantize but stay within bf16 relative error
  // (<= 1/256) and never round a nonzero probability to zero.
  const LinkFault q = unpack_link_fault(pack_link_fault(LinkFault{0.3f, 0.0f, 0.7f}));
  EXPECT_NEAR(q.drop, 0.3f, 0.3f / 128.0f);
  EXPECT_NEAR(q.corrupt, 0.7f, 0.7f / 128.0f);
  EXPECT_GT(q.drop, 0.0f);
  EXPECT_GT(q.corrupt, 0.0f);
}

TEST(Chaos, ParsesInlineScriptsSortedByTime) {
  const ChaosScript s = ChaosScript::parse(
      "at 12 heal 0 1 # trailing comment\n"
      "at 5 cut 0 1; at 20 drop 1 2 0.5;; at 25 storm 0 2 0.3");
  ASSERT_EQ(s.ops().size(), 4u);
  EXPECT_EQ(s.ops()[0].kind, ChaosOp::Kind::kCut);
  EXPECT_DOUBLE_EQ(s.ops()[0].at, 5.0);
  EXPECT_EQ(s.ops()[1].kind, ChaosOp::Kind::kHeal);
  EXPECT_EQ(s.ops()[2].kind, ChaosOp::Kind::kDrop);
  EXPECT_DOUBLE_EQ(s.ops()[2].value, 0.5);
  EXPECT_EQ(s.ops()[3].kind, ChaosOp::Kind::kStorm);
  // The canonical form round-trips.
  EXPECT_EQ(ChaosScript::parse(s.str()).str(), s.str());
}

TEST(Chaos, RejectsMalformedScripts) {
  EXPECT_THROW(ChaosScript::parse("crash 0"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at -1 crash 0"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 explode 1"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 cut 0 0"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 drop 0 1"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 crash 0 junk"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 corrupt 0 1"), std::runtime_error)
      << "corrupt needs a probability";
  EXPECT_THROW(ChaosScript::parse("at 5 conn-reset 0"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 conn-reset 0 1 0.5"),
               std::runtime_error)
      << "conn-reset takes no value";
}

TEST(Chaos, ParsesCorruptAndConnResetVerbs) {
  const ChaosScript s = ChaosScript::parse(
      "at 5 corrupt 0 1 0.5; at 12 clear 0 1; at 20 conn-reset 1 2");
  ASSERT_EQ(s.ops().size(), 3u);
  EXPECT_EQ(s.ops()[0].kind, ChaosOp::Kind::kCorrupt);
  EXPECT_DOUBLE_EQ(s.ops()[0].value, 0.5);
  EXPECT_EQ(s.ops()[2].kind, ChaosOp::Kind::kConnReset);
  EXPECT_EQ(s.ops()[2].a, 1);
  EXPECT_EQ(s.ops()[2].b, 2);
  // Canonical form round-trips both verbs.
  EXPECT_EQ(ChaosScript::parse(s.str()).str(), s.str());
  // A conn-reset is instantaneous: alone it opens a zero-width phase that
  // still yields a gate window up to the next fault (or the horizon).
  const auto phases = s.phases(40.0, 2.0);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_DOUBLE_EQ(phases[1].fault_at, 20.0);
  EXPECT_DOUBLE_EQ(phases[1].clear_at, 20.0);
  EXPECT_DOUBLE_EQ(phases[1].gate_begin, 22.0);
  EXPECT_DOUBLE_EQ(phases[1].gate_end, 40.0);
  EXPECT_TRUE(phases[1].gateable());
}

TEST(Chaos, RejectsEmptyScripts) {
  // An empty / all-comment / all-separator script is a mangled flag or a
  // file that failed to load, not a request for no chaos — the explicit
  // way to say "no chaos" is a default-constructed ChaosScript.
  EXPECT_THROW(ChaosScript::parse(""), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("   \n   \n"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("# only comments\n# all the way down"),
               std::runtime_error);
  EXPECT_THROW(ChaosScript::parse(";;;"), std::runtime_error);
  // ...but comments/blanks alongside at least one op are fine.
  EXPECT_NO_THROW(ChaosScript::parse("# header\n\nat 5 crash 0 # eol"));
  EXPECT_TRUE(ChaosScript{}.empty());
}

TEST(Chaos, RejectsNegativeNodeIds) {
  EXPECT_THROW(ChaosScript::parse("at 5 crash -1"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 restart -3"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 cut -2 1"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 cut 1 -2"), std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 drop 0 -1 0.5"), std::runtime_error);
}

TEST(Chaos, ValidateRejectsOutOfRangeIds) {
  const ChaosScript s = ChaosScript::parse("at 5 crash 4; at 10 cut 0 3");
  EXPECT_NO_THROW(s.validate(5));
  EXPECT_THROW(s.validate(4), std::runtime_error);  // crash 4 needs n >= 5
  EXPECT_THROW(ChaosScript::parse("at 5 heal 0 9").validate(5),
               std::runtime_error);
  EXPECT_THROW(ChaosScript::parse("at 5 storm 9 0 0.3").validate(5),
               std::runtime_error);
}

TEST(Chaos, OutOfOrderTimestampsAreAcceptedAndStableSorted) {
  // Statements may be authored in any order: replay sorts by time, and
  // equal-time ops keep their text order, so the applied sequence is
  // deterministic regardless of how the script was written.
  const ChaosScript s = ChaosScript::parse(
      "at 30 heal 0 1; at 10 cut 0 1; at 10 crash 2; at 20 restart 2");
  ASSERT_EQ(s.ops().size(), 4u);
  EXPECT_EQ(s.ops()[0].kind, ChaosOp::Kind::kCut);    // t=10, first in text
  EXPECT_EQ(s.ops()[1].kind, ChaosOp::Kind::kCrash);  // t=10, second in text
  EXPECT_EQ(s.ops()[2].kind, ChaosOp::Kind::kRestart);
  EXPECT_EQ(s.ops()[3].kind, ChaosOp::Kind::kHeal);
  EXPECT_EQ(ChaosScript::parse(s.str()).str(), s.str());
}

TEST(Chaos, DerivesQuietPhaseGates) {
  const ChaosScript s = ChaosScript::parse(
      "at 10 cut 0 1; at 20 heal 0 1; at 40 crash 2; at 50 restart 2");
  const auto phases = s.phases(100.0, 5.0);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_DOUBLE_EQ(phases[0].fault_at, 10.0);
  EXPECT_DOUBLE_EQ(phases[0].clear_at, 20.0);
  EXPECT_DOUBLE_EQ(phases[0].gate_begin, 25.0);
  EXPECT_DOUBLE_EQ(phases[0].gate_end, 40.0);
  EXPECT_TRUE(phases[0].gateable());
  EXPECT_DOUBLE_EQ(phases[1].gate_begin, 55.0);
  EXPECT_DOUBLE_EQ(phases[1].gate_end, 100.0);

  // Overlapping faults merge into one phase that clears when the active
  // set empties.
  const auto merged =
      ChaosScript::parse(
          "at 10 cut 0 1; at 15 crash 2; at 20 heal 0 1; at 30 restart 2")
          .phases(100.0, 5.0);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].fault_at, 10.0);
  EXPECT_DOUBLE_EQ(merged[0].clear_at, 30.0);

  // A never-cleared fault runs to the horizon and gates nothing.
  const auto open = ChaosScript::parse("at 10 cut 0 1").phases(50.0, 5.0);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_DOUBLE_EQ(open[0].clear_at, 50.0);
  EXPECT_FALSE(open[0].gateable());
}

TEST(Chaos, PresetsAreSeedDeterministic) {
  const std::vector<EdgeKey> edges{EdgeKey(0, 1), EdgeKey(1, 2), EdgeKey(0, 2)};
  for (const char* name : {"crash", "partition", "churn"}) {
    const ChaosScript a = ChaosScript::preset(name, 3, edges, 40.0, 7);
    const ChaosScript b = ChaosScript::preset(name, 3, edges, 40.0, 7);
    EXPECT_EQ(a.str(), b.str()) << name;
    EXPECT_FALSE(a.empty()) << name;
    // Every preset phase gets a usable quiet window at the default
    // stabilization fraction (0.1 * horizon).
    for (const ChaosPhase& p : a.phases(40.0, 4.0)) {
      EXPECT_TRUE(p.gateable()) << name << " phase " << p.label;
    }
  }
  EXPECT_THROW(ChaosScript::preset("nope", 3, edges, 40.0, 7),
               std::runtime_error);
  // The corrupt preset mixes bit-flip windows with a conn-reset burst; the
  // burst's back-to-back instantaneous phases have no quiet window of their
  // own (by design — only the last reset gets gated), so it is checked
  // separately: deterministic, non-empty, and at least one gateable phase.
  const ChaosScript c1 = ChaosScript::preset("corrupt", 3, edges, 40.0, 7);
  const ChaosScript c2 = ChaosScript::preset("corrupt", 3, edges, 40.0, 7);
  EXPECT_EQ(c1.str(), c2.str());
  EXPECT_FALSE(c1.empty());
  bool any_corrupt = false, any_reset = false;
  for (const ChaosOp& op : c1.ops()) {
    any_corrupt = any_corrupt || op.kind == ChaosOp::Kind::kCorrupt;
    any_reset = any_reset || op.kind == ChaosOp::Kind::kConnReset;
  }
  EXPECT_TRUE(any_corrupt);
  EXPECT_TRUE(any_reset);
  int gateable = 0;
  for (const ChaosPhase& p : c1.phases(40.0, 4.0)) gateable += p.gateable();
  EXPECT_GE(gateable, 2);
}

// ----------------------------------------------- rt cluster (lockstep, pipe)

ScenarioSpec rt_spec(int n) {
  ScenarioSpec spec;
  spec.name = "rt-test";
  spec.n = n;
  spec.seed = 11;
  spec.topology = ComponentSpec(n >= 3 ? "ring" : "line");
  spec.drift = ComponentSpec("osc-const");
  spec.drift.params.set("ppm", "150/-200/80");
  spec.estimates = ComponentSpec("rtt");
  spec.edge_params.eps = 0.1;
  spec.edge_params.tau = 0.5;
  spec.edge_params.msg_delay_max = 0.6;
  spec.edge_params.msg_delay_min = 0.0;
  spec.gtilde_auto = true;
  return spec;
}

/// A lockstep cluster run: the clock must outlive the cluster, so both live
/// here together with the final logical clocks.
struct LockstepRun {
  std::unique_ptr<VirtualClock> clock = std::make_unique<VirtualClock>();
  std::unique_ptr<RtCluster> cluster;
  std::vector<ClockValue> logical;
};

LockstepRun run_lockstep_cluster(const ScenarioSpec& spec,
                                 const FaultSpec& faults, Time horizon) {
  LockstepRun run;
  run.cluster = std::make_unique<RtCluster>(spec, *run.clock, faults);
  run.cluster->start();
  run.cluster->schedule_samples(horizon, 1.0);
  run.cluster->run_lockstep(*run.clock, horizon, 0.25);
  for (NodeId u = 0; u < run.cluster->size(); ++u) {
    run.logical.push_back(run.cluster->node(u).logical());
  }
  return run;
}

TEST(RtCluster, ConvergesWithoutFaults) {
  LockstepRun run = run_lockstep_cluster(rt_spec(3), {}, 60.0);
  RtCluster* cluster = run.cluster.get();

  // Every replica kept running and stayed mutually synchronized.
  for (std::size_t u = 0; u < run.logical.size(); ++u) {
    EXPECT_GT(run.logical[u], 59.0) << "node " << u << " stalled";
  }
  // Estimates exist and are eps-accurate against the peer replica's true
  // logical clock (all replicas sit at the same model instant here).
  for (const EdgeKey& e : cluster->edges()) {
    Engine& engine = cluster->node(e.a).engine();
    const double eps = engine.edge_eps(e);
    const auto est = cluster->node(e.a).scenario().estimate_of(e.a, e.b);
    ASSERT_TRUE(est.has_value()) << "no estimate on " << e.str();
    const double err = std::abs(*est - cluster->node(e.b).logical());
    EXPECT_LE(err, eps) << "estimate error on " << e.str();
  }
  // Skew within the derived gradient bound on every post-warmup sample.
  for (const RtEdgeReport& r : cluster->edge_report(10)) {
    EXPECT_GT(r.samples, 0);
    EXPECT_LE(r.max_abs_skew, r.bound) << "edge " << r.edge.str();
  }
}

TEST(RtCluster, ReconvergesUnderDropDuplicateReorder) {
  FaultSpec faults;
  faults.drop = 0.3;
  faults.dup = 0.2;
  faults.reorder = 0.3;
  faults.delay = 0.5;
  faults.seed = 21;
  LockstepRun run = run_lockstep_cluster(rt_spec(3), faults, 60.0);
  RtCluster* cluster = run.cluster.get();

  EXPECT_GT(cluster->hub().dropped(), 0u);
  EXPECT_GT(cluster->hub().duplicated(), 0u);
  EXPECT_GT(cluster->hub().delayed(), 0u);
  for (std::size_t u = 0; u < run.logical.size(); ++u) {
    EXPECT_GT(run.logical[u], 59.0) << "node " << u << " stalled under faults";
  }
  for (const RtEdgeReport& r : cluster->edge_report(20)) {
    EXPECT_GT(r.samples, 0);
    EXPECT_LE(r.max_abs_skew, r.bound)
        << "edge " << r.edge.str() << " violated its bound under faults";
  }
}

TEST(RtCluster, LockstepRunsAreBitDeterministic) {
  FaultSpec faults;
  faults.drop = 0.25;
  faults.dup = 0.15;
  faults.reorder = 0.25;
  faults.delay = 0.5;
  faults.seed = 5;
  const auto a = run_lockstep_cluster(rt_spec(3), faults, 30.0).logical;
  const auto b = run_lockstep_cluster(rt_spec(3), faults, 30.0).logical;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u], b[u]) << "node " << u << " diverged across identical runs";
  }
}

TEST(RtNode, RejectsFramesFromUnknownPeers) {
  VirtualClock clock;
  PipeHub hub(4, clock);
  RtNode node(rt_spec(4), 0, hub, clock);
  node.start();
  // In the 4-ring, 0's neighbors are 1 and 3 — but NOT 2. A frame from a
  // non-neighbor must be dropped at injection (paper §3.1 delivery rule).
  hub.send(beacon_msg(1, 0, 1.0));
  hub.send(beacon_msg(2, 0, 2.0));
  hub.send(beacon_msg(3, 0, 3.0));
  clock.advance_to(0.25);
  node.pump();
  EXPECT_EQ(node.ingress_count(), 2u);
  EXPECT_EQ(node.rejected_count(), 1u);
}

// ------------------------------------- membership + chaos (lockstep, pipe)

/// A lockstep run with the failure detector armed and a chaos script
/// installed: the deterministic harness behind the partition/heal,
/// crash/restart and reproducibility tests.
LockstepRun run_chaos_cluster(const ScenarioSpec& spec,
                              const std::string& script, Time horizon) {
  LockstepRun run;
  run.cluster = std::make_unique<RtCluster>(spec, *run.clock);
  DetectorConfig det;
  det.suspect_after = 1.5;
  det.evict_after = 4.0;
  det.probe_interval = 0.5;
  run.cluster->enable_detector(det);
  run.cluster->arm_chaos(ChaosScript::parse(script));
  run.cluster->start();
  run.cluster->schedule_samples(horizon, 1.0);
  run.cluster->run_lockstep(*run.clock, horizon, 0.25);
  for (NodeId u = 0; u < run.cluster->size(); ++u) {
    run.logical.push_back(run.cluster->node(u).logical());
  }
  return run;
}

TEST(RtChaos, ArmChaosRejectsUnknownIds) {
  // arm_chaos validates every op against the cluster size before installing
  // the scheduler — a stray id would otherwise index past the node vector
  // (chaos_crash) or poke a nonexistent fault slot. A rejected script leaves
  // the cluster unarmed, so a corrected one can still be installed.
  VirtualClock clock;
  RtCluster cluster(rt_spec(3), clock);
  EXPECT_THROW(cluster.arm_chaos(ChaosScript::parse("at 5 crash 7")),
               std::runtime_error);
  EXPECT_THROW(cluster.arm_chaos(ChaosScript::parse("at 5 cut 0 9")),
               std::runtime_error);
  EXPECT_NO_THROW(cluster.arm_chaos(ChaosScript::parse("at 5 cut 0 2")));
}

TEST(RtChaos, PartitionHealEvictsThenReinsertsAndReconverges) {
  // The lockstep port of examples/partition_heal.cpp, with the detector
  // doing the work the simulated adversary does there: cut {0,1} -> silence
  // -> eviction at both endpoints; heal -> probe answered -> revival ->
  // insertion protocol -> skew back within the gradient bound.
  LockstepRun run =
      run_chaos_cluster(rt_spec(3), "at 15 cut 0 1; at 30 heal 0 1", 60.0);
  RtCluster& cluster = *run.cluster;

  const LivenessDetector* d0 = cluster.node(0).detector();
  const LivenessDetector* d1 = cluster.node(1).detector();
  ASSERT_NE(d0, nullptr);
  ASSERT_NE(d1, nullptr);
  EXPECT_GE(d0->evictions(), 1u) << "node 0 never noticed the partition";
  EXPECT_GE(d1->evictions(), 1u) << "node 1 never noticed the partition";
  EXPECT_GE(d0->revivals(), 1u) << "node 0 never rediscovered its peer";
  EXPECT_GE(d1->revivals(), 1u) << "node 1 never rediscovered its peer";
  EXPECT_EQ(d0->state(1), PeerLiveness::kAlive);
  EXPECT_EQ(d1->state(0), PeerLiveness::kAlive);
  EXPECT_GT(cluster.hub().chaos_dropped(), 0u);

  for (std::size_t u = 0; u < run.logical.size(); ++u) {
    EXPECT_GT(run.logical[u], 59.0) << "node " << u << " stalled";
  }
  // Re-convergence gate: well after the heal, every edge (including the
  // re-inserted one) is back within its derived bound.
  const auto gated = cluster.edge_report_window(45.0, 60.0);
  ASSERT_EQ(gated.size(), cluster.edges().size());
  for (const RtEdgeReport& r : gated) {
    EXPECT_GT(r.samples, 0) << "edge " << r.edge.str();
    EXPECT_LE(r.max_abs_skew, r.bound) << "edge " << r.edge.str();
  }
}

TEST(RtChaos, CrashRestartRejoinsMonotonically) {
  LockstepRun run =
      run_chaos_cluster(rt_spec(3), "at 15 crash 1; at 25 restart 1", 60.0);
  RtCluster& cluster = *run.cluster;

  EXPECT_EQ(cluster.node(1).restarts(), 1u);
  EXPECT_GT(cluster.node(1).discarded_count(), 0u)
      << "a crashed node must discard its ingress";
  // Neighbors saw the death and the rebirth.
  EXPECT_GE(cluster.node(0).detector()->evictions(), 1u);
  EXPECT_GE(cluster.node(0).detector()->revivals(), 1u);
  EXPECT_EQ(cluster.node(0).detector()->state(1), PeerLiveness::kAlive);

  // The restarted node's own samples: logical time never steps backwards
  // across the crash (monotone rejoin), and the dead stretch is flagged.
  const std::vector<RtSample>& s = cluster.samples()[1];
  int dead = 0;
  for (std::size_t k = 0; k < s.size(); ++k) {
    if (!s[k].live) ++dead;
    if (k > 0) {
      EXPECT_GE(s[k].logical, s[k - 1].logical)
          << "logical clock stepped backwards at grid point " << k;
    }
  }
  EXPECT_GE(dead, 5) << "~10 model seconds of downtime must flag samples";
  EXPECT_LT(dead, static_cast<int>(s.size()));

  for (std::size_t u = 0; u < run.logical.size(); ++u) {
    EXPECT_GT(run.logical[u], 59.0) << "node " << u << " stalled";
  }
  const auto gated = cluster.edge_report_window(40.0, 60.0);
  ASSERT_EQ(gated.size(), cluster.edges().size());
  for (const RtEdgeReport& r : gated) {
    EXPECT_GT(r.samples, 0) << "edge " << r.edge.str();
    EXPECT_LE(r.max_abs_skew, r.bound) << "edge " << r.edge.str();
  }
}

TEST(RtChaos, LockstepChaosRunsAreBitDeterministic) {
  const std::string script =
      "at 10 drop 0 1 0.5; at 18 clear 0 1; at 30 crash 2; at 38 restart 2";
  const LockstepRun a = run_chaos_cluster(rt_spec(3), script, 50.0);
  const LockstepRun b = run_chaos_cluster(rt_spec(3), script, 50.0);
  ASSERT_EQ(a.logical.size(), b.logical.size());
  for (std::size_t u = 0; u < a.logical.size(); ++u) {
    EXPECT_EQ(a.logical[u], b.logical[u]) << "node " << u << " diverged";
  }
  // The whole sampled series must match bit for bit, live flags included.
  const auto& sa = a.cluster->samples();
  const auto& sb = b.cluster->samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t u = 0; u < sa.size(); ++u) {
    ASSERT_EQ(sa[u].size(), sb[u].size());
    for (std::size_t k = 0; k < sa[u].size(); ++k) {
      EXPECT_EQ(sa[u][k].logical, sb[u][k].logical);
      EXPECT_EQ(sa[u][k].hardware, sb[u][k].hardware);
      EXPECT_EQ(sa[u][k].live, sb[u][k].live);
    }
  }
  EXPECT_EQ(a.cluster->hub().chaos_dropped(), b.cluster->hub().chaos_dropped());
  EXPECT_EQ(a.cluster->node(2).restarts(), b.cluster->node(2).restarts());
}

// --------------------------------------- rt cluster over tcp (lockstep)

/// A lockstep chaos run on the TCP stream backend: real loopback listeners
/// and connections, cranked by the virtual clock. Loopback TCP delivery is
/// synchronous with write(), so frame arrivals are step-quantized and the
/// run stays a pure function of (spec, seed, script) — bit-reproducible.
LockstepRun run_tcp_chaos_cluster(const ScenarioSpec& spec,
                                  const std::string& script, Time horizon,
                                  std::uint16_t base_port) {
  LockstepRun run;
  FaultSpec faults;  // only the seed matters: it feeds the chaos, corrupt
  faults.seed = 9;   // and backoff-jitter streams
  run.cluster = std::make_unique<RtCluster>(spec, *run.clock, faults, 1024,
                                            RtBackend::kTcp, base_port);
  DetectorConfig det;
  det.suspect_after = 1.5;
  det.evict_after = 4.0;
  det.probe_interval = 0.5;
  run.cluster->enable_detector(det);
  if (!script.empty()) run.cluster->arm_chaos(ChaosScript::parse(script));
  run.cluster->start();
  run.cluster->schedule_samples(horizon, 1.0);
  run.cluster->run_lockstep(*run.clock, horizon, 0.25);
  // Settle: consume frames still buffered in socket queues at the horizon
  // so the ingress counters cover everything transmitted.
  run.cluster->drain();
  for (NodeId u = 0; u < run.cluster->size(); ++u) {
    run.logical.push_back(run.cluster->node(u).logical());
  }
  return run;
}

TEST(RtClusterTcp, LockstepChaosRunsAreBitDeterministic) {
  // The tentpole acceptance gate: a 4-node TCP run with corruption AND a
  // connection reset must be bit-reproducible — same seed, same sample
  // series, same counter values — even though real sockets carry every
  // frame. Distinct base ports per run; the port never enters any RNG.
  const std::string script =
      "at 10 corrupt 0 1 0.5; at 20 clear 0 1; at 30 conn-reset 1 2";
  const LockstepRun a = run_tcp_chaos_cluster(rt_spec(4), script, 50.0, 46100);
  const LockstepRun b = run_tcp_chaos_cluster(rt_spec(4), script, 50.0, 46140);
  ASSERT_EQ(a.logical.size(), b.logical.size());
  for (std::size_t u = 0; u < a.logical.size(); ++u) {
    EXPECT_EQ(a.logical[u], b.logical[u]) << "node " << u << " diverged";
  }
  const auto& sa = a.cluster->samples();
  const auto& sb = b.cluster->samples();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t u = 0; u < sa.size(); ++u) {
    ASSERT_EQ(sa[u].size(), sb[u].size()) << "node " << u;
    for (std::size_t k = 0; k < sa[u].size(); ++k) {
      EXPECT_EQ(sa[u][k].logical, sb[u][k].logical) << u << "@" << k;
      EXPECT_EQ(sa[u][k].hardware, sb[u][k].hardware) << u << "@" << k;
      EXPECT_EQ(sa[u][k].live, sb[u][k].live) << u << "@" << k;
    }
  }
  // The corruption decisions are a pure function of per-link send counts,
  // so the counters agree across runs too...
  EXPECT_EQ(a.cluster->total_corrupted(), b.cluster->total_corrupted());
  EXPECT_EQ(a.cluster->total_rejected(), b.cluster->total_rejected());
  // ...and the wire-integrity invariant holds: every injected flip was
  // caught by the CRC at ingress, none decoded.
  EXPECT_GT(a.cluster->total_corrupted(), 0u);
  EXPECT_EQ(a.cluster->total_rejected(), a.cluster->total_corrupted());
  // The reset fired and both sides recovered.
  EXPECT_GE(a.cluster->tcp(1).resets(), 1u);
  EXPECT_GE(a.cluster->tcp(2).resets(), 1u);
  EXPECT_EQ(a.cluster->tcp(1).resets(), b.cluster->tcp(1).resets());
}

TEST(RtClusterTcp, ReconnectStormRecoversWithBoundedBackoff) {
  // Satellite gate: repeated conn-resets on one link during lockstep. The
  // transport must show bounded backoff growth, eventual re-establishment,
  // and the cluster must re-converge within the derived gradient bound in
  // the quiet tail — connection churn degrades to loss, never to divergence.
  const std::string script =
      "at 10 conn-reset 0 1; at 12 conn-reset 0 1; at 14 conn-reset 0 1; "
      "at 16 conn-reset 0 1; at 18 conn-reset 0 1";
  LockstepRun run = run_tcp_chaos_cluster(rt_spec(3), script, 60.0, 46180);
  RtCluster& cluster = *run.cluster;

  // Both owners of the link's two unidirectional connections saw all five
  // resets and re-established each time (plus the initial dial).
  EXPECT_GE(cluster.tcp(0).resets(), 5u);
  EXPECT_GE(cluster.tcp(1).resets(), 5u);
  EXPECT_GE(cluster.tcp(0).reconnects(), 6u);
  EXPECT_GE(cluster.tcp(1).reconnects(), 6u);
  EXPECT_EQ(cluster.tcp(0).conn_state(1),
            TcpTransport::ConnState::kEstablished);
  EXPECT_EQ(cluster.tcp(1).conn_state(0),
            TcpTransport::ConnState::kEstablished);
  // Backoff stayed bounded: each recovery reset the exponent, so the armed
  // delay never approached the cap and the attempt counter is back at zero.
  const TcpConfig cfg;  // cluster runs the defaults
  EXPECT_LE(cluster.tcp(0).last_backoff(1),
            cfg.backoff_max * (1.0 + cfg.jitter));
  EXPECT_EQ(cluster.tcp(0).backoff_attempts(1), 0);
  // Fast re-dials kept the silence below the detector's eviction horizon:
  // the storm churned connections, not membership.
  ASSERT_NE(cluster.node(0).detector(), nullptr);
  EXPECT_EQ(cluster.node(0).detector()->state(1), PeerLiveness::kAlive);
  EXPECT_EQ(cluster.node(1).detector()->state(0), PeerLiveness::kAlive);
  // Nobody stalled, and the quiet tail is back within the gradient bound.
  for (std::size_t u = 0; u < run.logical.size(); ++u) {
    EXPECT_GT(run.logical[u], 59.0) << "node " << u << " stalled";
  }
  const auto gated = cluster.edge_report_window(30.0, 60.0);
  ASSERT_EQ(gated.size(), cluster.edges().size());
  for (const RtEdgeReport& r : gated) {
    EXPECT_GT(r.samples, 0) << "edge " << r.edge.str();
    EXPECT_LE(r.max_abs_skew, r.bound) << "edge " << r.edge.str();
  }
}

TEST(RtNode, RecoverLogicalNeverLowers) {
  VirtualClock clock;
  PipeHub hub(2, clock);
  RtNode node(rt_spec(2), 0, hub, clock);
  node.start();
  node.pump();
  const ClockValue before = node.logical();
  node.recover_logical(before + 100.0);  // persisted anchor from a past life
  EXPECT_GE(node.logical(), before + 100.0);
  const ClockValue high = node.logical();
  node.recover_logical(1.0);  // a stale anchor must be a no-op
  EXPECT_GE(node.logical(), high);
}

// ------------------------------------------------- rtt estimates (sim mode)

TEST(RttEstimate, ConvergesInSimulationMode) {
  ScenarioSpec spec;
  spec.n = 4;
  spec.seed = 3;
  spec.topology = ComponentSpec("ring");
  spec.drift = ComponentSpec("spread");
  spec.estimates = ComponentSpec::parse("rtt:probe=0.5,window=4");
  spec.edge_params = default_edge_params();
  spec.gtilde_auto = true;
  Scenario scenario(spec);
  scenario.start();
  scenario.run_until(30.0);

  for (const EdgeKey& e : scenario.initial_edges()) {
    const double eps = scenario.engine().edge_eps(e);
    const auto est = scenario.estimate_of(e.a, e.b);
    ASSERT_TRUE(est.has_value()) << "no estimate on " << e.str();
    const double err = std::abs(*est - scenario.engine().logical(e.b));
    EXPECT_LE(err, eps) << "edge " << e.str();
    const auto back = scenario.estimate_of(e.b, e.a);
    ASSERT_TRUE(back.has_value());
  }
}

TEST(RttEstimate, ProbePeriodDefaultsToBeaconPeriod) {
  ScenarioSpec spec;
  spec.n = 3;
  spec.seed = 3;
  spec.topology = ComponentSpec("ring");
  spec.estimates = ComponentSpec("rtt");
  spec.edge_params = default_edge_params();
  spec.engine.beacon_period = 0.4;
  spec.gtilde_auto = true;
  Scenario scenario(spec);
  scenario.start();
  scenario.run_until(5.0);
  // The engine scheduled probes (otherwise no estimate could ever form).
  ASSERT_TRUE(scenario.estimate_of(0, 1).has_value());
}

}  // namespace
