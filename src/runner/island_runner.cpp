#include "runner/island_runner.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <mutex>
#include <thread>

namespace gcs {

IslandExecutionPlan plan_islands(const ScenarioSpec& spec, int requested) {
  IslandExecutionPlan out;
  const auto serial = [&out](std::string reason) -> IslandExecutionPlan& {
    out.islands_enabled = false;
    out.fallback_reason = std::move(reason);
    return out;
  };

  if (requested == 0) return serial("islands=off");
  int k = requested;
  if (requested < 0) {  // auto
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 2) return serial("islands=auto on a single hardware thread");
    k = static_cast<int>(std::min(hw, 8u));
  }

  // Spec-level decomposability. Each rule names the shared state that would
  // observe the execution order across islands (full matrix: ARCHITECTURE.md).
  if (spec.engine.local_node != kNoNode)
    return serial("service mode (engine.local_node) owns the transport");
  if (!spec.engine.local_mask.empty())
    return serial("engine.local_mask is reserved for the runner itself");
  if (spec.delays == DelayMode::kUniform)
    return serial("delays=uniform draws all edges from one shared stream");
  if (spec.edge_params.msg_delay_min <= 0.0)
    return serial("msg_delay_min == 0 leaves no conservative window width");
  if (spec.estimates.kind == "uniform")
    return serial("estimates=uniform draws all nodes from one oracle stream");
  if (spec.gskew.kind == "oracle")
    return serial("gskew=oracle reads every node's live clock");
  if (spec.reference_node != kNoNode)
    return serial("reference-node runs are pinned to the serial engine");
  if (!spec.engine.coalesce_instants)
    return serial("per-event (coalesce=false) runs are pinned to the serial engine");

  // Partition the t=0 topology. ChurnAdversary only toggles initial edges,
  // so this edge set bounds everything that can ever exist at runtime.
  const TopologyResult topo = materialize_topology(spec);
  IslandPlan partition =
      partition_islands(topo.n, topo.edges, k, spec.island_budget);
  if (!partition.feasible) return serial("partition infeasible: " + partition.reason);

  // Oracle sources that read a *neighbor's* live clock (zero, adversarial)
  // only work when every neighbor is co-resident: mirror clocks are dead.
  if ((spec.estimates.kind == "zero" || spec.estimates.kind == "adversarial") &&
      !partition.cut.empty()) {
    return serial("estimates=" + spec.estimates.kind +
                  " reads neighbors' live clocks across a non-empty cut");
  }

  out.islands_enabled = true;
  out.workers = partition.islands;
  out.partition = std::move(partition);
  return out;
}

/// Barrier + the per-phase shared flags. `stop` and `pending` are written
/// only inside the barrier completion step (single-threaded, sequenced
/// before any waiter resumes), so every shard reads one consistent value per
/// phase and all make the same control-flow decision — the phase counts stay
/// aligned and the barrier can never deadlock.
class IslandRunner::Sync {
 public:
  struct Completion {
    IslandRunner* runner;
    void operator()() const noexcept { runner->exchange(runner->sync_->horizon); }
  };

  Sync(int k, IslandRunner* runner)
      : barrier(static_cast<std::ptrdiff_t>(k), Completion{runner}) {}

  std::barrier<Completion> barrier;
  Time horizon = 0.0;
  bool pending = false;  ///< a drain-phase injection landed at <= horizon
  bool stop = false;     ///< a shard failed; everyone exits at the next check
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::string error;
};

IslandRunner::IslandRunner(ScenarioSpec spec, IslandExecutionPlan plan)
    : spec_(std::move(spec)), plan_(std::move(plan)) {
  require(plan_.islands_enabled,
          "IslandRunner: plan is a serial fallback (" + plan_.fallback_reason + ")");
  const int k = plan_.partition.islands;
  const int n = static_cast<int>(plan_.partition.island_of.size());
  masks_.resize(static_cast<std::size_t>(k));
  outbox_.resize(static_cast<std::size_t>(k));
  shards_.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    auto& mask = masks_[static_cast<std::size_t>(i)];
    mask.assign(static_cast<std::size_t>(n), 0);
    for (int u = 0; u < n; ++u)
      if (plan_.partition.island_of[static_cast<std::size_t>(u)] == i)
        mask[static_cast<std::size_t>(u)] = 1;
    // Full replica, local execution: same spec + seed means topology,
    // detection delays, adversary schedule and drift replay identically on
    // every shard; the mask restricts which nodes *act*.
    ScenarioSpec shard_spec = spec_;
    shard_spec.engine.local_mask = mask;
    shards_.push_back(std::make_unique<Scenario>(std::move(shard_spec)));
    shards_.back()->transport().set_island_routing(
        &mask, [this, i](NodeId from, NodeId to, Time sent_at, Time arrival,
                         const Payload& payload) {
          outbox_[static_cast<std::size_t>(i)].push_back(
              {from, to, sent_at, arrival, payload});
        });
  }
}

IslandRunner::~IslandRunner() = default;

void IslandRunner::exchange(Time horizon) {
  // Runs inside the barrier completion step: every shard thread is blocked,
  // so shard simulators and outboxes are safe to touch from this one thread.
  if (sync_->failed.load(std::memory_order_acquire)) {
    sync_->stop = true;
    sync_->pending = false;
    return;
  }
  auto& all = merge_scratch_;
  all.clear();
  for (auto& box : outbox_) {
    all.insert(all.end(), box.begin(), box.end());
    box.clear();
  }
  // Canonical merge order, invariant in the shard count: full-key ties can
  // only come from one sender shard (from is part of the key), where capture
  // order IS the sender's serial send order — stable sort preserves it.
  std::stable_sort(all.begin(), all.end(),
                   [](const CapturedSend& x, const CapturedSend& y) {
                     if (x.arrival != y.arrival) return x.arrival < y.arrival;
                     if (x.sent_at != y.sent_at) return x.sent_at < y.sent_at;
                     if (x.from != y.from) return x.from < y.from;
                     return x.to < y.to;
                   });
  bool pending = false;
  for (const CapturedSend& cs : all) {
    const int dest = plan_.partition.island_of[static_cast<std::size_t>(cs.to)];
    shard(dest).transport().inject_delivery(cs.from, cs.to, cs.sent_at, cs.arrival,
                                            cs.payload);
    if (cs.arrival <= horizon) pending = true;
  }
  sync_->pending = pending;
}

void IslandRunner::shard_main(int i, Time horizon, Duration window) {
  Scenario& scn = shard(i);
  const auto guarded = [&](auto&& fn) {
    if (sync_->failed.load(std::memory_order_acquire)) return;
    try {
      fn();
    } catch (const std::exception& e) {
      {
        const std::lock_guard<std::mutex> lock(sync_->err_mu);
        if (sync_->error.empty()) sync_->error = e.what();
      }
      sync_->failed.store(true, std::memory_order_release);
    } catch (...) {
      sync_->failed.store(true, std::memory_order_release);
    }
  };

  guarded([&] { scn.start(); });

  // Conservative windows: every message needs >= `window` to arrive, so a
  // capture from (w - window, w) lands at arrival >= w — injecting it at the
  // w barrier can never schedule into a shard's past. Identical arithmetic
  // on every thread keeps the barrier phase counts aligned.
  Time w = window;
  while (w < horizon) {
    guarded([&] { scn.sim().run_before(w); });
    sync_->barrier.arrive_and_wait();
    if (sync_->stop) return;
    w += window;
  }

  // Final inclusive segment, then drain: an injection may land exactly AT
  // the horizon (delays=min), and its handler may send again — but any send
  // fired at the horizon arrives strictly after it, so this settles in at
  // most two rounds.
  do {
    guarded([&] { scn.sim().run_until(horizon); });
    sync_->barrier.arrive_and_wait();
    if (sync_->stop) return;
  } while (sync_->pending);
}

void IslandRunner::run(Time horizon) {
  require(!ran_, "IslandRunner: run() called twice");
  ran_ = true;
  const Duration window = spec_.edge_params.msg_delay_min;
  require(window > 0.0, "IslandRunner: msg_delay_min must be > 0");

  Sync sync(shards(), this);
  sync.horizon = horizon;
  sync_ = &sync;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(shards()) - 1);
  for (int i = 1; i < shards(); ++i) {
    workers.emplace_back([this, i, horizon, window] { shard_main(i, horizon, window); });
  }
  shard_main(0, horizon, window);
  for (auto& t : workers) t.join();
  sync_ = nullptr;
  if (sync.failed.load(std::memory_order_acquire)) {
    throw std::runtime_error("IslandRunner: shard failed: " + sync.error);
  }
}

}  // namespace gcs
