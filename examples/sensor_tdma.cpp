// TDMA guard bands in a wireless sensor grid — the paper's own motivating
// application (§1): "if a TDMA protocol is used to coordinate access to a
// shared medium, it suffices to synchronize the clocks of nodes that
// interfere with each other".
//
// Setting: neighbor clock estimates come from reference-broadcast-style
// synchronization (RBS, the paper's citation [6]) and are tight (small ε);
// actual message routing is congested, so max-estimate flooding is stale —
// the regime where gradient synchronization matters.
//
// A TDMA slot is usable iff interfering (adjacent) nodes agree on the slot
// boundary within the guard band. We size the guard from AOPT's *certified*
// gradient bound and count real boundary violations through a mid-run
// interference-graph change. Max flooding owns no neighbor-skew guarantee
// better than the global skew: when a new link reveals hidden skew, its
// clock jump blows through any gradient-sized guard.
#include <iostream>

#include "metrics/skew.h"
#include "runner/scenario.h"
#include "util/table.h"

using namespace gcs;

namespace {

struct TdmaOutcome {
  double steady_neighbor_skew = 0.0;  ///< phase 1: settled grid
  double event_neighbor_skew = 0.0;   ///< phase 2: after a new link appears
  double global_skew = 0.0;
  int guard_violations = 0;  ///< samples where a pair exceeded the guard
  double certified_guard = 0.0;
};

TdmaOutcome run(const std::string& algo, int rows, int cols) {
  ScenarioSpec cfg;
  cfg.name = "sensor-tdma";
  cfg.n = rows * cols;
  cfg.topology = ComponentSpec("grid");
  cfg.topology.params.set("rows", rows);
  cfg.topology.params.set("cols", cols);
  cfg.algo = ComponentSpec(algo);
  cfg.aopt.rho = 5e-3;  // cheap crystal
  cfg.aopt.mu = 0.1;
  cfg.aopt.gtilde_static = 40.0;  // dominates the flooding staleness
  cfg.drift = ComponentSpec("spread");
  cfg.estimates = ComponentSpec("uniform");  // RBS-tight estimates
  cfg.seed = 42;
  // Congested medium: store-and-forward messages pinned at max delay.
  cfg.edge_params = default_edge_params(0.1, 0.5, 2.0, 0.0);
  cfg.delays = DelayMode::kMax;
  cfg.engine.beacon_period = 1.0;
  cfg.engine.tick_period = 0.5;

  Scenario s(cfg);
  s.start();

  TdmaOutcome out;
  Engine& engine = s.engine();
  out.certified_guard =
      2.0 * gradient_bound(metric_kappa(engine, EdgeKey(0, 1)),
                           cfg.aopt.gtilde_static, cfg.aopt.sigma());

  // Phase 1: settled operation.
  s.run_until(2500.0);
  const auto interfering = topo_grid(rows, cols);
  for (int step = 0; step < 200; ++step) {
    s.run_for(2.0);
    const double worst = worst_pair_skew(engine, interfering);
    out.steady_neighbor_skew = std::max(out.steady_neighbor_skew, worst);
    if (2.0 * worst > out.certified_guard) ++out.guard_violations;
  }

  // Phase 2: the interference graph changes — a long link appears between
  // opposite corners (e.g., an obstruction moved).
  s.graph().create_edge(EdgeKey(0, rows * cols - 1), cfg.edge_params);
  for (int step = 0; step < 400; ++step) {
    s.run_for(1.0);
    const double worst = worst_pair_skew(engine, interfering);
    out.event_neighbor_skew = std::max(out.event_neighbor_skew, worst);
    if (2.0 * worst > out.certified_guard) ++out.guard_violations;
    out.global_skew = std::max(out.global_skew, engine.true_global_skew());
  }
  return out;
}

}  // namespace

int main() {
  const int rows = 4;
  const int cols = 6;
  const double slot = 12.0;  // TDMA slot length in clock units

  std::cout << "TDMA on a " << rows << "x" << cols << " sensor grid, slot = "
            << slot << " time units; guard sized from AOPT's certified "
            << "gradient bound\n";

  Table table("TDMA guard-band audit (same guard for both algorithms)");
  table.headers({"algorithm", "steady nbr skew", "nbr skew after link event",
                 "global skew", "guard", "boundary violations", "duty cycle"});

  for (const std::string algo : {"aopt", "max-jump"}) {
    const auto out = run(algo, rows, cols);
    table.row()
        .cell(algo)
        .cell(out.steady_neighbor_skew)
        .cell(out.event_neighbor_skew)
        .cell(out.global_skew)
        .cell(out.certified_guard)
        .cell(out.guard_violations)
        .cell((slot - out.certified_guard) / slot, 3);
  }
  table.print();

  std::cout
      << "AOPT's guard is *certified* by Cor. 5.26 — zero violations even as\n"
         "the interference graph changes. Max flooding must size guards by the\n"
         "global skew instead (here that would leave no usable slot at all),\n"
         "or accept collisions exactly when topology changes (§1 motivation).\n";
  return 0;
}
