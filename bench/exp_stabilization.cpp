// E5 — Theorem 5.25: stabilization time after an edge appears is O(Ĝ/µ) = O(D).
//   A long-range edge is inserted into a stabilized line. We measure
//     (a) the logical span of the staged insertion (agreed T0+I − L at
//         discovery), which the paper proves is Θ(G̃/µ) = Θ(D), and
//     (b) the time until the skew on the new edge drops under its stable
//         gradient bound and stays there,
//   and verify both scale linearly with n.
//
// The size axis runs as a SweepRunner grid (sharded work-stealing pool,
// --threads), one independent Scenario per n.
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto sizes =
      parse_int_list(flags.get("sizes", std::string()), {8, 12, 16, 24});

  print_header("E5 exp_stabilization",
               "Theorem 5.25: time to the stable gradient bound on a new edge "
               "is O(Ghat/mu) = O(D), linear in the network extent");

  Sweep sweep(fast_line_spec(8));
  sweep.axis("n", sizes);
  SweepOptions options;
  options.threads = flags.get("threads", 2);
  SweepRunner runner(options);
  runner.set_run_fn([](Scenario& s, RunResult& r) {
    s.start();
    const int n = s.spec().n;
    const double ghat = s.spec().aopt.gtilde_static;
    const double sigma = s.spec().aopt.sigma();

    s.run_until(300.0);  // settle the line
    // Build macroscopic (but legal: within the long-path budget) end-to-end
    // skew so the new edge has real work to do.
    scatter_clocks_linearly(s, 0.4 * ghat);
    s.run_for(20.0);
    const EdgeKey shortcut(0, n - 1);
    const Time t_insert = s.sim().now();
    const double skew_at_insert =
        std::fabs(s.engine().logical(0) - s.engine().logical(n - 1));
    s.graph().create_edge(shortcut, s.spec().edge_params);

    const double kappa = metric_kappa(s.engine(), shortcut);
    const double bound = gradient_bound(kappa, ghat, sigma);

    // Track: first time the new-edge skew stays below the bound, and the
    // time at which both endpoints hold the edge on all levels.
    Time below_since = kTimeInf;
    Time stable_at = kTimeInf;
    Time fully_inserted_at = kTimeInf;
    const double required_hold = 50.0;
    const double horizon =
        t_insert + 3.0 * s.spec().aopt.insertion_duration_static(ghat) + 500.0;
    while (s.sim().now() < horizon) {
      s.run_for(2.0);
      const double skew =
          std::fabs(s.engine().logical(0) - s.engine().logical(n - 1));
      if (skew <= bound) {
        if (below_since == kTimeInf) below_since = s.sim().now();
        if (stable_at == kTimeInf && s.sim().now() - below_since >= required_hold) {
          stable_at = below_since;
        }
      } else {
        below_since = kTimeInf;
      }
      if (fully_inserted_at == kTimeInf &&
          s.aopt(0).edge_in_level(n - 1, 1 << 20) &&
          s.aopt(static_cast<NodeId>(n - 1)).edge_in_level(0, 1 << 20)) {
        fully_inserted_at = s.sim().now();
      }
      if (stable_at != kTimeInf && fully_inserted_at != kTimeInf) break;
    }

    r.values["ghat"] = ghat;
    r.values["i_theory"] = s.spec().aopt.insertion_duration_static(ghat);
    r.values["skew_at_insert"] = skew_at_insert;
    r.values["bound"] = bound;
    r.values["t_stable"] = stable_at - t_insert;
    r.values["t_full"] = fully_inserted_at - t_insert;
  });
  const auto results = runner.run(sweep);

  Table table("E5 — stabilization after inserting {0, n-1} into a line");
  table.headers({"n", "Ghat", "I(Ghat)", "skew@insert", "new-edge bound",
                 "t(skew<=bound)", "t(full insert)", "full/I", "insert/n"});
  std::vector<double> xs;
  std::vector<double> insert_times;
  for (const auto& r : results) {
    if (!r.ok()) {
      std::cerr << "run n=" << r.n << " failed: " << r.error << "\n";
      return 1;
    }
    const double i_theory = r.values.at("i_theory");
    const double t_full = r.values.at("t_full");
    table.row()
        .cell(r.n)
        .cell(r.values.at("ghat"))
        .cell(i_theory)
        .cell(r.values.at("skew_at_insert"))
        .cell(r.values.at("bound"))
        .cell(r.values.at("t_stable"))
        .cell(t_full)
        .cell(t_full / i_theory)
        .cell(t_full / r.n);
    xs.push_back(r.n);
    insert_times.push_back(t_full);
  }
  table.print();

  const auto fit = fit_linear(xs, insert_times);
  std::cout << "full-insertion time vs n: linear fit slope "
            << format_double(fit.slope, 2) << ", r2 = " << format_double(fit.r2, 3)
            << "\npaper: stabilization = Theta(Ghat/mu) = Theta(D) -> linear in n "
               "(T0 grid rounding adds up to one extra I of scatter)\n";
  return 0;
}
