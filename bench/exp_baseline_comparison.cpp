// E4 — baseline comparison (§1/§2 motivation).
//   Same workload for four algorithms: AOPT, max-jump (Srikanth–Toueg-style
//   flooding with clock jumps), bounded-rate max chasing (MC rule only), and
//   free-running clocks. Two phases:
//     steady:   worst local skew on a drift-stressed line,
//     shortcut: a long-range edge appears and reveals the hidden end-to-end
//               skew — max-style algorithms dump it onto a single old edge,
//               AOPT redistributes within the gradient bound.
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

namespace {

struct Outcome {
  double steady_global = 0.0;
  double steady_local = 0.0;
  double shortcut_old_edge = 0.0;  ///< worst skew on an *old* edge after insertion
  double max_jump = 0.0;           ///< largest discontinuity (jumping algorithms)
};

Outcome run(const std::string& algo, int n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.n = n;
  spec.topology = ComponentSpec("line");
  spec.algo = ComponentSpec(algo);
  spec.aopt.rho = 5e-3;
  spec.aopt.mu = 0.1;
  spec.aopt.gtilde_static = 80.0;  // dominates the hidden Θ(D) skew
  spec.drift = ComponentSpec("spread");
  spec.estimates = ComponentSpec("uniform");
  spec.seed = seed;
  apply_adversarial_delays(spec);  // §8 regime: staleness Θ(D)

  Scenario s(spec);
  s.start();
  Outcome out;

  // Long steady phase: drift must accumulate past the per-hop max-estimate
  // staleness before the algorithms separate (hidden skew ~ min(2ρt, Θ(D))).
  s.run_until(4000.0);
  RunningStats global;
  for (int step = 0; step < 100; ++step) {
    s.run_for(5.0);
    const auto snap = measure_skew(s.engine());
    global.add(snap.global);
    out.steady_local = std::max(out.steady_local, snap.worst_local);
  }
  out.steady_global = global.mean();

  // Shortcut phase.
  const auto old_edges = topo_line(n);
  s.graph().create_edge(EdgeKey(0, n - 1), spec.edge_params);
  for (int step = 0; step < 300; ++step) {
    s.run_for(0.5);
    out.shortcut_old_edge =
        std::max(out.shortcut_old_edge, worst_skew_over(s.engine(), old_edges));
  }
  for (NodeId u = 0; u < n; ++u) {
    if (auto* node = dynamic_cast<MaxJumpNode*>(&s.engine().algorithm(u))) {
      out.max_jump = std::max(out.max_jump, node->max_jump());
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = flags.get("n", 16);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 1));

  print_header("E4 exp_baseline_comparison",
               "same adversarial workload, four algorithms: AOPT wins on local "
               "skew and on smoothness after topology changes");

  Table table("E4 — algorithm comparison (line n=" + std::to_string(n) +
              ", adversarial max-delays, drift split)");
  table.headers({"algorithm", "steady global", "steady local",
                 "old-edge skew after shortcut", "largest jump"});

  Outcome aopt;
  for (const std::string algo :
       {"aopt", "max-jump", "bounded-rate-max", "free-running"}) {
    const Outcome out = run(algo, n, seed);
    if (algo == "aopt") aopt = out;
    table.row()
        .cell(algo)
        .cell(out.steady_global)
        .cell(out.steady_local)
        .cell(out.shortcut_old_edge)
        .cell(out.max_jump);
  }
  table.print();

  const Outcome maxjump = run("max-jump", n, seed);
  std::cout << "paper's motivation check: max-jump concentrates "
            << format_double(maxjump.shortcut_old_edge, 2)
            << " skew on one long-standing edge after the shortcut appears; "
               "AOPT keeps old edges at "
            << format_double(aopt.shortcut_old_edge, 2) << " ("
            << format_double(maxjump.shortcut_old_edge /
                                 std::max(aopt.shortcut_old_edge, 1e-9),
                             1)
            << "x better)\n";
  return 0;
}
