// Trajectory fingerprints: one 64-bit hash per scenario run, INET-style.
//
// A TrajectoryFingerprinter rides the kernel's passive trace hook
// (KernelTraceSink) and folds, per fired engine/transport event,
//
//   (time-bits, node, event-kind, skew-quantized logical clock)
//
// into a rolling 64-bit hash. Two runs produce the same fingerprint iff
// they fire the same events at bit-identical times in the same order with
// the observed node's logical clock equal to within the quantum — i.e. the
// fingerprint pins the trajectory the way the megabyte golden event trace
// does, at the cost of ONE committed CSV row per scenario. That is what
// lets tests/fingerprints/fingerprints.csv pin dozens of scenario/spec
// combinations across the registry's topology x algorithm x drift x
// estimate cross-product, where a per-scenario golden trace could never
// scale (the same trade INET's fingerprint tables make against full
// event logs).
//
// ## What the hash reads, and why it cannot perturb the run
//
// The logical clock is read through Engine::peek_logical — a CONST
// extrapolation of the node's piecewise-linear clock to now() that does
// NOT advance the lazy integration state. Calling Engine::logical from an
// observer would advance (mutate) the clock at observation instants,
// changing the float accumulation path of the run being observed; the
// fingerprinter must be attachable without changing a single bit of the
// trajectory, or the pin is worthless.
//
// ## Quantization
//
// The logical value is folded as round(L / kQuantum) with kQuantum = 2^-20
// (about 1 microsecond at the model's second-scale time units). Trajectory
// divergence in this codebase is discrete — a different event order or a
// different estimate draw moves clocks by far more than the quantum within
// a few events — so the quantization costs no discrimination power, while
// keeping the fingerprint a function of "the trajectory" rather than of
// sub-quantum noise that no invariant in the repo is allowed to depend on
// anyway. Times are folded as raw IEEE-754 bits: the kernel orders events
// by exact time, so "same trajectory" means bit-identical times.
//
// ## Lockstep runtime variant
//
// fingerprint_lockstep() pins RtCluster::run_lockstep chaos runs the same
// way: the per-node self-sampled (logical, hardware, live) series — which
// PR 7 proved bit-reproducible for a fixed (spec, script) pair — is folded
// sample by sample into the same rolling hash.
#pragma once

#include <cstdint>
#include <string>

#include "runner/spec.h"
#include "sim/event.h"

namespace gcs {

class Engine;
class Scenario;

/// Passive trajectory hasher; see the header comment. Attach with
/// attach(scenario) (engine + transport) before Scenario::start().
class TrajectoryFingerprinter final : public KernelTraceSink {
 public:
  /// L is folded as llrint(L / kQuantum); 2^-20 keeps the fold exact for
  /// |L| up to 2^43 (the integer is formed in double precision).
  static constexpr double kInvQuantum = 1048576.0;  // 2^20

  TrajectoryFingerprinter() = default;

  /// Observe `engine`, forwarding every event to `chain` (optional), so the
  /// fingerprinter can share the single kernel-trace slot with another sink
  /// (the golden-trace recorder does this in test_kernel_trace).
  explicit TrajectoryFingerprinter(Engine& engine, KernelTraceSink* chain = nullptr)
      : engine_(&engine), chain_(chain) {}

  /// Install this sink on the scenario's engine AND transport trace hooks.
  void attach(Scenario& scenario, KernelTraceSink* chain = nullptr);

  void on_event_fired(Time t, NodeId node, EventKind kind) override;

  [[nodiscard]] std::uint64_t value() const { return hash_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

  // ------------------------------------------------- pure folding helpers
  /// splitmix64-style avalanche; the rolling fold's mixing step.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  [[nodiscard]] static std::int64_t quantize(double logical);
  /// One event's fold step (order-dependent by construction).
  [[nodiscard]] static std::uint64_t fold(std::uint64_t h, std::uint64_t time_bits,
                                          NodeId node, EventKind kind,
                                          std::int64_t qlogical);

 private:
  Engine* engine_ = nullptr;
  KernelTraceSink* chain_ = nullptr;
  std::uint64_t hash_ = 0x9e3779b97f4a7c15ULL;  ///< non-zero seed
  std::uint64_t events_ = 0;
};

/// A finished run's fingerprint.
struct FingerprintResult {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;  ///< events folded (sim) / samples folded (rt)
};

/// Build the scenario, attach a fingerprinter, run to `horizon`, report.
FingerprintResult fingerprint_run(const ScenarioSpec& spec, Time horizon);

/// Same, over a caller-built (not yet started) scenario, driving it to
/// `horizon`. Lets sweep/fuzz harnesses fingerprint inside their own run fn.
FingerprintResult fingerprint_run(Scenario& scenario, Time horizon);

/// Island-parallel fingerprint: plan `spec` for `islands` workers
/// (plan_islands encoding: 0 = off, -1 = auto, N >= 1); serial-fallback
/// plans delegate to fingerprint_run. Otherwise each shard logs its fired
/// events — per-shard logs are disjoint (engine events fire only for local
/// nodes, a delivery fires only on the destination's owner shard) and
/// time-sorted (conservative windows never inject into a shard's past) — and
/// the logs are k-way merged by (time, node) into the same canonical fold
/// the serial fingerprinter computes — the node tie-break matches the serial
/// kernel's FIFO seq order for the one family that collides across shards,
/// synchronized per-node drift changes (see the merge comment in the .cpp).
/// Equal hash at any worker count == the island engine reproduced the
/// serial trajectory.
FingerprintResult fingerprint_run_islands(const ScenarioSpec& spec, Time horizon,
                                          int islands);

/// Lockstep-runtime fingerprint: build an RtCluster (pipe backend) on a
/// VirtualClock from `spec`, arm the chaos script/preset `chaos` (preset
/// names resolve against the resolved topology, horizon and spec.seed, like
/// rt_loopback's --chaos flag; empty = no chaos), self-sample every
/// `sample_period`, run_lockstep to `horizon` in `step` increments, and fold
/// the sampled (t, node, logical, hardware, live) series.
FingerprintResult fingerprint_lockstep(const ScenarioSpec& spec,
                                       const std::string& chaos, Time horizon,
                                       Duration step, Duration sample_period);

}  // namespace gcs
