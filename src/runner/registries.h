// Aggregated view over all component registries, for --list and docs.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/registry.h"

namespace gcs {

/// A flattened, registry-generated description of one component family.
struct RegistryDescription {
  std::string family;
  struct Component {
    std::string name;
    std::string description;
    std::vector<ParamDoc> params;
  };
  std::vector<Component> components;
};

/// Snapshot every registry (topology, algorithm, drift, estimates, gskew,
/// adversary), in a stable order.
std::vector<RegistryDescription> describe_registries();

/// Human-readable dump of describe_registries() (simulate_cli --list).
void print_registries(std::ostream& os);

}  // namespace gcs
