#include "exp_common.h"

#include <cmath>
#include <cstdlib>

namespace gcs::bench {

std::vector<int> parse_int_list(const std::string& csv, std::vector<int> def) {
  if (csv.empty()) return def;
  std::vector<int> out;
  for (const std::string& token : split(csv, ',')) {
    if (!token.empty()) out.push_back(std::atoi(token.c_str()));
  }
  return out.empty() ? def : out;
}

void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n################################################################\n"
            << "# " << id << "\n"
            << "# " << claim << "\n"
            << "################################################################\n";
}

ScenarioSpec fast_line_spec(int n) {
  ScenarioSpec spec;
  spec.n = n;
  spec.topology = ComponentSpec("line");
  spec.edge_params = default_edge_params(/*eps=*/0.05, /*tau=*/0.25,
                                         /*delay_max=*/0.5, /*delay_min=*/0.1);
  spec.aopt.rho = 1e-3;
  spec.aopt.mu = 0.1;  // eq. (7) maximum: fastest convergence
  spec.gtilde_auto = true;
  spec.drift = ComponentSpec("spread");
  spec.estimates = ComponentSpec("uniform");
  spec.engine.tick_period = 0.25;
  spec.engine.beacon_period = 0.25;
  return spec;
}

void apply_adversarial_delays(ScenarioSpec& spec, double delay_max,
                              double beacon_period) {
  spec.edge_params = default_edge_params(0.1, 0.5, delay_max, /*delay_min=*/0.0);
  spec.delays = DelayMode::kMax;
  spec.engine.beacon_period = beacon_period;
  spec.engine.tick_period = beacon_period / 2.0;
}

double worst_skew_over(Engine& engine, const std::vector<EdgeKey>& edges) {
  double worst = 0.0;
  for (const auto& e : edges) {
    worst = std::max(worst,
                     std::fabs(engine.logical(e.a) - engine.logical(e.b)));
  }
  return worst;
}

void scatter_clocks_linearly(Scenario& s, double span) {
  const int n = s.spec().n;
  if (n < 2) return;  // nothing to scatter (and avoid 0/0)
  const double base = s.engine().logical(0);
  for (NodeId u = 0; u < n; ++u) {
    s.engine().corrupt_logical(u, base + span * static_cast<double>(u) /
                                          static_cast<double>(n - 1));
  }
}

}  // namespace gcs::bench
