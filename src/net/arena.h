// Generation-tagged arena for in-flight message payloads.
//
// Zero-copy delivery: a sender constructs one Payload in the arena and every
// scheduled Delivery references it by an opaque 64-bit ref. Beacon fan-out
// puts ONE payload for the whole neighborhood with the fan-out degree as the
// initial reference count; each delivery firing (or drop) releases one
// reference, and the slot is reclaimed — its generation bumped, its index
// freelisted — when the last reference goes. This removes the per-delivery
// std::variant copy from the kernel round trip entirely: the kernel moves an
// 8-byte ref, never payload bytes.
//
// Ref encoding (hot-path design): the low 48 bits are the slot's ADDRESS,
// the high 16 bits its generation tag. Resolving a ref is therefore one AND
// plus a generation compare — no index arithmetic, no chunk-table walk —
// and the payload line can be prefetched from the raw ref before any
// validation (Transport::dispatch issues that prefetch first thing, so the
// payload's cache miss overlaps the graph lookup that follows). Slots live
// in fixed 64-slot chunks that are never relocated, which is what makes the
// embedded addresses (and the Payload& returned by get()) stable across
// concurrent put() calls.
//
// Lifetime rules:
//  * A ref is live from put() until its matching release(); get() on a
//    stale ref throws (the generation tag catches slot reuse; it wraps at
//    2^16 − 1, so a ref must not outlive ~65k reuses of its slot — in-flight
//    deliveries release long before that).
//  * The Payload& returned by get() is stable until the ref's last
//    release(): a delivery handler may send new messages while it still
//    reads the payload it was handed.
//  * Refs are produced by put() and are never 0; 0 is usable as a "no
//    payload" sentinel by callers. Passing anything other than a put() ref
//    (or 0) to the accessors is undefined.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/message.h"
#include "util/common.h"

namespace gcs {

class MessageArena {
 public:
  using Ref = std::uint64_t;

  /// Store `payload` with `refs` outstanding references; returns its ref.
  Ref put(Payload payload, std::uint32_t refs) {
    require(refs > 0, "MessageArena: need at least one reference");
    Slot* s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
    } else {
      if (next_in_chunk_ == kChunkSize) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
        next_in_chunk_ = 0;
      }
      s = &chunks_.back()[next_in_chunk_++];
    }
    s->payload = std::move(payload);
    s->refs = refs;
    ++live_;
    const auto addr = reinterpret_cast<std::uintptr_t>(s);
    require((addr & ~kAddrMask) == 0, "MessageArena: address exceeds 48 bits");
    return (static_cast<Ref>(s->gen) << kAddrBits) | addr;
  }

  /// The payload behind a live ref. Stable until the ref's last release().
  [[nodiscard]] const Payload& get(Ref ref) const { return slot_of(ref)->payload; }

  /// Unchecked variant of get() for refs whose liveness is structurally
  /// guaranteed (an in-flight delivery HOLDS a reference, so its slot cannot
  /// be reclaimed): one AND, no generation compare. Debug builds validate.
  [[nodiscard]] const Payload* peek(Ref ref) const {
#ifndef NDEBUG
    require(valid(ref), "MessageArena: peek of stale or invalid ref");
#endif
    return &reinterpret_cast<const Slot*>(ref & kAddrMask)->payload;
  }

  /// True iff the ref is live (its slot generation still matches).
  [[nodiscard]] bool valid(Ref ref) const {
    const Slot* s = reinterpret_cast<const Slot*>(ref & kAddrMask);
    return s != nullptr && s->refs > 0 &&
           s->gen == static_cast<std::uint16_t>(ref >> kAddrBits);
  }

  /// Drop one reference; reclaims the slot when the last one goes.
  /// Precondition: `ref` is live (callers release exactly the refs they
  /// created — validated in debug builds; get() stays checked always).
  void release(Ref ref) {
    Slot* s = reinterpret_cast<Slot*>(ref & kAddrMask);
#ifndef NDEBUG
    require(valid(ref), "MessageArena: release of stale or invalid ref");
#endif
    if (--s->refs == 0) {
      if (++s->gen == 0) s->gen = 1;  // stale refs must never validate again
      free_.push_back(s);
      --live_;
    }
  }

  /// Pull the payload line into cache without touching the slot's state.
  /// Safe on any put() ref regardless of liveness (prefetch never faults).
  static void prefetch(Ref ref) {
    __builtin_prefetch(reinterpret_cast<const void*>(ref & kAddrMask));
  }

  /// Number of payloads currently held (distinct slots, not references).
  [[nodiscard]] std::size_t live() const { return live_; }

 private:
  // x86-64/AArch64 user-space addresses fit in 48 bits, leaving 16 for the
  // generation tag (asserted per ref in slot_of via the round trip check).
  static constexpr int kAddrBits = 48;
  static constexpr Ref kAddrMask = (Ref{1} << kAddrBits) - 1;
  static constexpr std::size_t kChunkSize = 64;

  struct Slot {
    Payload payload;
    std::uint32_t refs = 0;
    std::uint16_t gen = 1;
  };

  [[nodiscard]] Slot* slot_of(Ref ref) const {
    Slot* s = reinterpret_cast<Slot*>(ref & kAddrMask);
    require(s != nullptr && s->refs > 0 &&
                s->gen == static_cast<std::uint16_t>(ref >> kAddrBits),
            "MessageArena: stale or invalid ref");
    return s;
  }

  // Fixed-size chunks, never relocated: slot addresses (and with them every
  // outstanding ref and get() result) survive arbitrary put() growth.
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t next_in_chunk_ = kChunkSize;
  std::vector<Slot*> free_;
  std::size_t live_ = 0;
};

}  // namespace gcs
