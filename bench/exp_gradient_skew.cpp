// E2 — Theorem 5.22 / Corollary 5.26: the stable gradient skew.
//   After stabilization, any pair at kappa-distance d satisfies
//   |L_u − L_v| <= (s(d)+1)·d with s(d) = max(1, 2+ceil(log_sigma(Ghat/d))):
//   the O(d·log(D/d)) curve. The bound is a worst-case envelope; the
//   experiment verifies (a) no violation at any distance scale and (b) the
//   measured worst skew grows sublinearly in d (per-unit skew decreasing).
//
// Workload: line, two constant drift adversaries (maximal linear spread and
// half-vs-half split — the strongest constant adversaries for long paths).
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

namespace {

void run_series(const std::string& label, ScenarioSpec spec, Duration horizon,
                Duration sample_every) {
  Scenario s(std::move(spec));
  s.start();
  const double ghat = s.spec().aopt.gtilde_static;
  const double sigma = s.spec().aopt.sigma();

  // Warm up past the legality transient, then track the worst skew per
  // hop-distance over the rest of the run.
  const double warmup = 2.0 * ghat / s.spec().aopt.mu;
  s.run_until(warmup);

  const int n = s.spec().n;
  std::vector<double> worst_by_hops(static_cast<std::size_t>(n), 0.0);
  double kappa_unit = 0.0;
  int violations = 0;
  while (s.sim().now() < warmup + horizon) {
    s.run_for(sample_every);
    for (const auto& p : measure_gradient(s.engine(), 1.0)) {
      auto& slot = worst_by_hops[static_cast<std::size_t>(p.hops)];
      slot = std::max(slot, p.skew);
      kappa_unit = p.kappa_dist / p.hops;
      if (p.skew > gradient_bound(p.kappa_dist, ghat, sigma)) ++violations;
    }
  }

  Table table("E2 [" + label + "]  worst skew vs. distance  (n=" +
              std::to_string(n) + ", Ghat=" + format_double(ghat, 2) +
              ", sigma=" + format_double(sigma, 1) + ")");
  table.headers({"hops", "kappa-dist d", "worst skew", "bound (s(d)+1)d",
                 "skew/d", "bound/d"});
  for (int hops = 1; hops < n; ++hops) {
    if (hops > 2 && hops % 2 != 0 && hops != n - 1) continue;  // thin rows
    const double d = hops * kappa_unit;
    const double skew = worst_by_hops[static_cast<std::size_t>(hops)];
    const double bound = gradient_bound(d, ghat, sigma);
    table.row()
        .cell(hops)
        .cell(d)
        .cell(skew)
        .cell(bound)
        .cell(skew / d)
        .cell(bound / d);
  }
  table.print();
  std::cout << "bound violations observed: " << violations
            << "  (paper: 0 after stabilization)\n";

  // Shape check: per-unit skew at distance 1 vs. at the far end.
  const double near = worst_by_hops[1] / kappa_unit;
  const double far =
      worst_by_hops[static_cast<std::size_t>(n - 1)] / ((n - 1) * kappa_unit);
  std::cout << "per-unit worst skew: d=1 hop -> " << format_double(near, 4)
            << ", d=" << n - 1 << " hops -> " << format_double(far, 4)
            << "  (gradient: long paths are *relatively* better synchronized)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = flags.get("n", 32);
  const double horizon = flags.get("horizon", 1500.0);

  print_header("E2 exp_gradient_skew",
               "Theorem 5.22/Cor 5.26: skew(d) <= (log_sigma(Ghat/d)+O(1))*d after "
               "stabilization");

  {
    auto spec = fast_line_spec(n);
    spec.name = "gradient-linear-spread";
    run_series("linear-spread drift", spec, horizon, 20.0);
  }
  {
    auto spec = fast_line_spec(n);
    spec.name = "gradient-half-split";
    // effectively constant: left slow, right fast
    spec.drift = ComponentSpec("blocks", ParamMap{{"blocks", "2"}, {"period", "1e7"}});
    run_series("half-vs-half split drift", spec, horizon, 20.0);
  }
  return 0;
}
