// Deterministic discrete-event simulation kernel.
//
// Events fire in non-decreasing time order; equal-time events fire in
// scheduling (FIFO) order, which makes every execution reproducible.
//
// ## Timer structure: hierarchical timing wheel in front of a 4-ary heap
//
// Pending events live in one of four tiers:
//
//   near   the near horizon: every event whose fine epoch (floor(time / W),
//          W = `bucket_width`) is <= the wheel's current epoch. Split into
//          two structures ordered by the packed (time, seq) key:
//            run     the promoted bucket, sorted once at promotion and then
//                    consumed front-to-back (O(1) pops, sequential memory);
//            overlay a generation-tagged, index-tracked 4-ary min-heap for
//                    events that land in the near horizon *after* the
//                    promotion (zero-delay self-schedules and the like).
//          The next event is whichever of run-front/overlay-root fires
//          first — one key comparison.
//   L1     the remainder of the current coarse block: 64 fine buckets, one
//          per epoch (aligned, so a bucket never mixes epochs).
//   L2     the next 64 coarse blocks (64 fine epochs each): one bucket per
//          block; entries are redistributed into L1 when their block starts.
//   far    everything beyond the L2 window (more than 64*64 fine epochs
//          ahead), an unsorted list rescanned when the L2 window slides.
//
// Bucket insertion and removal are O(1) (append / swap-remove); sorting
// cost is paid once per bucket at promotion, and far-future timers (mlock
// catch-ups, drift changes, periodic heartbeats) stop inflating every
// comparison on the hot pop path.
//
// ### Invariants the implementation relies on
//
//  * Wheel -> near promotion preserves order exactly: epoch assignment
//    floor(time / W) is monotone in time, so every event in a bucket fires
//    strictly after every event currently in the near horizon; the packed
//    (time_bits, seq) key is a total order (seq is unique), so the sorted
//    run realizes global FIFO order no matter in which order the bucket was
//    filled. Promotion happens lazily, only when the near horizon runs
//    empty (`prepare_next`), and never moves `now`.
//  * Every pending event occupies a stable slot (reused through a free list,
//    guarded against stale handles by a generation counter). The slot's
//    8-byte metadata packs (tier, bucket, position) into one word whose
//    overlay-heap encoding is the plain heap position, so heap sifts touch
//    exactly the same bytes a heap-only kernel would.
//  * Cancel and reschedule work in any tier: O(1) in a wheel bucket,
//    O(log n) in the overlay heap, O(run length) in the sorted run (erase
//    keeps it sorted; runs are one bucket long and such cancels are rare —
//    recurring far-future timers live in the wheel, not the run).
//    A reschedule re-sequences the event (fresh seq number) exactly as if
//    it had been cancelled and scheduled anew, wherever the new time lands.
//  * Times are non-negative and compared as raw IEEE-754 bit patterns (see
//    HeapEntry); epochs saturate for astronomically far times, which simply
//    parks those events in the far list forever (correct, just unsorted).
//
// ## SoA slot storage
//
// A slot's data is split structure-of-arrays so the schedule/fire round trip
// moves the minimum number of bytes per event:
//
//   meta_   8 B   (tier location, generation) — the only bytes heap sifts
//                 and wheel migrations write
//   recs_  32 B   the hot record (SimEvent: kind, dispatch channel, node,
//                 sender, send time, payload ref) — half the old 64-byte
//                 record and aligned, so schedule-in/fire-out touches ONE
//                 line per event and compiles to straight 16-byte block
//                 copies (field-wise repacking measurably loses to this)
//   targets_      escape-hatch EventDispatcher*, written/read ONLY for
//                 virtual-dispatch typed events (channel == kNoChannel)
//   closures_     out-of-line std::function, kClosure slots only
//
// The ordering key (16-byte HeapEntry) is what migrates between timer tiers;
// slot data never moves after schedule time. Payload bytes never enter the
// kernel at all: deliveries carry an opaque arena reference (see
// net/arena.h).
//
// ## Fire path: batch drain + devirtualized dispatch
//
// run_until consumes the sorted run in one tight loop: while the run front
// is the next event, it releases the slot and dispatches without re-entering
// wheel bookkeeping (prepare_next/advance_wheel run only when the near tier
// empties). This cannot reorder events: anything scheduled DURING the drain
// lands in the overlay heap (never in the run — insert_entry only ever
// appends to the heap or a wheel bucket), and the drain compares the run
// front against the overlay root before every pop, so a later-scheduled but
// earlier-firing event still preempts the run. Typed events dispatch through
// a registered channel: a plain function pointer whose body makes a direct
// call into the `final` owner (Engine/Transport) — no vtable load; records
// built with an EventDispatcher* keep the virtual call as the cold escape
// hatch. The steady-state schedule/fire/cancel cycle performs no allocation.
//
// ## Instant boundaries
//
// Equal-time events form an *instant group*. Owners that defer work until
// every effect of the current instant has applied (the engine's
// instant-coalesced trigger evaluation) register an instant-flush hook and
// arm it with request_instant_flush(). The kernel guarantees:
//
//  * armed hooks run BEFORE any event with a strictly greater timestamp
//    fires, before the queue is declared empty, and before run_until idles
//    past its horizon — i.e. while now() still equals the instant's time;
//  * FIFO (time, seq) order *within* the instant group is untouched — the
//    flush inserts nothing between same-time events, it only runs after the
//    last of them;
//  * a flush hook may schedule new events, including at the current instant;
//    those fire (in FIFO order among themselves) and the hooks run again
//    before time advances — the instant closes only when no armed hook and
//    no same-time event remains.
//
// ## Inline payload blobs
//
// Events flagged kEventFlagInlineBlob carry 32 opaque payload bytes in a
// side array parallel to the slots (written at schedule, copied to a stable
// staging buffer just before dispatch, readable via fired_blob() for the
// duration of the dispatch call). The kernel never interprets the bytes;
// the transport's degree-adaptive delivery path stores small-fan-out
// payloads here so the send/fire round trip touches no MessageArena slot.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event.h"
#include "util/common.h"

namespace gcs {

/// Opaque handle to a scheduled event; valid until it fires or is cancelled.
/// Packs (slot index, slot generation); never 0 for a live event.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// 32 opaque payload bytes riding beside an event slot (see the header
/// comment, "Inline payload blobs"). Copyable as two 16-byte blocks.
struct alignas(16) InlineBlob {
  unsigned char bytes[32];
};

class Simulator {
 public:
  using Callback = std::function<void()>;
  /// A registered dispatch channel's fire hook. Implementations are expected
  /// to be one direct (devirtualized) call into the registering object.
  using DispatchFn = void (*)(void* self, const SimEvent& ev);
  /// An instant-flush hook (see the header comment, "Instant boundaries").
  using FlushFn = void (*)(void* self);

  /// `bucket_width` is the wheel's fine-epoch width W (simulated time units).
  /// The default suits the engine's sub-second cadences; any positive value
  /// is correct (only performance changes). Powers of two keep the epoch
  /// boundaries exact.
  explicit Simulator(double bucket_width = 0.03125);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Register a typed-event dispatcher for channel dispatch (see event.h).
  /// The returned id is stamped into SimEvent::channel by the owner; `fn`
  /// must outlive every event scheduled with it. At most 255 channels.
  std::uint8_t register_dispatch_channel(void* self, DispatchFn fn);

  /// Register an instant-flush hook. Hooks run — in registration order —
  /// whenever request_instant_flush() has been called since the last flush
  /// and the kernel is about to advance past the current instant (see the
  /// header comment). `fn` must outlive the simulator's use of it.
  void register_instant_flush(void* self, FlushFn fn);

  /// Arm the registered flush hooks for the current instant. Cheap and
  /// idempotent; typically called by an owner the moment it first defers
  /// work during an event handler.
  void request_instant_flush() { flush_armed_ = true; }

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now, tolerating tiny negative
  /// drift from floating-point arithmetic, which is clamped to now).
  EventId schedule_at(Time at, Callback fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule a typed event record (no allocation; one aligned 32-byte copy
  /// into the kernel's slot storage). Same time rules. The event's channel
  /// must be a registered dispatch channel (unchecked on this hot path) —
  /// use the `target` overload for the virtual escape hatch.
  EventId schedule_event_at(Time at, const SimEvent& ev);
  EventId schedule_event_after(Duration delay, const SimEvent& ev) {
    return schedule_event_at(now_ + delay, ev);
  }
  /// Schedule a typed event carrying 32 inline payload bytes (the caller's
  /// `blob` is copied into the slot's blob side array; `ev.flags` must have
  /// kEventFlagInlineBlob set). At fire time the blob is staged and exposed
  /// through fired_blob() for the duration of the dispatch.
  EventId schedule_event_at(Time at, const SimEvent& ev, const InlineBlob& blob);
  EventId schedule_event_after(Duration delay, const SimEvent& ev,
                               const InlineBlob& blob) {
    return schedule_event_at(now_ + delay, ev, blob);
  }
  /// The staged inline blob of the event currently being dispatched. Valid
  /// only inside the dispatch of an event flagged kEventFlagInlineBlob;
  /// stable for the whole handler call (handlers may schedule freely).
  [[nodiscard]] const InlineBlob& fired_blob() const { return fired_blob_; }

  /// Virtual escape hatch: dispatch the fired event through `target` instead
  /// of a registered channel (tests, adversaries, ad-hoc dispatchers). The
  /// pointer lives in a cold side array, not the hot record.
  EventId schedule_event_at(Time at, SimEvent ev, EventDispatcher* target);
  EventId schedule_event_after(Duration delay, SimEvent ev, EventDispatcher* target) {
    return schedule_event_at(now_ + delay, ev, target);
  }

  /// Cancel a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id);

  /// Move a pending event to a new time, keeping its payload and handle.
  /// The event is re-sequenced as if freshly scheduled (FIFO among equal
  /// times). Returns false if the event already fired/was cancelled.
  bool reschedule(EventId id, Time at);

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return resolve(id) != kNoSlot; }

  /// Fire the next event; returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or `t` is passed.
  /// Afterwards now() == max(now, t) (time advances to t even if idle).
  void run_until(Time t);

  /// Run events with time strictly BELOW `t` — the island runner's window
  /// primitive (src/runner/island_runner): shards drain [now, t) between
  /// barriers, so an event injected by a peer shard AT time t still fires in
  /// order. Unlike run_until, now() is NOT idle-advanced to t (an injected
  /// event may land anywhere in [now, t)); any instant left open at the
  /// horizon is flushed before returning, exactly as run_until would.
  void run_before(Time t);

  /// Run until the queue is empty.
  void run();

  [[nodiscard]] std::size_t pending_count() const {
    return heap_.size() + (run_.size() - run_head_) + wheel_count_;
  }
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

 private:
  // Slot index width inside a heap key: up to ~1M concurrently pending
  // events; the remaining 44 bits of sequence number allow ~1.7e13 schedules
  // per Simulator lifetime (both bounds checked).
  static constexpr int kSlotBits = 20;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  // Wheel geometry: 64 fine buckets per coarse block, 64 coarse buckets.
  static constexpr int kL1Bits = 6;
  static constexpr std::uint64_t kL1Count = 1ULL << kL1Bits;
  static constexpr std::uint64_t kL1Mask = kL1Count - 1;
  static constexpr std::uint64_t kL2Count = 64;
  /// Epochs saturate here (times beyond ~1e15 * W land in the far list
  /// forever, degrading gracefully to the unsorted-list + heap behavior).
  static constexpr std::uint64_t kEpochSat = 1ULL << 62;

  // Slot location tiers, packed into SlotMeta::loc (see below). The near
  // tier (0) has two sub-containers distinguished by the bucket field:
  // bucket 0 = overlay heap (loc is then the raw heap position, which keeps
  // sift writes single-store), bucket 1 = sorted run.
  static constexpr std::uint32_t kTierNear = 0;
  static constexpr std::uint32_t kTierL1 = 1;
  static constexpr std::uint32_t kTierL2 = 2;
  static constexpr std::uint32_t kTierFar = 3;
  static constexpr std::uint32_t kRunBucket = 1;

  /// 16 bytes: fire time plus (seq << kSlotBits | slot). The sequence is
  /// strictly increasing per schedule, so comparing keys realizes the FIFO
  /// tie-break among equal times and the slot bits never influence order.
  /// The time is stored as its raw bits — event times are always >= +0.0
  /// (clamp_time enforces this, normalizing -0.0), and non-negative doubles
  /// order identically to their bit patterns — so (time, seq) comparisons
  /// compile to a single 128-bit unsigned compare instead of two
  /// hard-to-predict branches (heap sifts are mispredict-bound).
  struct HeapEntry {
    std::uint64_t time_bits;
    std::uint64_t key;
    [[nodiscard]] Time time() const { return std::bit_cast<Time>(time_bits); }
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key & kSlotMask);
    }
  };
  /// Compact per-slot bookkeeping, separate from the event payload arrays so
  /// heap sifts touch only this 8-byte array. `loc` packs
  /// (tier << 30 | bucket << 24 | position); the heap tier is 0, so for heap
  /// entries `loc` IS the heap position and sifts write it directly.
  struct SlotMeta {
    std::uint32_t loc = 0;
    std::uint32_t gen = 1;  ///< bumped on release; 0 is never a live gen
  };
  struct Channel {
    void* self = nullptr;
    DispatchFn fn = nullptr;
  };
  struct FlushHook {
    void* self = nullptr;
    FlushFn fn = nullptr;
  };
  static constexpr std::uint32_t kPosMask = (1U << 24) - 1;
  static constexpr std::uint32_t pack_loc(std::uint32_t tier, std::uint32_t bucket,
                                          std::uint32_t pos) {
    return (tier << 30) | (bucket << 24) | pos;
  }

#ifdef __SIZEOF_INT128__
  static unsigned __int128 order_key(const HeapEntry& e) {
    return (static_cast<unsigned __int128>(e.time_bits) << 64) | e.key;
  }
  static bool fires_before(const HeapEntry& a, const HeapEntry& b) {
    return order_key(a) < order_key(b);
  }
#else
  static bool fires_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
    return a.key < b.key;
  }
#endif
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return EventId{(static_cast<std::uint64_t>(gen) << 32) | slot};
  }

  /// Slot index for a live handle, or kNoSlot if stale/invalid.
  static constexpr std::uint32_t kNoSlot = ~0U;
  [[nodiscard]] std::uint32_t resolve(EventId id) const;

  [[nodiscard]] Time clamp_time(Time at) const;
  /// Fine epoch of a time (saturating; monotone in `at`).
  [[nodiscard]] std::uint64_t epoch_of(Time at) const {
    const double scaled = at * inv_bucket_width_;
    return scaled >= 4.5e15 ? kEpochSat : static_cast<std::uint64_t>(scaled);
  }
  /// Index of the smallest child of `pos` in a heap of size n (pos must
  /// have at least one child). Shared by sift_down and pop_root so the
  /// selection logic cannot diverge.
  [[nodiscard]] std::size_t min_child(std::size_t pos, std::size_t n) const;
  std::uint32_t acquire_slot();
  /// `kind` is passed in because every caller already holds the tag word.
  void release_slot(std::uint32_t slot, EventKind kind);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void restore_heap(std::size_t pos);
  void remove_heap_entry(std::size_t pos);
  void pop_root();

  // ---- wheel machinery (see the class comment for the tier invariants)
  /// The container a wheel tier lives in (kTierL1/kTierL2/kTierFar only).
  [[nodiscard]] std::vector<HeapEntry>& tier_vec(std::uint32_t tier,
                                                 std::uint32_t bucket);
  void push_heap_entry(const HeapEntry& e);
  /// Route a new/moved entry to its tier based on epoch vs. cur_epoch_.
  void insert_entry(const HeapEntry& e);
  void bucket_push(std::uint32_t tier, std::uint32_t bucket, const HeapEntry& e);
  /// Swap-remove from a bucket/far list, fixing the displaced slot's meta.
  void bucket_remove(std::uint32_t tier, std::uint32_t bucket, std::uint32_t pos);
  /// Detach a live entry from whatever tier holds it, returning it.
  HeapEntry detach_entry(std::uint32_t slot);
  /// Ensure some near-tier event exists (run front or overlay root),
  /// promoting wheel buckets as needed. False iff nothing is pending.
  bool prepare_next();
  /// True if the next event to fire is the run front (else: overlay root).
  /// Pre: prepare_next() returned true.
  [[nodiscard]] bool next_is_run() const {
    return run_head_ < run_.size() &&
           (heap_.empty() || fires_before(run_[run_head_], heap_[0]));
  }
  /// Fire one event already detached from its container.
  void fire_entry(const HeapEntry& top);
  /// Run the armed instant-flush hooks until none re-arms. Pre: flush_armed_.
  void flush_instant();
  /// Advance cur_epoch_ to the next epoch holding events and promote its
  /// bucket as the new sorted run. Pre: near tier empty, wheel_count_ > 0.
  void advance_wheel();
  /// Move every entry of the L2 bucket for coarse block `block` into L1.
  void drain_l2_block(std::uint64_t block);
  /// Pull far-list entries that now fit the L2/L1 windows (or the heap).
  void drain_far();

  Time now_ = 0.0;
  double inv_bucket_width_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t cur_epoch_ = 0;      ///< near tier covers fine epochs <= this
  std::size_t wheel_count_ = 0;      ///< entries in l1_ + l2_ + far_
  std::uint64_t far_min_coarse_ = kEpochSat;  ///< conservative lower bound
  std::vector<HeapEntry> run_;       ///< promoted bucket, sorted ascending
  std::size_t run_head_ = 0;         ///< first unconsumed run entry
  std::vector<HeapEntry> heap_;      ///< overlay 4-ary min-heap by (time, key)
  std::vector<HeapEntry> l1_[kL1Count];
  std::vector<HeapEntry> l2_[kL2Count];
  std::vector<HeapEntry> far_;
  std::vector<SlotMeta> meta_;       ///< parallel to recs_/targets_/closures_
  std::vector<SimEvent> recs_;       ///< hot 32-byte event records by slot
  std::vector<EventDispatcher*> targets_;  ///< virtual escape hatch only
  std::vector<Callback> closures_;   ///< kClosure callbacks, same slot index
  std::vector<InlineBlob> blobs_;    ///< inline payload bytes, same slot index
  std::vector<std::uint32_t> free_slots_;
  std::vector<Channel> channels_;    ///< registered typed-event dispatchers
  std::vector<FlushHook> flush_hooks_;  ///< instant-flush hooks, registration order
  bool flush_armed_ = false;         ///< a hook deferred work this instant
  InlineBlob fired_blob_{};          ///< staging for the dispatching event's blob
};

}  // namespace gcs
