// E13 — the §3 remark: a designated reference node u0, made artificially
//   faster by (1+ρ)/(1−ρ), always carries the maximum clock. All statements
//   then hold with ρ replaced by ρ̃ ≈ 3ρ and D(t) replaced by the estimate
//   *radius* R_u0(t) from u0. On a line, moving u0 from the end to the
//   middle halves the radius — and the steady global skew follows it.
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

namespace {

struct RefOutcome {
  double steady_global = 0.0;
  bool ref_is_max = true;
};

RefOutcome run(int n, NodeId reference, Duration horizon) {
  auto spec = fast_line_spec(n);
  spec.name = "reference-node";
  spec.reference_node = reference;
  // Flat base rates and deterministic minimal delays: the only skew driver
  // left is the staleness of information about u0, which is proportional to
  // the hop distance from u0 — i.e. exactly the radius R_u0 effect.
  spec.drift = ComponentSpec("none");
  spec.delays = DelayMode::kMin;
  spec.engine.beacon_period = 0.5;
  // mu must clear 2*rho~/(1-rho~); rho=1e-3 -> rho~ ~ 3e-3, mu=0.1 is ample.
  Scenario s(spec);
  s.start();
  s.run_until(horizon / 2.0);  // reach the staleness-limited steady state
  RefOutcome out;
  RunningStats global;
  while (s.sim().now() < horizon) {
    s.run_for(5.0);
    global.add(s.engine().true_global_skew());
    double max_logical = -kTimeInf;
    for (NodeId u = 0; u < n; ++u) {
      max_logical = std::max(max_logical, s.engine().logical(u));
    }
    out.ref_is_max =
        out.ref_is_max && (s.engine().logical(reference) >= max_logical - 1e-9);
  }
  out.steady_global = global.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = flags.get("n", 32);
  const double horizon = flags.get("horizon", 1200.0);

  print_header("E13 exp_reference_node",
               "§3 remark: with a boosted reference node u0, the skew regime is "
               "set by the radius R_u0 instead of the diameter D");

  Table table("E13 — reference-node placement on a line (n=" + std::to_string(n) +
              ")");
  table.headers({"u0 placement", "radius (hops)", "steady G", "G per radius-hop",
                 "u0 always max"});

  double g_end = 0.0;
  double g_mid = 0.0;
  for (const auto& [label, ref] :
       {std::pair<const char*, NodeId>{"end (radius = n-1)", 0},
        std::pair<const char*, NodeId>{"middle (radius = n/2)",
                                       static_cast<NodeId>(n / 2)}}) {
    const auto out = run(n, ref, horizon);
    const int radius = std::max(static_cast<int>(ref), n - 1 - static_cast<int>(ref));
    table.row()
        .cell(label)
        .cell(radius)
        .cell(out.steady_global)
        .cell(out.steady_global / radius)
        .cell(out.ref_is_max);
    (ref == 0 ? g_end : g_mid) = out.steady_global;
  }
  table.print();
  std::cout << "paper: G tracks the radius R_u0 — moving u0 to the middle "
               "halves it (measured ratio "
            << format_double(g_end / g_mid, 2) << ", predicted ~2)\n";
  return 0;
}
