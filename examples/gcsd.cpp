// gcsd: the gradient-clock-synchronization daemon — ONE live node per
// process, talking UDP on loopback. Launch one instance per node:
//
//   port=29200; epoch=$(gcsd --print-epoch)
//   gcsd --node=0 --nodes=2 --epoch=$epoch --seconds=30 --csv=node0.csv &
//   gcsd --node=1 --nodes=2 --epoch=$epoch --seconds=30 --csv=node1.csv &
//   wait
//
// All instances must share --nodes, --base-port, --seed, --epoch and the
// scenario knobs: each process runs a *replica* of the same ScenarioSpec in
// service mode, so equal specs are what keep the topology and drift tables
// consistent across processes. --epoch anchors model t=0 on the machine-wide
// steady clock (MonotonicClock's epoch), which is how separate processes
// share a model timeline; --print-epoch emits a value to pass to all.
//
// Each daemon self-samples its clocks on the model-time grid and writes them
// to --csv; join the per-node CSVs offline for cross-node skew.
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "rt/rt_cluster.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace gcs;

namespace {

ScenarioSpec make_spec(const Flags& flags) {
  ScenarioSpec spec;
  spec.name = "gcsd";
  spec.n = flags.get("nodes", 2);
  spec.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  spec.topology = ComponentSpec(
      flags.get("topology", std::string(spec.n >= 3 ? "ring" : "line")));
  spec.drift = ComponentSpec("osc-const");
  spec.drift.params.set("ppm", flags.get("ppm", std::string("120/-180/60/-90")));
  spec.estimates = ComponentSpec("rtt");
  const double probe = flags.get("probe", 0.25);
  spec.estimates.params.set("probe", probe);
  spec.engine.beacon_period = probe;
  spec.engine.tick_period = probe;
  spec.edge_params.eps = 0.1;
  spec.edge_params.tau = 0.5;
  spec.edge_params.msg_delay_max = flags.get("delay-max", 0.5);
  spec.edge_params.msg_delay_min = 0.0;
  spec.gtilde_auto = true;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  MonotonicClock wall;
  if (flags.get("print-epoch", false)) {
    // A shared anchor slightly in the future, so daemons launched within the
    // grace window all start before model t=0 frames begin to matter.
    std::cout << wall.now() << "\n";
    return 0;
  }
  if (!flags.has("node")) {
    std::cerr << "usage: gcsd --node=U --nodes=N [--epoch=E] [--base-port=P]\n"
                 "            [--seconds=S] [--time-scale=K] [--probe=T]\n"
                 "            [--topology=ring] [--ppm=120/-180] [--seed=1]\n"
                 "            [--sample-period=T] [--csv=path]\n"
                 "       gcsd --print-epoch\n";
    return 2;
  }
  const auto self = static_cast<NodeId>(flags.get("node", 0));
  const double scale = flags.get("time-scale", 1.0);
  // Default epoch = this process's start: fine for single-process smoke
  // runs; real multi-daemon deployments pass a shared --epoch.
  const Time epoch = flags.get("epoch", wall.now());
  ScaledClock clock(wall, scale, epoch);

  const ScenarioSpec spec = make_spec(flags);
  UdpTransport net(spec.n, self,
                   static_cast<std::uint16_t>(flags.get("base-port", 29200)));
  RtNode node(spec, self, net, clock);
  node.start();

  const Time start = std::max(clock.now(), 0.0);
  const Time horizon = start + flags.get("seconds", 30.0) * scale;
  const double sample_period = flags.get("sample-period", 0.5);
  std::vector<RtSample> samples;
  const int count =
      static_cast<int>(std::floor((horizon - start) / sample_period + 1e-9));
  for (int k = 1; k <= count; ++k) {
    const Time t = start + static_cast<Time>(k) * sample_period;
    node.at(t, [&node, &samples, t] {
      samples.push_back(RtSample{t, node.logical(), node.hardware()});
    });
  }

  while (node.pump() < horizon) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  node.pump();

  const std::string csv = flags.get("csv", std::string());
  if (!csv.empty()) {
    CsvWriter out(csv);
    out.row({"t", "node", "logical", "hardware"});
    for (const RtSample& s : samples) {
      out.field(s.t).field(self).field(s.logical).field(s.hardware).endrow();
    }
  }
  std::cout << "gcsd node " << self << ": ran to model t=" << horizon
            << " (" << samples.size() << " samples), frames out "
            << node.egress_count() << ", in " << node.ingress_count()
            << ", rejected " << node.rejected_count() << "\n"
            << "final L=" << node.logical() << " H=" << node.hardware() << "\n";
  return 0;
}
