#!/usr/bin/env bash
# Regenerate the committed golden kernel trace (tests/golden/) from the
# CURRENT kernel. This is a deliberate act: the golden file pins the exact
# event-fire sequence (time, node, kind) of the reference scenario, and
# overwriting it redefines "equivalent" for every future kernel change.
#
# Do this only when a PR consciously changes trajectories (as PR 5's
# instant-coalesced evaluation was licensed to), and say so in the PR:
#   1. run this script (builds test_kernel_trace, regenerates in place),
#   2. verify the full suite is green against the new golden,
#   3. commit tests/golden/ together with the kernel change and document
#      the reason in docs/ARCHITECTURE.md ("Instant-coalesced evaluation"
#      records the PR 5 rationale).
#
# Usage: scripts/regen_golden.sh [BUILD_DIR]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j --target test_kernel_trace

GCS_REGEN_KERNEL_TRACE=1 "$BUILD_DIR"/test_kernel_trace \
  --gtest_filter='KernelTrace.*'

# The fingerprint table pins the same reference trajectory (its
# beacon-reference row hashes the run the golden trace records in full), so
# a golden regeneration must regenerate the table too...
scripts/regen_fingerprints.sh "$BUILD_DIR"

# ...and the two must agree afterwards: test_kernel_trace cross-checks the
# fresh golden trace against the fresh beacon-reference row and fails here
# if they pin different trajectories.
"$BUILD_DIR"/test_kernel_trace --gtest_filter='KernelTrace.*'

echo "regenerated tests/golden/ + tests/fingerprints/ —" \
     "now rerun the full suite and commit the diff"
