#include <gtest/gtest.h>

#include <cmath>

#include "core/params.h"
#include "core/triggers.h"
#include "util/rng.h"
#include "util/simd.h"

namespace gcs {
namespace {

constexpr double kMu = 0.05;
constexpr double kRho = 1e-3;
constexpr int kCap = 64;

LevelPeer make_peer(double diff, double kappa = 1.0, double delta = 0.2,
                    double eps = 0.1, double tau = 0.5,
                    int level_limit = kAllLevels) {
  LevelPeer p;
  p.level_limit = level_limit;
  p.kappa = kappa;
  p.delta = delta;
  p.eps = eps;
  p.tau = tau;
  p.has_estimate = true;
  p.est_minus_own = diff;
  return p;
}

TEST(Triggers, EmptyNeighborhoodNoTrigger) {
  const auto d = evaluate_triggers({}, kMu, kRho, kCap);
  EXPECT_FALSE(d.fast);
  EXPECT_FALSE(d.slow);
}

TEST(Triggers, NeighborFarAheadTriggersFast) {
  // One neighbor 1.5*kappa ahead: level 1 fast condition holds.
  const auto d = evaluate_triggers({make_peer(1.5)}, kMu, kRho, kCap);
  EXPECT_TRUE(d.fast);
  EXPECT_FALSE(d.slow);
  EXPECT_EQ(d.fast_level, 1);
}

TEST(Triggers, NeighborFarBehindTriggersSlow) {
  const auto d = evaluate_triggers({make_peer(-2.0)}, kMu, kRho, kCap);
  EXPECT_TRUE(d.slow);
  EXPECT_FALSE(d.fast);
  EXPECT_EQ(d.slow_level, 1);
}

TEST(Triggers, AheadAndFurtherBehindBlocksFast) {
  // w is ahead by 1.2 (fast exists at s=1), but v is behind by 3 kappa:
  // the universal fast condition fails at s=1 AND v keeps slow alive.
  const auto d =
      evaluate_triggers({make_peer(1.2), make_peer(-3.0)}, kMu, kRho, kCap);
  EXPECT_TRUE(d.slow);
  EXPECT_FALSE(d.fast && d.slow);
}

TEST(Triggers, SmallSkewsTriggerNothing) {
  const auto d = evaluate_triggers(
      {make_peer(0.3), make_peer(-0.4), make_peer(0.0)}, kMu, kRho, kCap);
  EXPECT_FALSE(d.fast);
  EXPECT_FALSE(d.slow);
}

TEST(Triggers, HighLevelFastForLargeSkew) {
  // Neighbor 5.05*kappa ahead: fast holds up to level 5.
  const auto d = evaluate_triggers({make_peer(5.05)}, kMu, kRho, kCap);
  EXPECT_TRUE(d.fast);
  EXPECT_GE(d.fast_level, 1);
}

TEST(Triggers, LevelMembershipRestrictsScope) {
  // Peer only in levels <= 2; a skew of 3.2*kappa can witness fast at s<=2
  // (3.2 >= s*1.0 - 0.1 holds for s in {1,2,3} but membership stops at 2).
  auto p = make_peer(3.2);
  p.level_limit = 2;
  const auto d = evaluate_triggers({p}, kMu, kRho, kCap);
  EXPECT_TRUE(d.fast);
  EXPECT_LE(d.fast_level, 2);
}

TEST(Triggers, MissingEstimateBlocksUniversalConditions) {
  auto ahead = make_peer(1.5);
  LevelPeer unknown;
  unknown.level_limit = kAllLevels;
  unknown.kappa = 1.0;
  unknown.delta = 0.2;
  unknown.eps = 0.1;
  unknown.tau = 0.5;
  unknown.has_estimate = false;
  const auto d = evaluate_triggers({ahead, unknown}, kMu, kRho, kCap);
  EXPECT_FALSE(d.fast);  // cannot certify "no one too far behind"
  EXPECT_FALSE(d.slow);
}

TEST(Triggers, EstimateUncertaintyCompensation) {
  // Fast trigger threshold is s*kappa - eps (Def 4.5): a diff exactly at
  // kappa - eps must trigger; just below must not.
  const auto yes = evaluate_triggers({make_peer(0.9)}, kMu, kRho, kCap);
  EXPECT_TRUE(yes.fast);
  const auto no = evaluate_triggers({make_peer(0.9 - 1e-9)}, kMu, kRho, kCap);
  EXPECT_FALSE(no.fast);
}

TEST(Triggers, SlowThresholdMatchesDef46) {
  // Slow exists iff behind >= (s+1/2)kappa - delta - eps = 1.5 - 0.2 - 0.1.
  const auto yes = evaluate_triggers({make_peer(-1.2)}, kMu, kRho, kCap);
  EXPECT_TRUE(yes.slow);
  const auto no = evaluate_triggers({make_peer(-1.2 + 1e-9)}, kMu, kRho, kCap);
  EXPECT_FALSE(no.slow);
}

// ---------------------------------------------------------------------------
// Property: Lemma 5.3 — with kappa/delta satisfying eq. (9) and Def 4.6,
// the fast and slow triggers are never simultaneously satisfied, for any
// neighbor configuration.
// ---------------------------------------------------------------------------

struct Lemma53Case {
  std::uint64_t seed;
  int peers;
};

class TriggerExclusionTest : public ::testing::TestWithParam<Lemma53Case> {};

TEST_P(TriggerExclusionTest, FastAndSlowNeverBothHold) {
  const auto param = GetParam();
  Rng rng(param.seed);
  AlgoParams ap;
  ap.rho = kRho;
  ap.mu = kMu;
  for (int iteration = 0; iteration < 400; ++iteration) {
    std::vector<LevelPeer> peers;
    for (int i = 0; i < param.peers; ++i) {
      EdgeParams ep;
      ep.eps = rng.uniform(0.01, 0.5);
      ep.tau = rng.uniform(0.0, 2.0);
      const EdgeConstants ec = ap.edge_constants(ep);
      LevelPeer p;
      p.level_limit = rng.chance(0.3)
                          ? static_cast<int>(rng.between(0, 6))
                          : kAllLevels;
      p.kappa = ec.kappa;
      p.delta = ec.delta;
      p.eps = ep.eps;
      p.tau = ep.tau;
      p.has_estimate = rng.chance(0.95);
      p.est_minus_own = rng.uniform(-30.0, 30.0);
      peers.push_back(p);
    }
    const auto d = evaluate_triggers(peers, kMu, kRho, kCap);
    EXPECT_FALSE(d.fast && d.slow)
        << "Lemma 5.3 violated with seed=" << param.seed
        << " iteration=" << iteration;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomNeighborhoods, TriggerExclusionTest,
    ::testing::Values(Lemma53Case{1, 1}, Lemma53Case{2, 2}, Lemma53Case{3, 3},
                      Lemma53Case{4, 5}, Lemma53Case{5, 8}, Lemma53Case{6, 12},
                      Lemma53Case{7, 2}, Lemma53Case{8, 4}),
    [](const ::testing::TestParamInfo<Lemma53Case>& info) {
      return "seed" + std::to_string(info.param.seed) + "_peers" +
             std::to_string(info.param.peers);
    });

// ---------------------------------------------------------------------------
// Property: the data-driven level scan is equivalent to a fixed deep scan.
// ---------------------------------------------------------------------------

TEST(Triggers, DataDrivenScanMatchesDeepScan) {
  Rng rng(99);
  AlgoParams ap;
  ap.rho = kRho;
  ap.mu = kMu;
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::vector<LevelPeer> peers;
    const int count = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < count; ++i) {
      EdgeParams ep;
      ep.eps = rng.uniform(0.05, 0.3);
      ep.tau = rng.uniform(0.0, 1.0);
      const EdgeConstants ec = ap.edge_constants(ep);
      LevelPeer p;
      p.level_limit = rng.chance(0.5) ? static_cast<int>(rng.between(1, 8))
                                      : kAllLevels;
      p.kappa = ec.kappa;
      p.delta = ec.delta;
      p.eps = ep.eps;
      p.tau = ep.tau;
      p.has_estimate = true;
      p.est_minus_own = rng.uniform(-20.0, 20.0);
      peers.push_back(p);
    }
    // The cap only matters beyond the data-driven bound; compare shallow
    // default evaluation with a very deep one.
    const auto a = evaluate_triggers(peers, kMu, kRho, 64);
    const auto b = evaluate_triggers(peers, kMu, kRho, 100000);
    EXPECT_EQ(a.fast, b.fast);
    EXPECT_EQ(a.slow, b.slow);
    EXPECT_EQ(a.fast_level, b.fast_level);
    EXPECT_EQ(a.slow_level, b.slow_level);
  }
}

// ---------------------------------------------------------------------------
// Property: the vectorized level scan is decision-identical to the scalar
// reference. The pinned fingerprint rows prove this end-to-end through whole
// runs; this is the direct unit-level form over adversarial random inputs —
// including missing estimates, inert (level_limit < 1) entries and sub-quantum
// near-threshold discrepancies the catalog scenarios may never produce.
// ---------------------------------------------------------------------------

TEST(Triggers, VectorScanMatchesScalarReference) {
  if (!simd::available()) {
    GTEST_SKIP() << "no vector kernel on this CPU (" << simd::backend() << ")";
  }
  Rng rng(4242);
  AlgoParams ap;
  ap.rho = kRho;
  ap.mu = kMu;
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::vector<LevelPeer> peers;
    const int count = static_cast<int>(rng.below(7));  // 0 peers included
    for (int i = 0; i < count; ++i) {
      EdgeParams ep;
      ep.eps = rng.uniform(0.05, 0.3);
      ep.tau = rng.uniform(0.0, 1.0);
      const EdgeConstants ec = ap.edge_constants(ep);
      LevelPeer p;
      p.level_limit = rng.chance(0.1)   ? 0
                      : rng.chance(0.5) ? static_cast<int>(rng.between(1, 9))
                                        : kAllLevels;
      p.kappa = ec.kappa;
      p.delta = ec.delta;
      p.eps = ep.eps;
      p.tau = ep.tau;
      p.has_estimate = rng.chance(0.9);
      // Mostly large discrepancies (deep scans), sometimes values right at
      // the first-level thresholds where a single ULP of divergence between
      // the two paths would flip a comparison.
      p.est_minus_own = rng.chance(0.8)
                            ? rng.uniform(-25.0, 25.0)
                            : ec.kappa + rng.uniform(-1e-12, 1e-12);
      if (rng.chance(0.5)) p.est_minus_own = -p.est_minus_own;
      peers.push_back(p);
    }
    const int cap = rng.chance(0.2) ? static_cast<int>(rng.between(1, 4)) : 64;
    const bool prev = simd::enabled();
    simd::set_enabled(false);
    const auto scalar = evaluate_triggers(peers, kMu, kRho, cap);
    simd::set_enabled(true);
    const auto vector = evaluate_triggers(peers, kMu, kRho, cap);
    simd::set_enabled(prev);
    ASSERT_EQ(scalar.fast, vector.fast) << "iteration " << iteration;
    ASSERT_EQ(scalar.slow, vector.slow) << "iteration " << iteration;
    ASSERT_EQ(scalar.fast_level, vector.fast_level) << "iteration " << iteration;
    ASSERT_EQ(scalar.slow_level, vector.slow_level) << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace gcs
