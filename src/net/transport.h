// Message transport over the dynamic graph.
//
// Semantics follow §3.1: a message sent at time t over edge e arrives within
// [t + msg_delay_min, t + msg_delay_max] provided the edge exists in the
// receiver's view throughout transit; otherwise it is dropped (the paper
// allows either). Delay values can be sampled or adversarially pinned per
// direction, which the §8 lower-bound construction uses.
#pragma once

#include <functional>
#include <unordered_map>
#include <utility>

#include "graph/dynamic_graph.h"
#include "net/arena.h"
#include "net/message.h"
#include "sim/event.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace gcs {

enum class DelayMode {
  kUniform,      ///< uniform in [msg_delay_min, msg_delay_max], one shared stream
  kMin,          ///< always msg_delay_min
  kMax,          ///< always msg_delay_max
  kEdgeUniform,  ///< uniform, but drawn from a per-directed-edge substream
                 ///< seeded by (transport seed, edge) — the draw a sender
                 ///< makes depends only on its own send history over that
                 ///< edge, never on interleaving with other nodes, which is
                 ///< what lets the island-parallel runner reproduce serial
                 ///< delays exactly (see src/runner/island_runner.h)
};

/// Receiver of delivered messages. An interface rather than a std::function
/// so the per-delivery call is a plain virtual dispatch.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void on_delivery(const Delivery& d) = 0;
};

/// Service-mode bypass (src/rt): when installed, every send that passes the
/// sender-view check is handed here instead of being scheduled as a kernel
/// delivery — the real transport (pipe rings, UDP sockets) carries it, and
/// the receiving process injects it back through DeliverySink. The in-sim
/// delay model, drop rule and arena are all bypassed; with no egress set
/// the transport behaves exactly as before.
class TransportEgress {
 public:
  virtual ~TransportEgress() = default;
  virtual void send(NodeId from, NodeId to, Time sent_at, const Payload& payload) = 0;
};

class Transport final : public EventDispatcher {
 public:
  using Handler = std::function<void(const Delivery&)>;

  Transport(Simulator& sim, DynamicGraph& graph, std::uint64_t seed = 23);

  /// The engine's delivery path. A set sink takes precedence over the
  /// closure handler (which remains for tests and ad-hoc probes).
  void set_sink(DeliverySink* sink) { sink_ = sink; }
  void set_handler(Handler handler) { handler_ = std::move(handler); }
  void set_delay_mode(DelayMode mode) { delay_mode_ = mode; }
  /// Divert outbound messages to a real transport (nullptr restores the
  /// in-sim delivery path).
  void set_egress(TransportEgress* egress) { egress_ = egress; }

  /// Probe of delivery firings (time, receiver, kDelivery); nullptr detaches.
  void set_kernel_trace(KernelTraceSink* trace) { trace_ = trace; }

  /// Island-parallel routing (src/runner/island_runner): when a local mask is
  /// installed, a send whose destination is NOT local to this shard is handed
  /// to `capture` — with the sender-drawn delay already folded into `arrival`
  /// — instead of being scheduled here; the runner injects it into the owning
  /// shard at the next window barrier. Pass nullptr/empty to restore. The
  /// mask must outlive the routing and have one byte per node (nonzero =
  /// local). Mutually exclusive with an egress.
  using CrossCapture = std::function<void(NodeId from, NodeId to, Time sent_at,
                                          Time arrival, const Payload& payload)>;
  void set_island_routing(const std::vector<std::uint8_t>* local_mask,
                          CrossCapture capture) {
    local_mask_ = local_mask;
    cross_capture_ = std::move(capture);
  }

  /// Schedule a delivery captured on another shard. Fires through the normal
  /// dispatch path (trace, drop rule, sink) at absolute time `arrival`, so
  /// the receiver observes exactly what the serial engine would have.
  void inject_delivery(NodeId from, NodeId to, Time sent_at, Time arrival,
                       const Payload& payload);

  /// Pin the delay of all future messages from `from` to `to` (clamped to
  /// the edge's [min,max]). Used by adversarial executions.
  void set_directional_delay(NodeId from, NodeId to, Duration delay);
  void clear_directional_delay(NodeId from, NodeId to);

  /// Send if the edge exists in the sender's view; returns false otherwise.
  /// Unicasts take the inline-payload path: the 32 payload bytes ride in the
  /// kernel's blob side array beside the event slot (no allocation, and the
  /// MessageArena is not touched — only send_fanout at degree > 2 uses it).
  bool send(NodeId from, NodeId to, Payload payload);

  /// Fan-out fast path: send along an entry of `from`'s own neighbor view
  /// (skips the view lookup the caller has already done). Inline-payload
  /// path, like send().
  void send_via(NodeId from, const NeighborView& to, Payload&& payload);

  /// Broadcast fast path for the engine's beacon duty. Degree-adaptive
  /// (picked here, at send time): for fan-out degree <= 2 the payload rides
  /// INLINE in the kernel's blob side array (one 32-byte copy per delivery —
  /// cheaper than MessageArena bookkeeping on sparse topologies); for larger
  /// degree ONE payload is moved into the arena and every scheduled delivery
  /// references it (reclaimed when the last one fires or drops) — zero
  /// per-edge payload construction. Behaviorally identical — including the
  /// RNG delay-draw order — to calling send_via for each entry of `views`
  /// in order.
  void send_fanout(NodeId from, const std::vector<NeighborView>& views,
                   Payload payload);

  /// Kernel callback for in-flight kDelivery events (also reachable through
  /// the registered dispatch channel, which devirtualizes the call).
  void dispatch(const SimEvent& ev) override;

  /// The in-flight payload store (exposed for tests and diagnostics).
  [[nodiscard]] const MessageArena& arena() const { return arena_; }

  [[nodiscard]] std::uint64_t sent_count() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }

 private:
  [[nodiscard]] Duration pick_delay(NodeId from, NodeId to, const EdgeParams& params);
  [[nodiscard]] Rng& edge_stream(NodeId from, NodeId to);
  [[nodiscard]] bool is_cross(NodeId to) const {
    return local_mask_ != nullptr && (*local_mask_)[static_cast<std::size_t>(to)] == 0;
  }

  Simulator& sim_;
  DynamicGraph& graph_;
  MessageArena arena_;
  std::uint8_t channel_ = kNoChannel;  ///< registered dispatch channel
  std::uint64_t seed_;
  Rng rng_;
  std::unordered_map<std::uint64_t, Rng> edge_rng_;  ///< kEdgeUniform substreams
  const std::vector<std::uint8_t>* local_mask_ = nullptr;
  CrossCapture cross_capture_;
  DeliverySink* sink_ = nullptr;
  TransportEgress* egress_ = nullptr;
  Handler handler_;
  KernelTraceSink* trace_ = nullptr;
  DelayMode delay_mode_ = DelayMode::kUniform;
  std::unordered_map<std::uint64_t, Duration> directional_override_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace gcs
