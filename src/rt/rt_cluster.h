// An in-process runtime cluster: N RtNode replicas over a shared transport
// backend (PipeHub rings or per-node UDP loopback sockets) and one wall
// clock, with race-free clock sampling and an offline per-edge skew join.
//
// Sampling works by scheduling a kernel closure on EVERY node at the same
// model-time grid points before the run starts: each node records its own
// (logical, hardware) pair on its own thread at exactly t = k·period, so no
// cross-thread clock read ever happens. After the run the cluster joins the
// per-node series by grid index into per-edge |L_u − L_v| samples — the live
// counterpart of metrics/skew.h, feeding the same TimeSeries recorder.
// Samples taken by a crashed or catching-up node are kept but flagged
// not-live; reports and gates only consider grid points where both
// endpoints were live.
//
// Chaos: the cluster is a ChaosTarget. arm_chaos() installs a script whose
// ops it maps onto the nodes' atomic crash/restart flags and the backend's
// lock-free LinkFault slots; run_lockstep applies due ops at each step
// boundary (deterministic), run_threads polls them from a dedicated thread.
// edge_report_window() then gates re-convergence per quiet phase.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "metrics/recorder.h"
#include "rt/chaos.h"
#include "rt/liveness.h"
#include "rt/rt_node.h"
#include "rt/rt_transport.h"
#include "rt/tcp_transport.h"
#include "rt/time_source.h"

namespace gcs {

/// One self-sampled clock reading (taken by the node's own thread).
struct RtSample {
  Time t = 0.0;
  ClockValue logical = 0.0;
  ClockValue hardware = 0.0;
  bool live = true;  ///< node was up and caught up when it sampled
};

/// Offline per-edge skew summary over the sampled grid.
struct RtEdgeReport {
  EdgeKey edge;
  double eps = 0.0;           ///< estimate layer's ε_e
  double kappa = 0.0;         ///< metric κ_e (eq. 9 with that ε)
  double bound = 0.0;         ///< stable gradient bound for κ-distance κ_e
  double max_abs_skew = 0.0;  ///< max |L_u − L_v| over joined live samples
  double mean_abs_skew = 0.0;
  int samples = 0;
};

enum class RtBackend { kPipe, kUdp, kTcp };

class RtCluster final : public ChaosTarget {
 public:
  /// Builds one replica per node of the resolved topology, all sharing
  /// `clock`. kPipe: one PipeHub carrying `faults`. kUdp / kTcp: one
  /// loopback socket (or listener + outbound connections) per node at
  /// base_port + id (FaultSpec injection does not apply, but its seed
  /// still feeds the chaos and reconnect-jitter streams).
  explicit RtCluster(const ScenarioSpec& spec, TimeSource& clock,
                     const FaultSpec& faults = {},
                     std::size_t ring_capacity = 1024,
                     RtBackend backend = RtBackend::kPipe,
                     std::uint16_t base_port = 39600);

  /// Arm the failure detector on every node. Call before start().
  void enable_detector(const DetectorConfig& config);

  /// Install a chaos script (see rt/chaos.h). Call before running; ops are
  /// applied by run_lockstep / run_threads as the clock passes them.
  void arm_chaos(const ChaosScript& script);

  /// Start every replica (t=0 topology + engine). Call once, before pumping.
  void start();

  /// Schedule clock self-sampling on every node at k·period for
  /// k = 1 .. floor(horizon/period). Call after start(), before running.
  void schedule_samples(Time horizon, Duration period);

  /// Deterministic single-threaded run: crank `vclock` (which must be the
  /// TimeSource the cluster was built on) in `step` increments up to
  /// `horizon`, pumping every node round-robin a fixed number of rounds per
  /// increment so request/response exchanges settle within the step. Due
  /// chaos ops are applied right after each clock advance, before any node
  /// pumps — bit-reproducible for a fixed (spec, faults, script) triple.
  void run_lockstep(VirtualClock& vclock, Time horizon, Duration step);

  /// Real-time run: one thread per node, each pumping until its kernel
  /// reaches `horizon` (model time), sleeping `poll_interval` model seconds
  /// between pumps. An armed chaos script runs on its own polling thread.
  void run_threads(Time horizon, Duration poll_interval = 0.002);

  /// Single-threaded settle pass after a run: pump every node round-robin a
  /// few rounds so frames still sitting in socket buffers at the horizon
  /// are consumed. Makes the ingress counters (rejected() in particular)
  /// account for everything that was actually transmitted.
  void drain(int rounds = 4);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] RtNode& node(NodeId u) { return *nodes_[static_cast<std::size_t>(u)]; }
  /// Pipe backend only (throws otherwise).
  [[nodiscard]] PipeHub& hub() {
    require(hub_ != nullptr, "RtCluster: no hub (socket backend)");
    return *hub_;
  }
  /// UDP backend only (throws otherwise).
  [[nodiscard]] UdpTransport& udp(NodeId u) {
    require(backend_ == RtBackend::kUdp, "RtCluster: not the UDP backend");
    return *udp_[static_cast<std::size_t>(u)];
  }
  /// TCP backend only (throws otherwise).
  [[nodiscard]] TcpTransport& tcp(NodeId u) {
    require(backend_ == RtBackend::kTcp, "RtCluster: not the TCP backend");
    return *tcp_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] RtBackend backend() const { return backend_; }
  /// Cluster-wide transport integrity counters (summed over per-node
  /// transports on the socket backends): chaos-injected bit flips and
  /// rejected ingress frames. With corruption chaos armed, CI asserts the
  /// two agree — every flip caught, none delivered.
  [[nodiscard]] std::uint64_t total_corrupted() const;
  [[nodiscard]] std::uint64_t total_rejected() const;
  [[nodiscard]] const std::vector<EdgeKey>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<std::vector<RtSample>>& samples() const {
    return samples_;
  }

  // ------------------------------------------------------- ChaosTarget
  void chaos_crash(NodeId u) override;
  void chaos_restart(NodeId u) override;
  void chaos_link(NodeId from, NodeId to, const LinkFault& f) override;
  void chaos_conn_reset(NodeId a, NodeId b) override;

  /// |L_u − L_v| per grid point for one edge, as a recorder series (all
  /// grid points joined, live or not).
  [[nodiscard]] TimeSeries edge_skew_series(const EdgeKey& e) const;

  /// Per-edge summary across every topology edge (skips warmup_samples
  /// leading grid points — convergence transient).
  [[nodiscard]] std::vector<RtEdgeReport> edge_report(int warmup_samples = 0);

  /// Per-edge summary restricted to sample times in [begin, end): the
  /// re-convergence gate primitive. Only grid points where both endpoints
  /// were live contribute.
  [[nodiscard]] std::vector<RtEdgeReport> edge_report_window(Time begin, Time end);

  /// Long-format CSV: one row per (grid point, edge) with the skew sample,
  /// the edge's ε/κ/bound columns and a live flag (1 iff both endpoints
  /// were live at that grid point). Throws on I/O failure.
  void write_skew_csv(const std::string& path, int warmup_samples = 0);

 private:
  struct JoinedSample {
    Time t = 0.0;
    double skew = 0.0;
    bool live = true;
  };
  [[nodiscard]] std::vector<JoinedSample> join_edge(const EdgeKey& e) const;
  [[nodiscard]] RtEdgeReport summarize(const EdgeKey& e, Time begin, Time end,
                                       bool live_only);
  [[nodiscard]] RtTransport& transport_of(NodeId u);

  TimeSource& clock_;
  RtBackend backend_;
  std::unique_ptr<PipeHub> hub_;                          ///< kPipe
  std::vector<std::unique_ptr<UdpTransport>> udp_;        ///< kUdp, per node
  std::vector<std::unique_ptr<TcpTransport>> tcp_;        ///< kTcp, per node
  std::vector<std::unique_ptr<RtNode>> nodes_;
  std::vector<EdgeKey> edges_;
  std::vector<std::vector<RtSample>> samples_;  ///< [node][grid index]
  std::optional<ChaosScheduler> chaos_;
  bool started_ = false;
};

}  // namespace gcs
