// E12 — engineering micro-benchmarks (google-benchmark): simulator event
// throughput, trigger evaluation, legality checking, and whole-scenario
// simulation rates. These calibrate how large the reproduction experiments
// can be pushed on a given machine.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "core/triggers.h"
#include "metrics/legality.h"
#include "metrics/skew.h"
#include "runner/island_runner.h"
#include "runner/scenario.h"
#include "runner/sweep.h"

namespace gcs {
namespace {

void BM_SimulatorScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_at(static_cast<Time>(i % 37), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.fired_count());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorScheduleFire);

/// Measures the SoA tag path + devirtualized channel dispatch in isolation:
/// typed node events through a registered channel, no closures, batch-drained
/// by run(). Compare against BM_SimulatorScheduleFire (closure arm).
void BM_SimulatorScheduleFireTyped(benchmark::State& state) {
  struct Counter final : public EventDispatcher {
    std::uint64_t fired = 0;
    void dispatch(const SimEvent& ev) override { fired += static_cast<std::uint64_t>(ev.node); }
  };
  for (auto _ : state) {
    Simulator sim;
    Counter counter;
    const std::uint8_t ch =
        sim.register_dispatch_channel(&counter, [](void* self, const SimEvent& ev) {
          static_cast<Counter*>(self)->dispatch(ev);
        });
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_event_at(static_cast<Time>(i % 37),
                            SimEvent::node_event(EventKind::kTick, ch, i & 15));
    }
    sim.run();
    benchmark::DoNotOptimize(counter.fired);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorScheduleFireTyped);

/// Far-tier stress: every event is scheduled beyond the L2 window (> 64*64
/// fine epochs = 128 time units with the default bucket width), so the
/// kernel pays the full far-list -> L2 -> L1 -> sorted-run migration chain
/// before each fire. Measures wheel bookkeeping, not dispatch.
void BM_SimulatorScheduleFireFar(benchmark::State& state) {
  struct Counter final : public EventDispatcher {
    std::uint64_t fired = 0;
    void dispatch(const SimEvent&) override { ++fired; }
  };
  for (auto _ : state) {
    Simulator sim;
    Counter counter;
    const std::uint8_t ch =
        sim.register_dispatch_channel(&counter, [](void* self, const SimEvent& ev) {
          static_cast<Counter*>(self)->dispatch(ev);
        });
    for (int i = 0; i < 1024; ++i) {
      // 140..143360 time units out: all far-tier at schedule time.
      sim.schedule_event_at(140.0 * (1 + i % 1024),
                            SimEvent::node_event(EventKind::kTick, ch, 0));
    }
    sim.run();
    benchmark::DoNotOptimize(counter.fired);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorScheduleFireFar);

void BM_TriggerEvaluation(benchmark::State& state) {
  const auto peers = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<LevelPeer> level_peers;
  for (int i = 0; i < peers; ++i) {
    LevelPeer p;
    p.level_limit = kAllLevels;
    p.kappa = 0.75;
    p.delta = 0.1;
    p.eps = 0.05;
    p.tau = 0.25;
    p.has_estimate = true;
    p.est_minus_own = rng.uniform(-8.0, 8.0);
    level_peers.push_back(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_triggers(level_peers, 0.1, 1e-3, 64));
  }
  state.SetItemsProcessed(state.iterations() * peers);
}
BENCHMARK(BM_TriggerEvaluation)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

ScenarioSpec kernel_spec(int n) {
  ScenarioSpec spec;
  spec.n = n;
  spec.topology = ComponentSpec("line");
  spec.edge_params = default_edge_params(0.05, 0.25, 0.5, 0.1);
  spec.aopt.rho = 1e-3;
  spec.aopt.mu = 0.1;
  spec.gtilde_auto = true;
  spec.drift = ComponentSpec("spread");
  spec.estimates = ComponentSpec("uniform");
  return spec;
}

void BM_LegalityCheck(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Scenario s(kernel_spec(n));
  s.start();
  s.run_until(50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_legality(s.engine(), s.spec().aopt.gtilde_static));
  }
}
BENCHMARK(BM_LegalityCheck)->Arg(16)->Arg(64);

void BM_GradientMeasurement(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  Scenario s(kernel_spec(n));
  s.start();
  s.run_until(50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_gradient(s.engine(), 1.0));
  }
}
BENCHMARK(BM_GradientMeasurement)->Arg(16)->Arg(64);

void BM_ScenarioSimulation(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scenario s(kernel_spec(n));
    s.start();
    s.run_until(50.0);
    benchmark::DoNotOptimize(s.sim().fired_count());
  }
  // Report simulated node-time-units per wall second.
  state.SetItemsProcessed(state.iterations() * n * 50);
}
BENCHMARK(BM_ScenarioSimulation)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_BeaconScenarioSimulation(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto spec = kernel_spec(n);
    spec.estimates = ComponentSpec("beacon");
    Scenario s(spec);
    s.start();
    s.run_until(50.0);
    benchmark::DoNotOptimize(s.sim().fired_count());
  }
  state.SetItemsProcessed(state.iterations() * n * 50);
}
BENCHMARK(BM_BeaconScenarioSimulation)->Arg(16)->Arg(64);

/// High fan-out beacon traffic (complete graph, degree n-1): the regime the
/// message arena is built for — ONE payload construction per broadcast is
/// shared by every in-flight delivery instead of being copied per edge.
/// Compare against BM_ScenarioSimulation (line, degree 2), where payload
/// sharing cannot pay for its bookkeeping.
void BM_DenseScenarioSimulation(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto spec = kernel_spec(n);
    spec.topology = ComponentSpec("complete");
    Scenario s(spec);
    s.start();
    s.run_until(50.0);
    benchmark::DoNotOptimize(s.sim().fired_count());
  }
  state.SetItemsProcessed(state.iterations() * n * 50);
}
BENCHMARK(BM_DenseScenarioSimulation)->Arg(32)->Arg(64);

/// Instant-coalescing isolation pair: the same line scenario with the
/// engine's per-(node, instant) evaluation ON (the default) vs the legacy
/// per-event evaluation. The delta is what coalescing plus dirty-gated
/// delivery scans buy on this workload; BM_ScenarioSimulation tracks the
/// default path over time.
void BM_InstantCoalescedSimulation(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto spec = kernel_spec(n);
    spec.engine.coalesce_instants = true;
    Scenario s(spec);
    s.start();
    s.run_until(50.0);
    benchmark::DoNotOptimize(s.sim().fired_count());
  }
  state.SetItemsProcessed(state.iterations() * n * 50);
}
BENCHMARK(BM_InstantCoalescedSimulation)->Arg(256);

void BM_InstantCoalescedPerEventSimulation(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto spec = kernel_spec(n);
    spec.engine.coalesce_instants = false;  // legacy: scan after every event
    Scenario s(spec);
    s.start();
    s.run_until(50.0);
    benchmark::DoNotOptimize(s.sim().fired_count());
  }
  state.SetItemsProcessed(state.iterations() * n * 50);
}
BENCHMARK(BM_InstantCoalescedPerEventSimulation)->Arg(256);

/// Shared-instant stress for the coalesced drain: zero minimum delay with
/// pinned-minimum draws lands every beacon reception on its send instant,
/// so each broadcast forms one multi-event instant group.
void BM_InstantCoalescedSharedInstants(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto spec = kernel_spec(n);
    spec.edge_params = default_edge_params(0.05, 0.25, 0.5, 0.0);
    spec.delays = DelayMode::kMin;
    Scenario s(spec);
    s.start();
    s.run_until(50.0);
    benchmark::DoNotOptimize(s.sim().fired_count());
  }
  state.SetItemsProcessed(state.iterations() * n * 50);
}
BENCHMARK(BM_InstantCoalescedSharedInstants)->Arg(256);

/// ONE scenario through the island-parallel engine at 1/2/8 requested
/// workers (the islands arg), on an island-decomposable spec shape (beacon
/// estimates, per-edge delay streams). grid_4096 and line_1024 partition
/// cleanly and measure the scaling curve; on a 1-core host the committed
/// baselines instead pin the costs a multi-core run must amortize —
/// line_1024 (long horizon) isolates window/barrier/merge overhead, while
/// grid_4096 (short horizon, huge n) exposes the O(islands*n) full-replica
/// construction term (see ARCHITECTURE "Island-parallel execution").
/// complete_64 plans a serial fallback at >= 2 islands (the bipartition cut
/// exceeds the budget), so its 2/8-island rows pin the fallback's unchanged
/// serial rate.
void BM_IslandScenarioSimulation(benchmark::State& state, const char* topology,
                                 int n, Time horizon) {
  const int islands = static_cast<int>(state.range(0));
  ScenarioSpec base = kernel_spec(n);
  base.topology = ComponentSpec::parse(topology);
  base.estimates = ComponentSpec("beacon");
  base.delays = DelayMode::kEdgeUniform;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    const IslandExecutionPlan plan = plan_islands(base, islands);
    if (plan.islands_enabled) {
      IslandRunner runner(base, plan);
      runner.run(horizon);
      for (int i = 0; i < runner.shards(); ++i) {
        fired += runner.shard(i).sim().fired_count();
      }
    } else {
      Scenario s(base);
      s.start();
      s.run_until(horizon);
      fired += s.sim().fired_count();
    }
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * n * static_cast<std::int64_t>(horizon));
}
BENCHMARK_CAPTURE(BM_IslandScenarioSimulation, grid_4096, "grid:rows=64,cols=64",
                  4096, 5.0)
    ->ArgName("islands")->Arg(1)->Arg(2)->Arg(8)->UseRealTime();
BENCHMARK_CAPTURE(BM_IslandScenarioSimulation, line_1024, "line", 1024, 20.0)
    ->ArgName("islands")->Arg(1)->Arg(2)->Arg(8)->UseRealTime();
BENCHMARK_CAPTURE(BM_IslandScenarioSimulation, complete_64, "complete", 64, 20.0)
    ->ArgName("islands")->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

/// Sweep throughput through the sharded work-stealing SweepRunner: a grid
/// of independent line scenarios, reported as runs/second. The thread-count
/// arg exposes the scaling curve (on a multi-core host, near-linear to the
/// core count; the committed baselines from a 1-core container show the
/// sharding overhead is negligible when scaling is impossible).
void BM_SweepThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto base = kernel_spec(24);
  Sweep sweep(base);
  sweep.seeds({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  SweepOptions options;
  options.threads = threads;
  options.horizon = 25.0;
  options.check_legality = false;
  const SweepRunner runner(options);
  for (auto _ : state) {
    const auto results = runner.run(sweep);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SweepThroughput)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace gcs

// BENCHMARK_MAIN with explicit-only JSON artifacts. A plain run writes no
// file (it used to silently overwrite BENCH_kernel.json in the CWD);
// --benchmark_out=FILE is passed through untouched, and the convenience flag
//   --baseline_out[=NAME]
// records the run under the repo's committed baseline directory
// (bench/baselines/NAME, default BENCH_kernel.json — google-benchmark's
// default out format is already json). Compare runs with benchmark's
// tools/compare.py.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> rewritten;  // owns rewritten flags (argv stability)
  rewritten.reserve(static_cast<std::size_t>(argc));
  for (char* arg : std::vector<char*>(argv, argv + argc)) {
    const std::string_view view(arg);
    if (view == "--baseline_out" || view.starts_with("--baseline_out=")) {
      std::string name = "BENCH_kernel.json";
      if (const auto eq = view.find('='); eq != std::string_view::npos) {
        name = std::string(view.substr(eq + 1));
      }
      rewritten.push_back("--benchmark_out=" GCS_SOURCE_DIR "/bench/baselines/" +
                          name);
      args.push_back(rewritten.back().data());
    } else {
      args.push_back(arg);
    }
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
