#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <variant>
#include <vector>

#include "graph/dynamic_graph.h"
#include "net/arena.h"
#include "net/transport.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace gcs {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel fails
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesTime) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(3.0);
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // idle time still advances
  sim.run_until(10.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(Simulator, EventsScheduledDuringEventsRun) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_after(0.5, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(Simulator, ZeroDelaySelfScheduleAtSameTimeRunsAfterPeers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_at(1.0, [&] { order.push_back(3); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
}

TEST(Simulator, ToleratesTinyNegativeDelay) {
  Simulator sim;
  sim.schedule_at(1.0, [&] {
    // Float round-off in rate conversions can produce "now - 1e-12".
    EXPECT_NO_THROW(sim.schedule_at(sim.now() - 1e-12, [] {}));
  });
  sim.run();
}

TEST(Simulator, CountsFiredAndPending) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.run();
  EXPECT_EQ(sim.fired_count(), 2u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, ManyCancellationsStayConsistent) {
  Simulator sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_at(1.0 + i * 0.001, [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  sim.run();
  EXPECT_EQ(fired, 500);
}

TEST(Simulator, RescheduleMovesFireTimeAndResequences) {
  Simulator sim;
  std::vector<int> order;
  const EventId a = sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  // Moving `a` onto B's time re-sequences it: it now fires after B (FIFO
  // among equal times, as if freshly scheduled).
  EXPECT_TRUE(sim.reschedule(a, 2.0));
  EXPECT_TRUE(sim.pending(a));  // handle survives a reschedule
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_FALSE(sim.reschedule(a, 3.0));  // already fired
}

TEST(Simulator, RescheduleEarlierFiresEarlier) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  const EventId a = sim.schedule_at(5.0, [&] { order.push_back(5); });
  EXPECT_TRUE(sim.reschedule(a, 1.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{5, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, GenerationTagInvalidatesStaleHandlesAfterSlotReuse) {
  Simulator sim;
  bool old_fired = false;
  const EventId stale = sim.schedule_at(1.0, [&] { old_fired = true; });
  EXPECT_TRUE(sim.cancel(stale));
  // The freed slot is reused by the next schedule; the stale handle must
  // not alias the new event.
  bool new_fired = false;
  const EventId fresh = sim.schedule_at(1.0, [&] { new_fired = true; });
  EXPECT_NE(stale.value, fresh.value);
  EXPECT_FALSE(sim.pending(stale));
  EXPECT_TRUE(sim.pending(fresh));
  EXPECT_FALSE(sim.cancel(stale));       // stale handle: no-op
  EXPECT_FALSE(sim.reschedule(stale, 2.0));
  sim.run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
  // Handles of fired events are stale too, across further slot reuse.
  EXPECT_FALSE(sim.pending(fresh));
  sim.schedule_at(sim.now() + 1.0, [] {});
  EXPECT_FALSE(sim.cancel(fresh));
  sim.run();
}

// ---------------------------------------------------------------------------
// Timing-wheel-specific stress cases. Default geometry: bucket width 1/32,
// 64 fine buckets per coarse block, 64 coarse blocks — so one L1 rotation
// spans 2 time units and the L2 window ends 128 time units out; anything
// beyond that lives in the far list until the window slides.

TEST(SimulatorWheel, EventsBeyondOneWheelRotationFireInOrder) {
  Simulator sim;
  std::vector<int> order;
  // One event per tier: current epoch, L1, L2, far — scheduled shuffled.
  sim.schedule_at(300.0, [&] { order.push_back(4); });  // far (> 128)
  sim.schedule_at(0.01, [&] { order.push_back(1); });   // current epoch
  sim.schedule_at(50.0, [&] { order.push_back(3); });   // L2 window
  sim.schedule_at(1.0, [&] { order.push_back(2); });    // L1 block
  EXPECT_EQ(sim.pending_count(), 4u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sim.now(), 300.0);
}

TEST(SimulatorWheel, ManyRotationsWithRecurringEvents) {
  // A self-rescheduling chain crossing hundreds of L1 rotations and several
  // L2 windows, interleaved with far-future one-shots.
  Simulator sim;
  int chain = 0;
  std::function<void()> tick = [&] {
    ++chain;
    if (chain < 1000) sim.schedule_after(0.7, tick);
  };
  sim.schedule_after(0.7, tick);
  std::vector<double> far_fired;
  for (int i = 1; i <= 5; ++i) {
    const double at = 130.0 * i;  // each beyond the L2 window at schedule time
    sim.schedule_at(at, [&far_fired, at] { far_fired.push_back(at); });
  }
  sim.run();
  EXPECT_EQ(chain, 1000);
  EXPECT_EQ(far_fired, (std::vector<double>{130.0, 260.0, 390.0, 520.0, 650.0}));
}

TEST(SimulatorWheel, FifoTiesWithinOneBucket) {
  // Many events at the exact same far-future time land in one wheel bucket;
  // they must fire in scheduling order after promotion (the sorted run
  // orders by the packed (time, seq) key, and seq is the schedule order).
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(77.25, [&order, i] { order.push_back(i); });
  }
  // Same time, scheduled later, from a different tier history: rescheduled
  // from near to far — must still fire last (reschedule re-sequences).
  const EventId moved = sim.schedule_at(0.5, [&order] { order.push_back(100); });
  ASSERT_TRUE(sim.reschedule(moved, 77.25));
  sim.run();
  ASSERT_EQ(order.size(), 101u);
  for (int i = 0; i <= 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorWheel, CancelAndRescheduleAcrossPromotionBoundary) {
  Simulator sim;
  std::vector<int> order;
  // Far event pulled into the near horizon, near event pushed beyond the
  // wheel window, and a bucket event cancelled after its neighbors fired.
  const EventId far_in = sim.schedule_at(200.0, [&] { order.push_back(1); });
  const EventId near_out = sim.schedule_at(0.5, [&] { order.push_back(2); });
  const EventId doomed = sim.schedule_at(10.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(4); });
  // Pins the wheel: when run_until drains past 5.0 the lazy promotion stops
  // at this event's bucket, so the 10.0 bucket is provably still unpromoted
  // when the cancel below runs (exercising the wheel-bucket removal path).
  sim.schedule_at(6.0, [&] { order.push_back(5); });
  EXPECT_TRUE(sim.reschedule(far_in, 1.0));    // far -> L1
  EXPECT_TRUE(sim.reschedule(near_out, 400.0));  // near -> far
  sim.run_until(5.0);  // fires far_in (at 1.0); 10.0 bucket not yet promoted
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_TRUE(sim.cancel(doomed));  // cancel inside an unpromoted bucket
  EXPECT_FALSE(sim.pending(doomed));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5, 4, 2}));
}

TEST(SimulatorWheel, CancelWithinActiveSortedRun) {
  // Cancel an event whose bucket was already promoted (it sits in the
  // sorted run): the remaining run entries keep firing in order and their
  // handles stay valid.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.schedule_at(5.0 + 0.001 * i, [&order, i] { order.push_back(i); }));
  }
  // Fire the first two; the run for that bucket is now active.
  sim.step();
  sim.step();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_TRUE(sim.cancel(ids[3]));      // erase from the middle of the run
  EXPECT_TRUE(sim.reschedule(ids[5], 6.5));  // move out of the run
  EXPECT_TRUE(sim.cancel(ids[7]));      // erase the run's tail
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 4, 6, 5}));
}

TEST(SimulatorWheel, IdleGapsPromoteLazily) {
  // Long idle stretches between events: run_until across empty windows must
  // advance time without losing far events, and pending bookkeeping must
  // stay consistent.
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1000.0, [&] { fired.push_back(1000.0); });
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.run_until(500.0);
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_EQ(sim.pending_count(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 500.0);
  // Scheduling relative to the advanced now still interleaves correctly
  // with the parked far event.
  sim.schedule_at(600.0, [&] { fired.push_back(600.0); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 600.0, 1000.0}));
}

// Randomized schedule/cancel/reschedule interleavings, checked against a
// naive reference queue implementing the documented ordering contract:
// events fire in (time, sequence) order, where every schedule AND every
// reschedule draws the next sequence number.
TEST(Simulator, RandomizedOpsMatchNaiveReferenceQueue) {
  struct RefEvent {
    double time = 0.0;
    std::uint64_t seq = 0;
    int tag = 0;
  };
  Rng rng(0xDECADE);
  Simulator sim;
  std::vector<int> fired;                      // tags in kernel fire order
  std::vector<RefEvent> ref;                   // naive pending list
  std::vector<std::pair<EventId, int>> live;   // kernel handle -> tag
  std::uint64_t ref_seq = 0;
  int next_tag = 0;

  // Mostly near-horizon offsets, with a fat tail reaching through the L1
  // block, the L2 window and into the far list (window ends 128 out), so
  // cancels/reschedules hit every wheel tier.
  const auto draw_offset = [&] {
    return rng.chance(0.25) ? rng.uniform(0.0, 400.0) : rng.uniform(0.0, 10.0);
  };

  const auto schedule = [&](double at) {
    const int tag = next_tag++;
    live.emplace_back(sim.schedule_at(at, [&fired, tag] { fired.push_back(tag); }),
                      tag);
    ref.push_back(RefEvent{at, ++ref_seq, tag});
  };
  const auto ref_erase = [&](int tag) {
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (ref[i].tag == tag) {
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    FAIL() << "tag missing from reference";
  };

  for (int round = 0; round < 4000; ++round) {
    const double roll = rng.uniform01();
    if (roll < 0.45 || live.empty()) {
      schedule(sim.now() + draw_offset());
    } else if (roll < 0.65) {
      const std::size_t pick = static_cast<std::size_t>(rng.below(live.size()));
      ASSERT_TRUE(sim.cancel(live[pick].first));
      ref_erase(live[pick].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 0.85) {
      const std::size_t pick = static_cast<std::size_t>(rng.below(live.size()));
      const double at = sim.now() + draw_offset();
      ASSERT_TRUE(sim.reschedule(live[pick].first, at));
      for (RefEvent& e : ref) {
        if (e.tag == live[pick].second) {
          e.time = at;
          e.seq = ++ref_seq;  // reschedule re-sequences, like a fresh schedule
        }
      }
    } else {
      // Fire the next event; drop it from both views.
      if (sim.step()) {
        ASSERT_FALSE(fired.empty());
        const int tag = fired.back();
        ref_erase(tag);
        std::erase_if(live, [tag](const auto& kv) { return kv.second == tag; });
      }
    }
    ASSERT_EQ(sim.pending_count(), ref.size()) << "round " << round;
  }

  // Drain: the kernel must fire the remaining events in exactly the
  // reference order.
  std::stable_sort(ref.begin(), ref.end(), [](const RefEvent& a, const RefEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  const std::size_t already_fired = fired.size();
  sim.run();
  ASSERT_EQ(fired.size(), already_fired + ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(fired[already_fired + i], ref[i].tag) << "drain position " << i;
  }
  EXPECT_EQ(sim.pending_count(), 0u);
}


// ---------------------------------------------------------------------------
// Message arena (zero-copy delivery payloads) and dispatch channels.

TEST(MessageArena, LastReleaseReclaimsFanoutSlot) {
  MessageArena arena;
  const auto ref = arena.put(Beacon{1.0, 2.0, 3.0}, 3);  // fan-out of three
  EXPECT_EQ(arena.live(), 1u);
  arena.release(ref);
  arena.release(ref);
  ASSERT_TRUE(arena.valid(ref));  // one reference still outstanding
  const auto* b = std::get_if<Beacon>(&arena.get(ref));
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->logical, 1.0);
  arena.release(ref);  // the last delivery frees the slot
  EXPECT_FALSE(arena.valid(ref));
  EXPECT_EQ(arena.live(), 0u);
}

TEST(MessageArena, GenerationTagGuardsSlotReuse) {
  MessageArena arena;
  const auto ref1 = arena.put(Beacon{1.0, 0.0, 0.0}, 1);
  arena.release(ref1);
  const auto ref2 = arena.put(InsertEdgeMsg{7.0, 9.0}, 1);
  // The freelist hands back the same slot index, but with a fresh
  // generation: the stale ref must not alias the new payload.
  EXPECT_EQ(static_cast<std::uint32_t>(ref1), static_cast<std::uint32_t>(ref2));
  EXPECT_NE(ref1, ref2);
  EXPECT_FALSE(arena.valid(ref1));
  ASSERT_TRUE(arena.valid(ref2));
  EXPECT_THROW(arena.get(ref1), std::runtime_error);
  EXPECT_NE(std::get_if<InsertEdgeMsg>(&arena.get(ref2)), nullptr);
}

TEST(MessageArena, TransportFanoutReclaimsAfterLastInFlightDelivery) {
  // Degree 3: above the inline-payload threshold, so the arena path runs.
  Simulator sim;
  DynamicGraph graph{sim, 4, 5};
  graph.set_detection_delay_mode(DetectionDelayMode::kZero);
  EdgeParams p;
  p.eps = 0.1;
  p.tau = 0.2;
  p.msg_delay_min = 0.1;
  p.msg_delay_max = 0.5;
  graph.create_edge_instant(EdgeKey(0, 1), p);
  graph.create_edge_instant(EdgeKey(0, 2), p);
  graph.create_edge_instant(EdgeKey(0, 3), p);
  Transport transport{sim, graph, 9};
  int delivered = 0;
  transport.set_handler([&](const Delivery&) { ++delivered; });
  transport.set_directional_delay(0, 1, 0.1);
  transport.set_directional_delay(0, 2, 0.4);
  transport.set_directional_delay(0, 3, 0.4);
  transport.send_fanout(0, graph.view_neighbors(0), Beacon{5.0, 5.0, 0.0});
  EXPECT_EQ(transport.arena().live(), 1u);  // ONE payload for all deliveries
  sim.run_until(0.2);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(transport.arena().live(), 1u);  // later deliveries still hold it
  sim.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(transport.arena().live(), 0u);  // last delivery reclaimed the slot
}

TEST(MessageArena, SmallFanoutBypassesArenaWithInlinePayload) {
  // Degree <= 2 (and all send()/send_via() unicasts): the payload rides in
  // the kernel's inline blob slot; the arena must stay untouched, and the
  // delivered payload must be bit-identical to the sent one.
  Simulator sim;
  DynamicGraph graph{sim, 3, 5};
  graph.set_detection_delay_mode(DetectionDelayMode::kZero);
  EdgeParams p;
  p.eps = 0.1;
  p.tau = 0.2;
  p.msg_delay_min = 0.1;
  p.msg_delay_max = 0.5;
  graph.create_edge_instant(EdgeKey(0, 1), p);
  graph.create_edge_instant(EdgeKey(0, 2), p);
  Transport transport{sim, graph, 9};
  std::vector<Beacon> seen;
  transport.set_handler([&](const Delivery& d) {
    seen.push_back(std::get<Beacon>(*d.payload));
  });
  transport.send_fanout(0, graph.view_neighbors(0), Beacon{5.0, 7.0, -1.0});
  EXPECT_EQ(transport.arena().live(), 0u);  // inline path: no arena slot
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  for (const Beacon& b : seen) {
    EXPECT_EQ(b.logical, 5.0);
    EXPECT_EQ(b.max_estimate, 7.0);
    EXPECT_EQ(b.min_estimate, -1.0);
  }
  EXPECT_EQ(transport.arena().live(), 0u);
}

TEST(Simulator, ClosureAndChannelEventsCoexist) {
  struct Recorder final : public EventDispatcher {
    std::vector<SimEvent> fired;
    void dispatch(const SimEvent& ev) override { fired.push_back(ev); }
  };
  Simulator sim;
  Recorder channel_rec;
  Recorder virtual_rec;
  const std::uint8_t ch =
      sim.register_dispatch_channel(&channel_rec, [](void* self, const SimEvent& ev) {
        static_cast<Recorder*>(self)->dispatch(ev);
      });
  std::vector<int> closure_hits;
  sim.schedule_event_at(1.0, SimEvent::node_event(EventKind::kTick, ch, 7));
  sim.schedule_at(2.0, [&] { closure_hits.push_back(2); });
  sim.schedule_event_at(3.0, SimEvent::delivery(ch, 4, 5, 0.5, 42));
  // Virtual escape hatch: the dispatcher rides in the kernel's cold side
  // array, not the hot record.
  sim.schedule_event_at(4.0, SimEvent::node_event(EventKind::kBeacon, kNoChannel, 9),
                        &virtual_rec);
  sim.run();
  ASSERT_EQ(channel_rec.fired.size(), 2u);
  EXPECT_EQ(channel_rec.fired[0].kind, EventKind::kTick);
  EXPECT_EQ(channel_rec.fired[0].node, 7);
  EXPECT_EQ(channel_rec.fired[1].kind, EventKind::kDelivery);
  EXPECT_EQ(channel_rec.fired[1].from, 4);
  EXPECT_EQ(channel_rec.fired[1].node, 5);
  EXPECT_DOUBLE_EQ(channel_rec.fired[1].sent_at, 0.5);
  EXPECT_EQ(channel_rec.fired[1].payload_ref, 42u);
  EXPECT_EQ(closure_hits, std::vector<int>{2});
  ASSERT_EQ(virtual_rec.fired.size(), 1u);
  EXPECT_EQ(virtual_rec.fired[0].kind, EventKind::kBeacon);
  EXPECT_EQ(virtual_rec.fired[0].node, 9);
}

// Randomized arena-vs-copying equivalence: every delivered payload must be
// byte-equal to the copy its sender took at send time, no matter how arena
// slots were reused in between (interleaved sends, fan-outs, and partially
// drained flights). Closure events run alongside to cover coexistence on
// the same kernel.
TEST(Transport, ArenaVsCopyingEquivalenceRandomized) {
  constexpr int kN = 6;
  Simulator sim;
  DynamicGraph graph{sim, kN, 3};
  graph.set_detection_delay_mode(DetectionDelayMode::kZero);
  EdgeParams p;
  p.eps = 0.1;
  p.tau = 0.2;
  p.msg_delay_min = 0.05;
  p.msg_delay_max = 0.6;
  for (NodeId u = 0; u < kN; ++u) {
    for (NodeId v = u + 1; v < kN; ++v) graph.create_edge_instant(EdgeKey(u, v), p);
  }
  Transport transport{sim, graph, 77};
  std::vector<Beacon> sent_copies;  // the copying reference model
  std::uint64_t checked = 0;
  transport.set_handler([&](const Delivery& d) {
    const auto* b = std::get_if<Beacon>(d.payload);
    ASSERT_NE(b, nullptr);
    const auto serial = static_cast<std::size_t>(b->logical);
    ASSERT_LT(serial, sent_copies.size());
    EXPECT_EQ(b->logical, sent_copies[serial].logical);
    EXPECT_EQ(b->max_estimate, sent_copies[serial].max_estimate);
    EXPECT_EQ(b->min_estimate, sent_copies[serial].min_estimate);
    ++checked;
  });
  Rng rng(123);
  std::uint64_t closure_fired = 0;
  for (int round = 0; round < 300; ++round) {
    const NodeId u = static_cast<NodeId>(rng.below(kN));
    const Beacon b{static_cast<double>(sent_copies.size()),
                   rng.uniform(0.0, 100.0), rng.uniform(-50.0, 0.0)};
    if (rng.uniform01() < 0.5) {
      transport.send_fanout(u, graph.view_neighbors(u), b);
    } else {
      const NodeId v = static_cast<NodeId>(
          (u + 1 + static_cast<NodeId>(rng.below(kN - 1))) % kN);
      ASSERT_TRUE(transport.send(u, v, b));
    }
    sent_copies.push_back(b);
    sim.schedule_after(rng.uniform(0.0, 0.2), [&] { ++closure_fired; });
    sim.run_until(sim.now() + rng.uniform(0.0, 0.3));
  }
  sim.run();
  EXPECT_EQ(checked, transport.delivered_count());
  EXPECT_EQ(transport.dropped_count(), 0u);
  EXPECT_GT(checked, 300u);
  EXPECT_EQ(closure_fired, 300u);
  EXPECT_EQ(transport.arena().live(), 0u);
}

}  // namespace
}  // namespace gcs
