#include "util/stats.h"

#include <cmath>
#include <stdexcept>

namespace gcs {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q outside [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_linear: need >= 2 equal-length samples");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_log(const std::vector<double>& x, const std::vector<double>& y) {
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0) throw std::invalid_argument("fit_log: x must be positive");
    lx[i] = std::log(x[i]);
  }
  return fit_linear(lx, y);
}

}  // namespace gcs
