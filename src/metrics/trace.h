// Execution tracing: records discrete protocol transitions (mode switches,
// clock jumps, max-estimate updates) and periodic clock snapshots, and
// exports them as CSV for external plotting or debugging.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"
#include "metrics/recorder.h"

namespace gcs {

class ExecutionTrace final : public EngineObserver {
 public:
  enum class EventKind { kModeChange, kLogicalJump, kMaxRaised, kSnapshot };

  struct Event {
    Time t = 0.0;
    EventKind kind = EventKind::kSnapshot;
    NodeId node = kNoNode;
    double a = 0.0;  ///< kind-dependent (old mult / old L / M value / L)
    double b = 0.0;  ///< kind-dependent (new mult / new L / 0 / M)
  };

  /// Attaches to the engine and (optionally) starts periodic snapshots of
  /// every node's (L, M). Pass snapshot_period <= 0 to disable snapshots.
  ExecutionTrace(Engine& engine, Duration snapshot_period);
  ~ExecutionTrace() override;

  ExecutionTrace(const ExecutionTrace&) = delete;
  ExecutionTrace& operator=(const ExecutionTrace&) = delete;

  // EngineObserver:
  void on_mode_change(Time t, NodeId u, double old_mult, double new_mult) override;
  void on_logical_jump(Time t, NodeId u, ClockValue from, ClockValue to) override;
  void on_max_estimate_raised(Time t, NodeId u, ClockValue value) override;

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t count(EventKind kind) const;

  /// Total mode switches per node.
  [[nodiscard]] std::vector<int> mode_switches_per_node() const;

  /// Serialize all events to CSV (header: t,kind,node,a,b).
  void write_csv(const std::string& path) const;
  [[nodiscard]] std::string csv() const;

 private:
  void snapshot();

  Engine& engine_;
  std::vector<Event> events_;
  std::unique_ptr<PeriodicSampler> sampler_;
};

}  // namespace gcs
