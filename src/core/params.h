// Algorithm parameters and the paper's constraints on them (§4.3.1).
#pragma once

#include <string>
#include <vector>

#include "graph/edge_params.h"
#include "util/common.h"

namespace gcs {

/// How a newly discovered edge is brought into the neighbor-set hierarchy.
enum class InsertionPolicy {
  kStagedStatic,   ///< the paper's AOPT: level-by-level, I from eq. (10) with static G̃
  kStagedDynamic,  ///< §7: level-by-level, I from Lemma 7.1 (power-of-two grid) with G̃_u(t)
  kImmediate,      ///< naive ablation: edge joins all levels at discovery (violates theory)
  kWeightDecay,    ///< [16]-style ablation: all levels at once, κ decays exponentially to κ_e
};

[[nodiscard]] const char* to_string(InsertionPolicy policy);

struct ValidationResult {
  std::vector<std::string> errors;    ///< model violated; do not run
  std::vector<std::string> warnings;  ///< outside the regime of the §5 constants
  [[nodiscard]] bool ok() const { return errors.empty(); }
  [[nodiscard]] std::string str() const;
};

/// Constants derived for one edge from its EdgeParams (eq. 9 and Def. 4.6).
struct EdgeConstants {
  double kappa = 0.0;  ///< κ_e > 4(ε_e + µτ_e)
  double delta = 0.0;  ///< δ_e in (0, κ_e/2 − 2ε_e − 2µτ_e)
};

struct AlgoParams {
  // ----- model constants -----
  double rho = 1e-3;   ///< hardware drift bound ρ ∈ (0,1)
  double mu = 0.05;    ///< fast-mode boost; requires 2ρ/(1−ρ) < µ ≤ 1/10 (eq. 7)
  double iota = 1e-4;  ///< ι > 0 separating the max-estimate triggers (Def. 4.4)

  // ----- κ/δ derivation (eq. 9) -----
  double kappa_slack = 0.25;  ///< κ_e = 4(ε_e+µτ_e)(1+slack); slack > 0
  double delta_frac = 0.5;    ///< δ_e = frac · (κ_e/2 − 2ε_e − 2µτ_e); frac ∈ (0,1)

  // ----- global-skew estimates -----
  double gtilde_static = 10.0;  ///< G̃ for the static-estimate analysis (§4–§5)

  // ----- insertion -----
  InsertionPolicy insertion = InsertionPolicy::kStagedStatic;
  double B = 64.0;  ///< dynamic-I constant (eq. 12 demands B >= 320·2⁷/(1−ρ)²;
                    ///< that makes experiments astronomically long, so the
                    ///< default is a practical value — validate() warns)

  /// Maximum trigger levels scanned when the data-driven bound is slack.
  int level_cap = 64;

  // ----- derived quantities -----

  /// σ = (1−ρ)µ/(2ρ), the base of the skew logarithm (eq. 8).
  [[nodiscard]] double sigma() const { return (1.0 - rho) * mu / (2.0 * rho); }

  /// Slowest and fastest possible logical rates: α = 1−ρ, β = (1+ρ)(1+µ).
  [[nodiscard]] double alpha() const { return 1.0 - rho; }
  [[nodiscard]] double beta() const { return (1.0 + rho) * (1.0 + mu); }

  /// Insertion duration for the static estimate, eq. (10).
  [[nodiscard]] double insertion_duration_static(double gtilde) const;

  /// Insertion duration for dynamic estimates, per the proof of Lemma 7.1:
  /// I_e = B · 2^{3+⌈log₂(G̃/µ + T_e + τ_e)⌉}. (See DESIGN.md on the eq. (11)
  /// vs Lemma 7.1 discrepancy.)
  [[nodiscard]] double insertion_duration_dynamic(double gtilde, double msg_delay_max,
                                                  double tau) const;

  /// Handshake wait ∆ for an edge (Listing 1 line 1).
  [[nodiscard]] double handshake_delta(const EdgeParams& e) const;

  /// κ_e and δ_e for an edge (eq. 9; Def. 4.6 constraint).
  [[nodiscard]] EdgeConstants edge_constants(const EdgeParams& e) const;

  /// Check all parameter constraints from §4.3.1 (and eq. 12 for dynamic I).
  [[nodiscard]] ValidationResult validate() const;

  /// Validate the derived per-edge constants for a concrete edge.
  [[nodiscard]] ValidationResult validate_edge(const EdgeParams& e) const;
};

}  // namespace gcs
