// The dynamic estimate graph (paper §3.1).
//
// The adversary creates/destroys undirected edges; each endpoint's *view* of
// the edge flips after a detection delay in [0, tau_e], which realizes the
// paper's asymmetric directed edge sets E(t): (u,v) in E(t) iff u's view of
// the edge is "present". The model constraint — views of the same edge agree
// up to tau_e — holds by construction.
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/edge_params.h"
#include "sim/simulator.h"
#include "util/common.h"
#include "util/rng.h"

namespace gcs {

/// One entry of a node's current neighbor view N_u(t). Entries are kept
/// sorted by peer id, which makes every neighbor iteration (beacon fan-out,
/// metrics) deterministic across standard libraries, and carry the edge
/// params so hot paths (transport, estimate layer) need no hash lookup.
struct NeighborView {
  NodeId id = kNoNode;               ///< the peer
  Time since = -kTimeInf;            ///< when this view became present
  const EdgeParams* params = nullptr;  ///< stable: records are node-based
};

/// How endpoint detection delays are drawn on each adversary transition.
enum class DetectionDelayMode {
  kZero,     ///< views flip instantly (symmetric model)
  kUniform,  ///< uniform in [0, tau_e]
  kMax,      ///< one endpoint instant, the other after tau_e (worst asymmetry)
};

class DynamicGraph {
 public:
  /// Notified on every change of a node's view (u's view of peer).
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void on_edge_discovered(NodeId u, NodeId peer) = 0;
    virtual void on_edge_lost(NodeId u, NodeId peer) = 0;
  };

  DynamicGraph(Simulator& sim, int n, std::uint64_t seed = 17);

  void set_listener(Listener* listener) { listener_ = listener; }
  void set_detection_delay_mode(DetectionDelayMode mode) { delay_mode_ = mode; }

  [[nodiscard]] int size() const { return n_; }

  // ------------------------------------------------------- adversary API

  /// Make the edge exist; endpoint views flip within their detection delay.
  /// Re-creating a present edge is a no-op. Params are fixed at first
  /// creation and must not change across reinsertions (checked).
  void create_edge(const EdgeKey& e, const EdgeParams& params);

  /// Make the edge exist with both views updated immediately (used for the
  /// t=0 initial topology, which the paper assumes is mutually known).
  void create_edge_instant(const EdgeKey& e, const EdgeParams& params);

  /// Destroy the edge; endpoint views flip within their detection delay.
  void destroy_edge(const EdgeKey& e);

  /// Destroy the edge with both views updated immediately. Used by the
  /// runtime failure detector (rt/liveness.h), whose suspect/evict timeout
  /// already plays the role of the detection delay — by the time it fires,
  /// tau has long passed, so the flip must not be delayed (or randomized)
  /// again. The record (and its params) persists for reinsertion.
  void destroy_edge_instant(const EdgeKey& e);

  // ------------------------------------------------------------- queries

  /// Does u currently see peer as a neighbor (peer in N_u(t))?
  [[nodiscard]] bool view_present(NodeId u, NodeId peer) const;

  /// Time at which u's current view of peer became present (only meaningful
  /// while view_present).
  [[nodiscard]] Time view_since(NodeId u, NodeId peer) const;

  /// Neighbors in u's current view, sorted by peer id.
  [[nodiscard]] const std::vector<NeighborView>& view_neighbors(NodeId u) const;

  /// Fast path for the hot lookups: u's view entry for `peer`, or nullptr if
  /// peer is not in N_u(t). The pointer is valid until u's view next changes.
  [[nodiscard]] const NeighborView* find_neighbor(NodeId u, NodeId peer) const;

  /// True iff both endpoints currently see the edge ({u,v} in E(t)).
  [[nodiscard]] bool both_views_present(const EdgeKey& e) const;

  /// Time since which both views have been continuously present
  /// (-inf if not both present).
  [[nodiscard]] Time both_views_since(const EdgeKey& e) const;

  /// Adversary-level (target) presence.
  [[nodiscard]] bool adversary_present(const EdgeKey& e) const;

  /// All edges the adversary currently keeps alive.
  [[nodiscard]] std::vector<EdgeKey> adversary_edges() const;

  /// All edges ever created (whose params are known).
  [[nodiscard]] std::vector<EdgeKey> known_edges() const;

  /// Params of an edge ever created; throws if unknown.
  [[nodiscard]] const EdgeParams& params(const EdgeKey& e) const;

  /// Is the adversary-present graph connected (trivially true for n<=1)?
  [[nodiscard]] bool adversary_connected() const;

  /// Would it stay connected after removing e?
  [[nodiscard]] bool connected_without(const EdgeKey& e) const;

 private:
  struct DirView {
    bool present = false;
    Time since = -kTimeInf;
  };
  struct Record {
    EdgeParams params;
    bool target = false;        // adversary-level presence
    std::uint64_t gen = 0;      // invalidates in-flight flips
    DirView view_a;             // view of endpoint e.a
    DirView view_b;             // view of endpoint e.b
  };

  [[nodiscard]] Duration sample_detection_delay(const EdgeParams& p);
  void schedule_flip(const EdgeKey& e, NodeId endpoint, std::uint64_t gen,
                     Duration delay);
  void apply_view(const EdgeKey& e, NodeId endpoint, std::uint64_t gen);
  void set_view(const EdgeKey& e, Record& rec, NodeId endpoint, bool present);
  [[nodiscard]] bool connected_filtered(const EdgeKey* skip) const;

  Simulator& sim_;
  int n_;
  Rng rng_;
  DetectionDelayMode delay_mode_ = DetectionDelayMode::kUniform;
  Listener* listener_ = nullptr;
  std::unordered_map<EdgeKey, Record, EdgeKeyHash> edges_;
  std::vector<std::vector<NeighborView>> adjacency_;  // view-level, sorted by id
};

}  // namespace gcs
