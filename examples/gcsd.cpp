// gcsd: the gradient-clock-synchronization daemon — ONE live node per
// process, talking UDP (default) or TCP on loopback. Launch one instance
// per node:
//
//   port=29200; epoch=$(gcsd --print-epoch)
//   gcsd --node=0 --nodes=2 --epoch=$epoch --seconds=30 --csv=node0.csv &
//   gcsd --node=1 --nodes=2 --epoch=$epoch --seconds=30 --csv=node1.csv &
//   wait
//
// All instances must share --nodes, --base-port, --seed, --epoch and the
// scenario knobs: each process runs a *replica* of the same ScenarioSpec in
// service mode, so equal specs are what keep the topology and drift tables
// consistent across processes. --epoch anchors model t=0 on the machine-wide
// steady clock (MonotonicClock's epoch), which is how separate processes
// share a model timeline; --print-epoch emits a value to pass to all.
//
// Each daemon self-samples its clocks on the model-time grid and writes them
// to --csv; join the per-node CSVs offline for cross-node skew
// (scripts/chaos_report.py interpolates the start-relative grids).
//
// Robustness extras:
//   --transport=udp|tcp  datagram sockets (default) or stream connections
//                        with the full reconnect state machine; under tcp a
//                        chaos conn-reset hard-closes the daemon's outbound
//                        connection and the backoff machinery re-dials
//   --detector           arm the liveness layer (suspect/evict/probe flags)
//   --chaos=SPEC         preset name or inline script (rt/chaos.h grammar);
//                        every daemon runs the SAME script and applies the
//                        ops that involve itself, so one flag value shared
//                        by all daemons yields a coherent fault schedule
//   --chaos-seed=K       preset RNG seed (shared across daemons)
//   --anchor-file=PATH   persist a logical-clock epoch anchor; a restarted
//                        daemon reads it back and rejoins monotonically
//                        (never steps its logical clock backwards)
//   --bounds-csv=PATH    per-edge eps/kappa/gradient-bound table for the
//                        offline gate
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "metrics/skew.h"
#include "rt/chaos.h"
#include "rt/rt_cluster.h"
#include "util/csv.h"
#include "util/flags.h"

using namespace gcs;

namespace {

ScenarioSpec make_spec(const Flags& flags) {
  ScenarioSpec spec;
  spec.name = "gcsd";
  spec.n = flags.get("nodes", 2);
  spec.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  spec.topology = ComponentSpec(
      flags.get("topology", std::string(spec.n >= 3 ? "ring" : "line")));
  spec.drift = ComponentSpec("osc-const");
  spec.drift.params.set("ppm", flags.get("ppm", std::string("120/-180/60/-90")));
  spec.estimates = ComponentSpec("rtt");
  const double probe = flags.get("probe", 0.25);
  spec.estimates.params.set("probe", probe);
  spec.engine.beacon_period = probe;
  spec.engine.tick_period = probe;
  spec.edge_params.eps = 0.1;
  spec.edge_params.tau = 0.5;
  spec.edge_params.msg_delay_max = flags.get("delay-max", 0.5);
  spec.edge_params.msg_delay_min = 0.0;
  spec.gtilde_auto = true;
  return spec;
}

/// The daemon-side chaos adapter: every daemon replays the same script and
/// keeps the ops that involve itself — its own crash/restart, its own
/// outbound link slots (the socket transports ignore foreign `from`s), and
/// under tcp its own side of a conn-reset (each daemon owns exactly one of
/// the pair's two outbound connections, so resetting it covers the link).
class DaemonChaosTarget final : public ChaosTarget {
 public:
  DaemonChaosTarget(NodeId self, RtNode& node, RtTransport& net,
                    TcpTransport* tcp)
      : self_(self), node_(node), net_(net), tcp_(tcp) {}
  void chaos_crash(NodeId u) override {
    if (u == self_) node_.request_crash();
  }
  void chaos_restart(NodeId u) override {
    if (u == self_) node_.request_restart();
  }
  void chaos_link(NodeId from, NodeId to, const LinkFault& f) override {
    net_.set_link_fault(from, to, f);
  }
  void chaos_conn_reset(NodeId a, NodeId b) override {
    if (tcp_ == nullptr) return;
    if (a == self_) tcp_->request_reset(b);
    if (b == self_) tcp_->request_reset(a);
  }

 private:
  NodeId self_;
  RtNode& node_;
  RtTransport& net_;
  TcpTransport* tcp_;  ///< non-null iff --transport=tcp
};

/// Crash-safe anchor persistence: write-then-rename, so a daemon killed
/// mid-write never leaves a torn anchor behind.
void persist_anchor(const std::string& path, ClockValue anchor) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out.precision(17);
    out << anchor << "\n";
  }
  std::rename(tmp.c_str(), path.c_str());
}

bool read_anchor(const std::string& path, ClockValue& anchor) {
  std::ifstream in(path);
  return static_cast<bool>(in >> anchor);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  MonotonicClock wall;
  if (flags.get("print-epoch", false)) {
    // A shared anchor slightly in the future, so daemons launched within the
    // grace window all start before model t=0 frames begin to matter.
    std::cout << wall.now() << "\n";
    return 0;
  }
  if (!flags.has("node")) {
    std::cerr << "usage: gcsd --node=U --nodes=N [--epoch=E] [--base-port=P]\n"
                 "            [--transport=udp|tcp]\n"
                 "            [--seconds=S] [--time-scale=K] [--probe=T]\n"
                 "            [--topology=ring] [--ppm=120/-180] [--seed=1]\n"
                 "            [--sample-period=T] [--csv=path]\n"
                 "            [--detector] [--suspect=T] [--evict=T]\n"
                 "            [--chaos=SPEC] [--chaos-seed=K]\n"
                 "            [--anchor-file=path] [--bounds-csv=path]\n"
                 "       gcsd --print-epoch\n";
    return 2;
  }
  const auto self = static_cast<NodeId>(flags.get("node", 0));
  const double scale = flags.get("time-scale", 1.0);
  const double probe = flags.get("probe", 0.25);
  // Default epoch = this process's start: fine for single-process smoke
  // runs; real multi-daemon deployments pass a shared --epoch.
  const Time epoch = flags.get("epoch", wall.now());
  ScaledClock clock(wall, scale, epoch);

  const ScenarioSpec spec = make_spec(flags);
  const auto base_port =
      static_cast<std::uint16_t>(flags.get("base-port", 29200));
  const auto chaos_seed =
      static_cast<std::uint64_t>(flags.get("chaos-seed", 1));
  const std::string transport = flags.get("transport", std::string("udp"));
  std::unique_ptr<UdpTransport> udp;
  std::unique_ptr<TcpTransport> tcp;
  RtTransport* net = nullptr;
  if (transport == "udp") {
    udp = std::make_unique<UdpTransport>(spec.n, self, base_port, &clock,
                                         chaos_seed);
    net = udp.get();
  } else if (transport == "tcp") {
    tcp = std::make_unique<TcpTransport>(spec.n, self, base_port, clock,
                                         chaos_seed);
    net = tcp.get();
  } else {
    std::cerr << "unknown --transport=" << transport << " (udp|tcp)\n";
    return 2;
  }
  RtNode node(spec, self, *net, clock);
  const bool chaotic = flags.has("chaos");
  if (flags.get("detector", false) || chaotic) {
    DetectorConfig detector;
    detector.suspect_after = flags.get("suspect", 3.0 * probe);
    detector.evict_after = flags.get("evict", 8.0 * probe);
    detector.probe_interval = flags.get("probe-interval", 2.0 * probe);
    node.enable_detector(detector);
  }
  node.start();

  const Time start = std::max(clock.now(), 0.0);
  const Time horizon = start + flags.get("seconds", 30.0) * scale;
  const double sample_period = flags.get("sample-period", 0.5);

  // Monotone rejoin: a daemon that died and came back catches its kernel up
  // first (pump), then lifts its logical clock to the persisted anchor so
  // the rejoined node never reads earlier than its previous incarnation.
  const std::string anchor_file = flags.get("anchor-file", std::string());
  if (!anchor_file.empty()) {
    node.pump();
    ClockValue anchor = 0.0;
    if (read_anchor(anchor_file, anchor)) {
      node.recover_logical(anchor);
      std::cout << "gcsd node " << self << ": recovered logical anchor "
                << anchor << "\n";
    }
  }

  std::vector<RtSample> samples;
  const int count =
      static_cast<int>(std::floor((horizon - start) / sample_period + 1e-9));
  for (int k = 1; k <= count; ++k) {
    const Time t = start + static_cast<Time>(k) * sample_period;
    node.at(t, [&node, &samples, t] {
      samples.push_back(
          RtSample{t, node.logical(), node.hardware(), node.sampling_live()});
    });
  }

  DaemonChaosTarget chaos_target(self, node, *net, tcp.get());
  ChaosScript script;
  if (chaotic) {
    // Scripted times are start-relative model seconds, like --seconds.
    script = ChaosScript::from_flag(
        flags.get("chaos", std::string("churn")), spec.n,
        node.scenario().initial_edges(), horizon - start,
        static_cast<std::uint64_t>(flags.get("chaos-seed", 1)));
    script.validate(spec.n);
    std::cout << "gcsd node " << self << ": chaos script: " << script.str()
              << "\n";
  }
  ChaosScheduler chaos(script, chaos_target);

  Time last_anchor = start;
  while (true) {
    chaos.poll(clock.now() - start);
    const Time t = node.pump();
    if (!anchor_file.empty() && t >= last_anchor + 1.0 && !node.is_down()) {
      persist_anchor(anchor_file, node.logical());
      last_anchor = t;
    }
    if (t >= horizon) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  node.pump();

  const std::string csv = flags.get("csv", std::string());
  if (!csv.empty()) {
    CsvWriter out(csv);
    out.row({"t", "node", "logical", "hardware", "live"});
    for (const RtSample& s : samples) {
      out.field(s.t)
          .field(self)
          .field(s.logical)
          .field(s.hardware)
          .field(s.live ? 1 : 0)
          .endrow();
    }
  }
  const std::string bounds_csv = flags.get("bounds-csv", std::string());
  if (!bounds_csv.empty()) {
    // Every replica derives the same per-edge constants; any daemon's table
    // serves the whole deployment (chaos_report.py reads one).
    CsvWriter out(bounds_csv);
    out.row({"a", "b", "eps", "kappa", "bound"});
    Engine& engine = node.engine();
    const AlgoParams& aopt = node.scenario().spec().aopt;
    for (const EdgeKey& e : node.scenario().initial_edges()) {
      const double eps = engine.edge_eps(e);
      const double kappa = engine.metric_kappa(e);
      out.field(e.a)
          .field(e.b)
          .field(eps)
          .field(kappa)
          .field(gradient_bound(kappa, aopt.gtilde_static, aopt.sigma()))
          .endrow();
    }
  }
  std::cout << "gcsd node " << self << ": ran to model t=" << horizon
            << " (" << samples.size() << " samples), frames out "
            << node.egress_count() << ", in " << node.ingress_count()
            << ", rejected " << node.rejected_count() << ", wire-rejected "
            << net->rejected() << ", restarts " << node.restarts();
  if (udp) {
    std::cout << ", send errors " << udp->send_errors();
  } else {
    std::cout << ", resets " << tcp->resets() << ", reconnects "
              << tcp->reconnects();
  }
  std::cout << "\nfinal L=" << node.logical() << " H=" << node.hardware()
            << "\n";
  return 0;
}
