// AOPT — the paper's optimal dynamic gradient clock synchronization
// algorithm (§4): neighbor-set hierarchy with staged edge insertion
// (Listings 1 and 2), fast/slow mode triggers (Defs. 4.5/4.6), and the
// max-estimate fallback (Def. 4.7 / Listing 3).
//
// Besides the paper's insertion strategy (static eq. 10 and dynamic
// Lemma 7.1 durations), the class implements two ablation policies used by
// the experiments in §5.5: immediate insertion and weight-decay insertion.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/params.h"
#include "core/triggers.h"

namespace gcs {

class AoptNode final : public Algorithm {
 public:
  explicit AoptNode(AlgoParams params) : params_(params) {}

  [[nodiscard]] const char* name() const override { return "AOPT"; }

  void on_edge_discovered(NodeId peer) override;
  void on_edge_lost(NodeId peer) override;
  void on_insert_edge_msg(NodeId from, const InsertEdgeMsg& msg) override;
  void reevaluate() override;

  [[nodiscard]] bool edge_in_level(NodeId peer, int s) const override;
  [[nodiscard]] double edge_kappa(NodeId peer) const override;

  // ------------------------------------------------------- introspection

  struct PeerInfo {
    bool present = false;
    double t0 = kTimeInf;  ///< T₀ (logical); kTimeInf while not agreed
    double insertion_duration = 0.0;  ///< I_e
    double gtilde = 0.0;              ///< G̃ used for this insertion
    double kappa = 0.0;
    double delta = 0.0;
    /// Level-s insertion time T_s = T₀ + (1 − 2^{1−s})·I (s >= 1).
    [[nodiscard]] double insertion_time(int s) const;
    /// Logical time by which the edge is inserted on all levels.
    [[nodiscard]] double fully_inserted_at() const { return t0 + insertion_duration; }
  };
  [[nodiscard]] std::optional<PeerInfo> peer_info(NodeId peer) const;

  [[nodiscard]] long long mode_switches() const { return mode_switches_; }
  [[nodiscard]] bool last_fast_trigger() const { return last_decision_.fast; }
  [[nodiscard]] bool last_slow_trigger() const { return last_decision_.slow; }
  [[nodiscard]] const TriggerDecision& last_decision() const { return last_decision_; }

  /// True iff a Lemma 5.3 violation (both triggers at once) was ever seen.
  [[nodiscard]] bool saw_trigger_conflict() const { return saw_conflict_; }

 private:
  struct Peer {
    // Hot fields first: reevaluate walks these on every event.
    NodeId id = kNoNode;
    bool present = false;
    // Derived per-edge constants (κ_e, δ_e, ε_e, τ_e).
    double kappa = 0.0;
    double delta = 0.0;
    double eps = 0.0;
    double tau = 0.0;
    // Insertion agreement (Listing 2). T0 == kTimeInf means "⊥".
    double t0 = kTimeInf;
    double insertion_duration = 0.0;
    // ---- cold: handshake bookkeeping ----
    std::uint64_t gen = 0;  ///< bumped on every discovery/loss; guards callbacks
    Time discovered_at = 0.0;
    ClockValue discovered_logical = 0.0;
    double tmsg = 0.0;        ///< T_e (msg_delay_max)
    double gtilde = 0.0;
    double kappa_init = 0.0;  ///< weight-decay start value
  };

  [[nodiscard]] bool is_leader_of(NodeId peer) const { return api_->id() < peer; }
  /// The peer record for `id`, or nullptr if never seen. Peers live in a
  /// sorted flat vector: iteration order is then stdlib-independent (an
  /// unordered_map here makes oracle estimate draws — and so whole runs —
  /// depend on hash iteration order), and the per-reevaluate walk touches
  /// contiguous memory.
  [[nodiscard]] const Peer* find_peer(NodeId id) const;
  [[nodiscard]] Peer* find_peer(NodeId id) {
    return const_cast<Peer*>(std::as_const(*this).find_peer(id));
  }
  Peer& peer_slot(NodeId id);  ///< find-or-insert (sorted)
  void leader_check(NodeId peer, std::uint64_t gen);
  void follower_check(NodeId peer, std::uint64_t gen, InsertEdgeMsg msg);
  void compute_insertion_times(Peer& p, ClockValue l_ins, double gtilde);
  /// Largest level the peer currently belongs to (0 = discovery set only).
  [[nodiscard]] int level_limit(const Peer& p, ClockValue own_logical) const;
  [[nodiscard]] double current_kappa(const Peer& p, ClockValue own_logical) const;
  /// Lemma 5.3 violation reporting, off the reevaluate hot path (the log
  /// machinery would otherwise bloat its stack frame).
  [[gnu::cold]] [[gnu::noinline]] void report_trigger_conflict();

  AlgoParams params_;
  std::vector<Peer> peers_;  ///< sorted by id; entries persist across edge loss
  std::vector<LevelPeer> reevaluate_scratch_;
  TriggerDecision last_decision_;
  long long mode_switches_ = 0;
  bool saw_conflict_ = false;
};

}  // namespace gcs
