// Minimal --key=value command-line parsing for bench/example binaries.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace gcs {

/// Parses argv of the form: prog --alpha=1.5 --name=foo --flag positional...
/// Unknown keys are kept (callers can validate); `--flag` without '=' maps to "true".
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& def) const;
  [[nodiscard]] double get(const std::string& key, double def) const;
  [[nodiscard]] long long get(const std::string& key, long long def) const;
  [[nodiscard]] int get(const std::string& key, int def) const;
  [[nodiscard]] bool get(const std::string& key, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::map<std::string, std::string>& all() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace gcs
