// Topology adversaries: drive edge insertions/removals over time.
#pragma once

#include <vector>

#include "graph/dynamic_graph.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace gcs {

/// Replays a fixed script of edge events.
class ScriptedAdversary {
 public:
  struct Event {
    Time at = 0.0;
    bool create = true;
    EdgeKey edge;
    EdgeParams params;  // used for create
  };

  ScriptedAdversary(Simulator& sim, DynamicGraph& graph) : sim_(sim), graph_(graph) {}

  void add_create(Time at, const EdgeKey& e, const EdgeParams& p) {
    script_.push_back({at, true, e, p});
  }
  void add_destroy(Time at, const EdgeKey& e) {
    script_.push_back({at, false, e, EdgeParams{}});
  }

  /// Schedule all scripted events on the simulator. Call once.
  void arm();

 private:
  Simulator& sim_;
  DynamicGraph& graph_;
  std::vector<Event> script_;
  bool armed_ = false;
};

/// Random churn over a fixed candidate edge set: at exponential intervals,
/// removes a random present edge (only if the adversary-level graph stays
/// connected, preserving the paper's connectivity requirement) or re-adds a
/// random absent candidate.
class ChurnAdversary {
 public:
  struct Config {
    double ops_per_time = 0.1;   ///< mean operations per time unit
    double p_remove = 0.5;       ///< probability an op attempts a removal
    Time start = 0.0;
    Time stop = kTimeInf;
    bool keep_connected = true;
  };

  ChurnAdversary(Simulator& sim, DynamicGraph& graph,
                 std::vector<EdgeKey> candidates, EdgeParams params,
                 Config config, std::uint64_t seed);

  /// Begin scheduling churn operations.
  void arm();

  [[nodiscard]] int removals() const { return removals_; }
  [[nodiscard]] int additions() const { return additions_; }

 private:
  void step();
  void schedule_next();

  Simulator& sim_;
  DynamicGraph& graph_;
  std::vector<EdgeKey> candidates_;
  EdgeParams params_;
  Config config_;
  Rng rng_;
  int removals_ = 0;
  int additions_ = 0;
};

}  // namespace gcs
