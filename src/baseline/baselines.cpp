#include "baseline/baselines.h"

#include <algorithm>

#include "core/algo_registry.h"

namespace gcs {

void MaxJumpNode::reevaluate() {
  if (api_->max_locked()) return;
  const ClockValue l = api_->logical();
  const ClockValue m = api_->max_estimate();
  if (m > l) {
    max_jump_ = std::max(max_jump_, m - l);
    api_->set_logical_value(m);
  }
}

void BoundedRateMaxNode::reevaluate() {
  const ClockValue l = api_->logical();
  const ClockValue m = api_->max_estimate();
  if (api_->max_locked()) {
    api_->set_rate_multiplier(1.0);
  } else if (l <= m - iota_) {
    api_->set_rate_multiplier(1.0 + mu_);
  }
  // In the ι-wide band below M: keep the current mode (hysteresis).
}

void register_baseline_algorithms(Registry<AlgoFactory>& r) {
  using E = Registry<AlgoFactory>::Entry;
  r.add(E{"max-jump",
          "Srikanth–Toueg-style max flooding with clock jumps (O(D) global, Ω(D) local)",
          {},
          [](const ParamMap&, const AlgoArgs&) -> Engine::AlgorithmFactory {
            return [](NodeId) -> std::unique_ptr<Algorithm> {
              return std::make_unique<MaxJumpNode>();
            };
          }});
  r.add(E{"bounded-rate-max",
          "AOPT's max-estimate rule without the gradient trigger hierarchy",
          {},
          [](const ParamMap&, const AlgoArgs& a) -> Engine::AlgorithmFactory {
            const double mu = a.params.mu;
            const double iota = a.params.iota;
            return [mu, iota](NodeId) -> std::unique_ptr<Algorithm> {
              return std::make_unique<BoundedRateMaxNode>(mu, iota);
            };
          }});
  r.add(E{"free-running",
          "no synchronization: the logical clock is the hardware clock",
          {},
          [](const ParamMap&, const AlgoArgs&) -> Engine::AlgorithmFactory {
            return [](NodeId) -> std::unique_ptr<Algorithm> {
              return std::make_unique<FreeRunningNode>();
            };
          }});
}

}  // namespace gcs
