#include "core/triggers.h"

#include <algorithm>
#include <cmath>

namespace gcs {

TriggerDecision evaluate_triggers(const std::vector<LevelPeer>& peers, double mu,
                                  double rho, int level_cap) {
  TriggerDecision decision;

  // Data-driven level bound (see header).
  double max_abs = 0.0;
  double max_eps = 0.0;
  double max_delta = 0.0;
  double kappa_min = kTimeInf;
  bool any = false;
  for (const auto& p : peers) {
    if (p.level_limit < 1) continue;
    any = true;
    kappa_min = std::min(kappa_min, p.kappa);
    max_eps = std::max(max_eps, p.eps);
    max_delta = std::max(max_delta, p.delta);
    if (p.has_estimate) max_abs = std::max(max_abs, std::fabs(p.est_minus_own));
  }
  if (!any || kappa_min <= 0.0) return decision;

  const int s_stop = std::min<long long>(
      level_cap,
      static_cast<long long>(std::floor((max_abs + max_eps + max_delta) / kappa_min)) + 2);

  for (int s = 1; s <= s_stop; ++s) {
    bool member = false;
    bool fast_exists = false;
    bool fast_blocked = false;
    bool slow_exists = false;
    bool slow_blocked = false;
    for (const auto& p : peers) {
      if (p.level_limit < s) continue;
      member = true;
      if (!p.has_estimate) {
        // No estimate: cannot certify the universal conditions.
        fast_blocked = true;
        slow_blocked = true;
        continue;
      }
      const double ahead = p.est_minus_own;    // L̃ᵥᵤ − L_u
      const double behind = -p.est_minus_own;  // L_u − L̃ᵥᵤ
      // Def. 4.5 (fast trigger).
      if (ahead >= static_cast<double>(s) * p.kappa - p.eps) fast_exists = true;
      if (behind > static_cast<double>(s) * p.kappa + 2.0 * mu * p.tau + p.eps) {
        fast_blocked = true;
      }
      // Def. 4.6 (slow trigger).
      if (behind >= (static_cast<double>(s) + 0.5) * p.kappa - p.delta - p.eps) {
        slow_exists = true;
      }
      if (ahead > (static_cast<double>(s) + 0.5) * p.kappa + p.delta + p.eps +
                      mu * (1.0 + rho) * p.tau) {
        slow_blocked = true;
      }
    }
    if (!member) break;  // neighbor sets are nested: higher levels are empty too
    if (fast_exists && !fast_blocked && !decision.fast) {
      decision.fast = true;
      decision.fast_level = s;
    }
    if (slow_exists && !slow_blocked && !decision.slow) {
      decision.slow = true;
      decision.slow_level = s;
    }
    if (decision.fast && decision.slow) break;  // Lemma 5.3 violation; caller asserts
  }
  return decision;
}

}  // namespace gcs
