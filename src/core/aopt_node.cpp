#include "core/aopt_node.h"

#include <cmath>

#include "core/algo_registry.h"
#include "util/log.h"

namespace gcs {

double AoptNode::PeerInfo::insertion_time(int s) const {
  require(s >= 1, "PeerInfo::insertion_time: s >= 1");
  return t0 + (1.0 - std::exp2(1.0 - static_cast<double>(s))) * insertion_duration;
}

const AoptNode::Peer* AoptNode::find_peer(NodeId id) const {
  for (const Peer& p : peers_) {
    if (p.id >= id) return p.id == id ? &p : nullptr;
  }
  return nullptr;
}

AoptNode::Peer& AoptNode::peer_slot(NodeId id) {
  auto it = peers_.begin();
  while (it != peers_.end() && it->id < id) ++it;
  if (it == peers_.end() || it->id != id) {
    it = peers_.insert(it, Peer{});
    it->id = id;
  }
  return *it;
}

void AoptNode::on_edge_discovered(NodeId peer) {
  hot_dirty_ = true;
  Peer& p = peer_slot(peer);
  p.present = true;
  ++p.gen;
  p.discovered_at = api_->now();
  p.discovered_logical = api_->logical();
  p.t0 = kTimeInf;
  p.insertion_duration = 0.0;

  // Derive κ_e, δ_e from the edge parameters, with ε taken from the estimate
  // layer (the binding accuracy guarantee, eq. 1).
  EdgeParams ep = api_->edge_params(peer);
  ep.eps = api_->edge_eps(peer);
  const EdgeConstants ec = params_.edge_constants(ep);
  p.kappa = ec.kappa;
  p.delta = ec.delta;
  p.eps = ep.eps;
  p.tau = ep.tau;
  p.tmsg = ep.msg_delay_max;

  if (api_->now() == 0.0) {
    // Paper §4.2: all neighbor sets are initialized to N_u(0) — edges that
    // exist at time 0 are fully inserted with no handshake.
    p.t0 = 0.0;
    p.insertion_duration = 0.0;
    p.gtilde = api_->global_skew_estimate();
    return;
  }

  if (params_.insertion == InsertionPolicy::kImmediate) {
    // Ablation: skip the handshake and join every level at once.
    p.t0 = p.discovered_logical;
    p.insertion_duration = 0.0;
    p.gtilde = api_->global_skew_estimate();
    return;
  }

  if (is_leader_of(peer)) {
    // Listing 1 lines 4-10. "Wait for at least ∆ time": we wait until our
    // logical clock has advanced by (1+ρ)(1+µ)∆, which both guarantees the
    // real-time wait (rates are at most (1+ρ)(1+µ)) and makes the logical
    // presence-window condition of line 6 checkable via discovered_logical.
    const double delta_hs = params_.handshake_delta(ep);
    const ClockValue wait_until = p.discovered_logical + params_.beta() * delta_hs;
    const std::uint64_t gen = p.gen;
    api_->schedule_at_logical(wait_until,
                              [this, peer, gen] { leader_check(peer, gen); });
  }
}

void AoptNode::leader_check(NodeId peer, std::uint64_t gen) {
  Peer* found = find_peer(peer);
  if (found == nullptr) return;
  Peer& p = *found;
  // gen mismatch <=> the edge was lost (or re-discovered) since the wait
  // began, i.e. v was NOT in N⁰_u throughout the logical window (line 6).
  if (!p.present || p.gen != gen) return;
  const double gtilde = api_->global_skew_estimate();
  const ClockValue l_ins = api_->logical() + gtilde + params_.beta() * p.tmsg;
  if (!api_->send_insert_edge(peer, l_ins, gtilde)) return;
  compute_insertion_times(p, l_ins, gtilde);
}

void AoptNode::on_insert_edge_msg(NodeId from, const InsertEdgeMsg& msg) {
  Peer* found = find_peer(from);
  if (found == nullptr || !found->present) return;
  Peer& p = *found;
  // Listing 1 line 12: wait at least T+τ but at most ∆−τ. Waiting until the
  // logical clock advances by (1+ρ)(1+µ)(T+τ) satisfies both: real wait is
  // >= T+τ (rate <= (1+ρ)(1+µ)) and <= (1+ρ)(1+µ)(T+τ)/(1−ρ) = ∆−τ.
  const ClockValue wait_until =
      api_->logical() + params_.beta() * (p.tmsg + p.tau);
  const std::uint64_t gen = p.gen;
  api_->schedule_at_logical(
      wait_until, [this, from, gen, msg] { follower_check(from, gen, msg); });
}

void AoptNode::follower_check(NodeId peer, std::uint64_t gen, InsertEdgeMsg msg) {
  Peer* found = find_peer(peer);
  if (found == nullptr) return;
  Peer& p = *found;
  if (!p.present || p.gen != gen) return;  // line 13 presence window violated
  // Line 13 also requires the presence window to span (1+ρ)(1+µ)(T+τ) of
  // logical time before now.
  const ClockValue fuzz = 1e-9 * (std::fabs(api_->logical()) + 1.0);
  if (api_->logical() - p.discovered_logical <
      params_.beta() * (p.tmsg + p.tau) - fuzz) {
    return;
  }
  compute_insertion_times(p, msg.l_ins, msg.gtilde);
}

void AoptNode::compute_insertion_times(Peer& p, ClockValue l_ins, double gtilde) {
  hot_dirty_ = true;  // t0 / insertion duration feed the cached level state
  p.gtilde = gtilde;
  switch (params_.insertion) {
    case InsertionPolicy::kStagedStatic:
      p.insertion_duration = params_.insertion_duration_static(gtilde);
      break;
    case InsertionPolicy::kStagedDynamic:
      p.insertion_duration =
          params_.insertion_duration_dynamic(gtilde, p.tmsg, p.tau);
      break;
    case InsertionPolicy::kWeightDecay:
      p.insertion_duration = params_.insertion_duration_static(gtilde);
      p.kappa_init = 2.0 * gtilde + p.kappa;
      break;
    case InsertionPolicy::kImmediate:
      require(false, "compute_insertion_times unreachable for kImmediate");
  }
  // Listing 2 line 3: T₀ = min { T >= L_ins : T / I in Z }.
  p.t0 = std::ceil(l_ins / p.insertion_duration) * p.insertion_duration;

  // Exact re-evaluation points at the first few level insertions and at full
  // insertion (later T_s are closer together than a tick anyway).
  for (int s = 1; s <= 8; ++s) {
    const double ts = p.t0 + (1.0 - std::exp2(1.0 - static_cast<double>(s))) *
                                 p.insertion_duration;
    api_->schedule_at_logical(ts, [] {});
  }
  api_->schedule_at_logical(p.t0 + p.insertion_duration, [] {});
}

void AoptNode::on_edge_lost(NodeId peer) {
  Peer* found = find_peer(peer);
  if (found == nullptr) return;
  hot_dirty_ = true;
  Peer& p = *found;
  // Listing 1 lines 15-18: leave all neighbor sets, T_s := ⊥.
  p.present = false;
  ++p.gen;
  p.t0 = kTimeInf;
  p.insertion_duration = 0.0;
}

AoptNode::LevelState AoptNode::level_state(const Peer& p,
                                           ClockValue own_logical) const {
  // The limit is piecewise constant in own-logical time; `next` is the exact
  // boundary of the current piece, so a caller that re-queries only when
  // own_logical crosses it sees bit-identical limits to recomputing always.
  if (p.t0 == kTimeInf) return {0, kTimeInf};  // changes only via structure
  if (own_logical < p.t0) return {0, p.t0};
  if (params_.insertion == InsertionPolicy::kWeightDecay ||
      params_.insertion == InsertionPolicy::kImmediate) {
    return {kAllLevels, kTimeInf};  // all levels at once (κ may still decay)
  }
  if (p.insertion_duration <= 0.0 ||
      own_logical >= p.t0 + p.insertion_duration) {
    return {kAllLevels, kTimeInf};
  }
  // Largest s >= 1 with T_s = T0 + (1 − 2^{1−s})·I <= L. The loop evaluates
  // the same float expression used elsewhere, so membership is consistent.
  int s = 1;
  double next = p.t0 + p.insertion_duration;  // full insertion flips the limit
  while (s < params_.level_cap) {
    const double ts_next =
        p.t0 + (1.0 - std::exp2(-static_cast<double>(s))) * p.insertion_duration;
    if (own_logical < ts_next) {
      next = ts_next;
      break;
    }
    ++s;
  }
  return {s, next};
}

double AoptNode::current_kappa(const Peer& p, ClockValue own_logical) const {
  if (params_.insertion != InsertionPolicy::kWeightDecay ||
      p.t0 == kTimeInf || p.kappa_init <= p.kappa || p.insertion_duration <= 0.0) {
    return p.kappa;
  }
  if (own_logical <= p.t0) return p.kappa_init;
  if (own_logical >= p.t0 + p.insertion_duration) return p.kappa;
  // Exponential decay from κ_init at T0 to κ_e at T0 + I.
  const double frac = (own_logical - p.t0) / p.insertion_duration;
  return std::max(p.kappa, p.kappa_init * std::pow(p.kappa / p.kappa_init, frac));
}

bool AoptNode::edge_in_level(NodeId peer, int s) const {
  const Peer* p = find_peer(peer);
  if (p == nullptr) return false;
  return level_limit(*p, api_->logical()) >= s;
}

double AoptNode::edge_kappa(NodeId peer) const {
  const Peer* p = find_peer(peer);
  if (p == nullptr) return 0.0;
  return current_kappa(*p, api_->logical());
}

std::optional<AoptNode::PeerInfo> AoptNode::peer_info(NodeId peer) const {
  const Peer* found = find_peer(peer);
  if (found == nullptr) return std::nullopt;
  const Peer& p = *found;
  PeerInfo info;
  info.present = p.present;
  info.t0 = p.t0;
  info.insertion_duration = p.insertion_duration;
  info.gtilde = p.gtilde;
  info.kappa = p.kappa;
  info.delta = p.delta;
  return info;
}

void AoptNode::report_trigger_conflict() {
  saw_conflict_ = true;  // impossible per Lemma 5.3 when eq. (9) holds
  GCS_ERROR << "node " << api_->id() << ": fast and slow triggers both hold";
}

void AoptNode::rebuild_hot(ClockValue own) {
  hot_.clear();
  level_peers_.clear();
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const Peer& p = peers_[i];
    if (!p.present) continue;
    const LevelState ls = level_state(p, own);
    HotPeer h;
    h.id = p.id;
    h.peer_index = static_cast<int>(i);
    h.level_next = ls.next;
    LevelPeer lp;
    lp.level_limit = ls.limit;
    lp.kappa = p.kappa;  // weight decay refreshes this per scan
    lp.delta = p.delta;
    lp.eps = p.eps;
    lp.tau = p.tau;
    hot_.push_back(h);
    level_peers_.push_back(lp);
  }
  hot_dirty_ = false;
}

void AoptNode::on_estimate_dirty(NodeId peer) {
  if (hot_dirty_) return;  // the pending rebuild drops every snapshot anyway
  for (HotPeer& h : hot_) {
    if (h.id == peer) {
      h.est_cached = false;
      return;
    }
  }
}

void AoptNode::reevaluate() {
  const ClockValue own = api_->logical();

  // Incremental scan (see the HotPeer comment in the header): membership and
  // per-edge constants come from the cached mirror; levels refresh only at
  // their precomputed thresholds; estimates are evaluated fresh — they move
  // with the clocks — but through the inline fast paths, reading and drawing
  // exactly what the virtual estimate path would. `own < last_own_` catches
  // logical-clock regression (fault injection), where the piecewise-constant
  // level caching assumption breaks.
  bool agg_stale = false;
  if (hot_dirty_ || own < last_own_) {
    rebuild_hot(own);
    agg_stale = true;
  }
  last_own_ = own;

  OracleEstimateSource* const oracle = api_->oracle_source();
  BeaconEstimateSource* const beacon = api_->beacon_source();
  const bool decay = params_.insertion == InsertionPolicy::kWeightDecay;
  const ClockValue own_hw = beacon != nullptr ? api_->own_hardware_value() : 0.0;
  const std::size_t count = hot_.size();
  double max_abs = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    HotPeer& h = hot_[i];
    LevelPeer& lp = level_peers_[i];
    if (own >= h.level_next) {
      const LevelState ls = level_state(peers_[static_cast<std::size_t>(h.peer_index)], own);
      agg_stale |= (lp.level_limit < 1) != (ls.limit < 1);
      lp.level_limit = ls.limit;
      h.level_next = ls.next;
    }
    if (lp.level_limit < 1) {
      // Discovery-set-only edges play no trigger role; their estimate is
      // not read (keeps the oracle RNG stream identical to the full scan).
      lp.has_estimate = false;
      continue;
    }
    if (decay) {
      lp.kappa = current_kappa(peers_[static_cast<std::size_t>(h.peer_index)], own);
    }
    bool have;
    double est = 0.0;
    if (oracle != nullptr) {
      est = oracle->perturb(api_->peer_true_logical(h.id), own, lp.eps);
      have = true;
    } else if (beacon != nullptr) {
      if (!h.est_cached) {
        h.has_entry = beacon->snapshot(api_->id(), h.id, h.entry);
        h.est_cached = true;
      }
      have = h.has_entry;
      if (have) est = h.entry.base + (own_hw - h.entry.recv_hw);
    } else {
      const auto opt = api_->neighbor_estimate_present(h.id, lp.eps);
      have = opt.has_value();
      if (have) est = *opt;
    }
    lp.has_estimate = have;
    lp.est_minus_own = have ? est - own : 0.0;
    if (have) {
      const double abs_d = std::fabs(lp.est_minus_own);
      max_abs = abs_d > max_abs ? abs_d : max_abs;
    }
  }
  if (agg_stale || decay) {
    agg_ = compute_trigger_aggregates(level_peers_.data(), count);
  }

  last_decision_ = evaluate_triggers(level_peers_.data(), count, agg_, max_abs,
                                     params_.mu, params_.rho, params_.level_cap);
  if (last_decision_.fast && last_decision_.slow) [[unlikely]] {
    report_trigger_conflict();
  }

  // Listing 3.
  const double fast_mult = 1.0 + params_.mu;
  double target = api_->rate_multiplier();
  if (last_decision_.slow) {
    target = 1.0;
  } else if (last_decision_.fast) {
    target = fast_mult;
  } else if (api_->max_locked()) {
    target = 1.0;  // slow max-estimate trigger (L_u = M_u)
  } else if (own <= api_->max_estimate() - params_.iota) {
    target = fast_mult;  // fast max-estimate trigger
  }
  // Otherwise: neither trigger applies — keep the current mode (the paper
  // allows a nondeterministic choice here).
  if (target != api_->rate_multiplier()) {
    ++mode_switches_;
    api_->set_rate_multiplier(target);
  }
}

void register_aopt_algorithm(Registry<AlgoFactory>& r) {
  r.add(Registry<AlgoFactory>::Entry{
      "aopt",
      "the paper's gradient algorithm (AOPT, §4) — parameters via AlgoParams",
      {},
      [](const ParamMap&, const AlgoArgs& a) -> Engine::AlgorithmFactory {
        const AlgoParams params = a.params;
        return [params](NodeId) -> std::unique_ptr<Algorithm> {
          return std::make_unique<AoptNode>(params);
        };
      }});
}

}  // namespace gcs
