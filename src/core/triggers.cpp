#include "core/triggers.h"

#include <algorithm>
#include <cmath>

namespace gcs {

TriggerAggregates compute_trigger_aggregates(const LevelPeer* peers,
                                             std::size_t count) {
  TriggerAggregates agg;
  for (std::size_t i = 0; i < count; ++i) {
    const LevelPeer& p = peers[i];
    if (p.level_limit < 1) continue;
    agg.any = true;
    agg.kappa_min = std::min(agg.kappa_min, p.kappa);
    agg.max_eps = std::max(agg.max_eps, p.eps);
    agg.max_delta = std::max(agg.max_delta, p.delta);
  }
  return agg;
}

TriggerDecision evaluate_triggers(const LevelPeer* peers, std::size_t count,
                                  const TriggerAggregates& agg, double max_abs,
                                  double mu, double rho, int level_cap) {
  TriggerDecision decision;
  if (!agg.any || agg.kappa_min <= 0.0) return decision;

  const double ratio = (max_abs + agg.max_eps + agg.max_delta) / agg.kappa_min;
  // Quick rejection, the steady-state common case: with
  // max_abs + max ε + max δ < κ_min, no peer can satisfy either existential
  // condition at any level s >= 1 —
  //   ahead  <= max_abs < κ_min − max ε − max δ <= s·κ_e − ε_e, and
  //   behind <= max_abs < κ_min − max ε − max δ <= (s+0.5)·κ_e − δ_e − ε_e —
  // and without an existential witness neither trigger fires regardless of
  // the blocking clauses, so the per-level scan would find nothing. The
  // threshold keeps a 1e-9 relative margin so the handful of roundings in
  // `ratio` can never disagree with the scan's own rounded comparisons;
  // ratios inside the margin just take the full scan.
  if (ratio < 1.0 - 1e-9) return decision;
  // floor() via integer truncation: the ratio is non-negative, where the two
  // agree — and std::floor is a libm CALL at baseline x86-64, once per
  // re-evaluation. Huge ratios (corrupt clocks) saturate to level_cap.
  const long long whole =
      ratio < 1e18 ? static_cast<long long>(ratio) : (1LL << 60);
  const int s_stop = std::min<long long>(level_cap, whole + 2);

  for (int s = 1; s <= s_stop; ++s) {
    // Accumulate the per-peer conditions branchlessly: the comparisons are
    // data-dependent (≈50% mispredict as branches) and this loop runs on
    // every re-evaluation. The boolean algebra is exactly the original
    // control flow: missing estimates block both certificates.
    bool member = false;
    bool fast_exists = false;
    bool fast_blocked = false;
    bool slow_exists = false;
    bool slow_blocked = false;
    const double sd = static_cast<double>(s);
    for (std::size_t i = 0; i < count; ++i) {
      const LevelPeer& p = peers[i];
      const bool in_level = p.level_limit >= s;
      member |= in_level;
      const bool certifiable = in_level & p.has_estimate;
      const bool no_estimate = in_level & !p.has_estimate;
      fast_blocked |= no_estimate;
      slow_blocked |= no_estimate;
      const double ahead = p.est_minus_own;    // L̃ᵥᵤ − L_u
      const double behind = -p.est_minus_own;  // L_u − L̃ᵥᵤ
      // Def. 4.5 (fast trigger).
      fast_exists |= certifiable & (ahead >= sd * p.kappa - p.eps);
      fast_blocked |=
          certifiable & (behind > sd * p.kappa + 2.0 * mu * p.tau + p.eps);
      // Def. 4.6 (slow trigger).
      slow_exists |=
          certifiable & (behind >= (sd + 0.5) * p.kappa - p.delta - p.eps);
      slow_blocked |= certifiable & (ahead > (sd + 0.5) * p.kappa + p.delta +
                                                 p.eps + mu * (1.0 + rho) * p.tau);
    }
    if (!member) break;  // neighbor sets are nested: higher levels are empty too
    if (fast_exists && !fast_blocked && !decision.fast) {
      decision.fast = true;
      decision.fast_level = s;
    }
    if (slow_exists && !slow_blocked && !decision.slow) {
      decision.slow = true;
      decision.slow_level = s;
    }
    if (decision.fast && decision.slow) break;  // Lemma 5.3 violation; caller asserts
  }
  return decision;
}

TriggerDecision evaluate_triggers(const LevelPeer* peers, std::size_t count,
                                  double mu, double rho, int level_cap) {
  const TriggerAggregates agg = compute_trigger_aggregates(peers, count);
  double max_abs = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const LevelPeer& p = peers[i];
    if (p.level_limit >= 1 && p.has_estimate) {
      max_abs = std::max(max_abs, std::fabs(p.est_minus_own));
    }
  }
  return evaluate_triggers(peers, count, agg, max_abs, mu, rho, level_cap);
}

}  // namespace gcs
