// Portable SIMD capability + dispatch plumbing for the vectorized AOPT
// trigger scan (core/triggers.cpp).
//
// Policy: the build stays at the baseline ISA (x86-64 / aarch64) — vector
// kernels are compiled per-function with GCC/Clang target attributes
// (__attribute__((target("avx2")))) and selected at runtime via CPUID. That
// keeps the binary portable AND, critically, keeps the compiler from
// contracting the *scalar* reference path with FMA or re-vectorizing it
// behind our back: the scalar expressions in triggers.cpp are the bit-exact
// reference that every trajectory fingerprint pins, and the vector path is
// only trusted because test_fingerprint proves it hash-identical per lane
// (same IEEE mul/add/sub sequence, no FMA intrinsics, no reassociation).
//
// Runtime control:
//   - simd::available(): a vector kernel is compiled in AND the CPU has it.
//   - simd::enabled():   available() AND the vector path was opted into —
//                        GCS_SIMD=on|avx2|1 in the environment, or
//                        simd::set_enabled(true) (the fingerprint and
//                        trigger suites use the hook to run both paths in
//                        one process and compare results).
//   - simd::backend():   "avx2" or "scalar", for logs and bench metadata.
//
// The SCALAR path is the default. The vector scan is proven
// decision-identical (test_triggers) and trajectory-identical on every
// pinned fingerprint row (test_fingerprint), and it is ~3x faster in
// isolation (BM_TriggerEvaluation) — but the whole-simulation gain on the
// line-1024 workload measured 1.08x, short of the 1.3x bar set for making
// it the default (Amdahl: PR 3's dirty gating, PR 5's instant coalescing
// and the ratio quick-reject already removed most scans; see
// docs/ARCHITECTURE.md "Fingerprint pinning" for the full accounting).
// Flip it on with GCS_SIMD=on where the trigger scan dominates.
//
// aarch64 note: the dispatch seam is ISA-agnostic — a NEON float64x2 kernel
// slots into triggers.cpp behind the same enabled() check — but no NEON
// kernel is implemented yet, so aarch64 reports "scalar" and always takes
// the reference path.
#pragma once

#include <cstdlib>
#include <cstring>

namespace gcs::simd {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GCS_SIMD_AVX2_DISPATCH 1
#endif

/// A vector trigger-scan kernel is compiled in and this CPU supports it.
inline bool available() {
#if defined(GCS_SIMD_AVX2_DISPATCH)
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

namespace detail {
inline bool& enabled_flag() {
  static bool flag = [] {
    const char* env = std::getenv("GCS_SIMD");
    return env != nullptr && (std::strcmp(env, "on") == 0 ||
                              std::strcmp(env, "avx2") == 0 ||
                              std::strcmp(env, "1") == 0);
  }();
  return flag;
}
}  // namespace detail

/// Test hook: select the vector path (or back to the scalar reference)
/// within a process. No effect on availability.
inline void set_enabled(bool on) { detail::enabled_flag() = on; }

/// Take the vector path right now?
inline bool enabled() { return available() && detail::enabled_flag(); }

inline const char* backend() {
#if defined(GCS_SIMD_AVX2_DISPATCH)
  if (available()) return "avx2";
#endif
  return "scalar";
}

}  // namespace gcs::simd
