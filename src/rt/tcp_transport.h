// TCP stream backend: real connection lifecycle under the same two-call
// RtTransport contract as the pipe and UDP backends.
//
// Topology: node u owns one listening socket on 127.0.0.1:(base_port + u)
// plus one lazily-dialed outbound connection per peer, used for SENDING
// only; frames from a peer arrive on the connection that peer dialed to
// our listener. Two unidirectional connections per adjacent pair keeps the
// whole reconnect state machine on the sender's side and needs no identity
// handshake — every frame already carries `from`.
//
// Outbound lifecycle (per peer):
//
//   Closed ──dial──> Connecting ──writable──> Established
//      ^                  │ error                  │ reset / write error
//      │                  v                        v
//      └────deadline── Backoff <──────────────────┘
//
// Backoff grows exponentially (base · 2^attempt, capped) with jitter drawn
// from a per-peer seeded RNG — deterministic, so lockstep runs stay
// bit-reproducible; a successful establishment resets the attempt count.
// While Connecting, frames are buffered (bounded) and flushed on
// establishment; while Backoff, send() returns false — the existing
// "send() == false means drop" contract, so a down connection degrades to
// loss and AOPT re-convergence, not the transport, heals the cluster.
//
// Everything is non-blocking: dials, accepts, reads (reassembled against
// the length prefix across arbitrary segment boundaries) and writes
// (bounded per-connection buffering; a full buffer counts backpressure(),
// never an injected fault). Chaos conn-reset requests are latched in
// atomics and consumed on the owning thread, like RtNode's admin flags.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "rt/rt_transport.h"

namespace gcs {

struct TcpConfig {
  Duration backoff_base = 0.05;  ///< first retry delay, model seconds
  Duration backoff_max = 1.6;    ///< backoff growth cap
  double jitter = 0.25;          ///< fraction of the backoff added as jitter
  std::size_t write_buffer_cap = 64 * 1024;  ///< bytes buffered per connection
  int listen_backlog = 64;
};

class TcpTransport final : public RtTransport {
 public:
  enum class ConnState { kClosed, kConnecting, kEstablished, kBackoff };

  /// One instance serves node `self`; listens on 127.0.0.1:(base_port +
  /// self). `clock` is mandatory: reconnect backoff and latency storms are
  /// measured in model time against it.
  TcpTransport(int n, NodeId self, std::uint16_t base_port, TimeSource& clock,
               std::uint64_t chaos_seed = 1, const TcpConfig& config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  bool send(const WireMsg& m) override;
  bool poll(NodeId self, WireMsg& out) override;
  /// Only the outbound (from == self) direction is stored, as with UDP.
  void set_link_fault(NodeId from, NodeId to, const LinkFault& f) override;

  /// Chaos conn-reset: latch a request to hard-close (RST) the outbound
  /// connection to `peer`. Thread-safe; applied on the owning thread at the
  /// next send/poll, after which the connection re-dials through Backoff.
  void request_reset(NodeId peer);

  [[nodiscard]] ConnState conn_state(NodeId peer) const;
  /// Consecutive failed/reset attempts on the peer's connection (bounds the
  /// backoff exponent; re-established connections reset it to zero).
  [[nodiscard]] int backoff_attempts(NodeId peer) const;
  /// The most recently armed backoff delay for the peer, model seconds.
  [[nodiscard]] Duration last_backoff(NodeId peer) const;

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  /// Chaos-injected drops only (pure function of the chaos script + seed).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Chaos-injected bit flips on outbound frames.
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }
  /// Undecodable ingress frames (CRC mismatch etc.); framing survives — a
  /// bad frame is skipped by its length prefix, the stream stays in sync.
  [[nodiscard]] std::uint64_t rejected() const override { return rejected_; }
  /// Frames refused because a connection's write buffer was full — real
  /// backpressure, never mixed into the injected-fault counters.
  [[nodiscard]] std::uint64_t backpressure() const { return backpressure_; }
  /// Frames dropped because the connection was down (Backoff) or died
  /// carrying them (buffer discarded on connection failure).
  [[nodiscard]] std::uint64_t conn_down() const { return conn_down_; }
  /// Connection losses observed (chaos resets + real write/connect errors).
  [[nodiscard]] std::uint64_t resets() const { return resets_; }
  /// Successful establishments (first dials and re-establishments).
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

 private:
  struct OutConn {
    int fd = -1;
    ConnState state = ConnState::kClosed;
    Time retry_at = 0.0;        ///< Backoff: model time of the next dial
    int attempt = 0;            ///< consecutive failures (backoff exponent)
    Duration last_backoff = 0.0;
    /// Unwritten frames, whole-frame granularity (head may be partially
    /// written — head_written bytes of wbuf.front() are already out).
    std::deque<std::vector<std::uint8_t>> wbuf;
    std::size_t head_written = 0;
    std::size_t wbuf_bytes = 0;  ///< total buffered bytes, capped by config
  };
  struct InConn {
    int fd = -1;
    std::vector<std::uint8_t> rbuf;  ///< partial-frame reassembly
    std::size_t consumed = 0;        ///< parsed prefix of rbuf
  };
  struct Stashed {  // latency-storm hold, min-heap on release_at
    Time release_at = 0.0;
    std::uint64_t seq = 0;
    std::array<std::uint8_t, kWireMax> frame{};
    std::size_t len = 0;
    NodeId to = kNoNode;
  };
  struct StashOrder {
    bool operator()(const Stashed& a, const Stashed& b) const {
      if (a.release_at != b.release_at) return a.release_at > b.release_at;
      return a.seq > b.seq;
    }
  };

  void consume_reset_requests(Time now);
  void progress(OutConn& c, NodeId peer, Time now);
  void dial(OutConn& c, NodeId peer, Time now);
  void fail_connection(OutConn& c, Time now, bool hard_reset);
  bool enqueue_frame(OutConn& c, const std::uint8_t* frame, std::size_t len);
  void flush_wbuf(OutConn& c, Time now);
  void flush_stash(Time now);
  void accept_pending();
  void read_connections();
  void parse_frames(InConn& c);

  int n_;
  NodeId self_;
  std::uint16_t base_port_;
  TimeSource& clock_;
  TcpConfig config_;
  int listen_fd_ = -1;
  std::vector<OutConn> out_;       ///< per peer, owner-thread only
  std::vector<InConn> in_;         ///< accepted connections, owner-thread only
  std::deque<WireMsg> pending_;    ///< decoded frames awaiting poll()
  std::vector<Rng> chaos_rngs_;    ///< per destination, owner-thread only
  std::vector<Rng> corrupt_rngs_;  ///< per destination, owner-thread only
  std::vector<Rng> backoff_rngs_;  ///< per destination, jitter stream
  std::unique_ptr<std::atomic<std::uint64_t>[]> link_faults_;  ///< per destination
  std::unique_ptr<std::atomic<bool>[]> reset_requests_;        ///< per destination
  std::priority_queue<Stashed, std::vector<Stashed>, StashOrder> stash_;
  std::uint64_t stash_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t backpressure_ = 0;
  std::uint64_t conn_down_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t reconnects_ = 0;
};

}  // namespace gcs
