// Topology adversaries: drive edge insertions/removals over time.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "graph/dynamic_graph.h"
#include "sim/simulator.h"
#include "util/registry.h"
#include "util/rng.h"

namespace gcs {

/// Common handle for every topology adversary: something that, once armed,
/// schedules edge events on the simulator.
class TopologyAdversary {
 public:
  virtual ~TopologyAdversary() = default;
  /// Begin scheduling events. Call once, before or after engine start.
  virtual void arm() = 0;
  /// Total operations applied so far (for reports; 0 if not tracked).
  [[nodiscard]] virtual int operations() const { return 0; }
};

/// Replays a fixed script of edge events.
class ScriptedAdversary final : public TopologyAdversary {
 public:
  struct Event {
    Time at = 0.0;
    bool create = true;
    EdgeKey edge;
    EdgeParams params;  // used for create
  };

  ScriptedAdversary(Simulator& sim, DynamicGraph& graph) : sim_(sim), graph_(graph) {}

  void add_create(Time at, const EdgeKey& e, const EdgeParams& p) {
    script_.push_back({at, true, e, p});
  }
  void add_destroy(Time at, const EdgeKey& e) {
    script_.push_back({at, false, e, EdgeParams{}});
  }

  /// Schedule all scripted events on the simulator. Call once.
  void arm() override;
  [[nodiscard]] int operations() const override { return static_cast<int>(script_.size()); }

 private:
  Simulator& sim_;
  DynamicGraph& graph_;
  std::vector<Event> script_;
  bool armed_ = false;
};

/// Random churn over a fixed candidate edge set: at exponential intervals,
/// removes a random present edge (only if the adversary-level graph stays
/// connected, preserving the paper's connectivity requirement) or re-adds a
/// random absent candidate.
class ChurnAdversary final : public TopologyAdversary {
 public:
  struct Config {
    double ops_per_time = 0.1;   ///< mean operations per time unit
    double p_remove = 0.5;       ///< probability an op attempts a removal
    Time start = 0.0;
    Time stop = kTimeInf;
    bool keep_connected = true;
  };

  ChurnAdversary(Simulator& sim, DynamicGraph& graph,
                 std::vector<EdgeKey> candidates, EdgeParams params,
                 Config config, std::uint64_t seed);

  /// Begin scheduling churn operations.
  void arm() override;

  [[nodiscard]] int removals() const { return removals_; }
  [[nodiscard]] int additions() const { return additions_; }
  [[nodiscard]] int operations() const override { return additions_ + removals_; }

 private:
  void step();
  void schedule_next();

  Simulator& sim_;
  DynamicGraph& graph_;
  std::vector<EdgeKey> candidates_;
  EdgeParams params_;
  Config config_;
  Rng rng_;
  int removals_ = 0;
  int additions_ = 0;
};

// --------------------------------------------------------------------------
// Adversary registry.

/// Build context for adversary factories.
struct AdversaryArgs {
  Simulator& sim;
  DynamicGraph& graph;
  const std::vector<EdgeKey>& initial_edges;  ///< churn candidate set
  EdgeParams edge_params;
  std::uint64_t seed = 1;
};

/// Factories may return nullptr ("none": no adversary).
using AdversaryFactory =
    std::function<std::unique_ptr<TopologyAdversary>(const ParamMap&, const AdversaryArgs&)>;

/// The process-wide adversary registry (builtins registered on first use).
Registry<AdversaryFactory>& adversary_registry();

}  // namespace gcs
