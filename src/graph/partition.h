// Deterministic island partitioner for the island-parallel execution engine
// (src/runner/island_runner). Splits the node set into K weakly-coupled
// islands; the runner gives each island its own Simulator + Engine shard and
// exchanges cross-island deliveries at instant boundaries.
//
// Pure function of (n, edge list, K, budget) — no DynamicGraph dependency, no
// RNG — so a plan can be computed before any simulation state exists and the
// same inputs always produce the same islands on every host and thread count.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace gcs {

/// Result of an island partition attempt.
struct IslandPlan {
  bool feasible = false;       ///< true iff the partition meets the cut budget
  std::string reason;          ///< human-readable cause when infeasible
  int islands = 0;             ///< number of non-empty islands
  std::vector<int> island_of;  ///< size n; island index in [0, islands) per node
  std::vector<EdgeKey> cut;    ///< edges whose endpoints land in different islands
};

/// Connected components via union-find. Returns the component index per node;
/// components are numbered 0.. in order of their lowest-id member. The count
/// is written through `count` when non-null.
std::vector<int> connected_components(int n, const std::vector<EdgeKey>& edges,
                                      int* count = nullptr);

/// Partition nodes 0..n-1 into (up to) `requested` islands.
///
/// Strategy, fully deterministic for a fixed input:
///   1. requested == 1: trivially feasible — everything in island 0, empty cut.
///   2. #components >= min(requested, n): greedy bin-packing of whole
///      components (largest first, ties by lowest member id) into the
///      currently smallest island — the cut is empty by construction.
///   3. otherwise: farthest-first BFS seeds (seed 0 is node 0; each next seed
///      maximizes hop distance to the seed set, unreachable nodes counting as
///      infinitely far, ties by lowest id) followed by smallest-island-first
///      frontier growth (lowest-id frontier node wins). On mesh-like
///      topologies (line, grid, torus, clusters) this approximates a balanced
///      min-cut split.
///
/// Infeasible when n == 0, requested <= 0, fewer than 2 non-empty islands
/// result, or the cross-island cut exceeds `cut_budget` (budget < 0 means the
/// default budget of n edges — intentionally below any complete-graph
/// bipartition so dense topologies fall back to the serial engine). Island
/// indices are renumbered so island k's lowest node id increases with k.
IslandPlan partition_islands(int n, const std::vector<EdgeKey>& edges,
                             int requested, int cut_budget = -1);

}  // namespace gcs
