#include "util/flags.h"

#include <cstdlib>
#include <stdexcept>

namespace gcs {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg] = "true";
      } else {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Flags::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

double Flags::get(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

long long Flags::get(const std::string& key, long long def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

int Flags::get(const std::string& key, int def) const {
  return static_cast<int>(get(key, static_cast<long long>(def)));
}

bool Flags::get(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Flags: bad boolean for --" + key + ": " + v);
}

}  // namespace gcs
