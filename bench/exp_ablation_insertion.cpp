// E10 — §5.5: insertion-strategy ablation.
//   staged (the paper's AOPT), weight-decay ([16]-style: all levels at once
//   with exponentially shrinking κ), and immediate (naive: full-weight edge
//   instantly — violates the theory). We insert a shortcut into a line that
//   carries end-to-end skew and compare: worst legality margin during the
//   insertion window, worst old-edge skew, and time to full insertion.
//
// The policy axis runs as a SweepRunner grid (sharded work-stealing pool,
// --threads), one independent Scenario per policy.
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = flags.get("n", 10);

  print_header("E10 exp_ablation_insertion",
               "§5.5: staged insertion (paper) vs weight-decay ([16]) vs naive "
               "immediate insertion");

  auto base = fast_line_spec(n);
  base.name = "ablation";
  Sweep sweep(base);
  sweep.axis("insertion", std::vector<std::string>{"staged", "decay", "immediate"});
  SweepOptions options;
  options.threads = flags.get("threads", 2);
  SweepRunner runner(options);
  runner.set_run_fn([](Scenario& s, RunResult& r) {
    const int nodes = s.spec().n;
    s.start();
    const double ghat = s.spec().aopt.gtilde_static;

    s.run_until(100.0);
    // Scatter the line linearly across 0.4*Ghat — *legal* for every existing
    // path (per-edge scatter stays below the level-1 allowance), but far
    // above the stable bound of the shortcut about to appear. Insert
    // immediately, before the max-estimate chase collapses the scatter.
    scatter_clocks_linearly(s, 0.4 * ghat);
    const Time t_insert = s.sim().now();
    const EdgeKey shortcut(0, nodes - 1);
    s.graph().create_edge(shortcut, s.spec().edge_params);

    double worst_margin = -kTimeInf;
    double worst_old_edge = 0.0;
    double time_to_full = kTimeInf;
    const auto old_edges = topo_line(nodes);
    const double final_kappa = metric_kappa(s.engine(), shortcut);
    const double horizon =
        t_insert + 2.5 * s.spec().aopt.insertion_duration_static(ghat) + 200.0;
    const auto observe = [&] {
      const auto report = check_legality(s.engine(), ghat);
      worst_margin = std::max(worst_margin, report.worst_margin);
      worst_old_edge =
          std::max(worst_old_edge, worst_skew_over(s.engine(), old_edges));
      // "Fully inserted": on all levels AND (weight decay) κ reached final.
      if (time_to_full == kTimeInf &&
          s.aopt(0).edge_in_level(nodes - 1, 1 << 20) &&
          s.aopt(static_cast<NodeId>(nodes - 1)).edge_in_level(0, 1 << 20) &&
          s.aopt(0).edge_kappa(nodes - 1) <= final_kappa * 1.0001) {
        time_to_full = s.sim().now() - t_insert;
      }
    };
    // Dense sampling right after insertion (where naive insertion spikes),
    // then sparse until the staged schedule completes.
    for (int step = 0; step < 60; ++step) {
      s.run_for(1.0);
      observe();
    }
    while (s.sim().now() < horizon) {
      s.run_for(10.0);
      observe();
      if (time_to_full != kTimeInf &&
          s.sim().now() > t_insert + time_to_full + 150.0) {
        break;  // enough post-insertion observation
      }
    }
    r.values["worst_margin"] = worst_margin;
    r.values["worst_old_edge"] = worst_old_edge;
    r.values["time_to_full"] = time_to_full;
    r.values["new_edge_final"] =
        std::fabs(s.engine().logical(0) - s.engine().logical(nodes - 1));
  });
  const auto results = runner.run(sweep);

  Table table("E10 — insertion-policy ablation (line n=" + std::to_string(n) +
              " with 0.4*Ghat end-to-end scatter)");
  table.headers({"policy", "worst legality margin", "worst old-edge skew",
                 "t(full insertion)", "new-edge final skew"});
  for (const auto& r : results) {
    if (!r.ok()) {
      std::cerr << "policy " << r.axes.at("insertion") << " failed: " << r.error
                << "\n";
      return 1;
    }
    table.row()
        .cell(r.axes.at("insertion"))
        .cell(r.values.at("worst_margin"))
        .cell(r.values.at("worst_old_edge"))
        .cell(r.values.at("time_to_full"))
        .cell(r.values.at("new_edge_final"));
  }
  table.print();
  std::cout << "paper: immediate insertion spikes the legality margin (the new\n"
               "edge instantly demands a level-s guarantee it cannot meet);\n"
               "staged and weight-decay keep the system legal throughout, with\n"
               "staged giving the better final bound (§5.5 discussion).\n";
  return 0;
}
