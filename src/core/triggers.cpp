#include "core/triggers.h"

#include <algorithm>
#include <cmath>

namespace gcs {

TriggerDecision evaluate_triggers(const LevelPeer* peers, std::size_t count,
                                  double mu, double rho, int level_cap) {
  TriggerDecision decision;

  // Data-driven level bound (see header).
  double max_abs = 0.0;
  double max_eps = 0.0;
  double max_delta = 0.0;
  double kappa_min = kTimeInf;
  bool any = false;
  for (std::size_t i = 0; i < count; ++i) {
    const LevelPeer& p = peers[i];
    if (p.level_limit < 1) continue;
    any = true;
    kappa_min = std::min(kappa_min, p.kappa);
    max_eps = std::max(max_eps, p.eps);
    max_delta = std::max(max_delta, p.delta);
    if (p.has_estimate) max_abs = std::max(max_abs, std::fabs(p.est_minus_own));
  }
  if (!any || kappa_min <= 0.0) return decision;

  // floor() via integer truncation: the ratio is non-negative, where the two
  // agree — and std::floor is a libm CALL at baseline x86-64, once per
  // re-evaluation. Huge ratios (corrupt clocks) saturate to level_cap.
  const double ratio = (max_abs + max_eps + max_delta) / kappa_min;
  const long long whole =
      ratio < 1e18 ? static_cast<long long>(ratio) : (1LL << 60);
  const int s_stop = std::min<long long>(level_cap, whole + 2);

  for (int s = 1; s <= s_stop; ++s) {
    // Accumulate the per-peer conditions branchlessly: the comparisons are
    // data-dependent (≈50% mispredict as branches) and this loop runs on
    // every re-evaluation. The boolean algebra is exactly the original
    // control flow: missing estimates block both certificates.
    bool member = false;
    bool fast_exists = false;
    bool fast_blocked = false;
    bool slow_exists = false;
    bool slow_blocked = false;
    const double sd = static_cast<double>(s);
    for (std::size_t i = 0; i < count; ++i) {
      const LevelPeer& p = peers[i];
      const bool in_level = p.level_limit >= s;
      member |= in_level;
      const bool certifiable = in_level & p.has_estimate;
      const bool no_estimate = in_level & !p.has_estimate;
      fast_blocked |= no_estimate;
      slow_blocked |= no_estimate;
      const double ahead = p.est_minus_own;    // L̃ᵥᵤ − L_u
      const double behind = -p.est_minus_own;  // L_u − L̃ᵥᵤ
      // Def. 4.5 (fast trigger).
      fast_exists |= certifiable & (ahead >= sd * p.kappa - p.eps);
      fast_blocked |=
          certifiable & (behind > sd * p.kappa + 2.0 * mu * p.tau + p.eps);
      // Def. 4.6 (slow trigger).
      slow_exists |=
          certifiable & (behind >= (sd + 0.5) * p.kappa - p.delta - p.eps);
      slow_blocked |= certifiable & (ahead > (sd + 0.5) * p.kappa + p.delta +
                                                 p.eps + mu * (1.0 + rho) * p.tau);
    }
    if (!member) break;  // neighbor sets are nested: higher levels are empty too
    if (fast_exists && !fast_blocked && !decision.fast) {
      decision.fast = true;
      decision.fast_level = s;
    }
    if (slow_exists && !slow_blocked && !decision.slow) {
      decision.slow = true;
      decision.slow_level = s;
    }
    if (decision.fast && decision.slow) break;  // Lemma 5.3 violation; caller asserts
  }
  return decision;
}

}  // namespace gcs
