// Tests for Sweep expansion and SweepRunner: cross-product semantics,
// thread-count-independent determinism, and per-run failure capture.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "runner/sweep.h"

namespace gcs {
namespace {

ScenarioSpec small_line() {
  ScenarioSpec spec;
  spec.n = 4;
  spec.topology = ComponentSpec("line");
  spec.edge_params = default_edge_params();
  spec.gtilde_auto = true;
  return spec;
}

TEST(Sweep, ExpandsCrossProductLastAxisFastest) {
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4, 8}).seeds({1, 2, 3});
  EXPECT_EQ(sweep.size(), 6u);
  const auto grid = sweep.expand();
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].axes.at("n"), "4");
  EXPECT_EQ(grid[0].axes.at("seed"), "1");
  EXPECT_EQ(grid[1].axes.at("seed"), "2");
  EXPECT_EQ(grid[3].axes.at("n"), "8");
  EXPECT_EQ(grid[3].spec.n, 8);
  EXPECT_EQ(grid[3].spec.seed, 1u);
}

TEST(Sweep, NoAxesMeansSingleRun) {
  Sweep sweep(small_line());
  EXPECT_EQ(sweep.expand().size(), 1u);
}

TEST(Sweep, RejectsEmptyAndDuplicateAxes) {
  Sweep sweep(small_line());
  EXPECT_THROW(sweep.axis("n", std::vector<int>{}), std::runtime_error);
  sweep.axis("n", std::vector<int>{4});
  EXPECT_THROW(sweep.axis("n", std::vector<int>{8}), std::runtime_error);
}

std::vector<RunResult> run_grid(int threads) {
  SweepOptions options;
  options.threads = threads;
  options.horizon = 60.0;
  options.sample_period = 5.0;
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4, 6, 8}).seeds({1, 2});
  return SweepRunner(options).run(sweep);
}

TEST(SweepRunner, DeterministicAcrossThreadCounts) {
  const auto serial = run_grid(1);
  const auto two = run_grid(2);
  const auto four = run_grid(4);
  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(two.size(), serial.size());
  ASSERT_EQ(four.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    EXPECT_EQ(serial[i].axes, two[i].axes);
    EXPECT_EQ(serial[i].n, two[i].n);
    // Identical RunResult metrics bit-for-bit, independent of scheduling.
    for (const auto* r : {&two[i], &four[i]}) {
      EXPECT_DOUBLE_EQ(serial[i].final_global, r->final_global);
      EXPECT_DOUBLE_EQ(serial[i].max_global, r->max_global);
      EXPECT_DOUBLE_EQ(serial[i].final_local, r->final_local);
      EXPECT_DOUBLE_EQ(serial[i].max_local, r->max_local);
      EXPECT_EQ(serial[i].legal, r->legal);
      EXPECT_DOUBLE_EQ(serial[i].legality_margin, r->legality_margin);
      EXPECT_EQ(serial[i].events, r->events);
    }
  }
}

TEST(SweepRunner, PerRunFailuresAreRecordedNotFatal) {
  auto base = small_line();
  base.gtilde_auto = false;
  base.aopt.gtilde_static = 5.0;
  Sweep sweep(base);
  // rho=0.2 violates eq. (7) for the default mu -> that run must fail while
  // the other two succeed.
  sweep.axis("rho", std::vector<double>{1e-3, 0.2, 2e-3});
  SweepOptions options;
  options.threads = 2;
  options.horizon = 30.0;
  const auto results = SweepRunner(options).run(sweep);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("AlgoParams"), std::string::npos)
      << results[1].error;
  EXPECT_TRUE(results[2].ok());
}

TEST(SweepRunner, CustomRunFnFillsValuesAndTable) {
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4, 5});
  SweepOptions options;
  options.threads = 2;
  SweepRunner runner(options);
  runner.set_run_fn([](Scenario& s, RunResult& r) {
    s.start();
    s.run_until(10.0);
    r.values["logical0"] = s.engine().logical(0);
  });
  const auto results = runner.run(sweep);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GT(r.values.at("logical0"), 9.0);
    EXPECT_GT(r.events, 0u);
  }
  const Table table = SweepRunner::to_table(results, "custom");
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(SweepRunner, WritesCsv) {
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4});
  SweepOptions options;
  options.horizon = 20.0;
  const auto results = SweepRunner(options).run(sweep);
  const std::string path = "sweep_test_out.csv";
  SweepRunner::write_csv(results, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("axis_n"), std::string::npos);
  EXPECT_NE(header.find("final_global"), std::string::npos);
  std::string row;
  std::getline(in, row);
  EXPECT_FALSE(row.empty());
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcs
