#include "runner/registries.h"

#include "clock/drift.h"
#include "core/algo_registry.h"
#include "estimate/estimate_source.h"
#include "graph/adversary.h"
#include "graph/topology.h"

namespace gcs {

namespace {

template <class Factory>
RegistryDescription describe(const Registry<Factory>& registry) {
  RegistryDescription out;
  out.family = registry.family();
  for (const auto& [name, entry] : registry.entries()) {
    out.components.push_back({entry.name, entry.description, entry.params});
  }
  return out;
}

}  // namespace

std::vector<RegistryDescription> describe_registries() {
  return {
      describe(topology_registry()),  describe(algo_registry()),
      describe(drift_registry()),     describe(estimate_registry()),
      describe(gskew_registry()),     describe(adversary_registry()),
  };
}

void print_registries(std::ostream& os) {
  for (const auto& family : describe_registries()) {
    os << family.family << ":\n";
    for (const auto& c : family.components) {
      os << "  " << c.name;
      if (!c.description.empty()) os << " — " << c.description;
      os << "\n";
      for (const auto& p : c.params) {
        os << "      " << p.name << " (default " << p.def << "): " << p.desc << "\n";
      }
    }
    os << "\n";
  }
}

}  // namespace gcs
