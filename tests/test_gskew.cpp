// Tests for the min-estimate flooding substrate and the distributed
// global-skew estimator (§7's eq. (5) realized without an oracle), plus the
// §3 reference-node mode.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/skew.h"
#include "runner/scenario.h"

namespace gcs {
namespace {

ScenarioSpec base(int n) {
  ScenarioSpec cfg;
  cfg.n = n;
  cfg.explicit_edges = topo_line(n);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  cfg.aopt.gtilde_static =
      suggest_gtilde(n, cfg.explicit_edges, cfg.edge_params, cfg.aopt);
  cfg.drift = ComponentSpec("spread");
  return cfg;
}

TEST(MinEstimate, IsLowerBoundOnMinimumClock) {
  Scenario s(base(8));
  s.start();
  for (int step = 1; step <= 60; ++step) {
    s.run_until(step * 5.0);
    double min_logical = kTimeInf;
    for (NodeId u = 0; u < 8; ++u) {
      min_logical = std::min(min_logical, s.engine().logical(u));
    }
    for (NodeId u = 0; u < 8; ++u) {
      EXPECT_LE(s.engine().min_estimate(u), min_logical + 1e-9)
          << "node " << u << " at t=" << s.sim().now();
    }
  }
}

TEST(MinEstimate, TracksMinimumWithinStaleness) {
  Scenario s(base(8));
  s.start();
  s.run_until(100.0);
  double min_logical = kTimeInf;
  for (NodeId u = 0; u < 8; ++u) {
    min_logical = std::min(min_logical, s.engine().logical(u));
  }
  // The flooded lower bound must not lag arbitrarily: within a couple of
  // diameters' worth of staleness in this mild regime.
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_GE(s.engine().min_estimate(u), min_logical - 2.0);
  }
}

TEST(MinEstimate, DownwardCorruptionClampsOwnEstimate) {
  Scenario s(base(6));
  s.start();
  s.run_until(50.0);
  // Drop a clock below the flooded lower bound: the node's *own* min
  // estimate must immediately respect the new value. (Other nodes'
  // estimates are NOT required to: downward jumps are outside the paper's
  // monotone-clock model, see Engine::corrupt_logical.)
  const double new_value = s.engine().logical(3) - 4.0;
  s.engine().corrupt_logical(3, new_value);
  EXPECT_LE(s.engine().min_estimate(3), new_value + 1e-9);
  // Upward corruption, in contrast, never breaks the bound anywhere: the
  // minimum only rises, and flooded lower bounds stay valid.
  Scenario s2(base(6));
  s2.start();
  s2.run_until(50.0);
  s2.engine().corrupt_logical(2, s2.engine().logical(2) + 3.0);
  s2.run_until(70.0);
  double min_logical = kTimeInf;
  for (NodeId u = 0; u < 6; ++u) {
    min_logical = std::min(min_logical, s2.engine().logical(u));
  }
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_LE(s2.engine().min_estimate(u), min_logical + 1e-9);
  }
}

struct DistributedCase {
  int n;
  const char* drift;
  std::uint64_t seed;
};

class DistributedGskewTest : public ::testing::TestWithParam<DistributedCase> {};

TEST_P(DistributedGskewTest, EstimateUpperBoundsTrueSkew) {
  const auto param = GetParam();
  auto cfg = base(param.n);
  cfg.drift = ComponentSpec(param.drift);
  cfg.gskew = ComponentSpec("distributed");
  cfg.seed = param.seed;
  Scenario s(cfg);
  s.start();
  // eq. (5): G̃_u(t) >= G(t) for all u and t — sampled densely.
  for (int step = 1; step <= 80; ++step) {
    s.run_for(7.0);
    const double g = s.engine().true_global_skew();
    for (NodeId u = 0; u < param.n; ++u) {
      const double est = s.engine().max_estimate(u) - s.engine().min_estimate(u);
      // The estimator adds a positive diameter hint on top of this.
      EXPECT_GE(est + 1e-9, 0.0);
    }
    // Probe through the actual estimator used by the algorithm: any node's
    // handshake would sample it; emulate via a fresh estimator equal to the
    // scenario's wiring.
    for (NodeId u = 0; u < param.n; ++u) {
      // The scenario's estimator is private; reconstruct its value.
      const double hint_est =
          s.engine().max_estimate(u) - s.engine().min_estimate(u);
      (void)hint_est;
    }
    // True check via AOPT: force an insertion and verify the G̃ recorded in
    // peer_info is >= G at handshake time (done in the dedicated test below).
    EXPECT_GE(g, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedGskewTest,
    ::testing::Values(DistributedCase{6, "spread", 1},
                      DistributedCase{10, "walk", 2},
                      DistributedCase{8, "blocks", 3}),
    [](const ::testing::TestParamInfo<DistributedCase>& info) {
      return "case" + std::to_string(info.param.seed);
    });

TEST(DistributedGskew, HandshakeRecordsValidEstimate) {
  auto cfg = base(6);
  cfg.aopt.mu = 0.1;
  cfg.aopt.insertion = InsertionPolicy::kStagedDynamic;
  cfg.aopt.B = 8.0;
  cfg.gskew = ComponentSpec("distributed");
  Scenario s(cfg);
  s.start();
  s.run_until(60.0);
  const double g_before = s.engine().true_global_skew();
  s.graph().create_edge(EdgeKey(0, 5), cfg.edge_params);
  s.run_until(75.0);
  const auto info = s.aopt(0).peer_info(5);
  ASSERT_TRUE(info.has_value());
  ASSERT_LT(info->t0, kTimeInf) << "handshake did not complete";
  // The recorded G̃ must dominate the true skew around handshake time.
  EXPECT_GE(info->gtilde, g_before);
  EXPECT_GT(info->gtilde, 0.0);
  // And both endpoints agreed (Lemma 5.5 I) despite node-local estimates.
  const auto info_b = s.aopt(5).peer_info(0);
  ASSERT_TRUE(info_b.has_value());
  EXPECT_DOUBLE_EQ(info->t0, info_b->t0);
  EXPECT_DOUBLE_EQ(info->gtilde, info_b->gtilde);
}

TEST(DistributedGskew, EstimatorAlgebra) {
  DistributedGskewEstimator est([](NodeId) { return 10.0; },
                                [](NodeId) { return 4.0; }, 2.0);
  EXPECT_DOUBLE_EQ(est.estimate(0), 8.0);
  EXPECT_FALSE(est.is_static());
  EXPECT_THROW(DistributedGskewEstimator([](NodeId) { return 0.0; },
                                         [](NodeId) { return 0.0; }, 0.0),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// §3 reference-node mode.
// ---------------------------------------------------------------------------

TEST(ReferenceNode, DriftWrapperBoostsExactlyOneNode) {
  auto inner = std::make_unique<LinearSpreadDrift>(0.01, 5);
  ReferenceNodeDrift wrapped(std::move(inner), 2);
  // Non-reference nodes unchanged.
  LinearSpreadDrift expect(0.01, 5);
  EXPECT_DOUBLE_EQ(wrapped.rate_at(0, 1.0), expect.rate_at(0, 1.0));
  EXPECT_DOUBLE_EQ(wrapped.rate_at(4, 1.0), expect.rate_at(4, 1.0));
  // Reference node boosted by (1+rho)/(1-rho).
  EXPECT_DOUBLE_EQ(wrapped.rate_at(2, 1.0),
                   expect.rate_at(2, 1.0) * 1.01 / 0.99);
  // Effective drift bound rho~ = (1+rho)^2/(1-rho) - 1.
  EXPECT_NEAR(wrapped.rho(), 1.01 * 1.01 / 0.99 - 1.0, 1e-12);
}

TEST(ReferenceNode, ReferenceAlwaysHoldsMaximumClock) {
  auto cfg = base(8);
  cfg.aopt.mu = 0.1;  // must exceed 2*rho~/(1-rho~)
  cfg.reference_node = 0;
  Scenario s(cfg);
  s.start();
  s.run_until(50.0);  // give the boost time to dominate initial noise
  for (int step = 0; step < 40; ++step) {
    s.run_for(10.0);
    double max_logical = -kTimeInf;
    for (NodeId u = 0; u < 8; ++u) {
      max_logical = std::max(max_logical, s.engine().logical(u));
    }
    EXPECT_NEAR(s.engine().logical(0), max_logical, 1e-9)
        << "reference node lost the maximum at t=" << s.sim().now();
  }
}

TEST(ReferenceNode, GlobalSkewStaysBounded) {
  auto cfg = base(8);
  cfg.aopt.mu = 0.1;
  cfg.reference_node = 0;
  Scenario s(cfg);
  s.start();
  double worst = 0.0;
  for (int step = 0; step < 50; ++step) {
    s.run_for(10.0);
    worst = std::max(worst, s.engine().true_global_skew());
  }
  EXPECT_LT(worst, cfg.aopt.gtilde_static);
}

TEST(ReferenceNode, RejectsWhenMuTooSmallForRhoTilde) {
  auto cfg = base(4);
  cfg.aopt.rho = 0.02;
  cfg.aopt.mu = 0.05;  // fine for rho, too small for rho~ ~ 3*rho = 0.06
  cfg.reference_node = 1;
  EXPECT_THROW(Scenario{cfg}, std::runtime_error);
}

}  // namespace
}  // namespace gcs
