// E15 — the estimate layer is the currency of the whole construction: κ_e
//   must exceed 4(ε_e + µτ_e) (eq. 9), so every gradient guarantee is
//   proportional to the estimate quality ε. This experiment sweeps the
//   beacon period and the delay jitter of the *message-based* estimate
//   provider, reports the derived ε (beacon_eps), the resulting κ and local
//   bound, and the measured worst estimate error and local skew — verifying
//   eq. (1) empirically and showing the bound degrade gracefully.
#include "exp_common.h"

#include "estimate/estimate_source.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = flags.get("n", 12);
  const double measure = flags.get("measure", 400.0);

  print_header("E15 exp_estimate_quality",
               "eq. (1)/(9): the gradient guarantee scales with the estimate "
               "layer's eps; beacon-based estimates verified against their "
               "derived error bound");

  Table table("E15 — beacon estimate sweep (line n=" + std::to_string(n) + ")");
  table.headers({"beacon period", "delay jitter", "derived eps", "kappa",
                 "local bound", "worst est err", "err <= eps", "worst local"});

  struct Sweep {
    double beacon;
    double delay_min;
    double delay_max;
  };
  for (const Sweep& sw : {Sweep{0.1, 0.08, 0.12}, Sweep{0.25, 0.05, 0.25},
                          Sweep{0.5, 0.1, 0.5}, Sweep{1.0, 0.0, 1.0}}) {
    ScenarioConfig cfg;
    cfg.n = n;
    cfg.initial_edges = topo_line(n);
    cfg.edge_params = default_edge_params(0.05, 0.25, sw.delay_max, sw.delay_min);
    cfg.aopt.rho = 1e-3;
    cfg.aopt.mu = 0.1;
    cfg.estimates = EstimateKind::kBeacon;
    cfg.engine.beacon_period = sw.beacon;
    cfg.engine.tick_period = sw.beacon;
    cfg.drift = DriftKind::kLinearSpread;
    cfg.aopt.gtilde_static =
        suggest_gtilde(n, cfg.initial_edges, cfg.edge_params, cfg.aopt);
    // κ grows with eps; the suggested G̃ already accounts for it because
    // suggest_gtilde uses the configured edge eps, so bump it by the ratio.
    const double eps =
        beacon_eps(cfg.edge_params, sw.beacon, cfg.aopt.rho, cfg.aopt.mu);
    {
      EdgeParams effective = cfg.edge_params;
      effective.eps = eps;
      cfg.aopt.gtilde_static =
          std::max(cfg.aopt.gtilde_static,
                   suggest_gtilde(n, cfg.initial_edges, effective, cfg.aopt));
    }
    Scenario s(cfg);
    s.start();
    const double kappa = metric_kappa(s.engine(), EdgeKey(0, 1));
    const double bound =
        gradient_bound(kappa, cfg.aopt.gtilde_static, cfg.aopt.sigma());

    s.run_until(50.0);  // warm up the estimate caches
    double worst_err = 0.0;
    double worst_local = 0.0;
    const Time start = s.sim().now();
    while (s.sim().now() < start + measure) {
      s.run_for(1.7);
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v : s.graph().view_neighbors(u)) {
          const auto est = s.estimate_of(u, v);
          if (!est.has_value()) continue;
          worst_err =
              std::max(worst_err, std::fabs(*est - s.engine().logical(v)));
        }
      }
      worst_local = std::max(worst_local, measure_skew(s.engine()).worst_local);
    }

    table.row()
        .cell(sw.beacon)
        .cell(sw.delay_max - sw.delay_min)
        .cell(eps)
        .cell(kappa)
        .cell(bound)
        .cell(worst_err)
        .cell(worst_err <= eps + 1e-9)
        .cell(worst_local);
  }
  table.print();
  std::cout << "paper: eq. (1) holds for every configuration (err <= eps), and\n"
               "the guarantee degrades linearly with the estimate quality —\n"
               "eq. (9)'s kappa > 4(eps + mu*tau) made concrete.\n";
  return 0;
}
