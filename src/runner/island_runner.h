// Island-parallel execution: run ONE scenario across worker threads.
//
// The dynamic graph is partitioned into weakly-coupled islands (see
// graph/partition.h); each island gets a full Scenario replica — identical
// spec, identical seed, so topology, adversary schedule, detection delays and
// drift streams replay bit-identically on every shard — whose Engine executes
// only the island's nodes (EngineConfig::local_mask) and mirrors the rest.
// Every shard owns its own Simulator, pinned to one worker thread.
//
// Shards advance in conservative synchronous windows of width
// Δ = msg_delay_min: each runs Simulator::run_before(W) (events strictly
// below the window end, armed instants flushed), then meets the others at a
// std::barrier whose completion step exchanges cross-island deliveries. A
// send to a non-local node is captured sender-side — WITH the sender-drawn
// per-edge delay, so the arrival instant is exactly what the serial engine
// would have computed — and injected into the owning shard's simulator at the
// barrier. Since every message takes at least Δ to arrive, a capture from
// window (W−Δ, W) lands at arrival >= W: injection at the W barrier can never
// violate causality.
//
// Determinism across 1/2/8 workers: captures are merged at each barrier in a
// canonical order — stable-sorted by (arrival, sent_at, from, to), where
// full-key ties can only originate from one sender shard in its serial send
// order — so the injected event sequence, and with it every fired-event
// trajectory, is invariant in the worker count. Scenarios whose spec is not
// island-decomposable (shared-stream delay or estimate RNG, oracle gskew,
// cut over budget, ...: the fallback matrix lives in plan_islands and
// docs/ARCHITECTURE.md) run the ordinary serial engine instead.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/partition.h"
#include "runner/scenario.h"

namespace gcs {

/// The resolved execution strategy for one spec.
struct IslandExecutionPlan {
  bool islands_enabled = false;  ///< false => run the serial engine
  std::string fallback_reason;   ///< why serial was chosen (diagnostics)
  int workers = 0;               ///< shard count when enabled
  IslandPlan partition;          ///< node -> island map + cut (when enabled)
};

/// Decide how `spec` executes with `requested` islands (the spec.islands
/// encoding: 0 = off, -1 = auto from the hardware, N >= 1 = exactly N).
/// Serial fallback triggers on, in order: islands off; auto on a single
/// hardware thread; service-mode local_node; delays=uniform (one shared
/// delay stream is not island-decomposable); estimates=uniform (same, for
/// the oracle error stream); zero msg_delay_min (no conservative window);
/// gskew=oracle (reads every node's live clock); a reference node;
/// coalesce=false; an infeasible partition (cut over budget, < 2 islands);
/// estimates zero/adversarial with a non-empty cut (their scans read
/// neighbors' live clocks, which are dead mirrors across islands). The
/// partition is computed over the t=0 topology — churn only toggles initial
/// edges (ChurnAdversary candidates), so the cut bounds every edge that can
/// ever exist.
IslandExecutionPlan plan_islands(const ScenarioSpec& spec, int requested);

/// plan_islands with requested = spec.islands.
inline IslandExecutionPlan plan_islands(const ScenarioSpec& spec) {
  return plan_islands(spec, spec.islands);
}

class IslandRunner {
 public:
  /// Build one shard per island. `plan` must be islands_enabled (from
  /// plan_islands on this spec). Shards are constructed but not started —
  /// attach tracing (engine/transport kernel-trace sinks) before run().
  IslandRunner(ScenarioSpec spec, IslandExecutionPlan plan);
  ~IslandRunner();

  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] Scenario& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const IslandExecutionPlan& plan() const { return plan_; }

  /// Start every shard and run all of them to `horizon` (inclusive, like
  /// Scenario::run_until), exchanging cross-island deliveries at window
  /// barriers. One worker thread per shard; blocks until all reach the
  /// horizon and the cross-island mailboxes drain. Single-shot: call once.
  void run(Time horizon);

 private:
  /// One cross-island send, captured sender-side with its delay resolved.
  struct CapturedSend {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    Time sent_at = 0.0;
    Time arrival = 0.0;
    Payload payload;
  };

  void shard_main(int i, Time horizon, Duration window);
  void exchange(Time horizon);

  ScenarioSpec spec_;
  IslandExecutionPlan plan_;
  std::vector<std::vector<std::uint8_t>> masks_;  ///< per-shard local masks
  std::vector<std::unique_ptr<Scenario>> shards_;
  std::vector<std::vector<CapturedSend>> outbox_;  ///< per-shard, shard-thread-local
  std::vector<CapturedSend> merge_scratch_;        ///< barrier-completion only

  // Barrier-phase shared state: written only inside the barrier completion
  // step (single-threaded, sequenced before any waiter resumes), read by the
  // shard threads between phases.
  class Sync;  ///< the std::barrier + flags (defined in the .cpp)
  Sync* sync_ = nullptr;
  bool ran_ = false;
};

}  // namespace gcs
