#include "estimate/estimate_source.h"

#include <cmath>

#include "estimate/rtt_estimate.h"

namespace gcs {

// ------------------------------------------------------------------ oracle

OracleEstimateSource::OracleEstimateSource(DynamicGraph& graph,
                                           OracleErrorPolicy policy,
                                           std::uint64_t seed)
    : graph_(graph), policy_(policy), rng_(seed) {}

std::optional<ClockValue> OracleEstimateSource::estimate(NodeId u, NodeId v) {
  require(clocks_ != nullptr, "OracleEstimateSource: bind() not called");
  const NeighborView* nv = graph_.find_neighbor(u, v);
  if (nv == nullptr) return std::nullopt;
  return estimate_present(u, v, nv->params->eps);
}

ClockValue OracleEstimateSource::estimate_present(NodeId u, NodeId v, double eps) {
  const ClockValue truth = clocks_->true_logical(v);
  // true_logical(u) advances u's lazy clock state; only the adversarial
  // policy may read it (perturb ignores `mine` otherwise, and an eager read
  // here would perturb the engine's float accumulation order).
  const ClockValue mine = policy_ == OracleErrorPolicy::kAdversarial
                              ? clocks_->true_logical(u)
                              : 0.0;
  return perturb(truth, mine, eps);
}

double OracleEstimateSource::eps(const EdgeKey& e) const {
  return graph_.params(e).eps;
}

// ------------------------------------------------------------------ beacon

double beacon_eps(const EdgeParams& e, double beacon_period, double rho, double mu) {
  const double receipt = (1.0 + rho) * (1.0 + mu) * e.msg_delay_max -
                         (1.0 - rho) * e.msg_delay_min;
  const double gap = beacon_period + e.delay_uncertainty();
  const double growth = (2.0 * rho + mu * (1.0 + rho)) * gap;
  return receipt + growth;
}

BeaconEstimateSource::BeaconEstimateSource(DynamicGraph& graph,
                                           double beacon_period, double rho,
                                           double mu)
    : graph_(graph), beacon_period_(beacon_period), rho_(rho), mu_(mu) {
  require(beacon_period > 0.0, "BeaconEstimateSource: beacon_period must be > 0");
}

std::optional<ClockValue> BeaconEstimateSource::estimate(NodeId u, NodeId v) {
  require(clocks_ != nullptr, "BeaconEstimateSource: bind() not called");
  if (graph_.find_neighbor(u, v) == nullptr) return std::nullopt;
  const auto it = entries_.find(key(u, v));
  if (it == entries_.end()) return std::nullopt;
  // Advance the snapshot at the receiver's own hardware rate: the estimate
  // error stays within beacon_eps() because the rate mismatch to the
  // neighbor's logical clock is bounded by 2ρ + µ(1+ρ).
  const ClockValue hw_elapsed = clocks_->true_hardware(u) - it->second.recv_hw;
  return it->second.base + hw_elapsed;
}

double BeaconEstimateSource::eps(const EdgeKey& e) const {
  return beacon_eps(graph_.params(e), beacon_period_, rho_, mu_);
}

void BeaconEstimateSource::on_beacon(const Delivery& d) {
  require(clocks_ != nullptr, "BeaconEstimateSource: bind() not called");
  const auto* beacon = std::get_if<Beacon>(d.payload);
  if (beacon == nullptr) return;
  Entry entry;
  entry.base = beacon->logical + (1.0 - rho_) * d.known_min_delay;
  entry.recv_hw = clocks_->true_hardware(d.to);
  entries_[key(d.to, d.from)] = entry;
}

void BeaconEstimateSource::on_edge_lost(NodeId u, NodeId peer) {
  entries_.erase(key(u, peer));
}

// --------------------------------------------------------------------------
// Registration.

namespace {

std::unique_ptr<EstimateSource> make_oracle(OracleErrorPolicy policy,
                                            const EstimateArgs& a) {
  return std::make_unique<OracleEstimateSource>(a.graph, policy, a.seed ^ 0xe57ULL);
}

void register_builtin_estimates(Registry<EstimateFactory>& r) {
  using E = Registry<EstimateFactory>::Entry;
  r.add(E{"zero", "oracle estimates with zero error", {},
          [](const ParamMap&, const EstimateArgs& a) {
            return make_oracle(OracleErrorPolicy::kZero, a);
          }});
  r.add(E{"uniform", "oracle estimates with uniform error in [-eps, eps]", {},
          [](const ParamMap&, const EstimateArgs& a) {
            return make_oracle(OracleErrorPolicy::kUniform, a);
          }});
  r.add(E{"adversarial",
          "oracle estimates shrinking the perceived skew by eps (slowest reaction)",
          {},
          [](const ParamMap&, const EstimateArgs& a) {
            return make_oracle(OracleErrorPolicy::kAdversarial, a);
          }});
  r.add(E{"beacon",
          "message-based estimates from periodic beacons (eps derived, eq. 1 checked in tests)",
          {},
          [](const ParamMap&, const EstimateArgs& a) -> std::unique_ptr<EstimateSource> {
            return std::make_unique<BeaconEstimateSource>(a.graph, a.beacon_period,
                                                          a.rho, a.mu);
          }});
  register_rtt_estimate(r);
}

void register_builtin_gskew(Registry<GskewFactory>& r) {
  using E = Registry<GskewFactory>::Entry;
  r.add(E{"static", "the a-priori constant G̃ of §4–§5 (eq. 6)", {},
          [](const ParamMap&, const GskewArgs& a) -> std::unique_ptr<GlobalSkewEstimator> {
            return std::make_unique<StaticGskewEstimator>(a.gtilde_static);
          }});
  r.add(E{"oracle",
          "§7 estimates assumed given: G̃_u = factor·G(t) + margin",
          {{"factor", "2", "multiplier on the true global skew (>= 1)"},
           {"margin", "1", "additive margin (>= 0)"}},
          [](const ParamMap& p, const GskewArgs& a) -> std::unique_ptr<GlobalSkewEstimator> {
            return std::make_unique<OracleGskewEstimator>(a.true_global_skew,
                                                          p.get_double("factor", 2.0),
                                                          p.get_double("margin", 1.0));
          }});
  r.add(E{"distributed",
          "§7 estimates computed from flooded max/min bounds plus a diameter hint",
          {{"hint", "0", "a-priori D̂ (0 = conservative bound from n and edge params)"}},
          [](const ParamMap& p, const GskewArgs& a) -> std::unique_ptr<GlobalSkewEstimator> {
            const double hint = p.get_double("hint", 0.0);
            return std::make_unique<DistributedGskewEstimator>(
                a.max_estimate, a.min_estimate,
                hint > 0.0 ? hint : a.default_diameter_hint);
          }});
}

}  // namespace

Registry<EstimateFactory>& estimate_registry() {
  static Registry<EstimateFactory>* registry = [] {
    auto* r = new Registry<EstimateFactory>("estimate source");
    register_builtin_estimates(*r);
    return r;
  }();
  return *registry;
}

Registry<GskewFactory>& gskew_registry() {
  static Registry<GskewFactory>* registry = [] {
    auto* r = new Registry<GskewFactory>("global-skew estimator");
    register_builtin_gskew(*r);
    return r;
  }();
  return *registry;
}

}  // namespace gcs
