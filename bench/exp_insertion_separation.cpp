// E8 — Lemma 7.1: with the dynamic-estimate insertion scheme (§7), the
//   logical insertion times of different edges/levels are separated by at
//   least min{I_e, I_e'} / (2^7 · 4^{min(s,s')-2}) (or coincide exactly when
//   s = s'). We run a live scenario with node-local dynamic G̃_u(t) oracles,
//   insert many chords at different times (thus different G̃ snapshots), and
//   check every pair of realized insertion times against the bound.
#include "exp_common.h"

#include <cmath>
#include <map>

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int n = flags.get("n", 12);
  const int chords = flags.get("chords", 10);

  print_header("E8 exp_insertion_separation",
               "Lemma 7.1: |T^e_s - T^e'_s'| >= min(I_e,I_e')/(2^7 4^{min(s,s')-2}) "
               "or exact coincidence at equal levels");

  ScenarioSpec spec = fast_line_spec(n);
  spec.name = "insertion-separation";
  spec.topology = ComponentSpec("ring");
  spec.aopt.insertion = InsertionPolicy::kStagedDynamic;
  spec.aopt.B = 8.0;  // practical B (eq. 12 wants an astronomically larger one)
  spec.gskew = ComponentSpec("oracle", ParamMap{{"factor", "2"}, {"margin", "1"}});
  Scenario s(spec);
  s.start();

  // Insert chords at staggered times so each handshake samples a different
  // dynamic G̃_u(t); vary the edge parameters so ℓ_e (and hence I_e) spans
  // several power-of-two buckets — the heterogeneous case of Lemma 7.1.
  const std::vector<EdgeParams> presets = {
      default_edge_params(0.05, 0.25, 0.5, 0.1),
      default_edge_params(0.1, 2.0, 4.0, 0.5),
      default_edge_params(0.2, 8.0, 20.0, 2.0),
  };
  Rng rng(2025);
  std::vector<EdgeKey> inserted;
  Time at = 40.0;
  for (int k = 0; k < chords; ++k) {
    const auto a = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<NodeId>((a + 2 + static_cast<NodeId>(rng.below(
                                                    static_cast<std::uint64_t>(n - 3)))) %
                                       n);
    if (a == b) continue;
    const EdgeKey e(a, b);
    if (s.graph().adversary_present(e)) continue;
    s.run_until(at);
    s.graph().create_edge(e, presets[static_cast<std::size_t>(k) % presets.size()]);
    inserted.push_back(e);
    at += rng.uniform(15.0, 45.0);
  }
  s.run_until(at + 250.0);  // let all handshakes complete (largest ∆ ~ 40)

  struct Agreed {
    EdgeKey e;
    double t0;
    double i;
  };
  std::vector<Agreed> agreed;
  for (const auto& e : inserted) {
    const auto info = s.aopt(e.a).peer_info(e.b);
    const auto info_b = s.aopt(e.b).peer_info(e.a);
    if (!info.has_value() || info->t0 == kTimeInf) continue;
    // Lemma 5.5 (I): both sides agreed on identical values.
    require(info_b.has_value() && info_b->t0 == info->t0,
            "endpoints disagree on T0 — Lemma 5.5 violated");
    agreed.push_back({e, info->t0, info->insertion_duration});
  }
  std::cout << "chords with completed handshakes: " << agreed.size() << "\n";

  auto ts_of = [](const Agreed& a, int level) {
    return a.t0 + (1.0 - std::exp2(1.0 - static_cast<double>(level))) * a.i;
  };

  const int max_level = 5;
  std::map<std::pair<int, int>, double> min_gap;
  std::map<std::pair<int, int>, double> min_bound;
  int violations = 0;
  int coincidences = 0;
  for (std::size_t x = 0; x < agreed.size(); ++x) {
    for (std::size_t y = x + 1; y < agreed.size(); ++y) {
      for (int sa = 1; sa <= max_level; ++sa) {
        for (int sb = 1; sb <= max_level; ++sb) {
          const double gap = std::fabs(ts_of(agreed[x], sa) - ts_of(agreed[y], sb));
          const double bound = std::min(agreed[x].i, agreed[y].i) /
                               (128.0 * std::pow(4.0, std::min(sa, sb) - 2));
          if (sa == sb && gap < 1e-9) {
            ++coincidences;
            continue;
          }
          const auto key = std::make_pair(std::min(sa, sb), std::max(sa, sb));
          if (!min_gap.count(key) || gap < min_gap[key]) {
            min_gap[key] = gap;
            min_bound[key] = bound;
          }
          if (gap < bound * (1.0 - 1e-9)) ++violations;
        }
      }
    }
  }

  Table table("E8 — minimum observed separation per level pair");
  table.headers({"(s,s')", "min |T^e_s - T^e'_s'|", "Lemma 7.1 bound", "ratio"});
  for (const auto& [key, gap] : min_gap) {
    table.row()
        .cell("(" + std::to_string(key.first) + "," + std::to_string(key.second) + ")")
        .cell(gap)
        .cell(min_bound[key])
        .cell(gap / min_bound[key]);
  }
  table.print();
  std::cout << "separation violations: " << violations
            << " (paper: 0)\nexact same-level coincidences (allowed): "
            << coincidences << "\n";
  return violations == 0 ? 0 : 1;
}
