// Per-edge parameters of the estimate graph (paper §3.1).
#pragma once

#include "util/common.h"

namespace gcs {

/// The three parameters the paper attaches to every (undirected) estimate
/// edge, plus the transport's minimum delay (which determines the delay
/// uncertainty U <= msg_delay_max - msg_delay_min).
struct EdgeParams {
  double eps = 0.1;             ///< estimate uncertainty ε_e (eq. 1)
  double tau = 0.5;             ///< detection-delay bound τ_e
  double msg_delay_max = 0.5;   ///< message delay bound T_e
  double msg_delay_min = 0.1;   ///< transport lower bound (0 allowed)

  [[nodiscard]] double delay_uncertainty() const { return msg_delay_max - msg_delay_min; }

  void validate() const {
    require(eps > 0.0, "EdgeParams: eps must be > 0");
    require(tau >= 0.0, "EdgeParams: tau must be >= 0");
    require(msg_delay_min >= 0.0 && msg_delay_min <= msg_delay_max,
            "EdgeParams: need 0 <= msg_delay_min <= msg_delay_max");
  }
};

}  // namespace gcs
