// The execution engine: owns per-node clock state (hardware clock H_u,
// logical clock L_u, max estimate M_u), drives drift changes, beacons,
// re-evaluation ticks and exact logical-time target events, and dispatches
// graph/transport events to per-node algorithm instances.
//
// All continuous dynamics in the model are piecewise linear, so the engine
// simulates them *exactly*: clock values are lazily integrated and
// crossings that matter to the protocol (neighbor-set insertion times T_s,
// the moment M_u is caught by L_u) are computed analytically and scheduled
// as events. Trigger threshold crossings that involve other nodes' estimates
// are handled by guard-banded re-evaluation plus a periodic tick, exactly as
// the paper's footnote 6 prescribes for implementations. Evaluation is
// *instant-coalesced* by default (EngineConfig::coalesce_instants): within
// one simulated instant every delivery/timer effect applies first, and each
// node whose discrete trigger inputs changed is evaluated exactly once when
// the kernel closes the instant — the paper's per-instant semantics, one
// AOPT scan per (node, instant) instead of one per event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include <stdexcept>

#include "clock/drift.h"
#include "core/params.h"
#include "estimate/estimate_source.h"
#include "graph/dynamic_graph.h"
#include "net/transport.h"
#include "sim/event.h"
#include "sim/simulator.h"

namespace gcs {

class Engine;

/// Per-node facade through which an algorithm interacts with the world.
class NodeApi {
 public:
  NodeApi(Engine& engine, NodeId id) : engine_(engine), id_(id) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Time now() const;
  [[nodiscard]] const AlgoParams& algo_params() const;

  /// Current clock values (lazily advanced to now).
  ClockValue logical();
  ClockValue hardware();
  ClockValue max_estimate();
  /// True iff M_u == L_u (maintained symbolically, no float equality).
  [[nodiscard]] bool max_locked() const;

  [[nodiscard]] double rate_multiplier() const;
  void set_rate_multiplier(double mult);
  /// Discontinuous clock jump (used by baselines and fault injection).
  void set_logical_value(ClockValue v);

  /// Neighbors in this node's current view (N_u(t)), sorted by peer id.
  [[nodiscard]] const std::vector<NeighborView>& neighbors() const;
  [[nodiscard]] Time neighbor_since(NodeId peer) const;
  [[nodiscard]] const EdgeParams& edge_params(NodeId peer) const;

  /// Estimate layer access (eq. 1).
  std::optional<ClockValue> neighbor_estimate(NodeId peer);
  /// Like neighbor_estimate, for callers that know the peer is currently in
  /// this node's view and know the edge's ε (algorithms cache both): lets
  /// the oracle source skip its graph lookup. Identical results.
  std::optional<ClockValue> neighbor_estimate_present(NodeId peer, double eps);
  [[nodiscard]] double edge_eps(NodeId peer) const;

  /// Listing 1 line 9. Returns false if the edge is absent from our view.
  bool send_insert_edge(NodeId peer, ClockValue l_ins, double gtilde);

  /// G̃_u(t).
  double global_skew_estimate();

  /// Run `fn` when this node's logical clock reaches `target` (exact).
  void schedule_at_logical(ClockValue target, std::function<void()> fn);
  /// Run `fn` after `dt` real time.
  void schedule_after(Duration dt, std::function<void()> fn);

  // ---- incremental re-evaluation fast paths (defined after Engine) ----
  /// The engine's estimate source, downcast to a built-in type, or nullptr.
  /// A non-null pointer licenses the corresponding inline read path below;
  /// both null means the algorithm must use neighbor_estimate (generic).
  [[nodiscard]] OracleEstimateSource* oracle_source() const;
  [[nodiscard]] BeaconEstimateSource* beacon_source() const;
  /// True logical clock of a peer, advanced exactly as the oracle source's
  /// ClockAccess read would (mutating v's lazy integration state — call it
  /// precisely where estimate_present would have been called).
  ClockValue peer_true_logical(NodeId v);
  /// Own hardware clock value, without re-advancing: valid inside
  /// Algorithm::reevaluate(), which the engine always enters with this
  /// node's clocks integrated to now().
  [[nodiscard]] ClockValue own_hardware_value() const;

 private:
  Engine& engine_;
  NodeId id_;
};

/// A clock synchronization algorithm instance (one per node).
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  void attach(NodeApi* api) { api_ = api; }

  [[nodiscard]] virtual const char* name() const = 0;

  /// Called once when the engine starts (after the t=0 topology exists).
  virtual void init() {}
  virtual void on_edge_discovered(NodeId peer) { (void)peer; }
  virtual void on_edge_lost(NodeId peer) { (void)peer; }
  virtual void on_insert_edge_msg(NodeId from, const InsertEdgeMsg& msg) {
    (void)from, (void)msg;
  }
  /// The *discrete* state behind `peer`'s estimate changed (a beacon from
  /// `peer` was consumed by the estimate layer). Incremental algorithms use
  /// this to invalidate cached estimate snapshots; a reevaluate() follows.
  virtual void on_estimate_dirty(NodeId peer) { (void)peer; }

  /// Re-decide the mode (rate multiplier). Called after every event
  /// affecting this node and on every tick.
  virtual void reevaluate() = 0;

  // ---- introspection used by metrics (defaults suit non-gradient baselines)

  /// Is `peer` in this node's level-s neighbor set N^s_u right now?
  [[nodiscard]] virtual bool edge_in_level(NodeId peer, int s) const {
    (void)peer, (void)s;
    return false;
  }
  /// Current κ of the edge to `peer` (0 if not applicable).
  [[nodiscard]] virtual double edge_kappa(NodeId peer) const {
    (void)peer;
    return 0.0;
  }

 protected:
  NodeApi* api_ = nullptr;
};

struct EngineConfig {
  Duration tick_period = 0.25;    ///< re-evaluation cadence (real time)
  Duration beacon_period = 0.25;  ///< beacon cadence (real time)
  bool enable_beacons = true;     ///< M flooding + beacon estimates
  /// Instant-coalesced trigger evaluation (the paper's per-instant
  /// semantics): within one simulated instant, apply every delivery/timer
  /// effect first and run Algorithm::reevaluate() exactly once per *dirty*
  /// node when the kernel closes the instant. A node is dirty when discrete
  /// trigger input changed (estimate consumed, M/lock transition, edge or
  /// handshake event, logical target, tick). Deliveries that change nothing
  /// discrete no longer trigger a scan — continuous drift between discrete
  /// changes is covered by the tick guard band (paper footnote 6), exactly
  /// as before. `false` restores the legacy evaluate-after-every-event
  /// behavior (used by the per-event/per-instant equivalence tests).
  bool coalesce_instants = true;
  /// Service mode (src/rt): when set, this engine instance *executes* only
  /// the named node — init, timers and trigger evaluation run for it alone,
  /// and every other node exists purely as an addressing/topology mirror
  /// whose clock slots are dead data (its estimates come over the wire).
  /// kNoNode (the default) executes every node: simulation mode, bit-exact
  /// with the pre-rt engine.
  NodeId local_node = kNoNode;
  /// Island mode (src/runner/island_runner): the many-node generalization of
  /// local_node. When non-empty (one byte per node, nonzero = local), this
  /// engine instance executes exactly the masked nodes and mirrors the rest,
  /// same semantics as local_node. Programmatic only — never serialized into
  /// spec strings (the runner derives it from the island plan). Combines
  /// with local_node conjunctively, though in practice only one is set.
  std::vector<std::uint8_t> local_mask;
};

/// Passive instrumentation: notified of the engine's discrete transitions.
/// Used by the execution tracer; all callbacks default to no-ops.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_mode_change(Time t, NodeId u, double old_mult, double new_mult) {
    (void)t, (void)u, (void)old_mult, (void)new_mult;
  }
  virtual void on_logical_jump(Time t, NodeId u, ClockValue from, ClockValue to) {
    (void)t, (void)u, (void)from, (void)to;
  }
  virtual void on_max_estimate_raised(Time t, NodeId u, ClockValue value) {
    (void)t, (void)u, (void)value;
  }
};

class Engine final : public DynamicGraph::Listener,
                     public ClockAccess,
                     public EventDispatcher,
                     public DeliverySink,
                     public ProbeSender {
 public:
  using AlgorithmFactory = std::function<std::unique_ptr<Algorithm>(NodeId)>;

  Engine(Simulator& sim, DynamicGraph& graph, Transport& transport,
         DriftModel& drift, EstimateSource& estimates,
         GlobalSkewEstimator& gskew, AlgoParams params, EngineConfig config,
         const AlgorithmFactory& factory);

  /// Schedule ticks/beacons/drift events and run algorithm init().
  /// The t=0 topology must already exist. Call exactly once, at time 0.
  void start();

  /// Attach a passive observer (nullptr to detach).
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Probe of the engine's event firings (time, node, kind); nullptr detaches.
  void set_kernel_trace(KernelTraceSink* trace) { trace_ = trace; }

  // ------------------------------------------------------------- queries
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] DynamicGraph& graph() { return graph_; }
  [[nodiscard]] const AlgoParams& params() const { return params_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  // Clock reads are defined inline (after the class): they run several
  // times per event inside the re-evaluation scan.
  ClockValue logical(NodeId u);
  /// Logical clock of u extrapolated to now() WITHOUT advancing the lazy
  /// integration state — a pure read for passive observers (the trajectory
  /// fingerprinter). logical(u) advances (mutates) the accumulation state,
  /// so an observer calling it would change the float path of the very run
  /// it observes; this read is guaranteed side-effect-free.
  [[nodiscard]] ClockValue peek_logical(NodeId u) const;
  ClockValue hardware(NodeId u);
  ClockValue max_estimate(NodeId u);
  /// Flooded lower bound on the network-wide minimum logical clock
  /// (symmetric to M_u; substrate for distributed G̃_u(t), §7).
  ClockValue min_estimate(NodeId u);
  /// ε_e the estimate layer guarantees for this edge (metrics access).
  [[nodiscard]] double edge_eps(const EdgeKey& e) const { return estimates_.eps(e); }
  /// κ_e as the metrics layer defines it: AOPT's eq. 9 derivation from the
  /// edge params with the estimate layer's ε. Cached per edge — edge params
  /// and ε are fixed for an edge's lifetime — and invalidated on rediscovery
  /// so recorder-heavy runs stop re-deriving constants O(edges) per sample.
  [[nodiscard]] double metric_kappa(const EdgeKey& e);
  [[nodiscard]] bool max_locked(NodeId u) const;
  [[nodiscard]] double rate_multiplier(NodeId u) const;
  [[nodiscard]] double hardware_rate(NodeId u) const;
  Algorithm& algorithm(NodeId u);

  /// max_u L_u - min_u L_u at the current instant.
  double true_global_skew();

  /// Fault injection: overwrite L_u (M_u is raised to keep M >= L, and the
  /// node's own min estimate is lowered if needed). Note: a *downward*
  /// corruption leaves the model — logical clocks are monotone in §3 — so
  /// flooded bounds at *other* nodes (Condition 4.3's M <= max L and the min
  /// mirror) may be transiently unsound afterwards.
  void corrupt_logical(NodeId u, ClockValue value);
  /// Fault injection: overwrite M_u (clamped to >= L_u).
  void corrupt_max_estimate(NodeId u, ClockValue value);

  // ---------------------------------------------------------- ClockAccess
  ClockValue true_logical(NodeId u) override { return logical(u); }
  ClockValue true_hardware(NodeId u) override { return hardware(u); }

  // ---------------------------------------------------------- ProbeSender
  bool send_time_request(NodeId from, NodeId to, const TimeRequest& req) override;

  // ------------------------------------------------- DynamicGraph::Listener
  void on_edge_discovered(NodeId u, NodeId peer) override;
  void on_edge_lost(NodeId u, NodeId peer) override;

  // ------------------------------------------------------- EventDispatcher
  /// Typed-event switch: the kernel hands back Tick/Beacon/DriftChange/
  /// MLockCatch/LogicalTarget records scheduled by this engine. Hot events
  /// arrive through the registered dispatch channel (a direct call — Engine
  /// is final); this virtual override remains as the escape-hatch arm.
  void dispatch(const SimEvent& ev) override;

 private:
  friend class NodeApi;

  /// A pending schedule_at_logical() callback. Per node, targets form a
  /// 4-ary-free binary min-heap ordered by (target value, seq), which
  /// preserves the fire order of the former multimap (key order, insertion
  /// order among equal keys) without a node allocation per target.
  struct LogicalTarget {
    ClockValue at = 0.0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct LogicalTargetOrder {  // std::*_heap comparator => min-heap
    bool operator()(const LogicalTarget& a, const LogicalTarget& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// The four piecewise-linear clocks of one node — hardware H_u, logical
  /// L_u, max estimate M_u, min estimate m_u — stored structure-of-arrays
  /// with one shared last-update instant, so a single advance integrates all
  /// four (vectorizable, one branch). The per-clock arithmetic is identical
  /// to PiecewiseLinearClock. M_u is integrated even while locked (its slot
  /// is dead data then: every unlock transition rewrites value and rate).
  struct NodeClocks {
    enum : int { kHw = 0, kLog = 1, kMax = 2, kMin = 3 };
    double value[4] = {0.0, 0.0, 0.0, 0.0};
    double rate[4] = {1.0, 1.0, 1.0, 1.0};
    Time last = 0.0;

    void advance(Time t) {
      if (t < last) {
        require(last - t <= 1e-9 * (last + 1.0), "NodeClocks: time went backwards");
        return;
      }
      const double dt = t - last;
      value[0] += rate[0] * dt;
      value[1] += rate[1] * dt;
      value[2] += rate[2] * dt;
      value[3] += rate[3] * dt;
      last = t;
    }
    [[nodiscard]] double value_at(int clock, Time t) const {
      return value[clock] + rate[clock] * (t - last);
    }
    /// Advance to t, then change one clock's rate / override one value.
    void set_rate(Time t, int clock, double r) {
      advance(t);
      rate[clock] = r;
    }
    void set_value(Time t, int clock, double v) {
      advance(t);
      value[clock] = v;
    }
    /// Time at which `clock` reaches `target` (>= its value), assuming the
    /// rate never changes. Requires a positive rate.
    [[nodiscard]] Time time_of_value(int clock, double target) const {
      if (rate[clock] <= 0.0) throw std::logic_error("time_of_value: non-positive rate");
      if (target <= value[clock]) return last;
      return last + (target - value[clock]) / rate[clock];
    }
  };

  /// The hot per-node record: the four clocks plus the two scalars read on
  /// every clock access, stored in a DENSE array separate from the cold
  /// NodeState. Every event advances the clocks of several nodes (receiver
  /// plus scanned peers), so packing them 96 bytes apart instead of inside
  /// the ~180-byte NodeState roughly halves the cache lines that scan
  /// touches — the engine-side counterpart of the kernel's SoA slots.
  struct NodeHot {
    NodeClocks clocks;
    double mult = 1.0;
    bool m_locked = true;  ///< M_u == L_u
  };

  /// Per-node cold state, stored contiguously by value (nodes_ is sized once
  /// in the constructor and never resized: NodeApi/algorithm pointers into
  /// it must stay stable).
  struct NodeState {
    NodeState(Engine& engine, NodeId u) : api(engine, u) {}

    NodeApi api;
    std::unique_ptr<Algorithm> algo;
    std::vector<LogicalTarget> logical_targets;  ///< min-heap, see above
    EventId logical_event{};
    EventId mlock_event{};
    bool in_reevaluate = false;  ///< reentrancy guard
    bool dirty = false;          ///< queued for the end-of-instant evaluation
  };

  // Unchecked on purpose: node()/hot() run several times per event, and
  // every caller passes an id that came from the engine/graph (0 <= u < size()).
  NodeState& node(NodeId u) { return nodes_[static_cast<std::size_t>(u)]; }
  [[nodiscard]] const NodeState& node(NodeId u) const {
    return nodes_[static_cast<std::size_t>(u)];
  }
  NodeHot& hot(NodeId u) { return hot_[static_cast<std::size_t>(u)]; }
  [[nodiscard]] const NodeHot& hot(NodeId u) const {
    return hot_[static_cast<std::size_t>(u)];
  }

  /// Integrate all three clocks of u up to now.
  void advance(NodeId u);
  /// M_u rate while unlocked: (1-rho)/(1+rho) * h_u (paper §4.2).
  [[nodiscard]] double unlocked_max_rate(const NodeHot& n) const;
  void apply_drift(NodeId u);
  void schedule_drift(NodeId u);
  void schedule_tick(NodeId u, Duration delay);
  void schedule_beacon(NodeId u, Duration delay);
  void fire_beacon(NodeId u);
  void add_logical_target(NodeId u, ClockValue target, std::function<void()> fn);
  void reschedule_logical_event(NodeId u);
  void fire_logical_targets(NodeId u);
  void reschedule_mlock(NodeId u);
  void fire_mlock(NodeId u);
  /// Returns true iff the candidate changed M_u or its lock state (i.e. the
  /// max-estimate trigger inputs moved discretely).
  bool apply_max_candidate(NodeId u, ClockValue candidate);
  void set_rate_multiplier(NodeId u, double mult);
  void set_logical_value(NodeId u, ClockValue v);
  void reevaluate(NodeId u);
  /// Queue `u` for one reevaluate() at the end of the current instant
  /// (coalesced mode), or reevaluate immediately (legacy mode).
  void mark_dirty(NodeId u);
  /// Kernel instant-flush hook body: reevaluate every dirty node, FIFO in
  /// first-dirtied order (deterministic: event order within the instant).
  void flush_dirty();
  void on_delivery(const Delivery& d) override;  // DeliverySink

  Simulator& sim_;
  DynamicGraph& graph_;
  Transport& transport_;
  DriftModel& drift_;
  EstimateSource& estimates_;
  /// Devirtualization fast paths: non-null iff estimates_ is the matching
  /// built-in source (oracle is the default for large sweeps). Calling
  /// through the final class lets the whole estimate inline into the
  /// re-evaluation loop; AoptNode's incremental scan uses the same pointers
  /// via NodeApi::oracle_source()/beacon_source().
  OracleEstimateSource* oracle_estimates_ = nullptr;
  BeaconEstimateSource* beacon_estimates_ = nullptr;
  bool estimates_consume_beacons_ = false;
  GlobalSkewEstimator& gskew_;
  AlgoParams params_;
  EngineConfig config_;
  /// Does this engine instance execute node `u` (vs mirror it)? Service mode
  /// gates on local_node, island mode on local_mask; the default — neither
  /// set — executes everything.
  [[nodiscard]] bool is_local(NodeId u) const {
    if (config_.local_node != kNoNode && u != config_.local_node) return false;
    return config_.local_mask.empty() ||
           config_.local_mask[static_cast<std::size_t>(u)] != 0;
  }
  void trace(EventKind kind, NodeId u) {
    if (trace_ != nullptr) trace_->on_event_fired(sim_.now(), u, kind);
  }

  std::uint8_t channel_ = kNoChannel;  ///< registered dispatch channel
  std::vector<NodeHot> hot_;      ///< dense per-node clocks (see NodeHot)
  std::vector<NodeState> nodes_;  ///< contiguous; fixed size after ctor
  std::unordered_map<EdgeKey, double, EdgeKeyHash> kappa_cache_;  ///< see metric_kappa
  std::uint64_t next_target_seq_ = 1;
  std::vector<NodeId> dirty_queue_;  ///< nodes awaiting end-of-instant evaluation
  std::vector<LogicalTarget> due_scratch_;  ///< reused by fire_logical_targets
  EngineObserver* observer_ = nullptr;
  KernelTraceSink* trace_ = nullptr;
  bool started_ = false;
  bool merged_heartbeat_ = false;  ///< tick+beacon share one timer (see start())
};

// ---------------------------------------------------------------------------
// Engine hot-path inlines (clock reads used several times per event).

inline void Engine::advance(NodeId u) {
  NodeHot& n = hot(u);
  const Time t = sim_.now();
  // Most events advance the same node several times at one instant
  // (delivery -> max candidate -> reevaluate); integrating is idempotent,
  // so skip the repeat work.
  if (n.clocks.last == t) return;
  n.clocks.advance(t);
}

inline ClockValue Engine::logical(NodeId u) {
  advance(u);
  return hot(u).clocks.value[NodeClocks::kLog];
}

inline ClockValue Engine::hardware(NodeId u) {
  advance(u);
  return hot(u).clocks.value[NodeClocks::kHw];
}

inline ClockValue Engine::peek_logical(NodeId u) const {
  return hot(u).clocks.value_at(NodeClocks::kLog, sim_.now());
}

inline ClockValue Engine::max_estimate(NodeId u) {
  advance(u);
  NodeHot& n = hot(u);
  return n.m_locked ? n.clocks.value[NodeClocks::kLog] : n.clocks.value[NodeClocks::kMax];
}

inline ClockValue Engine::min_estimate(NodeId u) {
  advance(u);
  return hot(u).clocks.value[NodeClocks::kMin];
}

// ---------------------------------------------------------------------------
// NodeApi hot-path inlines (need the full Engine definition). These exist so
// the incremental re-evaluation scan does not depend on LTO to flatten the
// NodeApi -> Engine -> estimate-source call chain.

inline Time NodeApi::now() const { return engine_.sim_.now(); }
inline ClockValue NodeApi::logical() { return engine_.logical(id_); }
inline ClockValue NodeApi::hardware() { return engine_.hardware(id_); }
inline ClockValue NodeApi::max_estimate() { return engine_.max_estimate(id_); }
inline bool NodeApi::max_locked() const { return engine_.max_locked(id_); }
inline double NodeApi::rate_multiplier() const { return engine_.hot(id_).mult; }

inline OracleEstimateSource* NodeApi::oracle_source() const {
  return engine_.oracle_estimates_;
}

inline BeaconEstimateSource* NodeApi::beacon_source() const {
  return engine_.beacon_estimates_;
}

inline ClockValue NodeApi::peer_true_logical(NodeId v) {
  // Exactly Engine::logical(v): the advance mutates the peer's lazy clock
  // state on purpose — skipping it would change the float accumulation path
  // of later reads.
  return engine_.logical(v);
}

inline ClockValue NodeApi::own_hardware_value() const {
  return engine_.hot_[static_cast<std::size_t>(id_)]
      .clocks.value[Engine::NodeClocks::kHw];
}

}  // namespace gcs
