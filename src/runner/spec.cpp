#include "runner/spec.h"

#include <sstream>

#include "clock/drift.h"
#include "core/algo_registry.h"
#include "estimate/estimate_source.h"
#include "graph/adversary.h"
#include "graph/topology.h"

namespace gcs {

ComponentSpec ComponentSpec::parse(const std::string& text) {
  require(!text.empty(), "ComponentSpec: empty component text");
  ComponentSpec out;
  const std::size_t colon = text.find(':');
  out.kind = text.substr(0, colon);
  require(!out.kind.empty(), "ComponentSpec: missing kind in '" + text + "'");
  if (colon == std::string::npos) return out;
  for (const std::string& token : split(text.substr(colon + 1), ',')) {
    const std::size_t eq = token.find('=');
    require(eq != std::string::npos && eq > 0,
            "ComponentSpec: expected key=value, got '" + token + "' in '" + text + "'");
    out.params.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return out;
}

std::string ComponentSpec::str() const {
  return params.empty() ? kind : kind + ":" + params.str();
}

namespace {

/// Parse helpers shared by set(): the strict scalar parsers with a
/// "spec: <key>" error context.
double to_double(const std::string& key, const std::string& value) {
  return parse_strict_double("spec: " + key, value);
}

int to_int(const std::string& key, const std::string& value) {
  return parse_strict_int("spec: " + key, value);
}

std::uint64_t to_u64(const std::string& key, const std::string& value) {
  return parse_strict_u64("spec: " + key, value);
}

bool to_bool(const std::string& key, const std::string& value) {
  return parse_strict_bool("spec: " + key, value);
}

InsertionPolicy parse_insertion(const std::string& value) {
  if (value == "staged") return InsertionPolicy::kStagedStatic;
  if (value == "dynamic") return InsertionPolicy::kStagedDynamic;
  if (value == "immediate") return InsertionPolicy::kImmediate;
  if (value == "decay") return InsertionPolicy::kWeightDecay;
  throw std::runtime_error(
      "spec: insertion: expected staged|dynamic|immediate|decay, got '" + value + "'");
}

std::string insertion_str(InsertionPolicy policy) {
  switch (policy) {
    case InsertionPolicy::kStagedStatic: return "staged";
    case InsertionPolicy::kStagedDynamic: return "dynamic";
    case InsertionPolicy::kImmediate: return "immediate";
    case InsertionPolicy::kWeightDecay: return "decay";
  }
  return "?";
}

DetectionDelayMode parse_detection(const std::string& value) {
  if (value == "zero") return DetectionDelayMode::kZero;
  if (value == "uniform") return DetectionDelayMode::kUniform;
  if (value == "max") return DetectionDelayMode::kMax;
  throw std::runtime_error("spec: detection: expected zero|uniform|max, got '" + value + "'");
}

std::string detection_str(DetectionDelayMode mode) {
  switch (mode) {
    case DetectionDelayMode::kZero: return "zero";
    case DetectionDelayMode::kUniform: return "uniform";
    case DetectionDelayMode::kMax: return "max";
  }
  return "?";
}

DelayMode parse_delays(const std::string& value) {
  if (value == "uniform") return DelayMode::kUniform;
  if (value == "min") return DelayMode::kMin;
  if (value == "max") return DelayMode::kMax;
  if (value == "edge-uniform") return DelayMode::kEdgeUniform;
  throw std::runtime_error(
      "spec: delays: expected uniform|min|max|edge-uniform, got '" + value + "'");
}

std::string delays_str(DelayMode mode) {
  switch (mode) {
    case DelayMode::kUniform: return "uniform";
    case DelayMode::kMin: return "min";
    case DelayMode::kMax: return "max";
    case DelayMode::kEdgeUniform: return "edge-uniform";
  }
  return "?";
}

std::string islands_str(int islands) {
  if (islands == 0) return "off";
  if (islands < 0) return "auto";
  return std::to_string(islands);
}

}  // namespace

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  // Dotted component params: "<component>.<param>=<value>".
  const std::size_t dot = key.find('.');
  if (dot != std::string::npos) {
    const std::string head = key.substr(0, dot);
    const std::string param = key.substr(dot + 1);
    require(!param.empty(), "spec: empty param name in '" + key + "'");
    ComponentSpec* component = nullptr;
    if (head == "topo" || head == "topology") component = &topology;
    else if (head == "algo") component = &algo;
    else if (head == "drift") component = &drift;
    else if (head == "estimates") component = &estimates;
    else if (head == "gskew") component = &gskew;
    else if (head == "adversary") component = &adversary;
    if (component == nullptr) {
      throw std::runtime_error("spec: unknown component '" + head + "' in '" + key + "'");
    }
    component->params.set(param, value);
    return;
  }

  // Components.
  if (key == "topo" || key == "topology") { topology = ComponentSpec::parse(value); return; }
  if (key == "algo") { algo = ComponentSpec::parse(value); return; }
  if (key == "drift") { drift = ComponentSpec::parse(value); return; }
  if (key == "estimates") { estimates = ComponentSpec::parse(value); return; }
  if (key == "gskew") { gskew = ComponentSpec::parse(value); return; }
  if (key == "adversary") { adversary = ComponentSpec::parse(value); return; }

  // Identity.
  if (key == "name") { name = value; return; }
  if (key == "n") { n = to_int(key, value); return; }
  if (key == "seed") { seed = to_u64(key, value); return; }

  // Algorithm parameters.
  if (key == "rho") { aopt.rho = to_double(key, value); return; }
  if (key == "mu") { aopt.mu = to_double(key, value); return; }
  if (key == "iota") { aopt.iota = to_double(key, value); return; }
  if (key == "kappa_slack") { aopt.kappa_slack = to_double(key, value); return; }
  if (key == "delta_frac") { aopt.delta_frac = to_double(key, value); return; }
  if (key == "B") { aopt.B = to_double(key, value); return; }
  if (key == "level_cap") { aopt.level_cap = to_int(key, value); return; }
  if (key == "insertion") { aopt.insertion = parse_insertion(value); return; }
  if (key == "gtilde") {
    if (value == "auto") { gtilde_auto = true; return; }
    const double v = to_double(key, value);
    if (v <= 0.0) { gtilde_auto = true; return; }
    gtilde_auto = false;
    aopt.gtilde_static = v;
    return;
  }

  // Edge parameters.
  if (key == "eps") { edge_params.eps = to_double(key, value); return; }
  if (key == "tau") { edge_params.tau = to_double(key, value); return; }
  if (key == "delay_max") { edge_params.msg_delay_max = to_double(key, value); return; }
  if (key == "delay_min") { edge_params.msg_delay_min = to_double(key, value); return; }

  // Engine.
  if (key == "tick_period") { engine.tick_period = to_double(key, value); return; }
  if (key == "beacon_period") { engine.beacon_period = to_double(key, value); return; }
  if (key == "beacons") { engine.enable_beacons = to_bool(key, value); return; }
  if (key == "coalesce") { engine.coalesce_instants = to_bool(key, value); return; }

  // Modes.
  if (key == "detection") { detection = parse_detection(value); return; }
  if (key == "delays") { delays = parse_delays(value); return; }
  if (key == "reference") { reference_node = to_int(key, value); return; }
  if (key == "islands") {
    if (value == "off") { islands = 0; return; }
    if (value == "auto") { islands = -1; return; }
    const int v = to_int(key, value);
    require(v >= 1, "spec: islands: expected off|auto|N with N >= 1");
    islands = v;
    return;
  }
  if (key == "island_budget") { island_budget = to_int(key, value); return; }

  // Legacy CLI aliases kept so seed-era command lines still work.
  if (key == "rows" || key == "cols" || key == "dim" || key == "k" || key == "path" ||
      key == "p" || key == "radius") {
    topology.params.set(key, value);
    return;
  }
  if (key == "block_period" || key == "sine_period" || key == "walk_period") {
    drift.params.set("period", value);
    return;
  }
  if (key == "blocks") { drift.params.set("blocks", value); return; }
  if (key == "walk_std") { drift.params.set("std", value); return; }
  if (key == "churn") {
    const double rate = to_double(key, value);
    if (rate > 0.0) {
      adversary.kind = "churn";
      adversary.params.set("rate", value);
    }
    return;
  }
  if (key == "gskew_factor") { gskew.params.set("factor", value); return; }
  if (key == "gskew_margin") { gskew.params.set("margin", value); return; }
  if (key == "gskew_hint") { gskew.params.set("hint", value); return; }

  throw std::runtime_error("spec: unknown key '" + key + "'\naccepted keys:\n" +
                           key_help());
}

ScenarioSpec ScenarioSpec::from_flags(const Flags& flags,
                                      const std::vector<std::string>& reserved) {
  ScenarioSpec spec;
  const auto is_component_key = [](const std::string& key) {
    return key == "topo" || key == "topology" || key == "algo" || key == "drift" ||
           key == "estimates" || key == "gskew" || key == "adversary";
  };
  // Apply component selectors first: selecting a component resets its params,
  // so "--topo=grid --rows=3" must work regardless of flag-map iteration
  // order.
  for (const bool components_pass : {true, false}) {
    for (const auto& [key, value] : flags.all()) {
      bool skip = is_component_key(key) != components_pass;
      for (const auto& r : reserved) skip = skip || r == key;
      if (!skip) spec.set(key, value);
    }
  }
  return spec;
}

std::vector<std::pair<std::string, std::string>> ScenarioSpec::to_kv() const {
  std::vector<std::pair<std::string, std::string>> kv;
  kv.emplace_back("name", name);
  kv.emplace_back("n", std::to_string(n));
  kv.emplace_back("seed", std::to_string(seed));
  kv.emplace_back("topo", topology.str());
  kv.emplace_back("algo", algo.str());
  kv.emplace_back("drift", drift.str());
  kv.emplace_back("estimates", estimates.str());
  kv.emplace_back("gskew", gskew.str());
  kv.emplace_back("adversary", adversary.str());
  kv.emplace_back("rho", ParamMap::format(aopt.rho));
  kv.emplace_back("mu", ParamMap::format(aopt.mu));
  kv.emplace_back("iota", ParamMap::format(aopt.iota));
  kv.emplace_back("kappa_slack", ParamMap::format(aopt.kappa_slack));
  kv.emplace_back("delta_frac", ParamMap::format(aopt.delta_frac));
  kv.emplace_back("gtilde", gtilde_auto ? "auto" : ParamMap::format(aopt.gtilde_static));
  kv.emplace_back("insertion", insertion_str(aopt.insertion));
  kv.emplace_back("B", ParamMap::format(aopt.B));
  kv.emplace_back("level_cap", std::to_string(aopt.level_cap));
  kv.emplace_back("eps", ParamMap::format(edge_params.eps));
  kv.emplace_back("tau", ParamMap::format(edge_params.tau));
  kv.emplace_back("delay_max", ParamMap::format(edge_params.msg_delay_max));
  kv.emplace_back("delay_min", ParamMap::format(edge_params.msg_delay_min));
  kv.emplace_back("tick_period", ParamMap::format(engine.tick_period));
  kv.emplace_back("beacon_period", ParamMap::format(engine.beacon_period));
  kv.emplace_back("beacons", engine.enable_beacons ? "true" : "false");
  kv.emplace_back("coalesce", engine.coalesce_instants ? "true" : "false");
  kv.emplace_back("detection", detection_str(detection));
  kv.emplace_back("delays", delays_str(delays));
  kv.emplace_back("reference", std::to_string(reference_node));
  // Island keys are emitted only when set: every spec string minted before
  // PR 9 (golden traces, pinned fingerprint rows) stays byte-identical.
  if (islands != 0) kv.emplace_back("islands", islands_str(islands));
  if (island_budget >= 0) kv.emplace_back("island_budget", std::to_string(island_budget));
  return kv;
}

std::string ScenarioSpec::str() const {
  std::string out;
  for (const auto& [key, value] : to_kv()) {
    out += (out.empty() ? "" : " ") + key + "=" + value;
  }
  return out;
}

void ScenarioSpec::validate() const {
  require(n >= 1, "spec: n >= 1 required");
  const auto check = [](const auto& registry, const ComponentSpec& c) {
    const auto& entry = registry.get(c.kind);
    c.params.check_known(entry.params, registry.family() + " '" + c.kind + "'");
  };
  check(topology_registry(), topology);
  check(algo_registry(), algo);
  check(drift_registry(), drift);
  check(estimate_registry(), estimates);
  check(gskew_registry(), gskew);
  check(adversary_registry(), adversary);
  edge_params.validate();
  const auto validation = aopt.validate();
  require(validation.ok(), "spec '" + name + "': invalid AlgoParams:\n" + validation.str());
}

std::string ScenarioSpec::key_help() {
  std::ostringstream os;
  os << "  name, n, seed\n"
     << "  topo=<kind>[:k=v,...]       (see --list; also topo.<param>=<v>, plus\n"
     << "                               legacy aliases rows/cols/dim/k/path/p/radius)\n"
     << "  algo=<kind>[:k=v,...]\n"
     << "  drift=<kind>[:k=v,...]      (aliases block_period/blocks/walk_period/\n"
     << "                               walk_std/sine_period)\n"
     << "  estimates=<kind>[:k=v,...]\n"
     << "  gskew=<kind>[:k=v,...]      (aliases gskew_factor/gskew_margin/gskew_hint)\n"
     << "  adversary=<kind>[:k=v,...]  (alias churn=<rate>)\n"
     << "  rho, mu, iota, kappa_slack, delta_frac, B, level_cap\n"
     << "  gtilde=<value|auto>, insertion=staged|dynamic|immediate|decay\n"
     << "  eps, tau, delay_max, delay_min\n"
     << "  tick_period, beacon_period, beacons=<bool>, coalesce=<bool>\n"
     << "  detection=zero|uniform|max, delays=uniform|min|max|edge-uniform\n"
     << "  reference=<node|-1>\n"
     << "  islands=off|auto|N, island_budget=<max cross edges|-1 for n>\n";
  return os.str();
}

}  // namespace gcs
