// E6 — self-stabilization of the gradient property (§1, §5.3.3).
//   From a corrupted clock state (random scatter within Ghat/2) the system
//   re-establishes legality (Def. 5.13 with the stabilized gradient
//   sequence) within O(Ghat/mu) = O(D) time.
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto sizes = parse_int_list(flags.get("sizes", std::string()), {8, 16, 32});
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 7));

  print_header("E6 exp_self_stabilization",
               "gradient legality restored within O(Ghat/mu) = O(D) after "
               "arbitrary clock corruption");

  Table table("E6 — recovery time from scattered clock corruption (line)");
  table.headers({"n", "Ghat", "margin@corrupt", "t(legal again)",
                 "t / (Ghat/mu)", "stays legal"});

  std::vector<double> xs;
  std::vector<double> recovery;
  for (int n : sizes) {
    auto spec = fast_line_spec(n);
    spec.name = "selfstab-n" + std::to_string(n);
    spec.seed = seed;
    Scenario s(spec);
    s.start();
    const double ghat = s.spec().aopt.gtilde_static;
    s.run_until(200.0);

    Rng rng(seed ^ (static_cast<std::uint64_t>(n) << 8));
    const double base = s.engine().logical(0);
    for (NodeId u = 0; u < n; ++u) {
      s.engine().corrupt_logical(u, base + rng.uniform(0.0, ghat / 2.0));
    }
    const auto broken = check_legality(s.engine(), ghat);

    const Time t0 = s.sim().now();
    const double unit = ghat / s.spec().aopt.mu;
    Time legal_at = kTimeInf;
    while (s.sim().now() < t0 + 8.0 * unit) {
      s.run_for(unit / 40.0);
      if (check_legality(s.engine(), ghat).legal()) {
        legal_at = s.sim().now();
        break;
      }
    }
    bool stays = legal_at < kTimeInf;
    if (stays) {
      for (int round = 0; round < 5; ++round) {
        s.run_for(unit / 10.0);
        stays = stays && check_legality(s.engine(), ghat).legal();
      }
    }

    table.row()
        .cell(n)
        .cell(ghat)
        .cell(broken.worst_margin)
        .cell(legal_at - t0)
        .cell((legal_at - t0) / unit)
        .cell(stays);
    xs.push_back(n);
    recovery.push_back(legal_at - t0);
  }
  table.print();

  const auto fit = fit_linear(xs, recovery);
  std::cout << "recovery time vs n: slope " << format_double(fit.slope, 2)
            << ", r2 = " << format_double(fit.r2, 3)
            << "\npaper: O(D) self-stabilization -> recovery/(Ghat/mu) bounded "
               "by a constant across sizes\n";
  return 0;
}
