// Tests for ComponentSpec / ScenarioSpec: key=value parsing, the shared
// set() path, round-tripping, and validation against the registries.
#include <gtest/gtest.h>

#include "runner/scenario.h"
#include "runner/spec.h"

namespace gcs {
namespace {

TEST(ComponentSpec, ParsesKindOnly) {
  const auto c = ComponentSpec::parse("ring");
  EXPECT_EQ(c.kind, "ring");
  EXPECT_TRUE(c.params.empty());
}

TEST(ComponentSpec, ParsesParams) {
  const auto c = ComponentSpec::parse("grid:rows=4,cols=6");
  EXPECT_EQ(c.kind, "grid");
  EXPECT_EQ(c.params.get_int("rows", 0), 4);
  EXPECT_EQ(c.params.get_int("cols", 0), 6);
}

TEST(ComponentSpec, StrRoundTrips) {
  for (const std::string text : {"ring", "grid:cols=6,rows=4", "walk:period=5,std=0.01"}) {
    const auto c = ComponentSpec::parse(text);
    EXPECT_EQ(ComponentSpec::parse(c.str()), c) << text;
  }
}

TEST(ComponentSpec, RejectsMalformedText) {
  EXPECT_THROW(ComponentSpec::parse(""), std::runtime_error);
  EXPECT_THROW(ComponentSpec::parse(":p=1"), std::runtime_error);
  EXPECT_THROW(ComponentSpec::parse("gnp:p"), std::runtime_error);
  EXPECT_THROW(ComponentSpec::parse("gnp:=2"), std::runtime_error);
}

TEST(ScenarioSpec, SetCoversComponentsScalarsAndDottedParams) {
  ScenarioSpec spec;
  spec.set("n", "12");
  spec.set("seed", "77");
  spec.set("topo", "gnp:p=0.3");
  spec.set("topo.p", "0.4");  // dotted param overrides
  spec.set("mu", "0.08");
  spec.set("eps", "0.2");
  spec.set("beacon_period", "0.75");
  spec.set("insertion", "dynamic");
  spec.set("delays", "max");
  spec.set("drift", "walk:period=5");
  spec.set("gtilde", "auto");
  EXPECT_EQ(spec.n, 12);
  EXPECT_EQ(spec.seed, 77u);
  EXPECT_EQ(spec.topology.kind, "gnp");
  EXPECT_DOUBLE_EQ(spec.topology.params.get_double("p", 0.0), 0.4);
  EXPECT_DOUBLE_EQ(spec.aopt.mu, 0.08);
  EXPECT_DOUBLE_EQ(spec.edge_params.eps, 0.2);
  EXPECT_DOUBLE_EQ(spec.engine.beacon_period, 0.75);
  EXPECT_EQ(spec.aopt.insertion, InsertionPolicy::kStagedDynamic);
  EXPECT_EQ(spec.delays, DelayMode::kMax);
  EXPECT_EQ(spec.drift.kind, "walk");
  EXPECT_TRUE(spec.gtilde_auto);
}

TEST(ScenarioSpec, SetRejectsUnknownKeysAndBadValues) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("bogus", "1"), std::runtime_error);
  EXPECT_THROW(spec.set("n", "twelve"), std::runtime_error);
  EXPECT_THROW(spec.set("mu", "fast"), std::runtime_error);
  EXPECT_THROW(spec.set("insertion", "yolo"), std::runtime_error);
  EXPECT_THROW(spec.set("wat.p", "1"), std::runtime_error);
}

TEST(ScenarioSpec, LegacyAliasesMapToComponents) {
  ScenarioSpec spec;
  spec.set("topo", "grid");
  spec.set("rows", "3");
  spec.set("cols", "7");
  spec.set("blocks", "4");
  spec.set("block_period", "50");
  spec.set("churn", "0.25");
  EXPECT_EQ(spec.topology.params.get_int("rows", 0), 3);
  EXPECT_EQ(spec.topology.params.get_int("cols", 0), 7);
  EXPECT_EQ(spec.drift.params.get_int("blocks", 0), 4);
  EXPECT_DOUBLE_EQ(spec.drift.params.get_double("period", 0.0), 50.0);
  EXPECT_EQ(spec.adversary.kind, "churn");
  EXPECT_DOUBLE_EQ(spec.adversary.params.get_double("rate", 0.0), 0.25);
}

TEST(ScenarioSpec, KvRoundTripReproducesTheSpec) {
  ScenarioSpec spec;
  spec.name = "round-trip";
  spec.n = 24;
  spec.seed = 9;
  spec.topology = ComponentSpec("geometric", ParamMap{{"radius", "0.4"}});
  spec.algo = ComponentSpec("bounded-rate-max");
  spec.drift = ComponentSpec("blocks", ParamMap{{"blocks", "3"}, {"period", "75"}});
  spec.estimates = ComponentSpec("beacon");
  spec.gskew = ComponentSpec("oracle", ParamMap{{"factor", "2.5"}, {"margin", "0.5"}});
  spec.adversary = ComponentSpec("churn", ParamMap{{"rate", "0.1"}});
  spec.aopt.rho = 2e-3;
  spec.aopt.mu = 0.09;
  spec.aopt.insertion = InsertionPolicy::kWeightDecay;
  spec.edge_params = default_edge_params(0.07, 0.3, 0.9, 0.2);
  spec.engine.beacon_period = 0.4;
  spec.detection = DetectionDelayMode::kMax;
  spec.delays = DelayMode::kMin;
  spec.reference_node = 2;
  spec.gtilde_auto = true;

  ScenarioSpec rebuilt;
  for (const auto& [key, value] : spec.to_kv()) rebuilt.set(key, value);
  EXPECT_EQ(rebuilt.to_kv(), spec.to_kv());
  EXPECT_EQ(rebuilt.str(), spec.str());
}

TEST(ScenarioSpec, ValidateCatchesBadComponents) {
  ScenarioSpec spec;
  spec.edge_params = default_edge_params();
  spec.topology = ComponentSpec("ring");
  spec.validate();  // baseline: fine

  auto bad_kind = spec;
  bad_kind.estimates = ComponentSpec("psychic");
  EXPECT_THROW(bad_kind.validate(), std::runtime_error);

  auto bad_param = spec;
  bad_param.gskew = ComponentSpec("oracle", ParamMap{{"fudge", "2"}});
  EXPECT_THROW(bad_param.validate(), std::runtime_error);
}

TEST(ScenarioSpec, FromFlagsSharesTheCliParsingPath) {
  const char* argv[] = {"prog", "--topo=torus:rows=3,cols=3", "--mu=0.07",
                        "--drift=sine:period=120", "--seed=5", "--horizon=99"};
  const Flags flags(6, argv);
  const auto spec = ScenarioSpec::from_flags(flags, {"horizon"});
  EXPECT_EQ(spec.topology.kind, "torus");
  EXPECT_DOUBLE_EQ(spec.aopt.mu, 0.07);
  EXPECT_EQ(spec.drift.kind, "sine");
  EXPECT_EQ(spec.seed, 5u);

  // A spec built from flags actually runs (torus sizes n itself).
  auto runnable = spec;
  runnable.edge_params = default_edge_params();
  Scenario s(runnable);
  EXPECT_EQ(s.spec().n, 9);
}

}  // namespace
}  // namespace gcs
