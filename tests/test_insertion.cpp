#include <gtest/gtest.h>

#include <cmath>

#include "runner/scenario.h"

namespace gcs {
namespace {

// Fast-converging parameters for insertion tests: mu at the eq. (7) maximum
// and a small static G̃ keep I(G̃) in the hundreds of time units.
ScenarioSpec insertion_config(int n, InsertionPolicy policy) {
  ScenarioSpec cfg;
  cfg.n = n;
  cfg.explicit_edges = topo_line(n);
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.1;
  cfg.aopt.gtilde_static = 1.5;
  cfg.aopt.insertion = policy;
  cfg.drift = ComponentSpec("spread");
  cfg.estimates = ComponentSpec("uniform");
  cfg.engine.tick_period = 0.25;
  cfg.engine.beacon_period = 0.25;
  return cfg;
}

TEST(Insertion, InitialEdgesFullyInsertedAtTimeZero) {
  Scenario s(insertion_config(4, InsertionPolicy::kStagedStatic));
  s.start();
  for (const EdgeKey& e : topo_line(4)) {
    for (int level : {1, 2, 5, 20}) {
      EXPECT_TRUE(s.aopt(e.a).edge_in_level(e.b, level));
      EXPECT_TRUE(s.aopt(e.b).edge_in_level(e.a, level));
    }
    const auto info = s.aopt(e.a).peer_info(e.b);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->present);
    EXPECT_DOUBLE_EQ(info->t0, 0.0);
  }
}

TEST(Insertion, HandshakeAgreesOnIdenticalTimes) {
  // Lemma 5.5 (I): once both endpoints computed insertion times, the values
  // T0, I, G̃ are identical.
  Scenario s(insertion_config(3, InsertionPolicy::kStagedStatic));
  s.start();
  s.run_until(50.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  // Handshake completes within a few time units (Delta ~ 1.6, T <= 0.5).
  s.run_until(60.0);
  const auto a = s.aopt(0).peer_info(2);
  const auto b = s.aopt(2).peer_info(0);
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_TRUE(a->present && b->present);
  ASSERT_LT(a->t0, kTimeInf) << "leader never computed insertion times";
  ASSERT_LT(b->t0, kTimeInf) << "follower never computed insertion times";
  EXPECT_DOUBLE_EQ(a->t0, b->t0);
  EXPECT_DOUBLE_EQ(a->insertion_duration, b->insertion_duration);
  EXPECT_DOUBLE_EQ(a->gtilde, b->gtilde);
  // Listing 2: T0 is a multiple of I and at or after L_ins > current L.
  const double ratio = a->t0 / a->insertion_duration;
  EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
  EXPECT_GT(a->t0, s.engine().logical(0));
}

TEST(Insertion, InsertionTimeSequenceMatchesListing2) {
  Scenario s(insertion_config(3, InsertionPolicy::kStagedStatic));
  s.start();
  s.run_until(50.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(60.0);
  const auto info = s.aopt(0).peer_info(2);
  ASSERT_TRUE(info.has_value() && info->t0 < kTimeInf);
  // T_1 = T0; T_s = T0 + (1 - 2^{1-s}) I; converges to T0 + I.
  EXPECT_DOUBLE_EQ(info->insertion_time(1), info->t0);
  EXPECT_DOUBLE_EQ(info->insertion_time(2), info->t0 + info->insertion_duration / 2.0);
  EXPECT_DOUBLE_EQ(info->insertion_time(3),
                   info->t0 + 0.75 * info->insertion_duration);
  EXPECT_LT(info->insertion_time(30), info->fully_inserted_at());
  EXPECT_NEAR(info->insertion_time(50), info->fully_inserted_at(), 1e-9);
}

TEST(Insertion, LevelMembershipFollowsLogicalClock) {
  Scenario s(insertion_config(3, InsertionPolicy::kStagedStatic));
  s.start();
  s.run_until(50.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(60.0);
  const auto info = s.aopt(0).peer_info(2);
  ASSERT_TRUE(info.has_value() && info->t0 < kTimeInf);

  // March through the insertion interval and check membership consistency.
  const double end = info->fully_inserted_at() + 10.0;
  while (s.engine().logical(0) < end) {
    s.run_for(7.3);
    const double l = s.engine().logical(0);
    for (int level = 1; level <= 8; ++level) {
      const double ts = info->insertion_time(level);
      const bool member = s.aopt(0).edge_in_level(2, level);
      const double fuzz = 1e-6;
      if (l >= ts + fuzz) EXPECT_TRUE(member) << "level " << level << " L=" << l;
      if (l <= ts - fuzz) EXPECT_FALSE(member) << "level " << level << " L=" << l;
      // Lemma 5.1 nesting: membership at level s implies membership at s-1.
      if (level > 1 && member) EXPECT_TRUE(s.aopt(0).edge_in_level(2, level - 1));
    }
  }
  // Fully inserted now.
  EXPECT_TRUE(s.aopt(0).edge_in_level(2, 1000));
  EXPECT_TRUE(s.aopt(2).edge_in_level(0, 1000));
}

TEST(Insertion, EdgeLossDuringHandshakeCancelsInsertion) {
  Scenario s(insertion_config(3, InsertionPolicy::kStagedStatic));
  s.start();
  s.run_until(50.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(50.6);  // before the leader's Delta (~1.6) elapses
  s.graph().destroy_edge(EdgeKey(0, 2));
  s.run_until(70.0);
  const auto a = s.aopt(0).peer_info(2);
  const auto b = s.aopt(2).peer_info(0);
  // Both sides must end with T_s = ⊥ (Lemma 5.5 II/III).
  if (a.has_value()) EXPECT_EQ(a->t0, kTimeInf);
  if (b.has_value()) EXPECT_EQ(b->t0, kTimeInf);
  EXPECT_FALSE(s.aopt(0).edge_in_level(2, 1));
  EXPECT_FALSE(s.aopt(2).edge_in_level(0, 1));
}

TEST(Insertion, RediscoveredEdgeRestartsHandshake) {
  Scenario s(insertion_config(3, InsertionPolicy::kStagedStatic));
  s.start();
  s.run_until(50.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(50.6);
  s.graph().destroy_edge(EdgeKey(0, 2));
  s.run_until(80.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(95.0);
  const auto a = s.aopt(0).peer_info(2);
  const auto b = s.aopt(2).peer_info(0);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_LT(a->t0, kTimeInf);
  EXPECT_DOUBLE_EQ(a->t0, b->t0);
}

TEST(Insertion, EdgeLossClearsAllLevels) {
  Scenario s(insertion_config(4, InsertionPolicy::kStagedStatic));
  s.start();
  s.run_until(30.0);
  EXPECT_TRUE(s.aopt(1).edge_in_level(2, 3));
  s.graph().destroy_edge(EdgeKey(1, 2));
  s.run_until(32.0);  // detection within tau = 0.5
  EXPECT_FALSE(s.aopt(1).edge_in_level(2, 0));
  EXPECT_FALSE(s.aopt(1).edge_in_level(2, 3));
  const auto info = s.aopt(1).peer_info(2);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->present);
  EXPECT_EQ(info->t0, kTimeInf);
}

TEST(Insertion, ImmediatePolicyJoinsAllLevelsAtDiscovery) {
  Scenario s(insertion_config(3, InsertionPolicy::kImmediate));
  s.start();
  s.run_until(50.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(51.0);  // detection delay <= tau = 0.5
  EXPECT_TRUE(s.aopt(0).edge_in_level(2, 1));
  EXPECT_TRUE(s.aopt(0).edge_in_level(2, 500));
  EXPECT_TRUE(s.aopt(2).edge_in_level(0, 500));
}

TEST(Insertion, WeightDecayStartsHighAndDecaysToKappa) {
  Scenario s(insertion_config(3, InsertionPolicy::kWeightDecay));
  s.start();
  s.run_until(50.0);
  s.graph().create_edge(EdgeKey(0, 2), s.spec().edge_params);
  s.run_until(60.0);
  const auto info = s.aopt(0).peer_info(2);
  ASSERT_TRUE(info.has_value() && info->t0 < kTimeInf);
  const double kappa_final = info->kappa;

  // Before T0: not in any level.
  EXPECT_FALSE(s.aopt(0).edge_in_level(2, 1));

  // Run until just after T0: in all levels with a large kappa.
  while (s.engine().logical(0) < info->t0 + 1.0) s.run_for(5.0);
  EXPECT_TRUE(s.aopt(0).edge_in_level(2, 100));
  const double kappa_early = s.aopt(0).edge_kappa(2);
  EXPECT_GT(kappa_early, 2.0 * s.spec().aopt.gtilde_static * 0.5);

  // Mid-decay: strictly between.
  while (s.engine().logical(0) < info->t0 + info->insertion_duration / 2.0) {
    s.run_for(10.0);
  }
  const double kappa_mid = s.aopt(0).edge_kappa(2);
  EXPECT_LT(kappa_mid, kappa_early);
  EXPECT_GT(kappa_mid, kappa_final);

  // After T0 + I: final kappa.
  while (s.engine().logical(0) < info->fully_inserted_at() + 1.0) s.run_for(10.0);
  EXPECT_DOUBLE_EQ(s.aopt(0).edge_kappa(2), kappa_final);
}

// ---------------------------------------------------------------------------
// Lemma 7.1: separation of insertion times under the dynamic-I scheme.
// ---------------------------------------------------------------------------

TEST(InsertionSeparation, Lemma71BoundHoldsForRandomInsertions) {
  AlgoParams params;
  params.rho = 1e-3;
  params.mu = 0.1;
  params.B = 64.0;
  Rng rng(2024);

  struct Edge {
    double i;
    double t0;
  };
  std::vector<Edge> edges;
  for (int k = 0; k < 40; ++k) {
    const double gtilde = rng.uniform(0.5, 200.0);
    const double tmsg = rng.uniform(0.1, 1.0);
    const double tau = rng.uniform(0.1, 1.0);
    const double i = params.insertion_duration_dynamic(gtilde, tmsg, tau);
    const double l_ins = rng.uniform(0.0, 1e5);
    const double t0 = std::ceil(l_ins / i) * i;
    edges.push_back({i, t0});
  }

  auto ts = [](const Edge& e, int s) {
    return e.t0 + (1.0 - std::exp2(1.0 - static_cast<double>(s))) * e.i;
  };

  int checked = 0;
  for (std::size_t x = 0; x < edges.size(); ++x) {
    for (std::size_t y = x + 1; y < edges.size(); ++y) {
      for (int s = 1; s <= 6; ++s) {
        for (int sp = 1; sp <= 6; ++sp) {
          const double a = ts(edges[x], s);
          const double b = ts(edges[y], sp);
          const double gap = std::fabs(a - b);
          const double bound = std::min(edges[x].i, edges[y].i) /
                               (128.0 * std::pow(4.0, std::min(s, sp) - 2));
          if (s == sp && gap < 1e-9) continue;  // T^e_s == T^e'_s allowed
          EXPECT_GE(gap, bound * (1.0 - 1e-9))
              << "s=" << s << " s'=" << sp << " Ie=" << edges[x].i
              << " Ie'=" << edges[y].i;
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 10000);
}

}  // namespace
}  // namespace gcs
