// Dual-run kernel equivalence harness.
//
// Records the engine/transport event-fire sequence (time, node, kind) of a
// reference line-topology scenario that exercises every typed event kind
// (ticks, beacons, deliveries, drift changes, mlock catch-ups and — via edge
// churn handshakes — logical-target events), and compares it against a
// committed golden trace.
//
// The golden file was generated from the PRE-REWRITE kernel (the
// std::function + tombstone-priority_queue simulator) immediately before the
// zero-allocation kernel landed, so this test is the proof that the rewrite
// fires the exact same events at bit-identical times in the same order.
// Regenerate deliberately with scripts/regen_golden.sh (wraps
// GCS_REGEN_KERNEL_TRACE=1 ./test_kernel_trace and documents the protocol).
//
// PR 5 (instant-coalesced evaluation) was licensed to regenerate this file:
// deferring trigger scans to the end of each instant may in principle move
// later event times (mode switches re-draw FIFO sequence numbers). The
// regeneration was run — and produced a bit-identical file: in this
// reference scenario every instant holds a single engine event (the merged
// heartbeat is one event; beacon-delivery dirtiness matches the legacy scan
// count under beacon estimates), so the deferred scan sees the same state
// at the same instant. tests/test_instant.cpp proves that equivalence
// directly and pins the divergence cases.
//
// Scope: the reference scenario uses beacon estimates on purpose. They draw
// no per-estimate randomness, so the trace pins the kernel, engine, graph,
// transport and beacon-estimate layers bit-exactly. Oracle-estimate runs are
// NOT trajectory-identical to the pre-rewrite kernel: AOPT's peer walk moved
// from unordered_map (stdlib hash order) to a sorted vector, deliberately
// changing the order of oracle error draws once so runs stop depending on
// the standard library. Runs remain deterministic for a given seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fingerprint_common.h"
#include "metrics/fingerprint.h"
#include "runner/scenario.h"
#include "sim/event.h"

namespace gcs {
namespace {

struct TraceRecorder final : public KernelTraceSink {
  std::ostringstream out;
  std::size_t events = 0;
  std::size_t kind_counts[8] = {};

  void on_event_fired(Time t, NodeId node, EventKind kind) override {
    // hexfloat is lossless, so "identical" below means bit-identical times.
    out << std::hexfloat << t << ' ' << node << ' ' << to_string(kind) << '\n';
    ++events;
    ++kind_counts[static_cast<std::size_t>(kind)];
  }
};

// The reference spec is shared with the fingerprint catalog
// (tests/fingerprint_common.h): its "beacon-reference" table row pins the
// 64-bit hash of the very trajectory this golden trace records in full,
// so the two artifacts can never drift apart silently.
ScenarioSpec reference_spec() { return fptable::kernel_trace_reference_spec(); }

std::string golden_path() {
  return std::string(GCS_SOURCE_DIR) + "/tests/golden/kernel_trace_reference.txt";
}

TEST(KernelTrace, GoldenSequenceFromOldKernelIsReproduced) {
  Scenario s(reference_spec());
  TraceRecorder rec;
  // One run feeds both artifacts: the fingerprinter folds each event into
  // its hash, then forwards it unchanged to the recorder. The full trace is
  // compared against the golden file below; the hash is compared against
  // the table's beacon-reference row — so "the 64-bit row pins the same
  // trajectory the golden trace spells out" is checked, not assumed.
  TrajectoryFingerprinter fp;
  fp.attach(s, &rec);
  s.start();
  s.run_until(30.0);
  const std::string got = rec.out.str();

  // The reference scenario must exercise every typed kind, or the
  // equivalence claim is weaker than it looks.
  for (const EventKind kind :
       {EventKind::kTick, EventKind::kBeacon, EventKind::kDriftChange,
        EventKind::kMLockCatch, EventKind::kLogicalTarget, EventKind::kDelivery}) {
    EXPECT_GT(rec.kind_counts[static_cast<std::size_t>(kind)], 0u)
        << "reference scenario fired no " << to_string(kind) << " events";
  }

  if (std::getenv("GCS_REGEN_KERNEL_TRACE") != nullptr) {
    std::ofstream f(golden_path());
    ASSERT_TRUE(f.good()) << "cannot write " << golden_path();
    f << got;
    GTEST_SKIP() << "regenerated golden trace (" << rec.events << " events)";
  }

  std::ifstream f(golden_path());
  ASSERT_TRUE(f.good()) << "missing golden trace " << golden_path()
                        << " — run with GCS_REGEN_KERNEL_TRACE=1 to create it";
  std::ostringstream want;
  want << f.rdbuf();

  if (got != want.str()) {
    // Pinpoint the first divergence instead of dumping half a megabyte.
    std::istringstream got_s(got), want_s(want.str());
    std::string got_line, want_line;
    std::size_t line = 0;
    while (true) {
      ++line;
      const bool got_ok = static_cast<bool>(std::getline(got_s, got_line));
      const bool want_ok = static_cast<bool>(std::getline(want_s, want_line));
      if (!got_ok || !want_ok) {
        FAIL() << "event sequence length differs at line " << line
               << (got_ok ? " (new kernel has extra events)"
                          : " (new kernel is missing events)");
      }
      ASSERT_EQ(got_line, want_line) << "first divergence at event " << line;
    }
  }

  // Cross-check the committed fingerprint table: its beacon-reference row
  // must pin this exact run. A kernel change licensed to move trajectories
  // regenerates BOTH artifacts together (scripts/regen_golden.sh chains
  // into scripts/regen_fingerprints.sh and then re-runs this test).
  const std::vector<fptable::Row> rows = fptable::load_table_or_sentinel();
  const auto row =
      std::find_if(rows.begin(), rows.end(),
                   [](const fptable::Row& r) { return r.name == "beacon-reference"; });
  ASSERT_NE(row, rows.end()) << "fingerprint table has no beacon-reference row"
                             << " — run scripts/regen_fingerprints.sh";
  EXPECT_EQ(fp.value(), row->hash)
      << "golden trace and fingerprint table disagree on the reference"
      << " trajectory — regenerate both via scripts/regen_golden.sh";
  EXPECT_EQ(fp.events(), row->events);

  SUCCEED() << rec.events << " events matched";
}

}  // namespace
}  // namespace gcs
