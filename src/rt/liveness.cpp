#include "rt/liveness.h"

#include <algorithm>

namespace gcs {

const char* to_string(PeerLiveness s) {
  switch (s) {
    case PeerLiveness::kAlive: return "alive";
    case PeerLiveness::kSuspect: return "suspect";
    case PeerLiveness::kDown: return "down";
  }
  return "?";
}

LivenessDetector::LivenessDetector(const DetectorConfig& config)
    : config_(config) {
  config_.validate();
}

LivenessDetector::Peer* LivenessDetector::find(NodeId peer) {
  const auto it = std::lower_bound(
      peers_.begin(), peers_.end(), peer,
      [](const Peer& p, NodeId id) { return p.id < id; });
  return it != peers_.end() && it->id == peer ? &*it : nullptr;
}

const LivenessDetector::Peer* LivenessDetector::find(NodeId peer) const {
  return const_cast<LivenessDetector*>(this)->find(peer);
}

void LivenessDetector::add_peer(NodeId peer, Time now, bool alive) {
  require(find(peer) == nullptr, "LivenessDetector: duplicate peer");
  Peer p;
  p.id = peer;
  p.heard = now;
  if (alive) {
    p.state = PeerLiveness::kAlive;
  } else {
    p.state = PeerLiveness::kDown;
    start_probing(p, now);
    p.next_probe = now;  // first probe immediately
  }
  const auto pos = std::lower_bound(
      peers_.begin(), peers_.end(), peer,
      [](const Peer& q, NodeId id) { return q.id < id; });
  peers_.insert(pos, p);
}

void LivenessDetector::start_probing(Peer& p, Time now) {
  p.probe_gap = config_.probe_interval;
  p.next_probe = now + p.probe_gap;
}

bool LivenessDetector::on_frame(NodeId peer, Time now) {
  Peer* p = find(peer);
  if (p == nullptr) return false;
  p->heard = now;
  const bool revived = p->state == PeerLiveness::kDown;
  if (revived) ++revivals_;
  p->state = PeerLiveness::kAlive;
  return revived;
}

void LivenessDetector::mark_down(NodeId peer, Time now) {
  Peer* p = find(peer);
  require(p != nullptr, "LivenessDetector: mark_down on unknown peer");
  p->state = PeerLiveness::kDown;
  p->heard = now;  // restart the silence window from the fault we witnessed
  start_probing(*p, now);
  p->next_probe = now;  // probe immediately: rejoin latency matters
}

void LivenessDetector::poll(Time now, std::vector<LivenessAction>& out) {
  for (Peer& p : peers_) {
    const Duration silence = now - p.heard;
    if (p.state == PeerLiveness::kAlive && silence >= config_.suspect_after) {
      p.state = PeerLiveness::kSuspect;
      start_probing(p, now);
      p.next_probe = now;  // probe at the moment of suspicion
    }
    if (p.state == PeerLiveness::kSuspect && silence >= config_.evict_after) {
      p.state = PeerLiveness::kDown;
      ++evictions_;
      out.push_back({LivenessAction::Kind::kEvict, p.id});
      // Down probing continues from the Suspect-phase schedule; backoff
      // starts compounding below.
    }
    if (p.state != PeerLiveness::kAlive && now >= p.next_probe) {
      ++probes_;
      out.push_back({LivenessAction::Kind::kProbe, p.id});
      if (p.state == PeerLiveness::kDown) {
        p.probe_gap = std::min(p.probe_gap * config_.probe_backoff,
                               config_.probe_max);
      }
      p.next_probe = now + p.probe_gap;
    }
  }
}

PeerLiveness LivenessDetector::state(NodeId peer) const {
  const Peer* p = find(peer);
  require(p != nullptr, "LivenessDetector: state of unknown peer");
  return p->state;
}

Time LivenessDetector::last_heard(NodeId peer) const {
  const Peer* p = find(peer);
  require(p != nullptr, "LivenessDetector: last_heard of unknown peer");
  return p->heard;
}

}  // namespace gcs
