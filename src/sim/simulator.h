// Deterministic discrete-event simulation kernel.
//
// Events fire in non-decreasing time order; equal-time events fire in
// scheduling (FIFO) order, which makes every execution reproducible.
// Cancellation is O(1) (lazy tombstones cleaned on pop).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/common.h"

namespace gcs {

/// Opaque handle to a scheduled event; valid until it fires or is cancelled.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now, tolerating tiny negative
  /// drift from floating-point arithmetic, which is clamped to now).
  EventId schedule_at(Time at, Callback fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id);

  /// True if the event is still pending.
  [[nodiscard]] bool pending(EventId id) const { return callbacks_.count(id.value) > 0; }

  /// Fire the next event; returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or `t` is passed.
  /// Afterwards now() == max(now, t) (time advances to t even if idle).
  void run_until(Time t);

  /// Run until the queue is empty.
  void run();

  [[nodiscard]] std::size_t pending_count() const { return callbacks_.size(); }
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

 private:
  struct QueueEntry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break + identity
    friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace gcs
