// E9 — Theorem 8.1: Ω(D) stabilization is unavoidable.
//   §8 construction: on a line with adversarial (maximal, uncompensatable)
//   message delays, Θ(D) skew accumulates between the endpoints while every
//   gradient constraint holds — the skew is *hidden* from the algorithm.
//   When the edge {v0, v_{n-1}} appears, any algorithm whose logical clocks
//   respect the rate envelope [1−ρ, (1+ρ)(1+µ)] needs at least
//   (S − bound) / ((1+ρ)(1+µ) − (1−ρ)) time to bring the edge's skew from S
//   down to its stable gradient bound. We measure AOPT's actual closing time
//   against that envelope lower bound (both are Θ(D); the ratio is the
//   constant-factor gap the paper concedes), and show the only way to beat
//   the bound (max-jump) destroys the gradient property on old edges.
//
// The (n × algorithm) grid runs as a SweepRunner sweep (sharded
// work-stealing pool, --threads); G̃ is derived per cell from the n axis
// through the runner's spec hook.
#include "exp_common.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto sizes = parse_int_list(flags.get("sizes", std::string()), {12, 16, 20});

  print_header("E9 exp_lower_bound",
               "Theorem 8.1: closing revealed skew S on a new edge takes >= "
               "(S-bound)/(beta-alpha) time for every envelope-respecting algorithm");

  ScenarioSpec base;
  base.topology = ComponentSpec("line");
  base.aopt.rho = 5e-3;
  base.aopt.mu = 0.1;
  base.drift = ComponentSpec("spread");
  base.estimates = ComponentSpec("uniform");
  Sweep sweep(base);
  sweep.axis("n", sizes);
  sweep.axis("algo", std::vector<std::string>{"aopt", "max-jump"});

  SweepOptions options;
  options.threads = flags.get("threads", 2);
  SweepRunner runner(options);
  runner.set_spec_fn([](ScenarioSpec& spec) {
    // The max-estimate staleness cap in this regime is ~2.1 per hop; the
    // static estimate must dominate it for the whole run (eq. 6).
    spec.aopt.gtilde_static = 2.1 * (spec.n - 1) + 6.0;
    apply_adversarial_delays(spec, /*delay_max=*/2.0, /*beacon_period=*/1.0);
  });
  runner.set_run_fn([](Scenario& s, RunResult& r) {
    const int n = s.spec().n;
    const double ghat = s.spec().aopt.gtilde_static;
    const auto old_edges = topo_line(n);
    s.start();
    s.run_until(4000.0);  // hidden skew saturates at the gradient equilibrium

    if (s.spec().algo.kind == "max-jump") {
      // Jumping phase: reveal the edge and watch the gradient property on
      // long-standing edges break.
      s.graph().create_edge(EdgeKey(0, n - 1), s.spec().edge_params);
      double old_mj = 0.0;
      for (int step = 0; step < 200; ++step) {
        s.run_for(1.0);
        old_mj = std::max(old_mj, worst_skew_over(s.engine(), old_edges));
      }
      r.values["old_edge"] = old_mj;
      return;
    }

    // AOPT phase.
    const double hidden =
        std::fabs(s.engine().logical(0) - s.engine().logical(n - 1));
    const Time t0 = s.sim().now();
    s.graph().create_edge(EdgeKey(0, n - 1), s.spec().edge_params);
    const double kappa = metric_kappa(s.engine(), EdgeKey(0, n - 1));
    const double bound = gradient_bound(kappa, ghat, s.spec().aopt.sigma());

    double old_aopt = 0.0;
    double gmax = 0.0;
    Time close_at = kTimeInf;
    const double horizon =
        t0 + 2.5 * s.spec().aopt.insertion_duration_static(ghat) + 500.0;
    while (s.sim().now() < horizon) {
      s.run_for(2.0);
      gmax = std::max(gmax, s.engine().true_global_skew());
      old_aopt = std::max(old_aopt, worst_skew_over(s.engine(), old_edges));
      const double skew =
          std::fabs(s.engine().logical(0) - s.engine().logical(n - 1));
      if (skew <= bound) {
        close_at = s.sim().now();
        break;
      }
    }

    const double envelope_rate = s.spec().aopt.beta() - s.spec().aopt.alpha();
    r.values["hidden"] = hidden;
    r.values["bound"] = bound;
    r.values["lower_bound"] = (hidden - bound) / envelope_rate;
    r.values["t_close"] = close_at - t0;
    r.values["gmax_ok"] = gmax <= ghat ? 1.0 : 0.0;
    r.values["old_edge"] = old_aopt;
  });
  const auto results = runner.run(sweep);

  Table table("E9 — §8 construction: hidden skew revealed by a new edge");
  table.headers({"n", "hidden S", "stable bound", "envelope LB", "t(close) AOPT",
                 "t/LB", "LB ok", "Gmax<=Ghat", "old-edge AOPT",
                 "old-edge max-jump"});

  std::vector<double> xs;
  std::vector<double> lbs;
  std::vector<double> measured;
  // Grid order: algo varies fastest, so rows pair as (aopt, max-jump) per n.
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const RunResult& aopt = results[i];
    const RunResult& mj = results[i + 1];
    for (const RunResult* r : {&aopt, &mj}) {
      if (!r->ok()) {
        std::cerr << "run n=" << r->n << " (" << r->axes.at("algo")
                  << ") failed: " << r->error << "\n";
        return 1;
      }
    }
    const double lower_bound = aopt.values.at("lower_bound");
    const double t_close = aopt.values.at("t_close");
    table.row()
        .cell(aopt.n)
        .cell(aopt.values.at("hidden"))
        .cell(aopt.values.at("bound"))
        .cell(lower_bound)
        .cell(t_close)
        .cell(t_close / lower_bound)
        .cell(t_close >= lower_bound * (1.0 - 1e-6))
        .cell(aopt.values.at("gmax_ok") != 0.0)
        .cell(aopt.values.at("old_edge"))
        .cell(mj.values.at("old_edge"));
    xs.push_back(aopt.n);
    lbs.push_back(lower_bound);
    measured.push_back(t_close);
  }
  table.print();

  const auto lb_fit = fit_linear(xs, lbs);
  const auto m_fit = fit_linear(xs, measured);
  std::cout << "envelope lower bound vs n: slope " << format_double(lb_fit.slope, 2)
            << " (r2=" << format_double(lb_fit.r2, 3) << ")\n"
            << "AOPT closing time vs n:    slope " << format_double(m_fit.slope, 2)
            << " (r2=" << format_double(m_fit.r2, 3) << ")\n"
            << "both scale linearly with D: AOPT's stabilization is within a\n"
               "constant factor of the Theorem 8.1 floor (the paper's constants\n"
               "are large; §5.5 concedes this). max-jump beats the floor only by\n"
               "jumping — at the cost of Θ(D) skew on a long-standing edge.\n";
  return 0;
}
