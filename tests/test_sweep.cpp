// Tests for Sweep expansion and SweepRunner: cross-product semantics,
// thread-count-independent determinism, and per-run failure capture.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "runner/sweep.h"

namespace gcs {
namespace {

ScenarioSpec small_line() {
  ScenarioSpec spec;
  spec.n = 4;
  spec.topology = ComponentSpec("line");
  spec.edge_params = default_edge_params();
  spec.gtilde_auto = true;
  return spec;
}

TEST(Sweep, ExpandsCrossProductLastAxisFastest) {
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4, 8}).seeds({1, 2, 3});
  EXPECT_EQ(sweep.size(), 6u);
  const auto grid = sweep.expand();
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].axes.at("n"), "4");
  EXPECT_EQ(grid[0].axes.at("seed"), "1");
  EXPECT_EQ(grid[1].axes.at("seed"), "2");
  EXPECT_EQ(grid[3].axes.at("n"), "8");
  EXPECT_EQ(grid[3].spec.n, 8);
  EXPECT_EQ(grid[3].spec.seed, 1u);
}

TEST(Sweep, NoAxesMeansSingleRun) {
  Sweep sweep(small_line());
  EXPECT_EQ(sweep.expand().size(), 1u);
}

TEST(Sweep, RejectsEmptyAndDuplicateAxes) {
  Sweep sweep(small_line());
  EXPECT_THROW(sweep.axis("n", std::vector<int>{}), std::runtime_error);
  sweep.axis("n", std::vector<int>{4});
  EXPECT_THROW(sweep.axis("n", std::vector<int>{8}), std::runtime_error);
}

std::vector<RunResult> run_grid(int threads) {
  SweepOptions options;
  options.threads = threads;
  options.horizon = 60.0;
  options.sample_period = 5.0;
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4, 6, 8}).seeds({1, 2});
  return SweepRunner(options).run(sweep);
}

TEST(SweepRunner, DeterministicAcrossThreadCounts) {
  const auto serial = run_grid(1);
  const auto two = run_grid(2);
  const auto four = run_grid(4);
  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(two.size(), serial.size());
  ASSERT_EQ(four.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    EXPECT_EQ(serial[i].axes, two[i].axes);
    EXPECT_EQ(serial[i].n, two[i].n);
    // Identical RunResult metrics bit-for-bit, independent of scheduling.
    for (const auto* r : {&two[i], &four[i]}) {
      EXPECT_DOUBLE_EQ(serial[i].final_global, r->final_global);
      EXPECT_DOUBLE_EQ(serial[i].max_global, r->max_global);
      EXPECT_DOUBLE_EQ(serial[i].final_local, r->final_local);
      EXPECT_DOUBLE_EQ(serial[i].max_local, r->max_local);
      EXPECT_EQ(serial[i].legal, r->legal);
      EXPECT_DOUBLE_EQ(serial[i].legality_margin, r->legality_margin);
      EXPECT_EQ(serial[i].events, r->events);
    }
  }
}

TEST(SweepRunner, WorkStealingHandlesHeterogeneousRunLengths) {
  // A strongly skewed grid: the first shard's runs are ~64x the work of the
  // last shard's, so with a static partition the later workers go idle and
  // must STEAL from the loaded shard. Results must still land in grid order
  // and match the serial execution bit-for-bit.
  auto base = small_line();
  Sweep sweep(base);
  sweep.axis("n", std::vector<int>{32, 32, 4, 4, 4, 4, 4, 4});
  SweepOptions options;
  options.horizon = 40.0;
  options.threads = 1;
  const auto serial = SweepRunner(options).run(sweep);
  options.threads = 4;
  const auto stolen = SweepRunner(options).run(sweep);
  ASSERT_EQ(serial.size(), 8u);
  ASSERT_EQ(stolen.size(), 8u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(stolen[i].ok()) << stolen[i].error;
    EXPECT_EQ(serial[i].index, stolen[i].index);
    EXPECT_EQ(serial[i].n, stolen[i].n);
    EXPECT_DOUBLE_EQ(serial[i].final_global, stolen[i].final_global);
    EXPECT_DOUBLE_EQ(serial[i].max_local, stolen[i].max_local);
    EXPECT_EQ(serial[i].events, stolen[i].events);
  }
}

TEST(SweepRunner, MoreThreadsThanRunsIsSafeAndComplete) {
  Sweep sweep(small_line());
  sweep.axis("seed", std::vector<int>{1, 2, 3});
  SweepOptions options;
  options.horizon = 20.0;
  options.threads = 16;  // capped at the grid size internally
  const auto results = SweepRunner(options).run(sweep);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << results[i].error;
    EXPECT_EQ(results[i].index, static_cast<int>(i));
    EXPECT_GT(results[i].events, 0u);
  }
}

TEST(SweepRunner, DeterministicCsvIsByteIdenticalAcrossThreadCounts) {
  const auto read_all = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::string all, line;
    while (std::getline(in, line)) all += line + "\n";
    return all;
  };
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4, 6, 8});
  SweepOptions options;
  options.horizon = 20.0;
  options.threads = 2;
  const auto two = SweepRunner(options).run(sweep);
  options.threads = 8;
  const auto eight = SweepRunner(options).run(sweep);
  SweepRunner::write_csv(two, "sweep_det_2.csv", /*include_wall=*/false);
  SweepRunner::write_csv(eight, "sweep_det_8.csv", /*include_wall=*/false);
  const std::string a = read_all("sweep_det_2.csv");
  const std::string b = read_all("sweep_det_8.csv");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // wall_seconds omitted: the files must be byte-identical
  EXPECT_EQ(a.find("wall_seconds"), std::string::npos);
  std::remove("sweep_det_2.csv");
  std::remove("sweep_det_8.csv");
}

TEST(SweepRunner, PerRunFailuresAreRecordedNotFatal) {
  auto base = small_line();
  base.gtilde_auto = false;
  base.aopt.gtilde_static = 5.0;
  Sweep sweep(base);
  // rho=0.2 violates eq. (7) for the default mu -> that run must fail while
  // the other two succeed.
  sweep.axis("rho", std::vector<double>{1e-3, 0.2, 2e-3});
  SweepOptions options;
  options.threads = 2;
  options.horizon = 30.0;
  const auto results = SweepRunner(options).run(sweep);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("AlgoParams"), std::string::npos)
      << results[1].error;
  EXPECT_TRUE(results[2].ok());
}

TEST(SweepRunner, CustomRunFnFillsValuesAndTable) {
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4, 5});
  SweepOptions options;
  options.threads = 2;
  SweepRunner runner(options);
  runner.set_run_fn([](Scenario& s, RunResult& r) {
    s.start();
    s.run_until(10.0);
    r.values["logical0"] = s.engine().logical(0);
  });
  const auto results = runner.run(sweep);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GT(r.values.at("logical0"), 9.0);
    EXPECT_GT(r.events, 0u);
  }
  const Table table = SweepRunner::to_table(results, "custom");
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(SweepRunner, WritesCsv) {
  Sweep sweep(small_line());
  sweep.axis("n", std::vector<int>{4});
  SweepOptions options;
  options.horizon = 20.0;
  const auto results = SweepRunner(options).run(sweep);
  const std::string path = "sweep_test_out.csv";
  SweepRunner::write_csv(results, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("axis_n"), std::string::npos);
  EXPECT_NE(header.find("final_global"), std::string::npos);
  std::string row;
  std::getline(in, row);
  EXPECT_FALSE(row.empty());
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcs
