// Common scalar types and small helpers shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace gcs {

/// Identifier of a node in the network. Dense, 0-based.
using NodeId = std::int32_t;

/// Invalid / absent node id.
inline constexpr NodeId kNoNode = -1;

/// Simulated real time (the adversary's wall clock), in abstract time units.
using Time = double;

/// A clock value (hardware or logical), in the same abstract units as Time.
using ClockValue = double;

/// A duration of simulated real time.
using Duration = double;

inline constexpr Time kTimeInf = std::numeric_limits<double>::infinity();

/// Canonical undirected edge key: the pair (min(u,v), max(u,v)).
struct EdgeKey {
  NodeId a = kNoNode;  ///< smaller endpoint
  NodeId b = kNoNode;  ///< larger endpoint

  EdgeKey() = default;
  EdgeKey(NodeId u, NodeId v) : a(u < v ? u : v), b(u < v ? v : u) {
    if (u == v) throw std::invalid_argument("EdgeKey: self loop " + std::to_string(u));
  }

  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
  friend auto operator<=>(const EdgeKey&, const EdgeKey&) = default;

  /// The endpoint that is not `u`. Precondition: u is an endpoint.
  [[nodiscard]] NodeId other(NodeId u) const { return u == a ? b : a; }
  [[nodiscard]] bool has(NodeId u) const { return u == a || u == b; }
  [[nodiscard]] std::string str() const {
    return "{" + std::to_string(a) + "," + std::to_string(b) + "}";
  }
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& e) const noexcept {
    // 64-bit mix of the two 32-bit ids.
    std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.a)) << 32) |
                      static_cast<std::uint32_t>(e.b);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

/// Throwing check used for precondition validation. The const char* overload
/// binds to every string-literal call site, so passing checks never
/// construct a std::string (a malloc per call on hot paths); the
/// std::string overload serves callers that format a message.
inline void require(bool cond, const char* msg) {
  if (!cond) throw std::runtime_error(msg);
}
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::runtime_error(msg);
}

/// Split on a separator. Every token is returned, including empty ones —
/// callers decide whether empties are errors (ComponentSpec) or skipped
/// (value lists).
inline std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = text.find(sep, pos);
    out.push_back(text.substr(pos, next - pos));
    if (next == std::string::npos) return out;
    pos = next + 1;
  }
}

}  // namespace gcs
