// simulate_cli — a configurable scenario driver built on the component
// registries: pick topology, algorithm, drift model, estimate layer,
// global-skew estimator and adversary by name, run, and get skew/legality
// reports plus optional CSV time series and event traces.
//
// Examples:
//   simulate_cli                                    # defaults: AOPT on a 16-ring
//   simulate_cli --list                             # enumerate all components
//   simulate_cli --topo=grid:rows=4,cols=6 --algo=max-jump --horizon=500
//   simulate_cli --topo=line --n=32 --drift=blocks:period=100
//   simulate_cli --topo=geometric --n=24 --churn=0.05 --gskew=distributed
//   simulate_cli --sweep=n --values=8,16,32 --threads=4
//   simulate_cli --trace=trace.csv --series=skew.csv
#include <iostream>

#include "metrics/diameter.h"
#include "metrics/legality.h"
#include "metrics/recorder.h"
#include "metrics/skew.h"
#include "metrics/trace.h"
#include "runner/registries.h"
#include "runner/scenario.h"
#include "runner/sweep.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

using namespace gcs;

namespace {

/// Runner-level flags that are not ScenarioSpec keys.
const std::vector<std::string> kReservedFlags = {
    "horizon", "sample", "trace", "series", "list", "help",
    "sweep",   "values", "threads", "csv", "csv-deterministic",
};

int fail_usage(const std::string& message) {
  std::cerr << "error: " << message << "\n\n"
            << "usage: simulate_cli [--key=value ...]\n"
            << "scenario keys (shared with benches/tests via ScenarioSpec):\n"
            << ScenarioSpec::key_help()
            << "runner keys:\n"
            << "  --horizon=500 --sample=5\n"
            << "  --trace=FILE.csv --series=FILE.csv\n"
            << "  --sweep=<spec key> --values=v1,v2,... --threads=2 --csv=FILE.csv\n"
            << "  --csv-deterministic   omit wall_seconds so the sweep CSV is\n"
            << "                        byte-identical for any --threads value\n"
            << "  --list   enumerate every registered component and its params\n";
  return 2;
}

std::vector<std::string> nonempty_tokens(const std::string& text) {
  std::vector<std::string> out;
  for (std::string& token : split(text, ',')) {
    if (!token.empty()) out.push_back(std::move(token));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  if (flags.has("list")) {
    print_registries(std::cout);
    return 0;
  }
  if (flags.has("help")) return fail_usage("");

  ScenarioSpec spec;
  try {
    spec = ScenarioSpec::from_flags(flags, kReservedFlags);
    if (spec.name == "scenario") spec.name = "simulate-cli";
    // CLI default: a 16-ring with an auto-derived G̃ unless overridden.
    // Replace only the kind: params the user attached (e.g. --radius without
    // --topo) must survive so validate() can reject them if they don't apply.
    if (spec.topology.kind == "explicit") spec.topology.kind = "ring";
    if (!flags.has("n")) spec.n = 16;
    if (!flags.has("gtilde")) spec.gtilde_auto = true;
    spec.validate();
  } catch (const std::exception& e) {
    return fail_usage(e.what());
  }

  const double horizon = flags.get("horizon", 500.0);
  const double sample = flags.get("sample", 5.0);

  // ---- sweep mode: expand one axis and run the grid on a thread pool ----
  if (flags.has("sweep")) {
    if (flags.has("trace") || flags.has("series")) {
      return fail_usage("--trace/--series apply to single runs, not --sweep "
                        "(use --csv=FILE for sweep results)");
    }
    const std::string axis_key = flags.get("sweep", std::string());
    const auto values = nonempty_tokens(flags.get("values", std::string()));
    if (values.empty()) return fail_usage("--sweep needs --values=v1,v2,...");
    SweepOptions options;
    options.threads = flags.get("threads", 2);
    options.horizon = horizon;
    options.sample_period = sample;
    Sweep sweep(spec);
    try {
      sweep.axis(axis_key, values);
      const auto results = SweepRunner(options).run(sweep);
      SweepRunner::to_table(results, "simulate_cli sweep over " + axis_key).print();
      if (flags.has("csv")) {
        // A bare --csv (no value) parses as "true"; use the default name.
        std::string path = flags.get("csv", std::string());
        if (path.empty() || path == "true") path = "sweep.csv";
        SweepRunner::write_csv(results, path,
                               /*include_wall=*/!flags.has("csv-deterministic"));
        std::cout << "wrote sweep results to " << path << "\n";
      }
      for (const auto& r : results) {
        if (!r.ok()) return 1;
      }
      return 0;
    } catch (const std::exception& e) {
      return fail_usage(e.what());
    }
  }

  // ---- single run ----
  const auto validation = spec.aopt.validate();
  std::cout << validation.str();

  Scenario s(spec);
  std::unique_ptr<ExecutionTrace> trace;
  if (flags.has("trace")) {
    trace = std::make_unique<ExecutionTrace>(s.engine(), flags.get("sample", 5.0));
  }
  s.start();

  TimeSeries global_series;
  TimeSeries local_series;
  PeriodicSampler sampler(s.sim(), sample, [&](Time t) {
    const auto snap = measure_skew(s.engine());
    global_series.add(t, snap.global);
    local_series.add(t, snap.worst_local);
  });
  sampler.start(sample);
  s.run_until(horizon);

  // ---- report ----
  const double ghat = s.spec().aopt.gtilde_static;
  Table table("simulate_cli: " + s.spec().topology.str() + " n=" +
              std::to_string(s.spec().n) + ", " + s.spec().algo.str() +
              ", horizon=" + format_double(horizon, 0));
  table.headers({"metric", "value"});
  table.row().cell("sigma").cell(s.spec().aopt.sigma());
  table.row().cell("Ghat (static budget)").cell(ghat);
  table.row().cell("D^ estimate").cell(estimate_dynamic_diameter(s.engine()));
  table.row().cell("global skew (final)").cell(global_series.last());
  table.row().cell("global skew (max)").cell(global_series.max());
  table.row().cell("worst local skew (max)").cell(local_series.max());
  const auto legality = check_legality(s.engine(), ghat);
  table.row().cell("legality").cell(legality.legal());
  table.row().cell("legality margin").cell(legality.worst_margin);
  table.row().cell("events fired").cell(static_cast<long long>(s.sim().fired_count()));
  if (s.adversary() != nullptr) {
    table.row().cell("adversary ops").cell(s.adversary()->operations());
  }
  table.print();

  if (flags.has("series")) {
    CsvWriter csv(flags.get("series", std::string("series.csv")));
    csv.row({"t", "global_skew", "worst_local_skew"});
    for (std::size_t i = 0; i < global_series.points().size(); ++i) {
      csv.field(global_series.points()[i].first)
          .field(global_series.points()[i].second)
          .field(local_series.points()[i].second)
          .endrow();
    }
    std::cout << "wrote series to " << flags.get("series", std::string()) << "\n";
  }
  if (trace != nullptr) {
    trace->write_csv(flags.get("trace", std::string("trace.csv")));
    std::cout << "wrote " << trace->events().size() << " trace events to "
              << flags.get("trace", std::string()) << "\n";
  }
  return 0;
}
