#include "net/transport.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

namespace gcs {

namespace {
std::uint64_t dir_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

// The inline-blob delivery path stores the Payload bytes directly in the
// kernel's 32-byte blob slot; both properties are what make that a plain
// block copy with no destructor obligations.
static_assert(std::is_trivially_copyable_v<Payload>,
              "inline delivery path copies Payload as raw bytes");
static_assert(sizeof(Payload) <= sizeof(InlineBlob),
              "Payload must fit the kernel's inline blob slot");

InlineBlob to_blob(const Payload& payload) {
  InlineBlob blob{};
  std::memcpy(blob.bytes, &payload, sizeof(Payload));
  return blob;
}
}  // namespace

Transport::Transport(Simulator& sim, DynamicGraph& graph, std::uint64_t seed)
    : sim_(sim), graph_(graph), seed_(seed), rng_(seed) {
  // Channel dispatch: the thunk's static_cast call devirtualizes (Transport
  // is final), so fired deliveries skip the vtable entirely.
  channel_ = sim_.register_dispatch_channel(this, [](void* self, const SimEvent& ev) {
    static_cast<Transport*>(self)->dispatch(ev);
  });
}

void Transport::set_directional_delay(NodeId from, NodeId to, Duration delay) {
  directional_override_[dir_key(from, to)] = delay;
}

void Transport::clear_directional_delay(NodeId from, NodeId to) {
  directional_override_.erase(dir_key(from, to));
}

Duration Transport::pick_delay(NodeId from, NodeId to, const EdgeParams& params) {
  if (!directional_override_.empty()) {  // adversarial runs only
    const auto it = directional_override_.find(dir_key(from, to));
    if (it != directional_override_.end()) {
      return std::clamp(it->second, params.msg_delay_min, params.msg_delay_max);
    }
  }
  switch (delay_mode_) {
    case DelayMode::kUniform:
      return rng_.uniform(params.msg_delay_min, params.msg_delay_max);
    case DelayMode::kMin: return params.msg_delay_min;
    case DelayMode::kMax: return params.msg_delay_max;
    case DelayMode::kEdgeUniform:
      return edge_stream(from, to).uniform(params.msg_delay_min, params.msg_delay_max);
  }
  return params.msg_delay_max;
}

Rng& Transport::edge_stream(NodeId from, NodeId to) {
  const std::uint64_t key = dir_key(from, to);
  const auto it = edge_rng_.find(key);
  if (it != edge_rng_.end()) return it->second;
  // The substream seed is a pure function of (transport seed, directed edge),
  // so the sequence a sender draws over an edge is identical no matter which
  // shard — or how many shards — host the run.
  std::uint64_t sm = seed_ ^ (key + 0x9e3779b97f4a7c15ULL);
  return edge_rng_.emplace(key, Rng(splitmix64(sm))).first->second;
}

bool Transport::send(NodeId from, NodeId to, Payload payload) {
  const NeighborView* nv = graph_.find_neighbor(from, to);
  if (nv == nullptr) return false;
  send_via(from, *nv, std::move(payload));
  return true;
}

void Transport::send_via(NodeId from, const NeighborView& to, Payload&& payload) {
  if (egress_ != nullptr) {
    ++sent_;
    egress_->send(from, to.id, sim_.now(), payload);
    return;
  }
  // Degree 1: inline the payload beside the kernel slot — no arena slot to
  // acquire at send or reclaim at fire (see send_fanout's degree rule).
  const Duration delay = pick_delay(from, to.id, *to.params);
  ++sent_;
  if (is_cross(to.id)) {
    cross_capture_(from, to.id, sim_.now(), sim_.now() + delay, payload);
    return;
  }
  SimEvent ev = SimEvent::delivery(channel_, from, to.id, sim_.now(), 0);
  ev.flags = kEventFlagInlineBlob;
  sim_.schedule_event_after(delay, ev, to_blob(payload));
}

void Transport::send_fanout(NodeId from, const std::vector<NeighborView>& views,
                            Payload payload) {
  if (views.empty()) return;
  if (egress_ != nullptr) {
    for (const NeighborView& nv : views) {
      ++sent_;
      egress_->send(from, nv.id, sim_.now(), payload);
    }
    return;
  }
  // Degree-adaptive path choice, made once per send: at fan-out degree <= 2
  // (lines, rings, sparse meshes) MessageArena bookkeeping costs more than
  // simply copying the 32 payload bytes per delivery, so the payload rides
  // inline in the kernel's blob side array. Dense fan-out keeps the arena:
  // ONE payload for the whole neighborhood; every delivery holds a
  // reference, the last firing (or drop) reclaims the slot.
  // Island routing always takes the inline path: cross-island captures do
  // not schedule kernel events here, so arena reference counts sized to the
  // full fan-out would never balance. Payload content, delay draws and
  // delivery times are identical either way.
  if (views.size() <= 2 || local_mask_ != nullptr) {
    SimEvent ev = SimEvent::delivery(channel_, from, kNoNode, sim_.now(), 0);
    ev.flags = kEventFlagInlineBlob;
    const InlineBlob blob = to_blob(payload);
    for (const NeighborView& nv : views) {
      const Duration delay = pick_delay(from, nv.id, *nv.params);
      ++sent_;
      if (is_cross(nv.id)) {
        cross_capture_(from, nv.id, sim_.now(), sim_.now() + delay, payload);
        continue;
      }
      ev.node = nv.id;
      sim_.schedule_event_after(delay, ev, blob);
    }
    return;
  }
  const std::uint64_t ref =
      arena_.put(std::move(payload), static_cast<std::uint32_t>(views.size()));
  SimEvent ev = SimEvent::delivery(channel_, from, kNoNode, sim_.now(), ref);
  for (const NeighborView& nv : views) {
    const Duration delay = pick_delay(from, nv.id, *nv.params);
    ++sent_;
    ev.node = nv.id;
    sim_.schedule_event_after(delay, ev);
  }
}

void Transport::inject_delivery(NodeId from, NodeId to, Time sent_at, Time arrival,
                                const Payload& payload) {
  SimEvent ev = SimEvent::delivery(channel_, from, to, sent_at, 0);
  ev.flags = kEventFlagInlineBlob;
  sim_.schedule_event_at(arrival, ev, to_blob(payload));
}

void Transport::dispatch(const SimEvent& ev) {
  const bool inline_blob = (ev.flags & kEventFlagInlineBlob) != 0;
  const std::uint64_t ref = ev.payload_ref;
  if (!inline_blob) {
    // The payload line has been cold since send time; start pulling it in
    // now so the miss overlaps the graph lookup below. (The inline path has
    // no such line: the kernel already staged the payload bytes.)
    MessageArena::prefetch(ref);
  }
  if (trace_ != nullptr) {
    trace_->on_event_fired(sim_.now(), ev.node, EventKind::kDelivery);
  }
  // §3.1 delivery rule: guaranteed iff the edge existed in the receiver's
  // view throughout the transit interval; we drop otherwise.
  const NeighborView* back = graph_.find_neighbor(ev.node, ev.from);
  if (back == nullptr || back->since > ev.sent_at) {
    ++dropped_;
    if (!inline_blob) arena_.release(ref);
    return;
  }
  ++delivered_;
  if (sink_ != nullptr || handler_) {
    Delivery d;
    d.from = ev.from;
    d.to = ev.node;
    d.sent_at = ev.sent_at;
    d.delivered_at = sim_.now();
    // Edge params are immutable after creation, so the receiver-known
    // transit floor can be re-read here instead of riding in every event.
    d.known_min_delay = back->params->msg_delay_min;
    // Inline path: reconstitute the Payload from the kernel's staging slot
    // into a stack object (trivially copyable, so the memcpy is the exact
    // inverse of to_blob's; the bytes live on the handler's hot stack
    // frame). Arena path: hand out a pointer into the arena — this event's
    // own reference keeps the slot live until the release below, and arena
    // slots are address-stable, so handlers may send new messages while
    // reading this payload.
    Payload staged;
    if (inline_blob) {
      std::memcpy(&staged, sim_.fired_blob().bytes, sizeof(Payload));
      d.payload = &staged;
    } else {
      d.payload = arena_.peek(ref);
    }
    if (sink_ != nullptr) {
      sink_->on_delivery(d);
    } else {
      handler_(d);
    }
  }
  if (!inline_blob) arena_.release(ref);
}

}  // namespace gcs
