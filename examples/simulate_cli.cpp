// simulate_cli — a configurable scenario driver: pick topology, algorithm,
// drift model, estimate layer and horizon from the command line, run, and
// get skew/legality reports plus optional CSV time series and event traces.
//
// Examples:
//   simulate_cli                                    # defaults: AOPT on a 16-ring
//   simulate_cli --topo=grid --rows=4 --cols=6 --algo=max-jump --horizon=500
//   simulate_cli --topo=line --n=32 --drift=blocks --block_period=100
//   simulate_cli --topo=geometric --n=24 --churn=0.05 --gskew=distributed
//   simulate_cli --trace=trace.csv --series=skew.csv
#include <iostream>

#include "metrics/diameter.h"
#include "metrics/legality.h"
#include "metrics/recorder.h"
#include "metrics/skew.h"
#include "metrics/trace.h"
#include "runner/scenario.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/table.h"

using namespace gcs;

namespace {

int fail_usage(const std::string& message) {
  std::cerr << "error: " << message << "\n\n"
            << "usage: simulate_cli [--key=value ...]\n"
            << "  --topo=line|ring|grid|torus|star|complete|tree|gnp|geometric|"
               "hypercube|barbell\n"
            << "  --n=16 --rows=4 --cols=4 --dim=4 --k=5 --path=6 --p=0.2 --radius=0.35\n"
            << "  --algo=aopt|max-jump|bounded-rate-max|free-running\n"
            << "  --drift=none|spread|blocks|walk|sine  --block_period=200 --blocks=2\n"
            << "  --estimates=zero|uniform|adversarial|beacon\n"
            << "  --gskew=static|oracle|distributed  --gtilde=0 (0 = auto)\n"
            << "  --insertion=staged|dynamic|immediate|decay\n"
            << "  --rho=0.001 --mu=0.05 --horizon=500 --seed=1 --churn=0 (ops/time)\n"
            << "  --reference=-1 (node id; §3 reference-node mode)\n"
            << "  --trace=FILE.csv --series=FILE.csv --sample=5\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ScenarioConfig cfg;
  cfg.name = "simulate-cli";
  cfg.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  Rng rng(cfg.seed);

  // ---- topology ----
  const std::string topo = flags.get("topo", std::string("ring"));
  int n = flags.get("n", 16);
  std::vector<Point2> positions;
  if (topo == "line") {
    cfg.initial_edges = topo_line(n);
  } else if (topo == "ring") {
    cfg.initial_edges = topo_ring(n);
  } else if (topo == "grid" || topo == "torus") {
    const int rows = flags.get("rows", 4);
    const int cols = flags.get("cols", 4);
    n = rows * cols;
    cfg.initial_edges = topo == "grid" ? topo_grid(rows, cols) : topo_torus(rows, cols);
  } else if (topo == "star") {
    cfg.initial_edges = topo_star(n);
  } else if (topo == "complete") {
    cfg.initial_edges = topo_complete(n);
  } else if (topo == "tree") {
    cfg.initial_edges = topo_random_tree(n, rng);
  } else if (topo == "gnp") {
    cfg.initial_edges = topo_gnp_connected(n, flags.get("p", 0.2), rng);
  } else if (topo == "geometric") {
    cfg.initial_edges = topo_random_geometric(n, flags.get("radius", 0.35), rng, &positions);
  } else if (topo == "hypercube") {
    const int dim = flags.get("dim", 4);
    n = 1 << dim;
    cfg.initial_edges = topo_hypercube(dim);
  } else if (topo == "barbell") {
    const int k = flags.get("k", 5);
    const int path = flags.get("path", 6);
    n = 2 * k + path;
    cfg.initial_edges = topo_barbell(k, path);
  } else {
    return fail_usage("unknown --topo=" + topo);
  }
  cfg.n = n;

  // ---- algorithm ----
  const std::string algo = flags.get("algo", std::string("aopt"));
  if (algo == "aopt") cfg.algo = AlgoKind::kAopt;
  else if (algo == "max-jump") cfg.algo = AlgoKind::kMaxJump;
  else if (algo == "bounded-rate-max") cfg.algo = AlgoKind::kBoundedRateMax;
  else if (algo == "free-running") cfg.algo = AlgoKind::kFreeRunning;
  else return fail_usage("unknown --algo=" + algo);

  // ---- model parameters ----
  cfg.edge_params = default_edge_params(
      flags.get("eps", 0.1), flags.get("tau", 0.5),
      flags.get("delay_max", 0.5), flags.get("delay_min", 0.1));
  cfg.aopt.rho = flags.get("rho", 1e-3);
  cfg.aopt.mu = flags.get("mu", 0.05);
  const double gtilde = flags.get("gtilde", 0.0);
  cfg.aopt.gtilde_static =
      gtilde > 0.0 ? gtilde
                   : suggest_gtilde(cfg.n, cfg.initial_edges, cfg.edge_params, cfg.aopt);

  const std::string insertion = flags.get("insertion", std::string("staged"));
  if (insertion == "staged") cfg.aopt.insertion = InsertionPolicy::kStagedStatic;
  else if (insertion == "dynamic") cfg.aopt.insertion = InsertionPolicy::kStagedDynamic;
  else if (insertion == "immediate") cfg.aopt.insertion = InsertionPolicy::kImmediate;
  else if (insertion == "decay") cfg.aopt.insertion = InsertionPolicy::kWeightDecay;
  else return fail_usage("unknown --insertion=" + insertion);

  // ---- drift ----
  const std::string drift = flags.get("drift", std::string("spread"));
  if (drift == "none") cfg.drift = DriftKind::kNone;
  else if (drift == "spread") cfg.drift = DriftKind::kLinearSpread;
  else if (drift == "blocks") cfg.drift = DriftKind::kAlternatingBlocks;
  else if (drift == "walk") cfg.drift = DriftKind::kRandomWalk;
  else if (drift == "sine") cfg.drift = DriftKind::kSinusoidal;
  else return fail_usage("unknown --drift=" + drift);
  cfg.drift_block_period = flags.get("block_period", 200.0);
  cfg.drift_blocks = flags.get("blocks", 2);
  cfg.drift_sine_period = flags.get("sine_period", 400.0);

  // ---- estimates / G̃ source ----
  const std::string est = flags.get("estimates", std::string("uniform"));
  if (est == "zero") cfg.estimates = EstimateKind::kOracleZero;
  else if (est == "uniform") cfg.estimates = EstimateKind::kOracleUniform;
  else if (est == "adversarial") cfg.estimates = EstimateKind::kOracleAdversarial;
  else if (est == "beacon") cfg.estimates = EstimateKind::kBeacon;
  else return fail_usage("unknown --estimates=" + est);

  const std::string gskew = flags.get("gskew", std::string("static"));
  if (gskew == "static") cfg.gskew = GskewKind::kStatic;
  else if (gskew == "oracle") cfg.gskew = GskewKind::kOracle;
  else if (gskew == "distributed") cfg.gskew = GskewKind::kDistributed;
  else return fail_usage("unknown --gskew=" + gskew);

  cfg.reference_node = flags.get("reference", -1);

  const auto validation = cfg.aopt.validate();
  if (!validation.ok()) return fail_usage("invalid parameters:\n" + validation.str());
  std::cout << validation.str();

  // ---- run ----
  Scenario s(cfg);
  std::unique_ptr<ExecutionTrace> trace;
  if (flags.has("trace")) {
    trace = std::make_unique<ExecutionTrace>(s.engine(), flags.get("sample", 5.0));
  }
  s.start();

  const double churn_rate = flags.get("churn", 0.0);
  std::unique_ptr<ChurnAdversary> churn;
  if (churn_rate > 0.0) {
    ChurnAdversary::Config churn_cfg;
    churn_cfg.ops_per_time = churn_rate;
    churn_cfg.start = 10.0;
    churn = std::make_unique<ChurnAdversary>(s.sim(), s.graph(), cfg.initial_edges,
                                             cfg.edge_params, churn_cfg,
                                             cfg.seed ^ 0xabcULL);
    churn->arm();
  }

  const double horizon = flags.get("horizon", 500.0);
  const double sample = flags.get("sample", 5.0);
  TimeSeries global_series;
  TimeSeries local_series;
  PeriodicSampler sampler(s.sim(), sample, [&](Time t) {
    const auto snap = measure_skew(s.engine());
    global_series.add(t, snap.global);
    local_series.add(t, snap.worst_local);
  });
  sampler.start(sample);
  s.run_until(horizon);

  // ---- report ----
  Table table("simulate_cli: " + topo + " n=" + std::to_string(cfg.n) + ", " +
              to_string(cfg.algo) + ", horizon=" + format_double(horizon, 0));
  table.headers({"metric", "value"});
  table.row().cell("sigma").cell(cfg.aopt.sigma());
  table.row().cell("Ghat (static budget)").cell(cfg.aopt.gtilde_static);
  table.row().cell("D^ estimate").cell(estimate_dynamic_diameter(s.engine()));
  table.row().cell("global skew (final)").cell(global_series.last());
  table.row().cell("global skew (max)").cell(global_series.max());
  table.row().cell("worst local skew (max)").cell(local_series.max());
  const auto legality = check_legality(s.engine(), cfg.aopt.gtilde_static);
  table.row().cell("legality").cell(legality.legal());
  table.row().cell("legality margin").cell(legality.worst_margin);
  table.row().cell("events fired").cell(static_cast<long long>(s.sim().fired_count()));
  if (churn != nullptr) {
    table.row().cell("churn ops").cell(churn->additions() + churn->removals());
  }
  table.print();

  if (flags.has("series")) {
    CsvWriter csv(flags.get("series", std::string("series.csv")));
    csv.row({"t", "global_skew", "worst_local_skew"});
    for (std::size_t i = 0; i < global_series.points().size(); ++i) {
      csv.field(global_series.points()[i].first)
          .field(global_series.points()[i].second)
          .field(local_series.points()[i].second)
          .endrow();
    }
    std::cout << "wrote series to " << flags.get("series", std::string()) << "\n";
  }
  if (trace != nullptr) {
    trace->write_csv(flags.get("trace", std::string("trace.csv")));
    std::cout << "wrote " << trace->events().size() << " trace events to "
              << flags.get("trace", std::string()) << "\n";
  }
  return 0;
}
