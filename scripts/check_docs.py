#!/usr/bin/env python3
"""Documentation checks run by the CI docs job.

1. Relative-link integrity: every markdown link in README.md and docs/*.md
   whose target is a relative path must point at an existing file or
   directory in the repository (fragments are stripped; http(s)/mailto and
   pure-anchor links are ignored).

2. Registry coverage: every component name printed by `simulate_cli --list`
   (topologies, algorithms, drift models, estimate sources, global-skew
   estimators, adversaries) must be mentioned in docs/SCENARIOS.md, so the
   scenario catalogue can never silently fall behind the registries.

Exit status is non-zero iff any check fails; findings are printed one per
line, prefixed with the failing check.
"""

import argparse
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — excluding images is unnecessary: image targets must exist
# too. Nested parens in URLs are not used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# "  name — description" lines of `simulate_cli --list` (two-space indent;
# deeper-indented lines are per-component parameter docs).
COMPONENT_RE = re.compile(r"^  (\S+) — ", re.MULTILINE)


def doc_files():
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links():
    failures = []
    for doc in doc_files():
        for lineno, line in enumerate(doc.read_text(encoding="utf-8").splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    failures.append(
                        f"broken-link: {doc.relative_to(REPO)}:{lineno}: {target}"
                    )
    return failures


def check_registry_coverage(cli):
    out = subprocess.run(
        [cli, "--list"], check=True, capture_output=True, text=True
    ).stdout
    components = COMPONENT_RE.findall("".join(line + "\n" for line in out.splitlines()))
    if not components:
        return [f"registry-coverage: no components parsed from `{cli} --list`"]
    scenarios = REPO / "docs" / "SCENARIOS.md"
    if not scenarios.exists():
        return ["registry-coverage: docs/SCENARIOS.md is missing"]
    text = scenarios.read_text(encoding="utf-8")
    return [
        f"registry-coverage: component `{name}` (from --list) is not mentioned "
        "in docs/SCENARIOS.md"
        for name in components
        if not re.search(rf"(?<![\w-]){re.escape(name)}(?![\w-])", text)
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cli",
        default=None,
        help="path to simulate_cli; registry coverage is skipped when omitted",
    )
    args = parser.parse_args()

    failures = check_links()
    if args.cli:
        failures.extend(check_registry_coverage(args.cli))
    else:
        print("note: --cli not given, skipping registry coverage check")

    for failure in failures:
        print(failure)
    if failures:
        print(f"{len(failures)} documentation check(s) failed")
        return 1
    print("documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
