// E14 — the gradient guarantee is topology-independent (Def. 3.3 speaks only
//   of paths and weights). Sweep structurally different graphs with the same
//   worst-case drift and verify: zero gradient-bound violations, and the
//   worst *local* skew stays at the single-edge scale while the weighted
//   diameter (and with it the permissible global skew) varies wildly.
//
// The topology axis is a SweepRunner axis of registry component strings —
// adding a registered topology here is a one-line change.
#include "exp_common.h"

#include "graph/paths.h"

using namespace gcs;
using namespace gcs::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double measure = flags.get("measure", 400.0);
  const int threads = flags.get("threads", 2);

  print_header("E14 exp_topology_sweep",
               "gradient bound holds on every topology; local skew is set by "
               "kappa, not by the network shape");

  ScenarioSpec base;
  base.n = 32;
  base.edge_params = default_edge_params(0.05, 0.25, 0.5, 0.1);
  base.aopt.rho = 1e-3;
  base.aopt.mu = 0.1;
  base.gtilde_auto = true;
  base.drift = ComponentSpec("spread");
  base.estimates = ComponentSpec("uniform");
  base.seed = 3;

  Sweep sweep(base);
  sweep.axis("topo", std::vector<std::string>{
                         "line", "ring", "grid:rows=6,cols=6", "torus:rows=6,cols=6",
                         "hypercube:dim=5", "star", "tree", "barbell:k=12,path=8"});

  SweepOptions options;
  options.threads = threads;
  SweepRunner runner(options);
  runner.set_run_fn([measure](Scenario& s, RunResult& r) {
    s.start();
    const double ghat = s.spec().aopt.gtilde_static;
    const double sigma = s.spec().aopt.sigma();
    const auto& edges = s.initial_edges();
    const double kappa = metric_kappa(s.engine(), edges.front());

    s.run_until(2.0 * ghat / s.spec().aopt.mu);
    double worst_local = 0.0;
    double worst_pair = 0.0;
    int violations = 0;
    const Time start = s.sim().now();
    while (s.sim().now() < start + measure) {
      s.run_for(10.0);
      worst_local = std::max(worst_local, measure_skew(s.engine()).worst_local);
      for (const auto& p : measure_gradient(s.engine(), 1.0)) {
        worst_pair = std::max(worst_pair, p.skew);
        if (p.skew > gradient_bound(p.kappa_dist, ghat, sigma)) ++violations;
      }
    }

    const int diam = hop_diameter(s.spec().n, edges);
    r.values["hop diam"] = diam;
    r.values["Ghat"] = ghat;
    r.values["worst local"] = worst_local;
    r.values["local bound"] = gradient_bound(kappa, ghat, sigma);
    r.values["worst pair"] = worst_pair;
    r.values["pair bound at diam"] = gradient_bound(diam * kappa, ghat, sigma);
    r.values["violations"] = violations;
  });

  const auto results = runner.run(sweep);

  Table table("E14 — topology sweep (worst-case constant drift, same params)");
  table.headers({"topology", "hop diam", "Ghat", "worst local", "local bound",
                 "worst pair skew", "pair bound at diam", "violations"});
  for (const auto& r : results) {
    if (!r.ok()) {
      std::cerr << "run " << r.axes.at("topo") << " failed: " << r.error << "\n";
      continue;
    }
    table.row()
        .cell(r.axes.at("topo"))
        .cell(r.values.at("hop diam"), 0)
        .cell(r.values.at("Ghat"))
        .cell(r.values.at("worst local"))
        .cell(r.values.at("local bound"))
        .cell(r.values.at("worst pair"))
        .cell(r.values.at("pair bound at diam"))
        .cell(r.values.at("violations"), 0);
  }
  table.print();
  std::cout << "paper: 0 violations on every topology; the local column is flat "
               "across shapes while diameters differ by an order of magnitude\n";
  return 0;
}
