#include "metrics/skew.h"

#include <algorithm>
#include <cmath>

namespace gcs {

double metric_kappa(Engine& engine, const EdgeKey& e) {
  // Cached in the engine: per-sample recomputation (an EdgeParams copy plus
  // re-derived edge constants for every edge on every snapshot) made
  // recorder-heavy experiments pay O(edges) constant-folding per sample.
  return engine.metric_kappa(e);
}

double live_kappa(Engine& engine, const EdgeKey& e) {
  const double k = std::max(engine.algorithm(e.a).edge_kappa(e.b),
                            engine.algorithm(e.b).edge_kappa(e.a));
  return k > 0.0 ? k : metric_kappa(engine, e);
}

SkewSnapshot measure_skew(Engine& engine) {
  SkewSnapshot snap;
  snap.global = engine.true_global_skew();
  for (const EdgeKey& e : engine.graph().known_edges()) {
    if (!engine.graph().both_views_present(e)) continue;
    const double skew = std::fabs(engine.logical(e.a) - engine.logical(e.b));
    if (skew > snap.worst_local) {
      snap.worst_local = skew;
      snap.worst_local_edge = e;
    }
    const double kappa = metric_kappa(engine, e);
    if (kappa > 0.0) {
      snap.worst_local_ratio = std::max(snap.worst_local_ratio, skew / kappa);
    }
  }
  return snap;
}

double worst_pair_skew(Engine& engine, const std::vector<EdgeKey>& pairs) {
  double worst = 0.0;
  for (const auto& e : pairs) {
    worst = std::max(worst, std::fabs(engine.logical(e.a) - engine.logical(e.b)));
  }
  return worst;
}

std::vector<GradientPoint> measure_gradient(Engine& engine, Duration stable_for) {
  const Time now = engine.sim().now();
  std::vector<EdgeKey> stable;
  for (const EdgeKey& e : engine.graph().known_edges()) {
    const Time since = engine.graph().both_views_since(e);
    if (since == -kTimeInf) continue;
    if (now - since >= stable_for) stable.push_back(e);
  }
  const int n = engine.size();
  const AdjacencyList adj = build_adjacency(
      n, stable, [&engine](const EdgeKey& e) { return metric_kappa(engine, e); });
  const AdjacencyList hops_adj =
      build_adjacency(n, stable, [](const EdgeKey&) { return 1.0; });

  std::vector<GradientPoint> points;
  for (NodeId u = 0; u < n; ++u) {
    const auto dist = dijkstra(adj, u);
    const auto hops = bfs_hops(hops_adj, u);
    for (NodeId v = u + 1; v < n; ++v) {
      const double d = dist[static_cast<std::size_t>(v)];
      if (!std::isfinite(d)) continue;
      GradientPoint p;
      p.u = u;
      p.v = v;
      p.hops = hops[static_cast<std::size_t>(v)];
      p.kappa_dist = d;
      p.skew = std::fabs(engine.logical(u) - engine.logical(v));
      points.push_back(p);
    }
  }
  return points;
}

double gradient_bound(double kappa_dist, double ghat, double sigma) {
  require(kappa_dist > 0.0 && ghat > 0.0 && sigma > 1.0,
          "gradient_bound: bad arguments");
  const double s = std::max(
      1.0, 2.0 + std::ceil(std::log(ghat / kappa_dist) / std::log(sigma)));
  return (s + 1.0) * kappa_dist;
}

}  // namespace gcs
