#include <gtest/gtest.h>

#include <cmath>

#include "metrics/skew.h"
#include "runner/scenario.h"

namespace gcs {
namespace {

ScenarioSpec base_config(int n) {
  ScenarioSpec c;
  c.n = n;
  c.explicit_edges = topo_line(n);
  c.edge_params = default_edge_params();
  c.aopt.rho = 1e-3;
  c.aopt.mu = 0.05;
  c.aopt.gtilde_static =
      suggest_gtilde(n, c.explicit_edges, c.edge_params, c.aopt);
  c.drift = ComponentSpec("spread");
  c.estimates = ComponentSpec("uniform");
  c.engine.tick_period = 0.2;
  c.engine.beacon_period = 0.2;
  return c;
}

TEST(Engine, ClocksStartAtZeroAndAdvance) {
  Scenario s(base_config(4));
  s.start();
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_DOUBLE_EQ(s.engine().logical(u), 0.0);
    EXPECT_DOUBLE_EQ(s.engine().hardware(u), 0.0);
  }
  s.run_until(10.0);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_GT(s.engine().logical(u), 9.0);
    EXPECT_LT(s.engine().logical(u), 11.0);
  }
}

TEST(Engine, HardwareClocksRespectDriftEnvelope) {
  auto cfg = base_config(6);
  cfg.drift = ComponentSpec("walk");
  Scenario s(cfg);
  s.start();
  const double rho = cfg.aopt.rho;
  for (int step = 1; step <= 20; ++step) {
    s.run_until(step * 5.0);
    const Time t = s.sim().now();
    for (NodeId u = 0; u < 6; ++u) {
      const double h = s.engine().hardware(u);
      EXPECT_GE(h, (1.0 - rho) * t - 1e-9);
      EXPECT_LE(h, (1.0 + rho) * t + 1e-9);
      const double rate = s.engine().hardware_rate(u);
      EXPECT_GE(rate, 1.0 - rho - 1e-12);
      EXPECT_LE(rate, 1.0 + rho + 1e-12);
    }
  }
}

TEST(Engine, LogicalRatesWithinAlphaBetaEnvelope) {
  Scenario s(base_config(8));
  s.start();
  const double alpha = s.spec().aopt.alpha();
  const double beta = s.spec().aopt.beta();
  ClockValue prev[8] = {};
  Time prev_t = 0.0;
  for (int step = 1; step <= 40; ++step) {
    s.run_until(step * 2.5);
    const Time t = s.sim().now();
    for (NodeId u = 0; u < 8; ++u) {
      const ClockValue l = s.engine().logical(u);
      const double avg_rate = (l - prev[u]) / (t - prev_t);
      EXPECT_GE(avg_rate, alpha - 1e-9) << "node " << u << " step " << step;
      EXPECT_LE(avg_rate, beta + 1e-9) << "node " << u << " step " << step;
      prev[u] = l;
    }
    prev_t = t;
  }
}

TEST(Engine, MaxEstimateInvariants) {
  // Condition 4.3: L_u <= M_u <= max_v L_v at all sampled times.
  Scenario s(base_config(8));
  s.start();
  for (int step = 1; step <= 60; ++step) {
    s.run_until(step * 1.5);
    double max_logical = -kTimeInf;
    for (NodeId u = 0; u < 8; ++u) {
      max_logical = std::max(max_logical, s.engine().logical(u));
    }
    for (NodeId u = 0; u < 8; ++u) {
      const ClockValue l = s.engine().logical(u);
      const ClockValue m = s.engine().max_estimate(u);
      EXPECT_GE(m, l - 1e-9) << "eq. (4) violated at node " << u;
      EXPECT_LE(m, max_logical + 1e-9) << "eq. (2) violated at node " << u;
    }
  }
}

TEST(Engine, NoTriggerConflictsInNormalRun) {
  Scenario s(base_config(8));
  s.start();
  s.run_until(150.0);
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_FALSE(s.aopt(u).saw_trigger_conflict()) << "node " << u;
  }
}

TEST(Engine, GlobalSkewStaysBoundedOnLine) {
  // Theorem 5.6-flavored smoke test: with maximally divergent drift the
  // global skew must stay far below unsynchronized divergence and below G̃.
  auto cfg = base_config(8);
  Scenario s(cfg);
  s.start();
  double worst = 0.0;
  for (int step = 1; step <= 100; ++step) {
    s.run_until(step * 5.0);
    worst = std::max(worst, s.engine().true_global_skew());
  }
  // Unsynchronized divergence would be 2*rho*t = 0.002*500 = 1.0 per pair...
  // the point: skew is bounded by a constant, not growing with t.
  EXPECT_LT(worst, cfg.aopt.gtilde_static);
  const double tail = s.engine().true_global_skew();
  s.run_until(1000.0);
  EXPECT_LT(s.engine().true_global_skew(), std::max(2.0 * tail, worst * 1.5))
      << "global skew appears to grow without bound";
}

TEST(Engine, CorruptLogicalKeepsMaxInvariant) {
  Scenario s(base_config(4));
  s.start();
  s.run_until(20.0);
  s.engine().corrupt_logical(2, s.engine().logical(2) + 5.0);
  EXPECT_GE(s.engine().max_estimate(2), s.engine().logical(2) - 1e-9);
  s.engine().corrupt_logical(1, s.engine().logical(1) - 5.0);
  EXPECT_GE(s.engine().max_estimate(1), s.engine().logical(1) - 1e-9);
  s.run_until(40.0);  // must not crash; invariants hold again
  EXPECT_GE(s.engine().max_estimate(1), s.engine().logical(1) - 1e-9);
}

TEST(Engine, FreeRunningDiverges) {
  auto cfg = base_config(6);
  cfg.algo = ComponentSpec("free-running");
  Scenario s(cfg);
  s.start();
  s.run_until(2000.0);
  // LinearSpread: ends drift apart at 2*rho => skew ~ 2*0.001*2000 = 4.
  EXPECT_GT(s.engine().true_global_skew(), 3.0);
}

TEST(Engine, StartTwiceThrows) {
  Scenario s(base_config(3));
  s.start();
  EXPECT_THROW(s.engine().start(), std::runtime_error);
}

}  // namespace
}  // namespace gcs
