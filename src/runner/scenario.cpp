#include "runner/scenario.h"

#include <cmath>

#include "graph/paths.h"

namespace gcs {

const char* to_string(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kAopt: return "AOPT";
    case AlgoKind::kMaxJump: return "max-jump";
    case AlgoKind::kBoundedRateMax: return "bounded-rate-max";
    case AlgoKind::kFreeRunning: return "free-running";
  }
  return "?";
}

ScenarioSpec to_spec(const ScenarioConfig& config) {
  ScenarioSpec spec;
  spec.name = config.name;
  spec.n = config.n;
  spec.seed = config.seed;
  spec.topology = ComponentSpec("explicit");
  spec.explicit_edges = config.initial_edges;
  spec.edge_params = config.edge_params;
  spec.aopt = config.aopt;
  spec.engine = config.engine;
  spec.detection = config.detection;
  spec.delays = config.delays;
  spec.reference_node = config.reference_node;

  switch (config.algo) {
    case AlgoKind::kAopt: spec.algo = ComponentSpec("aopt"); break;
    case AlgoKind::kMaxJump: spec.algo = ComponentSpec("max-jump"); break;
    case AlgoKind::kBoundedRateMax: spec.algo = ComponentSpec("bounded-rate-max"); break;
    case AlgoKind::kFreeRunning: spec.algo = ComponentSpec("free-running"); break;
  }

  switch (config.drift) {
    case DriftKind::kNone:
      spec.drift = ComponentSpec("none");
      break;
    case DriftKind::kLinearSpread:
      spec.drift = ComponentSpec("spread");
      break;
    case DriftKind::kAlternatingBlocks:
      spec.drift = ComponentSpec("blocks");
      spec.drift.params.set("period", config.drift_block_period);
      spec.drift.params.set("blocks", config.drift_blocks);
      break;
    case DriftKind::kRandomWalk:
      spec.drift = ComponentSpec("walk");
      spec.drift.params.set("period", config.drift_walk_period);
      spec.drift.params.set("std", config.drift_walk_std);
      break;
    case DriftKind::kSinusoidal:
      spec.drift = ComponentSpec("sine");
      spec.drift.params.set("period", config.drift_sine_period);
      break;
  }

  switch (config.estimates) {
    case EstimateKind::kOracleZero: spec.estimates = ComponentSpec("zero"); break;
    case EstimateKind::kOracleUniform: spec.estimates = ComponentSpec("uniform"); break;
    case EstimateKind::kOracleAdversarial:
      spec.estimates = ComponentSpec("adversarial");
      break;
    case EstimateKind::kBeacon: spec.estimates = ComponentSpec("beacon"); break;
  }

  switch (config.gskew) {
    case GskewKind::kStatic:
      spec.gskew = ComponentSpec("static");
      break;
    case GskewKind::kOracle:
      spec.gskew = ComponentSpec("oracle");
      spec.gskew.params.set("factor", config.gskew_factor);
      spec.gskew.params.set("margin", config.gskew_margin);
      break;
    case GskewKind::kDistributed:
      spec.gskew = ComponentSpec("distributed");
      if (config.gskew_diameter_hint > 0.0) {
        spec.gskew.params.set("hint", config.gskew_diameter_hint);
      }
      break;
  }
  return spec;
}

Scenario::Scenario(const ScenarioConfig& config) : Scenario(to_spec(config)) {}

TopologyResult materialize_topology(const ScenarioSpec& spec) {
  Rng topo_rng(spec.seed);
  TopologyArgs targs{spec.n, topo_rng, &spec.explicit_edges};
  const auto& entry = topology_registry().get(spec.topology.kind);
  TopologyResult topo = entry.factory(spec.topology.params, targs);
  require(topo.n >= 1, "Scenario: topology produced n < 1");
  for (const EdgeKey& e : topo.edges) {
    require(e.a >= 0 && e.b < topo.n,
            "Scenario: edge " + e.str() + " out of range for n=" +
                std::to_string(topo.n));
  }
  return topo;
}

Scenario::Scenario(ScenarioSpec spec) : spec_(std::move(spec)) {
  spec_.validate();

  // ---- topology (may override n) ----
  {
    TopologyResult topo = materialize_topology(spec_);
    spec_.n = topo.n;
    initial_edges_ = std::move(topo.edges);
    positions_ = std::move(topo.positions);
  }

  if (spec_.gtilde_auto) {
    spec_.aopt.gtilde_static =
        suggest_gtilde(spec_.n, initial_edges_, spec_.edge_params, spec_.aopt);
  }
  const auto validation = spec_.aopt.validate();
  require(validation.ok(), "Scenario: invalid AlgoParams:\n" + validation.str());

  graph_ = std::make_unique<DynamicGraph>(sim_, spec_.n, spec_.seed ^ 0x9e1ULL);
  graph_->set_detection_delay_mode(spec_.detection);
  transport_ = std::make_unique<Transport>(sim_, *graph_, spec_.seed ^ 0x71fULL);
  transport_->set_delay_mode(spec_.delays);

  // ---- drift ----
  {
    DriftArgs dargs{spec_.n, spec_.aopt.rho, spec_.seed};
    drift_ = drift_registry().get(spec_.drift.kind).factory(spec_.drift.params, dargs);
    require(drift_ != nullptr, "Scenario: drift factory returned null");
  }
  if (spec_.reference_node != kNoNode) {
    // §3 remark: boost the reference node and widen the drift bound the
    // algorithm reasons with to the effective ρ̃.
    require(spec_.reference_node < spec_.n, "Scenario: reference node out of range");
    auto wrapped = std::make_unique<ReferenceNodeDrift>(std::move(drift_),
                                                        spec_.reference_node);
    spec_.aopt.rho = wrapped->rho();
    const auto revalidate = spec_.aopt.validate();
    require(revalidate.ok(),
            "Scenario: params invalid under reference-node rho~:\n" + revalidate.str());
    drift_ = std::move(wrapped);
  }

  // ---- estimate layer ----
  {
    EstimateArgs eargs{*graph_, spec_.engine.beacon_period, spec_.aopt.rho,
                       spec_.aopt.mu, spec_.seed};
    estimates_ =
        estimate_registry().get(spec_.estimates.kind).factory(spec_.estimates.params, eargs);
    require(estimates_ != nullptr, "Scenario: estimate factory returned null");
  }

  // ---- global-skew estimator ----
  {
    GskewArgs gargs;
    gargs.gtilde_static = spec_.aopt.gtilde_static;
    // Conservative a-priori D̂ from what the nodes know: every potential hop
    // costs at most one beacon period plus the worst delay bound, amplified
    // by the drift envelope.
    gargs.default_diameter_hint =
        static_cast<double>(spec_.n) *
            (spec_.engine.beacon_period + spec_.edge_params.msg_delay_max) *
            (2.0 * spec_.aopt.rho + spec_.aopt.mu * (1.0 + spec_.aopt.rho) +
             (1.0 - spec_.aopt.rho) * spec_.edge_params.delay_uncertainty() /
                 (spec_.engine.beacon_period + spec_.edge_params.msg_delay_max)) +
        1.0;
    // The engine pointer is a stable member set below, before any estimate
    // is requested.
    gargs.true_global_skew = [this] { return engine_->true_global_skew(); };
    gargs.max_estimate = [this](NodeId u) { return engine_->max_estimate(u); };
    gargs.min_estimate = [this](NodeId u) { return engine_->min_estimate(u); };
    gskew_ = gskew_registry().get(spec_.gskew.kind).factory(spec_.gskew.params, gargs);
    require(gskew_ != nullptr, "Scenario: gskew factory returned null");
  }

  // ---- algorithm + engine ----
  AlgoArgs aargs{spec_.aopt};
  Engine::AlgorithmFactory factory =
      algo_registry().get(spec_.algo.kind).factory(spec_.algo.params, aargs);
  engine_ = std::make_unique<Engine>(sim_, *graph_, *transport_, *drift_,
                                     *estimates_, *gskew_, spec_.aopt,
                                     spec_.engine, factory);

  // ---- adversary (nullptr for "none") ----
  {
    AdversaryArgs advargs{sim_, *graph_, initial_edges_, spec_.edge_params, spec_.seed};
    adversary_ =
        adversary_registry().get(spec_.adversary.kind).factory(spec_.adversary.params, advargs);
  }
}

void Scenario::start() {
  require(!started_, "Scenario: start() called twice");
  require(sim_.now() == 0.0, "Scenario: must start at time 0");
  started_ = true;
  for (const EdgeKey& e : initial_edges_) {
    graph_->create_edge_instant(e, spec_.edge_params);
  }
  engine_->start();
  if (adversary_ != nullptr) adversary_->arm();
}

AoptNode& Scenario::aopt(NodeId u) {
  auto* node = dynamic_cast<AoptNode*>(&engine_->algorithm(u));
  require(node != nullptr, "Scenario: node does not run AOPT");
  return *node;
}

EdgeParams default_edge_params(double eps, double tau, double delay_max,
                               double delay_min) {
  EdgeParams p;
  p.eps = eps;
  p.tau = tau;
  p.msg_delay_max = delay_max;
  p.msg_delay_min = delay_min;
  p.validate();
  return p;
}

double suggest_gtilde(int n, const std::vector<EdgeKey>& edges,
                      const EdgeParams& edge_params, const AlgoParams& aopt) {
  const double kappa = aopt.edge_constants(edge_params).kappa;
  const AdjacencyList adj =
      build_adjacency(n, edges, [kappa](const EdgeKey&) { return kappa; });
  const double diameter = weighted_diameter(adj);
  require(std::isfinite(diameter), "suggest_gtilde: initial topology disconnected");
  // Global skew stabilizes around the uncertainty diameter (Theorem 5.6);
  // κ-diameter upper-bounds it comfortably. Add slack for transients.
  return std::max(1.0, 1.5 * diameter + 4.0 * kappa);
}

}  // namespace gcs
