#include "rt/rt_node.h"

namespace gcs {

ScenarioSpec RtNode::localize(ScenarioSpec spec, NodeId self) {
  spec.engine.local_node = self;
  return spec;
}

RtNode::RtNode(ScenarioSpec spec, NodeId self, RtTransport& net, TimeSource& clock)
    : self_(self), net_(net), clock_(clock),
      scenario_(localize(std::move(spec), self)) {
  require(self >= 0 && self < scenario_.spec().n,
          "RtNode: self out of range for the resolved topology");
  scenario_.transport().set_egress(this);
}

void RtNode::enable_detector(const DetectorConfig& config) {
  require(!detector_, "RtNode: detector already enabled");
  config.validate();
  detector_config_ = config;
}

void RtNode::start() {
  scenario_.start();
  if (detector_config_) {
    // Monitor the t=0 neighbors: the membership universe is the spec
    // topology (every replica knows the same potential edges and their
    // params); what the detector decides is which of them are LIVE.
    detector_.emplace(*detector_config_);
    for (const NeighborView& nv : scenario_.graph().view_neighbors(self_)) {
      monitored_.push_back(nv.id);
      detector_->add_peer(nv.id, scenario_.sim().now(), /*alive=*/true);
    }
  }
}

Time RtNode::pump() {
  int admin = admin_.load(std::memory_order_acquire);
  if (admin == kCrashRequested) {
    int expected = kCrashRequested;
    admin = admin_.compare_exchange_strong(expected, kDown) ? kDown : expected;
  }
  if (admin == kDown) {
    // Crashed: execute nothing, but keep draining the ingress so rings and
    // socket buffers do not fill with frames the dead node will never read.
    WireMsg m;
    while (net_.poll(self_, m)) ++discarded_;
    return clock_.now();
  }
  if (admin == kRestartRequested) {
    do_restart();
    int expected = kRestartRequested;
    admin_.compare_exchange_strong(expected, kUp);
  }
  Simulator& sim = scenario_.sim();
  const Time t = clock_.now();
  // Slave the kernel to the wall clock: fire everything due, idling model
  // time up to t even when the queue is empty.
  if (t > sim.now()) sim.run_until(t);
  // Drain the ingress. Injected deliveries run at the current model instant;
  // the engine defers trigger evaluation to the instant flush, which the
  // trailing (degenerate) run_until forces before we hand the thread back.
  WireMsg m;
  bool work = false;
  while (net_.poll(self_, m)) {
    handle_ingress(m);
    work = true;
  }
  if (detector_ && apply_liveness(sim.now())) work = true;
  if (work) sim.run_until(sim.now());
  return sim.now();
}

void RtNode::handle_ingress(const WireMsg& m) {
  if (m.to != self_) {
    ++rejected_;
    return;
  }
  // Any frame is liveness evidence — fed BEFORE the view-based rejection
  // below, since a frame from an evicted peer is exactly what rediscovery
  // looks like. A revival re-creates the edge first, so the same frame that
  // revived the peer can then be injected normally.
  if (detector_ && detector_->on_frame(m.from, scenario_.sim().now())) {
    revive_edge(m.from);
  }
  if (const auto* ping = std::get_if<LivenessPing>(&m.payload)) {
    // Runtime-layer traffic: answer pings, consume pongs, inject neither.
    ++ingress_;
    if (ping->kind == 0) send_ping(m.from, /*kind=*/1, ping->seq);
    return;
  }
  inject(m);
}

void RtNode::inject(const WireMsg& m) {
  // Same rule the in-sim transport applies at delivery time: a frame from a
  // peer outside our current view is dropped (paper §3.1 allows it, and the
  // estimate layer must never consume data from unknown edges).
  const NeighborView* nv = scenario_.graph().find_neighbor(self_, m.from);
  if (nv == nullptr) {
    ++rejected_;
    return;
  }
  Delivery d;
  d.from = m.from;
  d.to = self_;
  d.sent_at = m.sent_at;
  d.delivered_at = scenario_.sim().now();
  d.known_min_delay = nv->params->msg_delay_min;
  d.payload = &m.payload;
  static_cast<DeliverySink&>(scenario_.engine()).on_delivery(d);
  ++ingress_;
}

void RtNode::revive_edge(NodeId peer) {
  const EdgeKey e(self_, peer);
  DynamicGraph& graph = scenario_.graph();
  // The record survives eviction, so the params are the originals — checked
  // identical by create_edge. Instant flip: the peer demonstrably exists
  // RIGHT NOW; the detector's own latency already covered any tau. The
  // engine's on_edge_discovered then runs the full insertion handshake
  // (rediscovered means inserted, never assumed legal).
  graph.create_edge_instant(e, graph.params(e));
}

bool RtNode::apply_liveness(Time now) {
  actions_.clear();
  detector_->poll(now, actions_);
  for (const LivenessAction& a : actions_) {
    switch (a.kind) {
      case LivenessAction::Kind::kEvict:
        scenario_.graph().destroy_edge_instant(EdgeKey(self_, a.peer));
        break;
      case LivenessAction::Kind::kProbe:
        send_ping(a.peer, /*kind=*/0, ping_seq_++);
        break;
    }
  }
  return !actions_.empty();
}

void RtNode::send_ping(NodeId peer, std::uint32_t kind, std::uint32_t seq) {
  WireMsg m;
  m.from = self_;
  m.to = peer;
  m.sent_at = scenario_.sim().now();
  m.payload = LivenessPing{seq, kind};
  if (!muted_ && net_.send(m)) ++egress_;
}

void RtNode::do_restart() {
  Simulator& sim = scenario_.sim();
  // Discard the backlog addressed to the dead incarnation.
  WireMsg m;
  while (net_.poll(self_, m)) ++discarded_;
  // Fast-forward the kernel through the outage with egress muted: the
  // backlogged periodic timers (beacons, probes, drift updates, sampling
  // closures) fire in order without leaking frames from the dead period,
  // leaving every recurring event re-armed on the live timeline.
  muted_ = true;
  const Time t = clock_.now();
  if (t > sim.now()) sim.run_until(t);
  muted_ = false;
  // Forget our neighbors: while we were dead they evicted us, and the paper
  // offers exactly one way back — the insertion protocol. Dropping our side
  // makes the rejoin symmetric: our probes revive us over there, their
  // frames revive them over here, both ends re-insert.
  if (detector_) {
    for (NodeId peer : monitored_) {
      scenario_.graph().destroy_edge_instant(EdgeKey(self_, peer));
      detector_->mark_down(peer, sim.now());
    }
    sim.run_until(sim.now());  // flush the edge-loss instant
  }
  ++restarts_;
}

void RtNode::request_crash() {
  int expected = kUp;
  admin_.compare_exchange_strong(expected, kCrashRequested);
}

void RtNode::request_restart() {
  for (;;) {
    int cur = admin_.load(std::memory_order_acquire);
    if (cur == kUp || cur == kRestartRequested) return;
    // kDown -> restart at next pump; an unconsumed crash request collapses
    // with the restart into one down-and-back blip.
    if (admin_.compare_exchange_weak(cur, kRestartRequested)) return;
  }
}

void RtNode::recover_logical(ClockValue anchor) {
  Engine& engine = scenario_.engine();
  if (anchor > engine.logical(self_)) engine.corrupt_logical(self_, anchor);
}

void RtNode::send(NodeId from, NodeId to, Time sent_at, const Payload& payload) {
  // Only the executed node ever sends in service mode; anything else would
  // mean a mirror node ran logic it must not.
  require(from == self_, "RtNode: egress from a non-local node");
  if (muted_) return;  // restart catch-up: the dead period stays silent
  WireMsg m;
  m.from = from;
  m.to = to;
  m.sent_at = sent_at;
  m.payload = payload;
  if (net_.send(m)) ++egress_;
}

}  // namespace gcs
