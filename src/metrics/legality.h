// Legality checking (Definitions 5.11-5.13).
//
// Ψ^s_u(t) = max over level-s paths p=(u,...,v) of {L_v − L_u − (s+½)κ_p}.
// Because the κ-cost is additive along the path and the profit depends only
// on the endpoint, Ψ^s_u = max_v {L_v − L_u − (s+½)·d^s_κ(u,v)} where d^s_κ
// is the min-κ-weight over level-s paths — one Dijkstra per (u, s).
// The trivial path (u) is a level-s path, so Ψ^s_u >= 0 always.
//
// The system is (C,s)-legal at u iff Ψ^s_u < C_s/2; we use the stabilized
// gradient sequence C_s = 2·Ĝ/σ^{max(s−2,0)} (Definition 5.19 / Thm 5.25).
#pragma once

#include <vector>

#include "core/engine.h"
#include "graph/paths.h"

namespace gcs {

/// The stabilized gradient sequence value C_s (Def. 5.19 with the level
/// fully inserted): C_s = 2Ĝ/σ^{max(s−2,0)}.
double gradient_sequence_value(double ghat, double sigma, int s);

struct LevelLegality {
  int level = 0;
  double c_s = 0.0;          ///< C_s
  double worst_psi = 0.0;    ///< max_u Ψ^s_u
  NodeId worst_node = kNoNode;
  double margin = 0.0;       ///< worst_psi − C_s/2 (negative = legal)
};

struct LegalityReport {
  std::vector<LevelLegality> levels;
  double worst_margin = -kTimeInf;
  int worst_level = 0;
  NodeId worst_node = kNoNode;
  [[nodiscard]] bool legal() const { return worst_margin < 0.0; }
};

/// The level-s edge set E_s(t) (Def. 5.8): both endpoints hold the peer in
/// their level-s neighbor set.
std::vector<EdgeKey> level_edge_set(Engine& engine, int s);

/// Ψ^s_u for every node at the current instant (kAllLevels-safe).
std::vector<double> compute_psi(Engine& engine, int s);

/// Check legality for levels s = 1..s_stop where s_stop is data-driven
/// (C_s below κ_min/4 adds no information) and capped at `level_cap`.
LegalityReport check_legality(Engine& engine, double ghat, int level_cap = 32);

/// Brute-force Ψ^s_u by path enumeration (exponential; tests only).
double psi_bruteforce(Engine& engine, NodeId u, int s, int max_path_len);

}  // namespace gcs
