#include <gtest/gtest.h>

#include <cmath>

#include "metrics/diameter.h"
#include "metrics/legality.h"
#include "metrics/recorder.h"
#include "metrics/skew.h"
#include "runner/scenario.h"

namespace gcs {
namespace {

ScenarioSpec small_config(int n, const std::vector<EdgeKey>& edges) {
  ScenarioSpec cfg;
  cfg.n = n;
  cfg.explicit_edges = edges;
  cfg.edge_params = default_edge_params();
  cfg.aopt.rho = 1e-3;
  cfg.aopt.mu = 0.05;
  cfg.aopt.gtilde_static = suggest_gtilde(n, edges, cfg.edge_params, cfg.aopt);
  cfg.drift = ComponentSpec("spread");
  cfg.estimates = ComponentSpec("uniform");
  return cfg;
}

TEST(TimeSeriesTest, TracksExtremaAndThresholds) {
  TimeSeries ts;
  ts.add(0.0, 5.0);
  ts.add(1.0, 8.0);
  ts.add(2.0, 3.0);
  ts.add(3.0, 4.0);
  EXPECT_DOUBLE_EQ(ts.max(), 8.0);
  EXPECT_DOUBLE_EQ(ts.min(), 3.0);
  EXPECT_DOUBLE_EQ(ts.last(), 4.0);
  EXPECT_DOUBLE_EQ(ts.max_in(1.5, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(ts.first_below(4.5, 0.0), 2.0);
  EXPECT_EQ(ts.first_below(1.0, 0.0), kTimeInf);
}

TEST(PeriodicSamplerTest, SamplesAtPeriod) {
  Simulator sim;
  std::vector<Time> samples;
  PeriodicSampler sampler(sim, 2.0, [&](Time t) { samples.push_back(t); });
  sampler.start(1.0);
  sim.run_until(9.0);
  ASSERT_EQ(samples.size(), 5u);  // 1,3,5,7,9
  EXPECT_DOUBLE_EQ(samples[0], 1.0);
  EXPECT_DOUBLE_EQ(samples[4], 9.0);
  sampler.stop();
  sim.run_until(20.0);
  EXPECT_EQ(samples.size(), 5u);
}

TEST(SkewMetrics, GlobalMatchesEngine) {
  Scenario s(small_config(5, topo_line(5)));
  s.start();
  s.run_until(40.0);
  const auto snap = measure_skew(s.engine());
  EXPECT_DOUBLE_EQ(snap.global, s.engine().true_global_skew());
  EXPECT_GE(snap.global, snap.worst_local);  // global dominates any edge skew
  EXPECT_GT(snap.worst_local, 0.0);
}

TEST(SkewMetrics, MetricKappaMatchesAoptDerivation) {
  Scenario s(small_config(3, topo_line(3)));
  s.start();
  const double kappa = metric_kappa(s.engine(), EdgeKey(0, 1));
  EXPECT_DOUBLE_EQ(kappa, s.aopt(0).edge_kappa(1));
  EXPECT_GT(kappa, 0.0);
}

TEST(SkewMetrics, GradientPointsCoverAllStablePairs) {
  Scenario s(small_config(6, topo_line(6)));
  s.start();
  s.run_until(20.0);
  const auto points = measure_gradient(s.engine(), 1.0);
  EXPECT_EQ(points.size(), 15u);  // C(6,2) pairs on a connected stable line
  for (const auto& p : points) {
    EXPECT_GT(p.kappa_dist, 0.0);
    EXPECT_GE(p.hops, 1);
    const double kappa = metric_kappa(s.engine(), EdgeKey(0, 1));
    EXPECT_NEAR(p.kappa_dist, p.hops * kappa, 1e-9);  // uniform weights
  }
}

TEST(SkewMetrics, GradientRespectsStabilityFilter) {
  Scenario s(small_config(4, topo_line(4)));
  s.start();
  s.run_until(20.0);
  s.graph().create_edge(EdgeKey(0, 3), s.spec().edge_params);
  s.run_until(22.0);
  // With a high stability requirement the new edge's shortcut is ignored.
  const auto strict = measure_gradient(s.engine(), 10.0);
  const auto loose = measure_gradient(s.engine(), 0.5);
  double strict_d03 = 0.0;
  double loose_d03 = 0.0;
  for (const auto& p : strict) {
    if (p.u == 0 && p.v == 3) strict_d03 = p.kappa_dist;
  }
  for (const auto& p : loose) {
    if (p.u == 0 && p.v == 3) loose_d03 = p.kappa_dist;
  }
  EXPECT_GT(strict_d03, loose_d03);  // 3 hops vs 1 hop
}

TEST(GradientBound, ShapeIsDLogDOverd) {
  const double ghat = 100.0;
  const double sigma = 25.0;
  // Bound per unit distance shrinks as distance grows (the log factor).
  const double per_unit_short = gradient_bound(1.0, ghat, sigma) / 1.0;
  const double per_unit_long = gradient_bound(50.0, ghat, sigma) / 50.0;
  EXPECT_GT(per_unit_short, per_unit_long);
  // For d >= sigma*ghat the level is clamped at s=1 => bound 2d.
  EXPECT_DOUBLE_EQ(gradient_bound(3000.0, ghat, sigma), 2.0 * 3000.0);
}

TEST(Legality, GradientSequenceValues) {
  const double ghat = 8.0;
  const double sigma = 4.0;
  EXPECT_DOUBLE_EQ(gradient_sequence_value(ghat, sigma, 1), 16.0);
  EXPECT_DOUBLE_EQ(gradient_sequence_value(ghat, sigma, 2), 16.0);
  EXPECT_DOUBLE_EQ(gradient_sequence_value(ghat, sigma, 3), 4.0);
  EXPECT_DOUBLE_EQ(gradient_sequence_value(ghat, sigma, 4), 1.0);
}

TEST(Legality, PsiMatchesBruteForceOnSmallGraph) {
  // Ring + chord, drifted apart: the Dijkstra reduction must equal
  // exhaustive path enumeration for every node and level.
  std::vector<EdgeKey> edges = topo_ring(5);
  edges.emplace_back(0, 2);
  Scenario s(small_config(5, edges));
  s.start();
  s.run_until(120.0);
  for (int level : {1, 2, 3}) {
    const auto psi = compute_psi(s.engine(), level);
    for (NodeId u = 0; u < 5; ++u) {
      const double brute = psi_bruteforce(s.engine(), u, level, 5);
      EXPECT_NEAR(psi[static_cast<std::size_t>(u)], brute, 1e-9)
          << "node " << u << " level " << level;
    }
  }
}

TEST(Legality, PsiNonNegativeAndMonotoneInLevel) {
  Scenario s(small_config(6, topo_line(6)));
  s.start();
  s.run_until(80.0);
  const auto psi1 = compute_psi(s.engine(), 1);
  const auto psi2 = compute_psi(s.engine(), 2);
  const auto psi3 = compute_psi(s.engine(), 3);
  for (NodeId u = 0; u < 6; ++u) {
    const auto i = static_cast<std::size_t>(u);
    EXPECT_GE(psi1[i], 0.0);
    // Lemma 5.15 (ii): Psi^s <= Psi^{s'} for s' <= s.
    EXPECT_LE(psi2[i], psi1[i] + 1e-12);
    EXPECT_LE(psi3[i], psi2[i] + 1e-12);
  }
}

TEST(Legality, SynchronizedStartIsLegal) {
  Scenario s(small_config(6, topo_line(6)));
  s.start();
  const auto report = check_legality(s.engine(), s.spec().aopt.gtilde_static);
  EXPECT_TRUE(report.legal());
  EXPECT_FALSE(report.levels.empty());
}

TEST(Legality, DetectsIllegalConfiguration) {
  Scenario s(small_config(4, topo_line(4)));
  s.start();
  s.run_until(10.0);
  // Hoist one interior node far above its neighbors: Psi at its neighbors
  // jumps to ~offset, which must exceed C_s/2 for deep levels.
  s.engine().corrupt_logical(1, s.engine().logical(1) + 50.0);
  const auto report = check_legality(s.engine(), s.spec().aopt.gtilde_static);
  EXPECT_FALSE(report.legal());
  EXPECT_GT(report.worst_margin, 0.0);
}

TEST(DiameterEstimate, ScalesWithHopCount) {
  Scenario s4(small_config(4, topo_line(4)));
  s4.start();
  Scenario s8(small_config(8, topo_line(8)));
  s8.start();
  const double d4 = estimate_dynamic_diameter(s4.engine());
  const double d8 = estimate_dynamic_diameter(s8.engine());
  EXPECT_GT(d8, d4 * 1.5);
  EXPECT_LT(d8, d4 * 3.0);
  // Per-hop cost sanity: positive, dominated by delay uncertainty.
  const double cost =
      hop_uncertainty_cost(default_edge_params(), 0.25, 1e-3);
  EXPECT_GT(cost, 0.0);
  EXPECT_NEAR(d4, 3.0 * cost, 1e-9);
}

TEST(DiameterEstimate, InfiniteWhenDisconnected) {
  ScenarioSpec cfg = small_config(4, topo_line(4));
  cfg.explicit_edges = {EdgeKey(0, 1), EdgeKey(2, 3)};  // two components
  Scenario s(cfg);
  s.start();
  EXPECT_TRUE(std::isinf(estimate_dynamic_diameter(s.engine())));
}

}  // namespace
}  // namespace gcs
