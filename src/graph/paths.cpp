#include "graph/paths.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

namespace gcs {

AdjacencyList build_adjacency(
    int n, const std::vector<EdgeKey>& edges,
    const std::function<double(const EdgeKey&)>& weight) {
  AdjacencyList adj(static_cast<std::size_t>(n));
  for (const auto& e : edges) {
    const double w = weight(e);
    if (w <= 0.0) [[unlikely]] {
      throw std::runtime_error("build_adjacency: non-positive edge weight on " +
                               e.str());
    }
    adj[static_cast<std::size_t>(e.a)].push_back({e.b, w});
    adj[static_cast<std::size_t>(e.b)].push_back({e.a, w});
  }
  return adj;
}

std::vector<double> dijkstra(const AdjacencyList& adj, NodeId src) {
  const auto n = adj.size();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist.at(static_cast<std::size_t>(src)) = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& edge : adj[static_cast<std::size_t>(u)]) {
      const double nd = d + edge.weight;
      if (nd < dist[static_cast<std::size_t>(edge.to)]) {
        dist[static_cast<std::size_t>(edge.to)] = nd;
        heap.emplace(nd, edge.to);
      }
    }
  }
  return dist;
}

std::vector<int> bfs_hops(const AdjacencyList& adj, NodeId src) {
  std::vector<int> dist(adj.size(), -1);
  std::deque<NodeId> frontier{src};
  dist.at(static_cast<std::size_t>(src)) = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const auto& edge : adj[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(edge.to)] < 0) {
        dist[static_cast<std::size_t>(edge.to)] = dist[static_cast<std::size_t>(u)] + 1;
        frontier.push_back(edge.to);
      }
    }
  }
  return dist;
}

namespace {

NodeId farthest_node(const std::vector<double>& dist) {
  NodeId best = 0;
  for (NodeId v = 1; v < static_cast<NodeId>(dist.size()); ++v) {
    if (dist[static_cast<std::size_t>(v)] > dist[static_cast<std::size_t>(best)]) {
      best = v;
    }
  }
  return best;
}

}  // namespace

double weighted_diameter(const AdjacencyList& adj) {
  if (adj.size() <= 1) return 0.0;
  std::size_t degree_sum = 0;
  for (const auto& nbrs : adj) degree_sum += nbrs.size();
  if (degree_sum == 2 * (adj.size() - 1)) {
    // n-1 undirected edges: connected => tree (disconnected shows up as +inf
    // below either way). On a tree the classic double sweep finds the exact
    // diameter with two Dijkstras instead of n: the farthest node from any
    // start is a diameter endpoint. This keeps large-scenario construction
    // (suggest_gtilde on line/tree topologies) out of O(n^2 log n).
    const auto from_start = dijkstra(adj, 0);
    const NodeId a = farthest_node(from_start);
    if (!std::isfinite(from_start[static_cast<std::size_t>(a)])) {
      return kTimeInf;
    }
    const auto from_a = dijkstra(adj, a);
    return from_a[static_cast<std::size_t>(farthest_node(from_a))];
  }
  double diameter = 0.0;
  for (NodeId u = 0; u < static_cast<NodeId>(adj.size()); ++u) {
    const auto dist = dijkstra(adj, u);
    for (double d : dist) diameter = std::max(diameter, d);
  }
  return diameter;
}

}  // namespace gcs
