// Pure evaluation of the fast/slow mode triggers (Defs. 4.5 and 4.6).
//
// Extracted from AoptNode so the trigger semantics — including the mutual
// exclusion guaranteed by Lemma 5.3 — can be unit- and property-tested in
// isolation from the engine.
//
// ## Invariants of the incremental (split) form
//
// The scan factors into two parts with different change cadences:
//
//  * TriggerAggregates — max ε, max δ, min κ and membership over the
//    level-(>=1) peers. These depend only on *structure* (which edges are
//    inserted at which level, their per-edge constants), so a caller may
//    cache them across re-evaluations and recompute only when membership or
//    a level changes (AoptNode does; weight-decay κ forces a recompute every
//    scan because κ_e itself is time-varying there). The aggregates are
//    order-independent (pure max/min folds), so caching cannot change the
//    result vs. the one-pass form.
//  * max_abs — the largest observed |L̃ᵥᵤ − L_u|, which moves with every
//    estimate refresh and is recomputed each scan by the caller.
//
// Both feed the data-driven level bound: beyond s with s·κ_min exceeding
// max_abs + max ε + max δ, neither existential condition can hold, so the
// per-level loop terminates after O(discrepancy/κ) levels. Entries with
// level_limit < 1 may be present in the array; they are inert in every
// condition (membership tests are `level_limit >= s`) and must carry
// has_estimate = false only if their estimate was genuinely not read.
#pragma once

#include <vector>

#include "util/common.h"

namespace gcs {

/// Sentinel for "member of N^s_u for every level s" (fully inserted edge).
inline constexpr int kAllLevels = 1 << 28;

/// One neighbor as seen by the trigger evaluation at a fixed instant.
struct LevelPeer {
  double kappa = 0.0;  ///< κ_e (current value; time-varying for weight decay)
  double delta = 0.0;  ///< δ_e
  double eps = 0.0;    ///< ε_e
  double tau = 0.0;    ///< τ_e
  /// L̃ᵥᵤ(t) − L_u(t); only meaningful if has_estimate.
  double est_minus_own = 0.0;
  /// Largest s such that the peer is in N^s_u (0 = discovery set only;
  /// kAllLevels = fully inserted). Membership is nested: peer in N^s iff
  /// s <= level_limit.
  int level_limit = 0;
  bool has_estimate = false;
};

/// Structural fold over the level-(>=1) peers (see the header comment):
/// cacheable between re-evaluations while membership and κ are unchanged.
struct TriggerAggregates {
  double max_eps = 0.0;
  double max_delta = 0.0;
  double kappa_min = kTimeInf;
  bool any = false;  ///< at least one peer with level_limit >= 1
};

/// One-pass computation of the aggregates (reference for cached callers).
TriggerAggregates compute_trigger_aggregates(const LevelPeer* peers,
                                             std::size_t count);

struct TriggerDecision {
  bool fast = false;
  bool slow = false;
  int fast_level = 0;  ///< a level s witnessing the fast trigger (if fast)
  int slow_level = 0;  ///< a level s witnessing the slow trigger (if slow)
};

/// Evaluate both triggers over all levels s in {1, ..} given precomputed
/// structural aggregates and the current max |discrepancy|. A peer in N^s
/// without an estimate conservatively blocks both universal conditions.
TriggerDecision evaluate_triggers(const LevelPeer* peers, std::size_t count,
                                  const TriggerAggregates& agg, double max_abs,
                                  double mu, double rho, int level_cap);

/// Self-contained form: computes the aggregates and max_abs itself, then
/// delegates. The pointer form lets the hot caller stage peers on the stack.
TriggerDecision evaluate_triggers(const LevelPeer* peers, std::size_t count,
                                  double mu, double rho, int level_cap);
inline TriggerDecision evaluate_triggers(const std::vector<LevelPeer>& peers,
                                         double mu, double rho, int level_cap) {
  return evaluate_triggers(peers.data(), peers.size(), mu, rho, level_cap);
}

}  // namespace gcs
